// A biased lock guarding a single-producer pipeline with occasional
// stealing — the workload biased locks exist for [9, 19].
//
// One owner thread acquires/releases the lock at high frequency to push
// items through a pipeline stage; rarely, a maintenance thread barges
// in to steal the lock and run a compaction. While the owner runs
// alone, every acquisition is a register-only A1 pass (zero RMWs: the
// "biased" regime with no revocation machinery); each barge-in flips
// the round through the hardware path, after which the bias
// re-establishes itself automatically via reset.
//
//   $ ./examples/biased_lock_pipeline [items] [steals]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "runtime/platform.hpp"
#include "tas/biased_lock.hpp"

using namespace scm;

int main(int argc, char** argv) {
  const int items = argc > 1 ? std::atoi(argv[1]) : 200'000;
  const int steals = argc > 2 ? std::atoi(argv[2]) : 10;

  BiasedLock<NativePlatform> lock(/*num_processes=*/2, 1 << 14,
                                  /*recycle=*/true);
  std::atomic<long> pipeline_sum{0};
  std::atomic<bool> done{false};
  std::atomic<int> compactions{0};

  std::thread owner([&] {
    NativeContext ctx(0);
    long local = 0;
    for (int i = 0; i < items; ++i) {
      lock.lock(ctx);
      local += i;  // pipeline stage work
      lock.unlock(ctx);
    }
    pipeline_sum.fetch_add(local, std::memory_order_acq_rel);
    done.store(true, std::memory_order_release);
    std::printf("owner   : %d items, %llu RMWs total (%.4f per acquire)\n",
                items, static_cast<unsigned long long>(ctx.counters().rmws),
                static_cast<double>(ctx.counters().rmws) / items);
  });

  std::thread thief([&] {
    NativeContext ctx(1);
    int performed = 0;
    while (!done.load(std::memory_order_acquire) && performed < steals) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      lock.lock(ctx);
      ++performed;  // compaction work
      lock.unlock(ctx);
    }
    compactions.store(performed, std::memory_order_release);
    std::printf("thief   : %d barge-ins, %llu RMWs total\n", performed,
                static_cast<unsigned long long>(ctx.counters().rmws));
  });

  owner.join();
  thief.join();

  const long expected =
      static_cast<long>(items) * (static_cast<long>(items) - 1) / 2;
  const bool ok = pipeline_sum.load() == expected;
  std::printf("pipeline: sum %ld (%s), %d compactions interleaved safely\n",
              pipeline_sum.load(), ok ? "correct" : "WRONG", compactions.load());
  std::printf(
      "\nthe owner's RMWs/acquire stays near zero: contention appears only\n"
      "around the %d barge-ins; each one costs one hardware round before the\n"
      "bias re-establishes itself (Figure 1's back edge).\n",
      steals);
  return ok ? 0 : 1;
}
