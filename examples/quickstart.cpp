// Quickstart: the speculative test-and-set in five minutes.
//
// Builds the composed object of Figure 1 (obstruction-free register
// module A1 + wait-free hardware module A2) on the native platform,
// runs it from a handful of threads, and prints who won, which module
// served each thread, and the exact shared-memory step counts.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "runtime/platform.hpp"
#include "tas/speculative_tas.hpp"

using namespace scm;

int main() {
  constexpr int kThreads = 4;
  SpeculativeTas<NativePlatform> tas;

  // The composition's consensus number is 2: statically guaranteed.
  static_assert(SpeculativeTas<NativePlatform>::kConsensusNumber == 2);

  struct Result {
    TasOutcome outcome;
    StepCounters steps;
  };
  std::vector<Result> results(kThreads);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      NativeContext ctx(static_cast<ProcessId>(t));
      const Request req{static_cast<std::uint64_t>(t) + 1,
                        static_cast<ProcessId>(t), TasSpec::kTestAndSet, 0};
      const TasOutcome out = tas.test_and_set(ctx, req);
      results[static_cast<std::size_t>(t)] = {out, ctx.counters()};
    });
  }
  for (auto& th : threads) th.join();

  std::printf("speculative test-and-set, %d threads:\n\n", kThreads);
  int winners = 0;
  for (int t = 0; t < kThreads; ++t) {
    const Result& r = results[static_cast<std::size_t>(t)];
    std::printf(
        "  thread %d: %-6s via %-11s  (%llu register steps, %llu RMWs)\n", t,
        r.outcome.won() ? "WINNER" : "loser",
        r.outcome.path == TasPath::kSpeculative ? "speculative" : "hardware",
        static_cast<unsigned long long>(r.steps.reads + r.steps.writes),
        static_cast<unsigned long long>(r.steps.rmws));
    if (r.outcome.won()) ++winners;
  }
  std::printf("\nexactly one winner: %s\n", winners == 1 ? "yes" : "NO (bug!)");

  // The same composition, written explicitly with the variadic pipeline
  // API: make_pipeline chains any number of modules, folds the abort→
  // init switch plumbing at compile time, and counts per-stage commits
  // and aborts.
  ObstructionFreeTas<NativePlatform> a1;
  WaitFreeTas<NativePlatform> a2;
  auto pipeline = make_pipeline(a1, a2);
  static_assert(decltype(pipeline)::kDepth == 2);
  static_assert(decltype(pipeline)::kConsensusNumber == 2);

  NativeContext solo(0);
  const Request req{1000, 0, TasSpec::kTestAndSet, 0};
  const ModuleResult r = pipeline.invoke(solo, req);
  std::printf(
      "\nexplicit make_pipeline(a1, a2), one solo op: %s, served by "
      "stage 0 (%llu commit, %llu aborts there)\n",
      r.response == TasSpec::kWinner ? "WINNER" : "loser",
      static_cast<unsigned long long>(pipeline.stats(0).commits),
      static_cast<unsigned long long>(pipeline.stats(0).aborts));

  std::printf(
      "run it again single-threaded and every operation stays on the\n"
      "register-only speculative path with zero RMWs.\n");
  return winners == 1 ? 0 : 1;
}
