// A linearizable fetch&increment counter from the composable universal
// construction (Section 4 / Proposition 1).
//
// The counter is served by a three-stage Abstract chain:
//   stage 0: SplitConsensus    — registers only, commits when there is
//                                no interval contention;
//   stage 1: AbortableBakery   — registers only, commits absent step
//                                contention;
//   stage 2: CasConsensus      — hardware CAS, wait-free.
// The chain is assembled with StaticAbstractChain: the stage types are
// known at compile time, so every stage call devirtualizes (the
// type-erased UniversalChain remains available for stage sets chosen
// at runtime — see universal/universal_chain.hpp).
// The example runs a quiet phase (one thread) and a storm phase (all
// threads) and prints which stage served the commits in each — the
// speculation reverting to hardware exactly when contention appears.
//
//   $ ./examples/replicated_counter [threads]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "consensus/abortable_bakery.hpp"
#include "consensus/cas_consensus.hpp"
#include "consensus/split_consensus.hpp"
#include "history/specs.hpp"
#include "runtime/platform.hpp"
#include "universal/composable_universal.hpp"
#include "universal/static_chain.hpp"

using namespace scm;

namespace {

constexpr std::size_t kCap = 96;

template <class Cons>
using Stage = ComposableUniversal<NativePlatform, CounterSpec, Cons, kCap>;

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;

  Stage<SplitConsensus<NativePlatform>> split(threads, kCap,
                                              "split/registers");
  Stage<AbortableBakery<NativePlatform>> bakery(threads, kCap,
                                                "bakery/registers");
  Stage<CasConsensus<NativePlatform>> cas(threads, kCap, "cas/hardware");
  StaticAbstractChain chain(threads, split, bakery, cas);

  // Quiet phase: thread 0 increments alone.
  {
    NativeContext ctx(0);
    for (int i = 0; i < 8; ++i) {
      const auto r = chain.perform(
          ctx, Request{static_cast<std::uint64_t>(i) + 1, 0,
                       CounterSpec::kFetchInc, 0});
      std::printf("quiet  : fetch&inc -> %lld  (stage %zu: %s)\n",
                  static_cast<long long>(r.response), r.stage,
                  chain.stage_name(r.stage));
    }
  }

  // Storm phase: everyone increments concurrently.
  std::vector<std::vector<Response>> got(static_cast<std::size_t>(threads));
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      NativeContext ctx(static_cast<ProcessId>(t));
      for (int i = 0; i < 4; ++i) {
        const auto id = 1000 + static_cast<std::uint64_t>(t) * 100 +
                        static_cast<std::uint64_t>(i);
        got[static_cast<std::size_t>(t)].push_back(
            chain
                .perform(ctx, Request{id, static_cast<ProcessId>(t),
                                      CounterSpec::kFetchInc, 0})
                .response);
      }
    });
  }
  for (auto& th : pool) th.join();

  std::printf("\nstorm  : per-thread responses (must all be distinct):\n");
  std::vector<Response> all;
  for (int t = 0; t < threads; ++t) {
    std::printf("  thread %d:", t);
    for (Response r : got[static_cast<std::size_t>(t)]) {
      std::printf(" %lld", static_cast<long long>(r));
      all.push_back(r);
    }
    std::printf("\n");
  }
  std::sort(all.begin(), all.end());
  const bool unique = std::adjacent_find(all.begin(), all.end()) == all.end();

  std::printf("\ncommits by stage (thread 0): quiet ran on stage 0 "
              "(registers); contention pushed ops to later stages.\n");
  for (std::size_t st = 0; st < chain.stage_count(); ++st) {
    std::uint64_t commits = 0;
    for (int t = 0; t < threads; ++t) {
      commits += chain.commits_by(static_cast<ProcessId>(t), st);
    }
    std::printf("  stage %zu (%-16s): %llu commits\n", st,
                chain.stage_name(st),
                static_cast<unsigned long long>(commits));
  }
  std::printf("\nall fetch&inc values distinct: %s\n",
              unique ? "yes" : "NO (bug!)");
  return unique ? 0 : 1;
}
