// Leader election rounds on the long-lived resettable TAS.
//
// A classic use of test-and-set: in each round, every worker tries to
// become the leader; the leader does its work and resets the object,
// opening the next round (Algorithm 2's reset mechanism — Figure 1's
// back edge). The example prints, per worker, how many rounds it led
// and how often the speculative (register-only) module decided the
// election vs the hardware fallback.
//
//   $ ./examples/leader_election [workers] [rounds]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "runtime/platform.hpp"
#include "support/cacheline.hpp"
#include "tas/long_lived_tas.hpp"

using namespace scm;

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 4;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 10'000;

  LongLivedTas<NativePlatform> election(workers, 1 << 14, /*recycle=*/true);
  std::atomic<int> rounds_led{0};

  struct alignas(kCacheLineSize) WorkerStats {
    int led = 0;
    std::uint64_t speculative_ops = 0;
    std::uint64_t hardware_ops = 0;
  };
  std::vector<WorkerStats> stats(static_cast<std::size_t>(workers));

  std::vector<std::thread> pool;
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      NativeContext ctx(static_cast<ProcessId>(w));
      WorkerStats& mine = stats[static_cast<std::size_t>(w)];
      std::uint64_t seq = 0;
      while (rounds_led.load(std::memory_order_acquire) < rounds) {
        const Request req{(static_cast<std::uint64_t>(w) << 40) | ++seq,
                          static_cast<ProcessId>(w), TasSpec::kTestAndSet, 0};
        const TasOutcome out = election.test_and_set(ctx, req);
        if (out.path == TasPath::kSpeculative) {
          ++mine.speculative_ops;
        } else {
          ++mine.hardware_ops;
        }
        if (out.won()) {
          // Leader's critical work would go here.
          ++mine.led;
          rounds_led.fetch_add(1, std::memory_order_acq_rel);
          election.reset(ctx);
        }
      }
    });
  }
  for (auto& th : pool) th.join();

  std::printf("leader election: %d workers, %d rounds\n\n", workers, rounds);
  int total_led = 0;
  for (int w = 0; w < workers; ++w) {
    const WorkerStats& s = stats[static_cast<std::size_t>(w)];
    std::printf("  worker %d: led %6d rounds; ops: %llu speculative, %llu "
                "hardware\n",
                w, s.led,
                static_cast<unsigned long long>(s.speculative_ops),
                static_cast<unsigned long long>(s.hardware_ops));
    total_led += s.led;
  }
  std::printf("\nrounds decided: %d (>= requested %d)\n", total_led, rounds);
  std::printf("with one worker, re-run to see 100%% speculative decisions.\n");
  return total_led >= rounds ? 0 : 1;
}
