// Flat-combining demo: a shared ticket counter behind a composed
// pipeline, wrapped in Combining<> (core/combining.hpp) so one elected
// combiner executes everyone's pending operations in a single batched
// chain walk.
//
// Every thread publishes its request into a cacheline-padded slot and
// either waits to be served or — when the combiner lock is free —
// becomes the combiner and drains ALL pending slots through the
// pipeline's batch path (one stage-major walk, one bulk stats update
// per stage). The printout shows the amortization: ops per combiner
// pass is the number of chain walks a single operation's cost was
// spread over, and the per-stage stats still account for every op even
// though the counters were only touched once per batch.
//
//   $ ./examples/combined_counter [threads]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "core/combining.hpp"
#include "core/pipeline.hpp"
#include "runtime/platform.hpp"
#include "workload/driver.hpp"

using namespace scm;

namespace {

constexpr std::uint64_t kOpsPerThread = 2048;

// One unit of composition plumbing: read a gate register, abort with an
// incremented hop count (as in the compose.* scenarios).
class Relay {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberRegister;

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    (void)gate_.read(ctx);
    return ModuleResult::abort_with(init.value_or(0) + 1);
  }

 private:
  NativeRegister<int> gate_{0};
};

// The contended object: commits a unique, monotonically assigned
// ticket (fetch&inc semantics).
class TicketCounter {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberFetchAdd;

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& /*m*/,
                      std::optional<SwitchValue> /*init*/ = std::nullopt) {
    return ModuleResult::commit(
        static_cast<Response>(count_.fetch_add(ctx)));
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_.peek(); }

 private:
  NativeCounter count_;
};

// Depth-3 composed object: two relays in front of the counter. The
// stats-enabled Pipeline is affordable here because the batch path
// updates its counters once per BATCH per stage, not once per op.
using TicketPipe = Pipeline<Relay, Relay, TicketCounter>;

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::uint64_t total =
      static_cast<std::uint64_t>(threads) * kOpsPerThread;

  Combining<TicketPipe, 16, ByThread> counter;
  static_assert(decltype(counter)::kConsensusNumber ==
                kConsensusNumberFetchAdd);
  static_assert(decltype(counter)::kDepth == 3);

  // Every op must draw a distinct ticket in [0, total): mark them off.
  std::vector<std::atomic<std::uint8_t>> seen(total);
  std::atomic<std::uint64_t> bad{0};

  const auto r = workload::run_threads(
      threads, kOpsPerThread, [&](NativeContext& ctx, std::uint64_t i) {
        const Request m{(static_cast<std::uint64_t>(ctx.id()) << 40) |
                            (i + 1),
                        ctx.id(), 0, 0};
        const ModuleResult res = counter.invoke(ctx, m);
        const auto ticket = static_cast<std::uint64_t>(res.response);
        if (!res.committed() || ticket >= total ||
            seen[ticket].exchange(1, std::memory_order_relaxed) != 0) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      });

  const std::uint64_t rounds = counter.combine_rounds();
  const std::uint64_t batched = counter.combined_ops();
  std::printf("combined counter: %d threads x %llu ops -> %.1f ns/op\n\n",
              threads, static_cast<unsigned long long>(kOpsPerThread),
              r.ns_per_op());
  std::printf("fast-path ops:     %llu (lock was free, no publication)\n",
              static_cast<unsigned long long>(counter.direct_ops()));
  std::printf("combiner passes:   %llu serving %llu published ops "
              "(%.2f ops per pass)\n",
              static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(batched),
              rounds == 0 ? 0.0
                          : static_cast<double>(batched) /
                                static_cast<double>(rounds));

  // Per-stage accounting survives the batch path: both relays abort
  // every op into the next stage, the counter commits all of them.
  bool stats_ok = true;
  for (std::size_t st = 0; st < 3; ++st) {
    const PipelineStageStats s = counter.stats(st);
    std::printf("stage %zu:           %llu commits, %llu aborts\n", st,
                static_cast<unsigned long long>(s.commits),
                static_cast<unsigned long long>(s.aborts));
    stats_ok = stats_ok && (st == 2 ? s.commits == total && s.aborts == 0
                                    : s.aborts == total && s.commits == 0);
  }

  const bool tickets_ok = bad.load() == 0 &&
                          counter.object().stage<2>().count() == total;
  std::printf("\nall %llu tickets distinct and in range: %s\n",
              static_cast<unsigned long long>(total),
              tickets_ok ? "yes" : "NO (bug!)");
  std::printf("per-stage stats account for every op:  %s\n",
              stats_ok ? "yes" : "NO (bug!)");
  return tickets_ok && stats_ok ? 0 : 1;
}
