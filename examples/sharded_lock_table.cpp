// Sharded composition demo: a keyed "lock table" built by replicating
// the paper's composed TAS (A1 in front of the hardware A2, as a
// Pipeline) across cacheline-isolated shards with ByKeyHash routing
// (core/sharding.hpp), driven by uniform and zipf-skewed key streams
// (workload/keyed.hpp).
//
// Every thread tries to acquire the lock for a stream of keys; a key's
// requests always land on the same shard, so each shard elects exactly
// one winner among all requests routed to it — the per-shard object
// keeps the composed TAS's guarantees while the table as a whole
// spreads contention. The load histograms show the axis the
// compose.sharded benchmark sweeps: uniform keys spread across all
// shards, zipf(0.99) keys pile onto the hot ones.
//
//   $ ./examples/sharded_lock_table [threads]
#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/pipeline.hpp"
#include "core/sharding.hpp"
#include "history/specs.hpp"
#include "runtime/platform.hpp"
#include "support/rng.hpp"
#include "tas/a1_module.hpp"
#include "tas/a2_module.hpp"
#include "workload/driver.hpp"
#include "workload/keyed.hpp"

using namespace scm;

namespace {

constexpr std::size_t kShards = 4;
constexpr std::uint64_t kKeys = 64;
constexpr std::uint64_t kOpsPerThread = 32;

using LockPipe =
    Pipeline<ObstructionFreeTas<NativePlatform>, WaitFreeTas<NativePlatform>>;

Request lock_req(ProcessId p, std::uint64_t i, std::uint64_t key) {
  return Request{(static_cast<std::uint64_t>(p) << 40) | (i + 1), p,
                 TasSpec::kTestAndSet, static_cast<std::int64_t>(key)};
}

void print_histogram(const char* label, const std::array<std::uint64_t,
                                                         kShards>& load,
                     std::uint64_t total) {
  std::printf("%s", label);
  for (std::size_t s = 0; s < kShards; ++s) {
    std::printf("  shard %zu: %5.1f%%", s,
                100.0 * static_cast<double>(load[s]) /
                    static_cast<double>(total));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;

  // One composed TAS per shard; ByKeyHash pins each key to one shard.
  Sharded<LockPipe, kShards, ByKeyHash> locks;
  static_assert(decltype(locks)::kConsensusNumber == kConsensusNumberTas);
  static_assert(decltype(locks)::kDepth == 2);

  std::array<std::atomic<std::uint64_t>, kShards> winners{};
  std::array<std::atomic<std::uint64_t>, kShards> touched{};

  const workload::ZipfianKeys stream(kKeys, 0.99);
  std::vector<Padded<Rng>> rngs;
  rngs.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    rngs.emplace_back(Rng(0xC0FFEEULL + static_cast<std::uint64_t>(t) * 977));
  }
  const auto r = workload::run_threads(
      threads, kOpsPerThread, [&](NativeContext& ctx, std::uint64_t i) {
        Rng& rng = rngs[static_cast<std::size_t>(ctx.id())].value;
        const std::uint64_t key = stream(rng);
        const Request m = lock_req(ctx.id(), i, key);
        // Route once and run on that shard explicitly, so the
        // attribution below names the shard that actually served the
        // op (route + invoke would consult the policy twice).
        const std::size_t shard = locks.route(ctx, m);
        touched[shard].fetch_add(1, std::memory_order_relaxed);
        const ModuleResult res = locks.invoke_at(shard, ctx, m);
        if (res.committed() && res.response == TasSpec::kWinner) {
          winners[shard].fetch_add(1, std::memory_order_relaxed);
        }
      });

  std::printf("lock table: %zu shards, %llu keys, %d threads, %llu ops\n\n",
              kShards, static_cast<unsigned long long>(kKeys), threads,
              static_cast<unsigned long long>(r.total_ops));

  bool one_winner_per_touched_shard = true;
  for (std::size_t s = 0; s < kShards; ++s) {
    const std::uint64_t w = winners[s].load(std::memory_order_relaxed);
    const std::uint64_t t = touched[s].load(std::memory_order_relaxed);
    std::printf("shard %zu: %4llu requests -> %llu winner(s)\n", s,
                static_cast<unsigned long long>(t),
                static_cast<unsigned long long>(w));
    if ((t > 0 && w != 1) || (t == 0 && w != 0)) {
      one_winner_per_touched_shard = false;
    }
  }

  // Merged statistics: the per-shard PipelineCounters summed by the
  // combinator. Stage 0 is the register-only A1, stage 1 the hardware
  // fallback; their invocation totals account for every operation.
  const PipelineStageStats s0 = locks.stats(0);
  const PipelineStageStats s1 = locks.stats(1);
  std::printf("\nmerged stats: A1 %llu commits / %llu aborts; "
              "A2 %llu commits (A1 invocations == total ops: %s)\n",
              static_cast<unsigned long long>(s0.commits),
              static_cast<unsigned long long>(s0.aborts),
              static_cast<unsigned long long>(s1.commits),
              s0.invocations() == r.total_ops ? "yes" : "NO");

  // The contention axis: shard load under uniform vs zipf key draws.
  std::array<std::uint64_t, kShards> uniform_load{};
  std::array<std::uint64_t, kShards> zipf_load{};
  const workload::UniformKeys uniform(kKeys);
  Rng ur(1), zr(1);
  NativeContext probe(0);
  constexpr std::uint64_t kDraws = 4096;
  for (std::uint64_t i = 0; i < kDraws; ++i) {
    ++uniform_load[locks.route(probe, lock_req(0, i, uniform(ur)))];
    ++zipf_load[locks.route(probe, lock_req(0, i, stream(zr)))];
  }
  std::printf("\n");
  print_histogram("uniform keys:", uniform_load, kDraws);
  print_histogram("zipf(0.99): ", zipf_load, kDraws);

  std::printf("\none winner per touched shard: %s\n",
              one_winner_per_touched_shard ? "yes" : "NO (bug!)");
  return one_winner_per_touched_shard &&
                 s0.invocations() == r.total_ops
             ? 0
             : 1;
}
