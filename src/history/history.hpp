// Histories: duplicate-free sequences of requests (Section 3).
//
// Histories carry the state transferred between composed modules; the
// Abstract properties (Definition 1) are all phrased as prefix
// relations over histories, implemented here.
#pragma once

#include <algorithm>
#include <initializer_list>
#include <optional>
#include <ostream>
#include <span>
#include <vector>

#include "support/assert.hpp"
#include "history/request.hpp"

namespace scm {

class History {
 public:
  History() = default;
  History(std::initializer_list<Request> rs) {
    for (const Request& r : rs) append(r);
  }
  explicit History(std::span<const Request> rs) {
    for (const Request& r : rs) append(r);
  }

  // Appends a request; duplicate ids are a contract violation.
  void append(const Request& r) {
    SCM_CHECK_MSG(!contains(r.id), "duplicate request in history");
    requests_.push_back(r);
  }

  // Appends only if not already present; returns whether it appended.
  bool append_if_absent(const Request& r) {
    if (contains(r.id)) return false;
    requests_.push_back(r);
    return true;
  }

  [[nodiscard]] bool contains(std::uint64_t request_id) const noexcept {
    return std::any_of(requests_.begin(), requests_.end(),
                       [&](const Request& r) { return r.id == request_id; });
  }

  [[nodiscard]] std::optional<std::size_t> index_of(
      std::uint64_t request_id) const noexcept {
    for (std::size_t i = 0; i < requests_.size(); ++i) {
      if (requests_[i].id == request_id) return i;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::size_t size() const noexcept { return requests_.size(); }
  [[nodiscard]] bool empty() const noexcept { return requests_.empty(); }
  [[nodiscard]] const Request& operator[](std::size_t i) const {
    return requests_[i];
  }
  [[nodiscard]] const Request& head() const { return requests_.front(); }
  [[nodiscard]] const Request& back() const { return requests_.back(); }
  [[nodiscard]] auto begin() const noexcept { return requests_.begin(); }
  [[nodiscard]] auto end() const noexcept { return requests_.end(); }
  [[nodiscard]] std::span<const Request> span() const noexcept {
    return requests_;
  }

  // `this` is a (non-strict) prefix of `other`.
  [[nodiscard]] bool prefix_of(const History& other) const noexcept {
    if (size() > other.size()) return false;
    return std::equal(begin(), end(), other.begin());
  }

  [[nodiscard]] bool strict_prefix_of(const History& other) const noexcept {
    return size() < other.size() && prefix_of(other);
  }

  [[nodiscard]] History prefix(std::size_t n) const {
    History h;
    h.requests_.assign(requests_.begin(),
                       requests_.begin() + static_cast<long>(
                                               std::min(n, requests_.size())));
    return h;
  }

  // Prefix of this history up to and including request `id`; nullopt if
  // the request does not appear.
  [[nodiscard]] std::optional<History> prefix_through(
      std::uint64_t id) const {
    const auto idx = index_of(id);
    if (!idx) return std::nullopt;
    return prefix(*idx + 1);
  }

  // Concatenation h1 · h2 (h2's requests must not repeat h1's).
  [[nodiscard]] History concat(const History& tail) const {
    History h = *this;
    for (const Request& r : tail) h.append(r);
    return h;
  }

  [[nodiscard]] bool has_duplicates() const noexcept {
    for (std::size_t i = 0; i < requests_.size(); ++i) {
      for (std::size_t j = i + 1; j < requests_.size(); ++j) {
        if (requests_[i].id == requests_[j].id) return true;
      }
    }
    return false;
  }

  friend bool operator==(const History&, const History&) = default;

  static History common_prefix(const History& a, const History& b) {
    History h;
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n && a[i] == b[i]; ++i) h.append(a[i]);
    return h;
  }

 private:
  std::vector<Request> requests_;
};

inline std::ostream& operator<<(std::ostream& os, const History& h) {
  os << '[';
  for (std::size_t i = 0; i < h.size(); ++i) {
    if (i != 0) os << ' ';
    os << '#' << h[i].id;
  }
  return os << ']';
}

}  // namespace scm
