// Sequential specifications Δ ⊆ Q × I × Q × R for the object types used
// throughout the paper and this library, plus the β evaluators and the
// ≡_I history equivalence of Section 5.
//
// A spec is a stateless type with:
//   using State = ...;                 // Q (default-constructed == s)
//   static Response apply(State&, const Request&);   // Δ, deterministic
// Responses are int64; specs document their encoding.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "history/history.hpp"
#include "history/request.hpp"

namespace scm {

// ---------------------------------------------------------------------------
// Test-and-set (Section 3): initial state 0; test-and-set() atomically
// reads and sets to 1. The unique process returning 0 is the winner.
// Response encoding: 0 = winner, 1 = loser.
struct TasSpec {
  struct State {
    int value = 0;
  };
  enum Op : std::int64_t { kTestAndSet = 0 };
  static constexpr Response kWinner = 0;
  static constexpr Response kLoser = 1;

  static Response apply(State& s, const Request&) {
    const int prev = s.value;
    s.value = 1;
    return prev;
  }
};

// ---------------------------------------------------------------------------
// Consensus: propose(v); the first proposal fixes the decision, every
// propose returns the decided value.
struct ConsensusSpec {
  struct State {
    bool decided = false;
    std::int64_t decision = 0;
  };
  enum Op : std::int64_t { kPropose = 0 };

  static Response apply(State& s, const Request& r) {
    if (!s.decided) {
      s.decided = true;
      s.decision = r.arg;
    }
    return s.decision;
  }
};

// ---------------------------------------------------------------------------
// Fetch-and-increment counter (mentioned in the paper's conclusions as
// a future-work target; we use it to exercise the universal
// construction on a non-trivial type).
struct CounterSpec {
  struct State {
    std::int64_t value = 0;
  };
  enum Op : std::int64_t { kFetchInc = 0, kRead = 1 };

  static Response apply(State& s, const Request& r) {
    if (r.op == kRead) return s.value;
    return s.value++;
  }
};

// ---------------------------------------------------------------------------
// Read/write register.
struct RegisterSpec {
  struct State {
    std::int64_t value = 0;
  };
  enum Op : std::int64_t { kRead = 0, kWrite = 1 };
  static constexpr Response kAck = 0;

  static Response apply(State& s, const Request& r) {
    if (r.op == kWrite) {
      s.value = r.arg;
      return kAck;
    }
    return s.value;
  }
};

// ---------------------------------------------------------------------------
// FIFO queue (the other future-work object from the conclusions).
// enqueue(v) returns kAck; dequeue returns the head or kEmpty.
struct QueueSpec {
  struct State {
    std::deque<std::int64_t> items;
  };
  enum Op : std::int64_t { kEnqueue = 0, kDequeue = 1 };
  static constexpr Response kAck = 0;
  static constexpr Response kEmpty = -1;

  static Response apply(State& s, const Request& r) {
    if (r.op == kEnqueue) {
      s.items.push_back(r.arg);
      return kAck;
    }
    if (s.items.empty()) return kEmpty;
    const Response head = s.items.front();
    s.items.pop_front();
    return head;
  }
};

// ---------------------------------------------------------------------------
// β evaluators (Section 5): β(h) is the last response obtained by
// applying h sequentially from the initial state; β(h, m) the response
// matching request m in h.

template <class Spec>
[[nodiscard]] typename Spec::State final_state(const History& h) {
  typename Spec::State s{};
  for (const Request& r : h) (void)Spec::apply(s, r);
  return s;
}

template <class Spec>
[[nodiscard]] Response beta(const History& h) {
  typename Spec::State s{};
  Response last = kNoResponse;
  for (const Request& r : h) last = Spec::apply(s, r);
  return last;
}

template <class Spec>
[[nodiscard]] Response beta(const History& h, std::uint64_t request_id) {
  typename Spec::State s{};
  for (const Request& r : h) {
    const Response resp = Spec::apply(s, r);
    if (r.id == request_id) return resp;
  }
  return kNoResponse;
}

// ---------------------------------------------------------------------------
// ≡_I equivalence (Section 5): h1 ≡_I h2 iff (i) both contain every
// request in I, (ii) β(h1·h) = β(h2·h) for all extensions h, and
// (iii) β(h1, m) = β(h2, m) for every m ∈ I.
//
// For deterministic state-based specs, condition (ii) holds whenever
// the final states are equal (the response to every future request is a
// function of the state), which is the criterion we use. This is sound
// (never claims equivalence that does not hold) and complete for every
// spec above, whose states have no unobservable components.

template <class Spec>
[[nodiscard]] bool states_equal(const typename Spec::State& a,
                                const typename Spec::State& b) {
  if constexpr (requires { a == b; }) {
    return a == b;
  } else {
    static_assert(sizeof(Spec) && false, "State must be equality-comparable");
  }
}

inline bool operator==(const TasSpec::State& a, const TasSpec::State& b) {
  return a.value == b.value;
}
inline bool operator==(const ConsensusSpec::State& a,
                       const ConsensusSpec::State& b) {
  return a.decided == b.decided && (!a.decided || a.decision == b.decision);
}
inline bool operator==(const CounterSpec::State& a,
                       const CounterSpec::State& b) {
  return a.value == b.value;
}
inline bool operator==(const RegisterSpec::State& a,
                       const RegisterSpec::State& b) {
  return a.value == b.value;
}
inline bool operator==(const QueueSpec::State& a, const QueueSpec::State& b) {
  return a.items == b.items;
}

template <class Spec>
[[nodiscard]] bool equivalent_under(const History& h1, const History& h2,
                                    std::span<const Request> I) {
  for (const Request& m : I) {
    if (!h1.contains(m.id) || !h2.contains(m.id)) return false;
  }
  if (!states_equal<Spec>(final_state<Spec>(h1), final_state<Spec>(h2))) {
    return false;
  }
  for (const Request& m : I) {
    if (beta<Spec>(h1, m.id) != beta<Spec>(h2, m.id)) return false;
  }
  return true;
}

}  // namespace scm
