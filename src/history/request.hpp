// Requests, responses and switch values (Section 3 of the paper).
//
// An object is a quadruple (Q, s, I, R, Δ). We represent elements of I
// as Request values: a unique identifier (the paper assumes every
// request is unique), the issuing process, an operation code and an
// argument, both interpreted by the sequential specification.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

#include "runtime/ids.hpp"

namespace scm {

using Response = std::int64_t;
using SwitchValue = std::int64_t;  // elements of the set V

inline constexpr Response kNoResponse = INT64_MIN;

struct Request {
  std::uint64_t id = 0;  // globally unique
  ProcessId issuer = kInvalidProcess;
  std::int64_t op = 0;   // operation code (spec-defined)
  std::int64_t arg = 0;  // operation argument (spec-defined)

  friend auto operator<=>(const Request&, const Request&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Request& r) {
  return os << "req{#" << r.id << " p" << r.issuer << " op=" << r.op
            << " arg=" << r.arg << "}";
}

// A switch token: a request paired with the switch value it aborted
// with (or was initialized with). Elements of the set T in Section 5.
struct SwitchToken {
  Request request;
  SwitchValue value = 0;

  friend auto operator<=>(const SwitchToken&, const SwitchToken&) = default;
};

struct RequestIdHash {
  std::size_t operator()(const Request& r) const noexcept {
    return std::hash<std::uint64_t>{}(r.id);
  }
};

}  // namespace scm
