// Herlihy's wait-free universal construction [14] — the baseline the
// composable construction extends. Requests are announced, then decided
// into a totally ordered sequence of cells by wait-free (CAS) consensus
// with round-robin helping; every process replays the decided sequence
// against its local replica.
//
// This is the "always strong" comparison point: every operation costs
// at least one RMW and the construction's consensus number is infinite,
// which is exactly the cost Proposition 2 says any wait-free universal
// object must pay.
#pragma once

#include <memory>
#include <vector>

#include "support/assert.hpp"
#include "support/cacheline.hpp"
#include "consensus/cas_consensus.hpp"
#include "history/specs.hpp"
#include "universal/snapshot.hpp"

namespace scm {

template <class P, class Spec, std::size_t CapPerProc = 64>
class HerlihyUniversal {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberCas;
  using Context = typename P::Context;

  HerlihyUniversal(int num_processes, std::size_t max_cells)
      : n_(num_processes), requests_(num_processes) {
    SCM_CHECK(num_processes > 0);
    cells_.reserve(max_cells);
    for (std::size_t i = 0; i < max_cells; ++i) {
      cells_.push_back(std::make_unique<CasConsensus<P>>());
    }
    announce_ = std::make_unique<AnnounceSlot[]>(
        static_cast<std::size_t>(num_processes));
    per_proc_ =
        std::make_unique<PerProc[]>(static_cast<std::size_t>(num_processes));
  }

  // Wait-free: applies m and returns its response.
  Response perform(Context& ctx, const Request& m) {
    PerProc& me = per_proc_[static_cast<std::size_t>(ctx.id())];

    const std::uint64_t index = requests_.append(ctx, m);
    const std::int64_t my_ref = pack(ctx.id(), index);
    announce_[static_cast<std::size_t>(ctx.id())].ref.write(ctx, my_ref);

    Response out = kNoResponse;
    bool applied_mine = false;
    while (!applied_mine) {
      const std::size_t k = me.applied;
      SCM_CHECK_MSG(k < cells_.size(), "HerlihyUniversal out of cells");

      // Round-robin helping makes the construction wait-free: cell k
      // gives priority to process (k mod n)'s announced request.
      std::int64_t target = my_ref;
      const std::int64_t helped =
          announce_[k % static_cast<std::size_t>(n_)].ref.read(ctx);
      if (helped != kBottom) {
        const Request hr = fetch(ctx, helped);
        if (!me.performed.contains(hr.id)) target = helped;
      }

      const ConsensusResult decision = cells_[k]->propose(ctx, target);
      SCM_CHECK(decision.committed());  // CAS consensus never aborts
      const Request decided = fetch(ctx, decision.value);
      SCM_CHECK_MSG(!me.performed.contains(decided.id),
                    "request decided twice in Herlihy construction");
      const Response resp = Spec::apply(me.replica, decided);
      me.performed.append(decided);
      ++me.applied;
      if (decided.id == m.id) {
        out = resp;
        applied_mine = true;
      }
    }
    return out;
  }

  // Number of decided cells this process has replayed (diagnostics).
  [[nodiscard]] std::size_t applied_by(ProcessId pid) const {
    return per_proc_[static_cast<std::size_t>(pid)].applied;
  }

 private:
  struct AnnounceSlot {
    typename P::template Register<std::int64_t> ref{kBottom};
  };

  struct alignas(kCacheLineSize) PerProc {
    typename Spec::State replica{};
    History performed;
    std::size_t applied = 0;
  };

  static std::int64_t pack(ProcessId pid, std::uint64_t index) {
    return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(pid) * CapPerProc + index + 1);
  }

  template <class Ctx>
  Request fetch(Ctx& ctx, std::int64_t ref) const {
    SCM_CHECK_MSG(ref > 0, "invalid request reference");
    const auto raw = static_cast<std::uint64_t>(ref - 1);
    return requests_.read_slot(ctx, static_cast<ProcessId>(raw / CapPerProc),
                               raw % CapPerProc);
  }

  int n_;
  std::vector<std::unique_ptr<CasConsensus<P>>> cells_;
  SnapshotLog<P, Request, CapPerProc> requests_;
  std::unique_ptr<AnnounceSlot[]> announce_;
  std::unique_ptr<PerProc[]> per_proc_;
};

}  // namespace scm
