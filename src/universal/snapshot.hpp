// Lock-free snapshot object over single-writer registers.
//
// The composable universal construction's `Reqs` object: process i
// appends its requests to component Reqs[i] and any process can read a
// consistent view of all components. We implement the classic
// double-collect snapshot with sequence-numbered components. The
// double collect terminates whenever the writer set quiesces; in the
// universal construction it is only scanned during abort recovery,
// where the paper's progress argument does not require wait-freedom
// (processes recovering concurrently keep writing nothing).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/assert.hpp"
#include "runtime/ids.hpp"

namespace scm {

// Fixed-capacity append-only log per process; Cap bounds the number of
// requests one process may issue to a single universal-construction
// instance (a model parameter, not a correctness bound).
template <class P, class T, std::size_t Cap = 64>
class SnapshotLog {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberRegister;

  explicit SnapshotLog(int num_processes) : n_(num_processes) {
    SCM_CHECK(num_processes > 0);
    // Registers are neither copyable nor movable; construct in place.
    components_ = std::make_unique<Component[]>(static_cast<std::size_t>(n_));
  }

  // Appends `value` to the calling process's component (single-writer);
  // returns the slot index the value landed in.
  template <class Ctx>
  std::uint64_t append(Ctx& ctx, const T& value) {
    auto& mine = components_[static_cast<std::size_t>(ctx.id())];
    const std::uint64_t len = mine.length.read(ctx);
    SCM_CHECK_MSG(len < Cap, "SnapshotLog component overflow");
    mine.slots[len].write(ctx, value);
    mine.length.write(ctx, len + 1);
    return len;
  }

  // Direct read of one slot. The caller must know the slot was written
  // (e.g. it holds a reference decided through consensus, which the
  // writer published only after the slot write).
  template <class Ctx>
  [[nodiscard]] T read_slot(Ctx& ctx, ProcessId pid,
                            std::uint64_t index) const {
    SCM_CHECK_MSG(pid >= 0 && pid < n_ && index < Cap,
                  "SnapshotLog slot out of range");
    return components_[static_cast<std::size_t>(pid)].slots[index].read(ctx);
  }

  // Double-collect snapshot: returns a consistent cut of all
  // components (vector of per-process vectors).
  template <class Ctx>
  [[nodiscard]] std::vector<std::vector<T>> scan(Ctx& ctx) const {
    std::vector<std::uint64_t> first(static_cast<std::size_t>(n_));
    for (;;) {
      for (int i = 0; i < n_; ++i) {
        first[static_cast<std::size_t>(i)] =
            components_[static_cast<std::size_t>(i)].length.read(ctx);
      }
      std::vector<std::vector<T>> view(static_cast<std::size_t>(n_));
      for (int i = 0; i < n_; ++i) {
        auto& comp = components_[static_cast<std::size_t>(i)];
        for (std::uint64_t k = 0; k < first[static_cast<std::size_t>(i)];
             ++k) {
          view[static_cast<std::size_t>(i)].push_back(comp.slots[k].read(ctx));
        }
      }
      bool clean = true;
      for (int i = 0; i < n_; ++i) {
        if (components_[static_cast<std::size_t>(i)].length.read(ctx) !=
            first[static_cast<std::size_t>(i)]) {
          clean = false;
          break;
        }
      }
      if (clean) return view;
    }
  }

 private:
  struct Component {
    typename P::template Register<std::uint64_t> length{0};
    std::array<typename P::template Register<T>, Cap> slots{};
  };

  int n_;
  std::unique_ptr<Component[]> components_;
};

}  // namespace scm
