// Statically-typed counterpart of UniversalChain: the same Section 4.2
// stage-switching semantics (sticky per process; an abort's history
// initializes the next stage — Theorem 1), but over a compile-time
// list of concrete stage types instead of AbstractStage pointers.
//
// Because the stage types are known (and ComposableUniversal is
// `final`), every invoke call devirtualizes: a chain of universal
// constructions runs with zero indirect calls on the commit path, the
// static analogue of what Pipeline<Ms...> does for modules. The
// type-erased UniversalChain remains for heterogeneous stage sets
// assembled at runtime; this combinator is for benches and objects
// whose composition is fixed at build time.
//
// Ownership mirrors Pipeline's reference mode: stages are held by
// reference_wrapper (ComposableUniversal is immovable — it pins
// registers and per-process slabs), so the caller keeps the stages
// alive for the chain's lifetime.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <tuple>
#include <utility>

#include "core/async.hpp"
#include "support/assert.hpp"
#include "support/cacheline.hpp"
#include "universal/abstract.hpp"

namespace scm {

template <class... Stages>
class StaticAbstractChain {
  static_assert(sizeof...(Stages) >= 1, "empty static chain");

  template <std::size_t I>
  using stage_t = std::tuple_element_t<I, std::tuple<Stages...>>;

 public:
  static constexpr std::size_t kDepth = sizeof...(Stages);
  // The platform context comes from the first stage; all stages run on
  // the same platform.
  using Context = typename stage_t<0>::Context;
  using Performed = ChainPerformed;

  static_assert((AbstractStageLike<Stages, Context> && ...),
                "every static chain stage must expose the Abstract "
                "surface (invoke/consensus_number/name)");

  StaticAbstractChain(int num_processes, Stages&... stages)
      : stages_(stages...) {
    // Validate before sizing the allocation: a negative count must hit
    // this diagnostic, not a size_t-wrapped bad_alloc.
    SCM_CHECK(num_processes > 0);
    per_proc_ =
        std::make_unique<PerProc[]>(static_cast<std::size_t>(num_processes));
  }

  // Performs request m; wait-free iff the last stage never aborts.
  Performed perform(Context& ctx, const Request& m) {
    PerProc& me = per_proc_[static_cast<std::size_t>(ctx.id())];
    return resume_at<0>(me.stage, me, ctx, m);
  }

  // Async adapter (core/async.hpp): the chain's perform is synchronous
  // (wait-free iff the last stage never aborts), so submit() completes
  // inline and returns a ready ticket — the uniform submit/complete
  // surface, no behavioural change.
  Ticket<Performed> submit(Context& ctx, const Request& m) {
    return Ticket<Performed>::ready(perform(ctx, m));
  }

  // Batch path: applies `ms` in order in ONE chain traversal, filling
  // `out[k]` with request k's ChainPerformed. The runtime sticky-index
  // dispatch (resume_at's tuple walk) happens once per batch instead
  // of once per request, and the stage switch only ever moves forward:
  // a request that aborts drags the calling process — and every later
  // request of the batch — to the next stage, exactly the per-op
  // semantics (the switch is sticky, Theorem 1), so the results are
  // identical to performing the requests one at a time.
  void perform_batch(Context& ctx, std::span<const Request> ms,
                     std::span<Performed> out) {
    SCM_CHECK_MSG(ms.size() == out.size(),
                  "perform_batch needs one output slot per request");
    if (ms.empty()) return;
    PerProc& me = per_proc_[static_cast<std::size_t>(ctx.id())];
    resume_batch_at<0>(me.stage, me, ctx, ms, out);
  }

  [[nodiscard]] static constexpr std::size_t stage_count() noexcept {
    return kDepth;
  }

  template <std::size_t I>
  [[nodiscard]] auto& stage() noexcept {
    return std::get<I>(stages_).get();
  }

  [[nodiscard]] const char* stage_name(std::size_t i) const {
    SCM_CHECK(i < kDepth);
    return with_stage<0>(i, [](const auto& s) { return s.name(); });
  }

  // Commits served by stage `i` on behalf of process `pid`.
  [[nodiscard]] std::uint64_t commits_by(ProcessId pid, std::size_t i) const {
    SCM_CHECK(i < kDepth);
    return per_proc_[static_cast<std::size_t>(pid)].commits_by_stage[i];
  }

  // The chain's consensus number: max over the stages (devirtualized —
  // resolved per concrete stage type at compile time).
  [[nodiscard]] int consensus_number() const {
    return std::apply(
        [](const auto&... s) {
          int cn = 1;
          ((cn = std::max(cn, s.get().consensus_number())), ...);
          return cn;
        },
        stages_);
  }

 private:
  struct alignas(kCacheLineSize) PerProc {
    std::size_t stage = 0;  // sticky switch point, as in the paper
    History pending_init;   // abort history awaiting the next stage
    std::array<std::uint64_t, kDepth> commits_by_stage{};
  };

  // Runtime stage index -> compile-time stage: walk the tuple until the
  // sticky index is reached, then run the chain tail from there.
  template <std::size_t I>
  Performed resume_at(std::size_t idx, PerProc& me, Context& ctx,
                      const Request& m) {
    if constexpr (I < kDepth) {
      if (idx == I) return run_from<I>(me, ctx, m);
      return resume_at<I + 1>(idx, me, ctx, m);
    } else {
      SCM_CHECK_MSG(false, "static chain exhausted: last stage aborted");
      __builtin_unreachable();
    }
  }

  template <std::size_t I>
  Performed run_from(PerProc& me, Context& ctx, const Request& m) {
    AbstractResult r =
        std::get<I>(stages_).get().invoke(ctx, m, me.pending_init);
    if (r.committed()) {
      ++me.commits_by_stage[I];
      Performed out;
      out.response = r.response;
      out.stage = I;
      out.history = std::move(r.history);
      return out;
    }
    // Abort: the abort history initializes the next stage (Theorem 1);
    // the switch is sticky for this process from now on.
    me.pending_init = std::move(r.history);
    me.stage = I + 1;
    if constexpr (I + 1 < kDepth) {
      return run_from<I + 1>(me, ctx, m);
    } else {
      SCM_CHECK_MSG(false, "static chain exhausted: last stage aborted");
      __builtin_unreachable();
    }
  }

  // Batch analogue of resume_at: locate the process's sticky stage
  // once, then run the whole batch from there.
  template <std::size_t I>
  void resume_batch_at(std::size_t idx, PerProc& me, Context& ctx,
                       std::span<const Request> ms, std::span<Performed> out) {
    if constexpr (I < kDepth) {
      if (idx == I) {
        run_batch_from<I>(me, ctx, ms, out, 0);
        return;
      }
      resume_batch_at<I + 1>(idx, me, ctx, ms, out);
    } else {
      SCM_CHECK_MSG(false, "static chain exhausted: last stage aborted");
      __builtin_unreachable();
    }
  }

  // Requests ms[begin..) run at stage I until one aborts; the abort
  // history initializes stage I+1 and the REST of the batch (this
  // request included) continues there — the sticky switch applied
  // batch-wide in a single forward walk.
  template <std::size_t I>
  void run_batch_from(PerProc& me, Context& ctx, std::span<const Request> ms,
                      std::span<Performed> out, std::size_t begin) {
    for (std::size_t k = begin; k < ms.size(); ++k) {
      AbstractResult r =
          std::get<I>(stages_).get().invoke(ctx, ms[k], me.pending_init);
      if (r.committed()) {
        ++me.commits_by_stage[I];
        out[k].response = r.response;
        out[k].stage = I;
        out[k].history = std::move(r.history);
        continue;
      }
      me.pending_init = std::move(r.history);
      me.stage = I + 1;
      if constexpr (I + 1 < kDepth) {
        run_batch_from<I + 1>(me, ctx, ms, out, k);
        return;
      } else {
        SCM_CHECK_MSG(false, "static chain exhausted: last stage aborted");
        __builtin_unreachable();
      }
    }
  }

  template <std::size_t I, class Fn>
  auto with_stage(std::size_t idx, Fn&& fn) const {
    if constexpr (I + 1 < kDepth) {
      if (idx != I) return with_stage<I + 1>(idx, std::forward<Fn>(fn));
    }
    return fn(std::get<I>(stages_).get());
  }

  std::tuple<std::reference_wrapper<Stages>...> stages_;
  std::unique_ptr<PerProc[]> per_proc_;
};

// Deduce the stage pack from the constructor arguments:
//   StaticAbstractChain chain(n, split_stage, bakery_stage, cas_stage);
template <class... Stages>
StaticAbstractChain(int, Stages&...) -> StaticAbstractChain<Stages...>;

}  // namespace scm
