// The Abstract interface (Definition 1, [12, 20]): an abortable
// replicated state machine. Invoke(m, h) commits or aborts the request
// m together with a history; commit histories are totally ordered by
// prefix, abort histories extend every commit history, and composing
// two Abstracts yields an Abstract (Theorem 1).
#pragma once

#include <concepts>
#include <cstddef>

#include "core/module.hpp"
#include "history/history.hpp"
#include "history/request.hpp"

namespace scm {

struct AbstractResult {
  Outcome outcome = Outcome::kCommit;
  Response response = kNoResponse;  // β(history, m) — valid on commit
  History history;                  // commit history or abort history

  [[nodiscard]] bool committed() const noexcept {
    return outcome == Outcome::kCommit;
  }
};

// A committed chain operation: the response, the stage that served it
// (for progress accounting in benches and examples) and the commit
// history. Shared by the type-erased UniversalChain and the static
// StaticAbstractChain so callers can switch between the two.
struct ChainPerformed {
  Response response = kNoResponse;
  std::size_t stage = 0;
  History history;
};

// Structural requirements on an Abstract stage used *without* type
// erasure (StaticAbstractChain): the same surface as AbstractStage,
// but checked as a concept against the concrete context type, so any
// concrete stage qualifies — including AbstractStage implementations,
// whose calls devirtualize when the concrete type is final
// (ComposableUniversal is).
template <class S, class Ctx>
concept AbstractStageLike =
    requires(S s, Ctx& ctx, const Request& m, const History& init) {
      { s.invoke(ctx, m, init) } -> std::same_as<AbstractResult>;
      { s.consensus_number() } -> std::convertible_to<int>;
      { s.name() } -> std::convertible_to<const char*>;
    };

// Type-erased Abstract instance for one platform. The universal chain
// composes stages through this interface; virtual dispatch is
// acceptable here because the universal construction's costs are
// dominated by consensus and snapshot steps (Proposition 2 territory),
// not by call overhead.
template <class P>
class AbstractStage {
 public:
  virtual ~AbstractStage() = default;

  // Issues request m with initial history h (empty for "no init").
  virtual AbstractResult invoke(typename P::Context& ctx, const Request& m,
                                const History& init) = 0;

  // Largest consensus number among the base objects this stage uses.
  [[nodiscard]] virtual int consensus_number() const = 0;

  [[nodiscard]] virtual const char* name() const = 0;
};

}  // namespace scm
