// The composable universal construction (Section 4.2).
//
// Herlihy's universal construction with wait-free consensus replaced by
// *abortable* consensus. Processes agree, cell by cell, on the order in
// which announced requests apply; if any consensus instance aborts (or
// the shared Aborted flag is raised), the process reconstructs a valid
// abort history from the already-decided cells and returns
// Abort(m, h), ready to initialize the next Abstract in a chain.
//
// Shared state, as in the paper:
//   Cons[]  — abortable consensus instances, one per sequence cell;
//   Aborted — flag that poisons the instance once set;
//   Reqs    — snapshot log where process i announces its requests
//             (component i); consensus decides packed references into
//             it, so values fit in one register;
//   C       — counter tracking the number of committed cells, which
//             bounds abort-history reconstruction.
//
// Progress: commits while the underlying consensus commits (its NT
// predicate — Lemma 1); any abort poisons the instance so that every
// process switches to the next module.
#pragma once

#include <memory>
#include <vector>

#include "support/assert.hpp"
#include "consensus/consensus.hpp"
#include "history/specs.hpp"
#include "support/cacheline.hpp"
#include "universal/abstract.hpp"
#include "universal/snapshot.hpp"

namespace scm {

template <class P, class Spec, class Cons, std::size_t CapPerProc = 64>
class ComposableUniversal final : public AbstractStage<P> {
 public:
  static constexpr int kConsensusNumber = Cons::kConsensusNumber;
  using Context = typename P::Context;

  ComposableUniversal(int num_processes, std::size_t max_cells,
                      const char* stage_name = "composable-universal")
      : n_(num_processes), name_(stage_name), requests_(num_processes) {
    SCM_CHECK(num_processes > 0);
    cells_.reserve(max_cells);
    for (std::size_t i = 0; i < max_cells; ++i) {
      cells_.push_back(make_cons());
    }
    announce_ = std::make_unique<AnnounceSlot[]>(
        static_cast<std::size_t>(num_processes));
    per_proc_ = std::make_unique<PerProc[]>(
        static_cast<std::size_t>(num_processes));
  }

  AbstractResult invoke(Context& ctx, const Request& m,
                        const History& init) override {
    PerProc& me = per_proc_[static_cast<std::size_t>(ctx.id())];

    // Already poisoned? Recover immediately (checkAbort task).
    if (aborted_.read(ctx)) return abort_path(ctx, me, m);

    // ---- Initialization (first call per process, with init history) ----
    if (!me.initialized) {
      me.initialized = true;
      if (!init.empty()) {
        const AbstractResult r = run_init(ctx, me, init, m);
        if (!r.committed()) return r;
      }
    }

    // The request may already be decided: abort histories contain the
    // aborting process's own request (Termination), so an inherited
    // init history replayed above — by us or by another process — can
    // cover m. Committing here keeps every request decided at exactly
    // one cell. The aborted re-check is load-bearing: the cell's
    // committed-count increment happened above (in run_init), so if the
    // flag is still clear *now*, any aborter's recovery count covers
    // this cell and Abort Ordering holds; committing without the
    // re-check can race a recovery that missed the cell.
    if (me.performed.contains(m.id)) {
      if (aborted_.read(ctx)) return abort_path(ctx, me, m);
      AbstractResult out;
      out.outcome = Outcome::kCommit;
      out.history = me.performed;
      out.response = beta<Spec>(me.performed, m.id);
      return out;
    }

    // ---- Announce the request --------------------------------------------
    const std::int64_t my_ref = announce(ctx, m);

    // ---- Agree, cell by cell ---------------------------------------------
    for (;;) {
      if (aborted_.read(ctx)) return abort_path(ctx, me, m);
      const std::size_t k = me.performed.size();
      SCM_CHECK_MSG(k < cells_.size(), "ComposableUniversal out of cells");

      // Herlihy-style helping: give priority to the announced request
      // of process (k mod n) if it is still unapplied.
      std::int64_t target = my_ref;
      const std::int64_t helped =
          announce_[k % static_cast<std::size_t>(n_)].ref.read(ctx);
      if (helped != kBottom) {
        const Request hr = fetch(ctx, helped);
        if (!me.performed.contains(hr.id)) target = helped;
      }

      const ConsensusResult decision =
          cells_[k]->run(ctx, kBottom, target);
      if (!decision.committed()) return abort_path(ctx, me, m);

      const Request decided = fetch(ctx, decision.value);
      SCM_CHECK_MSG(!me.performed.contains(decided.id),
                    "request decided twice in universal construction");
      me.performed.append(decided);
      (void)committed_count_.fetch_add(ctx, 1);

      if (decided.id == m.id) {
        // Commit only if the instance was not aborted concurrently: the
        // increment-then-check ordering guarantees any aborter that
        // missed us reads a count covering our cell (Abort Ordering).
        if (aborted_.read(ctx)) return abort_path(ctx, me, m);
        AbstractResult out;
        out.outcome = Outcome::kCommit;
        out.history = me.performed;
        out.response = beta<Spec>(me.performed, m.id);
        return out;
      }
    }
  }

  [[nodiscard]] int consensus_number() const override {
    // The counter C is fetch-and-add (consensus number 2); the cells
    // contribute their own strength.
    return std::max(kConsensusNumber, kConsensusNumberFetchAdd);
  }

  [[nodiscard]] const char* name() const override { return name_; }

  // Whether this instance has been poisoned (post-run diagnostics).
  [[nodiscard]] bool poisoned() const { return aborted_.peek(); }

 private:
  struct AnnounceSlot {
    typename P::template Register<std::int64_t> ref{kBottom};
  };

  struct alignas(kCacheLineSize) PerProc {
    bool initialized = false;
    History performed;  // lPerf: requests applied by this process
  };

  static std::unique_ptr<Cons> make_cons_impl(int n) {
    if constexpr (std::is_constructible_v<Cons, int>) {
      return std::make_unique<Cons>(n);
    } else {
      return std::make_unique<Cons>();
    }
  }
  std::unique_ptr<Cons> make_cons() { return make_cons_impl(n_); }

  // Packs a (process, index) request reference into a consensus value.
  static std::int64_t pack(ProcessId pid, std::uint64_t index) {
    return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(pid) * CapPerProc + index + 1);
  }

  template <class Ctx>
  Request fetch(Ctx& ctx, std::int64_t ref) const {
    SCM_CHECK_MSG(ref > 0, "invalid request reference");
    const auto raw = static_cast<std::uint64_t>(ref - 1);
    const auto pid = static_cast<ProcessId>(raw / CapPerProc);
    const auto index = raw % CapPerProc;
    return requests_.read_slot(ctx, pid, index);
  }

  // Adds m to the calling process's request log and announce slot.
  template <class Ctx>
  std::int64_t announce(Ctx& ctx, const Request& m) {
    const std::uint64_t index = requests_.append(ctx, m);
    const std::int64_t ref = pack(ctx.id(), index);
    announce_[static_cast<std::size_t>(ctx.id())].ref.write(ctx, ref);
    return ref;
  }

  // Proposes the inherited history, in order, to the leading cells
  // (Section 4.2: "each process proposes, in order, the requests in its
  // (abort) history to the Cons list of the new instance").
  AbstractResult run_init(Context& ctx, PerProc& me, const History& init,
                          const Request& current) {
    for (;;) {
      // First inherited request not yet performed locally.
      const Request* next = nullptr;
      for (const Request& r : init) {
        if (!me.performed.contains(r.id)) {
          next = &r;
          break;
        }
      }
      if (next == nullptr) break;  // fully initialized

      if (aborted_.read(ctx)) return abort_path(ctx, me, current);
      const std::size_t k = me.performed.size();
      SCM_CHECK_MSG(k < cells_.size(), "ComposableUniversal out of cells");
      const std::int64_t ref = announce(ctx, *next);
      const ConsensusResult decision = cells_[k]->run(ctx, ref, ref);
      if (!decision.committed()) return abort_path(ctx, me, current);
      const Request decided = fetch(ctx, decision.value);
      SCM_CHECK_MSG(!me.performed.contains(decided.id),
                    "request decided twice during initialization");
      me.performed.append(decided);
      (void)committed_count_.fetch_add(ctx, 1);
    }
    AbstractResult ok;
    ok.outcome = Outcome::kCommit;
    return ok;
  }

  // Abort recovery: poison the instance, then rebuild a valid abort
  // history from the decided cells (bounded by the committed-cell
  // counter), appending the caller's own request if it never decided
  // (Termination: "h contains m").
  AbstractResult abort_path(Context& ctx, PerProc& me, const Request& m) {
    if (!aborted_.read(ctx)) aborted_.write(ctx, true);
    const std::uint64_t count = committed_count_.read(ctx);

    History habort;
    for (std::uint64_t k = 0; k < count && k < cells_.size(); ++k) {
      const std::int64_t decided = cells_[k]->peek_decision(ctx);
      if (decided == kBottom) break;  // counter overshoot: cell undecided
      const Request r = fetch(ctx, decided);
      if (!habort.append_if_absent(r)) break;  // defensive: stop on repeat
    }
    habort.append_if_absent(m);
    (void)me;  // per-process state unused on the abort path (kept for symmetry)

    AbstractResult out;
    out.outcome = Outcome::kAbort;
    out.history = std::move(habort);
    return out;
  }

  int n_;
  const char* name_;
  std::vector<std::unique_ptr<Cons>> cells_;
  SnapshotLog<P, Request, CapPerProc> requests_;
  std::unique_ptr<AnnounceSlot[]> announce_;
  std::unique_ptr<PerProc[]> per_proc_;
  typename P::template Register<bool> aborted_{false};
  typename P::Counter committed_count_;
};

}  // namespace scm
