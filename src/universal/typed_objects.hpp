// Typed façades over the universal chain — the "more complex objects"
// of the paper's conclusions (queues, fetch-and-increment registers)
// with ordinary method interfaces instead of raw requests.
//
// Each façade owns a three-stage Proposition-1 chain (registers-only
// SplitConsensus -> registers-only AbortableBakery -> wait-free CAS)
// and mints unique request ids per process. All operations are
// wait-free and linearizable; quiet executions never leave the
// register stages.
#pragma once

#include <memory>
#include <vector>

#include "support/cacheline.hpp"
#include "consensus/abortable_bakery.hpp"
#include "consensus/cas_consensus.hpp"
#include "consensus/split_consensus.hpp"
#include "history/specs.hpp"
#include "universal/composable_universal.hpp"
#include "universal/universal_chain.hpp"

namespace scm {

namespace detail {

template <class P, class Spec, std::size_t Cap>
std::unique_ptr<UniversalChain<P, Spec>> make_standard_chain(int n) {
  std::vector<std::unique_ptr<AbstractStage<P>>> stages;
  stages.push_back(
      std::make_unique<ComposableUniversal<P, Spec, SplitConsensus<P>, Cap>>(
          n, Cap, "split/registers"));
  stages.push_back(
      std::make_unique<ComposableUniversal<P, Spec, AbortableBakery<P>, Cap>>(
          n, Cap, "bakery/registers"));
  stages.push_back(
      std::make_unique<ComposableUniversal<P, Spec, CasConsensus<P>, Cap>>(
          n, Cap, "cas/hardware"));
  return std::make_unique<UniversalChain<P, Spec>>(n, std::move(stages));
}

// Per-process unique request-id minting.
template <class P>
class RequestMinter {
 public:
  explicit RequestMinter(int n)
      : seq_(std::make_unique<Padded<std::uint64_t>[]>(
            static_cast<std::size_t>(n))) {}

  Request mint(typename P::Context& ctx, std::int64_t op, std::int64_t arg) {
    auto& mine = seq_[static_cast<std::size_t>(ctx.id())].value;
    const std::uint64_t id =
        (static_cast<std::uint64_t>(ctx.id()) << 40) | ++mine;
    return Request{id, ctx.id(), op, arg};
  }

 private:
  std::unique_ptr<Padded<std::uint64_t>[]> seq_;
};

}  // namespace detail

// Wait-free linearizable fetch&increment counter (Proposition 1 + the
// conclusions' fetch-and-increment target). Cap bounds the total
// operations the object accepts over its lifetime (a model parameter of
// the underlying construction).
template <class P, std::size_t Cap = 64>
class UniversalCounter {
 public:
  using Context = typename P::Context;

  explicit UniversalCounter(int num_processes)
      : minter_(num_processes),
        chain_(detail::make_standard_chain<P, CounterSpec, Cap>(
            num_processes)) {}

  // Atomically returns the current value and increments it.
  [[nodiscard]] std::int64_t fetch_increment(Context& ctx) {
    return chain_
        ->perform(ctx, minter_.mint(ctx, CounterSpec::kFetchInc, 0))
        .response;
  }

  // Linearizable read.
  [[nodiscard]] std::int64_t read(Context& ctx) {
    return chain_->perform(ctx, minter_.mint(ctx, CounterSpec::kRead, 0))
        .response;
  }

  [[nodiscard]] const UniversalChain<P, CounterSpec>& chain() const {
    return *chain_;
  }

 private:
  detail::RequestMinter<P> minter_;
  std::unique_ptr<UniversalChain<P, CounterSpec>> chain_;
};

// Wait-free linearizable FIFO queue of int64 values (the conclusions'
// queue target).
template <class P, std::size_t Cap = 64>
class UniversalQueue {
 public:
  using Context = typename P::Context;
  static constexpr std::int64_t kEmpty = QueueSpec::kEmpty;

  explicit UniversalQueue(int num_processes)
      : minter_(num_processes),
        chain_(
            detail::make_standard_chain<P, QueueSpec, Cap>(num_processes)) {}

  void enqueue(Context& ctx, std::int64_t value) {
    (void)chain_->perform(ctx, minter_.mint(ctx, QueueSpec::kEnqueue, value));
  }

  // Returns the head, or kEmpty.
  [[nodiscard]] std::int64_t dequeue(Context& ctx) {
    return chain_->perform(ctx, minter_.mint(ctx, QueueSpec::kDequeue, 0))
        .response;
  }

  [[nodiscard]] const UniversalChain<P, QueueSpec>& chain() const {
    return *chain_;
  }

 private:
  detail::RequestMinter<P> minter_;
  std::unique_ptr<UniversalChain<P, QueueSpec>> chain_;
};

}  // namespace scm
