// A chain of composed Abstract instances (Section 4.2, "Contention-free,
// obstruction-free and wait-free variants").
//
// The chain first calls stage 0; on Abort(m, h) it calls stage 1 with
// initial history h, and so on (Theorem 1: the composition of Abstracts
// is an Abstract). With a wait-free final stage the chain never aborts,
// yielding a wait-free linearizable implementation of any sequential
// type that uses only registers while the cheap stages commit
// (Proposition 1).
//
// Stage switching is *sticky per process*, as in the paper: once a
// process aborts out of a stage it keeps using the later stage for its
// subsequent requests (an aborted Abstract instance is poisoned anyway).
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "support/assert.hpp"
#include "support/cacheline.hpp"
#include "universal/abstract.hpp"

namespace scm {

template <class P, class Spec>
class UniversalChain {
 public:
  using Context = typename P::Context;

  UniversalChain(int num_processes,
                 std::vector<std::unique_ptr<AbstractStage<P>>> stages)
      : stages_(std::move(stages)) {
    SCM_CHECK(num_processes > 0);
    SCM_CHECK_MSG(!stages_.empty(), "empty universal chain");
    per_proc_ = std::make_unique<PerProc[]>(
        static_cast<std::size_t>(num_processes));
    // Size the per-stage commit tallies from the actual chain depth;
    // a fixed-capacity default would make perform() write out of
    // bounds on chains deeper than the guess.
    for (int p = 0; p < num_processes; ++p) {
      per_proc_[static_cast<std::size_t>(p)].commits_by_stage.resize(
          stages_.size(), 0);
    }
  }

  // Performs request m; wait-free iff the last stage never aborts.
  // Returns the committed response together with the stage that served
  // it (for progress accounting in the benches). The result type is
  // shared with StaticAbstractChain (abstract.hpp).
  using Performed = ChainPerformed;

  Performed perform(Context& ctx, const Request& m) {
    PerProc& me = per_proc_[static_cast<std::size_t>(ctx.id())];
    for (;;) {
      SCM_CHECK_MSG(me.stage < stages_.size(),
                    "universal chain exhausted: last stage aborted");
      AbstractResult r =
          stages_[me.stage]->invoke(ctx, m, me.pending_init);
      if (r.committed()) {
        ++me.commits_by_stage[me.stage];
        Performed out;
        out.response = r.response;
        out.stage = me.stage;
        out.history = std::move(r.history);
        return out;
      }
      // Abort: carry the abort history into the next stage as init.
      me.pending_init = std::move(r.history);
      ++me.stage;
    }
  }

  [[nodiscard]] std::size_t stage_count() const noexcept {
    return stages_.size();
  }
  [[nodiscard]] const AbstractStage<P>& stage(std::size_t i) const {
    return *stages_.at(i);
  }

  // Commits served by stage `i` on behalf of process `pid`.
  [[nodiscard]] std::uint64_t commits_by(ProcessId pid, std::size_t i) const {
    return per_proc_[static_cast<std::size_t>(pid)].commits_by_stage.at(i);
  }

  // The chain's consensus number: max over stages actually present.
  [[nodiscard]] int consensus_number() const {
    int cn = 1;
    for (const auto& s : stages_) cn = std::max(cn, s->consensus_number());
    return cn;
  }

 private:
  struct alignas(kCacheLineSize) PerProc {
    std::size_t stage = 0;
    History pending_init;  // abort history awaiting the next stage
    std::vector<std::uint64_t> commits_by_stage;  // sized in the ctor
  };

  std::vector<std::unique_ptr<AbstractStage<P>>> stages_;
  std::unique_ptr<PerProc[]> per_proc_;
};

}  // namespace scm
