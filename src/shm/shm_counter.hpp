// ShmCounter — the segment-resident fetch&increment counter the
// compose.shm equivalence gate counts with.
//
// Speaks CounterSpec's op vocabulary (kFetchInc/kRead from
// history/specs.hpp) and the ModuleResult surface, so it drops into
// run_batch and under ShmCombining exactly like any in-process
// module. Segment constraints shape the rest: standard layout, one
// atomic word of state, no pointers, trivially destructible. The
// atomic is belt-and-braces — under ShmCombining only the elected
// combiner touches it, but a bare cross-process counter (the fast
// sanity tests, a future uncombined baseline scenario) must also be
// correct, and fetch&add's consensus number is what the wrapper
// reports either way.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "core/module.hpp"
#include "history/request.hpp"
#include "history/specs.hpp"
#include "runtime/ids.hpp"
#include "shm/shm_layout.hpp"

namespace scm {

class ShmCounter {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberFetchAdd;
  using Op = CounterSpec::Op;

  ShmCounter() = default;
  ShmCounter(const ShmCounter&) = delete;
  ShmCounter& operator=(const ShmCounter&) = delete;

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& m,
                      std::optional<SwitchValue> /*init*/ = std::nullopt) {
    if (m.op == Op::kRead) {
      ctx.on_read();
      return ModuleResult::commit(
          static_cast<Response>(value_.load(std::memory_order_acquire)));
    }
    ctx.on_rmw();
    return ModuleResult::commit(static_cast<Response>(
        value_.fetch_add(1, std::memory_order_acq_rel)));
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

SCM_ASSERT_ADDRESS_FREE(ShmCounter);

}  // namespace scm
