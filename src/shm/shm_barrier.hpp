// ShmSpinBarrier — support/barrier.hpp's algorithm, re-housed so the
// whole object can live inside a shared segment and align PROCESSES
// instead of threads (the compose.shm scenario parks every client at
// one barrier before the measured region, exactly like the in-process
// driver does with SpinBarrier).
//
// Same one-word protocol as SpinBarrier: arrival count and generation
// share a single atomic u64 (low half count, high half generation) so
// the last arriver's reset-and-publish is one release store and a
// re-entering party can never interleave with a split reset. The
// differences are exactly the shm constraints: standard layout, no
// const member (the object is placement-constructed into the segment
// by the server and merely looked at by clients), and the wait loop
// climbs the full spin → yield → park ladder against a process-shared
// futex (support/parking.hpp) — a cross-process wait routinely spans a
// scheduling quantum (clients park at the barrier while the server
// finishes setup), where SpinBarrier's bare spin is tuned for
// same-address-space alignment right before a measurement.
//
// The futex word is SEPARATE from the count+generation u64: the kernel
// waits on exactly 4 bytes, and half of a torn u64 is not a protocol
// state — so waiters park on the WaitPoint's own epoch word and the
// last arriver's generation store + wake_all() resumes them.
#pragma once

#include <atomic>
#include <cstdint>

#include "shm/shm_layout.hpp"
#include "support/backoff.hpp"
#include "support/parking.hpp"

namespace scm {

class ShmSpinBarrier {
 public:
  ShmSpinBarrier() = default;
  explicit ShmSpinBarrier(std::uint32_t parties) noexcept
      : parties_(parties) {}

  ShmSpinBarrier(const ShmSpinBarrier&) = delete;
  ShmSpinBarrier& operator=(const ShmSpinBarrier&) = delete;

  [[nodiscard]] std::uint32_t parties() const noexcept { return parties_; }

  // How many parties of the current generation have arrived — lets the
  // compose.shm server spin until every client is parked, timestamp,
  // and only then arrive itself.
  [[nodiscard]] std::uint32_t arrived() const noexcept {
    return static_cast<std::uint32_t>(
        state_.load(std::memory_order_acquire) & kCountMask);
  }

  void arrive_and_wait() noexcept {
    const std::uint64_t prev = state_.fetch_add(1, std::memory_order_acq_rel);
    const std::uint64_t generation = prev >> kGenerationShift;
    if ((prev & kCountMask) + 1 == parties_) {
      state_.store((generation + 1) << kGenerationShift,
                   std::memory_order_release);
      futex_waiters_.wake_all();
      return;
    }
    parked_wait(futex_waiters_, [this, generation] {
      return (state_.load(std::memory_order_acquire) >> kGenerationShift) !=
             generation;
    });
  }

 private:
  static constexpr int kGenerationShift = 32;
  static constexpr std::uint64_t kCountMask = 0xffffffffULL;

  std::uint32_t parties_ = 0;
  std::uint32_t pad_ = 0;
  std::atomic<std::uint64_t> state_{0};
  WaitPoint<FutexScope::kShared> futex_waiters_{};
};

SCM_ASSERT_ADDRESS_FREE(ShmSpinBarrier);

}  // namespace scm
