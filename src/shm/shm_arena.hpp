// ShmArena — the segment underneath cross-process composition.
//
// One POSIX shared-memory object (`shm_open` + `mmap`) holding three
// things: a header that lets independently-started binaries verify
// they are speaking the same layout (magic + version + capacity, with
// the magic written LAST so a half-initialized segment is
// indistinguishable from an absent one), a bump/free-list allocator,
// and a fixed-capacity name → {offset, size, type-tag} discovery
// table so processes resolve objects BY NAME instead of sharing
// addresses out of band (the zeroipc specification pattern).
//
// The cardinal rule of everything in this directory: the segment maps
// at a DIFFERENT virtual address in every process, so nothing stored
// inside it may be a pointer. Objects are addressed by their byte
// offset from the segment base (offset 0 is reserved as the null
// offset — it is the header), and cross-object references inside the
// segment use ShmRef<T> (shm/shm_ref.hpp), which stores only an
// offset. Synchronization words are std::atomic on lock-free 32/64-bit
// integers, which are address-free: acquire/release pairs order
// accesses between mappings of the same physical page regardless of
// where each process mapped it.
//
// Concurrency envelope: alloc/free/publish take a tiny header
// spinlock — they are SETUP-path operations (a server laying out the
// segment, clients registering), not per-operation ones. resolve() is
// lock-free (an acquire scan of the table) so attaching clients never
// contend with each other. The per-operation hot path never enters
// this file: ShmCombining's slots synchronize on their own words.
#pragma once

#if defined(__unix__) || defined(__APPLE__)
#define SCM_HAS_POSIX_SHM 1
#else
// No POSIX shm on this target: the shm subsystem compiles away and
// the compose.shm scenario reports a skip instead of running.
#define SCM_HAS_POSIX_SHM 0
#endif

#if SCM_HAS_POSIX_SHM

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <new>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>

#include "shm/shm_layout.hpp"
#include "support/assert.hpp"
#include "support/backoff.hpp"

namespace scm {

// ShmArena is the process-local HANDLE to a segment (mapping base,
// path) — it lives on this process's stack/heap, never inside the
// segment itself. Only the nested Header/NameEntry/FreeBlock structs
// are segment-resident.
// scm-lint: process-local
class ShmArena {
 public:
  // "scm-shm1" — also the init-complete flag: create() stores it with
  // release as the LAST step of segment initialization, and attach()
  // reads it with acquire, so observing the magic implies observing
  // the fully-built header behind it.
  static constexpr std::uint64_t kMagic = 0x73636d2d73686d31ull;
  // Bumped whenever the header layout changes; folded together with
  // sizeof(Header) into the version word so layout drift between
  // binaries fails fast at attach() instead of corrupting the table.
  static constexpr std::uint32_t kLayoutVersion = 1;
  static constexpr std::size_t kNameCapacity = 48;  // incl. terminator
  static constexpr std::size_t kNameTableEntries = 32;

  // What resolve() hands back: where the object lives, how big it is,
  // and the publisher's type tag — the attacher checks the tag against
  // its own compiled-in value before touching a single byte.
  struct Resolved {
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    std::uint32_t type_tag = 0;
  };
  SCM_ASSERT_ADDRESS_FREE(Resolved);

  // ---- segment lifecycle -------------------------------------------

  // Creates (O_CREAT | O_EXCL) and fully initializes a segment. The
  // name follows shm_open rules (a leading '/' is added if missing).
  // Returns nullopt with *error filled on any failure — including the
  // segment already existing, which callers surface rather than
  // silently reattach (a stale segment from a crashed run carries
  // stale state).
  static std::optional<ShmArena> create(const std::string& name,
                                        std::uint64_t bytes,
                                        std::string* error = nullptr) {
    const std::string path = normalize(name);
    if (bytes < sizeof(Header) + kMinObjectBytes) {
      return fail(error, "segment too small for the arena header");
    }
    const int fd = ::shm_open(path.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd < 0) {
      return fail(error, "shm_open(create " + path +
                             ") failed: " + std::strerror(errno));
    }
    if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
      const int err = errno;
      ::close(fd);
      ::shm_unlink(path.c_str());
      return fail(error,
                  "ftruncate failed: " + std::string(std::strerror(err)));
    }
    void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                        fd, 0);
    ::close(fd);  // the mapping keeps the segment alive
    if (base == MAP_FAILED) {
      ::shm_unlink(path.c_str());
      return fail(error, "mmap failed: " + std::string(std::strerror(errno)));
    }

    auto* header = new (base) Header();
    header->version = version_word();
    header->page_size =
        static_cast<std::uint32_t>(::sysconf(_SC_PAGESIZE));
    header->capacity = bytes;
    header->bump.store(align_up(sizeof(Header), kMinAlign),
                       std::memory_order_relaxed);
    // Init-complete flag, last: an attacher that sees the magic sees
    // everything above it.
    header->magic.store(kMagic, std::memory_order_release);
    return ShmArena(path, base, bytes);
  }

  // Maps an existing segment and validates it was built by a
  // compatible binary: magic present (init complete), version word
  // equal (same header layout), capacity matching the file size.
  // Fails fast (nullopt + *error) on any mismatch; callers that race
  // against a server still creating the segment retry attach() in a
  // loop (see the compose.shm client).
  static std::optional<ShmArena> attach(const std::string& name,
                                        std::string* error = nullptr) {
    const std::string path = normalize(name);
    const int fd = ::shm_open(path.c_str(), O_RDWR, 0600);
    if (fd < 0) {
      return fail(error, "shm_open(attach " + path +
                             ") failed: " + std::strerror(errno));
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0 ||
        st.st_size < static_cast<off_t>(sizeof(Header))) {
      ::close(fd);
      return fail(error, "segment exists but is not arena-sized yet");
    }
    const auto bytes = static_cast<std::uint64_t>(st.st_size);
    void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                        fd, 0);
    ::close(fd);
    if (base == MAP_FAILED) {
      return fail(error, "mmap failed: " + std::string(std::strerror(errno)));
    }
    const auto* header = static_cast<const Header*>(base);
    if (header->magic.load(std::memory_order_acquire) != kMagic) {
      ::munmap(base, bytes);
      return fail(error, "segment not initialized (magic mismatch)");
    }
    if (header->version != version_word()) {
      ::munmap(base, bytes);
      return fail(error,
                  "arena layout version mismatch (rebuilt binary against a "
                  "live segment?)");
    }
    if (header->capacity != bytes) {
      ::munmap(base, bytes);
      return fail(error, "segment size does not match its header");
    }
    return ShmArena(path, base, bytes);
  }

  // Removes the NAME from the filesystem namespace; live mappings
  // survive until every process unmaps. The creator calls this when
  // the run is over (and defensively before create on retry paths).
  static bool unlink(const std::string& name) {
    return ::shm_unlink(normalize(name).c_str()) == 0;
  }

  ShmArena(ShmArena&& other) noexcept
      : path_(std::move(other.path_)),
        base_(std::exchange(other.base_, nullptr)),
        bytes_(std::exchange(other.bytes_, 0)) {}
  ShmArena& operator=(ShmArena&& other) noexcept {
    if (this != &other) {
      unmap();
      path_ = std::move(other.path_);
      base_ = std::exchange(other.base_, nullptr);
      bytes_ = std::exchange(other.bytes_, 0);
    }
    return *this;
  }
  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;
  ~ShmArena() { unmap(); }

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t capacity() const noexcept { return bytes_; }
  [[nodiscard]] std::uint32_t page_size() const noexcept {
    return header().page_size;
  }

  // ---- allocation --------------------------------------------------

  // Allocates `bytes` at alignment `align` and returns the offset, or
  // 0 (the null offset) when the segment is exhausted. First-fit over
  // the free list, then the bump pointer. Setup-path: takes the header
  // spinlock.
  [[nodiscard]] std::uint64_t alloc(std::uint64_t bytes,
                                    std::uint64_t align = kMinAlign) {
    SCM_CHECK_MSG(align != 0 && (align & (align - 1)) == 0,
                  "alignment must be a power of two");
    bytes = round_size(bytes);
    Header& h = header();
    LockGuard guard(h.lock);

    // Free-list first fit: a block serves the request when it is big
    // enough and its offset happens to satisfy the alignment (blocks
    // are at least kMinAlign-aligned by construction). A tail
    // remainder big enough to be a block is split back onto the list.
    std::uint64_t prev = 0;
    for (std::uint64_t off = h.free_head.load(std::memory_order_relaxed);
         off != 0;) {
      auto* block = at_unchecked<FreeBlock>(off);
      const std::uint64_t next = block->next;
      if (block->size >= bytes && off % align == 0) {
        const std::uint64_t remainder = block->size - bytes;
        if (remainder >= kMinObjectBytes) {
          auto* tail = at_unchecked<FreeBlock>(off + bytes);
          tail->next = next;
          tail->size = remainder;
          relink(h, prev, off + bytes);
        } else {
          relink(h, prev, next);
        }
        return off;
      }
      prev = off;
      off = next;
    }

    const std::uint64_t bump = h.bump.load(std::memory_order_relaxed);
    const std::uint64_t aligned = align_up(bump, align);
    if (aligned + bytes > h.capacity) return 0;  // exhausted
    h.bump.store(aligned + bytes, std::memory_order_relaxed);
    return aligned;
  }

  // Returns a block to the free list (no coalescing — arena churn is
  // setup-path, a handful of objects per run). `bytes` must be the
  // size passed to alloc.
  void free(std::uint64_t offset, std::uint64_t bytes) {
    SCM_CHECK_MSG(offset != 0, "freeing the null offset");
    bytes = round_size(bytes);
    Header& h = header();
    LockGuard guard(h.lock);
    auto* block = at_unchecked<FreeBlock>(offset);
    block->next = h.free_head.load(std::memory_order_relaxed);
    block->size = bytes;
    h.free_head.store(offset, std::memory_order_relaxed);
  }

  // Resolves an offset to this process's mapping of the object. The
  // offset must come from alloc()/resolve() — offset 0 (null) and
  // out-of-range offsets are checked errors.
  template <class T>
  [[nodiscard]] T* at(std::uint64_t offset) {
    SCM_CHECK_MSG(offset != 0, "dereferencing the null shm offset");
    constexpr std::uint64_t kObjectBytes =
        std::is_void_v<T> ? 0 : sizeof(std::conditional_t<std::is_void_v<T>,
                                                          char, T>);
    SCM_CHECK_MSG(offset + kObjectBytes <= bytes_,
                  "shm offset out of segment bounds");
    return at_unchecked<T>(offset);
  }

  // alloc + placement-new in one step. T must be free of pointers into
  // this process (enforced where possible: trivially destructible, so
  // nothing expects a destructor call in any particular process).
  template <class T, class... Args>
  [[nodiscard]] std::uint64_t construct(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "shm-resident objects are never destroyed in-place");
    const std::uint64_t off = alloc(sizeof(T), alignof(T));
    if (off == 0) return 0;
    new (at_unchecked<void>(off)) T(std::forward<Args>(args)...);
    return off;
  }

  // ---- discovery ---------------------------------------------------

  // Publishes `name` → {offset, size, type_tag} in the discovery
  // table. Fails (false) when the name is too long, already taken, or
  // the table is full. The entry's ready flag is a release store, so a
  // lock-free resolve() that sees it sees the fields behind it.
  bool publish(const std::string& name, std::uint64_t offset,
               std::uint64_t size, std::uint32_t type_tag) {
    if (name.empty() || name.size() >= kNameCapacity) return false;
    Header& h = header();
    LockGuard guard(h.lock);
    NameEntry* free_entry = nullptr;
    for (NameEntry& e : h.table) {
      if (e.state.load(std::memory_order_relaxed) == NameEntry::kReady) {
        if (std::strncmp(e.name, name.c_str(), kNameCapacity) == 0) {
          return false;  // duplicate
        }
      } else if (free_entry == nullptr) {
        free_entry = &e;
      }
    }
    if (free_entry == nullptr) return false;  // table full
    std::memset(free_entry->name, 0, kNameCapacity);
    std::memcpy(free_entry->name, name.c_str(), name.size());
    free_entry->offset = offset;
    free_entry->size = size;
    free_entry->type_tag = type_tag;
    free_entry->state.store(NameEntry::kReady, std::memory_order_release);
    return true;
  }

  // Lock-free name lookup: an acquire scan of the table. nullopt when
  // the name is not (yet) published — attaching clients poll this
  // until the server's publish lands.
  [[nodiscard]] std::optional<Resolved> resolve(const std::string& name) {
    Header& h = header();
    for (NameEntry& e : h.table) {
      if (e.state.load(std::memory_order_acquire) != NameEntry::kReady) {
        continue;
      }
      if (std::strncmp(e.name, name.c_str(), kNameCapacity) == 0) {
        return Resolved{e.offset, e.size, e.type_tag};
      }
    }
    return std::nullopt;
  }

 private:
  // Smallest allocation: big enough to be relinked as a FreeBlock.
  static constexpr std::uint64_t kMinObjectBytes = 16;
  static constexpr std::uint64_t kMinAlign = 16;

  struct FreeBlock {
    std::uint64_t next;  // offset of the next free block, 0 = end
    std::uint64_t size;
  };
  SCM_ASSERT_ADDRESS_FREE(FreeBlock);

  struct NameEntry {
    static constexpr std::uint32_t kEmpty = 0;
    static constexpr std::uint32_t kReady = 2;
    std::atomic<std::uint32_t> state{kEmpty};
    std::uint32_t type_tag = 0;
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    char name[kNameCapacity] = {};
  };
  SCM_ASSERT_ADDRESS_FREE(NameEntry);

  struct Header {
    std::atomic<std::uint64_t> magic{0};  // kMagic once init completes
    std::uint32_t version = 0;
    std::uint32_t page_size = 0;
    std::uint64_t capacity = 0;
    std::atomic<std::uint32_t> lock{0};  // setup-path spinlock
    std::uint32_t reserved = 0;
    std::atomic<std::uint64_t> bump{0};
    std::atomic<std::uint64_t> free_head{0};
    NameEntry table[kNameTableEntries]{};
  };
  SCM_ASSERT_ADDRESS_FREE(Header);
  static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
                "shm atomics must be address-free");

  // RAII guard over the header spinlock: stack-resident in the locking
  // process, holds a reference into the mapping.
  // scm-lint: process-local
  class LockGuard {
   public:
    explicit LockGuard(std::atomic<std::uint32_t>& lock) : lock_(lock) {
      int spins = 0;
      while (lock_.exchange(1, std::memory_order_acquire) != 0) {
        spin_backoff(spins);
      }
    }
    ~LockGuard() { lock_.store(0, std::memory_order_release); }
    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;

   private:
    std::atomic<std::uint32_t>& lock_;
  };

  ShmArena(std::string path, void* base, std::uint64_t bytes)
      : path_(std::move(path)), base_(base), bytes_(bytes) {}

  static std::string normalize(const std::string& name) {
    return name.empty() || name.front() == '/' ? name : "/" + name;
  }

  static std::optional<ShmArena> fail(std::string* error, std::string why) {
    if (error != nullptr) *error = std::move(why);
    return std::nullopt;
  }

  // Layout version: revision number folded with the header size, so
  // ANY header-layout drift between binaries changes the word.
  static constexpr std::uint32_t version_word() {
    return (kLayoutVersion << 16) ^
           static_cast<std::uint32_t>(sizeof(Header));
  }

  static constexpr std::uint64_t align_up(std::uint64_t v,
                                          std::uint64_t align) {
    return (v + align - 1) & ~(align - 1);
  }
  static constexpr std::uint64_t round_size(std::uint64_t bytes) {
    return align_up(bytes < kMinObjectBytes ? kMinObjectBytes : bytes,
                    kMinAlign);
  }

  [[nodiscard]] Header& header() noexcept {
    return *static_cast<Header*>(base_);
  }
  [[nodiscard]] const Header& header() const noexcept {
    return *static_cast<const Header*>(base_);
  }

  template <class T>
  [[nodiscard]] T* at_unchecked(std::uint64_t offset) noexcept {
    return reinterpret_cast<T*>(static_cast<char*>(base_) + offset);
  }

  // Unlinks `from`'s successor to `to` (free-list surgery under the
  // header lock). prev == 0 means "from the head".
  void relink(Header& h, std::uint64_t prev, std::uint64_t to) {
    if (prev == 0) {
      h.free_head.store(to, std::memory_order_relaxed);
    } else {
      at_unchecked<FreeBlock>(prev)->next = to;
    }
  }

  void unmap() noexcept {
    if (base_ != nullptr) {
      ::munmap(base_, bytes_);
      base_ = nullptr;
    }
  }

  std::string path_;
  void* base_ = nullptr;
  std::uint64_t bytes_ = 0;
};

}  // namespace scm

#endif  // SCM_HAS_POSIX_SHM
