// ShmCombining — the flat-combining wrapper rebuilt for a shared
// segment, so INDEPENDENT PROCESSES submit operations into one
// combiner the way threads submit into core/combining.hpp.
//
// The insight carried over from the in-process wrapper: a publication
// slot is already a wait-free mailbox. Nothing about the
// kFree → kClaimed → kPending → kDone protocol (core/slot_protocol.hpp
// — shared with Combining, enforced by static_assert in shm_test)
// depends on a virtual address: the slot array, the gate word, and the
// wrapped object all live inline in this object, which itself lives at
// an arena offset, and every synchronization word is a lock-free
// std::atomic — address-free, so acquire/release pairs order accesses
// between different processes' mappings of the same physical lines.
// Ticket-style completion polls therefore work cross-process: poll the
// slot's word for kDone, exactly like Ticket::poll does in-process.
//
// What IS new is the failure domain. A thread cannot vanish
// mid-publication; a process can (SIGKILL, OOM kill). Two mechanisms
// absorb that:
//
//   - Every slot word packs {state, owner PID} into ONE atomic u64
//     (state low half, pid high half — pack_slot in
//     core/slot_protocol.hpp), so the claim CAS and the ownership
//     stamp are indivisible: a reclaim sweep can never see a claimed
//     record with a stale owner. The combiner preserves the
//     publisher's pid when it stores kDone, so a publisher that died
//     waiting still has its name on the slot.
//   - reclaim_dead() sweeps, UNDER THE GATE, every slot whose owner no
//     longer exists (kill(pid, 0) probe, injectable for tests) and
//     frees the ones the dead process could never recycle itself:
//     kClaimed (died mid-write — the request was never published, so
//     dropping it is the only sound choice) and kDone (died waiting —
//     the op executed; only its collection is abandoned). kPending
//     slots of dead owners are NOT dropped: the publication is
//     complete (the kPending store released it), so the next combine
//     pass executes it and the slot becomes reclaimable kDone. The
//     gate itself is also stolen from a dead holder, since a dead
//     combiner otherwise wedges the object forever.
//
// Division of labor that makes crash-reclaim SOUND rather than
// best-effort: a process that may be killed should submit with
// may_combine = false (publication only — the compose.shm clients do).
// Then it can only ever die holding a slot, never the gate mid-batch,
// and the reconciliation bound is exact: a client killed at an
// arbitrary point has AT MOST ONE operation in flight, which either
// executed (kPending/kDone) or did not (kClaimed), so
// completed_ops <= object_total <= started_ops holds with slack <= 1
// per kill. A combiner dying mid-batch would instead leave the wrapped
// object's state ahead of any count — unrecoverable without undo logs.
//
// Like the in-process wrapper, publishers BLOCK on the combiner's
// progress: native-platform only (NativeContext), never the
// deterministic simulator.
#pragma once

#include "shm/shm_arena.hpp"  // platform gate: defines SCM_HAS_POSIX_SHM

#if SCM_HAS_POSIX_SHM

#include <signal.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <type_traits>

#include "core/batch.hpp"
#include "core/module.hpp"
#include "core/slot_protocol.hpp"
#include "history/request.hpp"
#include "runtime/ids.hpp"
#include "runtime/wait.hpp"
#include "shm/shm_layout.hpp"
#include "support/assert.hpp"
#include "support/backoff.hpp"
#include "support/cacheline.hpp"
#include "support/parking.hpp"

namespace scm {

// Liveness probe for reclaim_dead: signal 0 delivers nothing but
// performs the existence/permission check. EPERM means "exists but
// not ours" — alive; only ESRCH means gone.
inline bool shm_process_alive(std::uint32_t pid) noexcept {
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH;
}

template <class Obj, std::size_t kSlots>
class ShmCombining {
  static_assert(kSlots >= 1, "a combining wrapper needs at least one slot");
  static_assert(std::is_trivially_destructible_v<Obj>,
                "segment-resident objects are never destroyed in-place");

  // One publication record, padded to a cache line so distinct
  // processes publish on distinct lines. The word packs
  // {SlotState, owner pid}; request/init/result are plain fields
  // ordered by the word's release stores exactly as in the in-process
  // Slot — except init is (has_init, value) rather than std::optional,
  // which is not guaranteed segment-safe layout.
  struct alignas(kCacheLineSize) Slot {
    std::atomic<std::uint64_t> word{0};  // pack_slot(kFree, 0)
    Request request{};
    SwitchValue init_value = 0;
    ModuleResult result{};
    bool has_init = false;
  };
  SCM_ASSERT_ADDRESS_FREE(Slot);

 public:
  static constexpr std::size_t kSlotCount = kSlots;

  // Same protocol as the in-process wrapper — shm_test asserts the
  // two `slot_state` aliases are one type.
  using slot_state = SlotState;

  // Compiled-in shape fingerprint, published alongside the arena
  // offset and checked by attachers BEFORE the first shared access:
  // folds the slot protocol revision and every layout-determining
  // quantity, so two binaries whose ShmCombining instantiations
  // disagree in any way fail fast at resolve time.
  static constexpr std::uint32_t kTypeTag = [] {
    std::uint32_t h = 2166136261u;  // FNV-1a
    // sizeof(WaitPoint) folds the parking-word layout in: a binary
    // without the shared futex member (or with different telemetry
    // counters) maps the object differently and must not attach.
    for (std::uint64_t v :
         {std::uint64_t{kSlotProtocolVersion}, std::uint64_t{kSlots},
          std::uint64_t{sizeof(Obj)}, std::uint64_t{alignof(Obj)},
          std::uint64_t{sizeof(Slot)}, std::uint64_t{sizeof(Request)},
          std::uint64_t{sizeof(ModuleResult)},
          std::uint64_t{sizeof(WaitPoint<FutexScope::kShared>)}}) {
      for (int b = 0; b < 8; ++b) {
        h ^= static_cast<std::uint32_t>((v >> (8 * b)) & 0xff);
        h *= 16777619u;
      }
    }
    return h;
  }();

  ShmCombining() = default;
  ShmCombining(const ShmCombining&) = delete;
  ShmCombining& operator=(const ShmCombining&) = delete;

  // Publish, then wait to be served — or combine. With
  // may_combine = true (the default; in-process-equivalent behavior)
  // the caller elects itself combiner whenever the gate is free, so a
  // single process is self-sufficient. Crash-exposed processes pass
  // may_combine = false: pure publication, the op executes only on a
  // serving combiner, and dying at any point leaves at most this one
  // op ambiguous (see file comment). With false and no serving
  // process anywhere, invoke blocks — the server contract.
  template <class Ctx>
    requires Composable<Obj, Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& m,
                      std::optional<SwitchValue> init = std::nullopt,
                      bool may_combine = true) {
    const std::uint32_t self = self_pid();
    // Fast path: gate free — run directly (a batch of one), serve
    // whatever published meanwhile, release.
    if (may_combine && try_gate(ctx, self)) {
      const ModuleResult r = scm::apply(obj_, ctx, m, init);
      direct_ops_.fetch_add(1, std::memory_order_relaxed);
      combine(ctx);
      release_gate();
      return r;
    }

    Slot& slot = slots_[claim(ctx, self)];
    slot.request = m;
    slot.has_init = init.has_value();
    slot.init_value = init.value_or(SwitchValue{0});
    ctx.on_write();
    // The release publishes the plain writes above; pid rides in the
    // word so a reclaimer knows whose publication this is.
    slot.word.store(pack_slot(SlotState::kPending, self),
                    std::memory_order_release);

    while (slot_state_of(slot.word.load(std::memory_order_acquire)) !=
           SlotState::kDone) {
      if (may_combine && try_gate(ctx, self)) {
        combine(ctx);  // serves at least our own pending slot
        release_gate();
        continue;
      }
      // Rung-3 wait on the segment's shared futex: a may_combine=false
      // client under a descheduled server PARKS here instead of
      // burning its timeslice against a gate nobody is serving — the
      // serving combiner's release_gate() wake resumes it.
      wait_until(
          ctx,
          [this, &slot, may_combine] {
            return slot_state_of(slot.word.load(std::memory_order_relaxed)) ==
                       SlotState::kDone ||
                   (may_combine &&
                    gate_.load(std::memory_order_relaxed) == 0);
          },
          futex_waiters_);
    }
    ctx.on_read();
    const ModuleResult r = slot.result;
    slot.word.store(pack_slot(SlotState::kFree, 0),
                    std::memory_order_release);
    // A freed record is what claim()'s exhaustion wait parks on.
    futex_waiters_.wake_all();
    return r;
  }

  // One combine pass if the gate is free right now; false when some
  // other process holds it. The compose.shm server's serve loop is
  // `while (...) try_serve(ctx);` — a dedicated combiner.
  template <class Ctx>
    requires Composable<Obj, Ctx>
  bool try_serve(Ctx& ctx) {
    if (!try_gate(ctx, self_pid())) return false;
    combine(ctx);
    release_gate();
    return true;
  }

  // Combines until no publication is pending. Same contract as the
  // in-process drain(): every op PUBLISHED before the call has
  // executed on return; kDone slots still await their publishers.
  // Safe on an empty/fresh object — returns immediately.
  template <class Ctx>
    requires Composable<Obj, Ctx>
  void drain(Ctx& ctx) {
    while (pending() != 0) {
      if (try_serve(ctx)) continue;
      wait_until(
          ctx,
          [this] {
            return pending() == 0 ||
                   gate_.load(std::memory_order_relaxed) == 0;
          },
          futex_waiters_);
    }
  }

  // Published-but-unserved operations right now (acquire scan — there
  // is no pending-count hint on purpose: a cached counter drifts
  // permanently when the process that was about to decrement it dies).
  [[nodiscard]] std::size_t pending() const noexcept {
    return count_in_state(SlotState::kPending);
  }
  // Records not currently kFree — the compose.shm gate checks this is
  // zero after the final drain + reclaim.
  [[nodiscard]] std::size_t occupied() const noexcept {
    return kSlots - count_in_state(SlotState::kFree);
  }

  // Sweeps the wreckage of dead processes: frees kClaimed and kDone
  // slots whose owner fails the liveness probe, and steals the gate
  // from a dead holder first (a dead combiner wedges everything).
  // Runs the sweep UNDER the gate so it cannot race a live combiner's
  // scan/writeback; if a LIVE process holds the gate there is nothing
  // to reclaim safely and the sweep is skipped (returns 0 — call
  // again later, the server loop does). Returns slots freed.
  //
  // `alive(pid) -> bool` is injectable so tests can declare a live
  // helper process "dead" deterministically.
  template <class Alive>
  std::size_t reclaim_dead(Alive&& alive) {
    const std::uint32_t self = self_pid();
    std::uint32_t holder = gate_.load(std::memory_order_acquire);
    if (holder == 0) {
      if (!gate_.compare_exchange_strong(holder, self,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        return 0;
      }
    } else {
      if (alive(holder)) return 0;
      // Steal from the dead: the CAS fails if anyone else (another
      // reclaimer) already did.
      if (!gate_.compare_exchange_strong(holder, self,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        return 0;
      }
    }

    std::size_t reclaimed = 0;
    for (Slot& s : slots_) {
      std::uint64_t w = s.word.load(std::memory_order_acquire);
      const SlotState state = slot_state_of(w);
      const std::uint32_t owner = slot_owner_of(w);
      // kPending is deliberately exempt: the publication is complete,
      // so the op executes on the next combine and the slot resurfaces
      // here as a dead-owned kDone.
      if (owner == 0 || state == SlotState::kFree ||
          state == SlotState::kPending) {
        continue;
      }
      if (alive(owner)) continue;
      // Only the owner performs kClaimed->kPending and kDone->kFree,
      // and the owner is dead; the gate excludes combiners. The CAS is
      // belt-and-braces against a probe that raced the owner's death.
      if (s.word.compare_exchange_strong(w, pack_slot(SlotState::kFree, 0),
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
        ++reclaimed;
      }
    }
    // release_gate's wake doubles as the orphan sweep-up: live waiters
    // parked against state a DEAD process was supposed to change
    // (claim() waiting on records the corpse held, publishers waiting
    // on a gate it wedged) re-check their predicates against the swept
    // slots and the freed gate instead of sleeping forever.
    release_gate();
    return reclaimed;
  }

  std::size_t reclaim_dead() {
    return reclaim_dead([](std::uint32_t pid) { return shm_process_alive(pid); });
  }

  [[nodiscard]] Obj& object() noexcept { return obj_; }
  [[nodiscard]] const Obj& object() const noexcept { return obj_; }

  // ---- combining telemetry (this process's mapping is shared, so
  // these aggregate over ALL participating processes).

  [[nodiscard]] std::uint64_t combine_rounds() const noexcept {
    return rounds_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t combined_ops() const noexcept {
    return batched_ops_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t direct_ops() const noexcept {
    return direct_ops_.load(std::memory_order_relaxed);
  }

  // Park/wake telemetry from the segment-resident WaitPoint. The
  // counters live in shared memory, so — like the combining counters
  // above — they aggregate over ALL participating processes: a client
  // that parked against a stalled server shows up in the server's
  // readout (compose.shm gates on exactly that).
  [[nodiscard]] ParkStats park_stats() const noexcept {
    return futex_waiters_.stats();
  }

 private:
  static std::uint32_t self_pid() noexcept {
    return static_cast<std::uint32_t>(::getpid());
  }

  // Gate = combiner election word holding the OWNER'S PID (0 = free),
  // the cross-process analogue of the in-process TAS bool — the pid is
  // what lets reclaim_dead distinguish "busy" from "wedged by a
  // corpse".
  template <class Ctx>
  bool try_gate(Ctx& ctx, std::uint32_t self) {
    std::uint32_t expected = 0;
    if (gate_.load(std::memory_order_relaxed) == 0 &&
        gate_.compare_exchange_strong(expected, self,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
      ctx.on_rmw();
      return true;
    }
    return false;
  }
  void release_gate() noexcept {
    gate_.store(0, std::memory_order_release);
    // One batched wake per combine pass / gate handover: kDone slots,
    // gate-waiters, and drain()ers all re-check off this single call.
    // Uncontended cost: a fence + one relaxed load, no syscall.
    futex_waiters_.wake_all();
  }

  // Claims a free record, rotating from a pid-derived hint; blocks
  // (paced) while the array is exhausted — slot holders are publishers
  // mid-round-trip, and each round trip completes in bounded time once
  // a combiner runs.
  template <class Ctx>
  std::size_t claim(Ctx& ctx, std::uint32_t self) {
    const std::size_t hint = static_cast<std::size_t>(self) % kSlots;
    for (;;) {
      for (std::size_t k = 0; k < kSlots; ++k) {
        const std::size_t idx =
            hint + k < kSlots ? hint + k : hint + k - kSlots;
        Slot& slot = slots_[idx];
        std::uint64_t expected = pack_slot(SlotState::kFree, 0);
        if (slot.word.load(std::memory_order_relaxed) == expected &&
            slot.word.compare_exchange_strong(
                expected, pack_slot(SlotState::kClaimed, self),
                std::memory_order_acquire, std::memory_order_relaxed)) {
          ctx.on_rmw();
          return idx;
        }
      }
      // Array exhausted: park until some record frees — a publisher's
      // collect, or reclaim_dead() sweeping a corpse's records (its
      // release_gate wake is what un-parks us after a SIGKILL).
      wait_until(
          ctx,
          [this] {
            for (const Slot& s : slots_) {
              if (slot_state_of(s.word.load(std::memory_order_relaxed)) ==
                  SlotState::kFree) {
                return true;
              }
            }
            return false;
          },
          futex_waiters_);
    }
  }

  // One combiner pass (pre: gate held by this process): snapshot the
  // pending slots into a process-LOCAL batch, drive it through the
  // shared run_batch dispatch, publish results back. The local batch
  // is why a combiner crash mid-pass is unrecoverable — and why
  // crash-exposed processes publish with may_combine = false.
  template <class Ctx>
  void combine(Ctx& ctx) {
    std::array<OpSlot, kSlots> batch;
    std::array<std::size_t, kSlots> source{};
    std::array<std::uint32_t, kSlots> publisher{};
    std::size_t n = 0;
    for (std::size_t i = 0; i < kSlots; ++i) {
      Slot& s = slots_[i];
      const std::uint64_t w = s.word.load(std::memory_order_acquire);
      if (slot_state_of(w) != SlotState::kPending) continue;
      ctx.on_read();
      batch[n].request = s.request;
      batch[n].init = s.has_init ? std::optional<SwitchValue>(s.init_value)
                                 : std::nullopt;
      batch[n].done = false;
      batch[n].completion = OpCompletion::kAttached;
      source[n] = i;
      publisher[n] = slot_owner_of(w);
      ++n;
    }
    if (n == 0) return;

    run_batch(obj_, ctx, std::span<OpSlot>(batch.data(), n));

    for (std::size_t i = 0; i < n; ++i) {
      Slot& s = slots_[source[i]];
      s.result = batch[i].result;
      ctx.on_write();
      // Preserve the publisher's pid: if it died waiting, its name on
      // the kDone slot is what makes the record reclaimable.
      s.word.store(pack_slot(SlotState::kDone, publisher[i]),
                   std::memory_order_release);
    }
    rounds_.fetch_add(1, std::memory_order_relaxed);
    batched_ops_.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t count_in_state(SlotState state) const noexcept {
    std::size_t n = 0;
    for (const Slot& s : slots_) {
      if (slot_state_of(s.word.load(std::memory_order_acquire)) == state) {
        ++n;
      }
    }
    return n;
  }

  std::array<Slot, kSlots> slots_{};
  alignas(kCacheLineSize) std::atomic<std::uint32_t> gate_{0};
  // Rung-3 parking for every wait loop above. kShared scope: the futex
  // word lives in the segment, so FUTEX_WAIT/FUTEX_WAKE must key on
  // the physical page (no FUTEX_PRIVATE_FLAG) — each process maps it
  // at a different virtual address.
  alignas(kCacheLineSize) WaitPoint<FutexScope::kShared> futex_waiters_{};
  alignas(kCacheLineSize) std::atomic<std::uint64_t> rounds_{0};
  std::atomic<std::uint64_t> batched_ops_{0};
  std::atomic<std::uint64_t> direct_ops_{0};
  alignas(kCacheLineSize) Obj obj_{};
};

// A class template cannot assert on itself from inside its own
// definition, so the wrapper-level layout guarantee is pinned on a
// minimal probe instantiation: if ShmCombining<trivial Obj> is
// segment-safe, nothing in the wrapper's own members (slots, gate,
// telemetry words) breaks address freedom — a real Obj can only break
// it through its own fields, which its own SCM_ASSERT_ADDRESS_FREE
// covers (e.g. ShmCounter's).
namespace detail {
struct ShmLayoutProbe {
  std::atomic<std::uint64_t> word{0};
};
}  // namespace detail
SCM_ASSERT_ADDRESS_FREE(detail::ShmLayoutProbe);
SCM_ASSERT_ADDRESS_FREE(ShmCombining<detail::ShmLayoutProbe, 2>);

}  // namespace scm

#endif  // SCM_HAS_POSIX_SHM
