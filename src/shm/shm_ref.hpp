// ShmRef<T> — the offset smart pointer for segment-resident objects.
//
// A pointer stored inside a shared segment is garbage in every process
// but the one that wrote it (each process maps the segment at its own
// base address), so cross-object references inside the segment carry a
// byte OFFSET instead and re-derive the local address through whatever
// arena the current process holds. ShmRef is itself segment-storable:
// one trivially-copyable 64-bit field, nothing else. Offset 0 is the
// null reference (it addresses the arena header, which no object ever
// occupies).
//
// The arena is a deliberate parameter of get()/in() rather than a
// stored member: storing it would put a process-local pointer back
// into the type and defeat the point.
#pragma once

#include <cstdint>
#include <type_traits>

#include "shm/shm_layout.hpp"

namespace scm {

template <class T>
class ShmRef {
 public:
  constexpr ShmRef() = default;
  constexpr explicit ShmRef(std::uint64_t offset) noexcept
      : offset_(offset) {}

  [[nodiscard]] constexpr std::uint64_t offset() const noexcept {
    return offset_;
  }
  [[nodiscard]] constexpr explicit operator bool() const noexcept {
    return offset_ != 0;
  }

  // Resolve against this process's mapping. Arena is a template
  // parameter (anything with `at<T>(offset)`) so this header has no
  // platform dependency and ShmRef stays usable in #if-gated code.
  template <class Arena>
  [[nodiscard]] T* get(Arena& arena) const {
    return arena.template at<T>(offset_);
  }
  template <class Arena>
  [[nodiscard]] T& in(Arena& arena) const {
    return *get(arena);
  }

  friend constexpr bool operator==(ShmRef, ShmRef) = default;

 private:
  std::uint64_t offset_ = 0;
};

// ShmRef is a pure value type (no atomics, no deleted copies), so on
// top of the segment-residency baseline it is fully trivially
// copyable — references can be passed around and memcpy'd freely.
SCM_ASSERT_ADDRESS_FREE(ShmRef<int>);
static_assert(std::is_trivially_copyable_v<ShmRef<int>>,
              "ShmRef must stay a bare offset");

}  // namespace scm
