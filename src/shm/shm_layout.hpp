// SCM_ASSERT_ADDRESS_FREE — the one spelling of "this type may live
// inside a shared-memory segment".
//
// A segment maps at a different virtual address in every process, so a
// segment-resident type must be meaningful as raw bytes at any
// address: no pointers or references (use ShmRef offsets), no virtual
// anything (a vtable pointer is a process-local address), no
// destructor side effects (nobody destroys segment objects in-place —
// the segment outlives any single process and dies by unlink).
//
// The macro asserts the two properties the type system CAN check:
//
//   * standard layout — rules out virtual members/bases and guarantees
//     an inter-process-stable object representation;
//   * trivial destructibility — rules out ownership semantics that
//     would need to run in some particular process.
//
// Deliberate deviation from the classic "trivially copyable" test:
// segment types hold std::atomic members (whose copy operations are
// deleted) and delete their own copy constructors to prevent accidental
// by-value slicing out of the segment, so is_trivially_copyable_v is
// unattainable for exactly the types this macro exists for. Pure value
// types (ShmRef) additionally assert trivial copyability themselves.
// What no trait can check — pointer-typed data members that are
// otherwise standard-layout (e.g. `void* base_`) — is covered by the
// address-free lint pass (tools/scm_lint.py), which scans member
// declarations under src/shm/ and requires every non-process-local
// type there to carry this macro.
#pragma once

#include <type_traits>

// Variadic so template-ids with commas (ShmCombining<Obj, 2>) pass
// through as one type argument.
#define SCM_ASSERT_ADDRESS_FREE(...)                                  \
  static_assert(std::is_standard_layout_v<__VA_ARGS__>,               \
                #__VA_ARGS__                                          \
                " must be standard-layout to be segment-resident "    \
                "(no virtuals, one access control, stable layout)");  \
  static_assert(std::is_trivially_destructible_v<__VA_ARGS__>,        \
                #__VA_ARGS__                                          \
                " must be trivially destructible: segment objects "   \
                "are never destroyed in-place")
