// Schedule policies for the deterministic simulator.
//
// Progress conditions in the paper quantify over execution classes:
//   - obstruction-freedom: progress in executions without step
//     contention (SequentialSchedule, SoloSchedule produce these);
//   - contention-freedom: progress absent interval contention;
//   - wait-freedom: progress under every schedule (RandomSchedule,
//     RoundRobinSchedule, adversarial phases, crash injection).
// Each policy here is deterministic given its constructor arguments, so
// every test failure reproduces from one printed seed.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "support/rng.hpp"
#include "sim/simulator.hpp"

namespace scm::sim {

// Runs the lowest-pid runnable process until it finishes, then the
// next: no two operations ever overlap (no interval contention, hence
// no step contention).
class SequentialSchedule final : public Schedule {
 public:
  ProcessId next(const View& view) override { return view.runnable.front(); }
};

// Runs one distinguished process to completion first (a "solo"
// execution for that process), then the rest sequentially.
class SoloSchedule final : public Schedule {
 public:
  explicit SoloSchedule(ProcessId hero) noexcept : hero_(hero) {}

  ProcessId next(const View& view) override {
    for (ProcessId pid : view.runnable) {
      if (pid == hero_) return pid;
    }
    return view.runnable.front();
  }

 private:
  ProcessId hero_;
};

// Cycles through runnable processes, `quantum` steps each: the classic
// maximal-contention interleaving.
class RoundRobinSchedule final : public Schedule {
 public:
  explicit RoundRobinSchedule(std::uint64_t quantum = 1) noexcept
      : quantum_(quantum == 0 ? 1 : quantum) {}

  ProcessId next(const View& view) override {
    if (granted_in_quantum_ >= quantum_ || !is_runnable(view, current_)) {
      current_ = successor(view, current_);
      granted_in_quantum_ = 0;
    }
    ++granted_in_quantum_;
    return current_;
  }

 private:
  static bool is_runnable(const View& view, ProcessId pid) {
    for (ProcessId p : view.runnable) {
      if (p == pid) return true;
    }
    return false;
  }

  static ProcessId successor(const View& view, ProcessId pid) {
    for (ProcessId p : view.runnable) {
      if (p > pid) return p;
    }
    return view.runnable.front();
  }

  std::uint64_t quantum_;
  std::uint64_t granted_in_quantum_ = 0;
  ProcessId current_ = -1;
};

// Uniformly random choice among runnable processes; deterministic in
// the seed.
class RandomSchedule final : public Schedule {
 public:
  explicit RandomSchedule(std::uint64_t seed) noexcept : rng_(seed) {}

  ProcessId next(const View& view) override {
    return view.runnable[rng_.below(view.runnable.size())];
  }

 private:
  Rng rng_;
};

// Random schedule that avoids switching processes mid-operation with
// probability `stickiness`: low stickiness => heavy step contention,
// stickiness 1.0 => (almost) sequential. Used to sweep contention.
class StickyRandomSchedule final : public Schedule {
 public:
  StickyRandomSchedule(std::uint64_t seed, double stickiness) noexcept
      : rng_(seed), stickiness_(stickiness) {}

  ProcessId next(const View& view) override {
    if (last_ >= 0 && rng_.chance(stickiness_)) {
      for (ProcessId p : view.runnable) {
        if (p == last_) return p;
      }
    }
    last_ = view.runnable[rng_.below(view.runnable.size())];
    return last_;
  }

 private:
  Rng rng_;
  double stickiness_;
  ProcessId last_ = -1;
};

// Replays an explicit sequence of choices, expressed as *indices into
// the runnable set* (canonical form used by the exhaustive explorer).
// Past the end of the prefix it falls back to the first runnable
// process. Records the runnable-set size at every choice point.
class ReplaySchedule final : public Schedule {
 public:
  explicit ReplaySchedule(std::vector<std::size_t> prefix)
      : prefix_(std::move(prefix)) {}

  ProcessId next(const View& view) override {
    std::size_t index = 0;
    if (position_ < prefix_.size()) {
      index = prefix_[position_];
    }
    branching_.push_back(view.runnable.size());
    ++position_;
    if (index >= view.runnable.size()) index = view.runnable.size() - 1;
    return view.runnable[index];
  }

  // Runnable-set sizes seen at each choice point of the last run.
  [[nodiscard]] const std::vector<std::size_t>& branching() const noexcept {
    return branching_;
  }

 private:
  std::vector<std::size_t> prefix_;
  std::vector<std::size_t> branching_;
  std::size_t position_ = 0;
};

// Wraps another schedule and crashes chosen processes at chosen step
// indices (pairs of pid -> step index at which its next grant becomes a
// crash).
class CrashSchedule final : public Schedule {
 public:
  CrashSchedule(Schedule& inner, std::map<ProcessId, std::uint64_t> crash_at)
      : inner_(&inner), crash_at_(std::move(crash_at)) {}

  ProcessId next(const View& view) override { return inner_->next(view); }

  bool should_crash(ProcessId pid, const View& view) override {
    auto it = crash_at_.find(pid);
    return it != crash_at_.end() && view.step_index >= it->second;
  }

 private:
  Schedule* inner_;
  std::map<ProcessId, std::uint64_t> crash_at_;
};

// Random crash injection: each grant crashes the picked process with
// probability p, except that at least `survivors` processes are spared
// (the model allows at most n-1 crash faults).
class RandomCrashSchedule final : public Schedule {
 public:
  RandomCrashSchedule(Schedule& inner, std::uint64_t seed, double p,
                      int survivors = 1)
      : inner_(&inner), rng_(seed), p_(p), survivors_(survivors) {}

  ProcessId next(const View& view) override { return inner_->next(view); }

  bool should_crash(ProcessId pid, const View& view) override {
    const auto alive = static_cast<int>(view.runnable.size());
    if (alive <= survivors_) return false;
    if (crashed_.count(pid) != 0) return false;
    if (rng_.chance(p_)) {
      crashed_.insert(pid);
      return true;
    }
    return false;
  }

 private:
  Schedule* inner_;
  Rng rng_;
  double p_;
  int survivors_;
  std::set<ProcessId> crashed_;
};

}  // namespace scm::sim
