#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "support/assert.hpp"

namespace scm::sim {
namespace {

// A stuck simulation is a bug in a schedule or an algorithm driver; we
// fail loudly instead of hanging the test suite.
constexpr auto kWaitTimeout = std::chrono::seconds(60);

template <class Pred>
void checked_wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lk,
                  Pred pred, const char* who) {
  if (!cv.wait_for(lk, kWaitTimeout, pred)) {
    std::fprintf(stderr, "sim::Simulator deadlock: %s timed out\n", who);
    std::abort();
  }
}

}  // namespace

Simulator::Simulator(std::uint64_t max_steps) : max_steps_(max_steps) {}

Simulator::~Simulator() {
  for (auto& p : procs_) {
    if (p->thread.joinable()) p->thread.join();
  }
}

ProcessId Simulator::add_process(std::function<void(SimContext&)> body) {
  SCM_CHECK_MSG(!running_, "add_process after run()");
  const auto pid = static_cast<ProcessId>(procs_.size());
  auto proc = std::make_unique<Proc>();
  proc->body = std::move(body);
  proc->ctx = std::unique_ptr<SimContext>(new SimContext(*this, pid));
  procs_.push_back(std::move(proc));
  return pid;
}

void Simulator::thread_main(ProcessId pid) {
  Proc& me = *procs_[pid];
  {
    // Park at startup: a process may run local code (begin_op, etc.)
    // before its first shared-memory access, and that code must execute
    // under the scheduler's exclusivity as well.
    std::unique_lock lk(mu_);
    me.state = State::kParked;
    cv_.notify_all();
    checked_wait(cv_, lk, [&] { return me.state == State::kGranted; },
                 "process awaiting startup grant");
    me.state = State::kRunning;
    me.started = true;
    if (me.crash_pending) {
      me.state = State::kCrashed;
      cv_.notify_all();
      return;
    }
  }
  try {
    me.body(*me.ctx);
    std::unique_lock lk(mu_);
    me.state = State::kDone;
    cv_.notify_all();
  } catch (const Crashed&) {
    std::unique_lock lk(mu_);
    if (me.in_op) {
      op_records_[me.open_op_index].response_event = ++event_seq_;
      op_records_[me.open_op_index].complete = false;
      me.in_op = false;
    }
    me.state = State::kCrashed;
    cv_.notify_all();
  }
}

void Simulator::take_step(ProcessId pid, Access kind) {
  Proc& me = *procs_[pid];
  std::unique_lock lk(mu_);
  me.state = State::kParked;
  cv_.notify_all();
  checked_wait(cv_, lk, [&] { return me.state == State::kGranted; },
               "process awaiting step grant");
  me.state = State::kRunning;
  if (me.crash_pending) {
    lk.unlock();
    throw Crashed{};
  }
  step_log_.push_back(StepRecord{++event_seq_, pid, kind});
  ++steps_;
}

void Simulator::await_cond(ProcessId pid, std::function<bool()> pred) {
  Proc& me = *procs_[pid];
  std::unique_lock lk(mu_);
  me.wait_pred = std::move(pred);
  me.state = State::kWaiting;
  cv_.notify_all();
  checked_wait(cv_, lk, [&] { return me.state == State::kGranted; },
               "process awaiting condition");
  me.state = State::kRunning;
  me.wait_pred = nullptr;
  if (me.crash_pending) {
    lk.unlock();
    throw Crashed{};
  }
  // The wake is a scheduling event the replayed tree must contain
  // (otherwise two runs with different wake orders would replay
  // identically), but not a shared-memory step: no counter bump.
  step_log_.push_back(StepRecord{++event_seq_, pid, Access::kWake});
  ++steps_;
}

void SimContext::take_step(Access kind) { sim_->take_step(id_, kind); }

void SimContext::await(std::function<bool()> pred) {
  sim_->await_cond(id_, std::move(pred));
}

void SimContext::begin_op(std::int64_t tag) { sim_->record_begin_op(id_, tag); }

void SimContext::end_op(std::int64_t output) {
  sim_->record_end_op(id_, output);
}

void Simulator::record_begin_op(ProcessId pid, std::int64_t tag) {
  Proc& me = *procs_[pid];
  std::unique_lock lk(mu_);
  SCM_CHECK_MSG(!me.in_op, "nested begin_op");
  OpRecord rec;
  rec.pid = pid;
  rec.tag = tag;
  rec.invoke_event = ++event_seq_;
  me.in_op = true;
  me.open_op_index = op_records_.size();
  op_records_.push_back(rec);
}

void Simulator::record_end_op(ProcessId pid, std::int64_t output) {
  Proc& me = *procs_[pid];
  std::unique_lock lk(mu_);
  SCM_CHECK_MSG(me.in_op, "end_op without begin_op");
  OpRecord& rec = op_records_[me.open_op_index];
  rec.response_event = ++event_seq_;
  rec.output = output;
  rec.complete = true;
  me.in_op = false;
}

void Simulator::await_quiescent(std::unique_lock<std::mutex>& lk) {
  checked_wait(
      cv_, lk,
      [&] {
        return std::all_of(procs_.begin(), procs_.end(), [](const auto& p) {
          return p->state == State::kParked || p->state == State::kWaiting ||
                 p->state == State::kDone || p->state == State::kCrashed;
        });
      },
      "controller awaiting quiescence");
}

std::uint64_t Simulator::run(Schedule& schedule) {
  SCM_CHECK_MSG(!running_, "run() called twice");
  running_ = true;
  for (std::size_t pid = 0; pid < procs_.size(); ++pid) {
    procs_[pid]->thread =
        std::thread(&Simulator::thread_main, this, static_cast<ProcessId>(pid));
  }

  std::vector<ProcessId> runnable;
  std::unique_lock lk(mu_);
  for (;;) {
    await_quiescent(lk);

    // Runnable = parked at a step, or waiting with a satisfied
    // predicate. Predicates run on the controller thread with every
    // process quiescent, so they may peek shared state freely.
    runnable.clear();
    bool any_blocked = false;
    for (std::size_t pid = 0; pid < procs_.size(); ++pid) {
      Proc& p = *procs_[pid];
      if (p.state == State::kParked) {
        runnable.push_back(static_cast<ProcessId>(pid));
      } else if (p.state == State::kWaiting) {
        if (p.wait_pred()) {
          runnable.push_back(static_cast<ProcessId>(pid));
        } else {
          any_blocked = true;
        }
      }
    }
    if (runnable.empty()) {
      // Every live process waiting on a false predicate is a simulated
      // deadlock (lost wakeup / wedged combiner). Loud failure: this is
      // exactly the class of protocol bug the explorer exists to catch.
      SCM_CHECK_MSG(!any_blocked,
                    "simulated deadlock: every live process is parked in "
                    "await() on a false predicate");
      break;  // everyone done or crashed
    }

    if (steps_ >= max_steps_) {
      // Out of budget: crash every remaining process so the run ends in
      // a well-defined state; tests check hit_step_limit(). Waiting
      // processes are woken too (even with false predicates) so their
      // threads unwind instead of hanging the join below.
      hit_limit_ = true;
      for (std::size_t pid = 0; pid < procs_.size(); ++pid) {
        Proc& p = *procs_[pid];
        if (p.state == State::kParked || p.state == State::kWaiting) {
          p.crash_pending = true;
          p.state = State::kGranted;
        }
      }
      cv_.notify_all();
      continue;
    }

    Schedule::View view{std::span<const ProcessId>(runnable), steps_, this};
    const ProcessId pick = schedule.next(view);
    SCM_CHECK_MSG(pick >= 0 && static_cast<std::size_t>(pick) < procs_.size() &&
                      (procs_[pick]->state == State::kParked ||
                       procs_[pick]->state == State::kWaiting),
                  "schedule picked a non-runnable process");
    if (schedule.should_crash(pick, view)) {
      procs_[pick]->crash_pending = true;
    }
    procs_[pick]->state = State::kGranted;
    cv_.notify_all();
  }
  lk.unlock();

  for (auto& p : procs_) {
    if (p->thread.joinable()) p->thread.join();
  }
  return steps_;
}

bool Simulator::crashed(ProcessId pid) const {
  std::unique_lock lk(mu_);
  return procs_.at(pid)->state == State::kCrashed;
}

const StepCounters& Simulator::counters(ProcessId pid) const {
  return procs_.at(pid)->ctx->counters();
}

bool Simulator::op_has_step_contention(const OpRecord& op) const {
  for (const StepRecord& s : step_log_) {
    if (s.event <= op.invoke_event) continue;
    if (s.event >= op.response_event) break;  // step_log_ is event-ordered
    if (s.pid != op.pid) return true;
  }
  return false;
}

int Simulator::op_interval_contention(const OpRecord& op) const {
  int overlapping = 0;
  for (const OpRecord& other : op_records_) {
    if (&other == &op || other.pid == op.pid) continue;
    const std::uint64_t other_end =
        other.response_event == 0 ? ~std::uint64_t{0} : other.response_event;
    const std::uint64_t op_end =
        op.response_event == 0 ? ~std::uint64_t{0} : op.response_event;
    if (other.invoke_event < op_end && op.invoke_event < other_end) {
      ++overlapping;
    }
  }
  return overlapping;
}

bool Simulator::in_operation(ProcessId pid) const {
  // Called from Schedule::next on the controller thread, which already
  // holds mu_ indirectly via run(); state reads here are safe because
  // all other threads are parked.
  return procs_.at(pid)->in_op;
}

}  // namespace scm::sim
