// Deterministic shared-memory simulator.
//
// The paper's model is an asynchronous shared memory with an
// adversarial scheduler: complexity is counted in shared-memory steps
// and progress conditions quantify over *which interleavings occur*
// (step contention, interval contention). Real threads cannot control
// interleavings, so tests and model-level measurements run algorithms
// on this simulator instead:
//
//  * every process runs on its own thread, but a token-passing
//    controller lets exactly one process execute at a time;
//  * every shared-memory access (register read/write, RMW) is a
//    scheduling point: the process parks and the Schedule policy picks
//    who takes the next step;
//  * the controller can crash a process at any scheduling point
//    (n-1 crash faults, as in the model);
//  * all events (operation invocations/responses and steps) get global
//    sequence numbers, from which the simulator derives step-contention
//    and interval-contention verdicts per operation.
//
// Determinism: given a deterministic Schedule, the full execution —
// every register value, every step, every trace — is reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>
#include <mutex>

#include "runtime/ids.hpp"

namespace scm::sim {

class Simulator;

// Thrown into a process body when the scheduler crashes it. Algorithm
// code must be exception-neutral (it is: no catch blocks), so the crash
// unwinds to the simulator's thread wrapper, leaving shared state
// exactly as the model prescribes: half-finished.
struct Crashed {};

// kWake is the grant that resumes a process parked in SimContext::await
// — a scheduling event, not a shared-memory step in the paper's cost
// model, so it appears in the step log (schedules see it, determinism
// depends on it) but bumps no StepCounters field.
enum class Access : std::uint8_t { kRead, kWrite, kRmw, kWake };

// Execution context handed to a simulated process body. Satisfies the
// scm::ExecutionContext concept, so the same algorithm templates run
// here and on the native platform.
class SimContext {
 public:
  // Marker consumed by scm::wait_until (runtime/wait.hpp): this context
  // supports conditional parking, so blocking layers (the combining
  // wrappers' wait loops) park in await() instead of spinning — which
  // is what makes the slot protocol explorable by sim::explore.
  static constexpr bool kCanAwait = true;

  [[nodiscard]] ProcessId id() const noexcept { return id_; }
  [[nodiscard]] StepCounters& counters() noexcept { return counters_; }

  void on_read() {
    take_step(Access::kRead);
    ++counters_.reads;
  }
  void on_write() {
    take_step(Access::kWrite);
    ++counters_.writes;
  }
  void on_rmw() {
    take_step(Access::kRmw);
    ++counters_.rmws;
  }

  // Conditional scheduling point: parks this process until `pred()`
  // holds. The controller re-evaluates predicates between grants (all
  // other processes quiescent, so a predicate may read shared atomics
  // without taking steps), keeps the process out of the runnable set
  // while false, and wakes it with a kWake grant once true — at which
  // point the predicate is guaranteed still true, since nothing runs
  // between the controller's check and the wake. This is the sim-side
  // replacement for a native spin loop: the explored tree stays FINITE
  // because a waiting process contributes no interleavings while its
  // condition is false. If every live process is waiting on a false
  // predicate the run aborts loudly — a simulated lost-wakeup deadlock.
  void await(std::function<bool()> pred);

  // Operation markers. Not shared-memory steps; they stamp the global
  // event sequence so the simulator can compute per-operation step
  // contention and interval contention, and so linearizability checks
  // get a real-time order.
  void begin_op(std::int64_t tag = 0);
  void end_op(std::int64_t output = 0);

 private:
  friend class Simulator;
  SimContext(Simulator& sim, ProcessId id) noexcept : sim_(&sim), id_(id) {}
  void take_step(Access kind);

  Simulator* sim_;
  ProcessId id_;
  StepCounters counters_{};
};

// One operation as observed by the simulator.
struct OpRecord {
  ProcessId pid = kInvalidProcess;
  std::int64_t tag = 0;     // caller-chosen (e.g. request id)
  std::int64_t output = 0;  // caller-reported at end_op
  std::uint64_t invoke_event = 0;
  std::uint64_t response_event = 0;
  bool complete = false;  // false => the process crashed inside the op
};

// One granted shared-memory step.
struct StepRecord {
  std::uint64_t event = 0;  // global event sequence number
  ProcessId pid = kInvalidProcess;
  Access kind = Access::kRead;
};

// Scheduling policy. `next` picks the process to take the next step
// among the currently parked (runnable) ones; `should_crash` may kill
// the picked process at that point instead.
class Schedule {
 public:
  virtual ~Schedule() = default;

  struct View {
    std::span<const ProcessId> runnable;  // ascending pid order
    std::uint64_t step_index = 0;         // steps granted so far
    const Simulator* sim = nullptr;
  };

  virtual ProcessId next(const View& view) = 0;
  virtual bool should_crash(ProcessId /*pid*/, const View& /*view*/) {
    return false;
  }
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t max_steps = 1'000'000);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Registers a process; bodies start running only inside run().
  ProcessId add_process(std::function<void(SimContext&)> body);

  [[nodiscard]] int process_count() const noexcept {
    return static_cast<int>(procs_.size());
  }

  // Runs all processes to completion under `schedule`. Returns the
  // number of shared-memory steps granted. May be called once.
  std::uint64_t run(Schedule& schedule);

  // ---- post-run queries -------------------------------------------------

  [[nodiscard]] std::uint64_t steps_taken() const noexcept { return steps_; }
  [[nodiscard]] bool hit_step_limit() const noexcept { return hit_limit_; }
  [[nodiscard]] bool crashed(ProcessId pid) const;
  [[nodiscard]] const StepCounters& counters(ProcessId pid) const;
  [[nodiscard]] const std::vector<OpRecord>& ops() const noexcept {
    return op_records_;
  }
  [[nodiscard]] const std::vector<StepRecord>& steps() const noexcept {
    return step_log_;
  }

  // True if any *other* process took a shared-memory step between the
  // operation's invocation and its response (step contention, [6]).
  [[nodiscard]] bool op_has_step_contention(const OpRecord& op) const;

  // Number of distinct other operations overlapping this one in real
  // time (interval contention, [2]).
  [[nodiscard]] int op_interval_contention(const OpRecord& op) const;

  // True while `pid` is between begin_op and end_op. Valid during run()
  // for Schedule implementations.
  [[nodiscard]] bool in_operation(ProcessId pid) const;

 private:
  friend class SimContext;

  enum class State : std::uint8_t {
    kUnstarted,  // thread not launched yet
    kParked,     // waiting at a scheduling point (or at startup)
    kWaiting,    // parked in await(); runnable only while its pred holds
    kGranted,    // scheduler granted one step; thread is waking
    kRunning,    // executing user code exclusively
    kDone,       // body returned
    kCrashed     // body unwound via Crashed
  };

  struct Proc {
    std::function<void(SimContext&)> body;
    std::unique_ptr<SimContext> ctx;
    std::thread thread;
    State state = State::kUnstarted;
    std::function<bool()> wait_pred;  // valid while state == kWaiting
    bool crash_pending = false;
    bool started = false;  // has consumed its startup grant
    bool in_op = false;
    std::size_t open_op_index = 0;  // index into op_records_ while in_op
  };

  void thread_main(ProcessId pid);
  void take_step(ProcessId pid, Access kind);
  void await_cond(ProcessId pid, std::function<bool()> pred);
  void record_begin_op(ProcessId pid, std::int64_t tag);
  void record_end_op(ProcessId pid, std::int64_t output);

  // Waits (holding lk) until no process is kGranted/kRunning.
  void await_quiescent(std::unique_lock<std::mutex>& lk);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Proc>> procs_;
  std::vector<StepRecord> step_log_;
  std::vector<OpRecord> op_records_;
  std::uint64_t event_seq_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t max_steps_;
  bool running_ = false;
  bool hit_limit_ = false;
};

}  // namespace scm::sim
