// CombiningModel — the owner-tagged slot protocol under the
// deterministic simulator.
//
// ShmCombining (shm/shm_combining.hpp) is the protocol's cross-process
// executor: {SlotState, owner pid} packed into one atomic word per
// slot, a pid-holding gate, and a reclaim_dead() sweep for records a
// killed process can never recycle. None of that is reachable by the
// repo's exhaustive checker — real processes, real PIDs, real SIGKILL.
// This class is the same protocol rebuilt one-to-one over the
// context/platform seam so sim::explore can enumerate it:
//
//   * identical states, transitions, and word packing — it includes
//     core/slot_protocol.hpp and uses pack_slot/slot_state_of/
//     slot_owner_of verbatim, so the model cannot drift from the enum
//     the executors share;
//   * owner ids come from the context (ctx.id() + 1, nonzero as pids
//     are) instead of getpid();
//   * liveness is injectable exactly as in ShmCombining::reclaim_dead,
//     so a test declares a simulated process dead;
//   * every blocking point goes through wait_until (runtime/wait.hpp),
//     so under SimContext waiters park on predicates and the explored
//     interleaving tree is finite;
//   * "a process dies at protocol stage X" is modeled by the crash
//     surface below: a process body that calls claim_only /
//     publish_only / seize_gate and then RETURNS leaves shared state
//     exactly as a SIGKILL at that point would — the simulator retires
//     the thread, the test's alive() predicate reports it dead, and
//     the explorer checks the survivors' reclaim against every
//     interleaving.
//
// What the explorer checks on top of this model
// (slot_protocol_explore_test): linearizability of the served
// operations against the sequential spec, zero slot residue after
// drain + reclaim, the dead owner's kPending op executing EXACTLY
// once, kClaimed/kDone wreckage being swept, and the gate being stolen
// from a dead holder. The seeded mutation (kMutateDropOwnerStamp in
// core/slot_protocol.hpp) breaks the first of those sweeps and exists
// to prove these checks have teeth.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>

#include "core/batch.hpp"
#include "core/module.hpp"
#include "core/slot_protocol.hpp"
#include "history/request.hpp"
#include "runtime/ids.hpp"
#include "runtime/wait.hpp"

namespace scm::sim {

template <class Obj, std::size_t kSlots>
class CombiningModel {
  static_assert(kSlots >= 1, "a combining wrapper needs at least one slot");

  // One publication record — the in-memory twin of ShmCombining::Slot
  // minus the cacheline padding (the sim serializes every access, so
  // false sharing is not part of the modeled behavior).
  struct Slot {
    std::atomic<std::uint64_t> word{0};  // pack_slot(kFree, 0)
    Request request{};
    SwitchValue init_value = 0;
    ModuleResult result{};
    bool has_init = false;
  };

 public:
  static constexpr std::size_t kSlotCount = kSlots;
  using slot_state = SlotState;

  CombiningModel() = default;
  CombiningModel(const CombiningModel&) = delete;
  CombiningModel& operator=(const CombiningModel&) = delete;

  // The model's owner id for a context: ctx.id() + 1, so process 0 is
  // distinguishable from "unowned" the way a pid is.
  template <class Ctx>
  [[nodiscard]] static std::uint32_t owner_of(const Ctx& ctx) noexcept {
    return static_cast<std::uint32_t>(ctx.id()) + 1;
  }

  // Publish, then wait to be served — or combine, mirroring
  // ShmCombining::invoke including the may_combine split (a
  // crash-exposed publisher never takes the gate, so its death leaves
  // at most one operation ambiguous).
  template <class Ctx>
    requires Composable<Obj, Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& m,
                      std::optional<SwitchValue> init = std::nullopt,
                      bool may_combine = true) {
    const std::uint32_t self = owner_of(ctx);
    if (may_combine && try_gate(ctx, self)) {
      const ModuleResult r = scm::apply(obj_, ctx, m, init);
      combine(ctx);
      release_gate();
      return r;
    }

    const std::size_t idx = claim(ctx, self);
    publish(ctx, idx, m, init, self);
    Slot& slot = slots_[idx];
    for (;;) {
      if (slot_state_of(slot.word.load(std::memory_order_acquire)) ==
          SlotState::kDone) {
        break;
      }
      if (may_combine && try_gate(ctx, self)) {
        combine(ctx);  // serves at least our own pending slot
        release_gate();
        continue;
      }
      wait_until(ctx, [this, &slot, may_combine] {
        if (slot_state_of(slot.word.load(std::memory_order_relaxed)) ==
            SlotState::kDone) {
          return true;
        }
        return may_combine && gate_.load(std::memory_order_relaxed) == 0;
      });
    }
    ctx.on_read();
    const ModuleResult r = slot.result;
    slot.word.store(pack_slot(SlotState::kFree, 0), std::memory_order_release);
    return r;
  }

  // One combine pass if the gate is free right now (the dedicated
  // server loop of the E16 scenario, modeled).
  template <class Ctx>
    requires Composable<Obj, Ctx>
  bool try_serve(Ctx& ctx) {
    if (!try_gate(ctx, owner_of(ctx))) return false;
    combine(ctx);
    release_gate();
    return true;
  }

  // Combines until no publication is pending; same contract as the
  // executors' drain().
  template <class Ctx>
    requires Composable<Obj, Ctx>
  void drain(Ctx& ctx) {
    while (pending() != 0) {
      if (try_serve(ctx)) continue;
      wait_until(ctx, [this] {
        return pending() == 0 ||
               gate_.load(std::memory_order_relaxed) == 0;
      });
    }
  }

  // ---- crash surface ------------------------------------------------
  //
  // Each entry performs a protocol PREFIX and returns, so a process
  // body "claim_only(ctx); return;" is the model of a publisher killed
  // between claim and publish. The shared state left behind is
  // byte-for-byte what the full entry would have left at that point.

  // Dies between claim and publish: leaves a kClaimed record stamped
  // with this owner (or 0 under the seeded mutation — the leak the
  // explorer must catch). Returns the claimed index.
  template <class Ctx>
  std::size_t claim_only(Ctx& ctx) {
    return claim(ctx, owner_of(ctx));
  }

  // Dies waiting to be served: leaves a fully published kPending
  // record. The op MUST still execute exactly once (the publication
  // released it); the slot then resurfaces as dead-owned kDone for the
  // sweep. Returns the slot index.
  template <class Ctx>
  std::size_t publish_only(Ctx& ctx, const Request& m,
                           std::optional<SwitchValue> init = std::nullopt) {
    const std::uint32_t self = owner_of(ctx);
    const std::size_t idx = claim(ctx, self);
    publish(ctx, idx, m, init, self);
    return idx;
  }

  // Dies holding the gate (between election and the combine pass — a
  // combiner killed mid-batch is unrecoverable and out of the model's
  // scope, exactly as documented in ShmCombining). Blocks until the
  // election succeeds.
  template <class Ctx>
  void seize_gate(Ctx& ctx) {
    const std::uint32_t self = owner_of(ctx);
    while (!try_gate(ctx, self)) {
      wait_until(ctx,
                 [this] { return gate_.load(std::memory_order_relaxed) == 0; });
    }
  }

  // ---- reclaim ------------------------------------------------------

  // ShmCombining::reclaim_dead with two sim adaptations: liveness is
  // always injected (there are no real pids to probe), and the sweep
  // takes the context so its gate CAS and per-slot frees are COUNTED
  // steps — the explorer interleaves the sweep against live publishers
  // instead of treating it as one indivisible action.
  template <class Ctx, class Alive>
  std::size_t reclaim_dead(Ctx& ctx, Alive&& alive) {
    const std::uint32_t self = owner_of(ctx);
    std::uint32_t holder = gate_.load(std::memory_order_acquire);
    if (holder == 0) {
      if (!gate_.compare_exchange_strong(holder, self,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        return 0;
      }
      ctx.on_rmw();
    } else {
      if (alive(holder)) return 0;
      // Steal from the dead: the CAS fails if another reclaimer beat
      // us to it.
      if (!gate_.compare_exchange_strong(holder, self,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
        return 0;
      }
      ctx.on_rmw();
    }

    std::size_t reclaimed = 0;
    for (Slot& s : slots_) {
      std::uint64_t w = s.word.load(std::memory_order_acquire);
      const SlotState state = slot_state_of(w);
      const std::uint32_t owner = slot_owner_of(w);
      // kPending is exempt: the publication is complete, so the op
      // executes on the next combine and the slot resurfaces here as a
      // dead-owned kDone.
      if (owner == 0 || state == SlotState::kFree ||
          state == SlotState::kPending) {
        continue;
      }
      if (alive(owner)) continue;
      if (s.word.compare_exchange_strong(w, pack_slot(SlotState::kFree, 0),
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
        ctx.on_rmw();
        ++reclaimed;
      }
    }
    release_gate();
    return reclaimed;
  }

  // ---- inspection ---------------------------------------------------

  [[nodiscard]] std::size_t pending() const noexcept {
    return count_in_state(SlotState::kPending);
  }
  [[nodiscard]] std::size_t occupied() const noexcept {
    return kSlots - count_in_state(SlotState::kFree);
  }
  [[nodiscard]] std::uint32_t gate_holder() const noexcept {
    return gate_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t slot_word(std::size_t i) const noexcept {
    return slots_[i].word.load(std::memory_order_acquire);
  }

  [[nodiscard]] Obj& object() noexcept { return obj_; }
  [[nodiscard]] const Obj& object() const noexcept { return obj_; }

 private:
  template <class Ctx>
  bool try_gate(Ctx& ctx, std::uint32_t self) {
    std::uint32_t expected = 0;
    if (gate_.load(std::memory_order_relaxed) == 0 &&
        gate_.compare_exchange_strong(expected, self,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
      ctx.on_rmw();
      return true;
    }
    return false;
  }
  void release_gate() noexcept { gate_.store(0, std::memory_order_release); }

  // Claims a free record, rotating from an owner-derived hint; parks
  // while the array is exhausted. The ownership stamp rides in the
  // claim CAS itself — the indivisibility the reclaim sweep depends
  // on, and exactly what the seeded mutation severs.
  template <class Ctx>
  std::size_t claim(Ctx& ctx, std::uint32_t self) {
    const std::uint32_t stamp = kMutateDropOwnerStamp ? 0 : self;
    const std::size_t hint = static_cast<std::size_t>(self) % kSlots;
    for (;;) {
      for (std::size_t k = 0; k < kSlots; ++k) {
        const std::size_t idx = hint + k < kSlots ? hint + k : hint + k - kSlots;
        Slot& slot = slots_[idx];
        std::uint64_t expected = pack_slot(SlotState::kFree, 0);
        if (slot.word.load(std::memory_order_relaxed) == expected &&
            slot.word.compare_exchange_strong(
                expected, pack_slot(SlotState::kClaimed, stamp),
                std::memory_order_acquire, std::memory_order_relaxed)) {
          ctx.on_rmw();
          return idx;
        }
      }
      wait_until(ctx, [this] {
        for (const Slot& s : slots_) {
          if (s.word.load(std::memory_order_relaxed) ==
              pack_slot(SlotState::kFree, 0)) {
            return true;
          }
        }
        return false;
      });
    }
  }

  template <class Ctx>
  void publish(Ctx& ctx, std::size_t idx, const Request& m,
               std::optional<SwitchValue> init, std::uint32_t self) {
    Slot& slot = slots_[idx];
    slot.request = m;
    slot.has_init = init.has_value();
    slot.init_value = init.value_or(SwitchValue{0});
    ctx.on_write();
    // The release publishes the plain writes above; the owner rides in
    // the word so a reclaimer knows whose publication this is.
    slot.word.store(pack_slot(SlotState::kPending, self),
                    std::memory_order_release);
  }

  // One combiner pass (pre: gate held): snapshot pending slots, run
  // the batch, publish results back preserving each publisher's owner
  // stamp — a publisher that died waiting keeps its name on the kDone
  // record, which is what makes it reclaimable.
  template <class Ctx>
  void combine(Ctx& ctx) {
    std::array<OpSlot, kSlots> batch;
    std::array<std::size_t, kSlots> source{};
    std::array<std::uint32_t, kSlots> publisher{};
    std::size_t n = 0;
    for (std::size_t i = 0; i < kSlots; ++i) {
      Slot& s = slots_[i];
      const std::uint64_t w = s.word.load(std::memory_order_acquire);
      if (slot_state_of(w) != SlotState::kPending) continue;
      ctx.on_read();
      batch[n].request = s.request;
      batch[n].init = s.has_init ? std::optional<SwitchValue>(s.init_value)
                                 : std::nullopt;
      batch[n].done = false;
      batch[n].completion = OpCompletion::kAttached;
      source[n] = i;
      publisher[n] = slot_owner_of(w);
      ++n;
    }
    if (n == 0) return;

    run_batch(obj_, ctx, std::span<OpSlot>(batch.data(), n));

    for (std::size_t i = 0; i < n; ++i) {
      Slot& s = slots_[source[i]];
      s.result = batch[i].result;
      ctx.on_write();
      s.word.store(pack_slot(SlotState::kDone, publisher[i]),
                   std::memory_order_release);
    }
  }

  [[nodiscard]] std::size_t count_in_state(SlotState state) const noexcept {
    std::size_t n = 0;
    for (const Slot& s : slots_) {
      if (slot_state_of(s.word.load(std::memory_order_acquire)) == state) {
        ++n;
      }
    }
    return n;
  }

  std::array<Slot, kSlots> slots_{};
  std::atomic<std::uint32_t> gate_{0};
  Obj obj_{};
};

}  // namespace scm::sim
