// Exhaustive schedule exploration (bounded model checking).
//
// For small process counts and short algorithms (A1 takes at most ~8
// shared-memory steps) the full tree of interleavings is enumerable:
// we re-run the simulation once per leaf, replaying a canonical prefix
// of runnable-set indices and extending it depth-first. Every safety
// theorem in the paper is checked over *all* interleavings of 2-3
// processes this way, complementing the randomized sweeps.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/schedules.hpp"
#include "sim/simulator.hpp"

namespace scm::sim {

struct ExploreStats {
  std::uint64_t runs = 0;
  bool exhausted = true;  // false if the run limit stopped the search
};

// make_sim:  builds a fresh Simulator with its processes (and any shared
//            state) for one execution; returns ownership.
// check:     invoked after each complete run with the finished simulator;
//            should assert/record whatever property is under test.
// max_runs:  safety valve on the number of explored interleavings.
inline ExploreStats explore_all_schedules(
    const std::function<std::unique_ptr<Simulator>()>& make_sim,
    const std::function<void(Simulator&)>& check,
    std::uint64_t max_runs = 250'000) {
  ExploreStats stats;
  std::vector<std::size_t> prefix;  // canonical choice sequence
  for (;;) {
    auto sim = make_sim();
    ReplaySchedule schedule(prefix);
    sim->run(schedule);
    ++stats.runs;
    check(*sim);

    // Compute the next prefix in depth-first order: find the deepest
    // choice point with an untried alternative.
    const std::vector<std::size_t>& branching = schedule.branching();
    if (branching.empty()) return stats;  // no scheduling choices at all
    std::vector<std::size_t> taken(branching.size(), 0);
    for (std::size_t i = 0; i < branching.size(); ++i) {
      taken[i] = i < prefix.size() ? prefix[i] : 0;
      if (taken[i] >= branching[i]) taken[i] = branching[i] - 1;
    }
    std::size_t depth = branching.size();
    while (depth > 0) {
      --depth;
      if (taken[depth] + 1 < branching[depth]) {
        prefix.assign(taken.begin(), taken.begin() + static_cast<long>(depth));
        prefix.push_back(taken[depth] + 1);
        break;
      }
      if (depth == 0) return stats;  // tree exhausted
    }
    if (stats.runs >= max_runs) {
      stats.exhausted = false;
      return stats;
    }
  }
}

}  // namespace scm::sim
