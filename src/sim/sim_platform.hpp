// Simulated shared-memory base objects.
//
// Under the token-passing scheduler exactly one process executes at a
// time and every access is preceded by SimContext::on_*() (which parks
// until granted), so plain storage gives linearizable registers "for
// free": the grant order *is* the linearization order. Cross-thread
// visibility is established by the simulator's mutex.
#pragma once

#include <cstdint>
#include <type_traits>

#include "runtime/ids.hpp"
#include "sim/simulator.hpp"

namespace scm::sim {

template <class T>
class SimRegister {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  static constexpr int kConsensusNumber = kConsensusNumberRegister;

  SimRegister() = default;
  explicit SimRegister(T initial) noexcept : value_(initial) {}
  SimRegister(const SimRegister&) = delete;
  SimRegister& operator=(const SimRegister&) = delete;

  [[nodiscard]] T read(SimContext& ctx) const {
    ctx.on_read();
    return value_;
  }

  void write(SimContext& ctx, T value) {
    ctx.on_write();
    value_ = value;
  }

  [[nodiscard]] T peek() const noexcept { return value_; }
  void reset(T value) noexcept { value_ = value; }

 private:
  T value_{};
};

class SimTas {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberTas;

  SimTas() = default;
  SimTas(const SimTas&) = delete;
  SimTas& operator=(const SimTas&) = delete;

  [[nodiscard]] int test_and_set(SimContext& ctx) {
    ctx.on_rmw();
    const int prev = value_;
    value_ = 1;
    return prev;
  }

  [[nodiscard]] int read(SimContext& ctx) const {
    ctx.on_read();
    return value_;
  }

  void reset() noexcept { value_ = 0; }
  [[nodiscard]] int peek() const noexcept { return value_; }

 private:
  int value_ = 0;
};

template <class T>
class SimCas {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  static constexpr int kConsensusNumber = kConsensusNumberCas;

  SimCas() = default;
  explicit SimCas(T initial) noexcept : value_(initial) {}
  SimCas(const SimCas&) = delete;
  SimCas& operator=(const SimCas&) = delete;

  [[nodiscard]] bool compare_and_swap(SimContext& ctx, T& expected, T desired) {
    ctx.on_rmw();
    if (value_ == expected) {
      value_ = desired;
      return true;
    }
    expected = value_;
    return false;
  }

  [[nodiscard]] T read(SimContext& ctx) const {
    ctx.on_read();
    return value_;
  }

  void write(SimContext& ctx, T value) {
    ctx.on_write();
    value_ = value;
  }

  [[nodiscard]] T peek() const noexcept { return value_; }
  void reset(T value) noexcept { value_ = value; }

 private:
  T value_{};
};

class SimCounter {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberFetchAdd;

  SimCounter() = default;
  SimCounter(const SimCounter&) = delete;
  SimCounter& operator=(const SimCounter&) = delete;

  [[nodiscard]] std::uint64_t fetch_add(SimContext& ctx, std::uint64_t d = 1) {
    ctx.on_rmw();
    const std::uint64_t prev = value_;
    value_ += d;
    return prev;
  }

  [[nodiscard]] std::uint64_t read(SimContext& ctx) const {
    ctx.on_read();
    return value_;
  }

  [[nodiscard]] std::uint64_t peek() const noexcept { return value_; }
  void reset(std::uint64_t v = 0) noexcept { value_ = v; }

 private:
  std::uint64_t value_ = 0;
};

struct SimPlatform {
  using Context = SimContext;
  template <class T>
  using Register = SimRegister<T>;
  using Tas = SimTas;
  template <class T>
  using Cas = SimCas<T>;
  using Counter = SimCounter;
};

}  // namespace scm::sim
