// Wing & Gong style linearizability checker with memoization.
//
// Used to discharge Theorem 3 ("any safely composable module taken on
// its own is linearizable") and Theorem 4 (the composed TAS is
// linearizable) on recorded executions: tests feed the checker the
// timestamped concurrent operations of a run and the sequential spec,
// and the checker searches for a linearization respecting real-time
// order.
//
// Complexity is exponential in the number of overlapping operations;
// traces in this repository stay small (≤ ~20 ops), and the
// (linearized-set, state) memo keeps the search tractable.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "support/assert.hpp"
#include "history/request.hpp"
#include "history/specs.hpp"

namespace scm {

// One operation as observed concurrently. `invoke`/`ret` come from any
// monotone global clock (the simulator's event sequence, or an atomic
// counter on the native platform). Pending operations (crashed process
// or cut off at trace end) have completed = false; they may linearize
// anywhere after their invocation, or not at all.
struct ConcurrentOp {
  ProcessId pid = kInvalidProcess;
  Request request;
  Response response = kNoResponse;
  std::uint64_t invoke = 0;
  std::uint64_t ret = 0;
  bool completed = true;
};

namespace detail {

template <class Spec>
std::string state_key(const typename Spec::State& s) {
  if constexpr (requires { s.value; }) {
    return std::to_string(s.value);
  } else if constexpr (requires { s.decided; }) {
    return s.decided ? std::to_string(s.decision) : std::string("~");
  } else if constexpr (requires { s.items; }) {
    std::ostringstream oss;
    for (const auto& v : s.items) oss << v << ',';
    return oss.str();
  } else {
    static_assert(sizeof(Spec) && false, "no state_key for this spec");
  }
}

}  // namespace detail

template <class Spec>
class LinearizabilityChecker {
 public:
  explicit LinearizabilityChecker(std::vector<ConcurrentOp> ops)
      : ops_(std::move(ops)) {
    SCM_CHECK_MSG(ops_.size() <= 63, "trace too large for bitmask checker");
  }

  // True iff some linearization exists: a total order of all completed
  // operations (plus any subset of pending ones) that respects
  // real-time precedence and the sequential specification.
  [[nodiscard]] bool check() {
    visited_.clear();
    typename Spec::State initial{};
    return dfs(0, initial);
  }

 private:
  using Mask = std::uint64_t;

  [[nodiscard]] bool all_completed_linearized(Mask done) const {
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (ops_[i].completed && (done & (Mask{1} << i)) == 0) return false;
    }
    return true;
  }

  // Operation i may be linearized next iff no *unlinearized* operation
  // returned before i was invoked (that operation would have to come
  // first).
  [[nodiscard]] bool is_minimal(Mask done, std::size_t i) const {
    for (std::size_t j = 0; j < ops_.size(); ++j) {
      if (j == i || (done & (Mask{1} << j)) != 0) continue;
      if (!ops_[j].completed) continue;  // pending ops never block others
      if (ops_[j].ret < ops_[i].invoke) return false;
    }
    return true;
  }

  bool dfs(Mask done, const typename Spec::State& state) {
    if (all_completed_linearized(done)) return true;
    const std::string key = detail::state_key<Spec>(state);
    auto [it, inserted] = visited_[done].insert(key);
    if (!inserted) return false;  // seen this configuration

    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if ((done & (Mask{1} << i)) != 0) continue;
      if (!is_minimal(done, i)) continue;
      typename Spec::State next = state;
      const Response got = Spec::apply(next, ops_[i].request);
      if (ops_[i].completed && got != ops_[i].response) continue;
      if (dfs(done | (Mask{1} << i), next)) return true;
    }
    return false;
  }

  std::vector<ConcurrentOp> ops_;
  std::map<Mask, std::set<std::string>> visited_;
};

// Convenience wrapper.
template <class Spec>
[[nodiscard]] bool linearizable(std::vector<ConcurrentOp> ops) {
  return LinearizabilityChecker<Spec>(std::move(ops)).check();
}

}  // namespace scm
