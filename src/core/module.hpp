// Modules and their composition (Section 3 / Section 5).
//
// A module is an algorithm that can additionally be *initialized* with
// a switch value and may *abort* with a switch value instead of
// committing. Two modules compose by feeding the first module's abort
// switch values into the second module's initialization — exactly the
// structure of Figure 1. A composition is itself a module, mirroring
// Theorem 2 (composition of safely composable modules is safely
// composable), so chains of any length nest. Depth-N chains are built
// with Pipeline<Ms...> / make_pipeline (core/pipeline.hpp); the binary
// Composed below is the legacy reference combinator.
#pragma once

#include <algorithm>
#include <concepts>
#include <functional>
#include <optional>

#include "history/request.hpp"

namespace scm {

enum class Outcome : std::uint8_t { kCommit, kAbort };

struct ModuleResult {
  Outcome outcome = Outcome::kCommit;
  Response response = kNoResponse;  // meaningful iff outcome == kCommit
  SwitchValue switch_value = 0;     // meaningful iff outcome == kAbort

  static ModuleResult commit(Response r) {
    return {Outcome::kCommit, r, 0};
  }
  static ModuleResult abort_with(SwitchValue v) {
    return {Outcome::kAbort, kNoResponse, v};
  }

  [[nodiscard]] bool committed() const noexcept {
    return outcome == Outcome::kCommit;
  }
};

// Structural requirements on a composable module for a given context.
template <class M, class Ctx>
concept ComposableModule =
    requires(M m, Ctx& ctx, const Request& r, std::optional<SwitchValue> v) {
      { m.invoke(ctx, r, v) } -> std::same_as<ModuleResult>;
      { M::kConsensusNumber } -> std::convertible_to<int>;
    };

// Legacy binary composition: run A; on abort, run B initialized with
// A's switch value. The consensus number of the composition is the
// maximum over the components — the quantity the paper's "negligible
// cost" results are about.
//
// Superseded by the variadic Pipeline<Ms...> of core/pipeline.hpp
// (arbitrary depth, per-stage stats, owning mode); kept as the minimal
// reference combinator the pipeline is tested against. Modules are
// held by reference_wrapper — a Composed must not outlive its modules,
// but it can never silently decay to a raw pointer of a temporary.
template <class A, class B>
class Composed {
 public:
  static constexpr int kConsensusNumber =
      std::max(A::kConsensusNumber, B::kConsensusNumber);

  Composed(A& a, B& b) noexcept : a_(a), b_(b) {}

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& r,
                      std::optional<SwitchValue> init = std::nullopt) {
    const ModuleResult first = a_.get().invoke(ctx, r, init);
    if (first.committed()) return first;
    return b_.get().invoke(ctx, r, first.switch_value);
  }

  [[nodiscard]] A& first() noexcept { return a_; }
  [[nodiscard]] B& second() noexcept { return b_; }

 private:
  std::reference_wrapper<A> a_;
  std::reference_wrapper<B> b_;
};

// The deprecated compose(a, b) helper now lives in core/pipeline.hpp
// and forwards to make_pipeline.

}  // namespace scm
