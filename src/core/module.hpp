// Modules and their composition (Section 3 / Section 5).
//
// A module is an algorithm that can additionally be *initialized* with
// a switch value and may *abort* with a switch value instead of
// committing. Two modules compose by feeding the first module's abort
// switch values into the second module's initialization — exactly the
// structure of Figure 1. The Composed combinator is itself a module,
// mirroring Theorem 2 (composition of safely composable modules is
// safely composable), so chains of any length nest.
#pragma once

#include <algorithm>
#include <concepts>
#include <optional>

#include "history/request.hpp"

namespace scm {

enum class Outcome : std::uint8_t { kCommit, kAbort };

struct ModuleResult {
  Outcome outcome = Outcome::kCommit;
  Response response = kNoResponse;  // meaningful iff outcome == kCommit
  SwitchValue switch_value = 0;     // meaningful iff outcome == kAbort

  static ModuleResult commit(Response r) {
    return {Outcome::kCommit, r, 0};
  }
  static ModuleResult abort_with(SwitchValue v) {
    return {Outcome::kAbort, kNoResponse, v};
  }

  [[nodiscard]] bool committed() const noexcept {
    return outcome == Outcome::kCommit;
  }
};

// Structural requirements on a composable module for a given context.
template <class M, class Ctx>
concept ComposableModule =
    requires(M m, Ctx& ctx, const Request& r, std::optional<SwitchValue> v) {
      { m.invoke(ctx, r, v) } -> std::same_as<ModuleResult>;
      { M::kConsensusNumber } -> std::convertible_to<int>;
    };

// Composition of two modules: run A; on abort, run B initialized with
// A's switch value. The consensus number of the composition is the
// maximum over the components — the quantity the paper's "negligible
// cost" results are about.
template <class A, class B>
class Composed {
 public:
  static constexpr int kConsensusNumber =
      std::max(A::kConsensusNumber, B::kConsensusNumber);

  Composed(A& a, B& b) noexcept : a_(&a), b_(&b) {}

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& r,
                      std::optional<SwitchValue> init = std::nullopt) {
    const ModuleResult first = a_->invoke(ctx, r, init);
    if (first.committed()) return first;
    return b_->invoke(ctx, r, first.switch_value);
  }

  [[nodiscard]] A& first() noexcept { return *a_; }
  [[nodiscard]] B& second() noexcept { return *b_; }

 private:
  A* a_;
  B* b_;
};

// Deduction helper: compose(a, b, c) == Composed(a, Composed(b, c))...
template <class A, class B>
Composed<A, B> compose(A& a, B& b) {
  return Composed<A, B>(a, b);
}

}  // namespace scm
