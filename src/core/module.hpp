// Modules and their composition (Section 3 / Section 5).
//
// A module is an algorithm that can additionally be *initialized* with
// a switch value and may *abort* with a switch value instead of
// committing. Two modules compose by feeding the first module's abort
// switch values into the second module's initialization — exactly the
// structure of Figure 1. A composition is itself a module, mirroring
// Theorem 2 (composition of safely composable modules is safely
// composable), so chains of any length nest. Depth-N chains are built
// with Pipeline<Ms...> / make_pipeline (core/pipeline.hpp); the binary
// Composed below is the legacy reference combinator.
#pragma once

#include <algorithm>
#include <concepts>
#include <functional>
#include <optional>

#include "history/request.hpp"
#include "support/assert.hpp"

namespace scm {

enum class Outcome : std::uint8_t { kCommit, kAbort };

struct ModuleResult {
  Outcome outcome = Outcome::kCommit;
  Response response = kNoResponse;  // meaningful iff outcome == kCommit
  SwitchValue switch_value = 0;     // meaningful iff outcome == kAbort

  static ModuleResult commit(Response r) {
    return {Outcome::kCommit, r, 0};
  }
  static ModuleResult abort_with(SwitchValue v) {
    return {Outcome::kAbort, kNoResponse, v};
  }

  [[nodiscard]] bool committed() const noexcept {
    return outcome == Outcome::kCommit;
  }
};

// Structural requirements on a composable module for a given context.
template <class M, class Ctx>
concept ComposableModule =
    requires(M m, Ctx& ctx, const Request& r, std::optional<SwitchValue> v) {
      { m.invoke(ctx, r, v) } -> std::same_as<ModuleResult>;
      { M::kConsensusNumber } -> std::convertible_to<int>;
    };

// ---- the unified composable surface -------------------------------
//
// Two op-entry spellings grew side by side: modules expose
// invoke(ctx, m, init) -> ModuleResult (Section 3's switch plumbing)
// and the universal chains expose perform(ctx, m) -> ChainPerformed
// (Section 4.2's sticky stage switching, where the switch value never
// leaves the chain). Every wrapper (Sharded, Combining, Replicated)
// used to branch on which spelling the wrapped object speaks; the
// Composable concept + the apply() adapter below collapse that: a
// wrapper calls apply() once and composes over EITHER shape. Wrapper
// authors should dispatch through apply() rather than spelling the
// invoke/perform duality out again (both spellings keep working on
// the objects themselves — apply() is an adapter, not a rename).

// Module shape: invoke(ctx, m, init) -> ModuleResult.
template <class M, class Ctx>
concept ModuleShaped =
    requires(M m, Ctx& ctx, const Request& r, std::optional<SwitchValue> v) {
      { m.invoke(ctx, r, v) } -> std::same_as<ModuleResult>;
    };

// Chain shape: perform(ctx, m) -> something with a .response (the
// universal chains return ChainPerformed; anything structurally alike
// qualifies). Chains consume their switch values internally.
template <class M, class Ctx>
concept ChainShaped = requires(M m, Ctx& ctx, const Request& r) {
  { m.perform(ctx, r).response } -> std::convertible_to<Response>;
};

// A composable object speaks at least one of the two shapes.
template <class M, class Ctx>
concept Composable = ModuleShaped<M, Ctx> || ChainShaped<M, Ctx>;

// The uniform entry point: one call, either shape. Module-shaped
// objects get the full switch plumbing; chain-shaped objects commit
// their response (a chain's last stage never leaks an abort, and its
// initialization travels inside the chain — passing an external init
// to a chain is a composition error, checked here).
template <class M, class Ctx>
  requires Composable<M, Ctx>
ModuleResult apply(M& obj, Ctx& ctx, const Request& m,
                   std::optional<SwitchValue> init = std::nullopt) {
  if constexpr (ModuleShaped<M, Ctx>) {
    return obj.invoke(ctx, m, init);
  } else {
    SCM_CHECK_MSG(!init.has_value(),
                  "chain-shaped objects consume switch values internally; "
                  "an external init has no meaning here");
    return ModuleResult::commit(obj.perform(ctx, m).response);
  }
}

// ---- read-only op classification ----------------------------------
//
// Nothing in Request distinguishes reads from writes — the op code is
// spec-defined. Layers that want to serve reads differently (the
// caching combinator of core/caching.hpp) need the spec to say which
// op codes are read-only: ReadOnlyOps<kOps...> is that declaration.
// A read-only op must not change the object's state; serving it from
// a replica snapshot is then semantically invisible.
template <std::int64_t... kOps>
struct ReadOnlyOps {
  [[nodiscard]] static constexpr bool is_read_only(
      std::int64_t op) noexcept {
    return ((op == kOps) || ...);
  }
  [[nodiscard]] static constexpr bool is_read_only(
      const Request& m) noexcept {
    return is_read_only(m.op);
  }
};

// A classifier answers "is this op code read-only?" — structurally,
// so specs can hand-roll their own instead of using ReadOnlyOps.
template <class C>
concept ReadOnlyClassifier = requires(std::int64_t op, const Request& m) {
  { C::is_read_only(op) } -> std::convertible_to<bool>;
  { C::is_read_only(m) } -> std::convertible_to<bool>;
};

static_assert(ReadOnlyClassifier<ReadOnlyOps<1>>);

// Legacy binary composition: run A; on abort, run B initialized with
// A's switch value. The consensus number of the composition is the
// maximum over the components — the quantity the paper's "negligible
// cost" results are about.
//
// Superseded by the variadic Pipeline<Ms...> of core/pipeline.hpp
// (arbitrary depth, per-stage stats, owning mode); kept as the minimal
// reference combinator the pipeline is tested against. Modules are
// held by reference_wrapper — a Composed must not outlive its modules,
// but it can never silently decay to a raw pointer of a temporary.
template <class A, class B>
class [[deprecated(
    "use make_pipeline(a, b) for composition and scm::apply() as the "
    "uniform entry — Composed is the raw invoke-only legacy "
    "combinator")]] Composed {
 public:
  static constexpr int kConsensusNumber =
      std::max(A::kConsensusNumber, B::kConsensusNumber);

  Composed(A& a, B& b) noexcept : a_(a), b_(b) {}

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& r,
                      std::optional<SwitchValue> init = std::nullopt) {
    const ModuleResult first = a_.get().invoke(ctx, r, init);
    if (first.committed()) return first;
    return b_.get().invoke(ctx, r, first.switch_value);
  }

  [[nodiscard]] A& first() noexcept { return a_; }
  [[nodiscard]] B& second() noexcept { return b_; }

 private:
  std::reference_wrapper<A> a_;
  std::reference_wrapper<B> b_;
};

// The deprecated compose(a, b) helper now lives in core/pipeline.hpp
// and forwards to make_pipeline.

}  // namespace scm
