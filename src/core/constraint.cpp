#include "core/constraint.hpp"

#include <algorithm>

namespace scm {
namespace {

void permute_into(std::vector<Request>& chosen, std::vector<bool>& used,
                  std::span<const Request> pool, std::size_t depth,
                  std::vector<History>& out) {
  if (depth == chosen.size()) {
    History h;
    for (const Request& r : chosen) h.append(r);
    out.push_back(std::move(h));
    return;
  }
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (used[i]) continue;
    used[i] = true;
    chosen[depth] = pool[i];
    permute_into(chosen, used, pool, depth + 1, out);
    used[i] = false;
  }
}

}  // namespace

std::vector<History> enumerate_histories(std::span<const Request> universe,
                                         std::size_t max_universe) {
  SCM_CHECK_MSG(universe.size() <= max_universe,
                "history enumeration universe too large");
  std::vector<History> out;
  for (std::size_t k = 1; k <= universe.size(); ++k) {
    std::vector<Request> chosen(k);
    std::vector<bool> used(universe.size(), false);
    permute_into(chosen, used, universe, 0, out);
  }
  return out;
}

std::vector<History> ConstraintFunction::candidates(
    std::span<const SwitchToken> tokens,
    std::span<const Request> universe) const {
  std::vector<History> out;
  for (History& h : enumerate_histories(universe)) {
    if (contains(tokens, h)) out.push_back(std::move(h));
  }
  return out;
}

bool TasConstraint::contains(std::span<const SwitchToken> tokens,
                             const History& h) const {
  if (h.empty()) return false;
  for (const SwitchToken& t : tokens) {
    if (!h.contains(t.request.id)) return false;
  }
  const bool any_w = std::any_of(tokens.begin(), tokens.end(),
                                 [](const SwitchToken& t) { return t.value == kW; });
  if (any_w) {
    return std::any_of(tokens.begin(), tokens.end(), [&](const SwitchToken& t) {
      return t.value == kW && h.head().id == t.request.id;
    });
  }
  // head(h) must lie outside the token requests.
  return std::none_of(tokens.begin(), tokens.end(), [&](const SwitchToken& t) {
    return t.request.id == h.head().id;
  });
}

}  // namespace scm
