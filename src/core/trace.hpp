// Traces (Section 3): the sequence of invoke, init, commit and abort
// events observed in the system, ordered by real-time occurrence.
//
// Traces exist at two levels matching the paper:
//  * light-weight level (Section 5): commits carry a response value,
//    aborts/inits carry a switch value — what safely composable modules
//    actually exchange;
//  * Abstract level (Section 4): commits/aborts/inits carry full
//    histories — what the universal construction exchanges and what
//    Definition 1 is stated over.
// A TraceEvent has fields for both; checkers read the ones they need.
#pragma once

#include <mutex>
#include <ostream>
#include <vector>

#include "history/history.hpp"
#include "history/request.hpp"

namespace scm {

enum class EventKind : std::uint8_t { kInvoke, kInit, kCommit, kAbort };

inline const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kInvoke: return "invoke";
    case EventKind::kInit: return "init";
    case EventKind::kCommit: return "commit";
    case EventKind::kAbort: return "abort";
  }
  return "?";
}

struct TraceEvent {
  std::uint64_t seq = 0;  // global real-time order
  EventKind kind = EventKind::kInvoke;
  ProcessId pid = kInvalidProcess;
  Request request;
  SwitchValue switch_value = 0;  // init/abort, light-weight level
  Response response = kNoResponse;  // commit, light-weight level
  History history;                  // Abstract level (empty otherwise)
};

inline std::ostream& operator<<(std::ostream& os, const TraceEvent& e) {
  os << '@' << e.seq << ' ' << to_string(e.kind) << " p" << e.pid << ' '
     << e.request;
  if (e.kind == EventKind::kCommit) os << " -> " << e.response;
  if (e.kind == EventKind::kAbort || e.kind == EventKind::kInit) {
    os << " v=" << e.switch_value;
  }
  if (!e.history.empty()) os << " h=" << e.history;
  return os;
}

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<TraceEvent> events) : events_(std::move(events)) {}

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  [[nodiscard]] std::vector<TraceEvent> of_kind(EventKind k) const {
    std::vector<TraceEvent> out;
    for (const auto& e : events_) {
      if (e.kind == k) out.push_back(e);
    }
    return out;
  }

  // Switch tokens found in the abort replies of the trace (aborts(τ)).
  [[nodiscard]] std::vector<SwitchToken> abort_tokens() const {
    std::vector<SwitchToken> out;
    for (const auto& e : events_) {
      if (e.kind == EventKind::kAbort) {
        out.push_back(SwitchToken{e.request, e.switch_value});
      }
    }
    return out;
  }

  // Switch tokens found in the init requests of the trace (inits(τ)).
  [[nodiscard]] std::vector<SwitchToken> init_tokens() const {
    std::vector<SwitchToken> out;
    for (const auto& e : events_) {
      if (e.kind == EventKind::kInit) {
        out.push_back(SwitchToken{e.request, e.switch_value});
      }
    }
    return out;
  }

  // Every request that enters the trace: invoke/init events plus the
  // members of init histories (those were invoked in a previous module,
  // Definition 1 Validity counts them as invoked).
  [[nodiscard]] std::vector<Request> invoked_requests() const {
    std::vector<Request> out;
    auto add = [&](const Request& r) {
      for (const Request& seen : out) {
        if (seen.id == r.id) return;
      }
      out.push_back(r);
    };
    for (const auto& e : events_) {
      if (e.kind == EventKind::kInvoke || e.kind == EventKind::kInit) {
        add(e.request);
        for (const Request& r : e.history) add(r);
      }
    }
    return out;
  }

  // Earliest seq at which `id` was invoked; UINT64_MAX if never.
  //
  // Requests entering through an *init* event — as the initialized
  // request itself or as a member of an init history — are inherited
  // from a previous module of the composition: their real invocations
  // precede every event of this trace (Theorem 2 composes the modules'
  // interpretations on exactly that premise). They therefore count as
  // invoked at seq 0, before everything; only plain invoke events carry
  // their own timing.
  [[nodiscard]] std::uint64_t invoked_at(std::uint64_t id) const {
    for (const auto& e : events_) {
      if (e.kind == EventKind::kInit &&
          (e.request.id == id || e.history.contains(id))) {
        return 0;
      }
    }
    for (const auto& e : events_) {
      if (e.kind == EventKind::kInvoke && e.request.id == id) return e.seq;
    }
    return ~std::uint64_t{0};
  }

  // Projection of the trace onto the events of one process.
  [[nodiscard]] Trace project(ProcessId pid) const {
    std::vector<TraceEvent> out;
    for (const auto& e : events_) {
      if (e.pid == pid) out.push_back(e);
    }
    return Trace(std::move(out));
  }

 private:
  std::vector<TraceEvent> events_;
};

// Thread-safe trace recorder usable from both platforms. On the native
// platform the internal mutex linearizes event recording, giving a
// total order consistent with real time (events are recorded inside
// the operations they describe).
class TraceRecorder {
 public:
  void invoke(ProcessId pid, const Request& r) {
    push({0, EventKind::kInvoke, pid, r, 0, kNoResponse, {}});
  }
  void init(ProcessId pid, const Request& r, SwitchValue v) {
    push({0, EventKind::kInit, pid, r, v, kNoResponse, {}});
  }
  void init(ProcessId pid, const Request& r, History h) {
    push({0, EventKind::kInit, pid, r, 0, kNoResponse, std::move(h)});
  }
  void commit(ProcessId pid, const Request& r, Response resp) {
    push({0, EventKind::kCommit, pid, r, 0, resp, {}});
  }
  void commit(ProcessId pid, const Request& r, Response resp, History h) {
    push({0, EventKind::kCommit, pid, r, 0, resp, std::move(h)});
  }
  void abort(ProcessId pid, const Request& r, SwitchValue v) {
    push({0, EventKind::kAbort, pid, r, v, kNoResponse, {}});
  }
  void abort(ProcessId pid, const Request& r, SwitchValue v, History h) {
    push({0, EventKind::kAbort, pid, r, v, kNoResponse, std::move(h)});
  }

  [[nodiscard]] Trace trace() const {
    std::lock_guard lk(mu_);
    return Trace(events_);
  }

  void clear() {
    std::lock_guard lk(mu_);
    events_.clear();
    seq_ = 0;
  }

 private:
  void push(TraceEvent e) {
    std::lock_guard lk(mu_);
    e.seq = ++seq_;
    events_.push_back(std::move(e));
  }

  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::uint64_t seq_ = 0;
};

}  // namespace scm
