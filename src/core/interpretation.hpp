// Executable oracle for Definition 2 (safe composability).
//
// A trace τ of a light-weight module carries switch values, not
// histories. The module is safely composable iff, for every equivalence
// class e of eq(aborts(τ), M), some history h_abort ∈ e admits a valid
// interpretation φ: an assignment of histories to the trace's init,
// commit and abort indices such that
//   (1) all init indices map to one h_init ∈ M(inits(τ)),
//   (2) all abort indices map to h_abort,
//   (3) every commit's history evaluates (β) to the committed response,
//   (4) the interpreted trace φτ satisfies the Abstract properties.
//
// This checker performs that existential search exhaustively over the
// finite history universe of the trace — a bounded-model-checking
// discharge of Lemma 4, Lemma 5 and Theorem 2 on every execution the
// tests generate.
#pragma once

#include <optional>
#include <set>
#include <sstream>

#include "core/abstract_checker.hpp"
#include "core/constraint.hpp"
#include "core/trace.hpp"
#include "history/specs.hpp"

namespace scm {

struct ComposabilityCheckOptions {
  std::set<ProcessId> crashed;  // forwarded to the Abstract checker
};

namespace detail {

// Tries to complete an interpretation of `trace` given the abort
// history (spine) and init history. Commit indices get prefixes of the
// spine; returns the interpreted trace on success.
template <class Spec>
std::optional<Trace> try_interpret(const Trace& trace, const History& spine,
                                   const std::optional<History>& hinit,
                                   const ComposabilityCheckOptions& options) {
  std::vector<TraceEvent> interpreted;
  interpreted.reserve(trace.size());
  for (const TraceEvent& e : trace.events()) {
    TraceEvent out = e;
    switch (e.kind) {
      case EventKind::kInvoke:
        break;
      case EventKind::kInit:
        if (!hinit) return std::nullopt;  // init event but no init history
        out.history = *hinit;
        break;
      case EventKind::kAbort:
        out.history = spine;
        break;
      case EventKind::kCommit: {
        // Find a prefix p of the spine with: the committed request in p,
        // the response *matching the request inside p* equal to the
        // committed response, the init history as a prefix, and all
        // members invoked before this response returns.
        //
        // The paper writes condition 3 as "β(φ(i)) = response(i)"; in
        // its Lemma-4 construction φ(i) always ends at the committed
        // request, where the two readings coincide. The per-request
        // reading β(φ(i), m_i) is the one that generalizes: an
        // initialized module (Lemma 5) must assign the winner a commit
        // history that *extends* the init history — whose last response
        // belongs to a later request — or Init Ordering could never
        // hold.
        bool found = false;
        for (std::size_t len = 1; len <= spine.size(); ++len) {
          const History p = spine.prefix(len);
          if (!p.contains(e.request.id)) continue;
          if (beta<Spec>(p, e.request.id) != e.response) continue;
          // Init Ordering: the (common) init history must be a prefix
          // of every commit history.
          if (hinit && !hinit->prefix_of(p)) continue;
          bool timing_ok = true;
          for (const Request& r : p) {
            if (trace.invoked_at(r.id) > e.seq) {
              timing_ok = false;
              break;
            }
          }
          if (!timing_ok) continue;
          out.history = p;
          found = true;
          break;
        }
        if (!found) return std::nullopt;
        break;
      }
    }
    interpreted.push_back(std::move(out));
  }

  Trace phi_tau(std::move(interpreted));
  AbstractCheckOptions abs_options;
  abs_options.crashed = options.crashed;
  abs_options.strict_abort_validity = false;
  if (!check_abstract_trace(phi_tau, abs_options)) return std::nullopt;
  return phi_tau;
}

// Does any interpretation exist for this (habort, M) pair?
template <class Spec>
bool exists_valid_interpretation(const Trace& trace, const History& habort,
                                 const std::vector<History>& init_candidates,
                                 bool has_init_events,
                                 const ComposabilityCheckOptions& options) {
  if (!has_init_events) {
    return try_interpret<Spec>(trace, habort, std::nullopt, options)
        .has_value();
  }
  for (const History& hinit : init_candidates) {
    // Init Ordering: the init history must be a prefix of the abort
    // history (all init indices share hinit, so it is its own common
    // prefix).
    if (!habort.empty() && !hinit.prefix_of(habort)) continue;
    if (try_interpret<Spec>(trace, habort, hinit, options)) return true;
  }
  return false;
}

}  // namespace detail

// Full Definition-2 check of one trace against a constraint function.
template <class Spec>
CheckResult check_safely_composable(
    const Trace& trace, const ConstraintFunction& M,
    const ComposabilityCheckOptions& options = {}) {
  if (trace.empty()) return CheckResult::pass();

  const std::vector<Request> universe = trace.invoked_requests();
  const auto init_tokens = trace.init_tokens();
  const auto abort_tokens = trace.abort_tokens();
  const bool has_init_events = !init_tokens.empty();

  // Trace validity precondition: M(inits(τ)) ≠ ∅. Definition 2 only
  // quantifies over valid traces, but a trace our own modules produced
  // that is *invalid* signals a harness bug, so we fail loudly.
  const std::vector<History> init_candidates =
      M.candidates(init_tokens, universe);
  if (has_init_events && init_candidates.empty()) {
    return CheckResult::fail("trace invalid w.r.t. M: M(inits) is empty");
  }

  // Partition M(aborts(τ)) into equivalence classes of ≡_{requests(aborts)}.
  const std::vector<History> abort_candidates =
      M.candidates(abort_tokens, universe);
  std::vector<Request> abort_requests;
  for (const SwitchToken& t : abort_tokens) abort_requests.push_back(t.request);

  if (abort_candidates.empty()) {
    // eq(aborts(τ), M) = ∅: φ must be valid w.r.t. the empty history ⊥.
    if (detail::exists_valid_interpretation<Spec>(
            trace, History{}, init_candidates, has_init_events, options)) {
      return CheckResult::pass();
    }
    return CheckResult::fail(
        "no valid interpretation with empty abort history");
  }

  std::vector<std::vector<History>> classes;
  for (const History& h : abort_candidates) {
    bool placed = false;
    for (auto& cls : classes) {
      if (equivalent_under<Spec>(cls.front(), h, abort_requests)) {
        cls.push_back(h);
        placed = true;
        break;
      }
    }
    if (!placed) classes.push_back({h});
  }

  // Definition 2: *every* equivalence class must contain a history
  // admitting a valid interpretation.
  for (std::size_t c = 0; c < classes.size(); ++c) {
    bool satisfied = false;
    for (const History& habort : classes[c]) {
      if (detail::exists_valid_interpretation<Spec>(
              trace, habort, init_candidates, has_init_events, options)) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) {
      std::ostringstream oss;
      oss << "equivalence class " << c << " (representative "
          << classes[c].front()
          << ") admits no valid interpretation; trace:";
      for (const TraceEvent& e : trace.events()) oss << "\n  " << e;
      return CheckResult::fail(oss.str());
    }
  }
  return CheckResult::pass();
}

}  // namespace scm
