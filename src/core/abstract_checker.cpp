#include "core/abstract_checker.hpp"

#include <map>
#include <sstream>

namespace scm {
namespace {

std::string describe(const TraceEvent& e) {
  std::ostringstream oss;
  oss << e;
  return oss.str();
}

}  // namespace

CheckResult check_abstract_trace(const Trace& trace,
                                 const AbstractCheckOptions& options) {
  const auto& events = trace.events();

  // ---- Termination bookkeeping -------------------------------------------
  // Each invoked request must receive at most one response; non-crashed
  // processes' requests must receive exactly one, containing the
  // request itself ("h contains m").
  std::map<std::uint64_t, const TraceEvent*> responses;
  std::map<std::uint64_t, const TraceEvent*> invocations;
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case EventKind::kInvoke:
      case EventKind::kInit: {
        // Re-invocation of a request id is a harness error.
        if (invocations.count(e.request.id) != 0) {
          return CheckResult::fail("request invoked twice: " + describe(e));
        }
        invocations[e.request.id] = &e;
        break;
      }
      case EventKind::kCommit:
      case EventKind::kAbort: {
        if (invocations.count(e.request.id) == 0) {
          return CheckResult::fail("response to never-invoked request: " +
                                   describe(e));
        }
        if (responses.count(e.request.id) != 0) {
          return CheckResult::fail("request responded twice: " + describe(e));
        }
        responses[e.request.id] = &e;
        if (!e.history.contains(e.request.id)) {
          return CheckResult::fail(
              "Termination: response history omits its own request: " +
              describe(e));
        }
        break;
      }
    }
  }
  for (const auto& [id, inv] : invocations) {
    if (responses.count(id) == 0 && options.crashed.count(inv->pid) == 0) {
      return CheckResult::fail(
          "Termination: non-crashed request never responded: " +
          describe(*inv));
    }
  }

  // ---- Commit Order -------------------------------------------------------
  // Any two commit histories are prefix-comparable.
  const auto commits = trace.of_kind(EventKind::kCommit);
  for (std::size_t i = 0; i < commits.size(); ++i) {
    for (std::size_t j = i + 1; j < commits.size(); ++j) {
      const History& a = commits[i].history;
      const History& b = commits[j].history;
      if (!a.prefix_of(b) && !b.prefix_of(a)) {
        return CheckResult::fail("Commit Order violated between " +
                                 describe(commits[i]) + " and " +
                                 describe(commits[j]));
      }
    }
  }

  // ---- Abort Ordering -----------------------------------------------------
  // Every commit history is a prefix of every abort history.
  const auto aborts = trace.of_kind(EventKind::kAbort);
  for (const TraceEvent& c : commits) {
    for (const TraceEvent& a : aborts) {
      if (!c.history.prefix_of(a.history)) {
        return CheckResult::fail("Abort Ordering violated: commit " +
                                 describe(c) + " not a prefix of abort " +
                                 describe(a));
      }
    }
  }

  // ---- Validity -----------------------------------------------------------
  for (const TraceEvent& e : events) {
    if (e.kind != EventKind::kCommit && e.kind != EventKind::kAbort) continue;
    if (e.history.has_duplicates()) {
      return CheckResult::fail("Validity: duplicate request in history of " +
                               describe(e));
    }
    for (const Request& r : e.history) {
      const std::uint64_t invoked = trace.invoked_at(r.id);
      if (invoked == ~std::uint64_t{0}) {
        return CheckResult::fail("Validity: phantom request #" +
                                 std::to_string(r.id) + " in history of " +
                                 describe(e));
      }
      const bool must_precede =
          e.kind == EventKind::kCommit || options.strict_abort_validity;
      if (must_precede && invoked > e.seq) {
        return CheckResult::fail("Validity: request #" + std::to_string(r.id) +
                                 " invoked after response " + describe(e));
      }
    }
  }

  // ---- Init Ordering ------------------------------------------------------
  // Any common prefix of init histories is a prefix of any commit or
  // abort history.
  const auto inits = trace.of_kind(EventKind::kInit);
  if (!inits.empty()) {
    History common = inits.front().history;
    for (const TraceEvent& e : inits) {
      common = History::common_prefix(common, e.history);
    }
    for (const TraceEvent& e : events) {
      if (e.kind != EventKind::kCommit && e.kind != EventKind::kAbort) continue;
      if (!common.prefix_of(e.history)) {
        return CheckResult::fail(
            "Init Ordering violated: common init prefix not a prefix of " +
            describe(e));
      }
    }
  }

  return CheckResult::pass();
}

}  // namespace scm
