// Adaptive composition: closed-loop runtime tuning of the composition
// stack (the self-tuning counterpart of the static sweeps every
// compose.* scenario runs).
//
// The paper's central observation is that composition has a COST that
// scales with contention and structure — which means the best
// composition (shard fan-out, combiner election aggressiveness, wait
// rung) is a function of the OBSERVED workload, not a compile-time
// constant. Nine PRs of telemetry already measure that cost per run:
// fastpath_share and ops_per_combine from Combining, per-shard load
// from Sharded, park/fast-wake ratios from the WaitPoint rung. This
// layer closes the loop: Adaptive<Obj> wraps any Composable object,
// samples those counters every window of operations through a
// ContentionMonitor (EWMA-smoothed deltas), and drives three
// actuators the layers below expose as relaxed runtime knobs:
//
//   signal (EWMA over window)      actuator
//   1 - fastpath_share  high   ->  Sharded::set_active_shards: grow
//                                  (double, spread the load)
//   1 - fastpath_share  low    ->  shrink toward the shards actually
//                                  used (concentrate, cache locality)
//   contention sustained high  ->  Combining::set_elect_spins(0):
//                                  stop fighting for the lock,
//                                  publish and amortize into batches
//   ops_per_combine     ~1     ->  set_elect_spins(1): batching buys
//                                  nothing, restore the TAS fast path
//   park_ratio          high   ->  set_yields_before_park(1): waiters
//                                  lose the spin anyway, park early
//   park_ratio          low    ->  restore the default yield rung
//
// Cost discipline: when adaptation is DISABLED the per-op overhead is
// one relaxed load; when enabled it is one relaxed load plus one
// relaxed fetch_add, and all sampling/decision work runs once per
// window on the single thread that wins the tick lock. Every atomic
// load in this header is memory_order_relaxed — the monitor must
// never add a fence to the fast path it is observing (tools/
// scm_lint.py enforces exactly that for this file). Decisions are
// hints applied to relaxed knobs; no operation's correctness ever
// depends on seeing a reconfiguration, so the equivalence gates
// (adaptive_test, compose.adaptive's solo probes) can pin
// Adaptive<Obj> bit-identical to the bare Obj.
//
// Determinism: monitor ticks are compiled out for non-blocking
// contexts (context_can_block_v), so simulator-driven exploration
// never observes wall-clock-dependent reconfiguration and every
// sim-backed proof about Obj applies verbatim to Adaptive<Obj>.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>

#include "core/async.hpp"
#include "core/batch.hpp"
#include "core/module.hpp"
#include "core/sharding.hpp"
#include "history/request.hpp"
#include "support/assert.hpp"
#include "support/cacheline.hpp"
#include "support/parking.hpp"

namespace scm {

// One cumulative telemetry snapshot of the wrapped stack, in the units
// the layers already export. Missing surfaces (an Obj without
// combining telemetry) simply stay zero — the monitor then sees a
// permanently uncontended object, and every decision is a no-op.
struct MonitorSample {
  std::uint64_t direct_ops = 0;
  std::uint64_t combined_ops = 0;
  std::uint64_t combine_rounds = 0;
  std::uint64_t parks = 0;
  std::uint64_t fast_wakes = 0;
};

// EWMA-smoothed window signals derived from MonitorSample deltas.
struct ContentionSignals {
  double fastpath_share = 1.0;   // direct / (direct + combined)
  double ops_per_combine = 0.0;  // combined / rounds (0: no batching)
  double park_ratio = 0.0;       // parks / (parks + fast wakes)
};

// Differencing + smoothing over cumulative snapshots. Pure arithmetic
// on values the caller sampled — no atomics, no knowledge of the
// monitored object — so unit tests drive it with synthetic counter
// streams. Windows with zero operations are ignored entirely (no
// evidence, no decay): an idle stretch must not drag the signals
// toward "uncontended" and trigger a bogus shrink.
class ContentionMonitor {
 public:
  explicit ContentionMonitor(double alpha = 0.5) : alpha_(alpha) {
    SCM_CHECK_MSG(alpha > 0.0 && alpha <= 1.0,
                  "EWMA alpha must be in (0, 1]");
  }

  // Feeds the next cumulative snapshot; returns whether the window
  // contained any operations (and therefore updated the signals).
  bool observe(const MonitorSample& cum) {
    const MonitorSample d{
        cum.direct_ops - prev_.direct_ops,
        cum.combined_ops - prev_.combined_ops,
        cum.combine_rounds - prev_.combine_rounds,
        cum.parks - prev_.parks,
        cum.fast_wakes - prev_.fast_wakes,
    };
    prev_ = cum;
    const std::uint64_t ops = d.direct_ops + d.combined_ops;
    if (ops == 0) return false;
    const double fast =
        static_cast<double>(d.direct_ops) / static_cast<double>(ops);
    const double opc =
        d.combine_rounds == 0
            ? 0.0
            : static_cast<double>(d.combined_ops) /
                  static_cast<double>(d.combine_rounds);
    const std::uint64_t waits = d.parks + d.fast_wakes;
    const double pr = waits == 0 ? 0.0
                                 : static_cast<double>(d.parks) /
                                       static_cast<double>(waits);
    if (windows_ == 0) {
      sig_ = {fast, opc, pr};
    } else {
      sig_.fastpath_share = mix(sig_.fastpath_share, fast);
      sig_.ops_per_combine = mix(sig_.ops_per_combine, opc);
      sig_.park_ratio = mix(sig_.park_ratio, pr);
    }
    ++windows_;
    return true;
  }

  [[nodiscard]] const ContentionSignals& signals() const noexcept {
    return sig_;
  }
  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }

 private:
  [[nodiscard]] double mix(double old_v, double new_v) const noexcept {
    return alpha_ * new_v + (1.0 - alpha_) * old_v;
  }

  double alpha_;
  MonitorSample prev_{};
  ContentionSignals sig_{};
  std::uint64_t windows_ = 0;
};

// The knob vector a decision produces / the actuators consume.
struct AdaptiveTuning {
  std::size_t active_shards = 1;
  std::uint32_t elect_spins = 1;
  int yields_before_park = kYieldsBeforePark;

  friend bool operator==(const AdaptiveTuning&,
                         const AdaptiveTuning&) = default;
};

// Decision thresholds. The defaults encode the hysteresis that keeps
// the loop stable: grow/shrink and publish/republish bands do not
// overlap, so a signal sitting between them changes nothing.
struct AdaptivePolicy {
  double grow_contention = 0.50;     // 1-fastpath above: double shards
  double shrink_contention = 0.10;   // below: shrink toward used shards
  double publish_contention = 0.60;  // above: elect_spins -> 0
  double republish_batch = 1.5;      // ops/combine below: spins -> 1
  double park_hi = 0.50;             // park_ratio above: park early
  double park_lo = 0.05;             // below: default yield rung
};

// Smallest power of two >= n (n >= 1): shrink targets stay powers of
// two so modulo policies keep spreading threads evenly.
[[nodiscard]] constexpr std::size_t pow2_at_least(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// The decision function: PURE — current tuning + signals in, next
// tuning out — so adaptive_test enumerates its behavior without
// threads. `used_shards` is the number of active shards that served
// at least one op last window: it disambiguates "fastpath_share == 1
// because one thread owns one shard" from "== 1 because N threads
// each own their shard", which raw contention cannot (both look
// uncontended; only the former should shrink).
[[nodiscard]] inline AdaptiveTuning adapt_decide(const AdaptivePolicy& p,
                                                 const ContentionSignals& s,
                                                 AdaptiveTuning cur,
                                                 std::size_t max_shards,
                                                 std::size_t used_shards) {
  AdaptiveTuning next = cur;
  const double contention = 1.0 - s.fastpath_share;

  // Actuator 1: effective shard count. Grow by doubling under real
  // contention; shrink only when the fast path dominates AND fewer
  // shards than active actually served work.
  if (contention > p.grow_contention && cur.active_shards < max_shards) {
    next.active_shards = std::min(max_shards, cur.active_shards * 2);
  } else if (contention < p.shrink_contention) {
    const std::size_t target =
        std::min(cur.active_shards,
                 pow2_at_least(used_shards == 0 ? 1 : used_shards));
    next.active_shards = target;
  }

  // Actuator 2: combiner election. Under sustained contention stop
  // fighting for the lock — publish and let one combiner amortize.
  // Recovery keys on the achieved batch size, NOT fastpath_share: at
  // elect_spins == 0 the fast path is off by construction, so its
  // share is 0 whatever the load. Batches near one op mean the
  // amortization buys nothing — restore the direct path.
  if (cur.elect_spins > 0) {
    if (contention > p.publish_contention) next.elect_spins = 0;
  } else if (s.ops_per_combine < p.republish_batch) {
    next.elect_spins = 1;
  }

  // Actuator 3: wait-rung selection. Waiters that mostly end up
  // parking anyway should stop burning yields first; waiters that
  // almost never park get the full user-space ladder back.
  if (s.park_ratio > p.park_hi) {
    next.yields_before_park = 1;
  } else if (s.park_ratio < p.park_lo) {
    next.yields_before_park = kYieldsBeforePark;
  }
  return next;
}

// Adaptive<Obj>: forwards the entire Composable surface of Obj
// unchanged, ticking the ContentionMonitor once per kWindowOps
// operations (blocking contexts only) and applying adapt_decide()'s
// tuning through whichever actuators Obj structurally exposes. Wraps
// anything — Combining, Sharded<Combining>, a bare pipeline (every
// actuator then compiles out and only the op counter remains).
template <class Obj>
class Adaptive : public detail::ShardedConsensusBase<Obj>,
                 public detail::ShardedDepthBase<Obj> {
 public:
  // Power-of-two so the window boundary test is one mask.
  static constexpr std::uint64_t kWindowOps = 1024;

  Adaptive()
    requires std::is_default_constructible_v<Obj>
      : obj_{} {}

  template <class... Args>
  explicit Adaptive(std::in_place_t, Args&&... args)
      : obj_(std::in_place, std::forward<Args>(args)...) {}

  Adaptive(const Adaptive&) = delete;
  Adaptive& operator=(const Adaptive&) = delete;

  // ---- module surface.

  template <class Ctx>
    requires Composable<Obj, Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& m,
                      std::optional<SwitchValue> init = std::nullopt) {
    maybe_tick(ctx);
    return scm::apply(obj_.value, ctx, m, init);
  }

  template <class Ctx>
  void invoke_batch(Ctx& ctx, std::span<OpSlot> batch)
    requires requires(Obj& o) { o.invoke_batch(ctx, batch); }
  {
    maybe_tick(ctx);
    obj_.value.invoke_batch(ctx, batch);
  }

  template <class Ctx>
  auto perform(Ctx& ctx, const Request& m)
    requires requires(Obj& o) { o.perform(ctx, m); }
  {
    maybe_tick(ctx);
    return obj_.value.perform(ctx, m);
  }

  // ---- async surface: one forward per arity shape Obj accepts, so
  // ticket types, callbacks, and overload resolution all match the
  // bare object's exactly.

  template <class Ctx, class... Args>
  auto submit(Ctx& ctx, const Request& m, Args&&... args)
    requires requires(Obj& o) { o.submit(ctx, m, std::forward<Args>(args)...); }
  {
    maybe_tick(ctx);
    return obj_.value.submit(ctx, m, std::forward<Args>(args)...);
  }

  template <class Ctx, class... Args>
  void submit_detached(Ctx& ctx, const Request& m, Args&&... args)
    requires requires(Obj& o) {
      o.submit_detached(ctx, m, std::forward<Args>(args)...);
    }
  {
    maybe_tick(ctx);
    obj_.value.submit_detached(ctx, m, std::forward<Args>(args)...);
  }

  template <class Ctx>
  void drain(Ctx& ctx)
    requires requires(Obj& o) { o.drain(ctx); }
  {
    obj_.value.drain(ctx);
  }

  // ---- adaptation control & introspection.

  // Adaptation is ON by default — wrapping in Adaptive IS the opt-in —
  // and can be turned off at runtime, which reduces the wrapper's
  // per-op cost to one relaxed load (the zero-overhead configuration
  // the --compare baselines gate).
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Tuning changes applied so far, and the global op count at the
  // most recent one — the "time to converge" numerator compose.adaptive
  // reports (a converged run stops deciding, so this stops moving).
  [[nodiscard]] std::uint64_t decisions() const noexcept {
    return decisions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t last_change_ops() const noexcept {
    return last_change_ops_.load(std::memory_order_relaxed);
  }

  // The knob vector as the actuators currently hold it (defaults for
  // actuators Obj does not expose).
  [[nodiscard]] AdaptiveTuning tuning() const noexcept {
    AdaptiveTuning t;
    if constexpr (kHasShardActuator) {
      t.active_shards = obj_.value.active_shards();
    }
    if constexpr (kHasElectActuator) {
      t.elect_spins = obj_.value.elect_spins();
    }
    if constexpr (kHasWaitActuator) {
      t.yields_before_park = obj_.value.yields_before_park();
    }
    return t;
  }

  [[nodiscard]] const ContentionSignals& signals() const noexcept {
    return monitor_.signals();
  }
  [[nodiscard]] std::uint64_t windows() const noexcept {
    return monitor_.windows();
  }

  [[nodiscard]] Obj& object() noexcept { return obj_.value; }
  [[nodiscard]] const Obj& object() const noexcept { return obj_.value; }

  // ---- forwarded statistics surfaces, so an Adaptive slot anywhere
  // in a stack keeps the layers above it fully informed.

  [[nodiscard]] std::uint64_t direct_ops() const noexcept
    requires requires(const Obj& o) { o.direct_ops(); }
  {
    return obj_.value.direct_ops();
  }

  [[nodiscard]] std::uint64_t combined_ops() const noexcept
    requires requires(const Obj& o) { o.combined_ops(); }
  {
    return obj_.value.combined_ops();
  }

  [[nodiscard]] std::uint64_t combine_rounds() const noexcept
    requires requires(const Obj& o) { o.combine_rounds(); }
  {
    return obj_.value.combine_rounds();
  }

  [[nodiscard]] ParkStats park_stats() const noexcept
    requires requires(const Obj& o) {
      { o.park_stats() } -> std::same_as<ParkStats>;
    }
  {
    return obj_.value.park_stats();
  }

  [[nodiscard]] PipelineStageStats stats(std::size_t i) const
    requires requires(const Obj& o, std::size_t j) {
      { o.stats(j) } -> std::same_as<PipelineStageStats>;
    }
  {
    return obj_.value.stats(i);
  }

  [[nodiscard]] std::uint64_t commits_by(ProcessId pid, std::size_t i) const
    requires requires(const Obj& o, std::size_t j) { o.commits_by(pid, j); }
  {
    return obj_.value.commits_by(pid, i);
  }

  [[nodiscard]] int consensus_number() const
    requires requires(const Obj& o) { o.consensus_number(); }
  {
    return obj_.value.consensus_number();
  }

 private:
  static constexpr bool kHasShardActuator = requires(Obj& o) {
    o.set_active_shards(std::size_t{1});
    { o.active_shards() } -> std::convertible_to<std::size_t>;
  };
  static constexpr bool kHasElectActuator = requires(Obj& o) {
    o.set_elect_spins(std::uint32_t{1});
    { o.elect_spins() } -> std::convertible_to<std::uint32_t>;
  };
  static constexpr bool kHasWaitActuator = requires(Obj& o) {
    o.set_yields_before_park(1);
    { o.yields_before_park() } -> std::convertible_to<int>;
  };

  [[nodiscard]] static constexpr std::size_t max_shards() noexcept {
    if constexpr (requires { Obj::kShardCount; }) {
      return Obj::kShardCount;
    } else {
      return 1;
    }
  }

  // Per-shard activity tracking needs per-shard telemetry.
  static constexpr bool kHasShardTelemetry = requires(const Obj& o) {
    Obj::kShardCount;
    o.shard(std::size_t{0}).direct_ops();
    o.shard(std::size_t{0}).combined_ops();
  };

  // The per-op hook. Disabled: one relaxed load. Enabled: one relaxed
  // load + one relaxed fetch_add; on a window boundary ONE thread
  // takes the tick lock and does the sampling/decision work, everyone
  // else proceeds untouched. Compiled out entirely for contexts that
  // cannot block (the deterministic simulator).
  template <class Ctx>
  void maybe_tick(Ctx& ctx) {
    (void)ctx;
    if constexpr (context_can_block_v<Ctx>) {
      if (!enabled_.load(std::memory_order_relaxed)) return;
      const std::uint64_t n =
          op_count_.value.fetch_add(1, std::memory_order_relaxed) + 1;
      if ((n & (kWindowOps - 1)) != 0) return;
      if (tick_lock_.exchange(true, std::memory_order_acquire)) return;
      tick(n);
      tick_lock_.store(false, std::memory_order_release);
    }
  }

  // One monitor window: sample cumulative telemetry, difference +
  // smooth, decide, actuate. Runs under tick_lock_, so the monitor
  // state and the actuators are single-writer.
  void tick(std::uint64_t total_ops) {
    MonitorSample cum;
    if constexpr (requires(const Obj& o) { o.direct_ops(); }) {
      cum.direct_ops = obj_.value.direct_ops();
    }
    if constexpr (requires(const Obj& o) { o.combined_ops(); }) {
      cum.combined_ops = obj_.value.combined_ops();
    }
    if constexpr (requires(const Obj& o) { o.combine_rounds(); }) {
      cum.combine_rounds = obj_.value.combine_rounds();
    }
    if constexpr (requires(const Obj& o) {
                    { o.park_stats() } -> std::same_as<ParkStats>;
                  }) {
      const ParkStats ps = obj_.value.park_stats();
      cum.parks = ps.parks;
      cum.fast_wakes = ps.fast_wakes;
    }
    const std::size_t used = used_shards();
    if (!monitor_.observe(cum)) return;
    const AdaptiveTuning cur = tuning();
    const AdaptiveTuning next =
        adapt_decide(policy_, monitor_.signals(), cur, max_shards(), used);
    if (next == cur) return;
    if constexpr (kHasShardActuator) {
      if (next.active_shards != cur.active_shards) {
        obj_.value.set_active_shards(next.active_shards);
      }
    }
    if constexpr (kHasElectActuator) {
      if (next.elect_spins != cur.elect_spins) {
        obj_.value.set_elect_spins(next.elect_spins);
      }
    }
    if constexpr (kHasWaitActuator) {
      if (next.yields_before_park != cur.yields_before_park) {
        obj_.value.set_yields_before_park(next.yields_before_park);
      }
    }
    decisions_.fetch_add(1, std::memory_order_relaxed);
    last_change_ops_.store(total_ops, std::memory_order_relaxed);
  }

  // Active shards that served at least one op since the last window
  // (per-shard cumulative deltas — reads each shard's own counters,
  // adds nothing to any hot path). The shrink disambiguator: see
  // adapt_decide.
  [[nodiscard]] std::size_t used_shards() {
    if constexpr (kHasShardTelemetry) {
      std::size_t used = 0;
      for (std::size_t s = 0; s < Obj::kShardCount; ++s) {
        const std::uint64_t cum = obj_.value.shard(s).direct_ops() +
                                  obj_.value.shard(s).combined_ops();
        if (cum > shard_prev_[s]) ++used;
        shard_prev_[s] = cum;
      }
      return used;
    } else {
      return 1;
    }
  }

  Padded<Obj> obj_;
  // The op counter is the only enabled-path hot write; padded so the
  // fetch_add traffic never shares a line with monitor state.
  Padded<std::atomic<std::uint64_t>> op_count_{};
  std::atomic<bool> enabled_{true};
  std::atomic<bool> tick_lock_{false};
  std::atomic<std::uint64_t> decisions_{0};
  std::atomic<std::uint64_t> last_change_ops_{0};
  ContentionMonitor monitor_{};
  AdaptivePolicy policy_{};
  std::array<std::uint64_t, max_shards()> shard_prev_{};
};

}  // namespace scm
