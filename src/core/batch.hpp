// Batch invocation layer: the publication record shared by every
// batched execution path (pipelines, chains, the flat-combining
// wrapper) and the generic dispatcher that drives a batch through any
// ComposableModule.
//
// The paper measures composition one operation at a time; under
// contention the dominant cost is every process paying the full
// composed-chain walk itself. A batch turns that per-operation walk
// into a per-batch walk: the executor runs MANY pending requests
// through the chain in one pass (Pipeline::invoke_batch walks the
// abort→init switch plumbing stage-major; Combining<> elects one
// combiner to execute a whole publication list), so the composition
// overhead — per-stage bookkeeping, the switch-value fold, cache-line
// traffic into the stages — is amortized over the batch.
//
// Semantics: a batch executed by a single thread produces exactly the
// results of invoking each slot in order, provided the stages are
// distinct objects (they always are in a pipeline — each stage's
// invocation subsequence, and therefore its state evolution, is
// identical under per-op and stage-major order). The compose.batched
// scenario and combining_test pin this equivalence.
#pragma once

#include <optional>
#include <span>

#include "core/module.hpp"
#include "core/slot_protocol.hpp"  // OpCompletion, SlotState
#include "history/request.hpp"

namespace scm {

// One pending operation of a batch: the request, its upstream
// initialization (std::nullopt for "not initialized", exactly as in
// the per-op invoke), and the result slot the executor fills in. A
// batch executor runs exactly the slots whose `done` flag is false —
// default-initialized slots are pending — and sets the flag as it
// finalizes each result, so every flag is true when the batch call
// returns. Executors nest on this contract: an outer pipeline hands a
// nested stage the whole span and the nested walk skips the slots the
// outer one already finalized, no gathering or copying required.
// `completion` rides along untouched by executors; only the
// batch-assembling layer (the combiner) acts on it when writing
// results back.
struct OpSlot {
  Request request;
  std::optional<SwitchValue> init;
  ModuleResult result;
  bool done = false;
  OpCompletion completion = OpCompletion::kAttached;
};

// A module with a native batch path. Modules are free to omit it —
// run_batch falls back to the per-op loop — and free to specialize it
// when a whole batch can share work (Pipeline walks its switch
// plumbing once per batch; a future async stage could overlap slots).
template <class M, class Ctx>
concept BatchInvocable = requires(M m, Ctx& ctx, std::span<OpSlot> batch) {
  m.invoke_batch(ctx, batch);
};

// Generic batch dispatch: the module's own invoke_batch when it has
// one, otherwise the semantics-defining per-op loop. Every pending
// (done == false) slot's result is filled and its flag set on return.
// The fallback enters through scm::apply(), so any Composable —
// module-shaped or chain-shaped — can sit under a batching layer.
template <class M, class Ctx>
  requires BatchInvocable<M, Ctx> || Composable<M, Ctx>
void run_batch(M& m, Ctx& ctx, std::span<OpSlot> batch) {
  if constexpr (BatchInvocable<M, Ctx>) {
    m.invoke_batch(ctx, batch);
  } else {
    for (OpSlot& slot : batch) {
      if (slot.done) continue;
      slot.result = scm::apply(m, ctx, slot.request, slot.init);
      slot.done = true;
    }
  }
}

}  // namespace scm
