// Read-mostly replication: serve reads from versioned local replicas,
// pay the paper's composition price only on the write slice.
//
// The paper's per-operation costs (extra RMWs and steps per layer
// crossed) are unavoidable for operations that MUTATE the composed
// object; a read against a cached snapshot is a relaxed load plus a
// version check. Replicated<Obj, N, Model> keeps N cacheline-padded
// replica tables of {key, value, generation} entries, each entry
// guarded by a seqlock-style version word:
//
//   * reads classified read-only by the Model are served from the
//     caller's replica via a version-checked snapshot — no shared
//     write, no RMW, which is what lets the read slice scale with
//     cores while the write slice tracks the wrapped object's curve
//     (the compose.cached scenario's claim);
//   * writes are funneled unchanged through the wrapped object's
//     submit() path (Combining's publication slots), and the
//     operation's completion callback performs invalidation + refill:
//     bump the global generation (one fetch_add — every replica's
//     stale entries miss from that point on, O(1) invalidation), then
//     reinstall the written key odd→apply→even under the entry's
//     seqlock;
//   * a cache-miss fill is just the read submitted through the object
//     with a fill callback — against a slow backend the ticket simply
//     completes late, exactly PR 5's "the caching layer must consume
//     Ticket<R>s" instruction.
//
// Correctness (linearizable mode, staleness bound 0): a hit requires
// the entry's generation to EQUAL the global generation loaded at the
// start of the read — the read's linearization point. The wrapped
// object's completion callbacks fire at each operation's serialization
// point (Combining runs them under the election lock on every path),
// so generations are assigned in linearization order: an entry
// matching the current generation holds exactly the value the object
// would return, and every committed write bumps the generation before
// its publisher can return, so no later read can hit a pre-write
// entry. Mixed histories are pinned by lincheck in caching_test.
// Raising the staleness bound k admits snapshots up to k generations
// old (the Perrin et al. trade: replicas may serve slightly stale
// snapshots where the spec allows it); the entry seqlock still makes
// torn values impossible at every bound.
//
// Backend requirements: in linearizable mode the wrapped object must
// run completion callbacks at the serialization point (Combining, or
// Sharded<Combining> routed ByKeyHash so same-key operations share a
// shard — cross-key callback races only cause conservative misses).
// Objects without a callback-carrying submit (a bare pipeline) still
// compose — operations run through scm::apply with the callback fired
// inline — but then the ordering guarantee is the caller's problem
// (fine single-threaded, which is all such objects support anyway).
//
// Cached<Obj, Model> is the single-replica special case: one shared
// table, still seqlock-correct, for when the working set is hot reads
// on few cores.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>

#include "core/async.hpp"
#include "core/module.hpp"
#include "core/sharding.hpp"
#include "history/request.hpp"
#include "support/assert.hpp"
#include "support/cacheline.hpp"

namespace scm {

// A replication model tells the cache how to interpret a spec's
// requests: which ops are read-only (servable from a replica), which
// cache key a request touches, and — after a committed write — what a
// subsequent read of that key would return (std::nullopt when the
// write's effect on reads is not derivable from its response, in
// which case the cache invalidates without refilling).
template <class M>
concept ReplicationModel =
    requires(const Request& m, Response r) {
      { M::is_read(m) } -> std::convertible_to<bool>;
      { M::key(m) } -> std::convertible_to<std::uint64_t>;
      { M::read_after_write(m, r) } -> std::same_as<std::optional<Response>>;
    };

template <class Obj, std::size_t kReplicas, class Model,
          class Policy = ByThread, std::size_t kEntries = 64,
          std::size_t kRecs = 32>
  requires ReplicationModel<Model>
class Replicated : public detail::ShardedConsensusBase<Obj>,
                   public detail::ShardedDepthBase<Obj> {
  static_assert(kReplicas >= 1, "a replicated cache needs a replica");
  static_assert(kEntries >= 1, "a replica needs at least one entry");
  static_assert(kRecs >= 1, "the async completion pool needs a record");

 public:
  static constexpr std::size_t kReplicaCount = kReplicas;
  static constexpr std::size_t kEntryCount = kEntries;

  Replicated()
    requires std::is_default_constructible_v<Obj>
      : obj_{} {}

  template <class... Args>
  explicit Replicated(std::in_place_t, Args&&... args)
      : obj_(std::in_place, std::forward<Args>(args)...) {}

  Replicated(const Replicated&) = delete;
  Replicated& operator=(const Replicated&) = delete;

  // Every async completion record must have been released by its
  // callback before the cache goes away — an outstanding record means
  // an operation is still in flight inside the wrapped object and its
  // callback is about to write freed memory. Collect or drop all
  // tickets (a dropped ticket waits its operation out) and drain()
  // detached submissions first.
  ~Replicated() {
    for (auto& p : recs_) {
      SCM_CHECK_MSG(p.value.busy.load(std::memory_order_acquire) == 0,
                    "Replicated destroyed with an in-flight completion "
                    "record (outstanding submission)");
    }
  }

  // Module surface: reads hit the caller's replica when fresh enough,
  // everything else — misses, writes, initialized (switch-carrying)
  // requests — runs through the wrapped object with the appropriate
  // completion callback. The callback completes before the wrapped
  // object hands the result back (Combining fires it before kDone),
  // so a stack record suffices here.
  template <class Ctx>
    requires Composable<Obj, Ctx> && ShardRoutingPolicy<Policy, Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& m,
                      std::optional<SwitchValue> init = std::nullopt) {
    const std::size_t rep = replica_of(ctx, m);
    if (Model::is_read(m) && !init.has_value()) {
      if (const auto v = try_read(ctx, rep, key_of(m))) {
        return ModuleResult::commit(*v);
      }
      CacheRec rec(this, rep, m, /*pooled=*/false);
      return run_through(ctx, m, init, &Replicated::fill_cb, &rec);
    }
    CacheRec rec(this, rep, m, /*pooled=*/false);
    return run_through(ctx, m, init, &Replicated::write_cb, &rec);
  }

  // Async surface: a read hit is a ready ticket (it cost no shared
  // write, there is nothing to wait for); a miss or write is the
  // wrapped object's own submission with a pooled completion record
  // carrying the invalidation/refill. When the pool is exhausted the
  // operation still proceeds — a miss just skips its fill, a write
  // falls back to invalidate-only (self is the cookie; correctness
  // never depends on refills, they only raise the hit rate).
  template <class Ctx>
    requires Composable<Obj, Ctx> && ShardRoutingPolicy<Policy, Ctx>
  Ticket<ModuleResult> submit(Ctx& ctx, const Request& m,
                              std::optional<SwitchValue> init = std::nullopt) {
    const std::size_t rep = replica_of(ctx, m);
    if (Model::is_read(m) && !init.has_value()) {
      if (const auto v = try_read(ctx, rep, key_of(m))) {
        return Ticket<ModuleResult>::ready(ModuleResult::commit(*v));
      }
      if (CacheRec* rec = claim_rec(rep, m)) {
        return submit_through(ctx, m, init, &Replicated::fill_cb, rec);
      }
      return submit_through(ctx, m, init, nullptr, nullptr);
    }
    if (CacheRec* rec = claim_rec(rep, m)) {
      return submit_through(ctx, m, init, &Replicated::write_cb, rec);
    }
    return submit_through(ctx, m, init, &Replicated::invalidate_cb, this);
  }

  // Probe a replica's table directly — no fill, no traffic to the
  // wrapped object. Tests and scenarios use this to check that a
  // committed write is (in)visible on every replica.
  [[nodiscard]] std::optional<Response> read_at(std::size_t replica,
                                                std::uint64_t key) {
    SCM_CHECK(replica < kReplicas);
    return snapshot(replicas_[replica], key,
                    version_.value.load(std::memory_order_seq_cst));
  }

  // Staleness bound in generations: 0 (the default) is linearizable —
  // a hit must match the current generation exactly; k admits
  // snapshots at most k committed writes old.
  void set_staleness_bound(std::uint64_t k) noexcept {
    staleness_bound_.store(k, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t staleness_bound() const noexcept {
    return staleness_bound_.load(std::memory_order_relaxed);
  }

  // The global generation: one bump per completed write — equal to the
  // number of invalidations performed.
  [[nodiscard]] std::uint64_t version() const noexcept {
    return version_.value.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t invalidations() const noexcept {
    return version();
  }

  // ---- cache telemetry (relaxed, aggregated over replicas).
  [[nodiscard]] std::uint64_t hits() const noexcept {
    return sum(&Replica::hits);
  }
  [[nodiscard]] std::uint64_t misses() const noexcept {
    return sum(&Replica::misses);
  }
  // Snapshot attempts abandoned because an installer held the entry's
  // seqlock odd (or moved it) mid-read — each one became a miss, never
  // a torn value.
  [[nodiscard]] std::uint64_t torn_retries() const noexcept {
    return sum(&Replica::torn);
  }
  [[nodiscard]] std::uint64_t fills() const noexcept {
    return sum(&Replica::fills);
  }

  [[nodiscard]] Obj& object() noexcept { return obj_.value; }
  [[nodiscard]] const Obj& object() const noexcept { return obj_.value; }

  [[nodiscard]] Policy& policy() noexcept { return policy_; }
  [[nodiscard]] const Policy& policy() const noexcept { return policy_; }

  // ---- forwarded surfaces (enabled exactly when Obj provides them).

  template <class Ctx>
  void drain(Ctx& ctx)
    requires requires(Obj& o) { o.drain(ctx); }
  {
    obj_.value.drain(ctx);
  }

  [[nodiscard]] PipelineStageStats stats(std::size_t i) const
    requires requires(const Obj& o, std::size_t j) {
      { o.stats(j) } -> std::same_as<PipelineStageStats>;
    }
  {
    return obj_.value.stats(i);
  }

  void reset_stats() noexcept
    requires requires(Obj& o) { o.reset_stats(); }
  {
    obj_.value.reset_stats();
  }

  [[nodiscard]] std::uint64_t commits_by(ProcessId pid, std::size_t i) const
    requires requires(const Obj& o, std::size_t j) { o.commits_by(pid, j); }
  {
    return obj_.value.commits_by(pid, i);
  }

  // Replication adds only registers (the seqlock words and the global
  // generation), so the composition's consensus power is the wrapped
  // object's.
  [[nodiscard]] int consensus_number() const
    requires requires(const Obj& o) { o.consensus_number(); }
  {
    return obj_.value.consensus_number();
  }

 private:
  // One direct-mapped cache entry. The seqlock protocol: installers
  // CAS the version word even→odd (mutual exclusion between
  // installers; a loser skips its install — refills are best-effort),
  // write the fields, then release-store even+2. Readers snapshot the
  // word, read the fields, and re-check the word: any concurrent
  // install is detected and the read becomes a miss. Fields are
  // relaxed atomics, not plain loads — a reader may race an installer
  // by design, and the seqlock re-check is what discards those reads.
  struct Entry {
    std::atomic<std::uint64_t> ver{0};
    std::atomic<std::uint64_t> key1{0};  // key + 1; 0 = empty
    std::atomic<Response> val{0};
    std::atomic<std::uint64_t> gen{0};
  };

  struct alignas(kCacheLineSize) Replica {
    std::array<Entry, kEntries> entries{};
    // Telemetry lives with its replica: a ByThread caller bumps
    // counters on lines it already owns.
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> torn{0};
    std::atomic<std::uint64_t> fills{0};
  };

  // Completion-callback state for one in-flight operation: which
  // replica to refill and the request whose key/effect the refill
  // concerns. Stack-allocated on blocking paths (the callback runs
  // before the wrapped object hands the result back); pool-claimed on
  // async paths, released by the callback.
  struct CacheRec {
    CacheRec() = default;
    CacheRec(Replicated* s, std::size_t r, const Request& m, bool p)
        : self(s), replica(r), req(m), pooled(p) {}

    Replicated* self = nullptr;
    std::size_t replica = 0;
    Request req;
    bool pooled = false;
    std::atomic<std::uint32_t> busy{0};

    void release() noexcept {
      if (pooled) busy.store(0, std::memory_order_release);
    }
  };

  template <class Ctx>
  std::size_t replica_of(Ctx& ctx, const Request& m) {
    const std::size_t r = policy_(ctx, m, kReplicas);
    SCM_CHECK_MSG(r < kReplicas,
                  "replica policy produced an out-of-range replica");
    return r;
  }

  [[nodiscard]] static std::uint64_t key_of(const Request& m) {
    return static_cast<std::uint64_t>(Model::key(m));
  }

  [[nodiscard]] static std::size_t slot_of(std::uint64_t key) noexcept {
    return static_cast<std::size_t>(ByKeyHash::mix(key) % kEntries);
  }

  // The version-checked snapshot shared by the hot read path and the
  // read_at probe: returns the entry's value iff the seqlock snapshot
  // is consistent, the key matches, and the tagged generation is
  // within the staleness bound of `cur`. No counters — callers
  // attribute hits/misses themselves.
  std::optional<Response> snapshot(Replica& rep, std::uint64_t key,
                                   std::uint64_t cur) {
    Entry& e = rep.entries[slot_of(key)];
    const std::uint64_t v1 = e.ver.load(std::memory_order_acquire);
    if ((v1 & 1) != 0) {
      rep.torn.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    const std::uint64_t k1 = e.key1.load(std::memory_order_relaxed);
    const Response val = e.val.load(std::memory_order_relaxed);
    const std::uint64_t g = e.gen.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (e.ver.load(std::memory_order_relaxed) != v1) {
      rep.torn.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    if (k1 != key + 1) return std::nullopt;
    // g > cur: installed after this read's linearization point —
    // serving it would claim the future. g too far below cur: staler
    // than the bound admits. Both are misses.
    if (g > cur) return std::nullopt;
    if (cur - g > staleness_bound_.load(std::memory_order_relaxed)) {
      return std::nullopt;
    }
    return val;
  }

  // The hot read path: one seq_cst generation load (the linearization
  // point of a hit) plus the entry snapshot. Counted as two reads —
  // the generation and the entry are the operation's real shared
  // traffic; the RMW-free path is the whole point.
  template <class Ctx>
  std::optional<Response> try_read(Ctx& ctx, std::size_t rep,
                                   std::uint64_t key) {
    ctx.on_read();
    const std::uint64_t cur = version_.value.load(std::memory_order_seq_cst);
    ctx.on_read();
    Replica& r = replicas_[rep];
    const auto v = snapshot(r, key, cur);
    (v.has_value() ? r.hits : r.misses)
        .fetch_add(1, std::memory_order_relaxed);
    return v;
  }

  // Best-effort install of (key, val) tagged with generation g. The
  // even→odd CAS excludes concurrent installers (from differently-
  // locked backends, e.g. other shards of a Sharded<Combining>); a
  // lost race abandons the install — the entry's owner wins, later
  // reads of our key simply miss and refill.
  void install(std::size_t rep, std::uint64_t key, Response val,
               std::uint64_t g) {
    Entry& e = replicas_[rep].entries[slot_of(key)];
    std::uint64_t v = e.ver.load(std::memory_order_relaxed);
    if ((v & 1) != 0) return;
    if (!e.ver.compare_exchange_strong(v, v + 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      return;
    }
    e.key1.store(key + 1, std::memory_order_relaxed);
    e.val.store(val, std::memory_order_relaxed);
    e.gen.store(g, std::memory_order_relaxed);
    e.ver.store(v + 2, std::memory_order_release);
    replicas_[rep].fills.fetch_add(1, std::memory_order_relaxed);
  }

  // ---- completion callbacks (run by the wrapped object's finalizing
  // thread at the operation's serialization point — under Combining's
  // election lock; they must not re-enter the wrapped object, and they
  // don't: generation + entry seqlocks only).

  // A committed read's response is the object's value for that key at
  // this serialization point; tag it with the generation as of NOW.
  // Callbacks fire in linearization order, so every earlier write's
  // bump is included and no later one — the tag is exact.
  static void fill_cb(void* user, const ModuleResult& r) {
    auto* rec = static_cast<CacheRec*>(user);
    if (r.committed()) {
      Replicated* self = rec->self;
      self->install(rec->replica, key_of(rec->req), r.response,
                    self->version_.value.load(std::memory_order_seq_cst));
    }
    rec->release();
  }

  // A write bumps the generation FIRST (from this instant every
  // replica's pre-write entries miss), then — when the model can
  // derive the post-write value — reinstalls the written key into the
  // writer's replica tagged with the new generation. Aborted results
  // bump too: a spurious invalidation is a missed hit, never an error.
  static void write_cb(void* user, const ModuleResult& r) {
    auto* rec = static_cast<CacheRec*>(user);
    Replicated* self = rec->self;
    const std::uint64_t g =
        self->version_.value.fetch_add(1, std::memory_order_seq_cst) + 1;
    if (r.committed()) {
      if (const auto v = Model::read_after_write(rec->req, r.response)) {
        self->install(rec->replica, key_of(rec->req), *v, g);
      }
    }
    rec->release();
  }

  // Pool-exhaustion fallback for async writes: invalidate without
  // refilling (no per-op state needed — the cookie is the cache).
  static void invalidate_cb(void* user, const ModuleResult&) {
    static_cast<Replicated*>(user)->version_.value.fetch_add(
        1, std::memory_order_seq_cst);
  }

  // ---- routing operations through the wrapped object. Callback-
  // carrying submit when the object has one (Combining and wrappers
  // thereof: the callback fires at the serialization point), inline
  // apply + callback otherwise.

  template <class Ctx>
  ModuleResult run_through(Ctx& ctx, const Request& m,
                           std::optional<SwitchValue> init, CompletionFn cb,
                           void* user) {
    if constexpr (requires(Obj& o) { o.submit(ctx, m, init, cb, user); }) {
      return obj_.value.submit(ctx, m, init, cb, user).wait();
    } else {
      const ModuleResult r = scm::apply(obj_.value, ctx, m, init);
      if (cb != nullptr) cb(user, r);
      return r;
    }
  }

  template <class Ctx>
  Ticket<ModuleResult> submit_through(Ctx& ctx, const Request& m,
                                      std::optional<SwitchValue> init,
                                      CompletionFn cb, void* user) {
    if constexpr (requires(Obj& o) { o.submit(ctx, m, init, cb, user); }) {
      return obj_.value.submit(ctx, m, init, cb, user);
    } else {
      const ModuleResult r = scm::apply(obj_.value, ctx, m, init);
      if (cb != nullptr) cb(user, r);
      return Ticket<ModuleResult>::ready(r);
    }
  }

  // Claims an async completion record (CAS-scan over a small pool);
  // nullptr when every record is in flight — callers degrade to the
  // stateless callback, they never block on the pool.
  CacheRec* claim_rec(std::size_t replica, const Request& m) {
    for (auto& p : recs_) {
      CacheRec& rec = p.value;
      std::uint32_t expected = 0;
      if (rec.busy.load(std::memory_order_relaxed) == 0 &&
          rec.busy.compare_exchange_strong(expected, 1,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
        rec.self = this;
        rec.replica = replica;
        rec.req = m;
        rec.pooled = true;
        return &rec;
      }
    }
    return nullptr;
  }

  [[nodiscard]] std::uint64_t sum(
      std::atomic<std::uint64_t> Replica::* field) const noexcept {
    std::uint64_t total = 0;
    for (const auto& r : replicas_) {
      total += (r.*field).load(std::memory_order_relaxed);
    }
    return total;
  }

  std::array<Replica, kReplicas> replicas_{};
  Padded<std::atomic<std::uint64_t>> version_{};
  std::atomic<std::uint64_t> staleness_bound_{0};
  std::array<Padded<CacheRec>, kRecs> recs_{};
  Padded<Obj> obj_;
  [[no_unique_address]] Policy policy_{};
};

// The single-replica special case: one shared table — the right shape
// when everything runs on few cores or the replicas would all be
// filled with the same hot keys anyway.
template <class Obj, class Model, std::size_t kEntries = 64,
          std::size_t kRecs = 32>
using Cached = Replicated<Obj, 1, Model, ByThread, kEntries, kRecs>;

}  // namespace scm
