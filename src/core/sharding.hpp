// Sharded composition (the decomposition-for-scalability counterpart
// of Pipeline<Ms...>): replicate a pipeline/chain-like object across
// cacheline-isolated shards and route every operation to exactly one
// replica, so contention becomes a tunable axis instead of a fixed
// property of the single shared instance the paper measures.
//
// Sharded<Obj, kShards, Policy> is a combinator, not an algorithm: each
// shard is an independent instance of Obj (a Pipeline, FastPipeline,
// StaticAbstractChain, or any other module/chain-shaped object), and
// the policy maps (context, request) -> shard index. Routing is the
// only code the combinator adds to the hot path — one arithmetic
// function, no virtual dispatch, no type erasure. Because Sharded
// forwards the module surface (invoke + kConsensusNumber) it is itself
// a ComposableModule whenever Obj is, so shards nest: a shard may be a
// pipeline, and a pipeline stage may be a Sharded.
//
// Semantics: operations on DIFFERENT shards touch disjoint base
// objects, so a sharded object is linearizable per shard (each shard
// is the composed object the paper proves correct) but deliberately
// NOT a single linearizable instance of the unsharded type — exactly
// the trade studied for sequentially consistent composition (Perrin et
// al.) and coded emulation (Cadambe et al.): spread the load, keep the
// per-shard guarantees. Deterministic policies (ByThread, ByKeyHash)
// make the partition reproducible: the same key always reaches the
// same shard, so per-key histories stay linearizable.
//
// Statistics: per-shard PipelineCounters (or per-process chain commit
// tallies) stay on their shard's cache lines; stats()/commits_by()
// merge them into the aggregate view on demand, off the hot path.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/async.hpp"
#include "core/batch.hpp"
#include "core/module.hpp"
#include "core/pipeline.hpp"
#include "history/request.hpp"
#include "runtime/ids.hpp"
#include "support/assert.hpp"
#include "support/backoff.hpp"
#include "support/cacheline.hpp"
#include "support/parking.hpp"
#include "support/topology.hpp"

namespace scm {

// A routing policy maps (context, request, shard count) to a shard
// index in [0, shards). Policies may be stateful (RoundRobin), so they
// are invoked through a mutable reference.
template <class P, class Ctx>
concept ShardRoutingPolicy =
    requires(P& p, Ctx& ctx, const Request& m, std::size_t shards) {
      { p(ctx, m, shards) } -> std::convertible_to<std::size_t>;
    };

// Deterministic per-process routing: process i always uses shard
// i mod kShards. Zero shared state; with threads <= shards every
// thread owns a private replica (the contention-free regime).
struct ByThread {
  template <class Ctx>
  std::size_t operator()(Ctx& ctx, const Request& /*m*/,
                         std::size_t shards) const noexcept {
    return static_cast<std::size_t>(ctx.id()) % shards;
  }
};

// Deterministic per-key routing: the request's argument is the key
// (workload/keyed.hpp generates such streams); a SplitMix64 finalizer
// decorrelates adjacent keys before the modulo so hot keys spread only
// as far as their hash allows — skewed key draws produce genuinely
// skewed shard load, which is the contention axis the compose.sharded
// scenario sweeps.
struct ByKeyHash {
  [[nodiscard]] static constexpr std::uint64_t mix(std::uint64_t k) noexcept {
    std::uint64_t z = k + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  template <class Ctx>
  std::size_t operator()(Ctx& /*ctx*/, const Request& m,
                         std::size_t shards) const noexcept {
    return static_cast<std::size_t>(mix(static_cast<std::uint64_t>(m.arg)) %
                                    shards);
  }
};

// Global round-robin: spreads operations evenly regardless of issuer
// or key. The cursor is one shared fetch_add per operation — a
// deliberate cost (it is the only policy that needs cross-thread
// state), acceptable when the per-operation work dwarfs one relaxed
// RMW and the goal is load balance, not affinity.
struct RoundRobin {
  template <class Ctx>
  std::size_t operator()(Ctx& /*ctx*/, const Request& /*m*/,
                         std::size_t shards) noexcept {
    return static_cast<std::size_t>(
        next_.value.fetch_add(1, std::memory_order_relaxed) % shards);
  }

 private:
  // The cursor is written by EVERY routed operation, so it gets a cache
  // line of its own: unpadded it shares a line with whatever the
  // enclosing object stores next to the policy (Sharded lays the policy
  // out right after the shard array), and that neighbor's readers would
  // take a miss on every routed op.
  Padded<std::atomic<std::uint64_t>> next_{};
};

// Topology-affine routing: every thread running in the same L3/NUMA
// domain (support/topology.hpp) reaches the same shard, so a shard's
// cache lines stay resident in ONE last-level cache instead of
// bouncing across packages — the domain-aligned placement half of the
// sharding story (pin workers per domain with workload's
// PinMode::kCompact/kSpread and each shard becomes domain-local).
// Deterministic given thread placement: pinned workers never migrate,
// so their domain — and therefore their shard — is fixed for the run;
// unpinned threads re-sample their domain periodically and may
// migrate, which costs affinity, never correctness. On machines where
// sysfs reports a single domain (or reports nothing) every operation
// routes to shard 0 — the explicit degradation to "one shared object",
// matching the topology's single-domain fallback.
struct ByDomain {
  template <class Ctx>
  std::size_t operator()(Ctx& /*ctx*/, const Request& /*m*/,
                         std::size_t shards) const noexcept {
    return static_cast<std::size_t>(current_domain()) % shards;
  }
};

// Approximate least-loaded routing: each shard has a padded in-flight
// counter; routing scans for the minimum and increments the chosen
// shard, and the completion hook (invoked by Sharded::invoke/perform
// after the operation returns) decrements it. "Approximate" is load-
// bearing twice over: the scan is racy (two routers may pick the same
// minimum), and callers using the explicit route()/invoke_at()
// attribution pattern must call Sharded::complete() themselves or the
// counters drift — both acceptable for a load-balancing heuristic.
// kMaxShards bounds the counter array; routing more shards than that
// is a checked error.
template <std::size_t kMaxShards = 16>
struct ByLeastLoaded {
  template <class Ctx>
  std::size_t operator()(Ctx& /*ctx*/, const Request& /*m*/,
                         std::size_t shards) noexcept {
    SCM_CHECK_MSG(shards <= kMaxShards,
                  "ByLeastLoaded: raise kMaxShards for this shard count");
    std::size_t best = 0;
    std::int64_t best_load =
        in_flight_[0].value.load(std::memory_order_relaxed);
    for (std::size_t s = 1; s < shards; ++s) {
      const std::int64_t load =
          in_flight_[s].value.load(std::memory_order_relaxed);
      if (load < best_load) {
        best = s;
        best_load = load;
      }
    }
    in_flight_[best].value.fetch_add(1, std::memory_order_relaxed);
    return best;
  }

  // Completion hook, detected structurally by Sharded: one routed
  // operation on shard s finished.
  void on_complete(std::size_t s) noexcept {
    in_flight_[s].value.fetch_sub(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t in_flight(std::size_t s) const noexcept {
    return in_flight_[s].value.load(std::memory_order_relaxed);
  }

 private:
  std::array<Padded<std::atomic<std::int64_t>>, kMaxShards> in_flight_{};
};

namespace detail {

// Sharded is a ComposableModule iff Obj is: the consensus-number tag
// is inherited exactly when Obj declares one (chains expose a runtime
// consensus_number() instead — forwarded below).
template <class Obj, class = void>
struct ShardedConsensusBase {};

template <class Obj>
struct ShardedConsensusBase<Obj, std::void_t<decltype(Obj::kConsensusNumber)>> {
  // Shards are independent replicas, so sharding cannot raise the
  // consensus power of the replicated object.
  static constexpr int kConsensusNumber = Obj::kConsensusNumber;
};

// Likewise the chain/pipeline depth, when Obj exposes one.
template <class Obj, class = void>
struct ShardedDepthBase {};

template <class Obj>
struct ShardedDepthBase<Obj, std::void_t<decltype(Obj::kDepth)>> {
  static constexpr std::size_t kDepth = Obj::kDepth;
};

}  // namespace detail

template <class Obj, std::size_t kShards, class Policy = ByThread>
class Sharded : public detail::ShardedConsensusBase<Obj>,
                public detail::ShardedDepthBase<Obj> {
  static_assert(kShards >= 1, "a sharded object needs at least one shard");

 public:
  static constexpr std::size_t kShardCount = kShards;

  // All-owned default construction, when each shard's Obj needs no
  // arguments (e.g. a pipeline of default-constructible modules).
  Sharded()
    requires std::is_default_constructible_v<Obj>
      : shards_{} {}

  // Per-shard argument construction for objects with constructor
  // parameters (StaticAbstractChain needs its process count and stage
  // references): make_args(shard) returns a tuple of constructor
  // arguments for that shard's replica, which is built in place — Obj
  // may be immovable (registers pin their cache lines).
  template <class Fn>
    requires requires(Fn& fn) {
      std::make_from_tuple<Obj>(fn(std::size_t{0}));
    }
  explicit Sharded(std::in_place_t, Fn&& make_args)
      : shards_(build(make_args, std::make_index_sequence<kShards>{})) {}

  Sharded(const Sharded&) = delete;
  Sharded& operator=(const Sharded&) = delete;

  // The shard this (context, request) pair routes to. Exposed so tests
  // and scenarios can verify routing determinism and measure per-shard
  // load without re-implementing the policy. The policy sees the
  // ACTIVE shard count (set_active_shards), not the constructed one,
  // so concentrating or spreading load is one published integer away —
  // no replica reconstruction. The load is relaxed: a router may use a
  // just-retired count for one more op, which routes to a still-live
  // replica and is therefore harmless.
  template <class Ctx>
    requires ShardRoutingPolicy<Policy, Ctx>
  [[nodiscard]] std::size_t route(Ctx& ctx, const Request& m) {
    const std::size_t n = active_.value.load(std::memory_order_relaxed);
    const std::size_t s = policy_(ctx, m, n);
    SCM_CHECK_MSG(s < n, "routing policy produced an out-of-range shard");
    return s;
  }

  // ---- runtime actuator: effective shard count.

  // Publishes a new active shard count in [1, kShards]. Growing widens
  // the policy's modulus immediately (replicas beyond the old count
  // are idle, fully-constructed objects — nothing to initialize).
  // Shrinking publishes the smaller count FIRST (stopping new
  // arrivals), then — for load-tracking policies exposing
  // in_flight(s) — drains every deactivated shard's in-flight counter
  // to zero before returning, so by the time the call completes no
  // routed operation is still executing on a retired replica. The
  // epoch bump is the "remap done" publication tests and monitors key
  // on. Concurrent callers are the caller's problem (the adaptive
  // layer serializes decisions behind its tick lock).
  void set_active_shards(std::size_t n) {
    SCM_CHECK_MSG(n >= 1 && n <= kShards,
                  "active shard count must be in [1, kShards]");
    const std::size_t old = active_.value.exchange(n, std::memory_order_seq_cst);
    if (n < old) {
      if constexpr (requires(const Policy& p, std::size_t s) {
                      { p.in_flight(s) } -> std::convertible_to<std::int64_t>;
                    }) {
        for (std::size_t s = n; s < old; ++s) {
          int spins = 0;
          while (policy_.in_flight(s) != 0) (void)spin_backoff(spins);
        }
      }
    }
    mask_epoch_.fetch_add(1, std::memory_order_release);
  }

  [[nodiscard]] std::size_t active_shards() const noexcept {
    return active_.value.load(std::memory_order_relaxed);
  }

  // Monotone remap counter: bumped once per completed
  // set_active_shards (after any drain), so an observer comparing
  // epochs across a reconfiguration knows the mask — and for
  // load-tracking policies the drain — is fully published.
  [[nodiscard]] std::uint64_t active_epoch() const noexcept {
    return mask_epoch_.load(std::memory_order_acquire);
  }

  // Module surface: route, then run the replica through the uniform
  // apply() entry — any Composable (module- OR chain-shaped) replica
  // serves it, so Sharded<StaticAbstractChain<...>> answers invoke()
  // too. Together with the inherited kConsensusNumber this makes
  // Sharded<Pipeline<...>> a ComposableModule again.
  template <class Ctx>
    requires Composable<Obj, Ctx> && ShardRoutingPolicy<Policy, Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& m,
                      std::optional<SwitchValue> init = std::nullopt) {
    return routed(ctx, m,
                  [&](std::size_t s) { return invoke_at(s, ctx, m, init); });
  }

  // Runs the operation on an explicitly chosen shard. Callers that
  // need to attribute the result to the serving shard must route once
  // and pass the index here — calling route() and then invoke() would
  // consult the policy twice, and a stateful policy (RoundRobin)
  // advances on every consultation, so the two calls could disagree.
  template <class Ctx>
    requires Composable<Obj, Ctx>
  ModuleResult invoke_at(std::size_t s, Ctx& ctx, const Request& m,
                         std::optional<SwitchValue> init = std::nullopt) {
    SCM_CHECK(s < kShards);
    return scm::apply(shard(s), ctx, m, init);
  }

  // Chain surface (enabled when Obj is chain-like): same routing, the
  // universal layers' perform() instead of the module invoke() —
  // kept alongside apply() because ChainPerformed carries more than a
  // ModuleResult (serving stage, commit history).
  template <class Ctx>
    requires ShardRoutingPolicy<Policy, Ctx>
  auto perform(Ctx& ctx, const Request& m)
    requires requires(Obj& o) { o.perform(ctx, m); }
  {
    return routed(ctx, m,
                  [&](std::size_t s) { return perform_at(s, ctx, m); });
  }

  // See invoke_at: the explicit-shard variant for chain-shaped
  // objects.
  template <class Ctx>
  auto perform_at(std::size_t s, Ctx& ctx, const Request& m)
    requires requires(Obj& o) { o.perform(ctx, m); }
  {
    SCM_CHECK(s < kShards);
    return shard(s).perform(ctx, m);
  }

  // ---- async surface (core/async.hpp).

  // Route, then submit on the chosen shard. When the replica is itself
  // asynchronous (per-shard Combining), its pending ticket is
  // forwarded unchanged; otherwise see the synchronous overload below.
  // NOTE for load-tracking policies (ByLeastLoaded): the completion
  // hook fires when submit returns, so under async submission the
  // in-flight counters track the submission window rather than true
  // completion — acceptable for a load heuristic, and the alternative
  // (hooking ticket collection) would put a shared-counter touch on
  // every poll.
  template <class Ctx>
    requires ShardRoutingPolicy<Policy, Ctx> &&
             requires(Obj& o, Ctx& c, const Request& r,
                      std::optional<SwitchValue> v) { o.submit(c, r, v); }
  auto submit(Ctx& ctx, const Request& m,
              std::optional<SwitchValue> init = std::nullopt) {
    return routed(ctx, m,
                  [&](std::size_t s) { return shard(s).submit(ctx, m, init); });
  }

  // Synchronous replicas (pipelines, chains-as-modules) complete
  // inline: submit() is invoke() plus a ready ticket, keeping the
  // submit/complete surface uniform across every Sharded instance.
  template <class Ctx>
    requires Composable<Obj, Ctx> && ShardRoutingPolicy<Policy, Ctx> &&
             (!requires(Obj& o, Ctx& c, const Request& r,
                        std::optional<SwitchValue> v) { o.submit(c, r, v); }) &&
             (!requires(Obj& o, Ctx& c, const Request& r) { o.submit(c, r); })
  Ticket<ModuleResult> submit(Ctx& ctx, const Request& m,
                              std::optional<SwitchValue> init = std::nullopt) {
    return Ticket<ModuleResult>::ready(invoke(ctx, m, init));
  }

  // Callback-carrying form, for replicas whose submit accepts a
  // CompletionFn (per-shard Combining). `completion` is deliberately
  // not defaulted: 2-/3-argument calls resolve to the overloads above
  // on every replica shape, 4-/5-argument calls land here only when
  // the replica can actually run the callback.
  template <class Ctx>
    requires ShardRoutingPolicy<Policy, Ctx>
  auto submit(Ctx& ctx, const Request& m, std::optional<SwitchValue> init,
              CompletionFn completion, void* user = nullptr)
    requires requires(Obj& o) { o.submit(ctx, m, init, completion, user); }
  {
    return routed(ctx, m, [&](std::size_t s) {
      return shard(s).submit(ctx, m, init, completion, user);
    });
  }

  // Fire-and-forget forwarding (enabled when the replica has it): the
  // routed shard's combiner retires the publication itself. Pair with
  // drain() before destruction, exactly as on a bare Combining.
  template <class Ctx>
    requires ShardRoutingPolicy<Policy, Ctx>
  void submit_detached(Ctx& ctx, const Request& m,
                       std::optional<SwitchValue> init = std::nullopt,
                       CompletionFn completion = nullptr, void* user = nullptr)
    requires requires(Obj& o) {
      o.submit_detached(ctx, m, init, completion, user);
    }
  {
    routed(ctx, m, [&](std::size_t s) {
      shard(s).submit_detached(ctx, m, init, completion, user);
    });
  }

  // Chain-shaped counterpart (StaticAbstractChain::submit takes no
  // init); constrained away when Obj has the module-shaped submit so
  // the two cannot collide in overload resolution.
  template <class Ctx>
    requires ShardRoutingPolicy<Policy, Ctx>
  auto submit(Ctx& ctx, const Request& m)
    requires(requires(Obj& o) { o.submit(ctx, m); } &&
             !requires(Obj& o, std::optional<SwitchValue> v) {
               o.submit(ctx, m, v);
             })
  {
    return routed(ctx, m,
                  [&](std::size_t s) { return shard(s).submit(ctx, m); });
  }

  // Drains every shard's pending publications (enabled exactly when
  // the replica is drainable, i.e. per-shard Combining).
  template <class Ctx>
  void drain(Ctx& ctx)
    requires requires(Obj& o) { o.drain(ctx); }
  {
    for (auto& s : shards_) s.value.drain(ctx);
  }

  // ---- batch surface: per-shard grouping.

  // Groups a batch into per-shard sub-batches by the routing policy
  // and dispatches each through run_batch, so a per-shard combiner (or
  // a replica's own invoke_batch) finally sees a REAL batch instead of
  // the one-op batches per-op forwarding produced. Every pending slot
  // is routed exactly once, in slot order — a stateful policy
  // (RoundRobin) advances exactly as the per-op loop would, so the
  // grouping is accounting-identical to routing each op individually.
  // Within a shard, slots run in slot order; across shards the replicas
  // are disjoint objects, so for a single executing thread the results
  // equal per-op invocation. Grouping allocates O(batch) scratch.
  template <class Ctx>
    requires Composable<Obj, Ctx> && ShardRoutingPolicy<Policy, Ctx>
  void invoke_batch(Ctx& ctx, std::span<OpSlot> batch) {
    if (batch.empty()) return;
    std::vector<OpSlot> scratch;
    group_by_shard(
        ctx, batch.size(),
        [&](std::size_t i) -> const Request& { return batch[i].request; },
        [&](std::size_t i) { return !batch[i].done; },
        [&](std::size_t s, std::span<const std::size_t> origin) {
          scratch.clear();
          scratch.reserve(origin.size());
          for (const std::size_t i : origin) scratch.push_back(batch[i]);
          run_batch(shard(s), ctx, std::span<OpSlot>(scratch));
          for (std::size_t k = 0; k < origin.size(); ++k) {
            batch[origin[k]] = scratch[k];
          }
        });
  }

  // Chain-shaped counterpart: group the requests per shard, run each
  // shard's group through its perform_batch (one sticky-stage dispatch
  // per sub-batch), scatter the per-request results back into `out` at
  // their original positions. Same routing contract as invoke_batch
  // (both walk through group_by_shard).
  template <class Ctx, class Performed>
    requires ShardRoutingPolicy<Policy, Ctx>
  void perform_batch(Ctx& ctx, std::span<const Request> ms,
                     std::span<Performed> out)
    requires requires(Obj& o, std::span<const Request> rs,
                      std::span<Performed> ps) {
      o.perform_batch(ctx, rs, ps);
    }
  {
    SCM_CHECK_MSG(ms.size() == out.size(),
                  "perform_batch needs one output slot per request");
    if (ms.empty()) return;
    std::vector<Request> group;
    std::vector<Performed> results;
    group_by_shard(
        ctx, ms.size(),
        [&](std::size_t i) -> const Request& { return ms[i]; },
        [](std::size_t) { return true; },
        [&](std::size_t s, std::span<const std::size_t> origin) {
          group.clear();
          group.reserve(origin.size());
          for (const std::size_t i : origin) group.push_back(ms[i]);
          results.assign(origin.size(), Performed{});
          shard(s).perform_batch(ctx, std::span<const Request>(group),
                                 std::span<Performed>(results));
          for (std::size_t k = 0; k < origin.size(); ++k) {
            out[origin[k]] = std::move(results[k]);
          }
        });
  }

  // Tells a load-tracking policy (ByLeastLoaded) that an operation
  // routed to shard s has finished. invoke()/perform() call it
  // automatically; users of the explicit route()/invoke_at()
  // attribution pattern call it themselves once the operation returns.
  // A no-op (compiled out) for policies without an on_complete hook.
  void complete(std::size_t s) noexcept {
    if constexpr (requires(Policy& p) { p.on_complete(s); }) {
      SCM_CHECK(s < kShards);
      policy_.on_complete(s);
    } else {
      (void)s;
    }
  }

  // The routing policy instance, for inspection (e.g. ByLeastLoaded's
  // in-flight counters). Routing should still go through route() so
  // the range check applies.
  [[nodiscard]] Policy& policy() noexcept { return policy_; }
  [[nodiscard]] const Policy& policy() const noexcept { return policy_; }

  [[nodiscard]] Obj& shard(std::size_t s) noexcept {
    return shards_[s].value;
  }
  [[nodiscard]] const Obj& shard(std::size_t s) const noexcept {
    return shards_[s].value;
  }

  // ---- merged statistics (each forwarded surface is enabled exactly
  // when the replicated object provides it).

  // Aggregate per-stage pipeline stats: the sum over shards of each
  // shard's PipelineCounters snapshot.
  [[nodiscard]] PipelineStageStats stats(std::size_t i) const
    requires requires(const Obj& o, std::size_t j) {
      { o.stats(j) } -> std::same_as<PipelineStageStats>;
    }
  {
    PipelineStageStats agg;
    for (const auto& s : shards_) {
      const PipelineStageStats one = s.value.stats(i);
      agg.commits += one.commits;
      agg.aborts += one.aborts;
    }
    return agg;
  }

  void reset_stats() noexcept
    requires requires(Obj& o) { o.reset_stats(); }
  {
    for (auto& s : shards_) s.value.reset_stats();
  }

  // Aggregate chain accounting: commits served by stage i for process
  // pid, summed over shards (a process may touch several shards).
  [[nodiscard]] std::uint64_t commits_by(ProcessId pid, std::size_t i) const
    requires requires(const Obj& o, std::size_t j) { o.commits_by(pid, j); }
  {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.value.commits_by(pid, i);
    return total;
  }

  // Runtime consensus number for chain-shaped objects: replicas are
  // identical, so shard 0 answers for all.
  [[nodiscard]] int consensus_number() const
    requires requires(const Obj& o) { o.consensus_number(); }
  {
    return shards_[0].value.consensus_number();
  }

  // ---- broadcast tuning knobs (enabled when the replica has them):
  // one adaptive decision re-tunes every shard, active or not, so a
  // later grow never resurrects a replica with stale settings.

  void set_elect_spins(std::uint32_t n) noexcept
    requires requires(Obj& o) { o.set_elect_spins(n); }
  {
    for (auto& s : shards_) s.value.set_elect_spins(n);
  }

  [[nodiscard]] std::uint32_t elect_spins() const noexcept
    requires requires(const Obj& o) { o.elect_spins(); }
  {
    return shards_[0].value.elect_spins();
  }

  void set_yields_before_park(int n) noexcept
    requires requires(Obj& o) { o.set_yields_before_park(n); }
  {
    for (auto& s : shards_) s.value.set_yields_before_park(n);
  }

  [[nodiscard]] int yields_before_park() const noexcept
    requires requires(const Obj& o) { o.yields_before_park(); }
  {
    return shards_[0].value.yields_before_park();
  }

  // ---- aggregate combining/parking telemetry (enabled when the
  // replica emits it): the sums the ContentionMonitor reads when the
  // monitored object is Sharded<Combining<...>>. Per-shard counters
  // stay on their own lines; summation is off the hot path.

  [[nodiscard]] std::uint64_t direct_ops() const noexcept
    requires requires(const Obj& o) { o.direct_ops(); }
  {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.value.direct_ops();
    return total;
  }

  [[nodiscard]] std::uint64_t combined_ops() const noexcept
    requires requires(const Obj& o) { o.combined_ops(); }
  {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.value.combined_ops();
    return total;
  }

  [[nodiscard]] std::uint64_t combine_rounds() const noexcept
    requires requires(const Obj& o) { o.combine_rounds(); }
  {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.value.combine_rounds();
    return total;
  }

  [[nodiscard]] ParkStats park_stats() const noexcept
    requires requires(const Obj& o) {
      { o.park_stats() } -> std::same_as<ParkStats>;
    }
  {
    ParkStats agg;
    for (const auto& s : shards_) {
      const ParkStats one = s.value.park_stats();
      agg.parks += one.parks;
      agg.wakes += one.wakes;
      agg.spurious_wakes += one.spurious_wakes;
      agg.futex_syscalls += one.futex_syscalls;
      agg.fast_wakes += one.fast_wakes;
    }
    return agg;
  }

  [[nodiscard]] static constexpr std::size_t shard_count() noexcept {
    return kShards;
  }

 private:
  // The one copy of the per-op round trip — route, run on the chosen
  // shard, fire the policy's completion hook — that every forwarding
  // surface (invoke, perform, the submit family, submit_detached)
  // used to spell out as its own triplet. fn receives the routed
  // shard index and does the shape-specific work.
  template <class Ctx, class Fn>
  decltype(auto) routed(Ctx& ctx, const Request& m, Fn&& fn) {
    const std::size_t s = route(ctx, m);
    if constexpr (std::is_void_v<decltype(fn(s))>) {
      fn(s);
      complete(s);
    } else {
      auto r = fn(s);
      complete(s);
      return r;
    }
  }

  // The one copy of the batch-grouping contract both batch surfaces
  // walk through: every pending item is routed exactly once, in item
  // order (a stateful policy advances exactly as the per-op loop
  // would), then each shard with work gets its items' indices — still
  // in item order — via dispatch(shard, origin), which runs the
  // sub-batch and scatters results; complete(shard) fires once per
  // dispatched item, mirroring per-op invoke/perform.
  template <class Ctx, class RequestOf, class IsPending, class Dispatch>
  void group_by_shard(Ctx& ctx, std::size_t n, const RequestOf& request_of,
                      const IsPending& is_pending, const Dispatch& dispatch) {
    constexpr std::size_t kUnrouted = kShards;
    std::vector<std::size_t> shard_of(n, kUnrouted);
    std::array<std::size_t, kShards> load{};
    for (std::size_t i = 0; i < n; ++i) {
      if (!is_pending(i)) continue;
      const std::size_t s = route(ctx, request_of(i));
      shard_of[i] = s;
      ++load[s];
    }
    std::vector<std::size_t> origin;
    for (std::size_t s = 0; s < kShards; ++s) {
      if (load[s] == 0) continue;
      origin.clear();
      origin.reserve(load[s]);
      for (std::size_t i = 0; i < n; ++i) {
        if (shard_of[i] == s) origin.push_back(i);
      }
      dispatch(s, std::span<const std::size_t>(origin));
      for (std::size_t k = 0; k < origin.size(); ++k) complete(s);
    }
  }

  template <class Fn, std::size_t... I>
  static std::array<Padded<Obj>, kShards> build(Fn& make_args,
                                                std::index_sequence<I...>) {
    // Every element is a prvalue chain (make_from_tuple -> aggregate
    // element), so immovable Objs construct in place via guaranteed
    // copy elision.
    return {std::make_from_tuple<Padded<Obj>>(std::tuple_cat(
        std::make_tuple(std::in_place), make_args(std::size_t{I})))...};
  }

  std::array<Padded<Obj>, kShards> shards_;
  // Active shard count (the routing modulus) on its own line: every
  // routed op loads it, only reconfigurations write it.
  Padded<std::atomic<std::size_t>> active_{std::in_place, kShards};
  std::atomic<std::uint64_t> mask_epoch_{0};
  [[no_unique_address]] Policy policy_{};
};

}  // namespace scm
