// Variadic composition pipeline (Figure 1 generalized to chains of any
// depth; Theorem 2 — safely composable modules compose to a safely
// composable module).
//
// Pipeline<Ms...> is the statically-typed chain combinator that
// supersedes the binary Composed<A, B>: it holds any number of
// ComposableModules and folds the abort→init switch-value plumbing at
// compile time. Invoking the pipeline runs stage 0; if a stage aborts,
// its switch value initializes the next stage, exactly as in the
// paper's composition operator, and the recursion is unrolled with
// `if constexpr` — no virtual dispatch, no type erasure, no heap. If
// the LAST stage aborts, the pipeline as a whole aborts with that
// stage's switch value, so a Pipeline is itself a ComposableModule and
// nests (a pipeline of pipelines is a pipeline).
//
// Each type parameter selects a storage mode:
//   * `M&` — the pipeline *references* a module owned elsewhere
//     (stored as std::reference_wrapper, never a raw pointer — this
//     fixes Composed's pointer-to-possibly-dead-module hazard);
//   * `M`  — the pipeline *owns* the module by value (moved in, or
//     default-constructed for all-owned pipelines).
// make_pipeline(a, b, c) deduces the mode per argument: lvalues are
// referenced, rvalues are moved in and owned.
//
// Statistics: the default Pipeline counts per-stage commits and aborts
// with relaxed atomics (one uncontended fetch_add per stage visited —
// harness bookkeeping, never a counted shared-memory step).
// FastPipeline/make_fast_pipeline disable the counters at compile time
// for hot paths that must not touch a shared cache line per operation
// (e.g. the speculative TAS used by the native throughput benches).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <tuple>
#include <type_traits>
#include <utility>

#include "core/async.hpp"
#include "core/batch.hpp"
#include "core/module.hpp"
#include "history/request.hpp"
#include "support/assert.hpp"

namespace scm {

// Per-stage commit/abort totals (a snapshot; see BasicPipeline::stats).
struct PipelineStageStats {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;

  [[nodiscard]] std::uint64_t invocations() const noexcept {
    return commits + aborts;
  }
};

namespace detail {

// Storage selector: reference mode for `M&`, owning mode for `M`.
template <class M>
struct PipelineSlot {
  using type = M;
  static M& get(M& slot) noexcept { return slot; }
  static const M& get(const M& slot) noexcept { return slot; }
};

template <class M>
struct PipelineSlot<M&> {
  using type = std::reference_wrapper<M>;
  static M& get(std::reference_wrapper<M> slot) noexcept { return slot.get(); }
};

template <std::size_t Depth>
struct PipelineCounters {
  struct Cell {
    std::atomic<std::uint64_t> commits{0};
    std::atomic<std::uint64_t> aborts{0};
  };
  std::array<Cell, Depth> cells;

  PipelineCounters() = default;
  // Atomics delete the implicit copy/move; counters are snapshot-copied
  // so pipelines stay movable (a moved-from pipeline's counts carry
  // over — moves happen at construction time, never mid-measurement).
  PipelineCounters(const PipelineCounters& other) noexcept {
    for (std::size_t i = 0; i < Depth; ++i) {
      cells[i].commits.store(
          other.cells[i].commits.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      cells[i].aborts.store(
          other.cells[i].aborts.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
  }
  PipelineCounters& operator=(const PipelineCounters&) = delete;

  void on_commit(std::size_t i) noexcept {
    cells[i].commits.fetch_add(1, std::memory_order_relaxed);
  }
  void on_abort(std::size_t i) noexcept {
    cells[i].aborts.fetch_add(1, std::memory_order_relaxed);
  }
  // Bulk variants for the batch path: one fetch_add per stage per
  // batch instead of one per operation — the per-op composition
  // bookkeeping becomes per-batch bookkeeping.
  void on_commits(std::size_t i, std::uint64_t n) noexcept {
    if (n != 0) cells[i].commits.fetch_add(n, std::memory_order_relaxed);
  }
  void on_aborts(std::size_t i, std::uint64_t n) noexcept {
    if (n != 0) cells[i].aborts.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] PipelineStageStats snapshot(std::size_t i) const noexcept {
    return {cells[i].commits.load(std::memory_order_relaxed),
            cells[i].aborts.load(std::memory_order_relaxed)};
  }
  void reset() noexcept {
    for (auto& c : cells) {
      c.commits.store(0, std::memory_order_relaxed);
      c.aborts.store(0, std::memory_order_relaxed);
    }
  }
};

struct NoPipelineCounters {};

}  // namespace detail

template <bool WithStats, class... Ms>
class BasicPipeline {
  static_assert(sizeof...(Ms) >= 1, "a pipeline needs at least one module");

 public:
  // Number of composed modules — the chain depth of Figure 1.
  static constexpr std::size_t kDepth = sizeof...(Ms);

  // The composition's consensus number is the maximum over the
  // components (the quantity the paper's "negligible cost" results
  // bound), folded at compile time.
  static constexpr int kConsensusNumber =
      std::max({std::remove_reference_t<Ms>::kConsensusNumber...});

  // Result of one invocation together with the stage that produced it
  // (Figure 1's arrows — which module served the operation).
  struct Traced {
    ModuleResult result;
    std::size_t stage = 0;
  };

  // Reference slots bind to the given modules; owned slots are
  // move-constructed from rvalue arguments.
  explicit BasicPipeline(Ms&&... modules)
      : slots_(std::forward<Ms>(modules)...) {}

  // All-owned pipelines of default-constructible modules need no
  // arguments: Pipeline<A1, A2> p; owns both stages in place.
  BasicPipeline()
    requires((!std::is_reference_v<Ms> &&
              std::is_default_constructible_v<Ms>) &&
             ...)
      : slots_() {}

  // The module interface (ComposableModule): run the chain starting at
  // stage 0 with `init`; a stage's abort switch value initializes the
  // next stage; the last stage's abort is the pipeline's abort.
  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& m,
                      std::optional<SwitchValue> init = std::nullopt) {
    return run_from<0>(ctx, m, init).result;
  }

  // invoke plus the index of the serving stage.
  template <class Ctx>
  Traced invoke_traced(Ctx& ctx, const Request& m,
                       std::optional<SwitchValue> init = std::nullopt) {
    return run_from<0>(ctx, m, init);
  }

  // Async adapter (core/async.hpp): a pipeline invocation is
  // synchronous — the chain walk IS the operation — so submit()
  // completes inline and returns an already-ready ticket. This keeps
  // the submit/complete surface uniform across every composition
  // layer (drivers written against submit() run unchanged over
  // pipelines, sharded pipelines, and combining wrappers) at zero
  // behavioural and zero per-op cost.
  template <class Ctx>
  Ticket<ModuleResult> submit(Ctx& ctx, const Request& m,
                              std::optional<SwitchValue> init = std::nullopt) {
    return Ticket<ModuleResult>::ready(run_from<0>(ctx, m, init).result);
  }

  // Batch path: executes every pending (done == false) slot and fills
  // its result, walking the chain STAGE-MAJOR — all pending slots
  // visit stage 0, the aborted ones carry their switch values to
  // stage 1 together, and so on. For a single executing thread this
  // is result-identical to invoking the slots in order PROVIDED the
  // stages are distinct objects: each stage then sees the same
  // invocation subsequence in the same order, so its state evolves
  // identically. (make_pipeline's reference mode does let one module
  // serve two stages; such a shared stateful module observes the
  // stage-major order instead — don't drive that shape through the
  // batch path expecting per-op results.) The composition overhead is
  // paid once per batch: the compile-time switch-plumbing walk happens
  // once, and the per-stage statistics are ONE bulk fetch_add per
  // stage instead of one per operation. A stage that itself has a
  // batch path (a nested pipeline) receives the whole span and skips
  // the finalized slots — no gathering, no allocation. Slot `init`
  // fields are consumed as the fold's carriers; all done flags are
  // true on return.
  template <class Ctx>
  void invoke_batch(Ctx& ctx, std::span<OpSlot> batch) {
    if (batch.empty()) return;
    batch_from<0>(ctx, batch);
  }

  // The I-th composed module (unwrapped from its storage mode).
  template <std::size_t I>
  [[nodiscard]] auto& stage() noexcept {
    static_assert(I < kDepth);
    using M = std::tuple_element_t<I, std::tuple<Ms...>>;
    return detail::PipelineSlot<M>::get(std::get<I>(slots_));
  }

  // Per-stage statistics snapshot. Only available when the stats
  // counters are compiled in (the default Pipeline alias).
  [[nodiscard]] PipelineStageStats stats(std::size_t i) const
    requires WithStats
  {
    SCM_CHECK(i < kDepth);
    return counters_.snapshot(i);
  }

  void reset_stats() noexcept
    requires WithStats
  {
    counters_.reset();
  }

 private:
  template <std::size_t I, class Ctx>
  Traced run_from(Ctx& ctx, const Request& m,
                  std::optional<SwitchValue> init) {
    const ModuleResult r = stage<I>().invoke(ctx, m, init);
    if (r.committed()) {
      if constexpr (WithStats) counters_.on_commit(I);
      return {r, I};
    }
    if constexpr (WithStats) counters_.on_abort(I);
    if constexpr (I + 1 < kDepth) {
      return run_from<I + 1>(ctx, m,
                             std::optional<SwitchValue>(r.switch_value));
    } else {
      return {r, I};  // whole-pipeline abort: composes further upstream
    }
  }

  // One stage of the stage-major batch walk: run every live (not yet
  // committed / finally aborted) slot through stage I, then hand the
  // survivors to stage I+1. Commit/abort tallies are accumulated in
  // locals and flushed with one bulk update per stage.
  template <std::size_t I, class Ctx>
  void batch_from(Ctx& ctx, std::span<OpSlot> batch) {
    auto& st = stage<I>();
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t pending = 0;

    if constexpr (BatchInvocable<std::remove_reference_t<decltype(st)>, Ctx>) {
      // The stage has its own batch path (e.g. a nested pipeline):
      // hand it the WHOLE span — the done-flag contract makes it skip
      // the slots earlier outer stages finalized, so no gather/scatter
      // copies and no allocation. Afterwards every slot is done;
      // whether one continues downstream is decided by its result
      // outcome. The outcome also re-identifies the slots this stage
      // served: slots finalized at an earlier outer stage can only
      // hold commits (final aborts exist only past the LAST stage), so
      // every abort-result slot is one of ours, and our commits are
      // the live count minus those aborts.
      std::uint64_t live = 0;
      for (const OpSlot& slot : batch) live += slot.done ? 0 : 1;
      st.invoke_batch(ctx, batch);
      for (OpSlot& slot : batch) {
        if (slot.result.committed()) continue;
        slot.init = slot.result.switch_value;
        ++aborts;
        ++pending;
        if constexpr (I + 1 < kDepth) slot.done = false;
      }
      commits = live - aborts;
    } else {
      for (OpSlot& slot : batch) {
        if (slot.done) continue;
        slot.result = st.invoke(ctx, slot.request, slot.init);
        if (slot.result.committed()) {
          slot.done = true;
          ++commits;
        } else {
          // Theorem 1's plumbing, batched: the abort switch value
          // initializes this slot's next stage.
          slot.init = slot.result.switch_value;
          ++aborts;
          ++pending;
          if constexpr (I + 1 == kDepth) slot.done = true;
        }
      }
    }

    if constexpr (WithStats) {
      counters_.on_commits(I, commits);
      counters_.on_aborts(I, aborts);
    }
    if constexpr (I + 1 < kDepth) {
      if (pending != 0) batch_from<I + 1>(ctx, batch);
    }
  }

  std::tuple<typename detail::PipelineSlot<Ms>::type...> slots_;
  [[no_unique_address]] std::conditional_t<WithStats,
                                           detail::PipelineCounters<kDepth>,
                                           detail::NoPipelineCounters>
      counters_;
};

template <class... Ms>
using Pipeline = BasicPipeline<true, Ms...>;

// Stats-free variant: the commit path touches nothing but the modules.
template <class... Ms>
using FastPipeline = BasicPipeline<false, Ms...>;

// Deduction helpers. Lvalue arguments are referenced (caller keeps
// ownership and the modules stay shared); rvalues are moved in and
// owned by the pipeline.
template <class... Ms>
[[nodiscard]] auto make_pipeline(Ms&&... modules) {
  return Pipeline<Ms...>(std::forward<Ms>(modules)...);
}

template <class... Ms>
[[nodiscard]] auto make_fast_pipeline(Ms&&... modules) {
  return FastPipeline<Ms...>(std::forward<Ms>(modules)...);
}

// Legacy binary composition helper, superseded by make_pipeline (which
// handles any depth, fixes the dangling-module hazard and adds stats).
template <class A, class B>
[[deprecated("use make_pipeline(a, b) — variadic, lifetime-safe, with "
             "per-stage stats")]] [[nodiscard]] auto
compose(A& a, B& b) {
  return make_pipeline(a, b);
}

}  // namespace scm
