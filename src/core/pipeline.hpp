// Variadic composition pipeline (Figure 1 generalized to chains of any
// depth; Theorem 2 — safely composable modules compose to a safely
// composable module).
//
// Pipeline<Ms...> is the statically-typed chain combinator that
// supersedes the binary Composed<A, B>: it holds any number of
// ComposableModules and folds the abort→init switch-value plumbing at
// compile time. Invoking the pipeline runs stage 0; if a stage aborts,
// its switch value initializes the next stage, exactly as in the
// paper's composition operator, and the recursion is unrolled with
// `if constexpr` — no virtual dispatch, no type erasure, no heap. If
// the LAST stage aborts, the pipeline as a whole aborts with that
// stage's switch value, so a Pipeline is itself a ComposableModule and
// nests (a pipeline of pipelines is a pipeline).
//
// Each type parameter selects a storage mode:
//   * `M&` — the pipeline *references* a module owned elsewhere
//     (stored as std::reference_wrapper, never a raw pointer — this
//     fixes Composed's pointer-to-possibly-dead-module hazard);
//   * `M`  — the pipeline *owns* the module by value (moved in, or
//     default-constructed for all-owned pipelines).
// make_pipeline(a, b, c) deduces the mode per argument: lvalues are
// referenced, rvalues are moved in and owned.
//
// Statistics: the default Pipeline counts per-stage commits and aborts
// with relaxed atomics (one uncontended fetch_add per stage visited —
// harness bookkeeping, never a counted shared-memory step).
// FastPipeline/make_fast_pipeline disable the counters at compile time
// for hot paths that must not touch a shared cache line per operation
// (e.g. the speculative TAS used by the native throughput benches).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <functional>
#include <optional>
#include <tuple>
#include <type_traits>
#include <utility>

#include "core/module.hpp"
#include "history/request.hpp"
#include "support/assert.hpp"

namespace scm {

// Per-stage commit/abort totals (a snapshot; see BasicPipeline::stats).
struct PipelineStageStats {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;

  [[nodiscard]] std::uint64_t invocations() const noexcept {
    return commits + aborts;
  }
};

namespace detail {

// Storage selector: reference mode for `M&`, owning mode for `M`.
template <class M>
struct PipelineSlot {
  using type = M;
  static M& get(M& slot) noexcept { return slot; }
  static const M& get(const M& slot) noexcept { return slot; }
};

template <class M>
struct PipelineSlot<M&> {
  using type = std::reference_wrapper<M>;
  static M& get(std::reference_wrapper<M> slot) noexcept { return slot.get(); }
};

template <std::size_t Depth>
struct PipelineCounters {
  struct Cell {
    std::atomic<std::uint64_t> commits{0};
    std::atomic<std::uint64_t> aborts{0};
  };
  std::array<Cell, Depth> cells;

  PipelineCounters() = default;
  // Atomics delete the implicit copy/move; counters are snapshot-copied
  // so pipelines stay movable (a moved-from pipeline's counts carry
  // over — moves happen at construction time, never mid-measurement).
  PipelineCounters(const PipelineCounters& other) noexcept {
    for (std::size_t i = 0; i < Depth; ++i) {
      cells[i].commits.store(
          other.cells[i].commits.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      cells[i].aborts.store(
          other.cells[i].aborts.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
  }
  PipelineCounters& operator=(const PipelineCounters&) = delete;

  void on_commit(std::size_t i) noexcept {
    cells[i].commits.fetch_add(1, std::memory_order_relaxed);
  }
  void on_abort(std::size_t i) noexcept {
    cells[i].aborts.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] PipelineStageStats snapshot(std::size_t i) const noexcept {
    return {cells[i].commits.load(std::memory_order_relaxed),
            cells[i].aborts.load(std::memory_order_relaxed)};
  }
  void reset() noexcept {
    for (auto& c : cells) {
      c.commits.store(0, std::memory_order_relaxed);
      c.aborts.store(0, std::memory_order_relaxed);
    }
  }
};

struct NoPipelineCounters {};

}  // namespace detail

template <bool WithStats, class... Ms>
class BasicPipeline {
  static_assert(sizeof...(Ms) >= 1, "a pipeline needs at least one module");

 public:
  // Number of composed modules — the chain depth of Figure 1.
  static constexpr std::size_t kDepth = sizeof...(Ms);

  // The composition's consensus number is the maximum over the
  // components (the quantity the paper's "negligible cost" results
  // bound), folded at compile time.
  static constexpr int kConsensusNumber =
      std::max({std::remove_reference_t<Ms>::kConsensusNumber...});

  // Result of one invocation together with the stage that produced it
  // (Figure 1's arrows — which module served the operation).
  struct Traced {
    ModuleResult result;
    std::size_t stage = 0;
  };

  // Reference slots bind to the given modules; owned slots are
  // move-constructed from rvalue arguments.
  explicit BasicPipeline(Ms&&... modules)
      : slots_(std::forward<Ms>(modules)...) {}

  // All-owned pipelines of default-constructible modules need no
  // arguments: Pipeline<A1, A2> p; owns both stages in place.
  BasicPipeline()
    requires((!std::is_reference_v<Ms> &&
              std::is_default_constructible_v<Ms>) &&
             ...)
      : slots_() {}

  // The module interface (ComposableModule): run the chain starting at
  // stage 0 with `init`; a stage's abort switch value initializes the
  // next stage; the last stage's abort is the pipeline's abort.
  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& m,
                      std::optional<SwitchValue> init = std::nullopt) {
    return run_from<0>(ctx, m, init).result;
  }

  // invoke plus the index of the serving stage.
  template <class Ctx>
  Traced invoke_traced(Ctx& ctx, const Request& m,
                       std::optional<SwitchValue> init = std::nullopt) {
    return run_from<0>(ctx, m, init);
  }

  // The I-th composed module (unwrapped from its storage mode).
  template <std::size_t I>
  [[nodiscard]] auto& stage() noexcept {
    static_assert(I < kDepth);
    using M = std::tuple_element_t<I, std::tuple<Ms...>>;
    return detail::PipelineSlot<M>::get(std::get<I>(slots_));
  }

  // Per-stage statistics snapshot. Only available when the stats
  // counters are compiled in (the default Pipeline alias).
  [[nodiscard]] PipelineStageStats stats(std::size_t i) const
    requires WithStats
  {
    SCM_CHECK(i < kDepth);
    return counters_.snapshot(i);
  }

  void reset_stats() noexcept
    requires WithStats
  {
    counters_.reset();
  }

 private:
  template <std::size_t I, class Ctx>
  Traced run_from(Ctx& ctx, const Request& m,
                  std::optional<SwitchValue> init) {
    const ModuleResult r = stage<I>().invoke(ctx, m, init);
    if (r.committed()) {
      if constexpr (WithStats) counters_.on_commit(I);
      return {r, I};
    }
    if constexpr (WithStats) counters_.on_abort(I);
    if constexpr (I + 1 < kDepth) {
      return run_from<I + 1>(ctx, m,
                             std::optional<SwitchValue>(r.switch_value));
    } else {
      return {r, I};  // whole-pipeline abort: composes further upstream
    }
  }

  std::tuple<typename detail::PipelineSlot<Ms>::type...> slots_;
  [[no_unique_address]] std::conditional_t<WithStats,
                                           detail::PipelineCounters<kDepth>,
                                           detail::NoPipelineCounters>
      counters_;
};

template <class... Ms>
using Pipeline = BasicPipeline<true, Ms...>;

// Stats-free variant: the commit path touches nothing but the modules.
template <class... Ms>
using FastPipeline = BasicPipeline<false, Ms...>;

// Deduction helpers. Lvalue arguments are referenced (caller keeps
// ownership and the modules stay shared); rvalues are moved in and
// owned by the pipeline.
template <class... Ms>
[[nodiscard]] auto make_pipeline(Ms&&... modules) {
  return Pipeline<Ms...>(std::forward<Ms>(modules)...);
}

template <class... Ms>
[[nodiscard]] auto make_fast_pipeline(Ms&&... modules) {
  return FastPipeline<Ms...>(std::forward<Ms>(modules)...);
}

// Legacy binary composition helper, superseded by make_pipeline (which
// handles any depth, fixes the dangling-module hazard and adds stats).
template <class A, class B>
[[deprecated("use make_pipeline(a, b) — variadic, lifetime-safe, with "
             "per-stage stats")]] [[nodiscard]] auto
compose(A& a, B& b) {
  return make_pipeline(a, b);
}

}  // namespace scm
