// Flat-combining composition (the batching counterpart of Sharded's
// replication): wrap any ComposableModule in a publication array and
// let ONE elected combiner execute everyone's pending requests through
// the batch invocation path (core/batch.hpp).
//
// Combining<Obj, kSlots, Policy> is a combinator, not an algorithm:
// each operation publishes its request into a cacheline-padded slot
// (one release store), then either waits for a combiner to serve it or
// — whenever the TAS-elected combiner lock is free — becomes the
// combiner itself, draining every pending slot through
// run_batch(obj, ...) in one pass. Under contention the composed-chain
// walk that every process used to pay per operation is paid once per
// batch by the combiner, which also keeps the wrapped object's cache
// lines local to one core instead of bouncing them between all
// publishers (Hendler/Incze/Shavit/Tzafrir's flat combining, applied
// to the paper's composition chains).
//
// Semantics: the combiner executes the batch sequentially while
// holding the election lock, so every operation — published or run on
// the lock-free fast path — takes effect at one point inside its
// invoke/return interval: the wrapped object's linearizability is
// preserved, and a single-threaded caller gets bit-identical results
// to invoking the object directly (combining_test and the
// compose.batched scenario pin both properties). Note the combiner
// executes published requests under its OWN context: per-op step
// counters accrue to the serving thread, and requests carry their
// issuer in Request::issuer.
//
// Combining forwards the module surface (invoke + kConsensusNumber,
// plus stats()/commits_by() when Obj has them), so it is itself a
// ComposableModule and nests inside Sharded — per-shard combiners are
// the roadmap's "per-shard batch queues".
//
// Async surface (core/async.hpp): a publication slot already is a
// one-operation future, so submit() detaches the wait loop — it
// publishes and returns a Ticket (or completes inline and returns a
// ready ticket whenever the combiner lock is free), submit_detached()
// publishes fire-and-forget with a combiner-run completion callback,
// and drain() combines until no publication is pending. The ticket's
// poll()/wait() complete the slot round trip the blocking invoke()
// used to finish in place; wait() helps (the caller may elect itself
// combiner), so progress never depends on other threads. Destroying a
// Combining with any slot still occupied — an outstanding ticket, an
// un-drained detached submission — is a checked error.
//
// Platform note: publishers BLOCK on the combiner's progress, but the
// blocking points all go through the wait_until() seam
// (runtime/wait.hpp): native contexts climb the spin → yield → park
// ladder against the wrapper's WaitPoint (support/parking.hpp) — the
// combiner issues one batched wake per drained slot set, and the
// uncontended fast path performs no futex syscall at all — while the
// deterministic simulator parks the process on a wait predicate
// (ignoring the WaitPoint) — so the ENTIRE slot protocol runs
// under SimPlatform and sim::explore enumerates its interleavings
// (slot_protocol_explore_test checks linearizability and zero slot
// residue over every schedule of 2-3 processes). Like SpinBarrier, the
// unbounded spin loads are not counted as steps; the slot-claim and
// pending-hint RMWs, the publish write, the result read, the
// combiner-election RMW, and the combiner's slot scan/writeback are
// (they are the algorithm's real per-operation shared-memory traffic).
// The election lock's failed pre-test loads and release store are
// uncounted as well: under the simulator each such access is adjacent
// to a counted scheduling point, so no interleaving class is lost —
// only equivalent schedules collapse, which is what keeps exhaustive
// exploration tractable.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>

#include "core/async.hpp"
#include "core/batch.hpp"
#include "core/module.hpp"
#include "core/sharding.hpp"
#include "core/slot_protocol.hpp"
#include "history/request.hpp"
#include "runtime/ids.hpp"
#include "runtime/wait.hpp"
#include "support/assert.hpp"
#include "support/backoff.hpp"
#include "support/cacheline.hpp"
#include "support/parking.hpp"

namespace scm {

namespace detail {

// The wrapper's own base objects are the publication registers plus a
// TAS-elected combiner lock, so the composition's consensus number is
// the max of the wrapped object's and TAS's.
template <class Obj, class = void>
struct CombiningConsensusBase {};

template <class Obj>
struct CombiningConsensusBase<Obj,
                              std::void_t<decltype(Obj::kConsensusNumber)>> {
  static constexpr int kConsensusNumber =
      std::max(Obj::kConsensusNumber, kConsensusNumberTas);
};

// The spin-wait ladder lives in support/backoff.hpp now (the shm gate
// shares it); this name survives as an alias for its historical
// call sites.
inline void combining_backoff(int& spins) noexcept { spin_backoff(spins); }

}  // namespace detail

template <class Obj, std::size_t kSlots, class Policy = ByThread>
class Combining : public detail::CombiningConsensusBase<Obj>,
                  public detail::ShardedDepthBase<Obj> {
  static_assert(kSlots >= 1, "a combining wrapper needs at least one slot");

 public:
  static constexpr std::size_t kSlotCount = kSlots;

  // The publication protocol (core/slot_protocol.hpp), exposed so
  // tests can assert this wrapper and the cross-process ShmCombining
  // compile against the SAME state machine.
  using slot_state = SlotState;

  Combining()
    requires std::is_default_constructible_v<Obj>
      : obj_{} {}

  // In-place construction for wrapped objects with constructor
  // parameters (chains, pipelines of referenced modules).
  template <class... Args>
  explicit Combining(std::in_place_t, Args&&... args)
      : obj_(std::in_place, std::forward<Args>(args)...) {}

  Combining(const Combining&) = delete;
  Combining& operator=(const Combining&) = delete;

  // No publication may outlive the wrapper: at destruction every slot
  // must be kFree — tickets collected (or dropped: a dropped ticket
  // waits out its op), detached submissions drained. Anything else is
  // an outstanding operation about to read freed memory, so it is a
  // checked error rather than undefined behaviour.
  ~Combining() {
    for (auto& padded : slots_) {
      SCM_CHECK_MSG(
          padded.value.status.load(std::memory_order_acquire) == kFree,
          "Combining destroyed with an occupied publication slot "
          "(outstanding Ticket, or submit_detached without drain())");
    }
  }

  // Module surface: publish, then wait to be served or combine. The
  // policy maps (context, request) to a publication slot — the same
  // concept as shard routing, and ByThread (the default) gives every
  // thread a private slot whenever threads <= kSlots. With more
  // threads than slots, a colliding publisher waits for the slot
  // owner's round trip (helping the combiner along, so the wait is
  // bounded by its own progress even if the owner submitted
  // asynchronously and is off doing something else).
  template <class Ctx>
    requires Composable<Obj, Ctx> && ShardRoutingPolicy<Policy, Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& m,
                      std::optional<SwitchValue> init = std::nullopt) {
    // Fast path: the combiner lock is free — run the operation
    // directly (a batch of one, no publication round trip), then
    // serve anyone who published while we held the lock. At low
    // contention this makes the wrapper cost one TAS + one scan; at
    // high contention the lock is rarely free, so operations take the
    // publication path below and get batched. How hard to fight for
    // the lock here is the runtime elect_spins knob: 0 skips the
    // election entirely (publish-and-batch mode).
    if (try_elect(ctx)) return run_direct(ctx, m, init);

    // The slot policy is consulted on the publication path only (the
    // fast path touches no slot); a load-tracking policy's counters
    // therefore see published ops, and its on_complete hook fires
    // after the slot round trip below. When the array is exhausted,
    // claim_or_run executes the operation inline instead.
    ModuleResult inline_result;
    const auto idx = claim_or_run(ctx, m, init, &inline_result);
    if (!idx.has_value()) return inline_result;
    Slot& slot = slots_[*idx].value;
    publish(ctx, slot, m, init, /*detached=*/false, nullptr, nullptr);

    // Wait to be served, electing ourselves combiner whenever the lock
    // is free (test-and-test-and-set). Our own slot is pending
    // throughout, so our combine() pass serves at least ourselves. The
    // wait parks until something can have changed: our slot completed,
    // or the lock freed and we should re-attempt the election.
    for (;;) {
      if (slot.status.load(std::memory_order_acquire) == kDone) break;
      if (help_combine(ctx)) continue;
      wait_until(
          ctx,
          [this, &slot] {
            return slot.status.load(std::memory_order_relaxed) == kDone ||
                   !lock_.value.load(std::memory_order_relaxed);
          },
          waiters_.value);
    }
    return collect(ctx, *idx);
  }

  // Native batch path (BatchInvocable): one combiner election serves
  // the WHOLE caller-provided batch — plus anything published
  // meanwhile — instead of paying one publication round trip per op.
  // This is what lets an outer grouping layer (Sharded::invoke_batch
  // building per-shard sub-batches) hand a per-shard combiner a REAL
  // batch: the wrapped object's own batch path (a pipeline's
  // stage-major walk) runs over all of it in one pass. Ops executed
  // this way count as direct (no publication), keeping
  // direct_ops() + combined_ops() == total invocations.
  template <class Ctx>
    requires Composable<Obj, Ctx> && ShardRoutingPolicy<Policy, Ctx>
  void invoke_batch(Ctx& ctx, std::span<OpSlot> batch) {
    if (batch.empty()) return;
    std::uint64_t live = 0;
    for (const OpSlot& slot : batch) live += slot.done ? 0 : 1;
    if (live == 0) return;
    while (!try_lock(ctx)) {
      wait_until(
          ctx,
          [this] { return !lock_.value.load(std::memory_order_relaxed); },
          waiters_.value);
    }
    run_batch(obj_.value, ctx, batch);
    direct_ops_.fetch_add(live, std::memory_order_relaxed);
    combine(ctx);
    lock_.value.store(false, std::memory_order_release);
    waiters_.value.wake_all();
  }

  // ---- async surface (core/async.hpp).

  // Publish-and-return. On the uncontended fast path (combiner lock
  // free) the operation completes inline — a batch of one, exactly
  // invoke()'s fast path — and the ticket is born ready, so
  // submit().wait() costs what invoke() costs and returns bit-identical
  // results. Otherwise the request is published and the wait loop is
  // detached into the returned Ticket: poll() checks the slot, wait()
  // helps combine, and whichever completes first consumes the round
  // trip. When the publication array is exhausted (every record held
  // by an uncollected ticket) the operation completes inline under
  // the combiner lock instead — see claim_or_run — so submission
  // never blocks on ticket holders. The optional completion callback
  // runs on the thread that finalizes the operation — the combiner
  // for published ops, the caller on inline paths — and on EVERY path
  // it fires with the election lock held, right at the op's
  // serialization point: callbacks across the whole object fire in
  // linearization order (the caching combinator's invalidation/refill
  // depends on this), and callbacks must never re-enter this
  // Combining. On non-blocking platforms (the step-granting
  // simulator) publication round trips cannot run, so submit()
  // degenerates to invoke() plus a ready ticket.
  template <class Ctx>
    requires Composable<Obj, Ctx> && ShardRoutingPolicy<Policy, Ctx>
  Ticket<ModuleResult> submit(Ctx& ctx, const Request& m,
                              std::optional<SwitchValue> init = std::nullopt,
                              CompletionFn completion = nullptr,
                              void* user = nullptr) {
    if constexpr (!detail::context_can_block_v<Ctx>) {
      const ModuleResult r = invoke(ctx, m, init);
      if (completion != nullptr) completion(user, r);
      return Ticket<ModuleResult>::ready(r);
    } else {
      ModuleResult r;
      const auto idx =
          submit_impl(ctx, m, init, /*detached=*/false, completion, user, &r);
      if (!idx.has_value()) return Ticket<ModuleResult>::ready(r);
      return Ticket<ModuleResult>(
          &ticket_source<Ctx>(), this,
          reinterpret_cast<void*>(static_cast<std::uintptr_t>(*idx)), &ctx);
    }
  }

  // Fire-and-forget submission: no ticket. The completion callback
  // (which may be null for pure side-effect operations) runs when the
  // operation is served, and the serving thread retires the
  // publication record itself — the kDetached completion state of
  // core/batch.hpp — since no publisher will ever collect it. Pending
  // detached submissions survive until some thread combines: callers
  // must drain() (or keep the object busy) before destruction.
  template <class Ctx>
    requires Composable<Obj, Ctx> && ShardRoutingPolicy<Policy, Ctx>
  void submit_detached(Ctx& ctx, const Request& m,
                       std::optional<SwitchValue> init = std::nullopt,
                       CompletionFn completion = nullptr,
                       void* user = nullptr) {
    if constexpr (!detail::context_can_block_v<Ctx>) {
      const ModuleResult r = invoke(ctx, m, init);
      if (completion != nullptr) completion(user, r);
    } else {
      ModuleResult r;
      (void)submit_impl(ctx, m, init, /*detached=*/true, completion, user,
                        &r);
    }
  }

  // Combines until no publication is pending: when drain() returns,
  // every operation submitted (by any thread) before the call has been
  // EXECUTED — attached slots sit in kDone awaiting their ticket,
  // detached slots are fully retired. It does not wait for other
  // threads to collect their tickets. A no-op on non-blocking
  // platforms, where nothing can be pending.
  template <class Ctx>
  void drain(Ctx& ctx) {
    if constexpr (detail::context_can_block_v<Ctx>) {
      // Acquire: pairs with the combiner's release decrement, so the
      // zero observation carries every served op's effects with it.
      while (pending_hint_.value.load(std::memory_order_acquire) != 0) {
        if (help_combine(ctx)) continue;
        wait_until(
            ctx,
            [this] {
              return pending_hint_.value.load(std::memory_order_relaxed) ==
                         0 ||
                     !lock_.value.load(std::memory_order_relaxed);
            },
            waiters_.value);
      }
    } else {
      (void)ctx;
    }
  }

  [[nodiscard]] Obj& object() noexcept { return obj_.value; }
  [[nodiscard]] const Obj& object() const noexcept { return obj_.value; }

  // The slot policy instance, for inspection (e.g. ByLeastLoaded's
  // in-flight counters — consulted on the publication path only).
  [[nodiscard]] Policy& policy() noexcept { return policy_; }
  [[nodiscard]] const Policy& policy() const noexcept { return policy_; }

  // ---- combining telemetry (relaxed; written only by combiners).

  // Number of combiner passes that served at least one operation.
  [[nodiscard]] std::uint64_t combine_rounds() const noexcept {
    return rounds_.load(std::memory_order_relaxed);
  }
  // Operations served across all passes; divided by combine_rounds()
  // this is the achieved batch size — the amortization factor.
  [[nodiscard]] std::uint64_t combined_ops() const noexcept {
    return batched_ops_.load(std::memory_order_relaxed);
  }
  // Operations that took the uncontended fast path (lock free, no
  // publication). direct_ops() + combined_ops() == total invocations.
  [[nodiscard]] std::uint64_t direct_ops() const noexcept {
    return direct_ops_.load(std::memory_order_relaxed);
  }

  // Park/wake telemetry from the wrapper's WaitPoint (rung-3 waits).
  // futex_syscalls stays zero as long as every operation completed
  // before any waiter's backoff ladder saturated — in particular, a
  // pure fast-path run performs NO futex syscalls (compose.async
  // asserts exactly that for its fastpath_share == 1 phases).
  [[nodiscard]] ParkStats park_stats() const noexcept {
    return waiters_.value.stats();
  }

  // ---- runtime actuators (core/adaptive.hpp drives these; both are
  // relaxed hints, safe to flip while operations are in flight).

  // Election attempts a per-op entry point makes before conceding to
  // the publication path. 1 = historical TAS fast path (the default);
  // 0 = publish-and-batch mode.
  void set_elect_spins(std::uint32_t n) noexcept {
    elect_spins_.value.store(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t elect_spins() const noexcept {
    return elect_spins_.value.load(std::memory_order_relaxed);
  }

  // Wait-rung selection for every blocking site in this wrapper: how
  // many yields a saturated waiter climbs before its first park
  // (forwarded to the wrapper's WaitPoint).
  void set_yields_before_park(int n) noexcept {
    waiters_.value.set_yields_before_park(n);
  }
  [[nodiscard]] int yields_before_park() const noexcept {
    return waiters_.value.yields_before_park();
  }

  // Publication records not currently kFree — the slot-residue probe
  // (mirrors ShmCombining::occupied()). Zero once every invoke has
  // returned, every ticket is collected, and detached work is drained;
  // the explorer asserts exactly that after every explored schedule.
  [[nodiscard]] std::size_t occupied() const noexcept {
    std::size_t n = 0;
    for (const auto& padded : slots_) {
      if (padded.value.status.load(std::memory_order_acquire) != kFree) ++n;
    }
    return n;
  }

  // ---- forwarded statistics surfaces (enabled exactly when the
  // wrapped object provides them), so Combining<Pipeline<...>> keeps
  // the pipeline's per-stage accounting and Sharded can merge it.

  [[nodiscard]] PipelineStageStats stats(std::size_t i) const
    requires requires(const Obj& o, std::size_t j) {
      { o.stats(j) } -> std::same_as<PipelineStageStats>;
    }
  {
    return obj_.value.stats(i);
  }

  void reset_stats() noexcept
    requires requires(Obj& o) { o.reset_stats(); }
  {
    obj_.value.reset_stats();
  }

  [[nodiscard]] std::uint64_t commits_by(ProcessId pid, std::size_t i) const
    requires requires(const Obj& o, std::size_t j) { o.commits_by(pid, j); }
  {
    return obj_.value.commits_by(pid, i);
  }

  [[nodiscard]] int consensus_number() const
    requires requires(const Obj& o) { o.consensus_number(); }
  {
    return std::max(obj_.value.consensus_number(), kConsensusNumberTas);
  }

 private:
  // Publication slot lifecycle (shared with the cross-process
  // ShmCombining via core/slot_protocol.hpp): kFree -> kClaimed
  // (publisher owns the record) -> kPending (request visible to
  // combiners) -> kDone (result visible to the publisher) -> kFree.
  static constexpr SlotState kFree = SlotState::kFree;
  static constexpr SlotState kClaimed = SlotState::kClaimed;
  static constexpr SlotState kPending = SlotState::kPending;
  static constexpr SlotState kDone = SlotState::kDone;

  struct Slot {
    std::atomic<SlotState> status{kFree};
    Request request;
    std::optional<SwitchValue> init;
    ModuleResult result;
    // Async publication extras, plain fields ordered by the kPending
    // release store like request/init: detached marks fire-and-forget
    // records (the server retires them — no kDone handback), and
    // completion/user is the optional callback the finalizing thread
    // runs.
    bool detached = false;
    CompletionFn completion = nullptr;
    void* user = nullptr;
  };

  // Routes (context, request) to a publication slot, range-checked.
  template <class Ctx>
  std::size_t route_slot(Ctx& ctx, const Request& m) {
    const std::size_t idx = policy_(ctx, m, kSlots);
    SCM_CHECK_MSG(idx < kSlots, "slot policy produced an out-of-range slot");
    return idx;
  }

  // Tries to elect the caller combiner (test-and-test-and-set); the
  // winning exchange is the counted RMW. The caller owns the lock on
  // success and must release it.
  template <class Ctx>
  bool try_lock(Ctx& ctx) {
    if (!lock_.value.load(std::memory_order_relaxed) &&
        !lock_.value.exchange(true, std::memory_order_acquire)) {
      ctx.on_rmw();
      return true;
    }
    return false;
  }

  // The knob-gated election used by the PER-OP entry points (invoke,
  // submit): up to elect_spins election attempts with a pause between
  // them. The default of 1 is bit-identical to the historical single
  // TAS; 0 turns the direct fast path off entirely, so every
  // contended op publishes and amortizes into a combiner batch —
  // what the adaptive layer selects under sustained contention.
  // Internal liveness sites (claim_or_run's exhaustion fallback,
  // help_combine, invoke_batch) deliberately keep the raw try_lock:
  // at elect_spins == 0 someone must still be able to take the lock
  // or nothing would ever combine.
  template <class Ctx>
  bool try_elect(Ctx& ctx) {
    const std::uint32_t attempts =
        elect_spins_.value.load(std::memory_order_relaxed);
    for (std::uint32_t a = 0; a < attempts; ++a) {
      if (try_lock(ctx)) return true;
      cpu_pause();
    }
    return false;
  }

  // On a won election, runs one combine pass and releases the lock.
  // Every wait loop calls this so a stuck publication can always be
  // served by whoever is waiting on it — with async submitters in the
  // mix, the slot's owner may long since have returned.
  template <class Ctx>
  bool help_combine(Ctx& ctx) {
    if (!try_lock(ctx)) return false;
    combine(ctx);
    lock_.value.store(false, std::memory_order_release);
    // One batched wake per drained slot set: covers every waiter class
    // at once — slots that turned kDone above, lock-waiters, and
    // drain()ers that saw the pending count hit zero.
    waiters_.value.wake_all();
    return true;
  }

  // Pre: combiner lock held. Runs one operation directly — a batch of
  // one, no publication round trip — serves whatever published
  // meanwhile, and releases the lock. The shared body of the
  // uncontended fast path and the slot-exhaustion fallback below.
  //
  // The completion callback (when given) fires immediately after the
  // op executes, still under the election lock — the same point in
  // the serialization order where a combiner fires published ops'
  // callbacks. That uniformity is load-bearing for layers that react
  // to completions (the caching combinator's invalidation/refill):
  // callbacks across ALL paths fire in linearization order, so a
  // completion-observer sees object states in the order they took
  // effect. The corollary holds on every path too: callbacks must not
  // re-enter this Combining.
  template <class Ctx>
  ModuleResult run_direct(Ctx& ctx, const Request& m,
                          std::optional<SwitchValue> init,
                          CompletionFn completion = nullptr,
                          void* user = nullptr) {
    const ModuleResult r = scm::apply(obj_.value, ctx, m, init);
    if (completion != nullptr) completion(user, r);
    direct_ops_.fetch_add(1, std::memory_order_relaxed);
    combine(ctx);
    lock_.value.store(false, std::memory_order_release);
    // Uncontended cost of this wake: one fence + one relaxed load —
    // no RMW, no syscall unless somebody actually parked.
    waiters_.value.wake_all();
    return r;
  }

  // One rotation over the publication array attempting to claim a free
  // record (kFree -> kClaimed; the successful CAS is the counted RMW),
  // starting at the policy's hint. Non-blocking: nullopt when every
  // record is busy.
  template <class Ctx>
  std::optional<std::size_t> try_claim_rotation(Ctx& ctx, std::size_t hint) {
    for (std::size_t k = 0; k < kSlots; ++k) {
      const std::size_t idx =
          hint + k < kSlots ? hint + k : hint + k - kSlots;
      Slot& slot = slots_[idx].value;
      SlotState expected = kFree;
      if (slot.status.load(std::memory_order_relaxed) == kFree &&
          slot.status.compare_exchange_strong(expected, kClaimed,
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed)) {
        ctx.on_rmw();
        return idx;
      }
    }
    return std::nullopt;
  }

  // Shared body of submit/submit_detached on blocking platforms:
  // completes the operation inline — fast path or exhaustion fallback,
  // with the callback fired under the election lock inside run_direct,
  // returning nullopt with *out filled — or claims AND publishes a
  // record, returning its index (the callback then travels with the
  // publication and the serving combiner fires it, likewise under the
  // lock).
  template <class Ctx>
  std::optional<std::size_t> submit_impl(Ctx& ctx, const Request& m,
                                         std::optional<SwitchValue> init,
                                         bool detached,
                                         CompletionFn completion, void* user,
                                         ModuleResult* out) {
    if (try_elect(ctx)) {
      *out = run_direct(ctx, m, init, completion, user);
      return std::nullopt;
    }
    const auto idx = claim_or_run(ctx, m, init, out, completion, user);
    if (idx.has_value()) {
      publish(ctx, slots_[*idx].value, m, init, detached, completion, user);
      return idx;
    }
    return std::nullopt;
  }

  // Either claims a publication record for (m, init) — returning its
  // index, publication left to the caller — or executes the operation
  // inline under the combiner lock, returning nullopt with *out
  // filled.
  //
  // The inline fallback is what keeps async submission LIVE: a kDone
  // record frees only when its owner polls, and under async submission
  // every owner of every record can simultaneously be stuck in a claim
  // loop (none of them can collect its own tickets from there), so
  // waiting for a record to free can deadlock the whole group. The
  // combiner lock, by contrast, always frees in bounded time (holders
  // run one bounded pass and release), so "serve yourself as a batch
  // of one" is always reachable. Stateless policies treat the routed
  // slot as a HINT and rotate (any record serves a publication
  // equally); load-tracking policies (on_complete) need the claimed
  // index to equal the routed index or their per-slot counters skew,
  // so for them a busy routed record goes straight to the inline
  // fallback instead of waiting.
  template <class Ctx>
  std::optional<std::size_t> claim_or_run(Ctx& ctx, const Request& m,
                                          std::optional<SwitchValue> init,
                                          ModuleResult* out,
                                          CompletionFn completion = nullptr,
                                          void* user = nullptr) {
    const std::size_t hint = route_slot(ctx, m);
    for (;;) {
      if constexpr (requires(Policy& p) { p.on_complete(hint); }) {
        Slot& slot = slots_[hint].value;
        SlotState expected = kFree;
        if (slot.status.load(std::memory_order_relaxed) == kFree &&
            slot.status.compare_exchange_strong(expected, kClaimed,
                                                std::memory_order_acquire,
                                                std::memory_order_relaxed)) {
          ctx.on_rmw();
          return hint;
        }
      } else {
        if (const auto idx = try_claim_rotation(ctx, hint)) return idx;
      }
      if (try_lock(ctx)) {
        *out = run_direct(ctx, m, init, completion, user);
        // The routed record was never used: balance a load-tracking
        // policy's in-flight increment from route_slot, or its
        // counters drift up on every inline fallback.
        if constexpr (requires(Policy& p) { p.on_complete(hint); }) {
          policy_.on_complete(hint);
        }
        return std::nullopt;
      }
      // Nothing claimable and the lock is held: park until a record
      // (the routed one for load-tracking policies, any for stateless
      // ones) frees or the lock does, then retry the races above.
      wait_until(
          ctx,
          [this, hint] {
            if (!lock_.value.load(std::memory_order_relaxed)) return true;
            if constexpr (requires(Policy& p) { p.on_complete(hint); }) {
              return slots_[hint].value.status.load(
                         std::memory_order_relaxed) == kFree;
            } else {
              for (const auto& padded : slots_) {
                if (padded.value.status.load(std::memory_order_relaxed) ==
                    kFree) {
                  return true;
                }
              }
              return false;
            }
          },
          waiters_.value);
    }
  }

  // Publishes into a claimed record: the request/init/callback fields
  // are plain writes ordered by the release store of kPending — the
  // operation's one mandatory shared-memory step on this path. The
  // pending hint lets an uncontended combiner skip the slot scan
  // entirely; incremented before the slot turns pending so the count
  // is conservative (never zero while a publication is visible), and
  // decremented by whichever combiner serves the op.
  template <class Ctx>
  void publish(Ctx& ctx, Slot& slot, const Request& m,
               std::optional<SwitchValue> init, bool detached,
               CompletionFn completion, void* user) {
    slot.request = m;
    slot.init = init;
    slot.detached = detached;
    slot.completion = completion;
    slot.user = user;
    ctx.on_rmw();
    pending_hint_.value.fetch_add(1, std::memory_order_relaxed);
    ctx.on_write();
    slot.status.store(kPending, std::memory_order_release);
  }

  // Consumes a kDone slot: reads the result, recycles the record, and
  // fires the slot policy's completion hook — the publication round
  // trip is over, mirroring Sharded::invoke. Compiled out for
  // stateless policies.
  template <class Ctx>
  ModuleResult collect(Ctx& ctx, std::size_t idx) {
    Slot& slot = slots_[idx].value;
    ctx.on_read();
    const ModuleResult r = slot.result;
    slot.status.store(kFree, std::memory_order_release);
    // A freed record is what claim_or_run's exhaustion wait is parked
    // on; collect runs on the publisher (the slow path already), so
    // the wake's fence rides an existing round trip.
    waiters_.value.wake_all();
    if constexpr (requires(Policy& p) { p.on_complete(idx); }) {
      policy_.on_complete(idx);
    }
    return r;
  }

  // ---- ticket plumbing: the type-erased completion source bound into
  // every pending Ticket. `slot` carries the publication slot INDEX
  // (as a uintptr), not a pointer — collect() needs the index for the
  // policy hook anyway.

  template <class Ctx>
  static bool ticket_poll(void* source, void* slot, void* ctx,
                          ModuleResult* out) {
    auto* self = static_cast<Combining*>(source);
    const auto idx =
        static_cast<std::size_t>(reinterpret_cast<std::uintptr_t>(slot));
    Ctx& c = *static_cast<Ctx*>(ctx);
    if (self->slots_[idx].value.status.load(std::memory_order_acquire) !=
        kDone) {
      return false;
    }
    *out = self->collect(c, idx);
    return true;
  }

  template <class Ctx>
  static void ticket_wait(void* source, void* slot, void* ctx,
                          ModuleResult* out) {
    auto* self = static_cast<Combining*>(source);
    const auto idx =
        static_cast<std::size_t>(reinterpret_cast<std::uintptr_t>(slot));
    Ctx& c = *static_cast<Ctx*>(ctx);
    Slot& s = self->slots_[idx].value;
    for (;;) {
      if (s.status.load(std::memory_order_acquire) == kDone) break;
      if (self->help_combine(c)) continue;
      wait_until(
          c,
          [self, &s] {
            return s.status.load(std::memory_order_relaxed) == kDone ||
                   !self->lock_.value.load(std::memory_order_relaxed);
          },
          self->waiters_.value);
    }
    *out = self->collect(c, idx);
  }

  template <class Ctx>
  static const TicketSource<ModuleResult>& ticket_source() {
    static constexpr TicketSource<ModuleResult> kSource{
        &Combining::ticket_poll<Ctx>, &Combining::ticket_wait<Ctx>};
    return kSource;
  }

  // One combiner pass: snapshot the pending slots into a batch, drive
  // it through the wrapped object's batch path (specialized for
  // pipelines: one stage-major walk, bulk stats), then publish each
  // result back to its slot. Runs with the combiner lock held.
  template <class Ctx>
  void combine(Ctx& ctx) {
    // Nothing published (the common fast-path case): one cached load
    // instead of a kSlots-line scan. A publication that lands after
    // this check is not lost — its publisher retries the lock itself.
    if (pending_hint_.value.load(std::memory_order_relaxed) == 0) return;

    std::array<OpSlot, kSlots> batch;
    std::array<std::size_t, kSlots> owner{};
    std::size_t n = 0;
    for (std::size_t i = 0; i < kSlots; ++i) {
      Slot& s = slots_[i].value;
      if (s.status.load(std::memory_order_acquire) != kPending) continue;
      ctx.on_read();
      batch[n].request = s.request;
      batch[n].init = s.init;
      batch[n].done = false;
      batch[n].completion =
          s.detached ? OpCompletion::kDetached : OpCompletion::kAttached;
      owner[n] = i;
      ++n;
    }
    if (n == 0) return;

    run_batch(obj_.value, ctx, std::span<OpSlot>(batch.data(), n));

    for (std::size_t i = 0; i < n; ++i) {
      Slot& s = slots_[owner[i]].value;
      // The finalizing thread runs the publisher's callback, with the
      // election lock held — callbacks must not re-enter this wrapper.
      if (s.completion != nullptr) s.completion(s.user, batch[i].result);
      if (batch[i].completion == OpCompletion::kDetached) {
        // Fire-and-forget: no collector will ever come for this
        // record, so retire it in place and complete the slot policy's
        // round trip ourselves.
        ctx.on_write();
        s.status.store(kFree, std::memory_order_release);
        if constexpr (requires(Policy& p) { p.on_complete(owner[i]); }) {
          policy_.on_complete(owner[i]);
        }
      } else {
        s.result = batch[i].result;
        ctx.on_write();
        s.status.store(kDone, std::memory_order_release);
      }
    }
    // Release: pairs with drain()'s acquire load, so a drainer that
    // observes zero pending also observes every served operation's
    // effects (detached callbacks included).
    pending_hint_.value.fetch_sub(static_cast<std::uint64_t>(n),
                                  std::memory_order_release);
    rounds_.fetch_add(1, std::memory_order_relaxed);
    batched_ops_.fetch_add(n, std::memory_order_relaxed);
  }

  std::array<Padded<Slot>, kSlots> slots_;
  Padded<std::atomic<bool>> lock_{};  // combiner election (TAS)
  Padded<std::atomic<std::uint64_t>> pending_hint_{};
  // Rung-3 parking for every wait loop above (process-private futex).
  // One point for the whole wrapper: wakes are per-combine-pass, not
  // per-slot, so a finer grain would buy nothing but syscalls.
  Padded<WaitPoint<>> waiters_{};
  // Read-mostly election knob on its own line: every per-op entry
  // loads it; only adaptive reconfigurations write it.
  Padded<std::atomic<std::uint32_t>> elect_spins_{std::in_place, 1u};
  Padded<Obj> obj_;
  std::atomic<std::uint64_t> rounds_{0};
  std::atomic<std::uint64_t> batched_ops_{0};
  std::atomic<std::uint64_t> direct_ops_{0};
  [[no_unique_address]] Policy policy_{};
};

}  // namespace scm
