// Flat-combining composition (the batching counterpart of Sharded's
// replication): wrap any ComposableModule in a publication array and
// let ONE elected combiner execute everyone's pending requests through
// the batch invocation path (core/batch.hpp).
//
// Combining<Obj, kSlots, Policy> is a combinator, not an algorithm:
// each operation publishes its request into a cacheline-padded slot
// (one release store), then either waits for a combiner to serve it or
// — whenever the TAS-elected combiner lock is free — becomes the
// combiner itself, draining every pending slot through
// run_batch(obj, ...) in one pass. Under contention the composed-chain
// walk that every process used to pay per operation is paid once per
// batch by the combiner, which also keeps the wrapped object's cache
// lines local to one core instead of bouncing them between all
// publishers (Hendler/Incze/Shavit/Tzafrir's flat combining, applied
// to the paper's composition chains).
//
// Semantics: the combiner executes the batch sequentially while
// holding the election lock, so every operation — published or run on
// the lock-free fast path — takes effect at one point inside its
// invoke/return interval: the wrapped object's linearizability is
// preserved, and a single-threaded caller gets bit-identical results
// to invoking the object directly (combining_test and the
// compose.batched scenario pin both properties). Note the combiner
// executes published requests under its OWN context: per-op step
// counters accrue to the serving thread, and requests carry their
// issuer in Request::issuer.
//
// Combining forwards the module surface (invoke + kConsensusNumber,
// plus stats()/commits_by() when Obj has them), so it is itself a
// ComposableModule and nests inside Sharded — per-shard combiners are
// the roadmap's "per-shard batch queues".
//
// Platform note: publishers BLOCK (spin, with periodic yields) on the
// combiner's progress, which is incompatible with the deterministic
// simulator's step-granting scheduler — Combining is a native-platform
// combinator. Like SpinBarrier, the unbounded spin loads are not
// counted as steps; the slot-claim and pending-hint RMWs, the publish
// write, the result read, the combiner-election RMW, and the
// combiner's slot scan/writeback are (they are the algorithm's real
// per-operation shared-memory traffic).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>

#include "core/batch.hpp"
#include "core/module.hpp"
#include "core/sharding.hpp"
#include "history/request.hpp"
#include "runtime/ids.hpp"
#include "support/assert.hpp"
#include "support/cacheline.hpp"

namespace scm {

namespace detail {

// The wrapper's own base objects are the publication registers plus a
// TAS-elected combiner lock, so the composition's consensus number is
// the max of the wrapped object's and TAS's.
template <class Obj, class = void>
struct CombiningConsensusBase {};

template <class Obj>
struct CombiningConsensusBase<Obj,
                              std::void_t<decltype(Obj::kConsensusNumber)>> {
  static constexpr int kConsensusNumber =
      std::max(Obj::kConsensusNumber, kConsensusNumberTas);
};

// Spin-wait pacing: mostly relaxed re-reads (the watched line is
// cache-local until the writer invalidates it), with a periodic yield
// so oversubscribed cores hand the timeslice to the thread being
// waited on instead of burning it.
inline void combining_backoff(int& spins) noexcept {
  if (++spins >= 64) {
    spins = 0;
    std::this_thread::yield();
  }
}

}  // namespace detail

template <class Obj, std::size_t kSlots, class Policy = ByThread>
class Combining : public detail::CombiningConsensusBase<Obj>,
                  public detail::ShardedDepthBase<Obj> {
  static_assert(kSlots >= 1, "a combining wrapper needs at least one slot");

 public:
  static constexpr std::size_t kSlotCount = kSlots;

  Combining()
    requires std::is_default_constructible_v<Obj>
      : obj_{} {}

  // In-place construction for wrapped objects with constructor
  // parameters (chains, pipelines of referenced modules).
  template <class... Args>
  explicit Combining(std::in_place_t, Args&&... args)
      : obj_(std::in_place, std::forward<Args>(args)...) {}

  Combining(const Combining&) = delete;
  Combining& operator=(const Combining&) = delete;

  // Module surface: publish, then wait to be served or combine. The
  // policy maps (context, request) to a publication slot — the same
  // concept as shard routing, and ByThread (the default) gives every
  // thread a private slot whenever threads <= kSlots. With more
  // threads than slots, a colliding publisher waits for the slot
  // owner's round trip (the owner is itself guaranteed to be served or
  // to combine, so the wait is bounded by combiner progress).
  template <class Ctx>
    requires ComposableModule<Obj, Ctx> && ShardRoutingPolicy<Policy, Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& m,
                      std::optional<SwitchValue> init = std::nullopt) {
    // Fast path: the combiner lock is free — run the operation
    // directly (a batch of one, no publication round trip), then
    // serve anyone who published while we held the lock. At low
    // contention this makes the wrapper cost one TAS + one scan; at
    // high contention the lock is rarely free, so operations take the
    // publication path below and get batched.
    if (!lock_.value.load(std::memory_order_relaxed) &&
        !lock_.value.exchange(true, std::memory_order_acquire)) {
      ctx.on_rmw();
      const ModuleResult r = obj_.value.invoke(ctx, m, init);
      direct_ops_.fetch_add(1, std::memory_order_relaxed);
      combine(ctx);
      lock_.value.store(false, std::memory_order_release);
      return r;
    }

    // The slot policy is consulted on the publication path only (the
    // fast path touches no slot); a load-tracking policy's counters
    // therefore see published ops, and its on_complete hook fires
    // after the slot round trip below.
    const std::size_t idx = policy_(ctx, m, kSlots);
    SCM_CHECK_MSG(idx < kSlots, "slot policy produced an out-of-range slot");
    Slot& slot = slots_[idx].value;

    // Claim the publication record (one RMW, counted once for the
    // claim as a whole — retries under slot collision spin uncounted,
    // like every other wait loop here).
    int spins = 0;
    std::uint32_t expected = kFree;
    while (!slot.status.compare_exchange_weak(expected, kClaimed,
                                              std::memory_order_acquire,
                                              std::memory_order_relaxed)) {
      expected = kFree;
      detail::combining_backoff(spins);
    }
    ctx.on_rmw();

    // Publish: the request/init fields are plain writes ordered by the
    // release store of kPending — the operation's one mandatory
    // shared-memory step on the fast path.
    slot.request = m;
    slot.init = init;
    // The pending hint lets an uncontended combiner skip the slot scan
    // entirely; incremented before the slot turns pending so the count
    // is conservative (never zero while a publication is visible), and
    // decremented by whichever combiner serves the op.
    ctx.on_rmw();
    pending_hint_.value.fetch_add(1, std::memory_order_relaxed);
    ctx.on_write();
    slot.status.store(kPending, std::memory_order_release);

    // Wait to be served, electing ourselves combiner whenever the lock
    // is free (test-and-test-and-set). Our own slot is pending
    // throughout, so our combine() pass serves at least ourselves.
    spins = 0;
    while (slot.status.load(std::memory_order_acquire) != kDone) {
      if (!lock_.value.load(std::memory_order_relaxed) &&
          !lock_.value.exchange(true, std::memory_order_acquire)) {
        ctx.on_rmw();
        combine(ctx);
        lock_.value.store(false, std::memory_order_release);
        continue;
      }
      detail::combining_backoff(spins);
    }

    ctx.on_read();
    const ModuleResult r = slot.result;
    slot.status.store(kFree, std::memory_order_release);
    // Load-tracking policies (ByLeastLoaded) get their completion
    // callback once the slot round trip is over, mirroring
    // Sharded::invoke. Compiled out for stateless policies.
    if constexpr (requires(Policy& p) { p.on_complete(idx); }) {
      policy_.on_complete(idx);
    }
    return r;
  }

  [[nodiscard]] Obj& object() noexcept { return obj_.value; }
  [[nodiscard]] const Obj& object() const noexcept { return obj_.value; }

  // The slot policy instance, for inspection (e.g. ByLeastLoaded's
  // in-flight counters — consulted on the publication path only).
  [[nodiscard]] Policy& policy() noexcept { return policy_; }
  [[nodiscard]] const Policy& policy() const noexcept { return policy_; }

  // ---- combining telemetry (relaxed; written only by combiners).

  // Number of combiner passes that served at least one operation.
  [[nodiscard]] std::uint64_t combine_rounds() const noexcept {
    return rounds_.load(std::memory_order_relaxed);
  }
  // Operations served across all passes; divided by combine_rounds()
  // this is the achieved batch size — the amortization factor.
  [[nodiscard]] std::uint64_t combined_ops() const noexcept {
    return batched_ops_.load(std::memory_order_relaxed);
  }
  // Operations that took the uncontended fast path (lock free, no
  // publication). direct_ops() + combined_ops() == total invocations.
  [[nodiscard]] std::uint64_t direct_ops() const noexcept {
    return direct_ops_.load(std::memory_order_relaxed);
  }

  // ---- forwarded statistics surfaces (enabled exactly when the
  // wrapped object provides them), so Combining<Pipeline<...>> keeps
  // the pipeline's per-stage accounting and Sharded can merge it.

  [[nodiscard]] PipelineStageStats stats(std::size_t i) const
    requires requires(const Obj& o, std::size_t j) {
      { o.stats(j) } -> std::same_as<PipelineStageStats>;
    }
  {
    return obj_.value.stats(i);
  }

  void reset_stats() noexcept
    requires requires(Obj& o) { o.reset_stats(); }
  {
    obj_.value.reset_stats();
  }

  [[nodiscard]] std::uint64_t commits_by(ProcessId pid, std::size_t i) const
    requires requires(const Obj& o, std::size_t j) { o.commits_by(pid, j); }
  {
    return obj_.value.commits_by(pid, i);
  }

  [[nodiscard]] int consensus_number() const
    requires requires(const Obj& o) { o.consensus_number(); }
  {
    return std::max(obj_.value.consensus_number(), kConsensusNumberTas);
  }

 private:
  // Publication slot lifecycle: kFree -> kClaimed (publisher owns the
  // record) -> kPending (request visible to combiners) -> kDone
  // (result visible to the publisher) -> kFree. kClaimed exists so a
  // colliding publisher can never observe a half-written request: the
  // combiner only reads slots it sees as kPending.
  static constexpr std::uint32_t kFree = 0;
  static constexpr std::uint32_t kClaimed = 1;
  static constexpr std::uint32_t kPending = 2;
  static constexpr std::uint32_t kDone = 3;

  struct Slot {
    std::atomic<std::uint32_t> status{kFree};
    Request request;
    std::optional<SwitchValue> init;
    ModuleResult result;
  };

  // One combiner pass: snapshot the pending slots into a batch, drive
  // it through the wrapped object's batch path (specialized for
  // pipelines: one stage-major walk, bulk stats), then publish each
  // result back to its slot. Runs with the combiner lock held.
  template <class Ctx>
  void combine(Ctx& ctx) {
    // Nothing published (the common fast-path case): one cached load
    // instead of a kSlots-line scan. A publication that lands after
    // this check is not lost — its publisher retries the lock itself.
    if (pending_hint_.value.load(std::memory_order_relaxed) == 0) return;

    std::array<OpSlot, kSlots> batch;
    std::array<Slot*, kSlots> owner{};
    std::size_t n = 0;
    for (auto& padded : slots_) {
      Slot& s = padded.value;
      if (s.status.load(std::memory_order_acquire) != kPending) continue;
      ctx.on_read();
      batch[n].request = s.request;
      batch[n].init = s.init;
      batch[n].done = false;
      owner[n] = &s;
      ++n;
    }
    if (n == 0) return;

    run_batch(obj_.value, ctx, std::span<OpSlot>(batch.data(), n));

    for (std::size_t i = 0; i < n; ++i) {
      owner[i]->result = batch[i].result;
      ctx.on_write();
      owner[i]->status.store(kDone, std::memory_order_release);
    }
    pending_hint_.value.fetch_sub(static_cast<std::uint64_t>(n),
                                  std::memory_order_relaxed);
    rounds_.fetch_add(1, std::memory_order_relaxed);
    batched_ops_.fetch_add(n, std::memory_order_relaxed);
  }

  std::array<Padded<Slot>, kSlots> slots_;
  Padded<std::atomic<bool>> lock_{};  // combiner election (TAS)
  Padded<std::atomic<std::uint64_t>> pending_hint_{};
  Padded<Obj> obj_;
  std::atomic<std::uint64_t> rounds_{0};
  std::atomic<std::uint64_t> batched_ops_{0};
  std::atomic<std::uint64_t> direct_ops_{0};
  [[no_unique_address]] Policy policy_{};
};

}  // namespace scm
