// Async submission layer: the completion handle shared by every
// composition layer's submit/complete surface.
//
// The paper pays composition cost synchronously — every operation
// walks the switch plumbing and blocks until its chain commits. A
// Combining publication slot, however, already IS a one-operation
// future: the publisher's request sits in shared memory until a
// combiner writes the result back. Ticket<R> detaches the wait loop
// from that round trip: submit() publishes and returns a handle, and
// the publisher polls or waits at its leisure (Perrin et al.'s
// completion-driven sequentially consistent composition, Cadambe et
// al.'s phase-decoupled coded atomic memory — the same move applied to
// the paper's composition chains).
//
// A Ticket is one of:
//   * READY   — the result is stored inline. Synchronous layers
//     (Pipeline, StaticAbstractChain, an uncontended Combining fast
//     path, any layer on the step-granting simulator) complete inline
//     and hand back ready tickets, so the submit/complete surface is
//     uniform without a second queue mechanism.
//   * PENDING — the operation lives in a publication slot owned by an
//     asynchronous source (Combining). poll()/wait() go through the
//     bound TicketSource vtable; wait() HELPS the source make progress
//     (the caller may elect itself combiner), so a pending ticket
//     completes even if no other thread ever runs.
//   * EMPTY   — default-constructed, moved-from, or consumed.
//
// Ownership: a ticket is owned by the submitting thread. It binds the
// submitting context (step counters accrue there), is move-only, and
// is not itself thread-safe — hand it to another thread only together
// with its context. Dropping a pending ticket is safe: the destructor
// waits out the operation and discards the result, so a publication
// slot can never leak. (A Combining destroyed while a ticket is still
// outstanding is the programming error its destructor assertion
// catches.)
//
// Completion callbacks: submit() optionally carries a CompletionFn
// that the COMPLETING thread runs — the combiner for published
// operations, the submitter itself on inline-complete paths. Paired
// with submit_detached() this yields fire-and-forget submission: no
// ticket, the combiner retires the slot itself (the detached
// completion state of core/batch.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>

#include "core/module.hpp"
#include "support/assert.hpp"

namespace scm {

// Completion callback: run exactly once with the operation's final
// result by whichever thread finalizes it. Function pointer + user
// cookie, not std::function — the publication hot path allocates
// nothing. Combiner-run callbacks execute while the combiner lock is
// held: they must not re-enter the owning Combining.
using CompletionFn = void (*)(void* user, const ModuleResult& result);

namespace detail {

// Contexts whose on_*() hooks may block the calling OS thread are the
// only ones that can run publication round trips (the simulator's
// step-granting scheduler cannot express a spin on combiner progress).
// NativeContext opts in via `static constexpr bool kCanBlock = true`;
// everything else — SimContext in particular — defaults to inline
// completion.
template <class Ctx, class = void>
struct context_can_block : std::false_type {};

template <class Ctx>
struct context_can_block<Ctx, std::void_t<decltype(Ctx::kCanBlock)>>
    : std::bool_constant<Ctx::kCanBlock> {};

template <class Ctx>
inline constexpr bool context_can_block_v = context_can_block<Ctx>::value;

}  // namespace detail

// Public name for the blocking-context trait: layers outside this
// header (core/adaptive.hpp gates its monitor ticks on it, so the
// deterministic simulator never observes wall-clock-dependent
// reconfiguration) key behavior on the same opt-in NativeContext uses.
template <class Ctx>
inline constexpr bool context_can_block_v = detail::context_can_block_v<Ctx>;

// Type-erased completion source of a pending ticket: two functions
// instantiated by the issuing layer for the (source, context) pair the
// ticket was created under. Erased by hand (function pointers into a
// static table) rather than virtually — tickets are created on hot
// paths and must cost no allocation.
template <class R>
struct TicketSource {
  // Non-blocking: if the operation has completed, consume it (fill
  // *out, release the slot) and return true.
  bool (*poll)(void* source, void* slot, void* ctx, R* out);
  // Blocking: help the source until the operation completes, then
  // consume it into *out.
  void (*wait)(void* source, void* slot, void* ctx, R* out);
};

template <class R = ModuleResult>
class Ticket {
 public:
  // Empty handle (moved-from / consumed state).
  Ticket() = default;

  // Already-completed submission: the uniform fast-path / synchronous
  // adapter result.
  [[nodiscard]] static Ticket ready(R result) {
    Ticket t;
    t.state_ = State::kReady;
    t.result_ = std::move(result);
    return t;
  }

  // Pending submission bound to `slot` of `source`, completed through
  // `ops` with the submitting context `ctx`.
  Ticket(const TicketSource<R>* ops, void* source, void* slot,
         void* ctx) noexcept
      : ops_(ops), source_(source), slot_(slot), ctx_(ctx),
        state_(State::kPending) {}

  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;

  Ticket(Ticket&& other) noexcept { steal(other); }
  Ticket& operator=(Ticket&& other) noexcept {
    if (this != &other) {
      settle();
      steal(other);
    }
    return *this;
  }

  // A dropped ticket waits out its operation (helping, so this cannot
  // deadlock solo) and discards the result: slots never leak, results
  // are simply lost — use submit_detached() for intentional
  // fire-and-forget.
  ~Ticket() { settle(); }

  // Whether this handle still refers to an operation (pending or ready
  // but unconsumed).
  [[nodiscard]] bool valid() const noexcept {
    return state_ != State::kEmpty;
  }

  // Non-consuming completion check: true once the result is available
  // via try_result()/wait(). Pending slots are consumed into the
  // ticket's inline storage on the first successful poll.
  [[nodiscard]] bool poll() {
    if (state_ == State::kPending &&
        ops_->poll(source_, slot_, ctx_, &result_)) {
      state_ = State::kReady;
    }
    return state_ == State::kReady;
  }

  // Consumes and returns the result if complete, std::nullopt
  // otherwise (the ticket stays valid and can be polled again).
  [[nodiscard]] std::optional<R> try_result() {
    if (!poll()) return std::nullopt;
    state_ = State::kEmpty;
    return std::move(result_);
  }

  // Blocks (helping the source) until complete, consumes the result.
  [[nodiscard]] R wait() {
    SCM_CHECK_MSG(valid(), "Ticket::wait on an empty/consumed ticket");
    if (state_ == State::kPending) {
      ops_->wait(source_, slot_, ctx_, &result_);
    }
    state_ = State::kEmpty;
    return std::move(result_);
  }

 private:
  enum class State : std::uint8_t { kEmpty, kPending, kReady };

  void steal(Ticket& other) noexcept {
    ops_ = other.ops_;
    source_ = other.source_;
    slot_ = other.slot_;
    ctx_ = other.ctx_;
    state_ = other.state_;
    result_ = std::move(other.result_);
    other.state_ = State::kEmpty;
  }

  void settle() {
    if (state_ == State::kPending) {
      ops_->wait(source_, slot_, ctx_, &result_);
    }
    state_ = State::kEmpty;
  }

  const TicketSource<R>* ops_ = nullptr;
  void* source_ = nullptr;
  void* slot_ = nullptr;
  void* ctx_ = nullptr;
  State state_ = State::kEmpty;
  R result_{};
};

}  // namespace scm
