// The publication-slot state machine shared by every combining path.
//
// Two executors speak this protocol today: the in-process
// flat-combining wrapper (core/combining.hpp), whose slots live at
// virtual addresses inside one process, and the cross-process
// ShmCombining (shm/shm_combining.hpp), whose slots live at offsets
// inside a shared-memory segment. The states and transitions are
// defined ONCE here so the two cannot drift — shm_test static_asserts
// that both compile against this same enum.
//
// Lifecycle of one publication record:
//
//   kFree ──CAS──▶ kClaimed ──release──▶ kPending ──release──▶ kDone
//     ▲   (publisher owns     (request visible      (result visible
//     │    the record)         to combiners)         to the publisher)
//     └──────────────────────── release ◀────────────────────────┘
//                       (publisher collects, record recycles)
//
// kClaimed exists so a colliding publisher can never observe a
// half-written request: a combiner only reads slots it sees as
// kPending, and the kPending store releases the plain request/init
// writes before it. The same fence discipline makes the protocol
// correct across processes — std::atomic on a lock-free 32/64-bit word
// is address-free, so acquire/release pairs work between mappings of
// the same physical page at different virtual addresses.
//
// Detached completion (OpCompletion below) rides alongside: kAttached
// slots are handed back to a waiting publisher in kDone; kDetached
// slots have no collector, so the executor retires them straight back
// to kFree after running the completion callback.
#pragma once

#include <cstdint>

namespace scm {

// Protocol revision: bumped whenever a state is added/renumbered or a
// transition changes meaning. Cross-process consumers fold it into
// their segment type tags so two binaries speaking different protocol
// revisions fail fast at attach time instead of corrupting slots.
inline constexpr std::uint32_t kSlotProtocolVersion = 1;

// ---- seeded protocol mutation (kill-the-mutant gate) ---------------
//
// Compiling with -DSCM_MUTATE_SLOT_PROTOCOL plants ONE deliberate
// protocol bug: the ownership stamp is dropped on claim, so a record
// claimed by a process that then dies carries owner 0 and the reclaim
// sweep — which must skip unowned records — can never free it. This
// exists to prove the verification layer has teeth: the
// slot_mutation_catch CTest entry compiles the explorer suite with the
// flag and EXPECTS it to fail (WILL_FAIL). Never define the flag in a
// shipping build; the constant below keeps the mutation a plain `if`
// in protocol code instead of scattered #ifdefs.
#if defined(SCM_MUTATE_SLOT_PROTOCOL)
inline constexpr bool kMutateDropOwnerStamp = true;
#else
inline constexpr bool kMutateDropOwnerStamp = false;
#endif

enum class SlotState : std::uint32_t {
  kFree = 0,     // recyclable; the only state a claim CAS fires from
  kClaimed = 1,  // a publisher owns the record and is writing into it
  kPending = 2,  // request visible; exactly one combiner will serve it
  kDone = 3,     // result visible; the publisher collects and recycles
};

// Completion state of a batch slot, set by whoever assembled the
// batch and consumed by whoever retires it (the combiner's writeback
// pass). kAttached — the default, and the only state the blocking
// paths ever see — means a publisher is (or will be) waiting to
// collect the result, so the slot must be handed back. kDetached means
// the publisher has already returned without a handle
// (Combining::submit_detached): no one will ever collect, so the
// executor retires the slot itself — runs the completion callback and
// recycles the publication record directly.
enum class OpCompletion : std::uint8_t { kAttached, kDetached };

// ---- owner-tagged slot words ---------------------------------------
//
// The cross-process protocol adds a failure domain the in-process one
// lacks: a publisher can die (SIGKILL) between claim and collect, and
// nothing in its address space survives to recycle the record. The shm
// slots therefore pack {state, owner pid} into ONE atomic 64-bit word
// — state in the low half, pid in the high half — so the claim CAS and
// the ownership stamp are a single indivisible step: a reclaim sweep
// can never observe a claimed record whose owner field still belongs
// to a previous (possibly dead) occupant. The in-process wrapper keeps
// a bare SlotState word; same states, same transitions.

[[nodiscard]] constexpr std::uint64_t pack_slot(SlotState state,
                                                std::uint32_t owner) noexcept {
  return static_cast<std::uint64_t>(state) |
         (static_cast<std::uint64_t>(owner) << 32);
}

[[nodiscard]] constexpr SlotState slot_state_of(std::uint64_t word) noexcept {
  return static_cast<SlotState>(word & 0xffffffffull);
}

[[nodiscard]] constexpr std::uint32_t slot_owner_of(
    std::uint64_t word) noexcept {
  return static_cast<std::uint32_t>(word >> 32);
}

static_assert(slot_state_of(pack_slot(SlotState::kPending, 0x1234)) ==
              SlotState::kPending);
static_assert(slot_owner_of(pack_slot(SlotState::kPending, 0x1234)) == 0x1234);
static_assert(pack_slot(SlotState::kFree, 0) == 0,
              "zero-initialized slot words must read as free/unowned");

}  // namespace scm
