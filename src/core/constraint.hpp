// Constraint functions M : 2^T → 2^H (Section 5).
//
// A constraint function restricts the allowed interpretations of a set
// of switch tokens as histories. The checker works over the finite set
// of duplicate-free request sequences drawn from a trace's invoked
// requests (the "universe"), which suffices: every history a valid
// interpretation can assign mentions only invoked requests
// (Definition 1, Validity).
#pragma once

#include <span>
#include <vector>

#include "support/assert.hpp"
#include "history/history.hpp"
#include "history/request.hpp"

namespace scm {

// All duplicate-free non-empty sequences over subsets of `universe`.
// Exponential by nature; callers keep universes small (bounded model
// checking). Hard-capped to prevent accidental blowups.
std::vector<History> enumerate_histories(std::span<const Request> universe,
                                         std::size_t max_universe = 7);

class ConstraintFunction {
 public:
  virtual ~ConstraintFunction() = default;

  // Membership test: h ∈ M(tokens)?
  [[nodiscard]] virtual bool contains(std::span<const SwitchToken> tokens,
                                      const History& h) const = 0;

  // M(tokens) restricted to histories over `universe`.
  [[nodiscard]] virtual std::vector<History> candidates(
      std::span<const SwitchToken> tokens,
      std::span<const Request> universe) const;
};

// The TAS constraint function of Definition 3, over switch values
// V = {W, L}:
//  * if some token carries W, M(S) holds the histories whose head is
//    one of the W-aborted requests and that contain every token
//    request — "the object may have been won by one of the processes
//    that aborted with W";
//  * otherwise M(S) holds the non-empty histories headed by a request
//    *outside* S that contain every token request — "somebody else won".
class TasConstraint final : public ConstraintFunction {
 public:
  // Switch values for the speculative TAS (Definition 3).
  static constexpr SwitchValue kW = 0;  // object possibly still unwon
  static constexpr SwitchValue kL = 1;  // caller has lost for sure

  [[nodiscard]] bool contains(std::span<const SwitchToken> tokens,
                              const History& h) const override;
};

}  // namespace scm
