// Executable oracle for Definition 1 (Abstract, [20]): checks that an
// Abstract-level trace — commits/aborts/inits carrying histories —
// satisfies the Abstract properties. Used by tests on every recorded
// execution of the composable universal construction, and by the
// Definition-2 interpretation validator on interpreted traces φτ.
#pragma once

#include <set>
#include <string>

#include "core/trace.hpp"

namespace scm {

struct CheckResult {
  bool ok = true;
  std::string error;

  static CheckResult pass() { return {}; }
  static CheckResult fail(std::string why) { return {false, std::move(why)}; }
  explicit operator bool() const noexcept { return ok; }
};

struct AbstractCheckOptions {
  // Processes known to have crashed: Termination is not required of
  // their pending requests.
  std::set<ProcessId> crashed;

  // Definition 1 Validity demands that every request in a commit/abort
  // history "was invoked by some process before the current operation
  // returns". For commit histories we enforce exactly that. For abort
  // histories, the constructions of Lemma 4 place *all* aborting and
  // committing requests of the trace into the single shared abort
  // history, including requests invoked after earlier aborts returned;
  // we therefore enforce the weaker (and evidently intended) condition
  // that abort-history members are invoked somewhere in the trace.
  // Setting strict_abort_validity = true restores the literal reading.
  bool strict_abort_validity = false;
};

// Checks properties 2-6 of Definition 1 plus response bookkeeping for
// Termination (each non-crashed invoked request gets exactly one
// commit/abort, whose history contains it).
CheckResult check_abstract_trace(const Trace& trace,
                                 const AbstractCheckOptions& options = {});

}  // namespace scm
