// Deterministic pseudo-random number generation for schedules and
// workloads. We avoid std::mt19937 in hot paths: xoshiro256** is
// faster, has better statistical quality, and its state is trivially
// seedable from a single 64-bit value via SplitMix64, which keeps every
// test and benchmark reproducible from one printed seed.
#pragma once

#include <cstdint>
#include <limits>

namespace scm {

// SplitMix64: used only to expand seeds.
constexpr std::uint64_t split_mix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = split_mix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Lemire-style rejection-free enough
  // for scheduling purposes; bias is < 2^-32 for bound < 2^32.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    return bound == 0 ? 0 : (*this)() % bound;
  }

  // Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace scm
