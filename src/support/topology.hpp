// CPU topology from sysfs, for domain-aware placement.
//
// The paper's composition costs are cache-coherence costs, and
// coherence is not flat: two threads sharing an L3 slice exchange a
// line in tens of nanoseconds, two threads on different packages pay a
// cross-socket round trip several times that. The sharding and
// combining layers can exploit the difference — route operations so
// that threads of one domain hit one shard (ByDomain in
// core/sharding.hpp) and pin workers so domains fill compactly or
// interleave (workload::set_pin_workers) — but only if somebody tells
// them where the domain boundaries are. This header does exactly that,
// once, from /sys/devices/system/cpu:
//
//   cpu<N>/cache/index3/shared_cpu_list   — L3 sharing domains (best
//                                           granularity: the last
//                                           level before DRAM)
//   cpu<N>/topology/package_id            — fallback when index3 is
//                                           absent (VMs, old kernels)
//   /sys/devices/system/node/node<K>/cpulist — NUMA node per domain,
//                                           recorded for reporting
//
// Degradation is graceful and total: any unreadable file collapses to
// "one domain holding every CPU", which makes every domain-aware
// policy coincide with its domain-oblivious counterpart — correct
// everywhere, informative where sysfs exists. detect() takes the
// sysfs root as a parameter so tests fabricate miniature machines in a
// temp directory; system() caches one detection per process.
#pragma once

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

namespace scm {

// Parses the kernel's cpulist format: comma-separated decimal ranges,
// e.g. "0-3,8,10-11". Malformed chunks are skipped rather than fatal —
// a topology misread must degrade, never crash a benchmark.
inline std::vector<int> parse_cpu_list(const std::string& text) {
  std::vector<int> cpus;
  std::stringstream ss(text);
  std::string chunk;
  while (std::getline(ss, chunk, ',')) {
    const auto dash = chunk.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(chunk));
      } else {
        const int lo = std::stoi(chunk.substr(0, dash));
        const int hi = std::stoi(chunk.substr(dash + 1));
        for (int c = lo; c <= hi; ++c) cpus.push_back(c);
      }
    } catch (...) {
      // skip malformed chunk
    }
  }
  return cpus;
}

struct CpuTopology {
  struct Domain {
    std::vector<int> cpus;
    int numa_node = -1;  // -1: unknown / no NUMA information
  };

  std::vector<Domain> domains;

  [[nodiscard]] int domain_count() const noexcept {
    return static_cast<int>(domains.size());
  }

  // Domain index of a CPU; 0 (the always-present first domain) for
  // CPUs the detection never saw — the single-domain degradation.
  [[nodiscard]] int domain_of(int cpu) const noexcept {
    for (std::size_t d = 0; d < domains.size(); ++d) {
      const auto& cs = domains[d].cpus;
      if (std::find(cs.begin(), cs.end(), cpu) != cs.end()) {
        return static_cast<int>(d);
      }
    }
    return 0;
  }

  // One detection pass against `sysfs_root` (default the real /sys).
  static CpuTopology detect(const std::string& sysfs_root = "/sys") {
    CpuTopology topo;
    const std::string cpu_root = sysfs_root + "/devices/system/cpu";

    std::vector<int> online = parse_cpu_list(read_file(cpu_root + "/online"));
    if (online.empty()) {
      const int n = static_cast<int>(
          std::max(1u, std::thread::hardware_concurrency()));
      for (int c = 0; c < n; ++c) online.push_back(c);
    }

    // Group CPUs by L3 sharing set; fall back to package id, then to
    // one catch-all domain. The grouping key is the raw file text —
    // two CPUs share a domain exactly when the kernel reports the
    // same sharing set.
    std::vector<std::string> keys;
    for (const int cpu : online) {
      const std::string base = cpu_root + "/cpu" + std::to_string(cpu);
      std::string key = read_file(base + "/cache/index3/shared_cpu_list");
      if (key.empty()) {
        const std::string pkg = read_file(base + "/topology/package_id");
        key = pkg.empty() ? std::string("all") : "pkg:" + pkg;
      }
      const auto it = std::find(keys.begin(), keys.end(), key);
      std::size_t idx;
      if (it == keys.end()) {
        keys.push_back(key);
        topo.domains.emplace_back();
        idx = topo.domains.size() - 1;
      } else {
        idx = static_cast<std::size_t>(it - keys.begin());
      }
      topo.domains[idx].cpus.push_back(cpu);
    }

    // NUMA annotation (reporting only): the node whose cpulist holds
    // the domain's first CPU.
    const std::string node_root = sysfs_root + "/devices/system/node";
    for (int node = 0; node < 1024; ++node) {
      const std::string list =
          read_file(node_root + "/node" + std::to_string(node) + "/cpulist");
      if (list.empty()) break;
      for (const int cpu : parse_cpu_list(list)) {
        for (auto& d : topo.domains) {
          if (d.numa_node < 0 && !d.cpus.empty() && d.cpus.front() == cpu) {
            d.numa_node = node;
          }
        }
      }
    }
    return topo;
  }

  // The process-wide topology, detected once on first use.
  static const CpuTopology& system() {
    static const CpuTopology topo = detect();
    return topo;
  }

 private:
  static std::string read_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) return {};
    std::string line;
    std::getline(in, line);
    // Trim trailing whitespace so identical sharing sets compare equal
    // regardless of the kernel's newline habits.
    while (!line.empty() &&
           (line.back() == '\n' || line.back() == '\r' ||
            line.back() == ' ')) {
      line.pop_back();
    }
    return line;
  }
};

// The calling thread's current CPU, -1 where the platform cannot say.
inline int current_cpu() noexcept {
#if defined(__linux__)
  return ::sched_getcpu();
#else
  return -1;
#endif
}

// The calling thread's current topology domain. Cached per thread and
// refreshed every 256 calls: pinned workers never migrate (the cache
// is exact), unpinned ones drift rarely enough that a slightly stale
// domain only costs routing quality, never correctness.
inline int current_domain() noexcept {
  thread_local int cached = -1;
  thread_local int age = 0;
  if (cached < 0 || ++age >= 256) {
    age = 0;
    const int cpu = current_cpu();
    cached = cpu >= 0 ? CpuTopology::system().domain_of(cpu) : 0;
  }
  return cached;
}

}  // namespace scm
