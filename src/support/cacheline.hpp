// Cache-line utilities: padding wrappers used to keep independently
// written shared variables on distinct cache lines (false-sharing
// avoidance, Core Guidelines CP.200-adjacent practice for HPC code).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace scm {

// Destructive interference size; hardcoded fallback because libstdc++
// only exposes std::hardware_destructive_interference_size behind a
// warning-prone macro on some targets.
inline constexpr std::size_t kCacheLineSize = 64;

// A value of type T padded out to occupy at least one full cache line,
// aligned on a cache-line boundary. Used for elements of shared arrays
// where distinct processes write distinct slots.
template <class T>
struct alignas(kCacheLineSize) Padded {
  static_assert(!std::is_reference_v<T>);

  T value{};

  Padded() = default;
  explicit Padded(T v) : value(std::move(v)) {}

  // In-place construction, for immovable payloads (atomics, registers,
  // pipelines of registers): the wrapped value is built directly from
  // the forwarded constructor arguments, no move required.
  template <class... Args>
  explicit Padded(std::in_place_t, Args&&... args)
      : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }

 private:
  // Guarantee the footprint even when alignof(T) would already suffice.
  char padding_[(sizeof(T) % kCacheLineSize) == 0
                    ? 1
                    : kCacheLineSize - (sizeof(T) % kCacheLineSize)]{};
};

}  // namespace scm
