// Small statistics accumulators used by the benchmark harness: running
// mean/min/max plus exact percentiles over retained samples.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace scm {

// The fixed aggregate reported per metric in benchmark results.
struct Summary {
  double min = 0.0;
  double median = 0.0;
  double p99 = 0.0;
  double mean = 0.0;
};

// Accumulates scalar samples; retains them for percentile queries.
class Samples {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double min() const {
    return samples_.empty() ? 0.0
                            : *std::min_element(samples_.begin(), samples_.end());
  }

  [[nodiscard]] double max() const {
    return samples_.empty() ? 0.0
                            : *std::max_element(samples_.begin(), samples_.end());
  }

  [[nodiscard]] double stddev() const {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double s : samples_) acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
  }

  // Linearly interpolated percentile over the retained samples
  // (NumPy's default "linear" method): q in [0, 100] maps to the
  // fractional rank q/100 * (n-1), and the result interpolates between
  // the two enclosing order statistics. Consequences the tests pin:
  // p0 == min, p100 == max, a single sample answers every quantile,
  // and two samples give the midpoint at p50 — NOT nearest-rank, whose
  // jumps would make p99 of a 3-rep benchmark equal its max.
  [[nodiscard]] double percentile(double q) {
    if (samples_.empty()) return 0.0;
    sort_once();
    const double rank = q / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  [[nodiscard]] double median() { return percentile(50.0); }

  [[nodiscard]] Summary summary() {
    return Summary{min(), median(), percentile(99.0), mean()};
  }

  void clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void sort_once() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace scm
