// Fixed-width ASCII table printer. Every bench binary prints its
// claim-validation results through this so that `bench_output.txt`
// reads like the tables in EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace scm {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    widths_.reserve(headers_.size());
    for (const auto& h : headers_) widths_.push_back(h.size());
  }

  // Append one row; cells are converted with operator<<.
  template <class... Cells>
  void row(const Cells&... cells) {
    std::vector<std::string> r;
    r.reserve(sizeof...(cells));
    (r.push_back(to_cell(cells)), ...);
    for (std::size_t i = 0; i < r.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], r[i].size());
    }
    rows_.push_back(std::move(r));
  }

  void print(std::ostream& os = std::cout, const std::string& title = "") const {
    if (!title.empty()) os << "== " << title << " ==\n";
    print_rule(os);
    print_row(os, headers_);
    print_rule(os);
    for (const auto& r : rows_) print_row(os, r);
    print_rule(os);
  }

 private:
  template <class T>
  static std::string to_cell(const T& v) {
    std::ostringstream oss;
    if constexpr (std::is_floating_point_v<T>) {
      oss << std::fixed << std::setprecision(2) << v;
    } else {
      oss << v;
    }
    return oss.str();
  }

  void print_rule(std::ostream& os) const {
    os << '+';
    for (std::size_t w : widths_) os << std::string(w + 2, '-') << '+';
    os << '\n';
  }

  void print_row(std::ostream& os, const std::vector<std::string>& r) const {
    os << '|';
    for (std::size_t i = 0; i < widths_.size(); ++i) {
      const std::string& cell = i < r.size() ? r[i] : std::string{};
      os << ' ' << cell << std::string(widths_[i] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  }

  std::vector<std::string> headers_;
  std::vector<std::size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace scm
