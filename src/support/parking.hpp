// The third rung of every wait loop: futex parking.
//
// The spin → pause → yield ladder (support/backoff.hpp) keeps short
// and medium waits cheap, but once it saturates the waiter still burns
// a timeslice per yield — which is exactly where oversubscribed runs
// (threads > cores, the CI regime) and cross-process waits on a
// descheduled server lose their CPU time. WaitPoint adds the classic
// CAS-fast-path + sys_futex-slow-path pattern on top:
//
//   rung 1  spin/pause   — backoff ladder, unchanged
//   rung 2  yield        — ladder saturated, hand over the timeslice
//   rung 3  park         — FUTEX_WAIT on a 32-bit word; the kernel
//                          runs someone useful until a waker calls
//                          FUTEX_WAKE
//
// The word is an eventcount: bit 0 is the waiters-present flag, bits
// 1..31 a wake epoch. Waiters announce themselves with prepare() (one
// fetch_or), re-check their predicate, then park against the observed
// word — if a wake bumped the epoch in between, FUTEX_WAIT returns
// immediately (EAGAIN), so the announce/re-check/park sequence can
// never lose a wakeup. Wakers call wake_all(): a single relaxed load
// when nobody ever parked — NO atomic RMW, NO syscall, which is what
// keeps the uncontended fast paths of the combining wrappers
// syscall-free (proven by the futex_syscalls == 0 telemetry assert in
// compose.async) — and one epoch-bumping CAS + FUTEX_WAKE otherwise.
//
// The announce/check handshake is a Dekker pattern (waiter: store
// flag, load predicate; waker: store predicate, load flag), so both
// sides need a full barrier between their store and load: the waiter's
// seq_cst fetch_or provides one, and wake_all() issues an explicit
// seq_cst fence before its flag load. That fence is the entire waker-
// side cost on the no-waiter path.
//
// Scope: FutexScope::kPrivate uses FUTEX_*_PRIVATE (cheaper, skips the
// kernel's shared-mapping lookup); FutexScope::kShared omits the
// private flag so the wait queue keys on the PHYSICAL page — required
// for words living in a ShmArena segment, where each process maps the
// word at a different virtual address. WaitPoint is standard-layout,
// trivially destructible, and pointer-free, so a kShared instance is
// address-free and may live directly in a segment (the telemetry
// counters then aggregate across every participating process).
//
// Portability: on non-Linux targets — or when SCM_FORCE_NO_FUTEX is
// defined, the testing seam mirroring SCM_FORCE_GENERIC_CPU_PAUSE —
// WaitMode::kYield replaces the syscall with one yield per park():
// exactly the ladder behavior this subsystem replaces, so correctness
// never depends on the kernel primitive. parking_test compiles both
// modes in one translation unit via the kMode template parameter.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>

#include "support/backoff.hpp"

#if defined(__linux__) && !defined(SCM_FORCE_NO_FUTEX)
#define SCM_HAS_FUTEX 1
#else
#define SCM_HAS_FUTEX 0
#endif

#if SCM_HAS_FUTEX
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace scm {

// How a saturated wait loop gives up the CPU: kFutex parks in the
// kernel, kYield stays on the historical yield ladder. The default
// follows the platform; tests instantiate both explicitly.
enum class WaitMode : std::uint8_t { kYield, kFutex };

inline constexpr WaitMode kDefaultWaitMode =
    SCM_HAS_FUTEX ? WaitMode::kFutex : WaitMode::kYield;

// Human-readable mode name, recorded in scm-bench/v1 params so an
// artifact says which slow path its numbers were measured with.
inline constexpr const char* wait_mode_name(WaitMode mode) noexcept {
  return mode == WaitMode::kFutex ? "futex" : "yield";
}

// Whether the futex wait queue keys on the virtual address (private to
// one process) or the physical page (shared across mappings).
enum class FutexScope : std::uint8_t { kPrivate, kShared };

// Park/wake telemetry snapshot. parks counts every descent into rung
// 3; wakes counts wake_all() calls that found a waiter flag set;
// spurious_wakes counts parks that returned with the predicate still
// false (EAGAIN races, unrelated epoch bumps, yield-mode re-checks);
// futex_syscalls counts actual kernel entries — zero on any path that
// never saw a parked waiter; fast_wakes counts waits that completed
// WITHOUT parking (rungs 1-2 sufficed), the denominator that turns
// raw park counts into a contention ratio.
struct ParkStats {
  std::uint64_t parks = 0;
  std::uint64_t wakes = 0;
  std::uint64_t spurious_wakes = 0;
  std::uint64_t futex_syscalls = 0;
  std::uint64_t fast_wakes = 0;

  // Fraction of waits that escalated to rung 3: parks out of all
  // completed waits (parked + fast). The contention signal the
  // ContentionMonitor and humans both read. Zero-safe: no waits yet
  // means no evidence of contention, so 0.0 — never NaN.
  [[nodiscard]] double park_ratio() const noexcept {
    const double total =
        static_cast<double>(parks) + static_cast<double>(fast_wakes);
    return total == 0.0 ? 0.0 : static_cast<double>(parks) / total;
  }
};

namespace detail {

#if SCM_HAS_FUTEX
// Raw futex entry. The word is passed as the atomic's storage address:
// std::atomic<uint32_t> is layout-compatible with its value type on
// every platform where it is lock-free (static_asserted below).
inline long futex_call(const std::atomic<std::uint32_t>* word, int op,
                       std::uint32_t val) noexcept {
  return ::syscall(SYS_futex, word, op, val, nullptr, nullptr, 0);
}
#endif

}  // namespace detail

// Yield rungs to climb after the backoff ladder saturates before the
// first park: parks cost two syscalls round-trip plus a likely context
// switch, so waits just past the ladder (a combiner mid-pass) stay in
// user space a little longer. This is the boot-time default; each
// WaitPoint carries a runtime-tunable copy (set_yields_before_park)
// so the adaptive layer can re-rung individual wait sites.
inline constexpr int kYieldsBeforePark = 4;

template <FutexScope kScope = FutexScope::kPrivate,
          WaitMode kMode = kDefaultWaitMode>
class WaitPoint {
  // The kernel compares exactly 4 naturally-aligned bytes; anything
  // else is EINVAL at best and a silent miscompare at worst.
  static_assert(sizeof(std::atomic<std::uint32_t>) == 4 &&
                    alignof(std::atomic<std::uint32_t>) == 4,
                "futex words must be 32-bit, 4-byte-aligned atomics");

 public:
  WaitPoint() = default;
  WaitPoint(const WaitPoint&) = delete;
  WaitPoint& operator=(const WaitPoint&) = delete;

  // Announce intent to park: set the waiters-present flag and return
  // the word to park against. The caller MUST re-check its predicate
  // between prepare() and park() — that re-check, ordered after the
  // seq_cst RMW, is one half of the Dekker handshake with wake_all().
  std::uint32_t prepare() noexcept {
    return word_.fetch_or(1u, std::memory_order_seq_cst) | 1u;
  }

  // Rung 3: sleep until the word moves off `observed` (a waker bumped
  // the epoch) or a spurious kernel wakeup. Callers re-check their
  // predicate afterwards, as with any condition-variable wait.
  void park(std::uint32_t observed) noexcept {
    parks_.fetch_add(1, std::memory_order_relaxed);
    if constexpr (kMode == WaitMode::kFutex) {
#if SCM_HAS_FUTEX
      futex_syscalls_.fetch_add(1, std::memory_order_relaxed);
      constexpr int op =
          kScope == FutexScope::kShared ? FUTEX_WAIT : FUTEX_WAIT_PRIVATE;
      (void)detail::futex_call(&word_, op, observed);
#else
      (void)observed;
      std::this_thread::yield();
#endif
    } else {
      // Portable fallback: the pre-park ladder already saturated, so
      // one yield per park IS the historical long-wait behavior.
      (void)observed;
      std::this_thread::yield();
    }
  }

  // Wake every parked waiter. The no-waiter path — every uncontended
  // fast-path op lands here — is one fence + one relaxed load: no RMW,
  // no syscall, nothing for other cores to contend on.
  void wake_all() noexcept {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::uint32_t w = word_.load(std::memory_order_relaxed);
    while ((w & 1u) != 0) {
      // Clear the flag and bump the epoch in one step; a concurrent
      // prepare() re-sets the flag and its caller re-checks, so the
      // flag can flicker but a waiter is never stranded.
      if (word_.compare_exchange_weak(w, (w + 2u) & ~1u,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
        wakes_.fetch_add(1, std::memory_order_relaxed);
        if constexpr (kMode == WaitMode::kFutex) {
#if SCM_HAS_FUTEX
          futex_syscalls_.fetch_add(1, std::memory_order_relaxed);
          constexpr int op =
              kScope == FutexScope::kShared ? FUTEX_WAKE : FUTEX_WAKE_PRIVATE;
          (void)detail::futex_call(&word_, op,
                                   std::numeric_limits<std::int32_t>::max());
#endif
        }
        return;
      }
    }
  }

  // Telemetry hook for the wait loop: the predicate was still false
  // after a park returned.
  void note_spurious() noexcept {
    spurious_wakes_.fetch_add(1, std::memory_order_relaxed);
  }

  // Telemetry hook for the wait loop: a wait completed without ever
  // parking — rungs 1-2 were enough. Together with parks this gives
  // ParkStats::park_ratio() its denominator.
  void note_fast_wake() noexcept {
    fast_wakes_.fetch_add(1, std::memory_order_relaxed);
  }

  // Runtime wait-rung knob: how many yield rungs a waiter climbs after
  // the backoff ladder saturates before its first park. Lowering it
  // under sustained contention parks waiters sooner (handing the
  // timeslice to the combiner); raising it keeps short waits in user
  // space. Relaxed on both sides — the knob is a hint, not a fence.
  void set_yields_before_park(int n) noexcept {
    yields_before_park_.store(n < 0 ? 0 : n, std::memory_order_relaxed);
  }
  [[nodiscard]] int yields_before_park() const noexcept {
    return yields_before_park_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] ParkStats stats() const noexcept {
    ParkStats s;
    s.parks = parks_.load(std::memory_order_relaxed);
    s.wakes = wakes_.load(std::memory_order_relaxed);
    s.spurious_wakes = spurious_wakes_.load(std::memory_order_relaxed);
    s.futex_syscalls = futex_syscalls_.load(std::memory_order_relaxed);
    s.fast_wakes = fast_wakes_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  alignas(4) std::atomic<std::uint32_t> word_{0};
  std::atomic<std::uint64_t> parks_{0};
  std::atomic<std::uint64_t> wakes_{0};
  std::atomic<std::uint64_t> spurious_wakes_{0};
  std::atomic<std::uint64_t> futex_syscalls_{0};
  std::atomic<std::uint64_t> fast_wakes_{0};
  std::atomic<std::int32_t> yields_before_park_{kYieldsBeforePark};
};

// The native three-rung wait loop shared by every blocking site
// without a simulator seam (wait_until() routes native contexts here;
// ShmSpinBarrier calls it directly). Same caller contract as
// wait_until: pure predicate, and returning only means the predicate
// HELD at some instant — re-validate with a real RMW afterwards.
// The park threshold is read once at entry: a concurrent retune
// applies to the NEXT wait, never mid-climb.
template <class WP, class Pred>
void parked_wait(WP& wp, const Pred& pred) {
  int spins = 0;
  int saturated = 0;
  const int yields_before_park = wp.yields_before_park();
  bool parked = false;
  for (;;) {
    if (pred()) break;
    if (!spin_backoff(spins)) continue;
    if (++saturated < yields_before_park) continue;
    const std::uint32_t token = wp.prepare();
    if (pred()) break;
    wp.park(token);
    parked = true;
    if (pred()) break;
    wp.note_spurious();
  }
  if (!parked) wp.note_fast_wake();
}

}  // namespace scm
