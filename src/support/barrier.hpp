// Reusable spin barrier shared by the native workload driver, the
// benchmark scenarios, and the examples — replaces the hand-rolled
// ready/go spin loops that used to be duplicated at every call site.
//
// Spinning (rather than futex-parking) is deliberate: the barrier
// aligns threads immediately before a measured region, and a kernel
// wakeup on one side would skew the first samples.
#pragma once

#include <atomic>
#include <cstdint>

namespace scm {

class SpinBarrier {
 public:
  explicit SpinBarrier(int parties) noexcept : parties_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  // How many parties of the current generation have arrived. Lets a
  // coordinator thread spin until everyone else is parked at the
  // barrier, act (e.g. timestamp), and only then arrive itself.
  [[nodiscard]] int arrived() const noexcept {
    return arrived_.load(std::memory_order_acquire);
  }

  // Blocks (spinning) until `parties` threads have arrived; reusable
  // across generations.
  void arrive_and_wait() noexcept {
    const std::uint32_t generation =
        generation_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_acq_rel);
      return;
    }
    while (generation_.load(std::memory_order_acquire) == generation) {
    }
  }

 private:
  const int parties_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint32_t> generation_{0};
};

}  // namespace scm
