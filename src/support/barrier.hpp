// Reusable spin barrier shared by the native workload driver, the
// benchmark scenarios, and the examples — replaces the hand-rolled
// ready/go spin loops that used to be duplicated at every call site.
//
// Spinning (rather than futex-parking) is deliberate: the barrier
// aligns threads immediately before a measured region, and a kernel
// wakeup on one side would skew the first samples.
#pragma once

#include <atomic>
#include <cstdint>

namespace scm {

// The arrival count and the generation share ONE atomic word (low half
// count, high half generation). An earlier revision kept them in two
// atomics and had the last arriver reset the count with a relaxed
// store before publishing the new generation — a reuse hazard: the
// reset and the publish were separate writes, so a re-entering thread
// could interleave its increment with the not-yet-ordered reset and a
// round could release on a corrupted count. Packing both halves makes
// the last arriver's reset-and-publish a single release store, and the
// arriving fetch_add can never split across the two fields.
class SpinBarrier {
 public:
  explicit SpinBarrier(int parties) noexcept : parties_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  // How many parties of the current generation have arrived. Lets a
  // coordinator thread spin until everyone else is parked at the
  // barrier, act (e.g. timestamp), and only then arrive itself.
  [[nodiscard]] int arrived() const noexcept {
    return static_cast<int>(state_.load(std::memory_order_acquire) &
                            kCountMask);
  }

  // Blocks (spinning) until `parties` threads have arrived; reusable
  // across generations.
  void arrive_and_wait() noexcept {
    const std::uint64_t prev = state_.fetch_add(1, std::memory_order_acq_rel);
    const std::uint64_t generation = prev >> kGenerationShift;
    if ((prev & kCountMask) + 1 == static_cast<std::uint64_t>(parties_)) {
      // Last arriver: zero the count and bump the generation in one
      // release store. No other thread can touch the word in between —
      // all parties of this round have arrived, and re-entrants are
      // gated on observing the new generation published here.
      state_.store((generation + 1) << kGenerationShift,
                   std::memory_order_release);
      return;
    }
    while ((state_.load(std::memory_order_acquire) >> kGenerationShift) ==
           generation) {
    }
  }

 private:
  static constexpr int kGenerationShift = 32;
  static constexpr std::uint64_t kCountMask = 0xffffffffULL;

  const int parties_;
  std::atomic<std::uint64_t> state_{0};
};

}  // namespace scm
