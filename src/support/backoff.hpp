// Spin-wait pacing shared by every blocking wait loop in the tree: the
// in-process flat-combining wrapper (core/combining.hpp), the ticket
// wait paths, and the cross-process shm gate (shm/shm_combining.hpp).
//
// Two layers:
//   cpu_pause()    — one core-local spin hint (x86 `pause`, ARM
//                    `yield`), telling the pipeline and an SMT sibling
//                    that this is a spin-wait without giving up the
//                    timeslice;
//   spin_backoff() — the exponential spin → pause → yield ladder that
//                    keeps short waits free, medium waits polite, and
//                    long waits (oversubscribed runs, cross-process
//                    waits on a descheduled server) yielding.
//
// Portability: targets without a dedicated spin-hint instruction fall
// back to a compiler reordering barrier — the caller's re-read of the
// watched variable is the wait. Defining SCM_FORCE_GENERIC_CPU_PAUSE
// before including this header forces that fallback on any target;
// backoff_test compiles a translation unit both ways so the fallback
// path cannot rot unnoticed on x86-only CI.
#pragma once

#include <thread>

namespace scm {

inline void cpu_pause() noexcept {
#if !defined(SCM_FORCE_GENERIC_CPU_PAUSE) && \
    (defined(__x86_64__) || defined(__i386__))
  __builtin_ia32_pause();
#elif !defined(SCM_FORCE_GENERIC_CPU_PAUSE) && defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // No spin hint on this target (or the fallback is forced for
  // testing): a compiler barrier so the watched re-read is not hoisted
  // out of the caller's loop. The re-read itself is the wait.
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" ::: "memory");
#endif
#endif
}

// Spin-wait pacing: an exponential spin → pause → yield ladder. The
// first few iterations re-read bare (the watched line is cache-local
// until the writer invalidates it, so the common short wait costs
// nothing extra); medium waits insert a doubling number of pause
// hints, keeping the core polite without a syscall; long waits yield
// the timeslice every iteration, which is what makes oversubscribed
// runs (threads > cores, the CI regime) — and cross-process waits on a
// server that lost its timeslice — complete promptly. A fixed spin
// count would burn whole quanta that the thread being waited on needs.
// There is no wakeup to lose: every rung returns to the caller's
// re-read of the watched variable.
//
// Returns whether the ladder is SATURATED — this call yielded the
// timeslice rather than spinning. `spins` stops advancing at the
// saturation rung (yields do not escalate each other), so the return
// value is the only way a caller can detect "this has become a long
// wait" — the signal the parking layer (support/parking.hpp) keys its
// spin → yield → park escalation off.
inline bool spin_backoff(int& spins) noexcept {
  constexpr int kSpinRungs = 8;   // bare re-reads
  constexpr int kPauseRungs = 8;  // 1, 2, 4, ... 128 pauses
  if (spins < kSpinRungs) {
    ++spins;
    return false;
  }
  if (spins < kSpinRungs + kPauseRungs) {
    const int reps = 1 << (spins - kSpinRungs);
    for (int i = 0; i < reps; ++i) cpu_pause();
    ++spins;
    return false;
  }
  std::this_thread::yield();  // saturated: hand over the timeslice
  return true;
}

}  // namespace scm
