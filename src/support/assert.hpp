// Lightweight checked assertions that stay on in release builds.
// Model-level invariants (e.g. "at most one TAS winner") are cheap to
// check and catastrophic to miss, so we do not compile them out.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace scm::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "SCM_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg == nullptr ? "" : msg);
  std::abort();
}

}  // namespace scm::detail

#define SCM_CHECK(expr)                                                \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::scm::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);  \
    }                                                                  \
  } while (false)

#define SCM_CHECK_MSG(expr, msg)                                    \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::scm::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                \
  } while (false)
