// The one-shot speculative test-and-set (Figure 1 / Algorithm 2,
// lines 9-15): A1 composed with A2.
//
// A process first runs the obstruction-free module; if it aborts
// (because of step contention), the switch value initializes the
// wait-free hardware module. The result is a wait-free linearizable
// one-shot TAS (Lemma 7) that
//   * touches only registers — constant count — when uncontended,
//   * uses objects of consensus number at most 2 (checked statically),
//   * performs at most one RMW per operation.
#pragma once

#include <optional>

#include "core/module.hpp"
#include "core/pipeline.hpp"
#include "history/specs.hpp"
#include "tas/a1_module.hpp"
#include "tas/a2_module.hpp"

namespace scm {

// Which module served an operation — Figure 1's arrows, for tests and
// benches that validate the switching behaviour.
enum class TasPath : std::uint8_t { kSpeculative, kHardware };

struct TasOutcome {
  Response value = TasSpec::kLoser;  // kWinner or kLoser
  TasPath path = TasPath::kSpeculative;

  [[nodiscard]] bool won() const noexcept { return value == TasSpec::kWinner; }
};

template <class P, bool SoloFast = false>
class SpeculativeTas {
 public:
  using A1 = ObstructionFreeTas<P, /*CheckAbortedOnEntry=*/!SoloFast>;
  using A2 = WaitFreeTas<P>;
  // The A1∘A2 chain as a pipeline. FastPipeline: the one-shot TAS is
  // the native benches' hot object (pooled by LongLivedTas), so the
  // commit path must touch nothing but the modules' own registers.
  using Chain = FastPipeline<A1&, A2&>;
  static constexpr int kConsensusNumber = Chain::kConsensusNumber;
  static_assert(kConsensusNumber <= 2,
                "the composed TAS must not require consensus (Section 6)");
  using Context = typename P::Context;

  // One-shot test-and-set; wait-free.
  template <class Ctx>
  TasOutcome test_and_set(Ctx& ctx, const Request& m) {
    const auto traced = chain_.invoke_traced(ctx, m, std::nullopt);
    SCM_CHECK_MSG(traced.result.committed(), "wait-free module aborted");
    return TasOutcome{traced.result.response, traced.stage == 0
                                                  ? TasPath::kSpeculative
                                                  : TasPath::kHardware};
  }

  // Module interface, so a SpeculativeTas composes further (Theorem 2
  // allows composing compositions; A1 can even be composed with
  // itself).
  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& m,
                      std::optional<SwitchValue> init = std::nullopt) {
    return chain_.invoke(ctx, m, init);
  }

  [[nodiscard]] A1& speculative_module() noexcept { return a1_; }
  [[nodiscard]] A2& hardware_module() noexcept { return a2_; }

  // Current logical value (diagnostics): taken if either module shows
  // it taken.
  [[nodiscard]] bool taken() const {
    return a1_.value() == 1 || a2_.value() == 1;
  }

  void unsafe_reset() {
    a1_.unsafe_reset();
    a2_.unsafe_reset();
  }

 private:
  A1 a1_;
  A2 a2_;
  Chain chain_{a1_, a2_};  // references the members above (decl order)
};

// Appendix B: solo-fast composition — a process reverts to hardware
// only when it itself encounters step contention.
template <class P>
using SoloFastTas = SpeculativeTas<P, /*SoloFast=*/true>;

}  // namespace scm
