// The long-lived resettable test-and-set (Algorithm 2).
//
// An array TAS[] of one-shot speculative objects plus a Count register.
// Participants read Count and play in round TAS[Count]; only the
// current winner may reset, which bumps Count — moving every process to
// a fresh one-shot instance and thereby reverting the object to the
// speculative module (Figure 1's back edge). Construction follows
// Afek-Gafni-Tromp-Vitányi's multi-use transformation [1].
//
// Well-formedness (as in [1]): reset() may be called only by the
// process whose preceding test_and_set won, and not concurrently with
// its own test_and_set.
//
// Memory: the paper's array is unbounded. We provide a fixed capacity
// and, optionally, recycling: with recycle=true, round slots are reused
// modulo the capacity, which is safe under the standard epoch
// assumption that no process stays asleep inside round r while the
// winner chain advances `capacity` full rounds past r. Tests use
// recycle=false; the throughput benches use a large recycled pool.
#pragma once

#include <memory>
#include <vector>

#include "support/assert.hpp"
#include "support/cacheline.hpp"
#include "tas/speculative_tas.hpp"

namespace scm {

template <class P, bool SoloFast = false>
class LongLivedTas {
 public:
  using OneShot = SpeculativeTas<P, SoloFast>;
  static constexpr int kConsensusNumber = OneShot::kConsensusNumber;
  static_assert(kConsensusNumber <= 2);
  using Context = typename P::Context;

  LongLivedTas(int num_processes, std::size_t capacity, bool recycle = false)
      : recycle_(recycle), capacity_(capacity) {
    SCM_CHECK(num_processes > 0 && capacity > 0);
    rounds_.reserve(capacity);
    for (std::size_t i = 0; i < capacity; ++i) {
      rounds_.push_back(std::make_unique<OneShot>());
    }
    winner_flag_ = std::make_unique<Padded<bool>[]>(
        static_cast<std::size_t>(num_processes));
  }

  // Algorithm 2, test-and-set()_i.
  TasOutcome test_and_set(Context& ctx, const Request& m) {
    const std::uint64_t round = count_.read(ctx);
    OneShot& tas = slot(round);
    const TasOutcome out = tas.test_and_set(ctx, m);
    if (out.won()) {
      winner_flag_[static_cast<std::size_t>(ctx.id())].value = true;
    }
    return out;
  }

  // Algorithm 2, reset()_i: only the current winner advances the round.
  void reset(Context& ctx) {
    auto& mine = winner_flag_[static_cast<std::size_t>(ctx.id())].value;
    if (!mine) return;
    const std::uint64_t round = count_.read(ctx);
    const std::uint64_t next = round + 1;
    if (recycle_) {
      // Reinitialize the slot `capacity` rounds ahead of its next use;
      // under the epoch assumption no process can still touch it.
      slot(next).unsafe_reset();
    } else {
      SCM_CHECK_MSG(next < capacity_, "LongLivedTas rounds exhausted");
    }
    count_.write(ctx, next);
    mine = false;
  }

  [[nodiscard]] std::uint64_t round() const { return count_.peek(); }

  // Counted shared-memory read of the round register (for callers that
  // poll Count as part of an algorithm, e.g. the biased lock).
  template <class Ctx>
  [[nodiscard]] std::uint64_t round_read(Ctx& ctx) const {
    return count_.read(ctx);
  }

 private:
  OneShot& slot(std::uint64_t round) {
    return *rounds_[recycle_ ? round % capacity_
                             : static_cast<std::size_t>(round)];
  }

  bool recycle_;
  std::size_t capacity_;
  std::vector<std::unique_ptr<OneShot>> rounds_;
  // crtWinner is process-local state in the paper; one padded slot per
  // process (written only by its owner).
  std::unique_ptr<Padded<bool>[]> winner_flag_;
  typename P::template Register<std::uint64_t> count_{0};  // Count
};

}  // namespace scm
