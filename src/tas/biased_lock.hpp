// A biased lock built on the long-lived speculative TAS (the paper's
// second "independent interest" claim, Section 1: "a simple efficient
// version of a biased lock [9], that uses only registers as long as a
// single process is using it, and reverts to the hardware
// implementation only under step contention, as opposed to interval
// contention for previous implementations [9, 19]").
//
// lock() wins the current TAS round (spinning across rounds if
// necessary); unlock() resets, advancing the round. While one process
// acquires and releases repeatedly with nobody interfering, every
// acquisition is an uncontended A1 pass: a handful of register
// operations and zero RMWs.
#pragma once

#include <cstdint>
#include <memory>

#include "support/cacheline.hpp"
#include "tas/long_lived_tas.hpp"

namespace scm {

template <class P, bool SoloFast = false>
class BiasedLock {
 public:
  static constexpr int kConsensusNumber =
      LongLivedTas<P, SoloFast>::kConsensusNumber;
  using Context = typename P::Context;

  BiasedLock(int num_processes, std::size_t rounds, bool recycle = true)
      : tas_(num_processes, rounds, recycle) {
    seq_ = std::make_unique<Seq[]>(static_cast<std::size_t>(num_processes));
  }

  // Acquires the lock; blocking (a lock cannot be wait-free), but each
  // round's decision is, and the uncontended path costs O(1) register
  // steps.
  void lock(Context& ctx) {
    for (;;) {
      const std::uint64_t round_before = tas_.round_read(ctx);
      if (tas_.test_and_set(ctx, next_request(ctx)).won()) return;
      // Lost this round: wait for the winner to advance it. Every poll
      // is a counted shared-memory step (and a scheduling point in the
      // simulator).
      while (tas_.round_read(ctx) == round_before) {
      }
    }
  }

  // Releases the lock. Caller must hold it (TAS well-formedness).
  void unlock(Context& ctx) { tas_.reset(ctx); }

  [[nodiscard]] std::uint64_t rounds_played() const { return tas_.round(); }

 private:
  struct alignas(kCacheLineSize) Seq {
    std::uint64_t next = 0;
  };

  Request next_request(Context& ctx) {
    auto& mine = seq_[static_cast<std::size_t>(ctx.id())];
    const std::uint64_t id =
        (static_cast<std::uint64_t>(ctx.id()) << 32) | ++mine.next;
    return Request{id, ctx.id(), TasSpec::kTestAndSet, 0};
  }

  LongLivedTas<P, SoloFast> tas_;
  std::unique_ptr<Seq[]> seq_;
};

}  // namespace scm
