// Tournament test-and-set after Afek, Gafni, Tromp and Vitányi [1] —
// the classic wait-free n-process TAS built from a binary tree of
// 2-process building blocks. The paper cites [1] both as prior art and
// as the source of the multi-use (reset) transformation of Algorithm 2.
//
// We use it as the "register-ish" baseline with Θ(log n) step
// complexity on *every* path: it shows what TAS costs without
// speculation, sitting between the speculative O(1) fast path and the
// single hardware RMW. Each internal tree node is a 2-process
// obstruction-free doorway backed by a hardware tie-breaker, so the
// whole object is wait-free and its consensus number is 2, like the
// speculative TAS.
#pragma once

#include <bit>
#include <memory>
#include <vector>

#include "support/assert.hpp"
#include "history/specs.hpp"
#include "runtime/ids.hpp"

namespace scm {

template <class P>
class TournamentTas {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberTas;
  using Context = typename P::Context;

  explicit TournamentTas(int num_processes)
      : leaves_(std::bit_ceil(static_cast<unsigned>(
            num_processes < 2 ? 2 : num_processes))) {
    SCM_CHECK(num_processes > 0);
    // Perfect binary tree stored heap-style: nodes 1..2*leaves-1.
    nodes_ = std::make_unique<Node[]>(2 * leaves_);
  }

  // Wait-free test-and-set: climb from the leaf, winning 2-process
  // matches; the process that wins the root wins the object.
  template <class Ctx>
  [[nodiscard]] Response test_and_set(Ctx& ctx) {
    std::size_t node = leaves_ + static_cast<std::size_t>(ctx.id()) % leaves_;
    int side = static_cast<int>(node & 1);
    while (node > 1) {
      node /= 2;
      if (!win_match(ctx, nodes_[node], side)) {
        return TasSpec::kLoser;
      }
      side = static_cast<int>(node & 1);
    }
    return TasSpec::kWinner;
  }

  // Steps a solo winner takes: 3 per level (diagnostic; used by the
  // baseline bench).
  [[nodiscard]] std::size_t levels() const {
    return static_cast<std::size_t>(std::bit_width(leaves_)) - 0;
  }

 private:
  // One 2-contender match: each side announces, then a hardware
  // tie-breaker decides races. The first arriver on an uncontended
  // node wins with registers only plus one RMW on the shared breaker.
  struct Node {
    typename P::template Register<bool> present[2]{};
    typename P::Tas breaker;
  };

  template <class Ctx>
  [[nodiscard]] bool win_match(Ctx& ctx, Node& node, int side) {
    node.present[side].write(ctx, true);
    if (node.present[1 - side].read(ctx)) {
      // Contended match: the hardware breaker picks exactly one winner.
      return node.breaker.test_and_set(ctx) == 0;
    }
    // Uncontended side still claims the breaker so a later rival loses.
    return node.breaker.test_and_set(ctx) == 0;
  }

  std::size_t leaves_;
  std::unique_ptr<Node[]> nodes_;
};

}  // namespace scm
