// A1 — the obstruction-free test-and-set module (Algorithm 1).
//
// Four registers; constant time and space. Each process either reaches
// a winner/loser decision in the absence of interval contention, or
// detects contention and aborts with a switch value:
//   W — the object may not have been won yet;
//   L — the caller has definitely lost.
// Lemma 6: A1 never aborts in the absence of step contention, so the
// composed TAS is obstruction-free on this module alone.
//
// The CheckAbortedOnEntry parameter selects between the base module
// (true: processes abort as soon as *anyone* flagged contention) and
// the solo-fast variant of Appendix B (false: a process reverts to
// hardware only when it *itself* encounters step contention).
#pragma once

#include <optional>

#include "core/constraint.hpp"
#include "core/module.hpp"
#include "history/specs.hpp"
#include "runtime/ids.hpp"

namespace scm {

template <class P, bool CheckAbortedOnEntry = true>
class ObstructionFreeTas {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberRegister;
  using Context = typename P::Context;

  // Algorithm 1, A1-test-and-set(val)_i. `init` carries the switch
  // value the module was entered with (composition input), if any.
  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    // Lines 4-6: somebody already aborted this instance.
    //
    // SOUNDNESS REPAIR vs the paper's pseudocode. Algorithm 1 returns
    // (abort, W) here when V = 0, i.e. the late arrival *stays in
    // contention*. That breaks the paper's own Invariant 4 ("no
    // operation that aborts with W may start after an operation commits
    // loser"): a process may commit loser through the doorway checks
    // (lines 9/11) while V is still 0 and the aborted flag is being
    // raised; a process invoked strictly afterwards would then abort W,
    // proceed to the hardware module, and possibly win — yielding a
    // winner that follows a loser in real time, which is not
    // linearizable. (Our Definition-2 checker found the counterexample;
    // see DESIGN.md §"Deviations".) Aborting with L instead is safe:
    // whenever `aborted` is set, some doorway process aborted W (or is
    // crashed/pending), so a winner candidate that invoked early enough
    // always exists, and dropping the latecomer from contention only
    // adds losers behind it.
    if constexpr (CheckAbortedOnEntry) {
      if (aborted_.read(ctx)) {
        return ModuleResult::abort_with(TasConstraint::kL);
      }
    }

    // Line 7: the object is visibly taken, or we entered as a loser.
    if (value_.read(ctx) == 1 ||
        (init.has_value() && *init == TasConstraint::kL)) {
      return ModuleResult::commit(TasSpec::kLoser);
    }

    // Lines 9-12: race through the two doorway registers.
    if (pace_.read(ctx) != kInvalidProcess) {
      return ModuleResult::commit(TasSpec::kLoser);
    }
    pace_.write(ctx, ctx.id());
    if (set_.read(ctx) != kInvalidProcess) {
      return ModuleResult::commit(TasSpec::kLoser);
    }
    set_.write(ctx, ctx.id());

    if (pace_.read(ctx) == ctx.id()) {
      // Lines 13-17: we were alone in the doorway; take the object.
      value_.write(ctx, 1);
      if (!aborted_.read(ctx)) {
        return ModuleResult::commit(TasSpec::kWinner);
      }
      return ModuleResult::abort_with(TasConstraint::kW);
    }

    // Lines 18-23: interval contention detected; flag it and bail.
    aborted_.write(ctx, true);
    if (value_.read(ctx) == 1) {
      return ModuleResult::commit(TasSpec::kLoser);
    }
    return ModuleResult::abort_with(TasConstraint::kW);
  }

  // Post-run/diagnostic accessors (not algorithm steps).
  [[nodiscard]] bool was_aborted() const { return aborted_.peek(); }
  [[nodiscard]] int value() const { return value_.peek(); }

  // Reinitializes the module outside any measured execution (used only
  // by the recycling pool; see long_lived_tas.hpp for the safety
  // assumption).
  void unsafe_reset() {
    pace_.reset(kInvalidProcess);
    set_.reset(kInvalidProcess);
    aborted_.reset(false);
    value_.reset(0);
  }

 private:
  typename P::template Register<ProcessId> pace_{kInvalidProcess};  // P
  typename P::template Register<ProcessId> set_{kInvalidProcess};   // S
  typename P::template Register<bool> aborted_{false};
  typename P::template Register<int> value_{0};  // V
};

// Appendix B: the solo-fast module — identical, minus the entry check.
template <class P>
using SoloFastTasModule = ObstructionFreeTas<P, false>;

}  // namespace scm
