// A2 — the wait-free test-and-set module (Algorithm 2, lines 16-19).
//
// Essentially a hardware test-and-set: a participant entering with
// switch value L lost already and commits loser without touching the
// hardware; everyone else performs one RMW on T and commits whatever it
// returns. Never aborts (wait-free), consensus number 2.
#pragma once

#include <optional>

#include "core/constraint.hpp"
#include "core/module.hpp"
#include "history/specs.hpp"
#include "runtime/ids.hpp"

namespace scm {

template <class P>
class WaitFreeTas {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberTas;
  using Context = typename P::Context;

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    if (init.has_value() && *init == TasConstraint::kL) {
      return ModuleResult::commit(TasSpec::kLoser);
    }
    const int prev = hardware_.test_and_set(ctx);
    return ModuleResult::commit(prev == 0 ? TasSpec::kWinner
                                          : TasSpec::kLoser);
  }

  [[nodiscard]] int value() const { return hardware_.peek(); }

  // See ObstructionFreeTas::unsafe_reset.
  void unsafe_reset() { hardware_.reset(); }

 private:
  typename P::Tas hardware_;
};

}  // namespace scm
