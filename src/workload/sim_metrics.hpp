// Simulator-side measurement helpers shared by the model-level benches:
// run a TAS/consensus workload under a given schedule and report step
// counts, abort rates and contention statistics.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/schedules.hpp"
#include "sim/sim_platform.hpp"
#include "sim/simulator.hpp"

namespace scm::workload {

struct SimMetrics {
  std::uint64_t total_steps = 0;
  std::uint64_t total_rmws = 0;
  std::uint64_t ops = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t ops_with_step_contention = 0;
  // Lemma-6 violations: aborts observed in executions where *no*
  // operation experienced step contention (the lemma's guarantee is
  // execution-level — an individual abort may be triggered by a flag
  // set by some other, contended operation).
  std::uint64_t aborts_without_step_contention = 0;

  [[nodiscard]] double steps_per_op() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(total_steps) /
                          static_cast<double>(ops);
  }
  [[nodiscard]] double abort_rate() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(aborts) / static_cast<double>(ops);
  }
  [[nodiscard]] double contention_rate() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(ops_with_step_contention) /
                          static_cast<double>(ops);
  }

  SimMetrics& operator+=(const SimMetrics& o) {
    total_steps += o.total_steps;
    total_rmws += o.total_rmws;
    ops += o.ops;
    commits += o.commits;
    aborts += o.aborts;
    ops_with_step_contention += o.ops_with_step_contention;
    aborts_without_step_contention += o.aborts_without_step_contention;
    return *this;
  }
};

// Runs one simulated execution. `make_bodies` installs the process
// bodies into the simulator; each body must wrap operations in
// begin_op/end_op with output 1 = commit, 0 = abort. Aggregates the
// operation records into SimMetrics.
inline SimMetrics run_sim(
    int processes,
    const std::function<void(sim::Simulator&)>& add_processes,
    sim::Schedule& schedule) {
  (void)processes;
  sim::Simulator s;
  add_processes(s);
  s.run(schedule);

  SimMetrics m;
  m.total_steps = s.steps_taken();
  for (int p = 0; p < s.process_count(); ++p) {
    m.total_rmws += s.counters(static_cast<ProcessId>(p)).rmws;
  }
  bool any_contention = false;
  std::uint64_t run_aborts = 0;
  for (const auto& op : s.ops()) {
    if (!op.complete) continue;
    ++m.ops;
    if (s.op_has_step_contention(op)) {
      any_contention = true;
      ++m.ops_with_step_contention;
    }
    if (op.output == 1) {
      ++m.commits;
    } else {
      ++m.aborts;
      ++run_aborts;
    }
  }
  if (!any_contention) m.aborts_without_step_contention += run_aborts;
  return m;
}

}  // namespace scm::workload
