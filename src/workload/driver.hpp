// Native multi-thread workload driver shared by the benchmark harness:
// spawns P OS threads, each with its own counting NativeContext, aligns
// them on a barrier, runs the supplied operation body, and aggregates
// per-thread step counters and wall-clock time.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "runtime/context.hpp"
#include "runtime/ids.hpp"
#include "support/barrier.hpp"

namespace scm::workload {

struct DriverResult {
  double seconds = 0.0;
  std::uint64_t total_ops = 0;
  std::vector<StepCounters> counters;  // per thread

  [[nodiscard]] double ns_per_op() const {
    return total_ops == 0 ? 0.0
                          : seconds * 1e9 / static_cast<double>(total_ops);
  }
  [[nodiscard]] StepCounters total_counters() const {
    StepCounters sum;
    for (const auto& c : counters) sum += c;
    return sum;
  }
  [[nodiscard]] double steps_per_op() const {
    return total_ops == 0 ? 0.0
                          : static_cast<double>(total_counters().total()) /
                                static_cast<double>(total_ops);
  }
  [[nodiscard]] double rmws_per_op() const {
    return total_ops == 0 ? 0.0
                          : static_cast<double>(total_counters().rmws) /
                                static_cast<double>(total_ops);
  }
};

// body(ctx, op_index) is called ops_per_thread times on each of
// `threads` threads. start_delay(pid) nanoseconds are waited (spinning)
// by each thread after the barrier — used to build staggered-arrival
// (low interval contention) phases.
inline DriverResult run_threads(
    int threads, std::uint64_t ops_per_thread,
    const std::function<void(NativeContext&, std::uint64_t)>& body,
    const std::function<std::uint64_t(ProcessId)>& start_delay_ns = {}) {
  // Degenerate workloads produce an explicitly empty result instead of
  // spawning zero threads and reporting division-guarded zeros.
  if (threads <= 0 || ops_per_thread == 0) return DriverResult{};

  // Threads + the measuring (main) thread align here so t0 is taken
  // when every worker is ready to run.
  SpinBarrier start(threads + 1);
  std::vector<StepCounters> counters(static_cast<std::size_t>(threads));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));

  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      NativeContext ctx(static_cast<ProcessId>(t));
      start.arrive_and_wait();
      if (start_delay_ns) {
        const auto wait = std::chrono::nanoseconds(start_delay_ns(t));
        const auto until = std::chrono::steady_clock::now() + wait;
        while (std::chrono::steady_clock::now() < until) {
        }
      }
      for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
        body(ctx, i);
      }
      counters[static_cast<std::size_t>(t)] = ctx.counters();
    });
  }

  // Spin until every worker is parked at the barrier, stamp t0, then
  // release them: startup latency stays outside the measured interval
  // and the interval can only overcount by the release itself.
  while (start.arrived() != threads) {
  }
  const auto t0 = std::chrono::steady_clock::now();
  start.arrive_and_wait();
  for (auto& th : pool) th.join();
  const auto t1 = std::chrono::steady_clock::now();

  DriverResult out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.total_ops = static_cast<std::uint64_t>(threads) * ops_per_thread;
  out.counters = std::move(counters);
  return out;
}

}  // namespace scm::workload
