// Native multi-thread workload driver shared by the benchmark harness:
// spawns P OS threads, each with its own counting NativeContext, aligns
// them on a barrier, runs the supplied operation body, and aggregates
// per-thread step counters and wall-clock time.
//
// run_threads is templated on the body callable, so the per-operation
// call inlines into each worker's loop — a lambda body costs no
// indirect call per op. The std::function overloads below remain for
// callers that store type-erased bodies.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "runtime/context.hpp"
#include "runtime/ids.hpp"
#include "support/barrier.hpp"
#include "support/topology.hpp"

namespace scm::workload {

// How spawned workers are placed on CPUs (scm_bench --pin /
// --topology): set once at startup before any run_threads call; every
// spawned worker reads it. Pinning makes thread<->core placement
// stable across repetitions — cross-rep variance from the scheduler
// migrating workers disappears — at the cost of fixing the placement
// the measurement reports. The domain-aware modes additionally choose
// WHICH cores, using the sysfs topology (support/topology.hpp):
//
//   kNone        workers float; the scheduler places them.
//   kSequential  worker t -> t-th allowed CPU (the historical --pin).
//   kCompact     allowed CPUs ordered domain-by-domain: one L3/NUMA
//                domain fills completely before the next is touched —
//                maximum sharing, the ByDomain-friendly placement.
//   kSpread      one CPU per domain in round-robin — maximum
//                aggregate cache, the bandwidth-friendly placement.
//
// On single-domain machines (or where sysfs is silent) kCompact and
// kSpread both degrade to kSequential exactly.
enum class PinMode : int { kNone = 0, kSequential, kCompact, kSpread };

inline std::atomic<int>& pin_mode_flag() {
  static std::atomic<int> flag{static_cast<int>(PinMode::kNone)};
  return flag;
}
inline void set_pin_workers(PinMode mode) {
  pin_mode_flag().store(static_cast<int>(mode), std::memory_order_relaxed);
}
// Historical boolean switch (scm_bench --pin), now an alias for
// sequential pinning.
inline void set_pin_workers(bool on) {
  set_pin_workers(on ? PinMode::kSequential : PinMode::kNone);
}
inline PinMode pin_workers_mode() {
  return static_cast<PinMode>(
      pin_mode_flag().load(std::memory_order_relaxed));
}
inline bool pin_workers() { return pin_workers_mode() != PinMode::kNone; }

struct DriverResult {
  double seconds = 0.0;
  std::uint64_t total_ops = 0;
  std::vector<StepCounters> counters;  // per thread

  [[nodiscard]] double ns_per_op() const {
    return total_ops == 0 ? 0.0
                          : seconds * 1e9 / static_cast<double>(total_ops);
  }
  [[nodiscard]] StepCounters total_counters() const {
    StepCounters sum;
    for (const auto& c : counters) sum += c;
    return sum;
  }
  [[nodiscard]] double steps_per_op() const {
    return total_ops == 0 ? 0.0
                          : static_cast<double>(total_counters().total()) /
                                static_cast<double>(total_ops);
  }
  [[nodiscard]] double rmws_per_op() const {
    return total_ops == 0 ? 0.0
                          : static_cast<double>(total_counters().rmws) /
                                static_cast<double>(total_ops);
  }
};

namespace detail {

// Sentinel for "no staggered start" — lets the template skip the delay
// plumbing entirely instead of testing an empty std::function per run.
struct NoStartDelay {};

// Names the calling worker thread scm-worker-<pid> so profiles and
// debugger thread lists read as harness workers, not anonymous
// std::threads. Kernel thread names cap at 15 characters + NUL.
inline void name_worker_thread(int pid) {
#if defined(__linux__)
  char name[16];
  std::snprintf(name, sizeof(name), "scm-worker-%d", pid);
  (void)pthread_setname_np(pthread_self(), name);
#else
  (void)pid;
#endif
}

// Pins the calling worker to the (pid mod n)-th CPU of the placement
// order derived from the pin mode: scm-worker-N lands on the same core
// every repetition, and workers spread over all available cores before
// doubling up. The base order indexes into the sched_getaffinity mask
// (rather than 0..online-cores), which keeps pinning correct inside
// cpuset-restricted containers, where the allowed CPUs need not start
// at 0 or be contiguous; the domain-aware modes reorder that allowed
// list by topology domain (compact: domain by domain; spread: round-
// robin across domains). Best-effort — failures and non-Linux hosts
// are ignored.
inline void pin_worker_thread(int pid, PinMode mode = PinMode::kSequential) {
#if defined(__linux__)
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (::sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return;
  const int navail = CPU_COUNT(&allowed);
  if (navail <= 0) return;

  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(navail));
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &allowed)) order.push_back(cpu);
  }
  if (mode == PinMode::kCompact || mode == PinMode::kSpread) {
    const CpuTopology& topo = CpuTopology::system();
    // Bucket the ALLOWED cpus by domain, preserving cpu order inside
    // each bucket; unknown cpus land in domain 0 (the fallback).
    std::vector<std::vector<int>> buckets(
        static_cast<std::size_t>(std::max(1, topo.domain_count())));
    for (const int cpu : order) {
      buckets[static_cast<std::size_t>(topo.domain_of(cpu)) %
              buckets.size()]
          .push_back(cpu);
    }
    order.clear();
    if (mode == PinMode::kCompact) {
      for (const auto& b : buckets) {
        order.insert(order.end(), b.begin(), b.end());
      }
    } else {  // kSpread: one cpu per domain in turn
      for (std::size_t i = 0;; ++i) {
        bool any = false;
        for (const auto& b : buckets) {
          if (i < b.size()) {
            order.push_back(b[i]);
            any = true;
          }
        }
        if (!any) break;
      }
    }
  }
  if (order.empty()) return;

  const int cpu =
      order[static_cast<std::size_t>(pid) % order.size()];
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)pid;
  (void)mode;
#endif
}

// Shared worker-pool scaffolding for every driver shape (closed loop,
// open loop): spawns `threads` named/pinned workers, each with its own
// counting NativeContext, aligns workers and the measuring (main)
// thread on a barrier so t0 is taken when every worker is ready, runs
// worker(ctx, t) on each, and returns the measured wall-clock
// interval. Startup latency stays outside the measured interval; the
// interval can only overcount by the release itself.
template <class Worker>
double run_pool(int threads, std::vector<StepCounters>& counters,
                const Worker& worker) {
  SpinBarrier start(threads + 1);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));

  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      name_worker_thread(t);
      if (const PinMode mode = pin_workers_mode(); mode != PinMode::kNone) {
        pin_worker_thread(t, mode);
      }
      NativeContext ctx(static_cast<ProcessId>(t));
      start.arrive_and_wait();
      worker(ctx, t);
      counters[static_cast<std::size_t>(t)] = ctx.counters();
    });
  }

  while (start.arrived() != threads) {
  }
  const auto t0 = std::chrono::steady_clock::now();
  start.arrive_and_wait();
  for (auto& th : pool) th.join();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

// body(ctx, op_index) is called ops_per_thread times on each of
// `threads` threads. start_delay(pid) nanoseconds are waited (spinning)
// by each thread after the barrier — used to build staggered-arrival
// (low interval contention) phases.
template <class Body, class StartDelay>
DriverResult run_threads_impl(int threads, std::uint64_t ops_per_thread,
                              const Body& body,
                              const StartDelay& start_delay_ns) {
  constexpr bool kHasDelay =
      !std::is_same_v<std::remove_cvref_t<StartDelay>, NoStartDelay>;

  // Degenerate workloads produce an explicitly empty result instead of
  // spawning zero threads and reporting division-guarded zeros.
  if (threads <= 0 || ops_per_thread == 0) return DriverResult{};

  std::vector<StepCounters> counters(static_cast<std::size_t>(threads));
  const double seconds =
      run_pool(threads, counters, [&](NativeContext& ctx, int t) {
        if constexpr (kHasDelay) {
          // Null-state callables (empty std::function, null function
          // pointer) mean "no delay", matching the legacy behaviour —
          // without this, an empty std::function would throw
          // bad_function_call in every worker.
          bool engaged = true;
          if constexpr (requires { static_cast<bool>(start_delay_ns); }) {
            engaged = static_cast<bool>(start_delay_ns);
          }
          if (engaged) {
            const auto wait = std::chrono::nanoseconds(start_delay_ns(t));
            const auto until = std::chrono::steady_clock::now() + wait;
            while (std::chrono::steady_clock::now() < until) {
            }
          }
        } else {
          (void)t;
        }
        for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
          body(ctx, i);
        }
      });

  DriverResult out;
  out.seconds = seconds;
  out.total_ops = static_cast<std::uint64_t>(threads) * ops_per_thread;
  out.counters = std::move(counters);
  return out;
}

}  // namespace detail

// Primary entry point: any callable body (and, optionally, any callable
// start-delay), dispatched statically — no per-op indirect call.
template <class Body>
DriverResult run_threads(int threads, std::uint64_t ops_per_thread,
                         const Body& body) {
  return detail::run_threads_impl(threads, ops_per_thread, body,
                                  detail::NoStartDelay{});
}

template <class Body, class StartDelay>
DriverResult run_threads(int threads, std::uint64_t ops_per_thread,
                         const Body& body, const StartDelay& start_delay_ns) {
  return detail::run_threads_impl(threads, ops_per_thread, body,
                                  start_delay_ns);
}

// Type-erased overloads, for callers that keep bodies in std::function
// variables (pre-pipeline API; each op pays one indirect call). The
// non-template overload wins resolution for std::function lvalues, so
// existing callers keep their exact previous behaviour.
inline DriverResult run_threads(
    int threads, std::uint64_t ops_per_thread,
    const std::function<void(NativeContext&, std::uint64_t)>& body,
    const std::function<std::uint64_t(ProcessId)>& start_delay_ns = {}) {
  if (start_delay_ns) {
    return detail::run_threads_impl(threads, ops_per_thread, body,
                                    start_delay_ns);
  }
  return detail::run_threads_impl(threads, ops_per_thread, body,
                                  detail::NoStartDelay{});
}

// ---------------------------------------------------------------------------
// Open-loop driver: bounded-window asynchronous submission.
//
// run_threads measures a CLOSED loop — each thread blocks until its
// operation commits before issuing the next, so latency and throughput
// are the same number seen from two sides. The open-loop body detaches
// them: each thread keeps up to `window` submitted-but-uncompleted
// tickets in flight, blocking only when the window is full, so
// submission pressure stays up while completions straggle — the regime
// async submission exists for, and one no closed-loop scenario can
// express. Throughput (seconds / total_ops) covers submit through
// last-completion; completion latency is sampled per operation from
// submit to OBSERVED completion (tickets are polled once per loop
// iteration, so the observation granularity is one submission step —
// an open-loop run's natural harvest cadence, not a measurement bug).

// DriverResult plus one completion-latency sample per operation,
// merged across threads (nanoseconds, unordered).
struct OpenLoopResult {
  double seconds = 0.0;
  std::uint64_t total_ops = 0;
  std::vector<StepCounters> counters;  // per thread
  std::vector<double> latency_ns;      // one sample per completed op

  [[nodiscard]] double ns_per_op() const {
    return total_ops == 0 ? 0.0
                          : seconds * 1e9 / static_cast<double>(total_ops);
  }
  [[nodiscard]] StepCounters total_counters() const {
    StepCounters sum;
    for (const auto& c : counters) sum += c;
    return sum;
  }
};

// submit(ctx, i) issues operation i and returns a Ticket (any type
// with poll/try_result/wait — core/async.hpp); on_result(ctx, r) runs
// on the submitting thread as each result is harvested, in completion
// (FIFO-prefix) order. The per-thread window is collected
// oldest-first. A `window` at or above the async source's capacity (a
// Combining's kSlots) is safe — the source falls back to inline
// execution when its publication array is exhausted — but the cells
// past capacity measure that saturation regime rather than additional
// overlap.
template <class Submit, class OnResult>
OpenLoopResult run_open_loop(int threads, std::uint64_t ops_per_thread,
                             std::size_t window, const Submit& submit,
                             const OnResult& on_result) {
  if (threads <= 0 || ops_per_thread == 0) return OpenLoopResult{};
  if (window == 0) window = 1;

  std::vector<StepCounters> counters(static_cast<std::size_t>(threads));
  std::vector<std::vector<double>> lats(static_cast<std::size_t>(threads));

  const double seconds = detail::run_pool(
      threads, counters, [&, window](NativeContext& ctx, int t) {
        using Clock = std::chrono::steady_clock;
        using TicketT =
            std::remove_cvref_t<decltype(submit(ctx, std::uint64_t{0}))>;
        struct InFlight {
          TicketT ticket;
          Clock::time_point submitted;
          Clock::time_point completed;
          bool done = false;
        };
        // FIFO ring of in-flight submissions.
        std::vector<InFlight> ring(window);
        std::size_t head = 0;
        std::size_t live = 0;

        auto& lat = lats[static_cast<std::size_t>(t)];
        lat.reserve(ops_per_thread);

        // Consumes the (completed) head entry: records its latency and
        // hands the result to the caller.
        const auto harvest_head = [&] {
          InFlight& e = ring[head];
          lat.push_back(std::chrono::duration<double, std::nano>(
                            e.completed - e.submitted)
                            .count());
          const auto r = e.ticket.try_result();
          on_result(ctx, *r);
          e.done = false;
          head = (head + 1) % window;
          --live;
        };
        // Blocks on the head entry (wait() helps the source along, so
        // this converges even solo), then consumes it. The completion
        // stamp is taken before on_result runs, matching harvest_head
        // — latency samples never include the harvest callback.
        const auto wait_head = [&] {
          InFlight& e = ring[head];
          auto r = e.ticket.wait();
          lat.push_back(std::chrono::duration<double, std::nano>(
                            Clock::now() - e.submitted)
                            .count());
          on_result(ctx, r);
          e.done = false;
          head = (head + 1) % window;
          --live;
        };

        for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
          // Stamp completions across the whole window (freeing the
          // source's publication slots early), then pop the completed
          // FIFO prefix; if the window is still full, block on the
          // oldest.
          for (std::size_t k = 0; k < live; ++k) {
            InFlight& e = ring[(head + k) % window];
            if (!e.done && e.ticket.poll()) {
              e.done = true;
              e.completed = Clock::now();
            }
          }
          while (live > 0 && ring[head].done) harvest_head();
          if (live == window) wait_head();

          InFlight& e = ring[(head + live) % window];
          e.done = false;
          e.submitted = Clock::now();
          e.ticket = submit(ctx, i);
          ++live;
        }

        // Drain the tail of the window.
        while (live > 0) {
          if (ring[head].done) {
            harvest_head();
          } else {
            wait_head();
          }
        }
      });

  OpenLoopResult out;
  out.seconds = seconds;
  out.total_ops = static_cast<std::uint64_t>(threads) * ops_per_thread;
  out.counters = std::move(counters);
  out.latency_ns.reserve(out.total_ops);
  for (auto& v : lats) {
    out.latency_ns.insert(out.latency_ns.end(), v.begin(), v.end());
  }
  return out;
}

template <class Submit>
OpenLoopResult run_open_loop(int threads, std::uint64_t ops_per_thread,
                             std::size_t window, const Submit& submit) {
  return run_open_loop(threads, ops_per_thread, window, submit,
                       [](NativeContext&, const auto&) {});
}

}  // namespace scm::workload
