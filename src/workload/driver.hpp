// Native multi-thread workload driver shared by the benchmark harness:
// spawns P OS threads, each with its own counting NativeContext, aligns
// them on a barrier, runs the supplied operation body, and aggregates
// per-thread step counters and wall-clock time.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "runtime/context.hpp"
#include "runtime/ids.hpp"

namespace scm::workload {

struct DriverResult {
  double seconds = 0.0;
  std::uint64_t total_ops = 0;
  std::vector<StepCounters> counters;  // per thread

  [[nodiscard]] double ns_per_op() const {
    return total_ops == 0 ? 0.0
                          : seconds * 1e9 / static_cast<double>(total_ops);
  }
  [[nodiscard]] StepCounters total_counters() const {
    StepCounters sum;
    for (const auto& c : counters) sum += c;
    return sum;
  }
  [[nodiscard]] double steps_per_op() const {
    return total_ops == 0 ? 0.0
                          : static_cast<double>(total_counters().total()) /
                                static_cast<double>(total_ops);
  }
  [[nodiscard]] double rmws_per_op() const {
    return total_ops == 0 ? 0.0
                          : static_cast<double>(total_counters().rmws) /
                                static_cast<double>(total_ops);
  }
};

// body(ctx, op_index) is called ops_per_thread times on each of
// `threads` threads. start_delay(pid) nanoseconds are waited (spinning)
// by each thread after the barrier — used to build staggered-arrival
// (low interval contention) phases.
inline DriverResult run_threads(
    int threads, std::uint64_t ops_per_thread,
    const std::function<void(NativeContext&, std::uint64_t)>& body,
    const std::function<std::uint64_t(ProcessId)>& start_delay_ns = {}) {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<StepCounters> counters(static_cast<std::size_t>(threads));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));

  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      NativeContext ctx(static_cast<ProcessId>(t));
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) {
      }
      if (start_delay_ns) {
        const auto wait = std::chrono::nanoseconds(start_delay_ns(t));
        const auto until = std::chrono::steady_clock::now() + wait;
        while (std::chrono::steady_clock::now() < until) {
        }
      }
      for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
        body(ctx, i);
      }
      counters[static_cast<std::size_t>(t)] = ctx.counters();
    });
  }

  while (ready.load(std::memory_order_acquire) != threads) {
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  const auto t1 = std::chrono::steady_clock::now();

  DriverResult out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.total_ops = static_cast<std::uint64_t>(threads) * ops_per_thread;
  out.counters = std::move(counters);
  return out;
}

}  // namespace scm::workload
