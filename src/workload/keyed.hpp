// Keyed operation streams for contention-sweep workloads.
//
// The paper's benchmarks hammer ONE shared instance; the sharded
// composition layer (core/sharding.hpp) routes operations by key, so
// the key distribution decides how much of the offered load lands on
// the same shard. Two deterministic generators over the repository's
// Rng cover the two ends of the axis:
//
//   * UniformKeys  — every key equally likely: load spreads across
//     shards as evenly as the hash allows (the low-contention end);
//   * ZipfianKeys  — Zipf(theta)-skewed draws: a handful of hot keys
//     take most of the stream (theta 0.99 is the classic YCSB skew),
//     concentrating load on the hot keys' shards no matter how many
//     shards exist (the high-contention end).
//
// ZipfianKeys uses the Gray et al. quantile transform popularized by
// YCSB: the harmonic normalizer zeta(n, theta) is an O(n) sum, each
// draw afterwards O(1) — one uniform double plus a pow. Sweeps
// construct one generator per (threads × reps) cell with identical
// (keys, theta), so the normalizer is MEMOIZED across constructions:
// only the first (keys, theta) pair pays the O(keys) loop, every
// later construction is a map lookup (zeta_computations() is the
// probe counter the regression test watches). theta = 0 degenerates
// to the exact uniform distribution, so one generator type sweeps the
// whole skew axis. Both generators are pure functions of the Rng
// stream: the same seed yields the same key sequence, keeping every
// benchmark phase replayable from one printed seed.
#pragma once

#include <atomic>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace scm::workload {

// A key stream draws keys in [0, keys()) from a caller-owned Rng.
template <class S>
concept KeyStream = requires(S s, Rng& rng) {
  { s(rng) } -> std::convertible_to<std::uint64_t>;
  { s.keys() } -> std::convertible_to<std::uint64_t>;
};

class UniformKeys {
 public:
  explicit UniformKeys(std::uint64_t keys) : keys_(keys) {
    SCM_CHECK_MSG(keys >= 1, "a key space needs at least one key");
  }

  [[nodiscard]] std::uint64_t keys() const noexcept { return keys_; }

  std::uint64_t operator()(Rng& rng) const noexcept {
    return rng.below(keys_);
  }

 private:
  std::uint64_t keys_;
};

// Zipf(theta) over {0, ..., keys-1}, key 0 hottest. theta in [0, 1):
// 0 is uniform, 0.99 the standard "heavy skew" operating point.
class ZipfianKeys {
 public:
  ZipfianKeys(std::uint64_t keys, double theta)
      : keys_(validated(keys, theta)),
        theta_(theta),
        alpha_(1.0 / (1.0 - theta)),
        zetan_(zeta_memo(keys, theta)),
        eta_((1.0 - std::pow(2.0 / static_cast<double>(keys), 1.0 - theta)) /
             (1.0 - zeta_memo(keys < 2 ? keys : 2, theta) / zetan_)),
        half_pow_theta_(std::pow(0.5, theta)) {}

  // How many times the O(n) zeta sum has actually been evaluated,
  // process-wide — the memoization regression probe: constructing the
  // same (keys, theta) generator repeatedly must not move it.
  [[nodiscard]] static std::uint64_t zeta_computations() noexcept {
    return zeta_evals().load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t keys() const noexcept { return keys_; }
  [[nodiscard]] double skew() const noexcept { return theta_; }

  std::uint64_t operator()(Rng& rng) const noexcept {
    if (keys_ == 1) return 0;
    const double u = rng.uniform();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + half_pow_theta_) return 1;
    const auto k = static_cast<std::uint64_t>(
        static_cast<double>(keys_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return k >= keys_ ? keys_ - 1 : k;  // clamp FP edge at u -> 1
  }

 private:
  // Runs before any derived constant is computed (keys_ is the first
  // member), so invalid parameters hit a diagnostic, not NaNs.
  [[nodiscard]] static std::uint64_t validated(std::uint64_t keys,
                                               double theta) {
    SCM_CHECK_MSG(keys >= 1, "a key space needs at least one key");
    SCM_CHECK_MSG(theta >= 0.0 && theta < 1.0,
                  "zipfian skew must lie in [0, 1)");
    return keys;
  }

  // zeta(n, theta) = sum_{i=1..n} i^-theta (the harmonic normalizer).
  [[nodiscard]] static double zeta(std::uint64_t n, double theta) {
    zeta_evals().fetch_add(1, std::memory_order_relaxed);
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  // Memoized front end: one process-wide table keyed on the exact
  // (n, theta) pair (theta comparison is bitwise-exact equality,
  // which is precisely what "the same sweep parameter again" means).
  // Construction-time only — draws never come here, so the mutex is
  // nowhere near a measured region.
  [[nodiscard]] static double zeta_memo(std::uint64_t n, double theta) {
    static std::mutex mu;
    static std::map<std::pair<std::uint64_t, double>, double> cache;
    const std::lock_guard<std::mutex> lock(mu);
    const auto key = std::make_pair(n, theta);
    if (const auto it = cache.find(key); it != cache.end()) {
      return it->second;
    }
    return cache.emplace(key, zeta(n, theta)).first->second;
  }

  [[nodiscard]] static std::atomic<std::uint64_t>& zeta_evals() noexcept {
    static std::atomic<std::uint64_t> evals{0};
    return evals;
  }

  std::uint64_t keys_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double half_pow_theta_;  // pow(0.5, theta), hoisted off the draw path
};

static_assert(KeyStream<UniformKeys>);
static_assert(KeyStream<ZipfianKeys>);

}  // namespace scm::workload
