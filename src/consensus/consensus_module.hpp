// Adapter from abortable consensus to the composable-module interface.
//
// Algorithm 3/4 already give every consensus object the two-argument
// wrapper run(old, v): propose the value inherited from the previous
// instance first, then the caller's own proposal. That is precisely
// the abort→init plumbing of Section 5's modules, so a consensus
// instance *is* a module once the translation is spelled out:
//   * the init switch value is the previous instance's recovery hint
//     (⊥ when the module starts a chain);
//   * the proposal is the request argument;
//   * a commit's response is the decided value;
//   * an abort's switch value is this instance's recovery hint, ready
//     to initialize the next consensus module downstream.
//
// With this adapter a consensus chain composes through the same
// Pipeline<Ms...> combinator as the TAS modules:
//   make_pipeline(ConsensusModule{split}, ConsensusModule{bakery},
//                 ConsensusModule{cas})
// commits on the registers-only stages when quiet and falls through to
// hardware under contention — the Proposition 1 stack, without the
// universal construction around it.
#pragma once

#include <memory>
#include <optional>
#include <type_traits>

#include "consensus/consensus.hpp"
#include "core/module.hpp"
#include "history/request.hpp"

namespace scm {

template <class Cons>
class ConsensusModule {
 public:
  static constexpr int kConsensusNumber = Cons::kConsensusNumber;

  ConsensusModule()
    requires std::is_default_constructible_v<Cons>
      : owned_(std::make_unique<Cons>()) {}
  // Owned instance whose constructor needs the process count (e.g.
  // AbortableBakery).
  explicit ConsensusModule(int num_processes)
    requires std::is_constructible_v<Cons, int>
      : owned_(std::make_unique<Cons>(num_processes)) {}
  explicit ConsensusModule(Cons& cons) noexcept : cons_(&cons) {}

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& m,
                      std::optional<SwitchValue> init = std::nullopt) {
    const std::int64_t inherited = init.value_or(kBottom);
    const ConsensusResult r =
        consensus().run(ctx, inherited, m.arg);
    if (r.committed()) return ModuleResult::commit(r.value);
    return ModuleResult::abort_with(r.value);  // recovery hint
  }

  [[nodiscard]] Cons& consensus() noexcept {
    return cons_ == nullptr ? *owned_ : *cons_;
  }

 private:
  // Constructing adapters own their instance (the common case: the
  // adapter lives exactly as long as the consensus object); the
  // referencing constructor wraps an instance owned elsewhere. The
  // owned instance sits behind unique_ptr so the adapter itself stays
  // movable — and usable as an rvalue pipeline stage — even though
  // consensus objects pin registers and are immovable.
  std::unique_ptr<Cons> owned_;
  Cons* cons_ = nullptr;
};

}  // namespace scm
