// Abortable consensus (Section 4.2 / Appendix A).
//
// An abortable consensus instance returns a commit or an abort
// indication together with a value: on commit, every committing process
// obtains the same decision; on abort, the value is a (possibly ⊥)
// recovery hint and agreement is not guaranteed. The instance commits
// whenever its progress predicate NT holds (absence of interval
// contention for SplitConsensus, absence of step contention for
// AbortableBakery, always for CasConsensus).
#pragma once

#include <concepts>
#include <cstdint>

#include "core/module.hpp"
#include "history/request.hpp"

namespace scm {

// ⊥ for consensus proposal/decision values.
inline constexpr std::int64_t kBottom = INT64_MIN;

struct ConsensusResult {
  Outcome outcome = Outcome::kCommit;
  std::int64_t value = kBottom;

  static ConsensusResult commit(std::int64_t v) {
    return {Outcome::kCommit, v};
  }
  static ConsensusResult abort_with(std::int64_t v) {
    return {Outcome::kAbort, v};
  }

  [[nodiscard]] bool committed() const noexcept {
    return outcome == Outcome::kCommit;
  }
};

// Structural requirements on an abortable consensus implementation:
// the two-argument wrapper of Algorithm 3/4 (inherited value `old`
// plus own proposal) and the raw single-value propose.
template <class C, class Ctx>
concept AbortableConsensus = requires(C c, Ctx& ctx, std::int64_t v) {
  { c.propose(ctx, v) } -> std::same_as<ConsensusResult>;
  { c.run(ctx, v, v) } -> std::same_as<ConsensusResult>;
  { C::kConsensusNumber } -> std::convertible_to<int>;
};

}  // namespace scm
