// SplitConsensus (Appendix A, Algorithm 3): abortable consensus from a
// splitter and two registers, after Luchangco-Moir-Shavit [18].
//
//  * uses only registers (consensus number 1!);
//  * commits in O(1) steps when there is no interval contention;
//  * may abort under contention, returning the current tentative value
//    (possibly ⊥) as a recovery hint.
//
// The run() wrapper implements Algorithm 3 lines 18-23: a process that
// inherited a value `old` from a previous instance first proposes it
// (init), and only proposes its own value if the instance committed ⊥,
// i.e. if no inherited state fixed the outcome.
#pragma once

#include "consensus/consensus.hpp"
#include "consensus/splitter.hpp"

namespace scm {

template <class P>
class SplitConsensus {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberRegister;
  using Context = typename P::Context;

  // Algorithm 3, propose(v), lines 5-17 — with one repair: the paper's
  // pseudocode resets the splitter only on the V-writing commit path
  // (line 12). A decided instance re-read by two uncontended processes
  // in sequence would then leave the splitter closed and abort the
  // second reader, poisoning the surrounding universal construction in
  // a contention-free execution (contradicting Proposition 1). V is
  // immutable once non-⊥, so resetting on the read-commit path as well
  // is safe: any later stopper re-reads the same decided value.
  template <class Ctx>
  ConsensusResult propose(Ctx& ctx, std::int64_t v) {
    if (splitter_.get(ctx) == SplitterVerdict::kStop) {
      const std::int64_t current = value_.read(ctx);
      if (current != kBottom) {
        if (!contended_.read(ctx)) {
          splitter_.reset(ctx);
          return ConsensusResult::commit(current);
        }
        return ConsensusResult::abort_with(current);
      }
      value_.write(ctx, v);
      if (!contended_.read(ctx)) {
        splitter_.reset(ctx);
        return ConsensusResult::commit(v);
      }
      // Contention was flagged while we raced through the splitter.
      return ConsensusResult::abort_with(value_.read(ctx));
    }
    contended_.write(ctx, true);
    return ConsensusResult::abort_with(value_.read(ctx));
  }

  // Algorithm 3, init(old), lines 2-4: propose the inherited value.
  template <class Ctx>
  ConsensusResult init(Ctx& ctx, std::int64_t old) {
    return propose(ctx, old);
  }

  // Algorithm 3, SplitConsensus(old, v), lines 18-23.
  template <class Ctx>
  ConsensusResult run(Ctx& ctx, std::int64_t old, std::int64_t v) {
    const ConsensusResult first = init(ctx, old);
    if (!first.committed()) return ConsensusResult::abort_with(old);
    if (first.value == kBottom) return propose(ctx, v);
    return ConsensusResult::commit(first.value);
  }

  // The decision this instance has fixed (or will fix), ⊥ if none: V is
  // written at most once between commits, and any later commit returns
  // it. Used by the universal construction's abort recovery to read
  // decided cells without proposing.
  template <class Ctx>
  [[nodiscard]] std::int64_t peek_decision(Ctx& ctx) const {
    return value_.read(ctx);
  }

 private:
  Splitter<P> splitter_;
  typename P::template Register<std::int64_t> value_{kBottom};
  typename P::template Register<bool> contended_{false};
};

}  // namespace scm
