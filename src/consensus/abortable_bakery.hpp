// AbortableBakery (Appendix A, Algorithm 4): abortable consensus from
// timestamped register arrays, the abortable variant of the solo-fast
// consensus of Attiya-Guerraoui-Hendler-Kuznetsov [6].
//
//  * uses only registers (consensus number 1);
//  * commits in O(n) steps when the proposer encounters no *step*
//    contention (a strictly stronger progress guarantee than
//    SplitConsensus's interval-contention condition);
//  * on detecting step contention, poisons the instance (Quit) and
//    aborts with the current decision estimate Dec (possibly ⊥).
//
// Each process owns one slot in the announce array (A) and one in the
// confirm array (B); a proposal is decided once it survives two
// collects with the highest timestamp and no conflicting value.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "support/assert.hpp"
#include "consensus/consensus.hpp"
#include "runtime/ids.hpp"

namespace scm {

template <class P>
class AbortableBakery {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberRegister;
  using Context = typename P::Context;

  explicit AbortableBakery(int num_processes) : n_(num_processes) {
    SCM_CHECK(num_processes > 0);
    announce_ = std::make_unique<Slot[]>(static_cast<std::size_t>(n_));
    confirm_ = std::make_unique<Slot[]>(static_cast<std::size_t>(n_));
  }

  // Algorithm 4, propose(input_i), lines 4-23.
  template <class Ctx>
  ConsensusResult propose(Ctx& ctx, std::int64_t input) {
    const auto me = static_cast<std::size_t>(ctx.id());
    SCM_CHECK_MSG(ctx.id() >= 0 && ctx.id() < n_,
                  "process id out of range for AbortableBakery");

    // Collect A; derive k_i: the minimal timestamp k such that A holds
    // no value with timestamp > k and no two distinct values with
    // timestamp k.
    std::vector<TsVal> view = collect(ctx, announce_.get());
    std::int64_t k = 0;
    std::int64_t adopted = kBottom;
    derive_timestamp(view, k, adopted);

    std::int64_t estimate;
    if (adopted != kBottom) {
      // Some value already sits at timestamp k_i: adopt it.
      estimate = adopted;
    } else {
      // Otherwise fall back to the freshest confirmed value, then to
      // our own input.
      const std::vector<TsVal> confirmed = collect(ctx, confirm_.get());
      estimate = highest_ts_value(confirmed);
      if (estimate == kBottom) estimate = input;
    }

    announce_[me].reg.write(ctx, TsVal{k, estimate});

    view = collect(ctx, announce_.get());
    if (unchallenged(view, k, estimate)) {
      confirm_[me].reg.write(ctx, TsVal{k, estimate});
      view = collect(ctx, announce_.get());
      if (unchallenged(view, k, estimate)) {
        if (!quit_.read(ctx)) {
          decision_.write(ctx, estimate);
          return ConsensusResult::commit(estimate);
        }
      }
    }
    quit_.write(ctx, true);
    return ConsensusResult::abort_with(decision_.read(ctx));
  }

  // Algorithm 4, init(old), lines 24-26.
  template <class Ctx>
  ConsensusResult init(Ctx& ctx, std::int64_t old) {
    return propose(ctx, old);
  }

  // Algorithm 4, AbortableBakery(old, v), lines 27-32.
  template <class Ctx>
  ConsensusResult run(Ctx& ctx, std::int64_t old, std::int64_t v) {
    const ConsensusResult first = init(ctx, old);
    if (!first.committed()) return ConsensusResult::abort_with(old);
    if (first.value == kBottom) return propose(ctx, v);
    return ConsensusResult::commit(first.value);
  }

  // The committed decision, ⊥ if this instance never committed. Dec is
  // written only on commit paths, so a non-⊥ value is final.
  template <class Ctx>
  [[nodiscard]] std::int64_t peek_decision(Ctx& ctx) const {
    return decision_.read(ctx);
  }

 private:
  struct TsVal {
    std::int64_t ts = -1;  // -1 encodes ⊥ (slot never written)
    std::int64_t val = kBottom;
  };
  struct Slot {
    typename P::template Register<TsVal> reg{TsVal{}};
  };

  template <class Ctx>
  std::vector<TsVal> collect(Ctx& ctx, const Slot* slots) const {
    std::vector<TsVal> out;
    out.reserve(static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; ++i) {
      out.push_back(slots[i].reg.read(ctx));
    }
    return out;
  }

  // k_i and the value to adopt at k_i (kBottom if the slot is free).
  static void derive_timestamp(const std::vector<TsVal>& view, std::int64_t& k,
                               std::int64_t& adopted) {
    std::int64_t max_ts = -1;
    for (const TsVal& tv : view) max_ts = std::max(max_ts, tv.ts);
    if (max_ts < 0) {
      k = 0;
      adopted = kBottom;
      return;
    }
    std::int64_t seen = kBottom;
    bool conflict = false;
    for (const TsVal& tv : view) {
      if (tv.ts != max_ts) continue;
      if (seen == kBottom) {
        seen = tv.val;
      } else if (seen != tv.val) {
        conflict = true;
      }
    }
    if (conflict) {
      k = max_ts + 1;
      adopted = kBottom;
    } else {
      k = max_ts;
      adopted = seen;
    }
  }

  static std::int64_t highest_ts_value(const std::vector<TsVal>& view) {
    std::int64_t best_ts = -1;
    std::int64_t best = kBottom;
    for (const TsVal& tv : view) {
      if (tv.ts > best_ts) {
        best_ts = tv.ts;
        best = tv.val;
      }
    }
    return best;
  }

  // "No timestamps larger than k and no values other than v with
  // timestamp k."
  static bool unchallenged(const std::vector<TsVal>& view, std::int64_t k,
                           std::int64_t v) {
    for (const TsVal& tv : view) {
      if (tv.ts > k) return false;
      if (tv.ts == k && tv.val != v) return false;
    }
    return true;
  }

  int n_;
  std::unique_ptr<Slot[]> announce_;
  std::unique_ptr<Slot[]> confirm_;
  typename P::template Register<bool> quit_{false};
  typename P::template Register<std::int64_t> decision_{kBottom};
};

}  // namespace scm
