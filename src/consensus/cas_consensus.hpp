// Wait-free consensus from hardware compare-and-swap: the strong base
// object that the composable universal construction reverts to under
// contention (Proposition 1), and the baseline whose avoidance is the
// point of the speculative constructions.
#pragma once

#include "consensus/consensus.hpp"
#include "runtime/ids.hpp"

namespace scm {

template <class P>
class CasConsensus {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberCas;
  using Context = typename P::Context;

  // Wait-free: always commits, in at most one RMW step.
  template <class Ctx>
  ConsensusResult propose(Ctx& ctx, std::int64_t v) {
    std::int64_t expected = kBottom;
    if (cell_.compare_and_swap(ctx, expected, v)) {
      return ConsensusResult::commit(v);
    }
    return ConsensusResult::commit(expected);
  }

  template <class Ctx>
  ConsensusResult init(Ctx& ctx, std::int64_t old) {
    return propose(ctx, old);
  }

  // Same wrapper shape as the abortable algorithms so the universal
  // construction can swap implementations: propose the inherited value
  // first, then our own if nothing was inherited. When nothing was
  // inherited we skip the init round, keeping the wait-free path at a
  // single RMW (the fence-complexity baseline of E4/E5).
  template <class Ctx>
  ConsensusResult run(Ctx& ctx, std::int64_t old, std::int64_t v) {
    if (old != kBottom) {
      const ConsensusResult first = init(ctx, old);
      if (first.value != kBottom) return first;
    }
    return propose(ctx, v);
  }

  // The committed decision, ⊥ if nobody proposed yet.
  template <class Ctx>
  [[nodiscard]] std::int64_t peek_decision(Ctx& ctx) const {
    return cell_.read(ctx);
  }

 private:
  typename P::template Cas<std::int64_t> cell_{kBottom};
};

}  // namespace scm
