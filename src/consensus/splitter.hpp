// Moir-Anderson / Lamport-style splitter built from two registers.
//
// In any execution, at most one process returns kStop; if a process
// runs alone (no interval contention), it returns kStop. Used by
// SplitConsensus as its contention detector: acquiring the splitter
// certifies "nobody else was here concurrently".
#pragma once

#include "runtime/ids.hpp"

namespace scm {

enum class SplitterVerdict : std::uint8_t { kStop, kRight, kDown };

template <class P>
class Splitter {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberRegister;
  using Context = typename P::Context;

  template <class Ctx>
  [[nodiscard]] SplitterVerdict get(Ctx& ctx) {
    door_.write(ctx, ctx.id());
    if (closed_.read(ctx)) return SplitterVerdict::kRight;
    closed_.write(ctx, true);
    if (door_.read(ctx) != ctx.id()) return SplitterVerdict::kDown;
    return SplitterVerdict::kStop;
  }

  // Reopens the splitter. Called only by a process that obtained kStop
  // while uncontended (Algorithm 3, line 12); under contention the
  // splitter stays closed, which is what forces the abort path.
  template <class Ctx>
  void reset(Ctx& ctx) {
    closed_.write(ctx, false);
  }

 private:
  typename P::template Register<ProcessId> door_{kInvalidProcess};
  typename P::template Register<bool> closed_{false};
};

}  // namespace scm
