// Shared vocabulary of the compose.shm (E16) scenario: the server
// (bench/bench_compose_shm.cpp) and the client role
// (src/bench/shm_role.cpp) run in SEPARATE PROCESSES of the same
// binary and meet only through the arena's discovery table, so the
// object types, published names, and type tags they must agree on
// live here — one header, no drift.
#pragma once

#include "shm/shm_arena.hpp"  // defines SCM_HAS_POSIX_SHM

#if SCM_HAS_POSIX_SHM

#include <atomic>
#include <cstdint>

#include "shm/shm_barrier.hpp"
#include "shm/shm_combining.hpp"
#include "shm/shm_counter.hpp"
#include "support/cacheline.hpp"

namespace scm::bench {

// Compiled-in slot count of the shared combiner (recorded in the JSON
// params as shm_slot_count).
inline constexpr std::size_t kShmSlots = 16;

using E16Combining = ShmCombining<ShmCounter, kShmSlots>;

// Per-client accounting cell, one cache line each. `started` is
// advanced BEFORE the op is published and `completed` after its result
// is collected, so for a client killed at an arbitrary instruction
// started - completed <= 1 and the reconciliation bound
//   sum(completed) <= counter <= sum(started)
// is exact.
struct alignas(kCacheLineSize) E16ClientCell {
  std::atomic<std::uint64_t> started{0};
  std::atomic<std::uint64_t> completed{0};
};

inline constexpr const char* kE16CombiningName = "e16.combining";
inline constexpr const char* kE16CellsName = "e16.cells";
inline constexpr const char* kE16BarrierName = "e16.barrier";

// Discovery-table type tags for the plain objects (the combiner uses
// its own layout-derived E16Combining::kTypeTag).
inline constexpr std::uint32_t kE16CellsTag = 0x45313663;    // "E16c"
inline constexpr std::uint32_t kE16BarrierTag = 0x45313662;  // "E16b"

}  // namespace scm::bench

#endif  // SCM_HAS_POSIX_SHM
