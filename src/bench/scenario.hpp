// Benchmark scenario interface.
//
// A scenario is one measurable workload (one former bench_* main): it
// receives the shared CLI parameters, runs exactly ONE repetition, and
// returns per-phase metrics. Warmup, repetition, and min/median/p99
// aggregation live in the runner (runner.hpp) so every scenario gets
// them for free.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/schedules.hpp"
#include "support/assert.hpp"
#include "workload/driver.hpp"

namespace scm::bench {

// Shared CLI parameters. `ops` is the per-thread operation count for
// native scenarios and the sweep/effort budget for simulator-backed
// scenarios (each scenario documents how it scales).
struct BenchParams {
  int threads = 4;
  std::uint64_t ops = 1024;
  int reps = 3;
  int warmup = 1;
  std::string schedule = "random";  // sequential | random | sticky:<s> | <seed>
  std::uint64_t seed = 42;
  bool pin = false;  // pin scm-worker-N threads to cores (--pin)

  // Worker placement policy (--topology): none | pin | compact |
  // spread. `pin` is sequential pinning (what --pin sets); compact
  // fills one L3/NUMA domain before the next, spread round-robins
  // across domains (support/topology.hpp). Recorded in the JSON params
  // together with the detected domain count.
  std::string topology = "none";

  // Cross-process (compose.shm) axis: worker-process count and shared
  // segment size. The combiner's slot count is compiled in
  // (bench/shm_e16.hpp) and recorded alongside these in the JSON
  // params as shm_slot_count.
  int shm_procs = 2;
  std::uint64_t shm_segment_bytes = 1 << 20;

  // Whether Adaptive-wrapped scenario objects (compose.adaptive) run
  // with the monitor's actuators live (--adaptive=0 disables them:
  // the wrapper stays in, the decisions stop — the zero-overhead
  // configuration).
  bool adaptive = true;

  // Scales a scenario-internal sweep count from the ops budget.
  [[nodiscard]] int sweeps(std::uint64_t divisor, int lo, int hi) const {
    const std::uint64_t raw = divisor == 0 ? ops : ops / divisor;
    return static_cast<int>(std::clamp<std::uint64_t>(
        raw, static_cast<std::uint64_t>(lo), static_cast<std::uint64_t>(hi)));
  }
};

// Parsed form of --schedule for simulator-backed scenarios. The policy
// governs the *contended* phases of a scenario; scenarios that contrast
// contention-free and contended execution always run their sequential
// phases sequentially.
struct SchedulePolicy {
  enum class Kind { kSequential, kRandom, kSticky };

  Kind kind = Kind::kRandom;
  std::uint64_t seed = 42;
  double stickiness = 0.5;

  // Returns nullopt on malformed input (unknown policy name, non-numeric
  // seed, stickiness outside [0, 1]) — never throws.
  static std::optional<SchedulePolicy> try_parse(const std::string& text,
                                                 std::uint64_t seed) {
    SchedulePolicy p;
    p.seed = seed;
    if (text == "sequential") {
      p.kind = Kind::kSequential;
    } else if (text.rfind("sticky:", 0) == 0) {
      const std::string num = text.substr(7);
      char* end = nullptr;
      p.kind = Kind::kSticky;
      p.stickiness = std::strtod(num.c_str(), &end);
      if (num.empty() || end != num.c_str() + num.size() ||
          !(p.stickiness >= 0.0 && p.stickiness <= 1.0)) {  // NaN-safe
        return std::nullopt;
      }
    } else if (text == "random" || text.empty()) {
      p.kind = Kind::kRandom;
    } else {
      // A bare number selects the random policy with that seed.
      char* end = nullptr;
      p.kind = Kind::kRandom;
      p.seed = std::strtoull(text.c_str(), &end, 10);
      if (end != text.c_str() + text.size()) return std::nullopt;
    }
    return p;
  }

  // For callers past CLI validation (scenarios): malformed input is a
  // programming error here.
  static SchedulePolicy parse(const std::string& text, std::uint64_t seed) {
    const auto p = try_parse(text, seed);
    SCM_CHECK_MSG(p.has_value(), "invalid --schedule policy");
    return *p;
  }

  // Builds the schedule for one simulated execution; `salt` keeps
  // repeated executions within a scenario distinct but deterministic.
  [[nodiscard]] std::unique_ptr<sim::Schedule> make(std::uint64_t salt) const {
    switch (kind) {
      case Kind::kSequential:
        return std::make_unique<sim::SequentialSchedule>();
      case Kind::kSticky:
        return std::make_unique<sim::StickyRandomSchedule>(mix(salt),
                                                           stickiness);
      case Kind::kRandom:
        break;
    }
    return std::make_unique<sim::RandomSchedule>(mix(salt));
  }

 private:
  [[nodiscard]] std::uint64_t mix(std::uint64_t salt) const {
    // splitmix64-style mix so consecutive salts decorrelate.
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (salt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
};

// Metrics for one phase of one repetition. `seconds` is wall-clock time
// (native scenarios only; simulator-backed scenarios leave it 0 and the
// report carries ns_per_op = 0 for them — simulated time is counted in
// steps, not nanoseconds).
struct PhaseMetrics {
  std::string phase;
  std::uint64_t ops = 0;
  double seconds = 0.0;
  std::uint64_t steps = 0;
  std::uint64_t rmws = 0;
  // Scenario-specific counters (abort rates, stage commits, ...).
  std::map<std::string, double> extra;

  [[nodiscard]] double ns_per_op() const {
    return ops == 0 ? 0.0 : seconds * 1e9 / static_cast<double>(ops);
  }
  [[nodiscard]] double steps_per_op() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(steps) / static_cast<double>(ops);
  }
  [[nodiscard]] double rmws_per_op() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(rmws) / static_cast<double>(ops);
  }
};

// Runs `body` on `threads` native threads for `ops` ops each (via the
// shared workload driver) and converts the result into one phase. The
// body type flows through to run_threads's template overload, so the
// per-op call is statically dispatched — scenario hot loops pay no
// std::function indirection.
template <class Body>
PhaseMetrics measure_native(std::string phase, int threads, std::uint64_t ops,
                            const Body& body) {
  const workload::DriverResult r = workload::run_threads(threads, ops, body);
  PhaseMetrics pm;
  pm.phase = std::move(phase);
  pm.ops = r.total_ops;
  pm.seconds = r.seconds;
  pm.steps = r.total_counters().total();
  pm.rmws = r.total_counters().rmws;
  return pm;
}

// Result of one repetition of a scenario. `claim_holds` must be a
// scale-robust check (a safety property that holds at any --ops), not a
// statistical observation; purely statistical observations belong in
// `extra` columns instead.
struct ScenarioResult {
  std::vector<PhaseMetrics> phases;
  std::string claim;
  bool claim_holds = true;
};

}  // namespace scm::bench
