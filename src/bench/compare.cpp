#include "bench/compare.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "support/table.hpp"

namespace scm::bench {

namespace {

// Recursive-descent parser over the writer's output grammar (plus
// ordinary whitespace). Depth-limited so a malicious file cannot blow
// the stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    std::optional<JsonValue> v = value(0);
    skip_ws();
    if (v.has_value() && pos_ != text_.size()) {
      fail("trailing characters after the document");
      v = std::nullopt;
    }
    if (!v.has_value() && error != nullptr) *error = error_;
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::optional<std::string> string() {
    if (!consume('"')) {
      fail("expected '\"'");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          const unsigned long cp =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          // The writer only \u-escapes control characters; anything
          // beyond Latin-1 is preserved as raw UTF-8 and never takes
          // this path.
          out.push_back(static_cast<char>(cp & 0xff));
          break;
        }
        default:
          fail("unknown escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return std::nullopt;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    JsonValue v;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      v.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (consume('}')) return v;
      do {
        auto k = string();
        if (!k.has_value()) return std::nullopt;
        if (!consume(':')) {
          fail("expected ':'");
          return std::nullopt;
        }
        auto member = value(depth + 1);
        if (!member.has_value()) return std::nullopt;
        if (v.find(*k) == nullptr) {
          v.members.emplace_back(std::move(*k), std::move(*member));
        }
      } while (consume(','));
      if (!consume('}')) {
        fail("expected '}'");
        return std::nullopt;
      }
      return v;
    }
    if (c == '[') {
      ++pos_;
      v.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (consume(']')) return v;
      do {
        auto item = value(depth + 1);
        if (!item.has_value()) return std::nullopt;
        v.items.push_back(std::move(*item));
      } while (consume(','));
      if (!consume(']')) {
        fail("expected ']'");
        return std::nullopt;
      }
      return v;
    }
    if (c == '"') {
      auto s = string();
      if (!s.has_value()) return std::nullopt;
      v.kind = JsonValue::Kind::kString;
      v.string = std::move(*s);
      return v;
    }
    if (literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (literal("null")) return v;
    // Number: delegate to strtod, which accepts exactly the forms the
    // writer emits (%.6g plus plain integers).
    {
      char* end = nullptr;
      const double d = std::strtod(text_.c_str() + pos_, &end);
      if (end == text_.c_str() + pos_) {
        fail("unexpected character");
        return std::nullopt;
      }
      pos_ = static_cast<std::size_t>(end - text_.c_str());
      v.kind = JsonValue::Kind::kNumber;
      v.number = d;
      return v;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

std::optional<JsonValue> load_report(const std::string& path,
                                     std::ostream& os) {
  std::ifstream in(path);
  if (!in) {
    os << "--compare: cannot read " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  auto doc = parse_json(buf.str(), &error);
  if (!doc.has_value()) {
    os << "--compare: " << path << ": " << error << "\n";
    return std::nullopt;
  }
  if (const JsonValue* schema = doc->find("schema");
      schema == nullptr || schema->string != "scm-bench/v1") {
    os << "--compare: " << path << " is not an scm-bench/v1 report\n";
    return std::nullopt;
  }
  return doc;
}

struct ScenarioMedian {
  std::string name;
  std::string backend;
  double median = 0.0;
};

std::vector<ScenarioMedian> medians_of(const JsonValue& doc) {
  std::vector<ScenarioMedian> out;
  const JsonValue* scenarios = doc.find("scenarios");
  if (scenarios == nullptr || !scenarios->is_array()) return out;
  for (const JsonValue& s : scenarios->items) {
    const JsonValue* name = s.find("scenario");
    const auto median = s.number_at({"ns_per_op", "median"});
    if (name == nullptr || !name->is_string() || !median.has_value()) {
      continue;
    }
    const JsonValue* backend = s.find("backend");
    out.push_back({name->string,
                   backend != nullptr ? backend->string : std::string(),
                   *median});
  }
  return out;
}

}  // namespace

std::optional<JsonValue> parse_json(const std::string& text,
                                    std::string* error) {
  return Parser(text).parse(error);
}

int run_compare(const std::string& old_path, const std::string& new_path,
                double threshold, std::ostream& os) {
  const auto old_doc = load_report(old_path, os);
  const auto new_doc = load_report(new_path, os);
  if (!old_doc.has_value() || !new_doc.has_value()) return 2;

  const std::vector<ScenarioMedian> olds = medians_of(*old_doc);
  const std::vector<ScenarioMedian> news = medians_of(*new_doc);

  Table t({"scenario", "old ns/op", "new ns/op", "delta", "verdict"});
  int regressions = 0;
  std::size_t compared = 0;
  std::vector<std::string> only_new;
  std::vector<std::string> only_old;
  for (const ScenarioMedian& n : news) {
    const ScenarioMedian* o = nullptr;
    for (const ScenarioMedian& cand : olds) {
      if (cand.name == n.name) {
        o = &cand;
        break;
      }
    }
    if (o == nullptr) {
      t.row(n.name, "-", n.median, "-", "new");
      only_new.push_back(n.name);
      continue;
    }
    // Sub-resolution or sim medians carry no wall-time signal: a
    // 0 → 0.3ns "regression" is clock noise, not a slowdown.
    if (o->median <= 0.0 || n.backend == "sim") {
      t.row(n.name, o->median, n.median, "-", "skipped");
      continue;
    }
    ++compared;
    const double delta = (n.median - o->median) / o->median;
    char delta_buf[32];
    std::snprintf(delta_buf, sizeof(delta_buf), "%+.1f%%", delta * 100.0);
    if (delta > threshold) {
      ++regressions;
      t.row(n.name, o->median, n.median, delta_buf, "REGRESSED");
    } else {
      t.row(n.name, o->median, n.median, delta_buf, "ok");
    }
  }
  for (const ScenarioMedian& o : olds) {
    bool found = false;
    for (const ScenarioMedian& n : news) found = found || n.name == o.name;
    if (!found) {
      t.row(o.name, o.median, "-", "-", "missing");
      only_old.push_back(o.name);
    }
  }

  std::ostringstream title;
  title << "bench compare (threshold " << threshold * 100.0 << "%)";
  t.print(os, title.str());
  // One-sided scenarios never gate (there is nothing to diff), but a
  // diff table that silently drops them is misleading — a renamed or
  // accidentally unregistered scenario would vanish from the gate
  // without a trace. Name them explicitly.
  const auto list_names = [](const std::vector<std::string>& names) {
    std::string joined;
    for (const std::string& n : names) {
      if (!joined.empty()) joined += ", ";
      joined += n;
    }
    return joined;
  };
  if (!only_new.empty()) {
    os << "warning: " << only_new.size()
       << " scenario(s) only in NEW report (no baseline to diff against): "
       << list_names(only_new) << "\n";
  }
  if (!only_old.empty()) {
    os << "warning: " << only_old.size()
       << " scenario(s) only in OLD report (absent from the new run): "
       << list_names(only_old) << "\n";
  }
  os << compared << " compared, " << regressions << " regressed\n";
  return regressions > 0 ? 1 : 0;
}

}  // namespace scm::bench
