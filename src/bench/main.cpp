// scm_bench — the unified benchmark driver.
//
// Every scenario (one per former bench_* binary) registers itself into
// bench::registry(); this driver lists, filters, runs them under shared
// parameters, prints per-phase tables, and optionally writes the
// machine-readable scm-bench/v1 JSON report used to track the perf
// trajectory across PRs.
//
//   scm_bench --list
//   scm_bench --filter=universal --json=BENCH_results.json
//   scm_bench --threads=8 --ops=100000 --reps=5 --warmup=1
//   scm_bench --filter=tas.* --schedule=sticky:0.8
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/compare.hpp"
#include "bench/registry.hpp"
#include "bench/runner.hpp"
#include "bench/shm_role.hpp"
#include "support/table.hpp"
#include "workload/driver.hpp"

namespace {

using namespace scm;
using namespace scm::bench;

void print_usage() {
  std::printf(
      "usage: scm_bench [options]\n"
      "  --list             list registered scenarios and exit\n"
      "  --filter=PAT       run scenarios matching PAT (substring, or glob\n"
      "                     with * and ?; default: all)\n"
      "  --threads=N        thread / process count            (default 4)\n"
      "  --ops=N            per-thread ops / sweep budget     (default 1024)\n"
      "  --reps=N           measured repetitions              (default 3)\n"
      "  --warmup=N         discarded warmup repetitions      (default 1)\n"
      "  --schedule=POLICY  sim schedule: sequential | random | sticky:<s>\n"
      "                     | <seed> (random with that seed; default "
      "random)\n"
      "  --seed=N           base RNG seed                     (default 42)\n"
      "  --pin              pin scm-worker-N threads to cores (native\n"
      "                     scenarios; recorded in the JSON report)\n"
      "  --topology=MODE    worker placement: none | pin | compact |\n"
      "                     spread — compact fills one L3/NUMA domain\n"
      "                     before the next, spread round-robins across\n"
      "                     domains (sysfs topology; recorded in the JSON\n"
      "                     report with the detected domain count)\n"
      "  --shm-role=ROLE    cross-process composition (compose.shm):\n"
      "                     server = run only compose.shm (it forks the\n"
      "                     clients itself); client = internal worker role\n"
      "                     (needs --shm-name and --shm-id)\n"
      "  --shm-procs=N      compose.shm worker-process count  (default 2)\n"
      "  --shm-bytes=N      compose.shm segment size in bytes (default 1MiB)\n"
      "  --shm-name=SEG     [client role] segment to attach\n"
      "  --shm-id=K         [client role] this worker's index\n"
      "  --adaptive=0|1     run Adaptive-wrapped scenarios with the\n"
      "                     contention monitor's actuators live (1,\n"
      "                     default) or frozen (0 — the zero-overhead\n"
      "                     configuration; recorded in the JSON report)\n"
      "  --json=FILE        write the scm-bench/v1 report to FILE\n"
      "  --compare OLD NEW  regression gate: compare two scm-bench/v1\n"
      "                     reports by scenario median ns_per_op and exit\n"
      "                     nonzero on regression (no scenarios are run)\n"
      "  --threshold=T      --compare tolerance as a fraction\n"
      "                     (default 0.25 = +25%%)\n"
      "  --help             this text\n");
}

bool parse_flag(const std::string& arg, const std::string& name,
                std::string* out) {
  const std::string prefix = name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  set_self_exe(argv[0]);  // the compose.shm server re-execs this binary

  BenchParams params;
  std::string filter;
  std::string json_path;
  std::string compare_old;
  std::string compare_new;
  std::string shm_role;
  std::string shm_name;
  int shm_id = -1;
  double compare_threshold = 0.25;
  bool list_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--list") {
      list_only = true;
    } else if (arg == "--compare") {
      if (i + 2 >= argc) {
        std::fprintf(stderr, "--compare needs OLD and NEW report paths\n");
        return 2;
      }
      compare_old = argv[++i];
      compare_new = argv[++i];
    } else if (parse_flag(arg, "--threshold", &value)) {
      compare_threshold = std::atof(value.c_str());
      if (compare_threshold <= 0.0) {
        std::fprintf(stderr, "--threshold must be a positive fraction\n");
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (parse_flag(arg, "--filter", &value)) {
      filter = value;
    } else if (parse_flag(arg, "--threads", &value)) {
      params.threads = std::atoi(value.c_str());
    } else if (parse_flag(arg, "--ops", &value)) {
      params.ops = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(arg, "--reps", &value)) {
      params.reps = std::atoi(value.c_str());
    } else if (parse_flag(arg, "--warmup", &value)) {
      params.warmup = std::atoi(value.c_str());
    } else if (parse_flag(arg, "--schedule", &value)) {
      params.schedule = value;
    } else if (parse_flag(arg, "--seed", &value)) {
      params.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--pin") {
      params.pin = true;
    } else if (parse_flag(arg, "--topology", &value)) {
      params.topology = value;
    } else if (parse_flag(arg, "--shm-role", &value)) {
      shm_role = value;
    } else if (parse_flag(arg, "--shm-name", &value)) {
      shm_name = value;
    } else if (parse_flag(arg, "--shm-id", &value)) {
      shm_id = std::atoi(value.c_str());
    } else if (parse_flag(arg, "--shm-procs", &value)) {
      params.shm_procs = std::atoi(value.c_str());
    } else if (parse_flag(arg, "--shm-bytes", &value)) {
      params.shm_segment_bytes = std::strtoull(value.c_str(), nullptr, 10);
    } else if (parse_flag(arg, "--adaptive", &value)) {
      if (value != "0" && value != "1") {
        std::fprintf(stderr, "--adaptive wants 0 or 1\n");
        return 2;
      }
      params.adaptive = value == "1";
    } else if (parse_flag(arg, "--json", &value)) {
      json_path = value;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n\n", arg.c_str());
      print_usage();
      return 2;
    }
  }
  // Role dispatch for cross-process composition. The client role is
  // the worker half of compose.shm — the scenario's server forks and
  // re-execs this binary with these flags, so this path must stay
  // banner-free and exit with the worker's status code. The server
  // role is a convenience spelling of --filter=compose.shm.
  if (shm_role == "client") {
    if (shm_name.empty() || shm_id < 0) {
      std::fprintf(stderr,
                   "--shm-role=client needs --shm-name=SEG and --shm-id=K\n");
      return 2;
    }
    return run_shm_client(shm_name, shm_id, params.ops);
  }
  if (shm_role == "server") {
    filter = "compose.shm";
  } else if (!shm_role.empty()) {
    std::fprintf(stderr, "unknown --shm-role=%s (want server | client)\n",
                 shm_role.c_str());
    return 2;
  }

  // Compare mode runs no scenarios: parse, diff, exit.
  if (!compare_old.empty()) {
    return run_compare(compare_old, compare_new, compare_threshold,
                       std::cout);
  }

  if (params.threads <= 0 || params.reps <= 0 || params.warmup < 0 ||
      params.ops == 0) {
    std::fprintf(stderr,
                 "invalid parameters: need threads>0, reps>0, warmup>=0, "
                 "ops>0\n");
    return 2;
  }
  if (params.shm_procs <= 0 || params.shm_segment_bytes < (1u << 16)) {
    std::fprintf(stderr,
                 "invalid parameters: need shm-procs>0 and shm-bytes>=64KiB\n");
    return 2;
  }
  if (!SchedulePolicy::try_parse(params.schedule, params.seed).has_value()) {
    std::fprintf(stderr,
                 "invalid --schedule=%s (want sequential | random | "
                 "sticky:<0..1> | <seed>)\n",
                 params.schedule.c_str());
    return 2;
  }
  // Placement: --topology wins over the plain --pin boolean ("pin" is
  // its sequential mode); both are recorded in the JSON params.
  if (params.topology == "none") {
    workload::set_pin_workers(params.pin);
  } else if (params.topology == "pin") {
    workload::set_pin_workers(workload::PinMode::kSequential);
  } else if (params.topology == "compact") {
    workload::set_pin_workers(workload::PinMode::kCompact);
  } else if (params.topology == "spread") {
    workload::set_pin_workers(workload::PinMode::kSpread);
  } else {
    std::fprintf(stderr,
                 "unknown --topology=%s (want none | pin | compact | "
                 "spread)\n",
                 params.topology.c_str());
    return 2;
  }

  const std::vector<ScenarioDef> defs = sorted_registry();
  if (list_only) {
    Table t({"scenario", "experiment", "backend", "description"});
    for (const ScenarioDef& def : defs) {
      t.row(def.name, def.experiment,
            def.backend == Backend::kSim ? "sim" : "native", def.description);
    }
    t.print(std::cout, "registered scenarios");
    return 0;
  }

  RunReport report;
  report.params = params;
  for (const ScenarioDef& def : defs) {
    if (!matches_filter(def.name, filter)) continue;
    const int reps = effective_reps(def, params);
    std::printf("running %-24s (%s, %d rep%s)...\n", def.name.c_str(),
                def.experiment.c_str(), reps, reps == 1 ? "" : "s");
    std::fflush(stdout);
    report.scenarios.push_back(run_scenario(def, params));
  }
  if (report.scenarios.empty()) {
    std::fprintf(stderr, "no scenario matches --filter=%s\n", filter.c_str());
    return 2;
  }

  std::printf("\n");
  print_report(report, std::cout);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 2;
    }
    write_json(report, out);
    std::printf("wrote %s (%zu scenarios)\n", json_path.c_str(),
                report.scenarios.size());
  }

  return report.all_claims_hold() ? 0 : 1;
}
