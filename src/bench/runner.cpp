#include "bench/runner.hpp"

#include <algorithm>
#include <map>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif
#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "bench/json.hpp"
#include "bench/shm_e16.hpp"
#include "support/parking.hpp"
#include "support/table.hpp"
#include "support/topology.hpp"

namespace scm::bench {
namespace {

// Number of CPUs the process is ALLOWED to run on (the affinity mask
// cpuset-restricted containers and taskset impose), as opposed to the
// hardware_concurrency the machine advertises: a t=8 sweep recorded on
// a 2-CPU-mask runner is interpretable only with both numbers. 0 when
// the mask cannot be read (non-Linux hosts).
int affinity_cpus() {
#if defined(__linux__)
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (::sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return 0;
  return CPU_COUNT(&allowed);
#else
  return 0;
#endif
}

// System page size — the granularity shared segments are actually
// sized and mapped at, so compose.shm numbers stay interpretable on
// hosts with non-4K pages. 0 where unqueryable.
long page_size() {
#if defined(__unix__) || defined(__APPLE__)
  const long sz = ::sysconf(_SC_PAGESIZE);
  return sz > 0 ? sz : 0;
#else
  return 0;
#endif
}

// compose.shm's compiled-in publication slot count; 0 when the shm
// subsystem is compiled out on this platform.
int shm_slot_count() {
#if SCM_HAS_POSIX_SHM
  return static_cast<int>(kShmSlots);
#else
  return 0;
#endif
}

// Git SHA the binary was configured from (injected by CMake); reports
// downloaded from CI artifacts carry their own provenance.
const char* build_git_sha() {
#if defined(SCM_GIT_SHA)
  return SCM_GIT_SHA;
#else
  return "unknown";
#endif
}

struct PhaseAccumulator {
  std::uint64_t ops = 0;
  Samples ns_per_op;
  Samples steps_per_op;
  Samples rmws_per_op;
  std::map<std::string, Samples> extra;
  std::size_t first_seen = 0;  // keeps the scenario's phase order stable
};

void write_summary(JsonWriter& w, const std::string& key, const Summary& s) {
  w.key(key).begin_object();
  w.kv("min", s.min).kv("median", s.median).kv("p99", s.p99).kv("mean", s.mean);
  w.end_object();
}

}  // namespace

ScenarioReport run_scenario(const ScenarioDef& def, const BenchParams& params) {
  // Simulator-backed scenarios are deterministic functions of the
  // parameters: every repetition would recompute a byte-identical
  // result, so they run exactly once and need no warmup. Warmup and
  // repetition only pay off where wall-clock noise exists (native).
  const bool deterministic = def.backend == Backend::kSim;
  const int warmup = deterministic ? 0 : params.warmup;
  const int reps = effective_reps(def, params);

  ScenarioReport report;
  report.scenario = def.name;
  report.experiment = def.experiment;
  report.backend = deterministic ? "sim" : "native";
  report.reps = reps;
  report.claim_holds = true;

  for (int w = 0; w < warmup; ++w) {
    (void)def.run(params);
  }

  std::map<std::string, PhaseAccumulator> phases;
  std::size_t phase_counter = 0;
  Samples total_ns, total_steps, total_rmws;
  for (int rep = 0; rep < reps; ++rep) {
    const ScenarioResult result = def.run(params);
    report.claim = result.claim;
    report.claim_holds = report.claim_holds && result.claim_holds;

    std::uint64_t rep_ops = 0, rep_steps = 0, rep_rmws = 0;
    double rep_seconds = 0.0;
    for (const PhaseMetrics& pm : result.phases) {
      auto [it, inserted] = phases.try_emplace(pm.phase);
      PhaseAccumulator& acc = it->second;
      if (inserted) acc.first_seen = phase_counter++;
      acc.ops = pm.ops;
      acc.ns_per_op.add(pm.ns_per_op());
      acc.steps_per_op.add(pm.steps_per_op());
      acc.rmws_per_op.add(pm.rmws_per_op());
      for (const auto& [k, v] : pm.extra) acc.extra[k].add(v);
      rep_ops += pm.ops;
      rep_steps += pm.steps;
      rep_rmws += pm.rmws;
      rep_seconds += pm.seconds;
    }
    const double denom = rep_ops == 0 ? 1.0 : static_cast<double>(rep_ops);
    total_ns.add(rep_seconds * 1e9 / denom);
    total_steps.add(static_cast<double>(rep_steps) / denom);
    total_rmws.add(static_cast<double>(rep_rmws) / denom);
  }

  report.ns_per_op = total_ns.summary();
  report.steps_per_op = total_steps.summary();
  report.rmws_per_op = total_rmws.summary();

  std::vector<std::pair<std::string, PhaseAccumulator>> ordered(
      std::make_move_iterator(phases.begin()),
      std::make_move_iterator(phases.end()));
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    return a.second.first_seen < b.second.first_seen;
  });
  for (auto& [name, acc] : ordered) {
    PhaseReport pr;
    pr.phase = name;
    pr.ops = acc.ops;
    pr.ns_per_op = acc.ns_per_op.summary();
    pr.steps_per_op = acc.steps_per_op.summary();
    pr.rmws_per_op = acc.rmws_per_op.summary();
    for (auto& [k, samples] : acc.extra) {
      pr.extra.emplace_back(k, samples.mean());
    }
    report.phases.push_back(std::move(pr));
  }
  return report;
}

void write_json(const RunReport& report, std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "scm-bench/v1");

  w.key("params").begin_object();
  w.kv("threads", report.params.threads)
      .kv("ops", report.params.ops)
      .kv("reps", report.params.reps)
      .kv("warmup", report.params.warmup)
      .kv("schedule", report.params.schedule)
      .kv("seed", report.params.seed)
      .kv("pin", report.params.pin)
      // Execution environment, so downloaded artifacts stay
      // interpretable: an 8-thread sweep means something different on
      // 2 allowed CPUs than on 16. Additive keys — scm-bench/v1
      // consumers that key on the original fields are unaffected.
      .kv("hardware_concurrency",
          static_cast<int>(std::thread::hardware_concurrency()))
      .kv("affinity_cpus", affinity_cpus())
      .kv("git_sha", build_git_sha())
      // Cross-process (compose.shm) parameters — additive keys like
      // the environment block above.
      .kv("page_size", static_cast<std::uint64_t>(page_size()))
      .kv("shm_procs", report.params.shm_procs)
      .kv("shm_segment_bytes", report.params.shm_segment_bytes)
      .kv("shm_slot_count", shm_slot_count())
      // Placement + parking provenance — additive keys again: which
      // worker-placement policy ran (--topology), how many L3/NUMA
      // domains the host sysfs reported, and which rung-3 wait
      // implementation the binary was built with (futex vs the forced
      // yield fallback), since the slow-path numbers differ.
      .kv("topology", report.params.topology)
      .kv("topology_domains", CpuTopology::system().domain_count())
      .kv("wait_mode", wait_mode_name(kDefaultWaitMode))
      // Whether Adaptive-wrapped scenarios ran with live actuators
      // (--adaptive) — additive key, same contract as above.
      .kv("adaptive", report.params.adaptive);
  w.end_object();

  w.key("scenarios").begin_array();
  for (const ScenarioReport& s : report.scenarios) {
    w.begin_object();
    w.kv("scenario", s.scenario)
        .kv("experiment", s.experiment)
        .kv("backend", s.backend)
        .kv("reps", s.reps);
    w.key("claim").begin_object();
    w.kv("text", s.claim).kv("holds", s.claim_holds);
    w.end_object();
    write_summary(w, "ns_per_op", s.ns_per_op);
    write_summary(w, "steps_per_op", s.steps_per_op);
    write_summary(w, "rmws_per_op", s.rmws_per_op);
    w.key("phases").begin_array();
    for (const PhaseReport& p : s.phases) {
      w.begin_object();
      w.kv("phase", p.phase).kv("ops", p.ops);
      write_summary(w, "ns_per_op", p.ns_per_op);
      write_summary(w, "steps_per_op", p.steps_per_op);
      write_summary(w, "rmws_per_op", p.rmws_per_op);
      w.key("extra").begin_object();
      for (const auto& [k, v] : p.extra) w.kv(k, v);
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void print_report(const RunReport& report, std::ostream& os) {
  for (const ScenarioReport& s : report.scenarios) {
    Table t({"phase", "ops", "ns/op (med)", "steps/op (med)", "rmws/op (med)"});
    for (const PhaseReport& p : s.phases) {
      t.row(p.phase, p.ops, p.ns_per_op.median, p.steps_per_op.median,
            p.rmws_per_op.median);
    }
    t.print(os, s.scenario + " (" + s.experiment + ", " + s.backend + ")");
    os << "claim: " << s.claim << " -> "
       << (s.claim_holds ? "HOLDS" : "VIOLATED") << "\n\n";
  }
}

}  // namespace scm::bench
