// Measurement layer of the benchmark subsystem: runs a scenario's
// warmup and measured repetitions, aggregates per-phase metrics into
// min/median/p99/mean summaries, and serializes the stable
// `scm-bench/v1` JSON report schema.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "bench/registry.hpp"
#include "bench/scenario.hpp"
#include "support/stats.hpp"

namespace scm::bench {

struct PhaseReport {
  std::string phase;
  std::uint64_t ops = 0;  // per repetition (taken from the last rep)
  Summary ns_per_op;
  Summary steps_per_op;
  Summary rmws_per_op;
  // Scenario-specific counters, averaged across repetitions.
  std::vector<std::pair<std::string, double>> extra;
};

struct ScenarioReport {
  std::string scenario;
  std::string experiment;
  std::string backend;  // "sim" | "native"
  int reps = 0;
  std::string claim;
  bool claim_holds = true;
  // Whole-scenario aggregates (ops-weighted across phases, then
  // summarized across repetitions).
  Summary ns_per_op;
  Summary steps_per_op;
  Summary rmws_per_op;
  std::vector<PhaseReport> phases;
};

struct RunReport {
  BenchParams params;
  std::vector<ScenarioReport> scenarios;

  [[nodiscard]] bool all_claims_hold() const {
    for (const auto& s : scenarios) {
      if (!s.claim_holds) return false;
    }
    return true;
  }
};

// Repetitions the runner will actually execute: simulator-backed
// scenarios are deterministic in the parameters, so they run exactly
// once (reps/warmup apply to native scenarios).
inline int effective_reps(const ScenarioDef& def, const BenchParams& params) {
  return def.backend == Backend::kSim ? 1 : params.reps;
}

// Runs `params.warmup` discarded repetitions followed by
// `effective_reps()` measured ones and aggregates the result.
ScenarioReport run_scenario(const ScenarioDef& def, const BenchParams& params);

// Serializes the report as schema `scm-bench/v1`.
void write_json(const RunReport& report, std::ostream& os);

// Human-readable summary tables.
void print_report(const RunReport& report, std::ostream& os);

}  // namespace scm::bench
