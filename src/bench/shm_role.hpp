// The --shm-role plumbing of scm_bench.
//
// compose.shm (E16) is a MULTI-PROCESS scenario: the scenario body
// acts as the server (creates the segment, forks/execs this same
// binary N times, serves and reconciles), and each re-execed copy runs
// run_shm_client() instead of the scenario loop. main.cpp dispatches
// on --shm-role and stashes argv[0] here so the server can re-exec
// itself even where /proc/self/exe is unavailable.
#pragma once

#include <cstdint>
#include <string>

namespace scm::bench {

// Called once from main() before anything forks.
void set_self_exe(const char* argv0);

// Best available path to the running binary: /proc/self/exe when it
// resolves (Linux), the stashed argv[0] otherwise.
std::string self_exe();

// The client role (--shm-role=client --shm-name=SEG --shm-id=K
// --ops=N): attach to SEG (with retry — the client may win the race
// against the server's publish), resolve the E16 objects by name,
// check type tags, park at the start barrier, then submit `ops`
// fetch&increment ops into the shared combiner with
// may_combine = false, advancing this client's accounting cell around
// every op. Returns a process exit code: 0 success, 3 an op failed to
// commit, 4 attach timed out, 5 resolve/type-tag mismatch, 6 shm
// unsupported on this platform.
int run_shm_client(const std::string& segment, int client_id,
                   std::uint64_t ops);

}  // namespace scm::bench
