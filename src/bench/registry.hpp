// Scenario registry: every former bench binary registers itself here
// (via a static Registrar in its translation unit) and the single
// scm_bench driver lists, filters, and runs them.
#pragma once

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "bench/scenario.hpp"

namespace scm::bench {

// Which platform the scenario measures on. Simulator scenarios report
// exact step counts; native scenarios add wall-clock ns/op.
enum class Backend { kSim, kNative };

struct ScenarioDef {
  std::string name;         // stable id, e.g. "tas.steps"
  std::string experiment;   // paper experiment it reproduces, e.g. "E1"
  std::string description;  // one line for --list
  Backend backend = Backend::kSim;
  std::function<ScenarioResult(const BenchParams&)> run;
};

inline std::vector<ScenarioDef>& registry() {
  static std::vector<ScenarioDef> defs;
  return defs;
}

// Registry sorted by name, for stable --list and JSON output.
inline std::vector<ScenarioDef> sorted_registry() {
  std::vector<ScenarioDef> defs = registry();
  std::sort(defs.begin(), defs.end(),
            [](const ScenarioDef& a, const ScenarioDef& b) {
              return a.name < b.name;
            });
  return defs;
}

struct Registrar {
  explicit Registrar(ScenarioDef def) { registry().push_back(std::move(def)); }
};

// Glob-lite matching for --filter: '*' matches any substring, '?' any
// single character; anything else is literal. A pattern without '*' is
// treated as a substring match so `--filter=universal` selects both
// universal.* scenarios.
inline bool matches_filter(const std::string& name,
                           const std::string& pattern) {
  if (pattern.empty()) return true;
  if (pattern.find('*') == std::string::npos &&
      pattern.find('?') == std::string::npos) {
    return name.find(pattern) != std::string::npos;
  }
  std::function<bool(std::size_t, std::size_t)> match =
      [&](std::size_t ni, std::size_t pi) -> bool {
    while (pi < pattern.size()) {
      if (pattern[pi] == '*') {
        for (std::size_t skip = ni; skip <= name.size(); ++skip) {
          if (match(skip, pi + 1)) return true;
        }
        return false;
      }
      if (ni >= name.size()) return false;
      if (pattern[pi] != '?' && pattern[pi] != name[ni]) return false;
      ++ni;
      ++pi;
    }
    return ni == name.size();
  };
  return match(0, 0);
}

}  // namespace scm::bench

// Registers a scenario. Use at namespace scope in the scenario's TU:
//   SCM_BENCH_REGISTER("tas.steps", "E1", "....", Backend::kSim, run_fn);
#define SCM_BENCH_REGISTER(name, experiment, description, backend, fn)     \
  static const ::scm::bench::Registrar scm_bench_registrar_##fn{           \
      ::scm::bench::ScenarioDef{name, experiment, description, backend, fn}}
