#include "bench/shm_role.hpp"

#include "shm/shm_arena.hpp"  // defines SCM_HAS_POSIX_SHM

#if SCM_HAS_POSIX_SHM
#include <unistd.h>
#endif

#include <chrono>
#include <optional>
#include <thread>

#include "bench/shm_e16.hpp"
#include "history/specs.hpp"
#include "runtime/context.hpp"

namespace scm::bench {

namespace {
std::string g_self_exe;  // argv[0], stashed before any fork
}  // namespace

void set_self_exe(const char* argv0) {
  g_self_exe = argv0 == nullptr ? "" : argv0;
}

std::string self_exe() {
#if defined(__linux__)
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) return std::string(buf, static_cast<std::size_t>(n));
#endif
  return g_self_exe;
}

#if SCM_HAS_POSIX_SHM

int run_shm_client(const std::string& segment, int client_id,
                   std::uint64_t ops) {
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::seconds(10);

  // Attach with retry: the server creates/publishes before forking,
  // but a client must also survive being started early (or the server
  // being descheduled mid-setup). The magic check inside attach()
  // rejects half-initialized segments, so retrying is safe.
  std::optional<ShmArena> arena;
  while (!(arena = ShmArena::attach(segment)).has_value()) {
    if (clock::now() > deadline) return 4;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto combining = arena->resolve(kE16CombiningName);
  const auto cells = arena->resolve(kE16CellsName);
  const auto barrier = arena->resolve(kE16BarrierName);
  if (!combining || !cells || !barrier) return 5;
  // Fail fast before the first shared access: a tag mismatch means the
  // server was built from a different ShmCombining instantiation (or a
  // different slot-protocol revision) and the layouts cannot be mixed.
  if (combining->type_tag != E16Combining::kTypeTag ||
      cells->type_tag != kE16CellsTag || barrier->type_tag != kE16BarrierTag ||
      cells->size <
          (static_cast<std::uint64_t>(client_id) + 1) * sizeof(E16ClientCell)) {
    return 5;
  }

  E16Combining& comb = *arena->at<E16Combining>(combining->offset);
  E16ClientCell& cell =
      arena->at<E16ClientCell>(cells->offset)[client_id];
  ShmSpinBarrier& start = *arena->at<ShmSpinBarrier>(barrier->offset);

  NativeContext ctx(client_id);
  start.arrive_and_wait();

  for (std::uint64_t i = 0; i < ops; ++i) {
    // started before publish / completed after collect: a SIGKILL at
    // any point leaves at most one op between the two counts.
    cell.started.store(i + 1, std::memory_order_release);
    const Request r{(static_cast<std::uint64_t>(client_id) << 40) | (i + 1),
                    static_cast<ProcessId>(client_id),
                    CounterSpec::kFetchInc, 0};
    // Publication only (may_combine = false): this process can die
    // holding a slot but never the gate mid-batch, which is what makes
    // the server's crash reconciliation exact.
    const ModuleResult res =
        comb.invoke(ctx, r, std::nullopt, /*may_combine=*/false);
    if (!res.committed()) return 3;
    cell.completed.store(i + 1, std::memory_order_release);
  }
  return 0;
}

#else  // !SCM_HAS_POSIX_SHM

int run_shm_client(const std::string&, int, std::uint64_t) { return 6; }

#endif

}  // namespace scm::bench
