// Minimal streaming JSON writer for the BENCH_results.json reports.
// Handles string escaping and non-finite doubles (emitted as null) so
// the output is always standard JSON; nesting is tracked so keys and
// commas cannot be misplaced.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "support/assert.hpp"

namespace scm::bench {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object() {
    before_value();
    os_ << '{';
    stack_.push_back(Frame{/*is_object=*/true, /*count=*/0});
    return *this;
  }
  JsonWriter& end_object() {
    SCM_CHECK(!stack_.empty() && stack_.back().is_object);
    stack_.pop_back();
    os_ << '}';
    return *this;
  }
  JsonWriter& begin_array() {
    before_value();
    os_ << '[';
    stack_.push_back(Frame{/*is_object=*/false, /*count=*/0});
    return *this;
  }
  JsonWriter& end_array() {
    SCM_CHECK(!stack_.empty() && !stack_.back().is_object);
    stack_.pop_back();
    os_ << ']';
    return *this;
  }

  JsonWriter& key(const std::string& k) {
    SCM_CHECK(!stack_.empty() && stack_.back().is_object);
    separate();
    write_string(k);
    os_ << ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& v) {
    before_value();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(bool v) {
    before_value();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    before_value();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) {
    before_value();
    os_ << v;
    return *this;
  }
  JsonWriter& value(double v) {
    before_value();
    if (!std::isfinite(v)) {
      os_ << "null";
      return *this;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    os_ << buf;
    return *this;
  }

  template <class T>
  JsonWriter& kv(const std::string& k, const T& v) {
    key(k);
    return value(v);
  }

  [[nodiscard]] bool done() const { return stack_.empty(); }

 private:
  struct Frame {
    bool is_object;
    int count;
  };

  void separate() {
    if (stack_.back().count++ > 0) os_ << ',';
  }

  void before_value() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!stack_.empty()) {
      SCM_CHECK_MSG(!stack_.back().is_object,
                    "JSON object member emitted without a key");
      separate();
    }
  }

  void write_string(const std::string& s) {
    os_ << '"';
    for (char c : s) {
      switch (c) {
        case '"':
          os_ << "\\\"";
          break;
        case '\\':
          os_ << "\\\\";
          break;
        case '\n':
          os_ << "\\n";
          break;
        case '\t':
          os_ << "\\t";
          break;
        case '\r':
          os_ << "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

}  // namespace scm::bench
