// Benchmark regression gate: `scm_bench --compare old.json new.json`
// reads two scm-bench/v1 reports and fails (nonzero exit) when any
// scenario's median ns_per_op regressed beyond the threshold.
//
// The committed BENCH_*.json baselines make the perf trajectory
// first-class: CI regenerates the same sweep and compares it against
// the committed file, so a slowdown shows up as a failing (or, while
// the gate is advisory, loudly annotated) step instead of a silent
// drift across PRs.
//
// The JsonValue parser below is the minimal counterpart of
// json.hpp's writer — it exists so the repository can read its own
// reports without growing a dependency; it is not a general-purpose
// JSON library (no \uXXXX decoding beyond ASCII, numbers as double).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace scm::bench {

// A parsed JSON document node. Object members preserve insertion
// order (the writer's order), duplicate keys keep the first.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                               // kArray
  std::vector<std::pair<std::string, JsonValue>> members;     // kObject

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }

  // Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  // Convenience: the numeric value of a (possibly nested) member, or
  // nullopt anywhere along the path.
  [[nodiscard]] std::optional<double> number_at(
      std::initializer_list<const char*> path) const {
    const JsonValue* v = this;
    for (const char* key : path) {
      if (v == nullptr) return std::nullopt;
      v = v->find(key);
    }
    if (v == nullptr || !v->is_number()) return std::nullopt;
    return v->number;
  }
};

// Parses a complete JSON document. Returns nullopt (with *error set,
// when given) on malformed input or trailing garbage.
[[nodiscard]] std::optional<JsonValue> parse_json(
    const std::string& text, std::string* error = nullptr);

// The --compare entry point: loads both reports, matches scenarios by
// name, and compares scenario-level median ns_per_op. A scenario
// regresses when new > old * (1 + threshold); scenarios present in
// only one report never gate, but are listed in the table AND called
// out in explicit post-table warning lines naming each one-sided
// scenario — a rename or a dropped registration must not vanish from
// the gate silently. Returns the process exit code: 0 = no
// regression, 1 = regression, 2 = unreadable input.
int run_compare(const std::string& old_path, const std::string& new_path,
                double threshold, std::ostream& os);

}  // namespace scm::bench
