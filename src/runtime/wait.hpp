// The blocking-point seam between platforms.
//
// Every combining-style layer has wait loops ("until my slot turns
// kDone", "until the election lock frees") that used to be raw native
// spins — which made the whole slot protocol invisible to the
// deterministic simulator: a spinning thread never parks, so the
// step-granting scheduler can neither interleave nor terminate it.
// wait_until() is the one place that duality now lives:
//
//   * NativeContext (no await support): spin on the predicate with the
//     shared backoff ladder — exactly the wait the native wrappers
//     always performed, minus the per-iteration lock hammering (the
//     caller re-attempts its RMW only after the predicate turns true,
//     a test-and-test-and-set discipline).
//   * SimContext (kCanAwait): park in SimContext::await. The scheduler
//     excludes the process from the runnable set until the predicate
//     holds, so sim::explore's interleaving tree stays finite and a
//     lost wakeup surfaces as a loud simulated deadlock.
//
// Contract for callers: the predicate must be a pure condition over
// shared state (no side effects, no steps — it may be evaluated by the
// sim controller outside any grant), and wait_until returning only
// means the predicate HELD at some instant — re-validate with a real
// RMW afterwards, as with any condition-variable wakeup.
#pragma once

#include <type_traits>
#include <utility>

#include "support/backoff.hpp"

namespace scm {

namespace detail {

// Contexts that can park on a condition mark themselves with
// `static constexpr bool kCanAwait = true` (SimContext); everything
// else falls back to the native spin.
template <class Ctx, class = void>
struct context_can_await : std::false_type {};

template <class Ctx>
struct context_can_await<Ctx, std::void_t<decltype(Ctx::kCanAwait)>>
    : std::bool_constant<Ctx::kCanAwait> {};

template <class Ctx>
inline constexpr bool context_can_await_v = context_can_await<Ctx>::value;

}  // namespace detail

template <class Ctx, class Pred>
void wait_until(Ctx& ctx, Pred&& pred) {
  if constexpr (detail::context_can_await_v<Ctx>) {
    ctx.await(std::forward<Pred>(pred));
  } else {
    (void)ctx;
    int spins = 0;
    while (!pred()) spin_backoff(spins);
  }
}

}  // namespace scm
