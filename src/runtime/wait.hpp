// The blocking-point seam between platforms.
//
// Every combining-style layer has wait loops ("until my slot turns
// kDone", "until the election lock frees") that used to be raw native
// spins — which made the whole slot protocol invisible to the
// deterministic simulator: a spinning thread never parks, so the
// step-granting scheduler can neither interleave nor terminate it.
// wait_until() is the one place that duality now lives:
//
//   * NativeContext (no await support): spin on the predicate with the
//     shared backoff ladder — exactly the wait the native wrappers
//     always performed, minus the per-iteration lock hammering (the
//     caller re-attempts its RMW only after the predicate turns true,
//     a test-and-test-and-set discipline). The overload taking a
//     WaitPoint adds the third rung: once the ladder saturates, the
//     waiter parks on the point's futex word and a waker's wake_all()
//     resumes it (support/parking.hpp) — spin, then yield, then sleep.
//   * SimContext (kCanAwait): park in SimContext::await. The scheduler
//     excludes the process from the runnable set until the predicate
//     holds, so sim::explore's interleaving tree stays finite and a
//     lost wakeup surfaces as a loud simulated deadlock. The WaitPoint
//     overload routes sim contexts to the SAME await call and never
//     touches the point — the simulator's park already is rung 3, and
//     the interleaving tree must not depend on native wait plumbing
//     (slot_protocol_explore_test pins the schedule counts).
//
// Contract for callers: the predicate must be a pure condition over
// shared state (no side effects, no steps — it may be evaluated by the
// sim controller outside any grant), and wait_until returning only
// means the predicate HELD at some instant — re-validate with a real
// RMW afterwards, as with any condition-variable wakeup.
#pragma once

#include <type_traits>
#include <utility>

#include "support/backoff.hpp"
#include "support/parking.hpp"

namespace scm {

namespace detail {

// Contexts that can park on a condition mark themselves with
// `static constexpr bool kCanAwait = true` (SimContext); everything
// else falls back to the native spin.
template <class Ctx, class = void>
struct context_can_await : std::false_type {};

template <class Ctx>
struct context_can_await<Ctx, std::void_t<decltype(Ctx::kCanAwait)>>
    : std::bool_constant<Ctx::kCanAwait> {};

template <class Ctx>
inline constexpr bool context_can_await_v = context_can_await<Ctx>::value;

}  // namespace detail

template <class Ctx, class Pred>
void wait_until(Ctx& ctx, Pred&& pred) {
  if constexpr (detail::context_can_await_v<Ctx>) {
    ctx.await(std::forward<Pred>(pred));
  } else {
    (void)ctx;
    int spins = 0;
    while (!pred()) (void)spin_backoff(spins);
  }
}

// The parking variant: native contexts escalate spin → yield → park on
// `wp` once the backoff ladder saturates; the waker responsible for
// the predicate must call wp.wake_all() after its state change.
// Awaitable contexts ignore the WaitPoint entirely (see file comment).
template <class Ctx, class Pred, FutexScope kScope, WaitMode kMode>
void wait_until(Ctx& ctx, Pred&& pred, WaitPoint<kScope, kMode>& wp) {
  if constexpr (detail::context_can_await_v<Ctx>) {
    (void)wp;
    ctx.await(std::forward<Pred>(pred));
  } else {
    (void)ctx;
    parked_wait(wp, pred);
  }
}

}  // namespace scm
