// The Platform concept.
//
// Every algorithm in this library is a template over a Platform that
// supplies the shared-memory base objects and the execution context:
//
//   P::Context            — per-process execution context (step hooks)
//   P::Register<T>        — MWMR atomic register
//   P::Tas                — hardware test-and-set
//   P::Cas<T>             — hardware compare-and-swap
//   P::Counter            — fetch-and-add counter
//
// Two platforms are provided: NativePlatform (std::atomic, real
// threads; used by benchmarks and examples) and sim::SimPlatform
// (deterministic scheduler; used by tests and model-level benches).
// Algorithm code is byte-for-byte identical across the two.
#pragma once

#include <concepts>

#include "runtime/context.hpp"
#include "runtime/primitives.hpp"
#include "runtime/registers.hpp"

namespace scm {

// Minimal structural requirements on a platform context.
template <class Ctx>
concept ExecutionContext = requires(Ctx c) {
  { c.id() } -> std::convertible_to<ProcessId>;
  { c.counters() } -> std::convertible_to<StepCounters&>;
  c.on_read();
  c.on_write();
  c.on_rmw();
};

struct NativePlatform {
  using Context = NativeContext;
  template <class T>
  using Register = NativeRegister<T>;
  using Tas = NativeTas;
  template <class T>
  using Cas = NativeCas<T>;
  using Counter = NativeCounter;
};

static_assert(ExecutionContext<NativePlatform::Context>);

}  // namespace scm
