// Native hardware primitives: test-and-set, compare-and-swap and
// fetch-and-add, each tagged with its consensus number so composed
// algorithms can statically assert the paper's "consensus number at
// most two" claims.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

#include "support/cacheline.hpp"
#include "runtime/context.hpp"
#include "runtime/ids.hpp"

namespace scm {

// Hardware test-and-set: one RMW step. Returns the *previous* value
// (0 => the caller won). Resettable for long-lived use.
class alignas(kCacheLineSize) NativeTas {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberTas;

  NativeTas() = default;
  NativeTas(const NativeTas&) = delete;
  NativeTas& operator=(const NativeTas&) = delete;

  template <class Ctx>
  [[nodiscard]] int test_and_set(Ctx& ctx) noexcept {
    ctx.on_rmw();
    return cell_.exchange(1, std::memory_order_seq_cst);
  }

  template <class Ctx>
  [[nodiscard]] int read(Ctx& ctx) const noexcept {
    ctx.on_read();
    return cell_.load(std::memory_order_seq_cst);
  }

  // Model-level reset (used by the long-lived wrapper; the paper resets
  // by moving to a fresh object, but a reusable cell is also offered).
  void reset() noexcept { cell_.store(0, std::memory_order_seq_cst); }

  [[nodiscard]] int peek() const noexcept {
    return cell_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int> cell_{0};
};

// Hardware compare-and-swap register (consensus number infinity).
template <class T>
class alignas(kCacheLineSize) NativeCas {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  static constexpr int kConsensusNumber = kConsensusNumberCas;

  NativeCas() = default;
  explicit NativeCas(T initial) noexcept : cell_(initial) {}
  NativeCas(const NativeCas&) = delete;
  NativeCas& operator=(const NativeCas&) = delete;

  // Single-shot CAS: one RMW step. On failure `expected` is updated to
  // the current value, matching std::atomic::compare_exchange_strong.
  template <class Ctx>
  [[nodiscard]] bool compare_and_swap(Ctx& ctx, T& expected, T desired) noexcept {
    ctx.on_rmw();
    return cell_.compare_exchange_strong(expected, desired,
                                         std::memory_order_seq_cst,
                                         std::memory_order_seq_cst);
  }

  template <class Ctx>
  [[nodiscard]] T read(Ctx& ctx) const noexcept {
    ctx.on_read();
    return cell_.load(std::memory_order_seq_cst);
  }

  template <class Ctx>
  void write(Ctx& ctx, T value) noexcept {
    ctx.on_write();
    cell_.store(value, std::memory_order_seq_cst);
  }

  [[nodiscard]] T peek() const noexcept {
    return cell_.load(std::memory_order_relaxed);
  }
  void reset(T value) noexcept {
    cell_.store(value, std::memory_order_relaxed);
  }

 private:
  std::atomic<T> cell_{};
};

// Fetch-and-add counter (consensus number 2). Used by the universal
// construction to assign timestamps and by the long-lived TAS `Count`.
class alignas(kCacheLineSize) NativeCounter {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberFetchAdd;

  NativeCounter() = default;
  NativeCounter(const NativeCounter&) = delete;
  NativeCounter& operator=(const NativeCounter&) = delete;

  template <class Ctx>
  [[nodiscard]] std::uint64_t fetch_add(Ctx& ctx, std::uint64_t d = 1) noexcept {
    ctx.on_rmw();
    return cell_.fetch_add(d, std::memory_order_seq_cst);
  }

  template <class Ctx>
  [[nodiscard]] std::uint64_t read(Ctx& ctx) const noexcept {
    ctx.on_read();
    return cell_.load(std::memory_order_seq_cst);
  }

  [[nodiscard]] std::uint64_t peek() const noexcept {
    return cell_.load(std::memory_order_relaxed);
  }
  void reset(std::uint64_t v = 0) noexcept {
    cell_.store(v, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> cell_{0};
};

}  // namespace scm
