// Native multi-writer multi-reader atomic registers.
//
// The model of the paper gives processes linearizable read/write
// registers. std::atomic<T> loads/stores with seq_cst provide exactly
// that (and the algorithms of the paper — splitters, the A1 racing
// pattern, the bakery — need the store-load ordering that weaker
// orders would forfeit). Each register is padded onto its own cache
// line so that register-level step counts translate into cache-level
// behaviour without false-sharing artifacts.
#pragma once

#include <atomic>
#include <type_traits>

#include "support/cacheline.hpp"
#include "runtime/context.hpp"
#include "runtime/ids.hpp"

namespace scm {

template <class T>
class alignas(kCacheLineSize) NativeRegister {
  static_assert(std::is_trivially_copyable_v<T>,
                "atomic registers hold trivially copyable values");

 public:
  static constexpr int kConsensusNumber = kConsensusNumberRegister;

  NativeRegister() = default;
  explicit NativeRegister(T initial) noexcept : cell_(initial) {}

  // Registers are shared objects; they are neither copied nor moved.
  NativeRegister(const NativeRegister&) = delete;
  NativeRegister& operator=(const NativeRegister&) = delete;

  template <class Ctx>
  [[nodiscard]] T read(Ctx& ctx) const noexcept {
    ctx.on_read();
    return cell_.load(std::memory_order_seq_cst);
  }

  template <class Ctx>
  void write(Ctx& ctx, T value) noexcept {
    ctx.on_write();
    cell_.store(value, std::memory_order_seq_cst);
  }

  // Unsynchronized accessors for setup/teardown and assertions outside
  // the measured execution (never called from algorithm code).
  [[nodiscard]] T peek() const noexcept {
    return cell_.load(std::memory_order_relaxed);
  }
  void reset(T value) noexcept {
    cell_.store(value, std::memory_order_relaxed);
  }

 private:
  std::atomic<T> cell_{};
};

}  // namespace scm
