// Native execution context: identifies the running process and counts
// its shared-memory steps inline (no synchronization — each context is
// owned by exactly one thread).
#pragma once

#include "runtime/ids.hpp"

namespace scm {

class NativeContext {
 public:
  // Native threads may block (spin on combiner progress, park in a
  // publication round trip): the async submission layer keys on this
  // to pick publish-and-return over inline completion. The simulated
  // context deliberately lacks the marker — its on_*() hooks hand
  // control to a step-granting scheduler that cannot express blocking
  // helping, so async submission completes inline there.
  static constexpr bool kCanBlock = true;

  NativeContext() = default;
  explicit NativeContext(ProcessId id) noexcept : id_(id) {}

  [[nodiscard]] ProcessId id() const noexcept { return id_; }

  [[nodiscard]] StepCounters& counters() noexcept { return counters_; }
  [[nodiscard]] const StepCounters& counters() const noexcept {
    return counters_;
  }

  // Hooks invoked by shared-memory primitives before each access. The
  // simulated platform's context has the same interface but also parks
  // the calling thread until the scheduler grants the step.
  void on_read() noexcept { ++counters_.reads; }
  void on_write() noexcept { ++counters_.writes; }
  void on_rmw() noexcept { ++counters_.rmws; }

 private:
  ProcessId id_ = kInvalidProcess;
  StepCounters counters_{};
};

}  // namespace scm
