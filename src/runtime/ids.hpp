// Process identities and per-process step accounting.
//
// The paper's complexity metrics count *shared-memory steps* (register
// reads/writes and RMW operations). Every platform context carries a
// StepCounters instance that the shared-memory primitives bump, so step
// complexity is measured identically on the native and the simulated
// platform.
#pragma once

#include <cstdint>

namespace scm {

using ProcessId = std::int32_t;
inline constexpr ProcessId kInvalidProcess = -1;

// Consensus-number tags for base objects (Herlihy's hierarchy [14]).
// We use INT32_MAX to stand for "infinity" (compare-and-swap).
inline constexpr int kConsensusNumberRegister = 1;
inline constexpr int kConsensusNumberTas = 2;
inline constexpr int kConsensusNumberFetchAdd = 2;
inline constexpr int kConsensusNumberCas = INT32_MAX;

struct StepCounters {
  std::uint64_t reads = 0;   // atomic register reads
  std::uint64_t writes = 0;  // atomic register writes
  std::uint64_t rmws = 0;    // read-modify-write ops (TAS, CAS, F&A)

  [[nodiscard]] std::uint64_t total() const noexcept {
    return reads + writes + rmws;
  }

  StepCounters& operator+=(const StepCounters& o) noexcept {
    reads += o.reads;
    writes += o.writes;
    rmws += o.rmws;
    return *this;
  }

  StepCounters operator-(const StepCounters& o) const noexcept {
    return {reads - o.reads, writes - o.writes, rmws - o.rmws};
  }

  bool operator==(const StepCounters&) const noexcept = default;
};

}  // namespace scm
