// Tests for the shared spin-wait pacing layer (support/backoff.hpp).
//
// The point of this translation unit is the #define below: it forces
// the generic cpu_pause() fallback (compiler-barrier, no spin-hint
// instruction) on EVERY target, so the portability path is compiled
// and executed on x86-only CI instead of rotting until someone builds
// on an architecture without `pause`/`yield`. The instruction path is
// exercised by every other test binary in the tree — combining_test,
// async_test and the shm suite all spin through the same header with
// the default definition.
#define SCM_FORCE_GENERIC_CPU_PAUSE 1
#include "support/backoff.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace scm {
namespace {

// The forced-generic cpu_pause() must be callable and must not hang,
// trap, or clobber anything — it is a pure pacing hint.
TEST(Backoff, GenericCpuPauseIsANoOpHint) {
  for (int i = 0; i < 1000; ++i) cpu_pause();
  SUCCEED();
}

// Walk the whole ladder: 8 bare rungs, 8 doubling-pause rungs, then
// the saturated yield rung. The counter stops advancing once
// saturated — callers reset it themselves when the wait ends.
TEST(Backoff, LadderAdvancesThenSaturates) {
  int spins = 0;
  for (int i = 0; i < 8; ++i) spin_backoff(spins);  // bare re-reads
  EXPECT_EQ(spins, 8);
  for (int i = 0; i < 8; ++i) spin_backoff(spins);  // pause rungs
  EXPECT_EQ(spins, 16);
  for (int i = 0; i < 32; ++i) spin_backoff(spins);  // yield, forever
  EXPECT_EQ(spins, 16);
}

// Regression: because `spins` stops advancing at saturation, the
// RETURN VALUE is the only signal that the wait has become long — a
// caller watching the counter alone can never tell rung 16 ("about to
// yield for the first time") from rung 16 after a thousand yields.
// The parking layer (support/parking.hpp) escalates to a futex park
// off exactly this signal, so: every pre-saturation call must return
// false, every saturated call true, indefinitely.
TEST(Backoff, SaturationIsSignalledThroughTheReturnValue) {
  int spins = 0;
  for (int i = 0; i < 16; ++i) {
    EXPECT_FALSE(spin_backoff(spins)) << "rung " << i;
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(spin_backoff(spins)) << "saturated call " << i;
    EXPECT_EQ(spins, 16);
  }
}

// The ladder must actually pace a real wait to completion: a thread
// spinning on a flag with spin_backoff observes the write even when
// the ladder has long since saturated into yields.
TEST(Backoff, PacedSpinWaitObservesTheWrite) {
  std::atomic<bool> flag{false};
  std::thread waiter([&] {
    int spins = 0;
    while (!flag.load(std::memory_order_acquire)) spin_backoff(spins);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  flag.store(true, std::memory_order_release);
  waiter.join();
  SUCCEED();
}

}  // namespace
}  // namespace scm
