// Unit tests for requests, histories, sequential specs, β evaluators
// and the ≡_I equivalence (Sections 3 and 5).
#include <gtest/gtest.h>

#include "history/history.hpp"
#include "history/request.hpp"
#include "history/specs.hpp"

namespace scm {
namespace {

Request req(std::uint64_t id, ProcessId p = 0, std::int64_t op = 0,
            std::int64_t arg = 0) {
  return Request{id, p, op, arg};
}

TEST(History, AppendAndContains) {
  History h;
  EXPECT_TRUE(h.empty());
  h.append(req(1));
  h.append(req(2));
  EXPECT_EQ(h.size(), 2u);
  EXPECT_TRUE(h.contains(1));
  EXPECT_TRUE(h.contains(2));
  EXPECT_FALSE(h.contains(3));
  EXPECT_EQ(h.index_of(2), 1u);
  EXPECT_EQ(h.index_of(9), std::nullopt);
}

TEST(History, AppendIfAbsent) {
  History h;
  EXPECT_TRUE(h.append_if_absent(req(1)));
  EXPECT_FALSE(h.append_if_absent(req(1)));
  EXPECT_EQ(h.size(), 1u);
}

TEST(History, DuplicateAppendAborts) {
  History h;
  h.append(req(7));
  EXPECT_DEATH(h.append(req(7)), "duplicate");
}

TEST(History, PrefixRelations) {
  History a{req(1), req(2)};
  History b{req(1), req(2), req(3)};
  History c{req(1), req(3)};
  EXPECT_TRUE(a.prefix_of(a));
  EXPECT_FALSE(a.strict_prefix_of(a));
  EXPECT_TRUE(a.prefix_of(b));
  EXPECT_TRUE(a.strict_prefix_of(b));
  EXPECT_FALSE(b.prefix_of(a));
  EXPECT_FALSE(c.prefix_of(b));
  EXPECT_TRUE(History{}.prefix_of(a));
}

TEST(History, PrefixExtraction) {
  History b{req(1), req(2), req(3)};
  EXPECT_EQ(b.prefix(2), (History{req(1), req(2)}));
  EXPECT_EQ(b.prefix(9), b);
  auto through = b.prefix_through(2);
  ASSERT_TRUE(through.has_value());
  EXPECT_EQ(*through, (History{req(1), req(2)}));
  EXPECT_EQ(b.prefix_through(42), std::nullopt);
}

TEST(History, CommonPrefix) {
  History a{req(1), req(2), req(3)};
  History b{req(1), req(2), req(4)};
  EXPECT_EQ(History::common_prefix(a, b), (History{req(1), req(2)}));
  EXPECT_EQ(History::common_prefix(a, History{}), History{});
}

TEST(History, Concat) {
  History a{req(1)};
  History b{req(2), req(3)};
  EXPECT_EQ(a.concat(b), (History{req(1), req(2), req(3)}));
}

// ---------------------------------------------------------------------------

TEST(TasSpec, FirstRequestWinsRestLose) {
  History h{req(1), req(2), req(3)};
  EXPECT_EQ(beta<TasSpec>(h, 1), TasSpec::kWinner);
  EXPECT_EQ(beta<TasSpec>(h, 2), TasSpec::kLoser);
  EXPECT_EQ(beta<TasSpec>(h, 3), TasSpec::kLoser);
  EXPECT_EQ(beta<TasSpec>(h), TasSpec::kLoser);      // last response
  EXPECT_EQ(beta<TasSpec>(History{req(9)}), TasSpec::kWinner);
}

TEST(TasSpec, BetaOfEmptyHistory) {
  EXPECT_EQ(beta<TasSpec>(History{}), kNoResponse);
  EXPECT_EQ(beta<TasSpec>(History{}, 1), kNoResponse);
}

TEST(ConsensusSpec, FirstProposalDecides) {
  History h{req(1, 0, ConsensusSpec::kPropose, 42),
            req(2, 1, ConsensusSpec::kPropose, 7)};
  EXPECT_EQ(beta<ConsensusSpec>(h, 1), 42);
  EXPECT_EQ(beta<ConsensusSpec>(h, 2), 42);
}

TEST(CounterSpec, FetchIncSequence) {
  History h{req(1, 0, CounterSpec::kFetchInc),
            req(2, 0, CounterSpec::kFetchInc),
            req(3, 0, CounterSpec::kRead)};
  EXPECT_EQ(beta<CounterSpec>(h, 1), 0);
  EXPECT_EQ(beta<CounterSpec>(h, 2), 1);
  EXPECT_EQ(beta<CounterSpec>(h, 3), 2);
}

TEST(QueueSpec, FifoOrder) {
  History h{req(1, 0, QueueSpec::kEnqueue, 10),
            req(2, 0, QueueSpec::kEnqueue, 20),
            req(3, 1, QueueSpec::kDequeue),
            req(4, 1, QueueSpec::kDequeue),
            req(5, 1, QueueSpec::kDequeue)};
  EXPECT_EQ(beta<QueueSpec>(h, 3), 10);
  EXPECT_EQ(beta<QueueSpec>(h, 4), 20);
  EXPECT_EQ(beta<QueueSpec>(h, 5), QueueSpec::kEmpty);
}

TEST(RegisterSpec, ReadsSeeLatestWrite) {
  History h{req(1, 0, RegisterSpec::kWrite, 5),
            req(2, 1, RegisterSpec::kRead),
            req(3, 0, RegisterSpec::kWrite, 9),
            req(4, 1, RegisterSpec::kRead)};
  EXPECT_EQ(beta<RegisterSpec>(h, 2), 5);
  EXPECT_EQ(beta<RegisterSpec>(h, 4), 9);
}

// ---------------------------------------------------------------------------

TEST(Equivalence, TasHistoriesWithSameWinnerAreEquivalent) {
  // h1 and h2 contain {1,2,3} with the same winner but losers swapped:
  // equivalent under I = {2, 3} (same responses, same final state).
  const Request r1 = req(1), r2 = req(2), r3 = req(3);
  History h1{r1, r2, r3};
  History h2{r1, r3, r2};
  const std::vector<Request> I{r2, r3};
  EXPECT_TRUE(equivalent_under<TasSpec>(h1, h2, I));
}

TEST(Equivalence, TasHistoriesWithDifferentWinnersDiffer) {
  const Request r1 = req(1), r2 = req(2);
  History h1{r1, r2};
  History h2{r2, r1};
  const std::vector<Request> I{r1, r2};
  EXPECT_FALSE(equivalent_under<TasSpec>(h1, h2, I));
}

TEST(Equivalence, RequiresContainment) {
  const Request r1 = req(1), r2 = req(2);
  History h1{r1};
  History h2{r1, r2};
  const std::vector<Request> I{r2};
  EXPECT_FALSE(equivalent_under<TasSpec>(h1, h2, I));
}

TEST(Equivalence, CounterHistoriesDistinguishedByState) {
  const Request a = req(1, 0, CounterSpec::kFetchInc);
  const Request b = req(2, 0, CounterSpec::kFetchInc);
  History h1{a, b};
  History h2{b, a};
  // Same final state (2 increments) but responses to a and b swap.
  EXPECT_FALSE(
      equivalent_under<CounterSpec>(h1, h2, std::vector<Request>{a, b}));
  // Under I = {} only final-state equality matters.
  EXPECT_TRUE(
      equivalent_under<CounterSpec>(h1, h2, std::vector<Request>{}));
}

}  // namespace
}  // namespace scm
