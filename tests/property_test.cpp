// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// the paper's safety theorems checked across the cross-product of
// process counts × schedule families × seed blocks. Each instantiation
// is one cell of the sweep, so failures name their exact configuration.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "consensus/abortable_bakery.hpp"
#include "consensus/cas_consensus.hpp"
#include "consensus/split_consensus.hpp"
#include "core/constraint.hpp"
#include "core/interpretation.hpp"
#include "core/trace.hpp"
#include "history/specs.hpp"
#include "lincheck/lincheck.hpp"
#include "sim/schedules.hpp"
#include "sim/sim_platform.hpp"
#include "sim/simulator.hpp"
#include "tas/long_lived_tas.hpp"
#include "tas/speculative_tas.hpp"

namespace scm {
namespace {

using sim::SimContext;
using sim::SimPlatform;
using sim::Simulator;

enum class SchedKind { kSequential, kRoundRobin1, kRoundRobin3, kRandom, kSticky50 };

struct SweepParam {
  int processes;
  SchedKind sched;
  std::uint64_t seed_base;
  int seeds;

  friend std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
    const char* k = "?";
    switch (p.sched) {
      case SchedKind::kSequential: k = "sequential"; break;
      case SchedKind::kRoundRobin1: k = "rr1"; break;
      case SchedKind::kRoundRobin3: k = "rr3"; break;
      case SchedKind::kRandom: k = "random"; break;
      case SchedKind::kSticky50: k = "sticky50"; break;
    }
    return os << "n" << p.processes << "_" << k << "_s" << p.seed_base;
  }
};

std::unique_ptr<sim::Schedule> make_schedule(SchedKind kind,
                                             std::uint64_t seed) {
  switch (kind) {
    case SchedKind::kSequential:
      return std::make_unique<sim::SequentialSchedule>();
    case SchedKind::kRoundRobin1:
      return std::make_unique<sim::RoundRobinSchedule>(1);
    case SchedKind::kRoundRobin3:
      return std::make_unique<sim::RoundRobinSchedule>(3);
    case SchedKind::kRandom:
      return std::make_unique<sim::RandomSchedule>(seed);
    case SchedKind::kSticky50:
      return std::make_unique<sim::StickyRandomSchedule>(seed, 0.5);
  }
  return nullptr;
}

std::string param_name(const testing::TestParamInfo<SweepParam>& info) {
  std::ostringstream oss;
  oss << info.param;
  return oss.str();
}

Request tas_req(std::uint64_t id, ProcessId p) {
  return Request{id, p, TasSpec::kTestAndSet, 0};
}

// ---------------------------------------------------------------------------
// TAS: one winner + linearizability across the sweep.

class TasSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(TasSweep, OneWinnerAndLinearizable) {
  const SweepParam p = GetParam();
  for (int s = 0; s < p.seeds; ++s) {
    const std::uint64_t seed = p.seed_base + static_cast<std::uint64_t>(s);
    Simulator sim;
    SpeculativeTas<SimPlatform> tas;
    std::vector<TasOutcome> outs(p.processes);
    for (int pid = 0; pid < p.processes; ++pid) {
      sim.add_process([&, pid](SimContext& ctx) {
        ctx.begin_op();
        outs[pid] = tas.test_and_set(
            ctx, tas_req(static_cast<std::uint64_t>(pid) + 1, pid));
        ctx.end_op(outs[pid].value);
      });
    }
    auto sched = make_schedule(p.sched, seed);
    sim.run(*sched);

    int winners = 0;
    for (const auto& o : outs) {
      if (o.won()) ++winners;
    }
    ASSERT_EQ(winners, 1) << "seed " << seed;

    std::vector<ConcurrentOp> ops;
    for (const auto& rec : sim.ops()) {
      ConcurrentOp op;
      op.pid = rec.pid;
      op.request = tas_req(static_cast<std::uint64_t>(rec.pid) + 1, rec.pid);
      op.response = rec.output;
      op.invoke = rec.invoke_event;
      op.ret = rec.response_event;
      op.completed = rec.complete;
      ops.push_back(op);
    }
    ASSERT_TRUE(linearizable<TasSpec>(std::move(ops))) << "seed " << seed;
  }
}

TEST_P(TasSweep, A1TracesSafelyComposable) {
  const SweepParam p = GetParam();
  if (p.processes > 6) {
    GTEST_SKIP() << "interpretation search enumerates request "
                    "permutations; bounded to small universes";
  }
  TasConstraint M;
  for (int s = 0; s < p.seeds; ++s) {
    const std::uint64_t seed = p.seed_base + static_cast<std::uint64_t>(s);
    Simulator sim;
    ObstructionFreeTas<SimPlatform> a1;
    TraceRecorder rec;
    for (int pid = 0; pid < p.processes; ++pid) {
      sim.add_process([&, pid](SimContext& ctx) {
        const Request m = tas_req(static_cast<std::uint64_t>(pid) + 1, pid);
        rec.invoke(pid, m);
        const ModuleResult r = a1.invoke(ctx, m);
        if (r.committed()) {
          rec.commit(pid, m, r.response);
        } else {
          rec.abort(pid, m, r.switch_value);
        }
      });
    }
    auto sched = make_schedule(p.sched, seed);
    sim.run(*sched);
    const auto verdict = check_safely_composable<TasSpec>(rec.trace(), M);
    ASSERT_TRUE(verdict) << "seed " << seed << ": " << verdict.error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, TasSweep,
    testing::Values(
        SweepParam{2, SchedKind::kSequential, 1, 1},
        SweepParam{2, SchedKind::kRoundRobin1, 1, 1},
        SweepParam{2, SchedKind::kRandom, 1000, 40},
        SweepParam{3, SchedKind::kRoundRobin1, 1, 1},
        SweepParam{3, SchedKind::kRoundRobin3, 1, 1},
        SweepParam{3, SchedKind::kRandom, 2000, 40},
        SweepParam{3, SchedKind::kSticky50, 3000, 40},
        SweepParam{4, SchedKind::kRandom, 4000, 30},
        SweepParam{4, SchedKind::kSticky50, 5000, 30},
        SweepParam{6, SchedKind::kRandom, 6000, 20},
        SweepParam{8, SchedKind::kRandom, 7000, 10}),
    param_name);

// ---------------------------------------------------------------------------
// Consensus agreement across the sweep (all three implementations).

template <class Cons>
class ConsensusSweepBase : public testing::TestWithParam<SweepParam> {
 protected:
  void run_sweep() {
    const SweepParam p = GetParam();
    for (int s = 0; s < p.seeds; ++s) {
      const std::uint64_t seed = p.seed_base + static_cast<std::uint64_t>(s);
      Simulator sim;
      Cons cons = [&] {
        if constexpr (std::is_constructible_v<Cons, int>) {
          return Cons(p.processes);
        } else {
          return Cons();
        }
      }();
      std::vector<std::int64_t> decided(p.processes, kBottom);
      for (int pid = 0; pid < p.processes; ++pid) {
        sim.add_process([&, pid](SimContext& ctx) {
          const auto r = cons.run(ctx, kBottom, 100 + pid);
          if (r.committed()) decided[pid] = r.value;
        });
      }
      auto sched = make_schedule(p.sched, seed);
      sim.run(*sched);
      std::set<std::int64_t> committed;
      for (std::int64_t v : decided) {
        if (v != kBottom) committed.insert(v);
      }
      ASSERT_LE(committed.size(), 1u)
          << "disagreement at seed " << seed;
      for (std::int64_t v : committed) {
        ASSERT_GE(v, 100);
        ASSERT_LT(v, 100 + p.processes);
      }
    }
  }
};

using SplitSweep = ConsensusSweepBase<SplitConsensus<SimPlatform>>;
TEST_P(SplitSweep, Agreement) { run_sweep(); }
INSTANTIATE_TEST_SUITE_P(
    Schedules, SplitSweep,
    testing::Values(SweepParam{2, SchedKind::kRandom, 100, 40},
                    SweepParam{3, SchedKind::kRandom, 200, 40},
                    SweepParam{3, SchedKind::kRoundRobin1, 1, 1},
                    SweepParam{4, SchedKind::kSticky50, 300, 30},
                    SweepParam{6, SchedKind::kRandom, 400, 20}),
    param_name);

using BakerySweep = ConsensusSweepBase<AbortableBakery<SimPlatform>>;
TEST_P(BakerySweep, Agreement) { run_sweep(); }
INSTANTIATE_TEST_SUITE_P(
    Schedules, BakerySweep,
    testing::Values(SweepParam{2, SchedKind::kRandom, 100, 40},
                    SweepParam{3, SchedKind::kRandom, 200, 40},
                    SweepParam{3, SchedKind::kRoundRobin3, 1, 1},
                    SweepParam{4, SchedKind::kSticky50, 300, 30},
                    SweepParam{6, SchedKind::kRandom, 400, 15}),
    param_name);

using CasSweep = ConsensusSweepBase<CasConsensus<SimPlatform>>;
TEST_P(CasSweep, Agreement) { run_sweep(); }
INSTANTIATE_TEST_SUITE_P(
    Schedules, CasSweep,
    testing::Values(SweepParam{2, SchedKind::kRandom, 100, 40},
                    SweepParam{4, SchedKind::kRandom, 200, 40},
                    SweepParam{8, SchedKind::kRandom, 300, 20}),
    param_name);

// ---------------------------------------------------------------------------
// Long-lived rounds: Count advances exactly once per win across the
// sweep, and per-round winners are unique.

class LongLivedSweep : public testing::TestWithParam<SweepParam> {};

TEST_P(LongLivedSweep, RoundsMatchWins) {
  const SweepParam p = GetParam();
  for (int s = 0; s < p.seeds; ++s) {
    const std::uint64_t seed = p.seed_base + static_cast<std::uint64_t>(s);
    Simulator sim;
    LongLivedTas<SimPlatform> tas(p.processes, 64);
    std::vector<int> wins(p.processes, 0);
    for (int pid = 0; pid < p.processes; ++pid) {
      sim.add_process([&, pid](SimContext& ctx) {
        for (int round = 0; round < 3; ++round) {
          const auto id = static_cast<std::uint64_t>(pid) * 100 +
                          static_cast<std::uint64_t>(round) + 1;
          if (tas.test_and_set(ctx, tas_req(id, pid)).won()) {
            ++wins[pid];
            tas.reset(ctx);
          }
        }
      });
    }
    auto sched = make_schedule(p.sched, seed);
    sim.run(*sched);
    int total = 0;
    for (int w : wins) total += w;
    ASSERT_EQ(tas.round(), static_cast<std::uint64_t>(total))
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, LongLivedSweep,
    testing::Values(SweepParam{2, SchedKind::kRandom, 10, 30},
                    SweepParam{3, SchedKind::kRandom, 20, 30},
                    SweepParam{3, SchedKind::kSticky50, 30, 30},
                    SweepParam{4, SchedKind::kRandom, 40, 20}),
    param_name);

}  // namespace
}  // namespace scm
