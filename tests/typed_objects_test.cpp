// Tests for the tournament TAS baseline and the typed universal-object
// façades (counter, queue).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sim/schedules.hpp"
#include "sim/sim_platform.hpp"
#include "sim/simulator.hpp"
#include "tas/tournament_tas.hpp"
#include "universal/typed_objects.hpp"

namespace scm {
namespace {

using sim::SimContext;
using sim::SimPlatform;
using sim::Simulator;

// ---------------------------------------------------------------------------
// TournamentTas

TEST(TournamentTas, SoloProcessWins) {
  Simulator s;
  TournamentTas<SimPlatform> tas(4);
  Response r = -1;
  s.add_process([&](SimContext& ctx) { r = tas.test_and_set(ctx); });
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_EQ(r, TasSpec::kWinner);
}

TEST(TournamentTas, ExactlyOneWinnerUnderRandomSchedules) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    for (int n : {2, 3, 5, 8}) {
      Simulator s;
      TournamentTas<SimPlatform> tas(n);
      std::vector<Response> rs(n, -1);
      for (int p = 0; p < n; ++p) {
        s.add_process([&, p](SimContext& ctx) { rs[p] = tas.test_and_set(ctx); });
      }
      sim::RandomSchedule sched(seed * 37 + n);
      s.run(sched);
      EXPECT_EQ(std::count(rs.begin(), rs.end(), TasSpec::kWinner), 1)
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(TournamentTas, StepComplexityIsLogarithmic) {
  auto solo_steps = [](int n) {
    Simulator s;
    TournamentTas<SimPlatform> tas(n);
    s.add_process([&](SimContext& ctx) { (void)tas.test_and_set(ctx); });
    sim::SequentialSchedule sched;
    s.run(sched);
    return s.counters(0).total();
  };
  // Doubling n adds one tree level => constant extra steps, far from
  // linear growth.
  const auto s4 = solo_steps(4);
  const auto s8 = solo_steps(8);
  const auto s64 = solo_steps(64);
  EXPECT_GT(s8, s4);
  EXPECT_LE(s64, s4 * 4);  // log-ish, not linear
}

TEST(TournamentTas, SoloWinnerPaysRmwPerLevel) {
  Simulator s;
  TournamentTas<SimPlatform> tas(8);
  s.add_process([&](SimContext& ctx) { (void)tas.test_and_set(ctx); });
  sim::SequentialSchedule sched;
  s.run(sched);
  // Unlike the speculative TAS's 0-RMW fast path, the tournament pays a
  // tie-breaker RMW at every level — the baseline the speculation beats.
  EXPECT_GE(s.counters(0).rmws, 3u);
}

// ---------------------------------------------------------------------------
// UniversalCounter

TEST(UniversalCounter, SequentialSemantics) {
  Simulator s;
  UniversalCounter<SimPlatform, 48> counter(2);
  std::vector<std::int64_t> got;
  s.add_process([&](SimContext& ctx) {
    got.push_back(counter.fetch_increment(ctx));
    got.push_back(counter.fetch_increment(ctx));
    got.push_back(counter.read(ctx));
  });
  s.add_process([&](SimContext& ctx) {
    got.push_back(counter.fetch_increment(ctx));
  });
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_EQ(got, (std::vector<std::int64_t>{0, 1, 2, 2}));
}

TEST(UniversalCounter, UniqueValuesUnderContention) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Simulator s;
    constexpr int kN = 3;
    UniversalCounter<SimPlatform, 64> counter(kN);
    std::vector<std::vector<std::int64_t>> got(kN);
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        for (int i = 0; i < 3; ++i) {
          got[p].push_back(counter.fetch_increment(ctx));
        }
      });
    }
    sim::RandomSchedule sched(seed * 11 + 2);
    s.run(sched);
    std::set<std::int64_t> all;
    for (const auto& rs : got) {
      for (auto v : rs) EXPECT_TRUE(all.insert(v).second) << "dup " << v;
    }
    EXPECT_EQ(all.size(), static_cast<std::size_t>(kN * 3));
    EXPECT_EQ(*all.begin(), 0);
    EXPECT_EQ(*all.rbegin(), kN * 3 - 1);
  }
}

// ---------------------------------------------------------------------------
// UniversalQueue

TEST(UniversalQueue, FifoSequential) {
  Simulator s;
  UniversalQueue<SimPlatform, 48> queue(2);
  std::vector<std::int64_t> deqs;
  s.add_process([&](SimContext& ctx) {
    queue.enqueue(ctx, 10);
    queue.enqueue(ctx, 20);
    queue.enqueue(ctx, 30);
  });
  s.add_process([&](SimContext& ctx) {
    deqs.push_back(queue.dequeue(ctx));
    deqs.push_back(queue.dequeue(ctx));
    deqs.push_back(queue.dequeue(ctx));
    deqs.push_back(queue.dequeue(ctx));
  });
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_EQ(deqs, (std::vector<std::int64_t>{
                      10, 20, 30, UniversalQueue<SimPlatform, 48>::kEmpty}));
}

TEST(UniversalQueue, NoLostOrDuplicatedItemsUnderContention) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Simulator s;
    constexpr int kProducers = 2;
    constexpr int kItemsEach = 3;
    UniversalQueue<SimPlatform, 64> queue(kProducers + 1);
    std::vector<std::int64_t> deqs;
    for (int p = 0; p < kProducers; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        for (int i = 0; i < kItemsEach; ++i) {
          queue.enqueue(ctx, p * 100 + i);
        }
      });
    }
    s.add_process([&](SimContext& ctx) {
      for (int i = 0; i < kProducers * kItemsEach + 2; ++i) {
        const auto v = queue.dequeue(ctx);
        if (v != QueueSpec::kEmpty) deqs.push_back(v);
      }
    });
    sim::RandomSchedule sched(seed * 13 + 5);
    s.run(sched);
    // No duplicates; per-producer order preserved among dequeued items.
    std::set<std::int64_t> unique(deqs.begin(), deqs.end());
    EXPECT_EQ(unique.size(), deqs.size()) << "duplicate dequeue";
    for (int p = 0; p < kProducers; ++p) {
      std::int64_t last = -1;
      for (auto v : deqs) {
        if (v / 100 == p) {
          EXPECT_GT(v, last) << "producer order broken";
          last = v;
        }
      }
    }
  }
}

}  // namespace
}  // namespace scm
