// Tests for the futex parking layer (support/parking.hpp) — rung 3 of
// the wait ladder:
//
//  * both WaitModes compile and run in ONE translation unit (kMode is
//    a template parameter, unlike the macro-only forced-generic-pause
//    seam), so the portable yield fallback cannot rot on Linux CI;
//  * the eventcount protocol never loses a wakeup: a waker that runs
//    between prepare() and park() bumps the epoch, so the park returns
//    immediately instead of sleeping forever — stressed across many
//    racing rounds in both modes;
//  * telemetry: a wait that outlives the spin/yield ladder records
//    parks > 0; an already-satisfied wait records one fast wake and
//    zero futex syscalls (the fast-path purity half of the combining
//    wrappers' contract); park_ratio() is NaN-free and moves with the
//    park/fast-wake mix; the rung-3 entry threshold is a runtime knob;
//    wake_all() against no waiter is free;
//  * wait_until()'s WaitPoint overload routes native contexts through
//    parked_wait (sim contexts keep their ctx.await path — explorer
//    parity is pinned by slot_protocol_explore_test's unchanged leaf
//    counts);
//  * a WaitPoint<FutexScope::kShared> living inside a ShmArena segment
//    wakes a waiter in a DIFFERENT process that attached the segment
//    by name (the wait queue keys on the physical page, not the
//    mapping address);
//  * SIGKILLing a client parked inside ShmCombining leaves the
//    combiner fully serviceable: the op executes, reclaim_dead sweeps
//    the corpse's slot, and the parked waiter had actually parked.
//
// fork() under ThreadSanitizer is unreliable, so this suite stays
// unlabeled (like shm_test); the pure in-process WaitPoint tests are
// TSan-covered indirectly via combining_test/async_test, which now
// drive every wait through parked_wait.
#include "support/parking.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <type_traits>

#include "runtime/context.hpp"
#include "runtime/wait.hpp"

namespace scm {
namespace {

using clock_type = std::chrono::steady_clock;

// Segment-resident instances must be address-free and survive being
// mapped at different base addresses with no destructor run.
static_assert(std::is_standard_layout_v<WaitPoint<FutexScope::kShared>>);
static_assert(
    std::is_trivially_destructible_v<WaitPoint<FutexScope::kShared>>);

// The two modes this TU exercises side by side. kPrivate scope: these
// waiters live in one process.
using FutexPoint = WaitPoint<FutexScope::kPrivate, WaitMode::kFutex>;
using YieldPoint = WaitPoint<FutexScope::kPrivate, WaitMode::kYield>;

template <class WP>
class ParkingModes : public testing::Test {};
using BothModes = testing::Types<FutexPoint, YieldPoint>;
TYPED_TEST_SUITE(ParkingModes, BothModes);

// wake_all() with nobody parked must be pure arithmetic: no wake
// recorded, no kernel entered. This is the waker-side cost every
// uncontended fast-path op pays.
TYPED_TEST(ParkingModes, WakeWithNoWaiterIsFree) {
  TypeParam wp;
  for (int i = 0; i < 100; ++i) wp.wake_all();
  const ParkStats s = wp.stats();
  EXPECT_EQ(s.wakes, 0u);
  EXPECT_EQ(s.futex_syscalls, 0u);
  EXPECT_EQ(s.parks, 0u);
}

// A wake that lands between prepare() and park() bumps the epoch, so
// the park must return promptly instead of sleeping on a stale word —
// the no-lost-wakeup property, deterministic single-threaded form.
TYPED_TEST(ParkingModes, WakeBetweenPrepareAndParkIsNotLost) {
  TypeParam wp;
  const std::uint32_t token = wp.prepare();
  wp.wake_all();        // epoch moved past `token`
  wp.park(token);       // FUTEX_WAIT sees word != token -> EAGAIN
  const ParkStats s = wp.stats();
  EXPECT_EQ(s.wakes, 1u);
  EXPECT_EQ(s.parks, 1u);
}

// The racing form: a waiter climbing the full ladder into a park while
// the waker flips the predicate and wakes, many rounds. A single lost
// wakeup hangs the round (and the test times out) — this is the
// Dekker-handshake stress.
TYPED_TEST(ParkingModes, RacingWakerNeverStrandsTheWaiter) {
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    TypeParam wp;
    std::atomic<bool> flag{false};
    std::thread waiter(
        [&] { parked_wait(wp, [&] { return flag.load(std::memory_order_acquire); }); });
    // Sometimes let the waiter reach the park, sometimes race it.
    if (round % 3 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(50 * (round % 7)));
    }
    flag.store(true, std::memory_order_release);
    wp.wake_all();
    waiter.join();
  }
  SUCCEED();
}

// An already-true predicate never escalates: no parks, no syscalls —
// but the wait IS recorded as a fast wake, the denominator the
// adaptive layer's park_ratio signal needs (a ratio over parks alone
// cannot distinguish "nobody waits" from "every waiter parks").
TYPED_TEST(ParkingModes, SatisfiedWaitRecordsAFastWakeAndNothingElse) {
  TypeParam wp;
  parked_wait(wp, [] { return true; });
  const ParkStats s = wp.stats();
  EXPECT_EQ(s.parks, 0u);
  EXPECT_EQ(s.futex_syscalls, 0u);
  EXPECT_EQ(s.fast_wakes, 1u);
  EXPECT_EQ(s.park_ratio(), 0.0);
}

// park_ratio() must be defined (0.0, not NaN) before any wait has
// ever finished — the adaptive monitor reads it on its first window.
TYPED_TEST(ParkingModes, ParkRatioIsZeroNotNaNWithNoHistory) {
  TypeParam wp;
  const ParkStats s = wp.stats();
  EXPECT_EQ(s.parks, 0u);
  EXPECT_EQ(s.fast_wakes, 0u);
  EXPECT_EQ(s.park_ratio(), 0.0);
}

// Once a wait actually reaches rung 3, the ratio moves off zero; mixed
// with fast wakes it stays a proper fraction of all finished waits.
TYPED_TEST(ParkingModes, ParkRatioReflectsParkedVersusFastWaits) {
  TypeParam wp;
  std::atomic<bool> flag{false};
  std::thread waiter(
      [&] { parked_wait(wp, [&] { return flag.load(std::memory_order_acquire); }); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  flag.store(true, std::memory_order_release);
  wp.wake_all();
  waiter.join();
  EXPECT_GT(wp.stats().park_ratio(), 0.0);

  // Nine satisfied waits dilute the ratio below 1 but not to 0.
  for (int i = 0; i < 9; ++i) parked_wait(wp, [] { return true; });
  const ParkStats s = wp.stats();
  EXPECT_GE(s.fast_wakes, 9u);
  EXPECT_GT(s.park_ratio(), 0.0);
  EXPECT_LT(s.park_ratio(), 1.0);
}

// The rung-3 entry threshold is a runtime knob (the adaptive layer's
// wait actuator): negative values clamp to 0, and a threshold of 0
// parks on the first ladder saturation — visible as parks where the
// default rung would have spun through.
TYPED_TEST(ParkingModes, YieldsBeforeParkIsARuntimeKnob) {
  TypeParam wp;
  EXPECT_EQ(wp.yields_before_park(), kYieldsBeforePark);
  wp.set_yields_before_park(-5);
  EXPECT_EQ(wp.yields_before_park(), 0);
  wp.set_yields_before_park(1);
  EXPECT_EQ(wp.yields_before_park(), 1);

  // With the earliest rung, a briefly-false predicate is enough to
  // force a park even though the default ladder would still be
  // yielding.
  std::atomic<bool> flag{false};
  std::thread waiter(
      [&] { parked_wait(wp, [&] { return flag.load(std::memory_order_acquire); }); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  flag.store(true, std::memory_order_release);
  wp.wake_all();
  waiter.join();
  EXPECT_GT(wp.stats().parks, 0u);
}

// A wait that outlives the whole spin/yield ladder must reach rung 3:
// parks > 0 in BOTH modes (the yield fallback counts its fallback
// yields as parks — that is what lets the compose.shm stall gate hold
// under forced-fallback builds).
TYPED_TEST(ParkingModes, LongWaitEscalatesToAPark) {
  TypeParam wp;
  std::atomic<bool> flag{false};
  std::thread waiter(
      [&] { parked_wait(wp, [&] { return flag.load(std::memory_order_acquire); }); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  flag.store(true, std::memory_order_release);
  wp.wake_all();
  waiter.join();
  EXPECT_GT(wp.stats().parks, 0u);
}

// The wait_until() overload: a native context takes the parked_wait
// path, visible through the WaitPoint's own telemetry.
TEST(WaitUntil, NativeContextRoutesThroughTheWaitPoint) {
  WaitPoint<> wp;
  std::atomic<bool> flag{false};
  std::thread waiter([&] {
    NativeContext wctx(1);
    wait_until(wctx,
               [&] { return flag.load(std::memory_order_acquire); }, wp);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  flag.store(true, std::memory_order_release);
  wp.wake_all();
  waiter.join();
  EXPECT_GT(wp.stats().parks, 0u);
}

}  // namespace
}  // namespace scm

// ---------------------------------------------------------------------------
// Cross-process: the shared-scope word through a real second process.

#include "shm/shm_arena.hpp"  // defines SCM_HAS_POSIX_SHM

#if SCM_HAS_POSIX_SHM

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <string>

#include "history/specs.hpp"
#include "shm/shm_combining.hpp"
#include "shm/shm_counter.hpp"

namespace scm {
namespace {

std::string unique_segment(const char* tag) {
  static int counter = 0;
  return "/scm-park-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + "-" + std::to_string(counter++);
}

struct SegmentJanitor {
  std::string name;
  ~SegmentJanitor() { ShmArena::unlink(name); }
};

// Segment-resident cell: a flag (the predicate) plus the shared-scope
// wait point. Pointer-free, fixed layout.
struct ParkCell {
  std::atomic<std::uint32_t> flag{0};
  WaitPoint<FutexScope::kShared> wp;
};
constexpr std::uint32_t kParkCellTag = 0x70617263;  // "parc"

// A waiter parked in a second process — which attached the segment by
// NAME, so its mapping address differs — must be woken by this
// process's wake_all(). kShared keys the wait queue on the physical
// page; a kPrivate word here would strand the child (and the scm_lint
// futex-word rule rejects it statically).
TEST(ParkingShm, SharedWaitPointWakesAcrossProcesses) {
  const std::string name = unique_segment("xwake");
  SegmentJanitor janitor{name};

  auto arena = ShmArena::create(name, 1 << 20);
  ASSERT_TRUE(arena.has_value());
  const std::uint64_t off = arena->construct<ParkCell>();
  ASSERT_NE(off, 0u);
  ASSERT_TRUE(arena->publish("cell", off, sizeof(ParkCell), kParkCellTag));

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: attach by name (fresh mapping, own base address), park
    // until the parent raises the flag. _exit codes, not gtest.
    auto mine = ShmArena::attach(name);
    if (!mine.has_value()) ::_exit(10);
    const auto found = mine->resolve("cell");
    if (!found.has_value() || found->type_tag != kParkCellTag) ::_exit(11);
    ParkCell& cell = *mine->at<ParkCell>(found->offset);
    parked_wait(cell.wp, [&] {
      return cell.flag.load(std::memory_order_acquire) != 0;
    });
    ::_exit(0);
  }

  ParkCell& cell = *arena->at<ParkCell>(off);
  // Wait until the child has actually reached rung 3 (the counters
  // live in the segment, so the parent sees them). If the wake below
  // raced an in-flight FUTEX_WAIT, the epoch bump still makes it
  // return — that is the protocol under test.
  const auto deadline = clock_type::now() + std::chrono::seconds(30);
  while (cell.wp.stats().parks == 0) {
    ASSERT_LT(clock_type::now(), deadline) << "child never parked";
    std::this_thread::yield();
  }

  cell.flag.store(1, std::memory_order_release);
  cell.wp.wake_all();

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_GE(cell.wp.stats().wakes, 1u);
}

// SIGKILL lands while a client is PARKED inside ShmCombining's invoke
// wait (not just spinning): the kernel discards the dead waiter, the
// published op still executes, reclaim_dead() sweeps the residue, and
// the combiner stays serviceable. The pre-kill park check makes this
// strictly stronger than shm_test's reclaim test, which kills a
// spinning publisher.
TEST(ParkingShm, SigkillWhileParkedStillReclaims) {
  using TestCombining = ShmCombining<ShmCounter, 8>;
  const std::string name = unique_segment("kill");
  SegmentJanitor janitor{name};

  auto arena = ShmArena::create(name, 1 << 20);
  ASSERT_TRUE(arena.has_value());
  const std::uint64_t off = arena->construct<TestCombining>();
  ASSERT_NE(off, 0u);
  TestCombining& comb = *arena->at<TestCombining>(off);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: one op, may_combine = false, no server anywhere — the
    // kDone wait escalates through the ladder into a park and stays
    // there until the SIGKILL.
    NativeContext ctx(1);
    (void)comb.invoke(ctx, Request{1, 1, CounterSpec::kFetchInc, 0},
                      std::nullopt, /*may_combine=*/false);
    ::_exit(0);  // unreachable
  }

  // The kill must land while the child is parked, not merely publishing.
  const auto deadline = clock_type::now() + std::chrono::seconds(30);
  while (comb.pending() == 0 || comb.park_stats().parks == 0) {
    ASSERT_LT(clock_type::now(), deadline) << "child never parked";
    std::this_thread::yield();
  }

  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // The publication survived its parked publisher; a serve executes it.
  NativeContext ctx(0);
  EXPECT_EQ(comb.pending(), 1u);
  EXPECT_TRUE(comb.try_serve(ctx));
  EXPECT_EQ(comb.object().value(), 1);

  // The corpse's kDone record is swept; the dead waiter's flag bit in
  // the futex word costs at most one spurious syscall, never a hang.
  EXPECT_EQ(comb.reclaim_dead(), 1u);
  EXPECT_EQ(comb.occupied(), 0u);
  EXPECT_GT(comb.park_stats().parks, 0u);

  // Fully serviceable afterwards.
  EXPECT_TRUE(
      comb.invoke(ctx, Request{2, 0, CounterSpec::kFetchInc, 0}).committed());
  EXPECT_EQ(comb.object().value(), 2);
}

}  // namespace
}  // namespace scm

#endif  // SCM_HAS_POSIX_SHM
