// Tests for the Definition-1 (Abstract) property checker: hand-built
// traces exercising each property, positive and negative.
#include <gtest/gtest.h>

#include "core/abstract_checker.hpp"
#include "core/trace.hpp"

namespace scm {
namespace {

Request req(std::uint64_t id, ProcessId p = 0) { return Request{id, p, 0, 0}; }

TraceEvent ev(std::uint64_t seq, EventKind k, ProcessId pid, Request r,
              History h = {}) {
  TraceEvent e;
  e.seq = seq;
  e.kind = k;
  e.pid = pid;
  e.request = r;
  e.history = std::move(h);
  return e;
}

TEST(AbstractChecker, EmptyTracePasses) {
  EXPECT_TRUE(check_abstract_trace(Trace{}));
}

TEST(AbstractChecker, SimpleCommitChainPasses) {
  const Request r1 = req(1, 0), r2 = req(2, 1);
  Trace t({
      ev(1, EventKind::kInvoke, 0, r1),
      ev(2, EventKind::kCommit, 0, r1, History{r1}),
      ev(3, EventKind::kInvoke, 1, r2),
      ev(4, EventKind::kCommit, 1, r2, History{r1, r2}),
  });
  EXPECT_TRUE(check_abstract_trace(t));
}

TEST(AbstractChecker, CommitOrderViolationDetected) {
  const Request r1 = req(1, 0), r2 = req(2, 1);
  Trace t({
      ev(1, EventKind::kInvoke, 0, r1),
      ev(2, EventKind::kInvoke, 1, r2),
      ev(3, EventKind::kCommit, 0, r1, History{r1}),
      ev(4, EventKind::kCommit, 1, r2, History{r2}),  // not comparable
  });
  const auto result = check_abstract_trace(t);
  EXPECT_FALSE(result);
  EXPECT_NE(result.error.find("Commit Order"), std::string::npos);
}

TEST(AbstractChecker, AbortOrderingViolationDetected) {
  const Request r1 = req(1, 0), r2 = req(2, 1);
  Trace t({
      ev(1, EventKind::kInvoke, 0, r1),
      ev(2, EventKind::kInvoke, 1, r2),
      ev(3, EventKind::kCommit, 0, r1, History{r1, r2}),
      // Abort history does not extend the commit history.
      ev(4, EventKind::kAbort, 1, r2, History{r2, r1}),
  });
  const auto result = check_abstract_trace(t);
  EXPECT_FALSE(result);
  EXPECT_NE(result.error.find("Abort Ordering"), std::string::npos);
}

TEST(AbstractChecker, AbortExtendingCommitPasses) {
  const Request r1 = req(1, 0), r2 = req(2, 1);
  Trace t({
      ev(1, EventKind::kInvoke, 0, r1),
      ev(2, EventKind::kInvoke, 1, r2),
      ev(3, EventKind::kCommit, 0, r1, History{r1}),
      ev(4, EventKind::kAbort, 1, r2, History{r1, r2}),
  });
  EXPECT_TRUE(check_abstract_trace(t));
}

TEST(AbstractChecker, ValidityPhantomRequestDetected) {
  const Request r1 = req(1, 0), ghost = req(99, 3);
  Trace t({
      ev(1, EventKind::kInvoke, 0, r1),
      ev(2, EventKind::kCommit, 0, r1, History{ghost, r1}),
  });
  const auto result = check_abstract_trace(t);
  EXPECT_FALSE(result);
  EXPECT_NE(result.error.find("phantom"), std::string::npos);
}

TEST(AbstractChecker, ValidityFutureRequestInCommitDetected) {
  const Request r1 = req(1, 0), r2 = req(2, 1);
  Trace t({
      ev(1, EventKind::kInvoke, 0, r1),
      // r2 invoked only at seq 3, but the commit at seq 2 already
      // includes it.
      ev(2, EventKind::kCommit, 0, r1, History{r2, r1}),
      ev(3, EventKind::kInvoke, 1, r2),
      ev(4, EventKind::kCommit, 1, r2, History{r2, r1}),
  });
  const auto result = check_abstract_trace(t);
  EXPECT_FALSE(result);
  EXPECT_NE(result.error.find("invoked after"), std::string::npos);
}

TEST(AbstractChecker, LaxAbortValidityAllowsLaterAborts) {
  // An early abort's history may include requests invoked later (the
  // Lemma-4 construction); the lax mode accepts, strict mode rejects.
  const Request r1 = req(1, 0), r2 = req(2, 1);
  Trace t({
      ev(1, EventKind::kInvoke, 0, r1),
      ev(2, EventKind::kAbort, 0, r1, History{r1, r2}),
      ev(3, EventKind::kInvoke, 1, r2),
      ev(4, EventKind::kAbort, 1, r2, History{r1, r2}),
  });
  AbstractCheckOptions lax;
  EXPECT_TRUE(check_abstract_trace(t, lax));
  AbstractCheckOptions strict;
  strict.strict_abort_validity = true;
  EXPECT_FALSE(check_abstract_trace(t, strict));
}

TEST(AbstractChecker, HasDuplicatesHelper) {
  // History::append rejects duplicates at construction time, so the
  // checker's duplicate scan can only fire on hand-built histories;
  // verify the helper it relies on.
  History h{req(1), req(2)};
  EXPECT_FALSE(h.has_duplicates());
}

TEST(AbstractChecker, TerminationRequiresResponses) {
  const Request r1 = req(1, 0);
  Trace t({ev(1, EventKind::kInvoke, 0, r1)});
  const auto result = check_abstract_trace(t);
  EXPECT_FALSE(result);
  EXPECT_NE(result.error.find("Termination"), std::string::npos);

  AbstractCheckOptions opts;
  opts.crashed.insert(0);
  EXPECT_TRUE(check_abstract_trace(t, opts));
}

TEST(AbstractChecker, ResponseHistoryMustContainOwnRequest) {
  const Request r1 = req(1, 0), r2 = req(2, 1);
  Trace t({
      ev(1, EventKind::kInvoke, 0, r1),
      ev(2, EventKind::kInvoke, 1, r2),
      ev(3, EventKind::kCommit, 0, r1, History{r2}),
      ev(4, EventKind::kCommit, 1, r2, History{r2}),
  });
  const auto result = check_abstract_trace(t);
  EXPECT_FALSE(result);
  EXPECT_NE(result.error.find("omits its own request"), std::string::npos);
}

TEST(AbstractChecker, InitOrderingEnforced) {
  const Request r1 = req(1, 0), r2 = req(2, 1), r3 = req(3, 2);
  // Two inits sharing the common prefix [r1]; a commit whose history
  // does not start with r1 violates Init Ordering.
  Trace t({
      ev(1, EventKind::kInit, 0, r2, History{r1, r2}),
      ev(2, EventKind::kInit, 1, r3, History{r1, r3}),
      ev(3, EventKind::kCommit, 0, r2, History{r2, r1}),
      ev(4, EventKind::kCommit, 1, r3, History{r2, r1, r3}),
  });
  const auto result = check_abstract_trace(t);
  EXPECT_FALSE(result);
  EXPECT_NE(result.error.find("Init Ordering"), std::string::npos);
}

TEST(AbstractChecker, InitOrderingSatisfiedWhenPrefixRespected) {
  const Request r1 = req(1, 0), r2 = req(2, 1), r3 = req(3, 2);
  Trace t({
      ev(1, EventKind::kInit, 0, r2, History{r1, r2}),
      ev(2, EventKind::kInit, 1, r3, History{r1, r3}),
      ev(3, EventKind::kCommit, 0, r2, History{r1, r2}),
      ev(4, EventKind::kCommit, 1, r3, History{r1, r2, r3}),
  });
  EXPECT_TRUE(check_abstract_trace(t));
}

TEST(AbstractChecker, DoubleResponseDetected) {
  const Request r1 = req(1, 0);
  Trace t({
      ev(1, EventKind::kInvoke, 0, r1),
      ev(2, EventKind::kCommit, 0, r1, History{r1}),
      ev(3, EventKind::kCommit, 0, r1, History{r1}),
  });
  EXPECT_FALSE(check_abstract_trace(t));
}

}  // namespace
}  // namespace scm
