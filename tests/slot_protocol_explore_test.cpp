// Exhaustive model checking of the owner-tagged publication-slot
// protocol (core/slot_protocol.hpp) via CombiningModel
// (sim/combining_model.hpp) — the sim twin of ShmCombining.
//
// Every test here drives the protocol through sim::explore over ALL
// interleavings of its processes (stats.exhausted is asserted, so a
// silently truncated search fails the suite) and checks:
//
//  * linearizability: the served fetch&inc history linearizes against
//    CounterSpec in every interleaving ({2 procs x 2 slots} and
//    {3 procs x 2 slots}, the latter forcing slot exhaustion);
//  * residue: after every run the slot array is all-kFree and the
//    combiner gate is released;
//  * crash-reclaim, with deaths modeled as protocol prefixes (the
//    crash surface of CombiningModel) at each stage:
//      - died WAITING (kPending published): the op still executes
//        exactly once, and the dead-owned kDone record is swept;
//      - died MID-CLAIM (kClaimed): the record is swept — this is the
//        invariant the seeded mutation (SCM_MUTATE_SLOT_PROTOCOL,
//        drops the ownership stamp) breaks, and the slot_mutation_catch
//        CTest entry recompiles this file with the mutation and
//        expects CrashReclaim.ClaimedRecordOfDeadOwnerIsSwept to fail;
//      - died HOLDING THE GATE: a survivor's reclaim steals the gate
//        and the object serves operations again.
#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/module.hpp"
#include "core/slot_protocol.hpp"
#include "history/request.hpp"
#include "history/specs.hpp"
#include "lincheck/lincheck.hpp"
#include "runtime/primitives.hpp"
#include "runtime/wait.hpp"
#include "sim/combining_model.hpp"
#include "sim/explorer.hpp"
#include "sim/simulator.hpp"

namespace scm {
namespace {

using sim::CombiningModel;
using sim::explore_all_schedules;
using sim::SimContext;
using sim::Simulator;

// Fetch&inc semantics (CounterSpec): commits a unique monotone ticket.
// NativeCounter is context-generic, so the same module runs under the
// simulator with its RMW counted as a step.
struct TicketModule {
  static constexpr int kConsensusNumber = kConsensusNumberFetchAdd;

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& /*m*/,
                      std::optional<SwitchValue> /*init*/ = std::nullopt) {
    return ModuleResult::commit(static_cast<Response>(count_.fetch_add(ctx)));
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_.peek(); }

 private:
  NativeCounter count_;
};

Request inc_req(std::uint64_t id, ProcessId p) {
  return Request{id, p, CounterSpec::kFetchInc, 0};
}

// Rebuilds the simulator's recorded ops as ConcurrentOps for the
// Wing&Gong checker; `tag` carries nothing here (one op per process),
// `output` carries the ticket.
std::vector<ConcurrentOp> history_of(const Simulator& sim) {
  std::vector<ConcurrentOp> ops;
  for (const auto& rec : sim.ops()) {
    ConcurrentOp op;
    op.pid = rec.pid;
    op.request = inc_req(static_cast<std::uint64_t>(rec.tag), rec.pid);
    op.response = rec.output;
    op.invoke = rec.invoke_event;
    op.ret = rec.response_event;
    op.completed = rec.complete;
    ops.push_back(op);
  }
  return ops;
}

// ---------------------------------------------------------------------------
// Exhaustive linearizability + residue, no crashes

// Shared fixture state for one explored configuration: the model must
// outlive each run, and the check hook only receives the Simulator, so
// the factory stashes the current instance here.
template <std::size_t kSlots>
struct Fixture {
  CombiningModel<TicketModule, kSlots> model;
};

template <std::size_t kSlots>
void explore_full_protocol(int procs, std::uint64_t min_runs) {
  std::shared_ptr<Fixture<kSlots>> fx;
  std::uint64_t runs = 0;
  auto stats = explore_all_schedules(
      [&] {
        fx = std::make_shared<Fixture<kSlots>>();
        auto sim = std::make_unique<Simulator>();
        for (int p = 0; p < procs; ++p) {
          sim->add_process([fx, p](SimContext& ctx) {
            const auto id = static_cast<std::uint64_t>(p) + 1;
            ctx.begin_op(static_cast<std::int64_t>(id));
            const ModuleResult r =
                fx->model.invoke(ctx, inc_req(id, ctx.id()));
            ctx.end_op(r.response);
          });
        }
        return sim;
      },
      [&](Simulator& sim) {
        ++runs;
        // Every op completed and drew a ticket; the history linearizes.
        ASSERT_EQ(sim.ops().size(), static_cast<std::size_t>(procs));
        for (const auto& op : sim.ops()) ASSERT_TRUE(op.complete);
        ASSERT_TRUE(linearizable<CounterSpec>(history_of(sim)))
            << "non-linearizable interleaving at run " << runs;
        // Residue: all ops executed, every record recycled, gate free.
        ASSERT_EQ(fx->model.object().count(),
                  static_cast<std::uint64_t>(procs));
        ASSERT_EQ(fx->model.occupied(), 0u);
        ASSERT_EQ(fx->model.pending(), 0u);
        ASSERT_EQ(fx->model.gate_holder(), 0u);
      });
  // The gate: the FULL tree was enumerated (a truncated search would
  // be a silent downgrade from "verified" to "sampled"), and it is at
  // least as large as the count measured when the test was written —
  // shrinkage means scheduling points disappeared from the protocol.
  EXPECT_TRUE(stats.exhausted);
  EXPECT_GE(stats.runs, min_runs);
  EXPECT_EQ(stats.runs, runs);
  std::cerr << "[ protocol ] " << procs << " procs x " << kSlots
            << " slots: " << stats.runs << " interleavings verified\n";
}

// The trees are smaller than a naive step count suggests: failed gate
// pre-tests and the publisher's final kFree store are uncounted, so
// only schedules that differ in a COUNTED access are distinct leaves
// (the soundness argument lives in core/combining.hpp's platform note).
TEST(SlotProtocolExplore, TwoProcsTwoSlotsLinearizableNoResidue) {
  explore_full_protocol<2>(/*procs=*/2, /*min_runs=*/20);
}

// Three processes through two slots: some interleavings exhaust the
// slot array, exercising the claim-wait path and recycle-then-claim.
TEST(SlotProtocolExplore, ThreeProcsTwoSlotsLinearizableNoResidue) {
  explore_full_protocol<2>(/*procs=*/3, /*min_runs=*/10'000);
}

// ---------------------------------------------------------------------------
// Crash-reclaim invariants
//
// A "death" is a protocol prefix: the process body performs the prefix
// and returns, leaving shared state exactly as a SIGKILL there would.
// The survivor's alive() predicate declares every other owner dead.

using CrashModel = CombiningModel<TicketModule, 2>;

// Owner id of simulated process p under CombiningModel's ctx.id()+1
// scheme, for alive() predicates evaluated outside any context.
constexpr std::uint32_t owner_id(int p) {
  return static_cast<std::uint32_t>(p) + 1;
}

// Died waiting: the kPending publication is complete, so the op MUST
// execute exactly once — a reclaim that discarded it would lose an
// acknowledged-as-published operation; a combiner that ran it twice
// would double-apply. Afterwards the dead-owned kDone record (the
// publisher will never collect) must be swept and the array left clean.
TEST(CrashReclaim, PendingOpOfDeadOwnerExecutesExactlyOnce) {
  std::shared_ptr<CrashModel> model;
  auto stats = explore_all_schedules(
      [&] {
        model = std::make_shared<CrashModel>();
        auto sim = std::make_unique<Simulator>();
        // pid 0: publishes, then dies waiting to be served.
        sim->add_process([model](SimContext& ctx) {
          (void)model->publish_only(ctx, inc_req(1, ctx.id()));
        });
        // pid 1: the survivor. Serves once the publication is visible,
        // then sweeps the wreckage.
        sim->add_process([model](SimContext& ctx) {
          wait_until(ctx, [model] { return model->pending() != 0; });
          model->drain(ctx);
          const std::size_t swept = model->reclaim_dead(
              ctx, [](std::uint32_t owner) { return owner == owner_id(1); });
          ctx.begin_op();
          ctx.end_op(static_cast<std::int64_t>(swept));
        });
        return sim;
      },
      [&](Simulator& sim) {
        ASSERT_EQ(sim.ops().size(), 1u);
        // Exactly once: the counter advanced by one for the dead
        // publisher's op, never zero, never two.
        ASSERT_EQ(model->object().count(), 1u);
        // The dead-owned kDone record was swept...
        ASSERT_EQ(sim.ops()[0].output, 1);
        // ...leaving no residue and a free gate.
        ASSERT_EQ(model->occupied(), 0u);
        ASSERT_EQ(model->gate_holder(), 0u);
      });
  EXPECT_TRUE(stats.exhausted);
}

// Died mid-claim: a kClaimed record whose owner is dead is pure
// wreckage (the request was never published) and must be swept. THIS
// is the invariant the seeded mutation breaks: with the ownership
// stamp dropped, the record reads as owner 0 — indistinguishable from
// an in-flight claim — and the sweep must skip it forever.
TEST(CrashReclaim, ClaimedRecordOfDeadOwnerIsSwept) {
  std::shared_ptr<CrashModel> model;
  auto stats = explore_all_schedules(
      [&] {
        model = std::make_shared<CrashModel>();
        auto sim = std::make_unique<Simulator>();
        // pid 0: claims a record, dies before publishing into it.
        sim->add_process(
            [model](SimContext& ctx) { (void)model->claim_only(ctx); });
        // pid 1: waits until the claim landed, then sweeps.
        sim->add_process([model](SimContext& ctx) {
          wait_until(ctx, [model] { return model->occupied() != 0; });
          const std::size_t swept = model->reclaim_dead(
              ctx, [](std::uint32_t owner) { return owner == owner_id(1); });
          ctx.begin_op();
          ctx.end_op(static_cast<std::int64_t>(swept));
        });
        return sim;
      },
      [&](Simulator& sim) {
        ASSERT_EQ(sim.ops().size(), 1u);
        ASSERT_EQ(sim.ops()[0].output, 1) << "dead kClaimed record not swept";
        ASSERT_EQ(model->occupied(), 0u);
        ASSERT_EQ(model->gate_holder(), 0u);
        // Nothing was ever published, so nothing may have executed.
        ASSERT_EQ(model->object().count(), 0u);
      });
  EXPECT_TRUE(stats.exhausted);
}

// Died holding the gate: a dead combiner wedges every future election.
// The survivor's reclaim must steal the gate from the corpse, after
// which the object serves operations again.
TEST(CrashReclaim, GateIsStolenFromDeadHolder) {
  std::shared_ptr<CrashModel> model;
  auto stats = explore_all_schedules(
      [&] {
        model = std::make_shared<CrashModel>();
        auto sim = std::make_unique<Simulator>();
        // pid 0: wins the combiner election, dies before combining.
        sim->add_process([model](SimContext& ctx) { model->seize_gate(ctx); });
        // pid 1: sees the wedge, reclaims (stealing the gate), then
        // runs an op end-to-end to prove the object is live again.
        sim->add_process([model](SimContext& ctx) {
          wait_until(ctx, [model] { return model->gate_holder() != 0; });
          (void)model->reclaim_dead(
              ctx, [](std::uint32_t owner) { return owner == owner_id(1); });
          ctx.begin_op(2);
          const ModuleResult r = model->invoke(ctx, inc_req(2, ctx.id()));
          ctx.end_op(r.response);
        });
        return sim;
      },
      [&](Simulator& sim) {
        ASSERT_EQ(sim.ops().size(), 1u);
        ASSERT_TRUE(sim.ops()[0].complete) << "object still wedged";
        ASSERT_EQ(sim.ops()[0].output, 0);  // first ticket
        ASSERT_EQ(model->object().count(), 1u);
        ASSERT_EQ(model->occupied(), 0u);
        ASSERT_EQ(model->gate_holder(), 0u);
      });
  EXPECT_TRUE(stats.exhausted);
}

// The mutation flips protocol behavior, not just test expectations:
// guard that a build WITHOUT the flag really runs the honest protocol
// (so slot_mutation_catch's WILL_FAIL can only be satisfied by the
// mutation itself being caught).
TEST(SlotProtocolExplore, MutationFlagMatchesBuild) {
#if defined(SCM_MUTATE_SLOT_PROTOCOL)
  EXPECT_TRUE(kMutateDropOwnerStamp);
#else
  EXPECT_FALSE(kMutateDropOwnerStamp);
#endif
}

}  // namespace
}  // namespace scm
