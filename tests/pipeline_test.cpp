// Tests for the variadic composition pipeline (core/pipeline.hpp) and
// its companions: the consensus-module adapter and the statically-typed
// Abstract chain.
//
//  * depth-1/2/4 pipelines produce bit-identical commit/abort results
//    to the legacy nested Composed combinator across random schedules;
//  * the consensus-number fold and the ComposableModule concept hold
//    statically (and the pipeline type is non-polymorphic — there is
//    no virtual dispatch to pay for);
//  * per-stage commit/abort statistics account for every invocation;
//  * switch values plumb through arbitrary depths, pipelines nest, and
//    rvalue modules are owned by the pipeline;
//  * a depth-3 A1∘A1∘A2 pipeline stays linearizable (Theorem 4 shape);
//  * StaticAbstractChain matches the type-erased UniversalChain.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "consensus/cas_consensus.hpp"
#include "consensus/consensus_module.hpp"
#include "consensus/split_consensus.hpp"
#include "core/module.hpp"
#include "core/pipeline.hpp"
#include "history/specs.hpp"
#include "lincheck/lincheck.hpp"
#include "runtime/context.hpp"
#include "sim/schedules.hpp"
#include "sim/sim_platform.hpp"
#include "sim/simulator.hpp"
#include "tas/a1_module.hpp"
#include "tas/a2_module.hpp"
#include "universal/composable_universal.hpp"
#include "universal/static_chain.hpp"
#include "universal/universal_chain.hpp"

namespace scm {
namespace {

using sim::SimContext;
using sim::SimPlatform;
using sim::Simulator;

using A1 = ObstructionFreeTas<SimPlatform>;
using A2 = WaitFreeTas<SimPlatform>;

Request tas_req(std::uint64_t id, ProcessId p) {
  return Request{id, p, TasSpec::kTestAndSet, 0};
}

// Context-free helper modules for plumbing tests (no shared-memory
// steps, so they run on a bare NativeContext).
struct HopModule {
  static constexpr int kConsensusNumber = kConsensusNumberRegister;
  int invocations = 0;

  template <class Ctx>
  ModuleResult invoke(Ctx& /*ctx*/, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    ++invocations;
    return ModuleResult::abort_with(init.value_or(0) + 1);
  }
};

struct SinkModule {
  static constexpr int kConsensusNumber = kConsensusNumberRegister;

  template <class Ctx>
  ModuleResult invoke(Ctx& /*ctx*/, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    return ModuleResult::commit(init.value_or(0));
  }
};

// ---------------------------------------------------------------------------
// Static properties

TEST(Pipeline, ConsensusNumberFoldAndConceptConformance) {
  using P2 = Pipeline<A1&, A2&>;
  static_assert(P2::kDepth == 2);
  static_assert(P2::kConsensusNumber == 2, "max(register, tas) == 2");
  using RegistersOnly = Pipeline<A1&, A1&, A1&>;
  static_assert(RegistersOnly::kDepth == 3);
  static_assert(RegistersOnly::kConsensusNumber == kConsensusNumberRegister,
                "a register-only chain folds to consensus number 1");
  using WithCas = Pipeline<A1&, ConsensusModule<CasConsensus<SimPlatform>>&>;
  static_assert(WithCas::kConsensusNumber == kConsensusNumberCas);

  // A pipeline is itself a composable module (Theorem 2) and pays no
  // virtual dispatch anywhere.
  static_assert(ComposableModule<P2, SimContext>);
  static_assert(ComposableModule<P2, NativeContext>);
  static_assert(!std::is_polymorphic_v<P2>);
  static_assert(!std::is_polymorphic_v<FastPipeline<A1&, A2&>>);
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Equivalence with the legacy nested Composed combinator

struct RunOutcome {
  std::vector<ModuleResult> results;
  std::vector<std::uint64_t> steps;
};

template <class Chain>
RunOutcome run_tas_chain(Chain& chain, int n, std::uint64_t seed) {
  Simulator s;
  RunOutcome out;
  out.results.resize(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    s.add_process([&, p](SimContext& ctx) {
      out.results[static_cast<std::size_t>(p)] =
          chain.invoke(ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
    });
  }
  sim::RandomSchedule sched(seed);
  s.run(sched);
  for (int p = 0; p < n; ++p) {
    out.steps.push_back(s.counters(p).total());
  }
  return out;
}

void expect_same(const RunOutcome& a, const RunOutcome& b,
                 std::uint64_t seed) {
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t p = 0; p < a.results.size(); ++p) {
    EXPECT_EQ(a.results[p].outcome, b.results[p].outcome)
        << "p" << p << " seed " << seed;
    EXPECT_EQ(a.results[p].response, b.results[p].response)
        << "p" << p << " seed " << seed;
    EXPECT_EQ(a.results[p].switch_value, b.results[p].switch_value)
        << "p" << p << " seed " << seed;
    EXPECT_EQ(a.steps[p], b.steps[p]) << "p" << p << " seed " << seed;
  }
}

TEST(Pipeline, Depth1MatchesBareModule) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    A1 bare;
    RunOutcome expect = run_tas_chain(bare, 3, seed);

    A1 piped;
    auto pipe = make_pipeline(piped);
    static_assert(decltype(pipe)::kDepth == 1);
    RunOutcome got = run_tas_chain(pipe, 3, seed);
    expect_same(expect, got, seed);
  }
}

// Composed is deprecated in favour of make_pipeline + scm::apply, but
// it is precisely the reference combinator these equivalence tests
// exist to compare against — suppress the deprecation locally.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(Pipeline, Depth2MatchesNestedComposed) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    A1 ca1;
    A2 ca2;
    Composed<A1, A2> composed(ca1, ca2);
    RunOutcome expect = run_tas_chain(composed, 3, seed);

    A1 pa1;
    A2 pa2;
    auto pipe = make_pipeline(pa1, pa2);
    RunOutcome got = run_tas_chain(pipe, 3, seed);
    expect_same(expect, got, seed);
  }
}

TEST(Pipeline, Depth4MatchesNestedComposed) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    A1 ca, cb, cc;
    A2 cd;
    Composed<A1, A2> inner(cc, cd);
    Composed<A1, decltype(inner)> mid(cb, inner);
    Composed<A1, decltype(mid)> composed(ca, mid);
    RunOutcome expect = run_tas_chain(composed, 4, seed);

    A1 pa, pb, pc;
    A2 pd;
    auto pipe = make_pipeline(pa, pb, pc, pd);
    static_assert(decltype(pipe)::kDepth == 4);
    static_assert(decltype(pipe)::kConsensusNumber ==
                  decltype(composed)::kConsensusNumber);
    RunOutcome got = run_tas_chain(pipe, 4, seed);
    expect_same(expect, got, seed);
  }
}

#pragma GCC diagnostic pop

// ---------------------------------------------------------------------------
// Per-stage statistics

TEST(Pipeline, PerStageStatsAccountForEveryInvocation) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    A1 a1;
    A2 a2;
    auto pipe = make_pipeline(a1, a2);
    constexpr int kN = 3;
    RunOutcome out = run_tas_chain(pipe, kN, seed);

    const PipelineStageStats s0 = pipe.stats(0);
    const PipelineStageStats s1 = pipe.stats(1);
    // Every process entered stage 0 exactly once; stage 1 saw exactly
    // the stage-0 aborts; A2 is wait-free, so nothing aborts out.
    EXPECT_EQ(s0.invocations(), static_cast<std::uint64_t>(kN));
    EXPECT_EQ(s1.invocations(), s0.aborts);
    EXPECT_EQ(s0.commits + s1.commits, static_cast<std::uint64_t>(kN));
    EXPECT_EQ(s1.aborts, 0u);

    pipe.reset_stats();
    EXPECT_EQ(pipe.stats(0).invocations(), 0u);
    EXPECT_EQ(pipe.stats(1).invocations(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Switch-value plumbing, nesting, ownership

TEST(Pipeline, SwitchValuesPlumbThroughArbitraryDepth) {
  HopModule h1, h2, h3;
  SinkModule sink;
  auto pipe = make_pipeline(h1, h2, h3, sink);
  NativeContext ctx(0);

  const auto traced = pipe.invoke_traced(ctx, tas_req(1, 0));
  EXPECT_TRUE(traced.result.committed());
  EXPECT_EQ(traced.result.response, 3);  // three hops incremented it
  EXPECT_EQ(traced.stage, 3u);
  EXPECT_EQ(h1.invocations, 1);
  EXPECT_EQ(h2.invocations, 1);
  EXPECT_EQ(h3.invocations, 1);

  // An initialization value seeds the fold like an upstream abort.
  const ModuleResult seeded = pipe.invoke(ctx, tas_req(2, 0), 10);
  EXPECT_EQ(seeded.response, 13);
}

TEST(Pipeline, LastStageAbortIsWholePipelineAbort) {
  HopModule h1, h2;
  auto pipe = make_pipeline(h1, h2);
  NativeContext ctx(0);

  const auto traced = pipe.invoke_traced(ctx, tas_req(1, 0));
  EXPECT_FALSE(traced.result.committed());
  EXPECT_EQ(traced.result.switch_value, 2);
  EXPECT_EQ(traced.stage, 1u);
  EXPECT_EQ(pipe.stats(0).aborts, 1u);
  EXPECT_EQ(pipe.stats(1).aborts, 1u);
}

TEST(Pipeline, PipelinesNest) {
  // Theorem 2 applied twice: a pipeline is a module, so it can be a
  // stage of another pipeline.
  HopModule h1, h2;
  SinkModule sink;
  auto inner = make_pipeline(h1, h2);  // aborts with hop count 2
  auto outer = make_pipeline(inner, sink);
  static_assert(decltype(outer)::kDepth == 2);
  NativeContext ctx(0);

  const ModuleResult r = outer.invoke(ctx, tas_req(1, 0));
  EXPECT_TRUE(r.committed());
  EXPECT_EQ(r.response, 2);

  // The rvalue spelling works too: the inner pipeline moves into the
  // outer one (stats counters are snapshot-copied on move).
  HopModule h3, h4;
  SinkModule sink2;
  auto nested = make_pipeline(make_pipeline(h3, h4), sink2);
  EXPECT_EQ(nested.invoke(ctx, tas_req(2, 0)).response, 2);
  EXPECT_EQ(nested.stats(0).aborts, 1u);   // the whole inner pipeline
  EXPECT_EQ(nested.stats(1).commits, 1u);  // the sink
}

TEST(Pipeline, RvalueModulesAreOwned) {
  // Rvalues move into the pipeline; lvalues stay referenced. The owned
  // copy is reachable through stage<I>() for inspection.
  SinkModule shared_sink;
  auto pipe = make_pipeline(HopModule{}, shared_sink);
  static_assert(
      std::is_same_v<decltype(pipe), Pipeline<HopModule, SinkModule&>>);
  NativeContext ctx(0);

  EXPECT_EQ(pipe.invoke(ctx, tas_req(1, 0)).response, 1);
  EXPECT_EQ(pipe.invoke(ctx, tas_req(2, 0)).response, 1);
  EXPECT_EQ(pipe.stage<0>().invocations, 2);

  // All-owned pipelines of default-constructible modules need no
  // externally owned modules at all.
  Pipeline<HopModule, SinkModule> owned;
  EXPECT_EQ(owned.invoke(ctx, tas_req(3, 0)).response, 1);
}

// ---------------------------------------------------------------------------
// Linearizability of a depth-3 pipeline (Section 6.3 shape)

TEST(Pipeline, Depth3TasPipelineStaysLinearizable) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Simulator s;
    constexpr int kN = 3;
    A1 first, second;
    A2 last;
    auto chain = make_pipeline(first, second, last);

    std::vector<ModuleResult> rs(kN);
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        ctx.begin_op();
        rs[static_cast<std::size_t>(p)] =
            chain.invoke(ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
        ctx.end_op(rs[static_cast<std::size_t>(p)].response);
      });
    }
    sim::RandomSchedule sched(seed * 23 + 7);
    s.run(sched);

    int winners = 0;
    for (const auto& r : rs) {
      ASSERT_TRUE(r.committed()) << "seed " << seed;
      if (r.response == TasSpec::kWinner) ++winners;
    }
    EXPECT_EQ(winners, 1) << "seed " << seed;

    std::vector<ConcurrentOp> ops;
    for (const auto& rec : s.ops()) {
      ConcurrentOp op;
      op.pid = rec.pid;
      op.request = tas_req(static_cast<std::uint64_t>(rec.pid) + 1, rec.pid);
      op.response = rec.output;
      op.invoke = rec.invoke_event;
      op.ret = rec.response_event;
      op.completed = rec.complete;
      ops.push_back(op);
    }
    ASSERT_TRUE(linearizable<TasSpec>(std::move(ops))) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Consensus modules compose through the same combinator

TEST(ConsensusModule, PipelineAgreesAcrossSchedules) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Simulator s;
    constexpr int kN = 3;
    ConsensusModule<SplitConsensus<SimPlatform>> split;
    ConsensusModule<CasConsensus<SimPlatform>> cas;
    auto pipe = make_pipeline(split, cas);
    static_assert(decltype(pipe)::kConsensusNumber == kConsensusNumberCas);

    std::vector<ModuleResult> rs(kN);
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        // Propose 100+p for the single decision.
        const Request m{static_cast<std::uint64_t>(p) + 1, p, 0, 100 + p};
        rs[static_cast<std::size_t>(p)] = pipe.invoke(ctx, m);
      });
    }
    sim::RandomSchedule sched(seed * 13 + 3);
    s.run(sched);

    // The CAS fallback is wait-free: everyone commits, on some value
    // that was actually proposed, and everyone agrees.
    for (const auto& r : rs) ASSERT_TRUE(r.committed()) << "seed " << seed;
    const Response decided = rs[0].response;
    EXPECT_GE(decided, 100);
    EXPECT_LT(decided, 100 + kN);
    for (const auto& r : rs) {
      EXPECT_EQ(r.response, decided) << "seed " << seed;
    }
  }
}

TEST(ConsensusModule, SoloCommitsOnRegistersOnly) {
  Simulator s;
  ConsensusModule<SplitConsensus<SimPlatform>> split;
  ConsensusModule<CasConsensus<SimPlatform>> cas;
  auto pipe = make_pipeline(split, cas);

  ModuleResult r;
  s.add_process([&](SimContext& ctx) {
    r = pipe.invoke(ctx, Request{1, 0, 0, 42});
  });
  sim::SequentialSchedule sched;
  s.run(sched);

  EXPECT_TRUE(r.committed());
  EXPECT_EQ(r.response, 42);
  EXPECT_EQ(pipe.stats(0).commits, 1u);  // stage 0: registers only
  EXPECT_EQ(pipe.stats(1).invocations(), 0u);
  EXPECT_EQ(s.counters(0).rmws, 0u);
}

TEST(ConsensusModule, RvalueAdaptersAreOwnedByThePipeline) {
  // Adapters are movable (the consensus instance sits behind a
  // unique_ptr) even though the consensus objects themselves pin
  // registers, so the documented rvalue spelling compiles and works.
  Simulator s;
  auto pipe = make_pipeline(ConsensusModule<SplitConsensus<SimPlatform>>{},
                            ConsensusModule<CasConsensus<SimPlatform>>{});
  static_assert(decltype(pipe)::kConsensusNumber == kConsensusNumberCas);

  ModuleResult r;
  s.add_process(
      [&](SimContext& ctx) { r = pipe.invoke(ctx, Request{1, 0, 0, 7}); });
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_TRUE(r.committed());
  EXPECT_EQ(r.response, 7);
}

// ---------------------------------------------------------------------------
// StaticAbstractChain vs the type-erased UniversalChain

TEST(StaticChain, MatchesTypeErasedChainAcrossSchedules) {
  using SplitStage = ComposableUniversal<SimPlatform, CounterSpec,
                                         SplitConsensus<SimPlatform>, 48>;
  using CasStage = ComposableUniversal<SimPlatform, CounterSpec,
                                       CasConsensus<SimPlatform>, 48>;
  constexpr int kN = 3;
  constexpr int kOpsPerProc = 2;

  // Runs kN processes, kOpsPerProc fetch&incs each, through `perform`
  // under one random schedule; returns the per-process responses.
  auto drive = [&](auto&& perform, std::uint64_t seed) {
    std::vector<std::vector<Response>> got(kN);
    Simulator s;
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        for (int i = 0; i < kOpsPerProc; ++i) {
          const auto id = static_cast<std::uint64_t>(p) * 100 +
                          static_cast<std::uint64_t>(i) + 1;
          got[static_cast<std::size_t>(p)].push_back(
              perform(ctx, Request{id, p, CounterSpec::kFetchInc, 0}));
        }
      });
    }
    sim::RandomSchedule sched(seed * 7 + 1);
    s.run(sched);
    return got;
  };

  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    // Type-erased chain.
    std::vector<std::unique_ptr<AbstractStage<SimPlatform>>> stages;
    stages.push_back(std::make_unique<SplitStage>(kN, 48, "split"));
    stages.push_back(std::make_unique<CasStage>(kN, 48, "cas"));
    UniversalChain<SimPlatform, CounterSpec> erased(kN, std::move(stages));
    const auto erased_got = drive(
        [&](SimContext& ctx, const Request& m) {
          return erased.perform(ctx, m).response;
        },
        seed);

    // Static chain over the same stage configuration.
    SplitStage split(kN, 48, "split");
    CasStage cas(kN, 48, "cas");
    StaticAbstractChain chain(kN, split, cas);
    static_assert(decltype(chain)::kDepth == 2);
    const auto static_got = drive(
        [&](SimContext& ctx, const Request& m) {
          return chain.perform(ctx, m).response;
        },
        seed);

    EXPECT_EQ(erased.consensus_number(), chain.consensus_number());
    for (int p = 0; p < kN; ++p) {
      EXPECT_EQ(erased_got[static_cast<std::size_t>(p)],
                static_got[static_cast<std::size_t>(p)])
          << "p" << p << " seed " << seed;
      for (std::size_t st = 0; st < 2; ++st) {
        EXPECT_EQ(erased.commits_by(p, st), chain.commits_by(p, st))
            << "p" << p << " stage " << st << " seed " << seed;
      }
    }
  }
}

TEST(StaticChain, SoloRunsCommitOnStageZero) {
  using SplitStage = ComposableUniversal<SimPlatform, CounterSpec,
                                         SplitConsensus<SimPlatform>, 48>;
  using CasStage = ComposableUniversal<SimPlatform, CounterSpec,
                                       CasConsensus<SimPlatform>, 48>;
  SplitStage split(1, 48, "split");
  CasStage cas(1, 48, "cas");
  StaticAbstractChain chain(1, split, cas);

  Simulator s;
  std::vector<Response> got;
  s.add_process([&](SimContext& ctx) {
    for (int i = 0; i < 5; ++i) {
      const auto r = chain.perform(
          ctx, Request{static_cast<std::uint64_t>(i) + 1, 0,
                       CounterSpec::kFetchInc, 0});
      EXPECT_EQ(r.stage, 0u);
      got.push_back(r.response);
    }
  });
  sim::SequentialSchedule sched;
  s.run(sched);

  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(chain.commits_by(0, 0), 5u);
  EXPECT_EQ(chain.commits_by(0, 1), 0u);
  EXPECT_STREQ(chain.stage_name(0), "split");
}

}  // namespace
}  // namespace scm
