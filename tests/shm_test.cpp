// Tests for the cross-process composition fabric (src/shm/):
//
//  * the slot-protocol constants are ONE definition shared by the
//    in-process Combining and the cross-process ShmCombining (the
//    regression pin for the slot_protocol.hpp extraction), and the
//    owner-packed word helpers roundtrip;
//  * ShmArena lifecycle: create / attach / publish / resolve across
//    two independent mappings of one segment, the allocator's
//    free-list reuse and exhaustion behavior, and the fail-fast
//    attach paths (uninitialized magic, corrupted layout version);
//  * distinct ShmCombining instantiations carry distinct type tags;
//  * ShmSpinBarrier aligns arrivals across generations;
//  * ShmCombining executes a threaded fetch&inc workload with exact
//    counts and unique tickets (the in-process half of the
//    equivalence claim);
//  * a fork()ed second PROCESS attaches the segment by name and
//    combines into the same object — exact total, no residue;
//  * the crash-reclaim protocol: a publisher SIGKILLed while kPending
//    is executed (not dropped), then its kDone residue is swept by
//    reclaim_dead(), with the kPending exemption and the injectable
//    liveness probe both pinned.
//
// fork() under ThreadSanitizer is unreliable, so this suite stays
// unlabeled (not part of the TSan ctest subset); the in-process
// protocol is TSan-covered via combining_test/async_test, which drive
// the same slot state machine.
#include "shm/shm_arena.hpp"  // defines SCM_HAS_POSIX_SHM

#include <gtest/gtest.h>

#include "core/combining.hpp"
#include "core/slot_protocol.hpp"

#if SCM_HAS_POSIX_SHM

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "history/specs.hpp"
#include "runtime/context.hpp"
#include "shm/shm_barrier.hpp"
#include "shm/shm_combining.hpp"
#include "shm/shm_counter.hpp"
#include "shm/shm_ref.hpp"

namespace scm {
namespace {

using TestCombining = ShmCombining<ShmCounter, 8>;

// ---------------------------------------------------------------------------
// Slot protocol: one definition, two executors.

// The extraction pin: both combining paths alias the SAME enum, so the
// state machines cannot drift apart again.
static_assert(
    std::is_same_v<Combining<ShmCounter, 8>::slot_state,
                   ShmCombining<ShmCounter, 8>::slot_state>,
    "in-process and cross-process combining must share one slot enum");
static_assert(std::is_same_v<TestCombining::slot_state, SlotState>);

// Any layout-determining difference must change the fingerprint.
static_assert(ShmCombining<ShmCounter, 8>::kTypeTag !=
                  ShmCombining<ShmCounter, 16>::kTypeTag,
              "slot count must be folded into the type tag");

TEST(SlotProtocol, OwnerPackedWordsRoundtrip) {
  const std::uint32_t pid = 0x7fff1234u;
  for (const SlotState s : {SlotState::kFree, SlotState::kClaimed,
                            SlotState::kPending, SlotState::kDone}) {
    const std::uint64_t w = pack_slot(s, pid);
    EXPECT_EQ(slot_state_of(w), s);
    EXPECT_EQ(slot_owner_of(w), pid);
  }
  EXPECT_EQ(pack_slot(SlotState::kFree, 0), 0u);  // zero-init == free
}

// ---------------------------------------------------------------------------
// Arena.

// Unique-per-test segment names: concurrent ctest invocations and
// leftover segments from a crashed previous run must not collide.
std::string unique_segment(const char* tag) {
  static int counter = 0;
  return "/scm-test-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + "-" + std::to_string(counter++);
}

// Unlinks the segment name when the test scope ends, pass or fail.
struct SegmentJanitor {
  std::string name;
  ~SegmentJanitor() { ShmArena::unlink(name); }
};

TEST(ShmArena, PublishResolveAndWritesCrossMappings) {
  const std::string name = unique_segment("xmap");
  SegmentJanitor janitor{name};

  std::string error;
  auto a = ShmArena::create(name, 1 << 20, &error);
  ASSERT_TRUE(a.has_value()) << error;
  EXPECT_EQ(a->capacity(), 1u << 20);
  EXPECT_GT(a->page_size(), 0u);

  // Second, independent mapping of the same segment — the in-process
  // stand-in for a second process.
  auto b = ShmArena::attach(name, &error);
  ASSERT_TRUE(b.has_value()) << error;
  EXPECT_EQ(b->capacity(), a->capacity());

  const std::uint64_t off = a->construct<std::uint64_t>(0u);
  ASSERT_NE(off, 0u);
  ASSERT_TRUE(a->publish("word", off, sizeof(std::uint64_t), 7));

  // Resolve through the OTHER mapping and read the value written
  // through the first one: offsets, not addresses, cross the boundary.
  const auto found = b->resolve("word");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->offset, off);
  EXPECT_EQ(found->size, sizeof(std::uint64_t));
  EXPECT_EQ(found->type_tag, 7u);

  const ShmRef<std::uint64_t> ref(off);
  ref.in(*a) = 0xfeedface;
  EXPECT_EQ(ref.in(*b), 0xfeedfaceu);
  EXPECT_EQ(*b->at<std::uint64_t>(found->offset), 0xfeedfaceu);

  EXPECT_FALSE(b->resolve("no-such-name").has_value());
}

TEST(ShmArena, DuplicateCreateAndDuplicatePublishFail) {
  const std::string name = unique_segment("dup");
  SegmentJanitor janitor{name};

  auto a = ShmArena::create(name, 1 << 18);
  ASSERT_TRUE(a.has_value());

  // A second create of a live segment must fail loudly (stale-segment
  // safety), not silently reattach.
  std::string error;
  EXPECT_FALSE(ShmArena::create(name, 1 << 18, &error).has_value());
  EXPECT_FALSE(error.empty());

  const std::uint64_t off = a->construct<std::uint64_t>(1u);
  ASSERT_NE(off, 0u);
  EXPECT_TRUE(a->publish("obj", off, sizeof(std::uint64_t), 1));
  EXPECT_FALSE(a->publish("obj", off, sizeof(std::uint64_t), 1));  // dup
  // Over-long names are rejected, not truncated into collisions.
  EXPECT_FALSE(a->publish(std::string(ShmArena::kNameCapacity, 'x'), off,
                          sizeof(std::uint64_t), 1));
}

TEST(ShmArena, AllocatorReusesFreedBlocksAndReportsExhaustion) {
  const std::string name = unique_segment("alloc");
  SegmentJanitor janitor{name};

  auto a = ShmArena::create(name, 1 << 16);
  ASSERT_TRUE(a.has_value());

  const std::uint64_t first = a->alloc(256);
  ASSERT_NE(first, 0u);
  EXPECT_EQ(first % 16, 0u);
  a->free(first, 256);
  // First-fit over the free list: the freed block satisfies the next
  // same-size request exactly.
  EXPECT_EQ(a->alloc(256), first);

  // A freed block larger than the request is split, and the tail
  // serves a later request.
  const std::uint64_t big = a->alloc(512);
  ASSERT_NE(big, 0u);
  a->free(big, 512);
  EXPECT_EQ(a->alloc(128), big);
  EXPECT_EQ(a->alloc(128), big + 128);

  // Exhaustion is the null offset, not a crash.
  EXPECT_EQ(a->alloc(1 << 20), 0u);
}

TEST(ShmArena, AttachRejectsUninitializedSegment) {
  const std::string name = unique_segment("garbage");
  SegmentJanitor janitor{name};

  // A raw segment that never went through ShmArena::create: sized like
  // an arena but with no magic (and then with a WRONG magic).
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, 1 << 18), 0);
  void* base = ::mmap(nullptr, 1 << 18, PROT_READ | PROT_WRITE, MAP_SHARED,
                      fd, 0);
  ::close(fd);
  ASSERT_NE(base, MAP_FAILED);

  std::string error;
  EXPECT_FALSE(ShmArena::attach(name, &error).has_value());  // zero magic
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  std::memset(base, 0x5a, 64);  // arbitrary non-arena bytes
  EXPECT_FALSE(ShmArena::attach(name, &error).has_value());
  ::munmap(base, 1 << 18);
}

TEST(ShmArena, AttachRejectsCorruptedLayoutVersion) {
  const std::string name = unique_segment("version");
  SegmentJanitor janitor{name};

  auto a = ShmArena::create(name, 1 << 18);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(ShmArena::attach(name).has_value());  // sane before corruption

  // Flip a bit in the version word (bytes 8..11 of the header: right
  // after the 8-byte magic) through a raw side mapping — the stand-in
  // for a binary built against a different header layout.
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  void* base = ::mmap(nullptr, 1 << 18, PROT_READ | PROT_WRITE, MAP_SHARED,
                      fd, 0);
  ::close(fd);
  ASSERT_NE(base, MAP_FAILED);
  static_cast<unsigned char*>(base)[8] ^= 0x01;

  std::string error;
  EXPECT_FALSE(ShmArena::attach(name, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  static_cast<unsigned char*>(base)[8] ^= 0x01;  // restore
  EXPECT_TRUE(ShmArena::attach(name).has_value());
  ::munmap(base, 1 << 18);
}

// ---------------------------------------------------------------------------
// Barrier.

TEST(ShmSpinBarrier, AlignsPartiesAcrossGenerations) {
  constexpr std::uint32_t kParties = 4;
  constexpr int kGenerations = 50;
  ShmSpinBarrier barrier(kParties);
  EXPECT_EQ(barrier.parties(), kParties);
  EXPECT_EQ(barrier.arrived(), 0u);

  // Every generation, every thread bumps the counter before the
  // barrier and checks the full bump after: a missed release would
  // show as a torn generation.
  std::atomic<std::uint32_t> entered{0};
  std::vector<std::thread> pool;
  for (std::uint32_t t = 0; t < kParties; ++t) {
    pool.emplace_back([&] {
      for (int g = 0; g < kGenerations; ++g) {
        entered.fetch_add(1, std::memory_order_relaxed);
        barrier.arrive_and_wait();
        EXPECT_GE(entered.load(std::memory_order_relaxed),
                  static_cast<std::uint32_t>(g + 1) * kParties);
        barrier.arrive_and_wait();  // second phase: safe to re-enter
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(entered.load(), kParties * kGenerations);
  EXPECT_EQ(barrier.arrived(), 0u);  // every generation fully reset
}

// ---------------------------------------------------------------------------
// ShmCombining, in-process half: threads through one object.

Request fetch_inc(std::uint64_t id, ProcessId p) {
  return Request{id, p, CounterSpec::kFetchInc, 0};
}

TEST(ShmCombining, ThreadedFetchIncIsExactWithUniqueTickets) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kOps = 2000;
  TestCombining comb;
  NativeContext main_ctx(0);

  std::vector<std::vector<Response>> tickets(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      NativeContext ctx(static_cast<ProcessId>(t));
      auto& mine = tickets[static_cast<std::size_t>(t)];
      mine.reserve(kOps);
      for (std::uint64_t i = 0; i < kOps; ++i) {
        const ModuleResult r = comb.invoke(
            ctx, fetch_inc((static_cast<std::uint64_t>(t) << 32) | i,
                           static_cast<ProcessId>(t)));
        ASSERT_TRUE(r.committed());
        mine.push_back(r.response);
      }
    });
  }
  for (auto& th : pool) th.join();
  comb.drain(main_ctx);

  constexpr std::uint64_t kTotal = kThreads * kOps;
  EXPECT_EQ(comb.object().value(), static_cast<std::int64_t>(kTotal));
  // fetch&inc tickets: every response distinct, exactly [0, total).
  std::set<Response> all;
  for (const auto& mine : tickets) all.insert(mine.begin(), mine.end());
  EXPECT_EQ(all.size(), kTotal);
  EXPECT_EQ(*all.begin(), 0);
  EXPECT_EQ(*all.rbegin(), static_cast<Response>(kTotal - 1));
  // Every op went through exactly one of the two service paths.
  EXPECT_EQ(comb.direct_ops() + comb.combined_ops(), kTotal);
  EXPECT_EQ(comb.occupied(), 0u);
  EXPECT_EQ(comb.pending(), 0u);
}

// ---------------------------------------------------------------------------
// Two processes, one object: the fork()-based equivalence check.
// (The full crash-injected gate with exec'd clients is the compose.shm
// scenario; this is the fast in-tree pin of the same protocol.)

TEST(ShmCombining, SecondProcessAttachesByNameAndCombines) {
  constexpr std::uint64_t kOps = 1500;
  const std::string name = unique_segment("fork-eq");
  SegmentJanitor janitor{name};

  auto arena = ShmArena::create(name, 1 << 20);
  ASSERT_TRUE(arena.has_value());
  const std::uint64_t off = arena->construct<TestCombining>();
  ASSERT_NE(off, 0u);
  ASSERT_TRUE(arena->publish("comb", off, sizeof(TestCombining),
                             TestCombining::kTypeTag));

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: reach the object the way a separate binary would — attach
    // by NAME (a fresh mapping at its own base address), resolve, tag
    // check. Plain _exit codes instead of gtest: the child must never
    // run the parent's test teardown.
    auto mine = ShmArena::attach(name);
    if (!mine.has_value()) ::_exit(10);
    const auto found = mine->resolve("comb");
    if (!found.has_value()) ::_exit(11);
    if (found->type_tag != TestCombining::kTypeTag) ::_exit(12);
    TestCombining& comb = *mine->at<TestCombining>(found->offset);
    NativeContext ctx(1);
    for (std::uint64_t i = 0; i < kOps; ++i) {
      const ModuleResult r =
          comb.invoke(ctx, fetch_inc((std::uint64_t{1} << 40) | i, 1));
      if (!r.committed()) ::_exit(13);
    }
    ::_exit(0);
  }

  // Parent: combine into the same object through its own mapping,
  // concurrently with the child.
  TestCombining& comb = *arena->at<TestCombining>(off);
  NativeContext ctx(0);
  std::set<Response> mine;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    const ModuleResult r = comb.invoke(ctx, fetch_inc(i, 0));
    ASSERT_TRUE(r.committed());
    mine.insert(r.response);
  }

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  comb.drain(ctx);
  // Exact equivalence: both processes' ops landed exactly once.
  EXPECT_EQ(comb.object().value(), static_cast<std::int64_t>(2 * kOps));
  // The parent's tickets alone are distinct and within range.
  EXPECT_EQ(mine.size(), kOps);
  EXPECT_LT(*mine.rbegin(), static_cast<Response>(2 * kOps));
  EXPECT_EQ(comb.occupied(), 0u);
  EXPECT_EQ(comb.reclaim_dead(), 0u);  // nothing dead, nothing swept
}

// ---------------------------------------------------------------------------
// Crash reclaim: the publisher dies, the operation does not get lost,
// and the residue is swept.

TEST(ShmCombining, SigkilledPublisherIsExecutedThenReclaimed) {
  const std::string name = unique_segment("reclaim");
  SegmentJanitor janitor{name};

  auto arena = ShmArena::create(name, 1 << 20);
  ASSERT_TRUE(arena.has_value());
  const std::uint64_t off = arena->construct<TestCombining>();
  ASSERT_NE(off, 0u);
  TestCombining& comb = *arena->at<TestCombining>(off);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: publish ONE op with may_combine = false. With no server
    // anywhere, this blocks in the collect spin forever — exactly the
    // window the SIGKILL below lands in. The inherited MAP_SHARED
    // mapping is the same physical object the parent sees.
    NativeContext ctx(1);
    (void)comb.invoke(ctx, fetch_inc(1, 1), std::nullopt,
                      /*may_combine=*/false);
    ::_exit(0);  // unreachable: the parent kills us mid-wait
  }

  // Wait until the child's publication is visible (kPending), so the
  // kill deterministically lands between publish and collect.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (comb.pending() == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "child never published";
    std::this_thread::yield();
  }

  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // The publication survived its publisher.
  EXPECT_EQ(comb.pending(), 1u);
  // kPending is exempt from reclaim: the op must execute, not vanish.
  EXPECT_EQ(comb.reclaim_dead(), 0u);
  EXPECT_EQ(comb.pending(), 1u);

  // A combine pass executes the dead publisher's op...
  NativeContext ctx(0);
  EXPECT_TRUE(comb.try_serve(ctx));
  EXPECT_EQ(comb.object().value(), 1);
  // ...leaving a kDone record no one will ever collect.
  EXPECT_EQ(comb.pending(), 0u);
  EXPECT_EQ(comb.occupied(), 1u);

  // The injectable probe gates the sweep: with every pid declared
  // alive nothing is touched; with the real probe the corpse's record
  // is freed.
  EXPECT_EQ(comb.reclaim_dead([](std::uint32_t) { return true; }), 0u);
  EXPECT_EQ(comb.occupied(), 1u);
  EXPECT_EQ(comb.reclaim_dead(), 1u);
  EXPECT_EQ(comb.occupied(), 0u);

  // The object is fully serviceable again after the sweep.
  EXPECT_TRUE(comb.invoke(ctx, fetch_inc(2, 0)).committed());
  EXPECT_EQ(comb.object().value(), 2);
}

}  // namespace
}  // namespace scm

#else  // !SCM_HAS_POSIX_SHM

TEST(Shm, SkippedOnThisPlatform) {
  GTEST_SKIP() << "POSIX shared memory is unavailable on this target";
}

#endif
