// Tests for the speculative test-and-set stack (Section 6 + Appendix B):
//  * A1 solo behaviour, constant step complexity, Lemma 6 (never aborts
//    absent step contention), the Lemma-4 invariants;
//  * A2 wait-freedom;
//  * the composed one-shot TAS: unique winner, wait-freedom,
//    linearizability (Theorem 4), Definition-2 safe composability of
//    recorded traces (Lemma 4 + Lemma 5 + Theorem 2);
//  * the long-lived resettable object;
//  * the solo-fast variant.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "core/constraint.hpp"
#include "core/interpretation.hpp"
#include "core/trace.hpp"
#include "lincheck/lincheck.hpp"
#include "sim/explorer.hpp"
#include "sim/schedules.hpp"
#include "sim/sim_platform.hpp"
#include "sim/simulator.hpp"
#include "tas/a1_module.hpp"
#include "tas/a2_module.hpp"
#include "tas/long_lived_tas.hpp"
#include "tas/speculative_tas.hpp"

namespace scm {
namespace {

using sim::SimContext;
using sim::SimPlatform;
using sim::Simulator;

Request tas_req(std::uint64_t id, ProcessId p) {
  return Request{id, p, TasSpec::kTestAndSet, 0};
}

// ---------------------------------------------------------------------------
// A1 — the obstruction-free module

TEST(A1, SoloProcessWins) {
  Simulator s;
  ObstructionFreeTas<SimPlatform> a1;
  ModuleResult r;
  s.add_process(
      [&](SimContext& ctx) { r = a1.invoke(ctx, tas_req(1, 0)); });
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_TRUE(r.committed());
  EXPECT_EQ(r.response, TasSpec::kWinner);
}

TEST(A1, SequentialSecondProcessLoses) {
  Simulator s;
  ObstructionFreeTas<SimPlatform> a1;
  std::vector<ModuleResult> rs(2);
  for (int p = 0; p < 2; ++p) {
    s.add_process([&, p](SimContext& ctx) {
      rs[p] = a1.invoke(ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
    });
  }
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_TRUE(rs[0].committed());
  EXPECT_EQ(rs[0].response, TasSpec::kWinner);
  EXPECT_TRUE(rs[1].committed());
  EXPECT_EQ(rs[1].response, TasSpec::kLoser);
}

TEST(A1, EnteringWithLCommitsLoserImmediately) {
  Simulator s;
  ObstructionFreeTas<SimPlatform> a1;
  ModuleResult r;
  s.add_process([&](SimContext& ctx) {
    r = a1.invoke(ctx, tas_req(1, 0), TasConstraint::kL);
  });
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_TRUE(r.committed());
  EXPECT_EQ(r.response, TasSpec::kLoser);
}

TEST(A1, ConstantStepComplexity) {
  // Solo step count must not depend on anything: exactly the doorway
  // pass (Algorithm 1 winner path: aborted, V, P reads; P write; S
  // read; S write; P re-read; V write; aborted re-read = 9 steps).
  auto solo_steps = [](int bystanders) {
    Simulator s;
    ObstructionFreeTas<SimPlatform> a1;
    s.add_process([&](SimContext& ctx) { (void)a1.invoke(ctx, tas_req(1, 0)); });
    for (int p = 0; p < bystanders; ++p) s.add_process([](SimContext&) {});
    sim::SequentialSchedule sched;
    s.run(sched);
    return s.counters(0).total();
  };
  EXPECT_EQ(solo_steps(0), solo_steps(31));
  EXPECT_LE(solo_steps(0), 9u);
  // And zero RMWs: registers only.
  Simulator s;
  ObstructionFreeTas<SimPlatform> a1;
  s.add_process([&](SimContext& ctx) { (void)a1.invoke(ctx, tas_req(1, 0)); });
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_EQ(s.counters(0).rmws, 0u);
}

TEST(A1, Lemma6NeverAbortsWithoutStepContention) {
  // Lemma 6 is an execution-level guarantee: if *no* operation in the
  // execution experiences step contention, nothing aborts. (A single
  // aborting operation need not itself see contention: the entry check
  // reacts to a flag set by a process that did — the paper's proof
  // argues exactly that "process q experienced step contention".)
  int contention_free_runs = 0;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    Simulator s;
    constexpr int kN = 3;
    ObstructionFreeTas<SimPlatform> a1;
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        ctx.begin_op();
        const ModuleResult r =
            a1.invoke(ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
        ctx.end_op(r.committed() ? 1 : 0);
      });
    }
    sim::StickyRandomSchedule sched(seed, 0.7);
    s.run(sched);
    bool any_step_contention = false;
    bool any_abort = false;
    for (const auto& op : s.ops()) {
      if (!op.complete) continue;
      if (s.op_has_step_contention(op)) any_step_contention = true;
      if (op.output == 0) any_abort = true;
    }
    if (!any_step_contention) {
      ++contention_free_runs;
      EXPECT_FALSE(any_abort)
          << "abort in a step-contention-free execution (seed " << seed << ")";
    }
  }
  EXPECT_GT(contention_free_runs, 0) << "sweep never produced a clean run";
}

// The five invariants from the proof of Lemma 4, checked over every
// interleaving of three processes.
TEST(A1, Lemma4InvariantsExhaustive) {
  struct Obs {
    std::vector<ModuleResult> results;
    std::vector<std::uint64_t> return_order;  // pids in return order
  };
  auto obs = std::make_shared<Obs>();
  auto stats = sim::explore_all_schedules(
      [&]() {
        auto s = std::make_unique<Simulator>();
        auto a1 = std::make_shared<ObstructionFreeTas<SimPlatform>>();
        obs->results.assign(3, ModuleResult{});
        obs->return_order.clear();
        for (int p = 0; p < 3; ++p) {
          s->add_process([a1, obs, p](SimContext& ctx) {
            ctx.begin_op();
            obs->results[p] =
                a1->invoke(ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
            ctx.end_op();
          });
        }
        return s;
      },
      [&](Simulator& s) {
        const auto& rs = obs->results;
        int winners = 0;
        int w_aborts = 0;
        for (const auto& r : rs) {
          if (r.committed() && r.response == TasSpec::kWinner) ++winners;
          if (!r.committed() && r.switch_value == TasConstraint::kW) {
            ++w_aborts;
          }
        }
        // Invariant 1: at most one winner.
        ASSERT_LE(winners, 1);
        // Invariant 2: a winner excludes W-aborts.
        if (winners == 1) ASSERT_EQ(w_aborts, 0);
        // Invariant 3 (completed-run corollary): if anyone committed
        // loser, then someone either won or aborted with W.
        int losers = 0;
        for (const auto& r : rs) {
          if (r.committed() && r.response == TasSpec::kLoser) ++losers;
        }
        if (losers > 0) ASSERT_GE(winners + w_aborts, 1);
        // Invariants 4/5 need return/start ordering:
        // no W-abort may *start* after a loser commit returns; every op
        // starting after an abort returns must abort.
        const auto& ops = s.ops();
        for (const auto& later : ops) {
          for (const auto& earlier : ops) {
            if (earlier.response_event == 0 ||
                later.invoke_event < earlier.response_event) {
              continue;  // not "later starts after earlier returns"
            }
            const auto& r_earlier = rs[static_cast<std::size_t>(earlier.pid)];
            const auto& r_later = rs[static_cast<std::size_t>(later.pid)];
            if (r_earlier.committed() &&
                r_earlier.response == TasSpec::kLoser &&
                !r_later.committed()) {
              ASSERT_NE(r_later.switch_value, TasConstraint::kW)
                  << "W-abort started after a loser commit (Invariant 4)";
            }
            if (!r_earlier.committed()) {
              ASSERT_FALSE(r_later.committed())
                  << "operation starting after an abort committed "
                     "(Invariant 5)";
              if (r_earlier.switch_value == TasConstraint::kL) {
                ASSERT_EQ(r_later.switch_value, TasConstraint::kL)
                    << "op after an L-abort must abort with L (Invariant 5)";
              }
            }
          }
        }
      },
      /*max_runs=*/3'000);
  EXPECT_GT(stats.runs, 1'500u);
}

// Every A1 trace, over thousands of random schedules, must be safely
// composable w.r.t. Definition 3 — the executable form of Lemma 4.
TEST(A1, SafelyComposableUnderRandomSchedules) {
  TasConstraint M;
  int aborting_traces = 0;
  for (std::uint64_t seed = 0; seed < 400; ++seed) {
    Simulator s;
    constexpr int kN = 3;
    ObstructionFreeTas<SimPlatform> a1;
    TraceRecorder rec;
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        const Request m = tas_req(static_cast<std::uint64_t>(p) + 1, p);
        rec.invoke(p, m);
        const ModuleResult r = a1.invoke(ctx, m);
        if (r.committed()) {
          rec.commit(p, m, r.response);
        } else {
          rec.abort(p, m, r.switch_value);
        }
      });
    }
    sim::RandomSchedule sched(seed);
    s.run(sched);
    const Trace t = rec.trace();
    const auto verdict = check_safely_composable<TasSpec>(t, M);
    ASSERT_TRUE(verdict) << "seed " << seed << ": " << verdict.error;
    for (const auto& e : t.events()) {
      if (e.kind == EventKind::kAbort) {
        ++aborting_traces;
        break;
      }
    }
  }
  EXPECT_GT(aborting_traces, 0) << "sweep never produced an abort";
}

TEST(A1, SafelyComposableUnderCrashes) {
  TasConstraint M;
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    Simulator s;
    constexpr int kN = 3;
    ObstructionFreeTas<SimPlatform> a1;
    TraceRecorder rec;
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        const Request m = tas_req(static_cast<std::uint64_t>(p) + 1, p);
        rec.invoke(p, m);
        const ModuleResult r = a1.invoke(ctx, m);
        if (r.committed()) {
          rec.commit(p, m, r.response);
        } else {
          rec.abort(p, m, r.switch_value);
        }
      });
    }
    sim::RandomSchedule inner(seed);
    sim::RandomCrashSchedule sched(inner, seed * 31 + 7, 0.08, 1);
    s.run(sched);
    ComposabilityCheckOptions opts;
    for (int p = 0; p < kN; ++p) {
      if (s.crashed(p)) opts.crashed.insert(p);
    }
    const auto verdict = check_safely_composable<TasSpec>(rec.trace(), M, opts);
    ASSERT_TRUE(verdict) << "seed " << seed << ": " << verdict.error;
  }
}

// ---------------------------------------------------------------------------
// A2 — the wait-free module

TEST(A2, AlwaysCommitsOneWinner) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Simulator s;
    WaitFreeTas<SimPlatform> a2;
    constexpr int kN = 4;
    std::vector<ModuleResult> rs(kN);
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        rs[p] = a2.invoke(ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
      });
    }
    sim::RandomSchedule sched(seed);
    s.run(sched);
    int winners = 0;
    for (const auto& r : rs) {
      EXPECT_TRUE(r.committed());
      if (r.response == TasSpec::kWinner) ++winners;
    }
    EXPECT_EQ(winners, 1);
  }
}

TEST(A2, LInputCommitsLoserWithoutHardware) {
  Simulator s;
  WaitFreeTas<SimPlatform> a2;
  ModuleResult r;
  s.add_process([&](SimContext& ctx) {
    r = a2.invoke(ctx, tas_req(1, 0), TasConstraint::kL);
  });
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_TRUE(r.committed());
  EXPECT_EQ(r.response, TasSpec::kLoser);
  EXPECT_EQ(s.counters(0).rmws, 0u);  // never touched T
}

TEST(A2, SafelyComposableTraces) {
  // Lemma 5: A2 traces (with and without L inits) are safely
  // composable.
  TasConstraint M;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Simulator s;
    constexpr int kN = 3;
    WaitFreeTas<SimPlatform> a2;
    TraceRecorder rec;
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        const Request m = tas_req(static_cast<std::uint64_t>(p) + 1, p);
        rec.invoke(p, m);
        const ModuleResult r = a2.invoke(ctx, m);
        rec.commit(p, m, r.response);
      });
    }
    sim::RandomSchedule sched(seed);
    s.run(sched);
    const auto verdict = check_safely_composable<TasSpec>(rec.trace(), M);
    ASSERT_TRUE(verdict) << "seed " << seed << ": " << verdict.error;
  }
}

// ---------------------------------------------------------------------------
// The composed speculative TAS (Theorem 4)

TEST(SpeculativeTas, SoloWinsOnSpeculativePathWithZeroRmw) {
  Simulator s;
  SpeculativeTas<SimPlatform> tas;
  TasOutcome out;
  s.add_process(
      [&](SimContext& ctx) { out = tas.test_and_set(ctx, tas_req(1, 0)); });
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_TRUE(out.won());
  EXPECT_EQ(out.path, TasPath::kSpeculative);
  EXPECT_EQ(s.counters(0).rmws, 0u);
}

TEST(SpeculativeTas, ExactlyOneWinnerUnderRandomSchedules) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    Simulator s;
    constexpr int kN = 4;
    SpeculativeTas<SimPlatform> tas;
    std::vector<TasOutcome> outs(kN);
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        outs[p] =
            tas.test_and_set(ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
      });
    }
    sim::RandomSchedule sched(seed);
    s.run(sched);
    const long winners =
        std::count_if(outs.begin(), outs.end(),
                      [](const TasOutcome& o) { return o.won(); });
    ASSERT_EQ(winners, 1) << "seed " << seed;
  }
}

TEST(SpeculativeTas, ExhaustiveTwoProcessSafetyAndLinearizability) {
  auto outs = std::make_shared<std::vector<TasOutcome>>();
  auto stats = sim::explore_all_schedules(
      [&]() {
        auto s = std::make_unique<Simulator>();
        auto tas = std::make_shared<SpeculativeTas<SimPlatform>>();
        outs->assign(2, TasOutcome{});
        for (int p = 0; p < 2; ++p) {
          s->add_process([tas, outs, p](SimContext& ctx) {
            ctx.begin_op();
            (*outs)[p] = tas->test_and_set(
                ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
            ctx.end_op((*outs)[p].value);
          });
        }
        return s;
      },
      [&](Simulator& s) {
        const long winners =
            std::count_if(outs->begin(), outs->end(),
                          [](const TasOutcome& o) { return o.won(); });
        ASSERT_EQ(winners, 1);
        // Linearizability of the completed execution.
        std::vector<ConcurrentOp> ops;
        for (const auto& rec : s.ops()) {
          ConcurrentOp op;
          op.pid = rec.pid;
          op.request = tas_req(static_cast<std::uint64_t>(rec.pid) + 1, rec.pid);
          op.response = rec.output;
          op.invoke = rec.invoke_event;
          op.ret = rec.response_event;
          op.completed = rec.complete;
          ops.push_back(op);
        }
        ASSERT_TRUE(linearizable<TasSpec>(std::move(ops)));
      },
      /*max_runs=*/4'000);
  EXPECT_GT(stats.runs, 1'000u);
}

TEST(SpeculativeTas, LinearizableUnderRandomSchedulesWithCrashes) {
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    Simulator s;
    constexpr int kN = 4;
    SpeculativeTas<SimPlatform> tas;
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        ctx.begin_op();
        const TasOutcome out =
            tas.test_and_set(ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
        ctx.end_op(out.value);
      });
    }
    sim::RandomSchedule inner(seed);
    sim::RandomCrashSchedule sched(inner, seed ^ 0x5a5a, 0.06, 1);
    s.run(sched);
    std::vector<ConcurrentOp> ops;
    for (const auto& rec : s.ops()) {
      ConcurrentOp op;
      op.pid = rec.pid;
      op.request = tas_req(static_cast<std::uint64_t>(rec.pid) + 1, rec.pid);
      op.response = rec.output;
      op.invoke = rec.invoke_event;
      op.ret = rec.response_event;
      op.completed = rec.complete;
      ops.push_back(op);
    }
    ASSERT_TRUE(linearizable<TasSpec>(std::move(ops))) << "seed " << seed;
  }
}

TEST(SpeculativeTas, HardwarePathOnlyUnderContention) {
  // Sequential executions never touch the hardware module.
  Simulator s;
  constexpr int kN = 4;
  SpeculativeTas<SimPlatform> tas;
  std::vector<TasOutcome> outs(kN);
  for (int p = 0; p < kN; ++p) {
    s.add_process([&, p](SimContext& ctx) {
      outs[p] =
          tas.test_and_set(ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
    });
  }
  sim::SequentialSchedule sched;
  s.run(sched);
  for (const auto& o : outs) EXPECT_EQ(o.path, TasPath::kSpeculative);
}

TEST(SpeculativeTas, AtMostOneRmwPerOperation) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Simulator s;
    constexpr int kN = 4;
    SpeculativeTas<SimPlatform> tas;
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        (void)tas.test_and_set(ctx,
                               tas_req(static_cast<std::uint64_t>(p) + 1, p));
      });
    }
    sim::RandomSchedule sched(seed);
    s.run(sched);
    for (int p = 0; p < kN; ++p) {
      EXPECT_LE(s.counters(p).rmws, 1u) << "fence complexity exceeded";
    }
  }
}

TEST(SpeculativeTas, ComposedTraceSafelyComposable) {
  // Theorem 2 discharge: record the composed trace (A1 events plus
  // A2 events with their init tokens) and check Definition 2 on the
  // A2 projection initialized by A1's aborts, and on the full
  // composition's outer trace.
  TasConstraint M;
  int composed_runs = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Simulator s;
    constexpr int kN = 3;
    ObstructionFreeTas<SimPlatform> a1;
    WaitFreeTas<SimPlatform> a2;
    TraceRecorder outer;  // the composition's trace
    TraceRecorder inner;  // A2's trace, with init events
    bool used_a2 = false;
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        const Request m = tas_req(static_cast<std::uint64_t>(p) + 1, p);
        outer.invoke(p, m);
        const ModuleResult first = a1.invoke(ctx, m);
        if (first.committed()) {
          outer.commit(p, m, first.response);
          return;
        }
        inner.init(p, m, first.switch_value);
        used_a2 = true;
        const ModuleResult second = a2.invoke(ctx, m, first.switch_value);
        inner.commit(p, m, second.response);
        outer.commit(p, m, second.response);
      });
    }
    sim::RandomSchedule sched(seed);
    s.run(sched);
    // The composition never aborts, so its outer trace must be safely
    // composable (and, by Theorem 3, linearizable).
    auto verdict = check_safely_composable<TasSpec>(outer.trace(), M);
    ASSERT_TRUE(verdict) << "outer, seed " << seed << ": " << verdict.error;
    if (used_a2) {
      ++composed_runs;
      verdict = check_safely_composable<TasSpec>(inner.trace(), M);
      ASSERT_TRUE(verdict) << "inner, seed " << seed << ": " << verdict.error;
    }
  }
  EXPECT_GT(composed_runs, 0) << "contention never reached A2";
}

// ---------------------------------------------------------------------------
// Long-lived resettable TAS (Algorithm 2)

TEST(LongLivedTas, WinnerResetsAndObjectIsReusable) {
  Simulator s;
  LongLivedTas<SimPlatform> tas(1, 8);
  std::vector<TasOutcome> outs;
  s.add_process([&](SimContext& ctx) {
    for (std::uint64_t round = 0; round < 4; ++round) {
      outs.push_back(tas.test_and_set(ctx, tas_req(round + 1, 0)));
      tas.reset(ctx);
    }
  });
  sim::SequentialSchedule sched;
  s.run(sched);
  ASSERT_EQ(outs.size(), 4u);
  for (const auto& o : outs) {
    EXPECT_TRUE(o.won());
    EXPECT_EQ(o.path, TasPath::kSpeculative);  // reset reverts to A1
  }
  EXPECT_EQ(tas.round(), 4u);
}

TEST(LongLivedTas, NonWinnerResetIsIgnored) {
  Simulator s;
  LongLivedTas<SimPlatform> tas(2, 8);
  s.add_process([&](SimContext& ctx) {
    (void)tas.test_and_set(ctx, tas_req(1, 0));  // wins round 0
  });
  s.add_process([&](SimContext& ctx) {
    (void)tas.test_and_set(ctx, tas_req(2, 1));  // loses
    tas.reset(ctx);                              // must be a no-op
  });
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_EQ(tas.round(), 0u);
}

TEST(LongLivedTas, OneWinnerPerRoundUnderContention) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Simulator s;
    constexpr int kN = 3;
    constexpr int kRounds = 3;
    LongLivedTas<SimPlatform> tas(kN, 16);
    // Per-round winner counts.
    std::vector<std::vector<int>> wins(kRounds, std::vector<int>(kN, 0));
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        for (int round = 0; round < kRounds; ++round) {
          const auto id = static_cast<std::uint64_t>(p) * 100 +
                          static_cast<std::uint64_t>(round) + 1;
          const TasOutcome o = tas.test_and_set(ctx, tas_req(id, p));
          if (o.won()) {
            wins[round][p] = 1;
            tas.reset(ctx);
          }
        }
      });
    }
    sim::RandomSchedule sched(seed);
    s.run(sched);
    // Note: processes may play "rounds" faster than the object's Count
    // advances; we only require that no global round had two winners.
    // Count ≥ total wins is the strong invariant here:
    int total_wins = 0;
    for (const auto& row : wins) {
      for (int w : row) total_wins += w;
    }
    EXPECT_EQ(tas.round(), static_cast<std::uint64_t>(total_wins))
        << "rounds advanced != wins (seed " << seed << ")";
  }
}

TEST(LongLivedTas, RecyclingReusesSlots) {
  Simulator s;
  LongLivedTas<SimPlatform> tas(1, 4, /*recycle=*/true);
  int wins = 0;
  s.add_process([&](SimContext& ctx) {
    for (std::uint64_t round = 0; round < 12; ++round) {  // 3 full cycles
      if (tas.test_and_set(ctx, tas_req(round + 1, 0)).won()) {
        ++wins;
        tas.reset(ctx);
      }
    }
  });
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_EQ(wins, 12);
  EXPECT_EQ(tas.round(), 12u);
}

// ---------------------------------------------------------------------------
// Solo-fast variant (Appendix B)

TEST(SoloFast, SoloPathIdenticalToBase) {
  Simulator s;
  SoloFastTas<SimPlatform> tas;
  TasOutcome out;
  s.add_process(
      [&](SimContext& ctx) { out = tas.test_and_set(ctx, tas_req(1, 0)); });
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_TRUE(out.won());
  EXPECT_EQ(out.path, TasPath::kSpeculative);
  EXPECT_EQ(s.counters(0).rmws, 0u);
}

TEST(SoloFast, ExactlyOneWinnerUnderRandomSchedules) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    Simulator s;
    constexpr int kN = 4;
    SoloFastTas<SimPlatform> tas;
    std::vector<TasOutcome> outs(kN);
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        outs[p] =
            tas.test_and_set(ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
      });
    }
    sim::RandomSchedule sched(seed);
    s.run(sched);
    const long winners =
        std::count_if(outs.begin(), outs.end(),
                      [](const TasOutcome& o) { return o.won(); });
    ASSERT_EQ(winners, 1) << "seed " << seed;
  }
}

TEST(SoloFast, ExhaustiveTwoProcessSafety) {
  auto outs = std::make_shared<std::vector<TasOutcome>>();
  auto stats = sim::explore_all_schedules(
      [&]() {
        auto s = std::make_unique<Simulator>();
        auto tas = std::make_shared<SoloFastTas<SimPlatform>>();
        outs->assign(2, TasOutcome{});
        for (int p = 0; p < 2; ++p) {
          s->add_process([tas, outs, p](SimContext& ctx) {
            (*outs)[p] = tas->test_and_set(
                ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
          });
        }
        return s;
      },
      [&](Simulator&) {
        const long winners =
            std::count_if(outs->begin(), outs->end(),
                          [](const TasOutcome& o) { return o.won(); });
        ASSERT_EQ(winners, 1);
      },
      /*max_runs=*/4'000);
  EXPECT_GT(stats.runs, 500u);
}

TEST(SoloFast, UncontendedProcessAvoidsHardwareEvenAfterOthersContend) {
  // The defining property: after a contended burst (which pushes the
  // *contending* processes to hardware), a later, uncontended process
  // still runs on registers in the base A1 only if aborted was never
  // set... base A1 aborts on entry; solo-fast keeps committing
  // speculatively because it skips the aborted check — it either sees
  // V=1 (loser via registers) or races the doorway alone.
  Simulator s;
  SoloFastTas<SimPlatform> tas;
  std::vector<TasOutcome> outs(3);
  for (int p = 0; p < 2; ++p) {
    s.add_process([&, p](SimContext& ctx) {
      outs[p] =
          tas.test_and_set(ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
    });
  }
  // p2 arrives strictly after the contended pair finished.
  s.add_process([&](SimContext& ctx) { outs[2] = tas.test_and_set(ctx, tas_req(3, 2)); });
  sim::RoundRobinSchedule rr(1);
  // Run p0/p1 interleaved, p2 last: round-robin naturally finishes p0/p1
  // before p2 only under a phased schedule; use SoloSchedule on p2
  // reversed — simplest is sequential-after: run all with round robin
  // quantum large enough that p2 goes last.
  sim::SequentialSchedule seq;
  (void)rr;
  s.run(seq);  // sequential: nobody contends; all speculative
  for (const auto& o : outs) EXPECT_EQ(o.path, TasPath::kSpeculative);
}

// Schedule that interleaves p0/p1 randomly and lets p2 run only once
// both are done: the "uncontended bystander" pattern of Appendix B.
class PairFirstSchedule final : public sim::Schedule {
 public:
  explicit PairFirstSchedule(std::uint64_t seed) : rng_(seed) {}
  ProcessId next(const View& view) override {
    std::vector<ProcessId> pair;
    for (ProcessId p : view.runnable) {
      if (p < 2) pair.push_back(p);
    }
    if (!pair.empty()) return pair[rng_.below(pair.size())];
    return view.runnable.front();
  }

 private:
  Rng rng_;
};

TEST(SoloFast, BystanderNeverUsesHardware) {
  // The defining Appendix-B property: a process that never itself
  // encounters step contention (here: p2, which runs strictly after the
  // contended pair) never touches the hardware object in the solo-fast
  // variant, regardless of what the pair did.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Simulator s;
    SoloFastTas<SimPlatform> tas;
    std::vector<TasOutcome> outs(3);
    for (int p = 0; p < 2; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        outs[p] =
            tas.test_and_set(ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
      });
    }
    s.add_process(
        [&](SimContext& ctx) { outs[2] = tas.test_and_set(ctx, tas_req(3, 2)); });
    PairFirstSchedule sched(seed * 13 + 1);
    s.run(sched);
    const long winners =
        std::count_if(outs.begin(), outs.end(),
                      [](const TasOutcome& o) { return o.won(); });
    ASSERT_EQ(winners, 1) << "seed " << seed;
    ASSERT_EQ(outs[2].path, TasPath::kSpeculative)
        << "uncontended bystander used hardware (seed " << seed << ")";
  }
}

TEST(SpeculativeTas, LateArrivalAfterLoserCommitRegression) {
  // Regression for the soundness repair in A1's entry check (see
  // a1_module.hpp): p0 commits loser through the doorway while V is
  // still 0; p1 detects contention and aborts; p2 invokes strictly
  // after p0's commit returned. With the paper's literal pseudocode p2
  // aborts with W, races p1 on the hardware TAS and can win — a winner
  // following a loser in real time. With the repair p2 must lose, and
  // every interleaving of the continuation stays linearizable.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Simulator s;
    SpeculativeTas<SimPlatform> tas;
    std::vector<TasOutcome> outs(3);
    for (int p = 0; p < 2; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        ctx.begin_op();
        outs[p] =
            tas.test_and_set(ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
        ctx.end_op(outs[p].value);
      });
    }
    s.add_process([&](SimContext& ctx) {
      ctx.begin_op();
      outs[2] = tas.test_and_set(ctx, tas_req(3, 2));
      ctx.end_op(outs[2].value);
    });
    // Random interleaving of everyone: includes the bad pattern.
    sim::RandomSchedule sched(seed * 7919 + 176);
    s.run(sched);
    std::vector<ConcurrentOp> ops;
    for (const auto& rec : s.ops()) {
      ConcurrentOp op;
      op.pid = rec.pid;
      op.request = tas_req(static_cast<std::uint64_t>(rec.pid) + 1, rec.pid);
      op.response = rec.output;
      op.invoke = rec.invoke_event;
      op.ret = rec.response_event;
      op.completed = rec.complete;
      ops.push_back(op);
    }
    ASSERT_TRUE(linearizable<TasSpec>(std::move(ops))) << "seed " << seed;
  }
}

}  // namespace
}  // namespace scm
