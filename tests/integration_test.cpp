// Cross-module integration and remaining-surface tests:
//  * the biased lock (mutual exclusion, owner fast path, round flow);
//  * A1 composed with itself (Section 6.3: "module A1 can also be
//    composed with itself") and deeper chains via the variadic
//    pipeline combinator;
//  * trace recorder ordering;
//  * schedule policies' behavioural contracts;
//  * crash injection through the full universal chain.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>
#include <vector>

#include "consensus/cas_consensus.hpp"
#include "consensus/split_consensus.hpp"
#include "core/interpretation.hpp"
#include "core/module.hpp"
#include "core/pipeline.hpp"
#include "core/trace.hpp"
#include "history/specs.hpp"
#include "lincheck/lincheck.hpp"
#include "sim/schedules.hpp"
#include "sim/sim_platform.hpp"
#include "sim/simulator.hpp"
#include "tas/a1_module.hpp"
#include "tas/a2_module.hpp"
#include "tas/biased_lock.hpp"
#include "tas/speculative_tas.hpp"
#include "universal/composable_universal.hpp"
#include "universal/universal_chain.hpp"

namespace scm {
namespace {

using sim::SimContext;
using sim::SimPlatform;
using sim::Simulator;

Request tas_req(std::uint64_t id, ProcessId p) {
  return Request{id, p, TasSpec::kTestAndSet, 0};
}

// ---------------------------------------------------------------------------
// BiasedLock

TEST(BiasedLock, MutualExclusionUnderRandomSchedules) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Simulator s;
    constexpr int kN = 3;
    constexpr int kAcquires = 3;
    BiasedLock<SimPlatform> lock(kN, 256, /*recycle=*/false);
    int in_critical = 0;
    int max_in_critical = 0;
    long shared_counter = 0;
    for (int p = 0; p < kN; ++p) {
      s.add_process([&](SimContext& ctx) {
        for (int i = 0; i < kAcquires; ++i) {
          lock.lock(ctx);
          ++in_critical;
          max_in_critical = std::max(max_in_critical, in_critical);
          ++shared_counter;  // protected update
          --in_critical;
          lock.unlock(ctx);
        }
      });
    }
    // Random schedule so the holder always eventually runs.
    sim::RandomSchedule sched(seed * 31 + 5);
    s.run(sched);
    EXPECT_FALSE(s.hit_step_limit()) << "seed " << seed;
    EXPECT_EQ(max_in_critical, 1) << "mutual exclusion violated, seed " << seed;
    EXPECT_EQ(shared_counter, kN * kAcquires);
  }
}

TEST(BiasedLock, OwnerFastPathUsesNoRmw) {
  Simulator s;
  BiasedLock<SimPlatform> lock(1, 64, /*recycle=*/true);
  s.add_process([&](SimContext& ctx) {
    for (int i = 0; i < 20; ++i) {
      lock.lock(ctx);
      lock.unlock(ctx);
    }
  });
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_EQ(s.counters(0).rmws, 0u);
  EXPECT_EQ(lock.rounds_played(), 20u);
}

TEST(BiasedLock, StepsPerUncontendedAcquireConstant) {
  auto steps_for = [](int acquires) {
    Simulator s;
    BiasedLock<SimPlatform> lock(1, 128, /*recycle=*/true);
    s.add_process([&](SimContext& ctx) {
      for (int i = 0; i < acquires; ++i) {
        lock.lock(ctx);
        lock.unlock(ctx);
      }
    });
    sim::SequentialSchedule sched;
    s.run(sched);
    return static_cast<double>(s.counters(0).total()) / acquires;
  };
  // Per-acquire cost must not grow with the number of rounds played.
  EXPECT_NEAR(steps_for(8), steps_for(64), 1.0);
}

// ---------------------------------------------------------------------------
// Composition combinator chains

TEST(Composed, A1WithItselfThenHardwareIsCorrect) {
  // Section 6.3: "module A1 can also be composed with itself". Build
  // A1 ∘ A1 ∘ A2 via the variadic pipeline and check TAS safety
  // across schedules.
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    Simulator s;
    constexpr int kN = 3;
    ObstructionFreeTas<SimPlatform> first;
    ObstructionFreeTas<SimPlatform> second;
    WaitFreeTas<SimPlatform> final_stage;
    auto chain = make_pipeline(first, second, final_stage);
    static_assert(decltype(chain)::kConsensusNumber == 2);
    static_assert(decltype(chain)::kDepth == 3);

    std::vector<ModuleResult> rs(kN);
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        ctx.begin_op();
        rs[p] = chain.invoke(ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
        ctx.end_op(rs[p].response);
      });
    }
    sim::RandomSchedule sched(seed * 17 + 9);
    s.run(sched);
    int winners = 0;
    for (const auto& r : rs) {
      ASSERT_TRUE(r.committed());  // the chain ends wait-free
      if (r.response == TasSpec::kWinner) ++winners;
    }
    ASSERT_EQ(winners, 1) << "seed " << seed;

    std::vector<ConcurrentOp> ops;
    for (const auto& rec : s.ops()) {
      ConcurrentOp op;
      op.pid = rec.pid;
      op.request = tas_req(static_cast<std::uint64_t>(rec.pid) + 1, rec.pid);
      op.response = rec.output;
      op.invoke = rec.invoke_event;
      op.ret = rec.response_event;
      op.completed = rec.complete;
      ops.push_back(op);
    }
    ASSERT_TRUE(linearizable<TasSpec>(std::move(ops))) << "seed " << seed;
  }
}

TEST(Composed, SoloPathNeverReachesSecondModule) {
  Simulator s;
  ObstructionFreeTas<SimPlatform> a1;
  WaitFreeTas<SimPlatform> a2;
  auto chain = make_pipeline(a1, a2);
  ModuleResult r;
  s.add_process([&](SimContext& ctx) { r = chain.invoke(ctx, tas_req(1, 0)); });
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_TRUE(r.committed());
  EXPECT_EQ(r.response, TasSpec::kWinner);
  EXPECT_EQ(s.counters(0).rmws, 0u);  // A2's hardware untouched
}

// ---------------------------------------------------------------------------
// TraceRecorder

TEST(TraceRecorder, AssignsMonotoneSequence) {
  TraceRecorder rec;
  const Request r1 = tas_req(1, 0), r2 = tas_req(2, 1);
  rec.invoke(0, r1);
  rec.invoke(1, r2);
  rec.commit(0, r1, TasSpec::kWinner);
  rec.abort(1, r2, TasConstraint::kL);
  const Trace t = rec.trace();
  ASSERT_EQ(t.size(), 4u);
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_LT(t.events()[i - 1].seq, t.events()[i].seq);
  }
  EXPECT_EQ(t.abort_tokens().size(), 1u);
  EXPECT_EQ(t.abort_tokens()[0].value, TasConstraint::kL);
  rec.clear();
  EXPECT_TRUE(rec.trace().empty());
}

TEST(TraceRecorder, ProjectionKeepsPerProcessOrder) {
  TraceRecorder rec;
  const Request r1 = tas_req(1, 0), r2 = tas_req(2, 1);
  rec.invoke(0, r1);
  rec.invoke(1, r2);
  rec.commit(1, r2, TasSpec::kWinner);
  rec.commit(0, r1, TasSpec::kLoser);
  const Trace p0 = rec.trace().project(0);
  ASSERT_EQ(p0.size(), 2u);
  EXPECT_EQ(p0.events()[0].kind, EventKind::kInvoke);
  EXPECT_EQ(p0.events()[1].kind, EventKind::kCommit);
}

// ---------------------------------------------------------------------------
// Schedule policy contracts

TEST(Schedules, SoloScheduleRunsHeroToCompletionFirst) {
  Simulator s;
  sim::SimRegister<int> reg(0);
  std::vector<int> finish_order;
  for (int p = 0; p < 3; ++p) {
    s.add_process([&, p](SimContext& ctx) {
      for (int i = 0; i < 3; ++i) (void)reg.read(ctx);
      finish_order.push_back(p);
    });
  }
  sim::SoloSchedule sched(/*hero=*/2);
  s.run(sched);
  ASSERT_EQ(finish_order.size(), 3u);
  EXPECT_EQ(finish_order[0], 2);
}

TEST(Schedules, StickyRandomWithStickinessOneIsSequentialPerOp) {
  Simulator s;
  sim::SimRegister<int> reg(0);
  for (int p = 0; p < 3; ++p) {
    s.add_process([&](SimContext& ctx) {
      ctx.begin_op();
      for (int i = 0; i < 4; ++i) (void)reg.read(ctx);
      ctx.end_op();
    });
  }
  sim::StickyRandomSchedule sched(3, 1.0);
  s.run(sched);
  for (const auto& op : s.ops()) {
    EXPECT_FALSE(s.op_has_step_contention(op));
  }
}

TEST(Schedules, RoundRobinQuantumControlsInterleavingGranularity) {
  auto contention_with_quantum = [](std::uint64_t quantum) {
    Simulator s;
    sim::SimRegister<int> reg(0);
    for (int p = 0; p < 2; ++p) {
      s.add_process([&](SimContext& ctx) {
        ctx.begin_op();
        for (int i = 0; i < 4; ++i) (void)reg.read(ctx);
        ctx.end_op();
      });
    }
    sim::RoundRobinSchedule sched(quantum);
    s.run(sched);
    int contended = 0;
    for (const auto& op : s.ops()) {
      if (s.op_has_step_contention(op)) ++contended;
    }
    return contended;
  };
  EXPECT_GT(contention_with_quantum(1), 0);
  // A quantum covering the whole op (4 steps + startup) removes overlap.
  EXPECT_EQ(contention_with_quantum(64), 0);
}

// ---------------------------------------------------------------------------
// Crash injection through the universal chain

TEST(UniversalChain, SurvivorsStayCorrectUnderCrashes) {
  using SplitStage = ComposableUniversal<SimPlatform, CounterSpec,
                                         SplitConsensus<SimPlatform>, 48>;
  using CasStage = ComposableUniversal<SimPlatform, CounterSpec,
                                       CasConsensus<SimPlatform>, 48>;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    constexpr int kN = 4;
    std::vector<std::unique_ptr<AbstractStage<SimPlatform>>> stages;
    stages.push_back(std::make_unique<SplitStage>(kN, 48, "split"));
    stages.push_back(std::make_unique<CasStage>(kN, 48, "cas"));
    UniversalChain<SimPlatform, CounterSpec> chain(kN, std::move(stages));

    Simulator s;
    std::vector<std::vector<Response>> got(kN);
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        for (int i = 0; i < 2; ++i) {
          const auto id = static_cast<std::uint64_t>(p) * 100 +
                          static_cast<std::uint64_t>(i) + 1;
          got[p].push_back(
              chain.perform(ctx, Request{id, p, CounterSpec::kFetchInc, 0})
                  .response);
        }
      });
    }
    sim::RandomSchedule inner(seed);
    sim::RandomCrashSchedule sched(inner, seed ^ 0xbeef, 0.05, 1);
    s.run(sched);
    // Survivors' responses must be distinct (no duplicated counter
    // values), and crashed processes may leave gaps.
    std::set<Response> all;
    std::size_t completed = 0;
    for (const auto& rs : got) {
      for (Response r : rs) {
        EXPECT_TRUE(all.insert(r).second)
            << "duplicate fetch&inc " << r << " (seed " << seed << ")";
        ++completed;
      }
    }
    EXPECT_EQ(all.size(), completed);
  }
}

// ---------------------------------------------------------------------------
// Module result helpers

TEST(ModuleResult, FactoryHelpers) {
  const ModuleResult c = ModuleResult::commit(7);
  EXPECT_TRUE(c.committed());
  EXPECT_EQ(c.response, 7);
  const ModuleResult a = ModuleResult::abort_with(3);
  EXPECT_FALSE(a.committed());
  EXPECT_EQ(a.switch_value, 3);
}

TEST(ConsensusResult, FactoryHelpers) {
  const ConsensusResult c = ConsensusResult::commit(9);
  EXPECT_TRUE(c.committed());
  EXPECT_EQ(c.value, 9);
  const ConsensusResult a = ConsensusResult::abort_with(kBottom);
  EXPECT_FALSE(a.committed());
}

}  // namespace
}  // namespace scm
