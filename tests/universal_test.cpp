// Tests for the snapshot log, Herlihy's universal construction, the
// composable universal construction (Abstract), and the three-stage
// chain of Proposition 1 — with every recorded Abstract trace run
// through the Definition-1 checker and every committed execution
// checked for linearizable counter behaviour.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <optional>
#include <set>
#include <vector>

#include "consensus/abortable_bakery.hpp"
#include "consensus/cas_consensus.hpp"
#include "consensus/split_consensus.hpp"
#include "core/abstract_checker.hpp"
#include "core/trace.hpp"
#include "history/specs.hpp"
#include "sim/schedules.hpp"
#include "sim/sim_platform.hpp"
#include "sim/simulator.hpp"
#include "universal/composable_universal.hpp"
#include "universal/herlihy.hpp"
#include "universal/snapshot.hpp"
#include "universal/universal_chain.hpp"

namespace scm {
namespace {

using sim::SimContext;
using sim::SimPlatform;
using sim::Simulator;

Request req(std::uint64_t id, ProcessId p, std::int64_t op = 0,
            std::int64_t arg = 0) {
  return Request{id, p, op, arg};
}

// ---------------------------------------------------------------------------
// SnapshotLog

TEST(SnapshotLog, AppendScanRoundTrip) {
  Simulator s;
  SnapshotLog<SimPlatform, std::int64_t, 8> log(2);
  s.add_process([&](SimContext& ctx) {
    log.append(ctx, 10);
    log.append(ctx, 11);
  });
  s.add_process([&](SimContext& ctx) { log.append(ctx, 20); });
  sim::SequentialSchedule sched;
  s.run(sched);

  Simulator s2;
  std::vector<std::vector<std::int64_t>> view;
  // scan from a fresh simulated process over the same (plain) storage
  // is not possible across simulators; scan within the same run:
  Simulator s3;
  SnapshotLog<SimPlatform, std::int64_t, 8> log3(2);
  s3.add_process([&](SimContext& ctx) {
    log3.append(ctx, 1);
    log3.append(ctx, 2);
    view = log3.scan(ctx);
  });
  s3.add_process([&](SimContext& ctx) { log3.append(ctx, 9); });
  sim::SequentialSchedule sched3;
  s3.run(sched3);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], (std::vector<std::int64_t>{1, 2}));
  EXPECT_TRUE(view[1].empty());  // p1 had not run yet under sequential
}

TEST(SnapshotLog, ScanIsConsistentCutUnderInterleaving) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Simulator s;
    SnapshotLog<SimPlatform, std::int64_t, 16> log(3);
    std::vector<std::vector<std::int64_t>> view;
    s.add_process([&](SimContext& ctx) {
      for (int i = 0; i < 8; ++i) log.append(ctx, i);
    });
    s.add_process([&](SimContext& ctx) {
      for (int i = 100; i < 108; ++i) log.append(ctx, i);
    });
    s.add_process([&](SimContext& ctx) { view = log.scan(ctx); });
    sim::RandomSchedule sched(seed);
    s.run(sched);
    // Consistency: each component is a prefix of the writer's sequence.
    ASSERT_EQ(view.size(), 3u);
    for (std::size_t i = 0; i < view[0].size(); ++i) {
      EXPECT_EQ(view[0][i], static_cast<std::int64_t>(i));
    }
    for (std::size_t i = 0; i < view[1].size(); ++i) {
      EXPECT_EQ(view[1][i], static_cast<std::int64_t>(100 + i));
    }
  }
}

TEST(SnapshotLog, ReadSlotReturnsWrittenValue) {
  Simulator s;
  SnapshotLog<SimPlatform, std::int64_t, 4> log(2);
  std::int64_t got = -1;
  s.add_process([&](SimContext& ctx) {
    const auto idx = log.append(ctx, 77);
    got = log.read_slot(ctx, 0, idx);
  });
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_EQ(got, 77);
}

// ---------------------------------------------------------------------------
// HerlihyUniversal

TEST(HerlihyUniversal, SequentialCounterBehaviour) {
  Simulator s;
  HerlihyUniversal<SimPlatform, CounterSpec, 16> uni(3, 64);
  std::vector<Response> responses(3, kNoResponse);
  for (int p = 0; p < 3; ++p) {
    s.add_process([&, p](SimContext& ctx) {
      responses[p] =
          uni.perform(ctx, req(static_cast<std::uint64_t>(p) + 1, p,
                               CounterSpec::kFetchInc));
    });
  }
  sim::SequentialSchedule sched;
  s.run(sched);
  std::vector<Response> sorted = responses;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<Response>{0, 1, 2}));
}

TEST(HerlihyUniversal, FetchIncUniqueUnderRandomSchedules) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Simulator s;
    constexpr int kN = 4;
    constexpr int kOpsPer = 3;
    HerlihyUniversal<SimPlatform, CounterSpec, 16> uni(kN, 128);
    std::vector<std::vector<Response>> responses(kN);
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        for (int i = 0; i < kOpsPer; ++i) {
          const auto id =
              static_cast<std::uint64_t>(p) * 100 + static_cast<std::uint64_t>(i) + 1;
          responses[p].push_back(
              uni.perform(ctx, req(id, p, CounterSpec::kFetchInc)));
        }
      });
    }
    sim::RandomSchedule sched(seed);
    s.run(sched);
    // fetch&inc responses must be exactly {0 .. kN*kOpsPer-1}.
    std::set<Response> all;
    for (const auto& rs : responses) {
      for (Response r : rs) all.insert(r);
    }
    EXPECT_EQ(all.size(), static_cast<std::size_t>(kN * kOpsPer))
        << "duplicate fetch&inc values (seed " << seed << ")";
    EXPECT_EQ(*all.begin(), 0);
    EXPECT_EQ(*all.rbegin(), kN * kOpsPer - 1);
    // Per-process responses must be increasing (program order).
    for (const auto& rs : responses) {
      for (std::size_t i = 1; i < rs.size(); ++i) {
        EXPECT_LT(rs[i - 1], rs[i]);
      }
    }
  }
}

TEST(HerlihyUniversal, EveryOperationUsesRmw) {
  Simulator s;
  HerlihyUniversal<SimPlatform, CounterSpec, 16> uni(1, 16);
  s.add_process([&](SimContext& ctx) {
    (void)uni.perform(ctx, req(1, 0, CounterSpec::kFetchInc));
  });
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_GE(s.counters(0).rmws, 1u);  // Proposition 2: consensus is paid
}

// ---------------------------------------------------------------------------
// ComposableUniversal: single stage

using SplitStage =
    ComposableUniversal<SimPlatform, CounterSpec, SplitConsensus<SimPlatform>, 32>;
using BakeryStage =
    ComposableUniversal<SimPlatform, CounterSpec, AbortableBakery<SimPlatform>, 32>;
using CasStage =
    ComposableUniversal<SimPlatform, CounterSpec, CasConsensus<SimPlatform>, 32>;

TEST(ComposableUniversal, SoloCommitsWithRegistersOnly) {
  Simulator s;
  SplitStage stage(2, 32, "split");
  AbstractResult result;
  s.add_process([&](SimContext& ctx) {
    result = stage.invoke(ctx, req(1, 0, CounterSpec::kFetchInc), History{});
  });
  s.add_process([](SimContext&) {});
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_TRUE(result.committed());
  EXPECT_EQ(result.response, 0);
  ASSERT_EQ(result.history.size(), 1u);
  // The committed fast path used no RMW except the committed-count
  // counter (documented deviation: the paper's atomic counter C).
  EXPECT_LE(s.counters(0).rmws, 1u);
}

TEST(ComposableUniversal, SequentialRequestsBuildPrefixHistories) {
  Simulator s;
  SplitStage stage(3, 32, "split");
  std::vector<AbstractResult> results(3);
  for (int p = 0; p < 3; ++p) {
    s.add_process([&, p](SimContext& ctx) {
      results[p] = stage.invoke(
          ctx, req(static_cast<std::uint64_t>(p) + 1, p, CounterSpec::kFetchInc),
          History{});
    });
  }
  sim::SequentialSchedule sched;
  s.run(sched);
  for (const auto& r : results) EXPECT_TRUE(r.committed());
  // Commit histories form a prefix chain (Definition 1, Commit Order).
  std::vector<History> hs;
  for (const auto& r : results) hs.push_back(r.history);
  std::sort(hs.begin(), hs.end(),
            [](const History& a, const History& b) { return a.size() < b.size(); });
  for (std::size_t i = 1; i < hs.size(); ++i) {
    EXPECT_TRUE(hs[i - 1].prefix_of(hs[i]));
  }
}

TEST(ComposableUniversal, AbortedTracesSatisfyAbstractProperties) {
  // Drive the split-consensus stage under contention until it aborts;
  // record the Abstract trace and validate Definition 1 on it.
  int aborts_seen = 0;
  for (std::uint64_t seed = 0; seed < 80; ++seed) {
    Simulator s;
    constexpr int kN = 3;
    SplitStage stage(kN, 32, "split");
    TraceRecorder rec;
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        const Request m =
            req(static_cast<std::uint64_t>(p) + 1, p, CounterSpec::kFetchInc);
        rec.invoke(p, m);
        const AbstractResult r = stage.invoke(ctx, m, History{});
        if (r.committed()) {
          rec.commit(p, m, r.response, r.history);
        } else {
          rec.abort(p, m, 0, r.history);
        }
      });
    }
    sim::RandomSchedule sched(seed);
    s.run(sched);
    const Trace t = rec.trace();
    const auto verdict = check_abstract_trace(t);
    ASSERT_TRUE(verdict) << "seed " << seed << ": " << verdict.error;
    for (const auto& e : t.events()) {
      if (e.kind == EventKind::kAbort) ++aborts_seen;
    }
  }
  EXPECT_GT(aborts_seen, 0) << "contention never triggered an abort";
}

TEST(ComposableUniversal, BakeryStageSatisfiesAbstractProperties) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Simulator s;
    constexpr int kN = 3;
    BakeryStage stage(kN, 32, "bakery");
    TraceRecorder rec;
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        const Request m =
            req(static_cast<std::uint64_t>(p) + 1, p, CounterSpec::kFetchInc);
        rec.invoke(p, m);
        const AbstractResult r = stage.invoke(ctx, m, History{});
        if (r.committed()) {
          rec.commit(p, m, r.response, r.history);
        } else {
          rec.abort(p, m, 0, r.history);
        }
      });
    }
    sim::RandomSchedule sched(seed);
    s.run(sched);
    const auto verdict = check_abstract_trace(rec.trace());
    ASSERT_TRUE(verdict) << "seed " << seed << ": " << verdict.error;
  }
}

TEST(ComposableUniversal, InitializationReplaysInheritedHistory) {
  Simulator s;
  CasStage stage(2, 32, "cas");
  const Request a = req(10, 1, CounterSpec::kFetchInc);
  const Request b = req(11, 1, CounterSpec::kFetchInc);
  History inherited{a, b};
  AbstractResult result;
  s.add_process([&](SimContext& ctx) {
    result = stage.invoke(ctx, req(1, 0, CounterSpec::kFetchInc), inherited);
  });
  s.add_process([](SimContext&) {});
  sim::SequentialSchedule sched;
  s.run(sched);
  ASSERT_TRUE(result.committed());
  // History = inherited ++ own request; response reflects two prior incs.
  ASSERT_EQ(result.history.size(), 3u);
  EXPECT_EQ(result.history[0].id, 10u);
  EXPECT_EQ(result.history[1].id, 11u);
  EXPECT_EQ(result.history[2].id, 1u);
  EXPECT_EQ(result.response, 2);
}

// ---------------------------------------------------------------------------
// UniversalChain: the Proposition-1 composition

std::unique_ptr<UniversalChain<SimPlatform, CounterSpec>> make_chain(int n) {
  std::vector<std::unique_ptr<AbstractStage<SimPlatform>>> stages;
  stages.push_back(std::make_unique<SplitStage>(n, 32, "contention-free"));
  stages.push_back(std::make_unique<BakeryStage>(n, 32, "obstruction-free"));
  stages.push_back(std::make_unique<CasStage>(n, 32, "wait-free"));
  return std::make_unique<UniversalChain<SimPlatform, CounterSpec>>(
      n, std::move(stages));
}

TEST(UniversalChain, SoloUsesFirstStageOnly) {
  Simulator s;
  auto chain = make_chain(2);
  UniversalChain<SimPlatform, CounterSpec>::Performed result;
  s.add_process([&](SimContext& ctx) {
    result = chain->perform(ctx, req(1, 0, CounterSpec::kFetchInc));
  });
  s.add_process([](SimContext&) {});
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_EQ(result.response, 0);
  EXPECT_EQ(result.stage, 0u);  // registers-only stage served it
}

TEST(UniversalChain, NeverFailsAndStaysLinearizableUnderContention) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Simulator s;
    constexpr int kN = 4;
    constexpr int kOpsPer = 2;
    auto chain = make_chain(kN);
    std::vector<std::vector<Response>> responses(kN);
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        for (int i = 0; i < kOpsPer; ++i) {
          const auto id = static_cast<std::uint64_t>(p) * 100 +
                          static_cast<std::uint64_t>(i) + 1;
          responses[p].push_back(
              chain->perform(ctx, req(id, p, CounterSpec::kFetchInc)).response);
        }
      });
    }
    sim::RandomSchedule sched(seed);
    s.run(sched);
    std::set<Response> all;
    for (const auto& rs : responses) {
      ASSERT_EQ(rs.size(), kOpsPer);
      for (Response r : rs) all.insert(r);
    }
    EXPECT_EQ(all.size(), static_cast<std::size_t>(kN * kOpsPer))
        << "duplicate fetch&inc response (seed " << seed << ")";
    EXPECT_EQ(*all.begin(), 0);
    EXPECT_EQ(*all.rbegin(), kN * kOpsPer - 1);
  }
}

TEST(UniversalChain, ContentionPushesProcessesToLaterStages) {
  int later_stage_commits = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Simulator s;
    constexpr int kN = 4;
    auto chain = make_chain(kN);
    std::vector<std::size_t> stages_used(kN, 0);
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        const auto r = chain->perform(
            ctx, req(static_cast<std::uint64_t>(p) + 1, p, CounterSpec::kFetchInc));
        stages_used[p] = r.stage;
      });
    }
    sim::RoundRobinSchedule sched(1);
    s.run(sched);
    for (auto st : stages_used) {
      if (st > 0) ++later_stage_commits;
    }
  }
  EXPECT_GT(later_stage_commits, 0)
      << "round-robin contention never escalated past stage 0";
}

TEST(UniversalChain, WorksForQueueSpec) {
  Simulator s;
  constexpr int kN = 2;
  std::vector<std::unique_ptr<AbstractStage<SimPlatform>>> stages;
  stages.push_back(std::make_unique<ComposableUniversal<
                       SimPlatform, QueueSpec, SplitConsensus<SimPlatform>, 32>>(
      kN, 32, "split"));
  stages.push_back(std::make_unique<ComposableUniversal<
                       SimPlatform, QueueSpec, CasConsensus<SimPlatform>, 32>>(
      kN, 32, "cas"));
  UniversalChain<SimPlatform, QueueSpec> chain(kN, std::move(stages));

  std::vector<Response> deqs;
  s.add_process([&](SimContext& ctx) {
    (void)chain.perform(ctx, req(1, 0, QueueSpec::kEnqueue, 10));
    (void)chain.perform(ctx, req(2, 0, QueueSpec::kEnqueue, 20));
  });
  s.add_process([&](SimContext& ctx) {
    deqs.push_back(chain.perform(ctx, req(3, 1, QueueSpec::kDequeue)).response);
    deqs.push_back(chain.perform(ctx, req(4, 1, QueueSpec::kDequeue)).response);
    deqs.push_back(chain.perform(ctx, req(5, 1, QueueSpec::kDequeue)).response);
  });
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_EQ(deqs, (std::vector<Response>{10, 20, QueueSpec::kEmpty}));
}

TEST(UniversalChain, ConsensusNumberReportsStrongestStage) {
  auto chain = make_chain(2);
  EXPECT_EQ(chain->consensus_number(), kConsensusNumberCas);
}

// A stage stub that aborts until the chain reaches the final stage —
// the minimal driver for deep-chain accounting.
class AbortingStub final : public AbstractStage<SimPlatform> {
 public:
  explicit AbortingStub(bool commits) : commits_(commits) {}

  AbstractResult invoke(SimContext& /*ctx*/, const Request& m,
                        const History& init) override {
    AbstractResult r;
    r.history = init;
    r.history.append_if_absent(m);
    if (commits_) {
      r.outcome = Outcome::kCommit;
      r.response = static_cast<Response>(r.history.size());
    } else {
      r.outcome = Outcome::kAbort;
    }
    return r;
  }

  [[nodiscard]] int consensus_number() const override {
    return kConsensusNumberRegister;
  }
  [[nodiscard]] const char* name() const override {
    return commits_ ? "commit-stub" : "abort-stub";
  }

 private:
  bool commits_;
};

// Regression: the per-process commit tallies used to be hard-coded to
// capacity 8, so a chain with more stages wrote (and read) out of
// bounds once a process fell through to stage 8+. The tallies are now
// sized from the actual stage count.
TEST(UniversalChain, DeepChainAccountsCommitsBeyondEightStages) {
  constexpr std::size_t kStages = 10;
  std::vector<std::unique_ptr<AbstractStage<SimPlatform>>> stages;
  for (std::size_t i = 0; i + 1 < kStages; ++i) {
    stages.push_back(std::make_unique<AbortingStub>(false));
  }
  stages.push_back(std::make_unique<AbortingStub>(true));
  UniversalChain<SimPlatform, CounterSpec> chain(2, std::move(stages));

  Simulator s;
  UniversalChain<SimPlatform, CounterSpec>::Performed r0, r1;
  s.add_process([&](SimContext& ctx) { r0 = chain.perform(ctx, req(1, 0)); });
  s.add_process([&](SimContext& ctx) { r1 = chain.perform(ctx, req(2, 1)); });
  sim::SequentialSchedule sched;
  s.run(sched);

  // Both processes fell through all nine aborting stages and committed
  // on the tenth; the tally for stage 9 must hold exactly that commit
  // (indexing it was UB before the fix).
  EXPECT_EQ(r0.stage, kStages - 1);
  EXPECT_EQ(r1.stage, kStages - 1);
  for (std::size_t st = 0; st + 1 < kStages; ++st) {
    EXPECT_EQ(chain.commits_by(0, st), 0u) << "stage " << st;
    EXPECT_EQ(chain.commits_by(1, st), 0u) << "stage " << st;
  }
  EXPECT_EQ(chain.commits_by(0, kStages - 1), 1u);
  EXPECT_EQ(chain.commits_by(1, kStages - 1), 1u);
}

}  // namespace
}  // namespace scm
