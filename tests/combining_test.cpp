// Tests for the batch invocation path (core/batch.hpp, the pipeline's
// stage-major invoke_batch, StaticAbstractChain::perform_batch) and
// the flat-combining combinator (core/combining.hpp):
//
//  * run_batch falls back to the per-op loop for plain modules and
//    dispatches to a module's own batch path when it has one;
//  * Pipeline::invoke_batch is result- and stats-identical to invoking
//    the slots in order, across commit/abort mixes, seeded inits,
//    whole-pipeline aborts, FastPipeline, and nested pipeline stages;
//  * StaticAbstractChain::perform_batch matches per-op perform under
//    identical random schedules (responses, stages, commit tallies);
//  * Combining satisfies ComposableModule, folds TAS into the
//    consensus number, nests inside Sharded, and a solo stream through
//    it is bit-identical to direct invocation (each op combining
//    itself);
//  * under real threads (the "tsan" ctest label runs this suite under
//    ThreadSanitizer) every combined op draws a distinct ticket and
//    the recorded concurrent history linearizes against CounterSpec —
//    the batched execution path preserves the per-op semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "consensus/cas_consensus.hpp"
#include "consensus/split_consensus.hpp"
#include "core/batch.hpp"
#include "core/combining.hpp"
#include "core/module.hpp"
#include "core/pipeline.hpp"
#include "core/sharding.hpp"
#include "history/specs.hpp"
#include "lincheck/lincheck.hpp"
#include "runtime/context.hpp"
#include "runtime/platform.hpp"
#include "sim/schedules.hpp"
#include "sim/sim_platform.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "universal/composable_universal.hpp"
#include "universal/static_chain.hpp"
#include "workload/driver.hpp"

namespace scm {
namespace {

using sim::SimContext;
using sim::SimPlatform;
using sim::Simulator;

// Plumbing-only helpers, as in pipeline_test.
struct HopModule {
  static constexpr int kConsensusNumber = kConsensusNumberRegister;

  template <class Ctx>
  ModuleResult invoke(Ctx& /*ctx*/, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    return ModuleResult::abort_with(init.value_or(0) + 1);
  }
};

struct SinkModule {
  static constexpr int kConsensusNumber = kConsensusNumberRegister;

  template <class Ctx>
  ModuleResult invoke(Ctx& /*ctx*/, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    return ModuleResult::commit(init.value_or(0));
  }
};

// Commits exactly the requests whose arg equals this stage's index
// (response encodes the inherited fold and the serving stage), aborts
// the rest onward — a deterministic commit/abort mix per batch.
struct StageGate {
  static constexpr int kConsensusNumber = kConsensusNumberRegister;
  std::size_t my_stage = 0;

  template <class Ctx>
  ModuleResult invoke(Ctx& /*ctx*/, const Request& m,
                      std::optional<SwitchValue> init = std::nullopt) {
    if (static_cast<std::size_t>(m.arg) == my_stage) {
      return ModuleResult::commit(init.value_or(0) * 10 +
                                  static_cast<Response>(my_stage));
    }
    return ModuleResult::abort_with(init.value_or(0) + 1);
  }
};

// Fetch&inc semantics (CounterSpec): commits a unique monotone ticket.
struct TicketModule {
  static constexpr int kConsensusNumber = kConsensusNumberFetchAdd;

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& /*m*/,
                      std::optional<SwitchValue> /*init*/ = std::nullopt) {
    return ModuleResult::commit(static_cast<Response>(count_.fetch_add(ctx)));
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_.peek(); }

 private:
  NativeCounter count_;
};

Request arg_req(std::uint64_t id, ProcessId p, std::int64_t arg) {
  return Request{id, p, 0, arg};
}

// ---------------------------------------------------------------------------
// run_batch dispatch

TEST(Batch, RunBatchFallsBackToPerOpLoopForPlainModules) {
  static_assert(!BatchInvocable<SinkModule, NativeContext>);
  SinkModule sink;
  NativeContext ctx(0);
  std::array<OpSlot, 3> batch{
      OpSlot{arg_req(1, 0, 0), std::nullopt, {}, false},
      OpSlot{arg_req(2, 0, 0), SwitchValue{7}, {}, false},
      OpSlot{arg_req(3, 0, 0), SwitchValue{-2}, {}, false}};
  run_batch(sink, ctx, std::span<OpSlot>(batch));
  EXPECT_TRUE(batch[0].done && batch[1].done && batch[2].done);
  EXPECT_EQ(batch[0].result.response, 0);
  EXPECT_EQ(batch[1].result.response, 7);
  EXPECT_EQ(batch[2].result.response, -2);
}

TEST(Batch, RunBatchDispatchesToAModulesOwnBatchPath) {
  using Pipe = Pipeline<HopModule, SinkModule>;
  static_assert(BatchInvocable<Pipe, NativeContext>);
  Pipe pipe;
  NativeContext ctx(0);
  std::array<OpSlot, 2> batch{
      OpSlot{arg_req(1, 0, 0), std::nullopt, {}, false},
      OpSlot{arg_req(2, 0, 0), SwitchValue{5}, {}, false}};
  run_batch(pipe, ctx, std::span<OpSlot>(batch));
  EXPECT_EQ(batch[0].result.response, 1);  // one hop
  EXPECT_EQ(batch[1].result.response, 6);  // seeded init + one hop
  // Bulk stats: one batch accounted exactly two ops per stage.
  EXPECT_EQ(pipe.stats(0).aborts, 2u);
  EXPECT_EQ(pipe.stats(1).commits, 2u);
}

// ---------------------------------------------------------------------------
// Pipeline::invoke_batch equivalence with per-op invocation

template <class Pipe>
std::vector<ModuleResult> drive_per_op(Pipe& pipe,
                                       const std::vector<OpSlot>& slots) {
  NativeContext ctx(0);
  std::vector<ModuleResult> out;
  out.reserve(slots.size());
  for (const OpSlot& s : slots) {
    out.push_back(pipe.invoke(ctx, s.request, s.init));
  }
  return out;
}

std::vector<OpSlot> random_slots(std::uint64_t seed, std::size_t n,
                                 std::int64_t max_arg) {
  Rng rng(seed);
  std::vector<OpSlot> slots;
  slots.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    OpSlot s;
    s.request = arg_req(i + 1, 0,
                        static_cast<std::int64_t>(rng.below(
                            static_cast<std::uint64_t>(max_arg) + 1)));
    if (rng.chance(0.5)) s.init = static_cast<SwitchValue>(rng.below(5));
    slots.push_back(s);
  }
  return slots;
}

TEST(Batch, PipelineBatchMatchesPerOpAcrossCommitAbortMixes) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    // arg in [0, 4]: commits at stage arg for arg < 3, whole-pipeline
    // abort (switch value = inherited + 3 hops) for arg >= 3.
    std::vector<OpSlot> slots = random_slots(seed, 17, 4);

    Pipeline<StageGate, StageGate, StageGate> per_op(
        StageGate{0}, StageGate{1}, StageGate{2});
    const std::vector<ModuleResult> expect = drive_per_op(per_op, slots);

    Pipeline<StageGate, StageGate, StageGate> batched(
        StageGate{0}, StageGate{1}, StageGate{2});
    NativeContext ctx(0);
    batched.invoke_batch(ctx, std::span<OpSlot>(slots));

    for (std::size_t i = 0; i < slots.size(); ++i) {
      EXPECT_TRUE(slots[i].done) << "slot " << i << " seed " << seed;
      EXPECT_EQ(slots[i].result.outcome, expect[i].outcome)
          << "slot " << i << " seed " << seed;
      EXPECT_EQ(slots[i].result.response, expect[i].response)
          << "slot " << i << " seed " << seed;
      EXPECT_EQ(slots[i].result.switch_value, expect[i].switch_value)
          << "slot " << i << " seed " << seed;
    }
    // Stats: the bulk per-stage updates equal the per-op tallies.
    for (std::size_t st = 0; st < 3; ++st) {
      EXPECT_EQ(batched.stats(st).commits, per_op.stats(st).commits)
          << "stage " << st << " seed " << seed;
      EXPECT_EQ(batched.stats(st).aborts, per_op.stats(st).aborts)
          << "stage " << st << " seed " << seed;
    }
  }
}

TEST(Batch, FastPipelineBatchMatchesPerOp) {
  std::vector<OpSlot> slots = random_slots(7, 11, 4);
  FastPipeline<StageGate, StageGate, StageGate> per_op(
      StageGate{0}, StageGate{1}, StageGate{2});
  const std::vector<ModuleResult> expect = drive_per_op(per_op, slots);

  FastPipeline<StageGate, StageGate, StageGate> batched(
      StageGate{0}, StageGate{1}, StageGate{2});
  NativeContext ctx(0);
  batched.invoke_batch(ctx, std::span<OpSlot>(slots));
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i].result.outcome, expect[i].outcome) << i;
    EXPECT_EQ(slots[i].result.response, expect[i].response) << i;
    EXPECT_EQ(slots[i].result.switch_value, expect[i].switch_value) << i;
  }
}

TEST(Batch, NestedPipelineStageReceivesItsLiveSlotsAsASubBatch) {
  // Outer stage 0 is itself a pipeline (so the gather/scatter branch
  // of batch_from runs); the sink commits whatever aborts out of it.
  const auto make = [] {
    return make_pipeline(make_pipeline(StageGate{0}, StageGate{1}),
                         SinkModule{});
  };
  std::vector<OpSlot> slots = random_slots(13, 9, 3);

  auto per_op = make();
  const std::vector<ModuleResult> expect = drive_per_op(per_op, slots);

  auto batched = make();
  NativeContext ctx(0);
  batched.invoke_batch(ctx, std::span<OpSlot>(slots));
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i].result.outcome, expect[i].outcome) << i;
    EXPECT_EQ(slots[i].result.response, expect[i].response) << i;
    EXPECT_EQ(slots[i].result.switch_value, expect[i].switch_value) << i;
  }
  for (std::size_t st = 0; st < 2; ++st) {
    EXPECT_EQ(batched.stats(st).commits, per_op.stats(st).commits) << st;
    EXPECT_EQ(batched.stats(st).aborts, per_op.stats(st).aborts) << st;
  }
}

TEST(Batch, EmptyBatchIsANoOp) {
  Pipeline<HopModule, SinkModule> pipe;
  NativeContext ctx(0);
  pipe.invoke_batch(ctx, std::span<OpSlot>{});
  EXPECT_EQ(pipe.stats(0).invocations(), 0u);
  EXPECT_EQ(pipe.stats(1).invocations(), 0u);
}

// ---------------------------------------------------------------------------
// StaticAbstractChain::perform_batch

TEST(Batch, ChainPerformBatchMatchesPerOpUnderIdenticalSchedules) {
  using SplitStage = ComposableUniversal<SimPlatform, CounterSpec,
                                         SplitConsensus<SimPlatform>, 48>;
  using CasStage = ComposableUniversal<SimPlatform, CounterSpec,
                                       CasConsensus<SimPlatform>, 48>;
  constexpr int kN = 3;
  constexpr std::size_t kOpsPerProc = 4;

  const auto request_of = [](int p, std::size_t i) {
    return Request{static_cast<std::uint64_t>(p) * 100 +
                       static_cast<std::uint64_t>(i) + 1,
                   static_cast<ProcessId>(p), CounterSpec::kFetchInc, 0};
  };

  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    // Per-op reference: each process performs its requests one by one.
    std::array<std::vector<Response>, kN> per_op;
    std::array<std::vector<std::size_t>, kN> per_op_stage;
    {
      SplitStage split(kN, 48, "split");
      CasStage cas(kN, 48, "cas");
      StaticAbstractChain chain(kN, split, cas);
      Simulator s;
      for (int p = 0; p < kN; ++p) {
        s.add_process([&, p](SimContext& ctx) {
          for (std::size_t i = 0; i < kOpsPerProc; ++i) {
            const auto r = chain.perform(ctx, request_of(p, i));
            per_op[static_cast<std::size_t>(p)].push_back(r.response);
            per_op_stage[static_cast<std::size_t>(p)].push_back(r.stage);
          }
        });
      }
      sim::RandomSchedule sched(seed * 17 + 3);
      s.run(sched);
    }

    // Batch run: each process hands the SAME requests over in one
    // perform_batch call. The invocation step streams are identical,
    // so the same-seed schedule interleaves both runs identically and
    // the results must match bit for bit.
    SplitStage split(kN, 48, "split");
    CasStage cas(kN, 48, "cas");
    StaticAbstractChain chain(kN, split, cas);
    Simulator s;
    std::array<std::array<ChainPerformed, kOpsPerProc>, kN> got;
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        std::array<Request, kOpsPerProc> ms;
        for (std::size_t i = 0; i < kOpsPerProc; ++i) {
          ms[i] = request_of(p, i);
        }
        chain.perform_batch(ctx, std::span<const Request>(ms),
                            std::span<ChainPerformed>(
                                got[static_cast<std::size_t>(p)]));
      });
    }
    sim::RandomSchedule sched(seed * 17 + 3);
    s.run(sched);

    for (int p = 0; p < kN; ++p) {
      const auto pi = static_cast<std::size_t>(p);
      for (std::size_t i = 0; i < kOpsPerProc; ++i) {
        EXPECT_EQ(got[pi][i].response, per_op[pi][i])
            << "p" << p << " op " << i << " seed " << seed;
        EXPECT_EQ(got[pi][i].stage, per_op_stage[pi][i])
            << "p" << p << " op " << i << " seed " << seed;
      }
    }
  }
}

TEST(Batch, ChainPerformBatchSoloCommitsEverythingOnStageZero) {
  using SplitStage = ComposableUniversal<SimPlatform, CounterSpec,
                                         SplitConsensus<SimPlatform>, 48>;
  using CasStage = ComposableUniversal<SimPlatform, CounterSpec,
                                       CasConsensus<SimPlatform>, 48>;
  SplitStage split(1, 48, "split");
  CasStage cas(1, 48, "cas");
  StaticAbstractChain chain(1, split, cas);

  Simulator s;
  constexpr std::size_t kOps = 5;
  std::array<ChainPerformed, kOps> got;
  s.add_process([&](SimContext& ctx) {
    std::array<Request, kOps> ms;
    for (std::size_t i = 0; i < kOps; ++i) {
      ms[i] = Request{static_cast<std::uint64_t>(i) + 1, 0,
                      CounterSpec::kFetchInc, 0};
    }
    chain.perform_batch(ctx, std::span<const Request>(ms),
                        std::span<ChainPerformed>(got));
  });
  sim::SequentialSchedule sched;
  s.run(sched);

  for (std::size_t i = 0; i < kOps; ++i) {
    EXPECT_EQ(got[i].response, static_cast<Response>(i));
    EXPECT_EQ(got[i].stage, 0u);
  }
  EXPECT_EQ(chain.commits_by(0, 0), kOps);
  EXPECT_EQ(chain.commits_by(0, 1), 0u);
}

// ---------------------------------------------------------------------------
// Combining: static properties and solo equivalence

TEST(Combining, IsAComposableModuleAndFoldsTasIntoTheConsensusNumber) {
  using Pipe = Pipeline<HopModule, SinkModule>;
  using C = Combining<Pipe, 8, ByThread>;
  static_assert(C::kSlotCount == 8);
  static_assert(C::kDepth == Pipe::kDepth);
  // The wrapper adds a TAS-elected combiner lock on top of the
  // register-only pipeline.
  static_assert(Pipe::kConsensusNumber == kConsensusNumberRegister);
  static_assert(C::kConsensusNumber == kConsensusNumberTas);
  static_assert(ComposableModule<C, NativeContext>);
  static_assert(!std::is_polymorphic_v<C>);

  // Per-shard combiners: Combining nests inside Sharded and the result
  // is still a module.
  using PerShard = Sharded<Combining<Pipe, 4, ByThread>, 2, ByThread>;
  static_assert(ComposableModule<PerShard, NativeContext>);
  static_assert(PerShard::kConsensusNumber == kConsensusNumberTas);
  SUCCEED();
}

TEST(Combining, SoloStreamIsIdenticalToDirectInvocation) {
  using Pipe = Pipeline<HopModule, TicketModule>;
  Pipe direct;
  Combining<Pipe, 4, ByThread> combined;
  NativeContext ctx(0);

  for (std::uint64_t i = 0; i < 50; ++i) {
    const ModuleResult a = direct.invoke(ctx, arg_req(i + 1, 0, 0));
    const ModuleResult b = combined.invoke(ctx, arg_req(i + 1, 0, 0));
    ASSERT_TRUE(a.committed());
    ASSERT_TRUE(b.committed());
    EXPECT_EQ(a.response, b.response) << "op " << i;
  }
  // Solo, the lock is always free: every op took the direct fast path
  // and no publication round ever formed.
  EXPECT_EQ(combined.direct_ops(), 50u);
  EXPECT_EQ(combined.combine_rounds(), 0u);
  EXPECT_EQ(combined.combined_ops(), 0u);
  // Forwarded stats account for every op despite the batched updates.
  EXPECT_EQ(combined.stats(0).aborts, 50u);
  EXPECT_EQ(combined.stats(1).commits, 50u);
  combined.reset_stats();
  EXPECT_EQ(combined.stats(1).invocations(), 0u);
}

TEST(Combining, InvokeBatchRunsTheWholeBatchUnderOneElection) {
  // Combining is itself BatchInvocable: a caller-provided batch (e.g.
  // a per-shard sub-batch built by Sharded::invoke_batch) is executed
  // under ONE combiner election through the wrapped object's batch
  // path — not one publication round trip per op — with results
  // identical to invoking the slots in order.
  using Pipe = Pipeline<StageGate, StageGate, StageGate>;
  static_assert(BatchInvocable<Combining<Pipe, 4, ByThread>, NativeContext>);

  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    std::vector<OpSlot> slots = random_slots(seed, 11, 4);

    Pipe per_op(StageGate{0}, StageGate{1}, StageGate{2});
    const std::vector<ModuleResult> expect = drive_per_op(per_op, slots);

    Combining<Pipe, 4, ByThread> combined(
        std::in_place, StageGate{0}, StageGate{1}, StageGate{2});
    NativeContext ctx(0);
    combined.invoke_batch(ctx, std::span<OpSlot>(slots));

    for (std::size_t i = 0; i < slots.size(); ++i) {
      EXPECT_TRUE(slots[i].done) << "slot " << i << " seed " << seed;
      EXPECT_EQ(slots[i].result.outcome, expect[i].outcome) << i;
      EXPECT_EQ(slots[i].result.response, expect[i].response) << i;
      EXPECT_EQ(slots[i].result.switch_value, expect[i].switch_value) << i;
    }
    // The whole batch counted as direct (no publication round trips).
    EXPECT_EQ(combined.direct_ops(), slots.size());
    EXPECT_EQ(combined.combined_ops(), 0u);
  }
}

TEST(Combining, ShardedInvokeBatchHandsPerShardCombinersRealBatches) {
  // The composition the grouping exists for: Sharded::invoke_batch
  // builds per-shard sub-batches and run_batch dispatches them through
  // each shard's Combining::invoke_batch — so a solo batch drive shows
  // every op on the combiner's direct batch path, zero publications.
  Sharded<Combining<Pipeline<HopModule, TicketModule>, 4, ByThread>, 2,
          ByKeyHash>
      sharded;
  NativeContext ctx(0);

  std::vector<OpSlot> slots;
  for (std::uint64_t i = 0; i < 12; ++i) {
    slots.push_back(OpSlot{arg_req(i + 1, 0, static_cast<std::int64_t>(i)),
                           std::nullopt,
                           {},
                           false,
                           OpCompletion::kAttached});
  }
  sharded.invoke_batch(ctx, std::span<OpSlot>(slots));

  std::uint64_t direct = 0, combined = 0, sink = 0;
  for (std::size_t s = 0; s < 2; ++s) {
    direct += sharded.shard(s).direct_ops();
    combined += sharded.shard(s).combined_ops();
    sink += sharded.shard(s).object().stage<1>().count();
  }
  EXPECT_EQ(sink, slots.size());
  EXPECT_EQ(direct, slots.size());
  EXPECT_EQ(combined, 0u);
  for (const OpSlot& s : slots) {
    EXPECT_TRUE(s.done);
    EXPECT_TRUE(s.result.committed());
  }
}

TEST(Combining, SeededInitsPlumbThroughThePublicationSlot) {
  Combining<Pipeline<HopModule, SinkModule>, 2, ByThread> combined;
  NativeContext ctx(0);
  EXPECT_EQ(combined.invoke(ctx, arg_req(1, 0, 0)).response, 1);
  EXPECT_EQ(combined.invoke(ctx, arg_req(2, 0, 0), 10).response, 11);
}

// ---------------------------------------------------------------------------
// Combining under real threads (runs under TSan via the "tsan" label)

TEST(Combining, ConcurrentTicketsAreDistinctAndFullyAccounted) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kOps = 512;
  constexpr std::uint64_t kTotal = kThreads * kOps;

  Combining<Pipeline<HopModule, TicketModule>, 4, ByThread> combined;
  std::vector<std::atomic<std::uint8_t>> seen(kTotal);
  std::atomic<std::uint64_t> bad{0};

  (void)workload::run_threads(
      kThreads, kOps, [&](NativeContext& ctx, std::uint64_t i) {
        const ModuleResult r = combined.invoke(
            ctx, Request{(static_cast<std::uint64_t>(ctx.id()) << 40) | (i + 1),
                         ctx.id(), CounterSpec::kFetchInc, 0});
        const auto ticket = static_cast<std::uint64_t>(r.response);
        if (!r.committed() || ticket >= kTotal ||
            seen[ticket].exchange(1, std::memory_order_relaxed) != 0) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      });

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(combined.object().stage<1>().count(), kTotal);
  EXPECT_EQ(combined.stats(1).commits, kTotal);
  // Every op was either batched by a combiner or ran the fast path.
  EXPECT_EQ(combined.combined_ops() + combined.direct_ops(), kTotal);
  EXPECT_LE(combined.combine_rounds(), combined.combined_ops());
}

TEST(Combining, SharedSlotsStayCorrectWhenThreadsOutnumberThem) {
  // 4 threads over 2 slots: colliding publishers must wait for the
  // slot's round trip, never corrupt each other's records.
  constexpr int kThreads = 4;
  constexpr std::uint64_t kOps = 256;
  constexpr std::uint64_t kTotal = kThreads * kOps;

  Combining<Pipeline<HopModule, TicketModule>, 2, ByThread> combined;
  std::vector<std::atomic<std::uint8_t>> seen(kTotal);
  std::atomic<std::uint64_t> bad{0};

  (void)workload::run_threads(
      kThreads, kOps, [&](NativeContext& ctx, std::uint64_t i) {
        const ModuleResult r = combined.invoke(
            ctx, Request{(static_cast<std::uint64_t>(ctx.id()) << 40) | (i + 1),
                         ctx.id(), CounterSpec::kFetchInc, 0});
        const auto ticket = static_cast<std::uint64_t>(r.response);
        if (!r.committed() || ticket >= kTotal ||
            seen[ticket].exchange(1, std::memory_order_relaxed) != 0) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      });

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(combined.object().stage<1>().count(), kTotal);
}

TEST(Combining, SlotPolicyCompletionHookFiresForEveryPublishedOp) {
  // A load-tracking slot policy must see every publication complete:
  // whatever interleaving the run takes, at quiescence all in-flight
  // counters are back to zero (fast-path ops never consult the
  // policy, published ops increment on routing and decrement after
  // the slot round trip).
  constexpr int kThreads = 4;
  constexpr std::uint64_t kOps = 256;
  Combining<Pipeline<HopModule, TicketModule>, 4, ByLeastLoaded<4>> combined;

  (void)workload::run_threads(
      kThreads, kOps, [&](NativeContext& ctx, std::uint64_t i) {
        (void)combined.invoke(
            ctx, Request{(static_cast<std::uint64_t>(ctx.id()) << 40) | (i + 1),
                         ctx.id(), CounterSpec::kFetchInc, 0});
      });

  EXPECT_EQ(combined.object().stage<1>().count(),
            static_cast<std::uint64_t>(kThreads) * kOps);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(combined.policy().in_flight(s), 0) << "slot " << s;
  }
}

TEST(Combining, ShardedCombiningKeepsPerShardAccounting) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kOps = 128;
  Sharded<Combining<Pipeline<HopModule, TicketModule>, 4, ByThread>, 2,
          ByThread>
      sharded;

  (void)workload::run_threads(
      kThreads, kOps, [&](NativeContext& ctx, std::uint64_t i) {
        (void)sharded.invoke(
            ctx, Request{(static_cast<std::uint64_t>(ctx.id()) << 40) | (i + 1),
                         ctx.id(), CounterSpec::kFetchInc, 0});
      });

  std::uint64_t total = 0;
  for (std::size_t s = 0; s < 2; ++s) {
    total += sharded.shard(s).object().stage<1>().count();
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kOps);
  // Merged stats forwarded through Combining and summed by Sharded.
  EXPECT_EQ(sharded.stats(1).commits,
            static_cast<std::uint64_t>(kThreads) * kOps);
}

TEST(Combining, BackoffLadderLosesNoOpsUnderOversubscription) {
  // The spin → pause → yield ladder (detail::combining_backoff) exists
  // for exactly this regime: more runnable publishers than cores, so a
  // waiter that refuses to yield burns the timeslice the combiner (or
  // the slot owner) needs. Oversubscribe deliberately and verify
  // nothing is lost: every op commits a distinct ticket and the
  // telemetry accounts for every invocation. There are no wakeups to
  // lose by construction — every backoff rung returns to a re-read of
  // the watched variable — and this pins the ladder against
  // reintroducing one (e.g. a futex-style sleep without a matching
  // wake on the publish path).
  const unsigned hw = std::thread::hardware_concurrency();
  const int threads =
      std::clamp(static_cast<int>(hw == 0 ? 2 : hw) * 2, 4, 16);
  constexpr std::uint64_t kOps = 256;
  const std::uint64_t total = static_cast<std::uint64_t>(threads) * kOps;

  Combining<Pipeline<HopModule, TicketModule>, 4, ByThread> combined;
  std::vector<std::atomic<std::uint8_t>> seen(total);
  std::atomic<std::uint64_t> bad{0};

  (void)workload::run_threads(
      threads, kOps, [&](NativeContext& ctx, std::uint64_t i) {
        const ModuleResult r = combined.invoke(
            ctx, Request{(static_cast<std::uint64_t>(ctx.id()) << 40) | (i + 1),
                         ctx.id(), CounterSpec::kFetchInc, 0});
        const auto ticket = static_cast<std::uint64_t>(r.response);
        if (!r.committed() || ticket >= total ||
            seen[ticket].exchange(1, std::memory_order_relaxed) != 0) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      });

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(combined.object().stage<1>().count(), total);
  EXPECT_EQ(combined.combined_ops() + combined.direct_ops(), total);
}

TEST(Combining, ConcurrentHistoryLinearizesAgainstCounterSpec) {
  // The acceptance check for the batched execution path: operations
  // served by a combiner on another thread must still take effect
  // inside their own invoke/return window. A global atomic clock
  // timestamps the windows; the Wing&Gong checker searches for a
  // linearization. Trace sizes stay small — the checker is exponential
  // in overlap.
  constexpr int kThreads = 3;
  constexpr std::uint64_t kOps = 4;

  for (int round = 0; round < 10; ++round) {
    Combining<Pipeline<HopModule, TicketModule>, kThreads, ByThread> combined;
    std::atomic<std::uint64_t> clock{0};
    struct Recorded {
      Response response;
      std::uint64_t invoke;
      std::uint64_t ret;
    };
    std::array<std::array<Recorded, kOps>, kThreads> rec{};

    (void)workload::run_threads(
        kThreads, kOps, [&](NativeContext& ctx, std::uint64_t i) {
          const Request m{
              (static_cast<std::uint64_t>(ctx.id()) << 40) | (i + 1),
              ctx.id(), CounterSpec::kFetchInc, 0};
          auto& slot = rec[static_cast<std::size_t>(ctx.id())]
                          [static_cast<std::size_t>(i)];
          slot.invoke = clock.fetch_add(1, std::memory_order_acq_rel);
          const ModuleResult r = combined.invoke(ctx, m);
          slot.ret = clock.fetch_add(1, std::memory_order_acq_rel);
          slot.response = r.response;
        });

    std::vector<ConcurrentOp> ops;
    for (int t = 0; t < kThreads; ++t) {
      for (std::uint64_t i = 0; i < kOps; ++i) {
        const auto& r =
            rec[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)];
        ConcurrentOp op;
        op.pid = static_cast<ProcessId>(t);
        op.request = Request{(static_cast<std::uint64_t>(t) << 40) | (i + 1),
                             static_cast<ProcessId>(t),
                             CounterSpec::kFetchInc, 0};
        op.response = r.response;
        op.invoke = r.invoke;
        op.ret = r.ret;
        op.completed = true;
        ops.push_back(op);
      }
    }
    ASSERT_TRUE(linearizable<CounterSpec>(std::move(ops)))
        << "round " << round;
  }
}

}  // namespace
}  // namespace scm
