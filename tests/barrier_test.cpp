// SpinBarrier reuse stress (support/barrier.hpp). The barrier used to
// keep the arrival count and the generation in two atomics, resetting
// the count with a relaxed store before publishing the generation —
// reusing the barrier across rounds could then interleave a
// re-entrant's increment with the reset and release a round early.
// The count and generation now share one atomic word, so these tests
// hammer exactly the reuse pattern: one barrier, many generations,
// with an invariant that fails if any thread ever falls through a
// round before all parties arrived. Run under the TSan CI job (label
// "tsan") to also exercise the orderings.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "support/barrier.hpp"

namespace scm {
namespace {

TEST(SpinBarrier, ReuseAcrossManyGenerationsNeverReleasesEarly) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kRounds = 300;

  SpinBarrier barrier(kThreads);
  std::atomic<std::uint64_t> arrivals{0};
  std::atomic<bool> early_release{false};

  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (std::uint64_t round = 0; round < kRounds; ++round) {
        arrivals.fetch_add(1, std::memory_order_relaxed);
        barrier.arrive_and_wait();
        // All kThreads arrivals of this round must be visible; a
        // barrier that releases early sees fewer. Threads racing ahead
        // can add at most kThreads-1 increments of round+1 before the
        // next barrier blocks them on this thread's own arrival.
        const std::uint64_t seen = arrivals.load(std::memory_order_relaxed);
        const std::uint64_t floor =
            static_cast<std::uint64_t>(kThreads) * (round + 1);
        if (seen < floor || seen >= floor + kThreads) {
          early_release.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : pool) th.join();

  EXPECT_FALSE(early_release.load());
  EXPECT_EQ(arrivals.load(), static_cast<std::uint64_t>(kThreads) * kRounds);
}

TEST(SpinBarrier, CoordinatorPatternSurvivesReuse) {
  // The workload driver's idiom: a coordinator spins on arrived()
  // until every worker is parked, acts, then arrives itself — here
  // repeated across generations on one barrier.
  constexpr int kWorkers = 3;
  constexpr std::uint64_t kRounds = 150;

  SpinBarrier barrier(kWorkers + 1);
  std::atomic<std::uint64_t> stamped{0};
  std::atomic<std::uint64_t> observed_while_parked{0};

  std::vector<std::thread> pool;
  for (int t = 0; t < kWorkers; ++t) {
    pool.emplace_back([&] {
      for (std::uint64_t round = 0; round < kRounds; ++round) {
        barrier.arrive_and_wait();
        // The coordinator stamped round+1 strictly before releasing us.
        if (stamped.load(std::memory_order_relaxed) < round + 1) {
          observed_while_parked.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (std::uint64_t round = 0; round < kRounds; ++round) {
    while (barrier.arrived() != kWorkers) {
    }
    stamped.store(round + 1, std::memory_order_relaxed);
    barrier.arrive_and_wait();
  }
  for (auto& th : pool) th.join();

  EXPECT_EQ(observed_while_parked.load(), 0u);
  EXPECT_EQ(stamped.load(), kRounds);
}

TEST(SpinBarrier, ArrivedCountsOnlyTheCurrentGeneration) {
  SpinBarrier barrier(2);
  EXPECT_EQ(barrier.arrived(), 0);

  std::thread other([&] { barrier.arrive_and_wait(); });
  while (barrier.arrived() != 1) {
  }
  barrier.arrive_and_wait();
  other.join();

  // The round completed: the count was reset together with the
  // generation publish, so a reused barrier starts from zero.
  EXPECT_EQ(barrier.arrived(), 0);
}

}  // namespace
}  // namespace scm