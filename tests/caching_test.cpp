// Tests for the read-mostly replication layer (core/caching.hpp) and
// the unified Composable surface (core/module.hpp):
//
//  * Composable concept + scm::apply(): module-shaped and chain-shaped
//    objects both dispatch through the one entry point;
//  * ReadOnlyOps classification;
//  * a solo caller's cached results are bit-identical to the bare
//    object's, hit path included;
//  * the staleness bound: 0 is linearizable (a post-write read misses
//    and refetches), k admits snapshots up to k generations old;
//  * ticket-consuming invalidation: submit()'s completion callbacks
//    refill/invalidate by the time the ticket is collected;
//  * concurrent mixed read/fetch_inc histories through the cache
//    linearize against CounterSpec in linearizable mode (bound 0);
//  * invalidation storms: every write bumps the generation exactly
//    once under contention, per-thread read streams stay monotone, and
//    no read ever returns a value the counter never held.
//
// Runs under the "tsan" ctest label: the CI sanitizer job executes
// this suite under ThreadSanitizer (the seqlock snapshot protocol is
// the label's customer here).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/caching.hpp"
#include "core/combining.hpp"
#include "core/module.hpp"
#include "core/pipeline.hpp"
#include "history/specs.hpp"
#include "lincheck/lincheck.hpp"
#include "runtime/context.hpp"
#include "runtime/platform.hpp"
#include "workload/driver.hpp"

namespace scm {
namespace {

// A shared counter with CounterSpec's interface: op kFetchInc commits
// the OLD value, op kRead commits the current value.
struct CounterModule {
  static constexpr int kConsensusNumber = kConsensusNumberFetchAdd;

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& m,
                      std::optional<SwitchValue> /*init*/ = std::nullopt) {
    if (m.op == CounterSpec::kRead) {
      return ModuleResult::commit(static_cast<Response>(count_.read(ctx)));
    }
    return ModuleResult::commit(static_cast<Response>(count_.fetch_add(ctx)));
  }

  [[nodiscard]] std::uint64_t peek() const noexcept { return count_.peek(); }

 private:
  NativeCounter count_;
};

// The cache's view of CounterSpec: kRead is read-only, there is one
// key, and a committed fetch_inc's response (the old value) determines
// the post-write value exactly: old + 1.
struct CounterModel {
  static bool is_read(const Request& m) { return m.op == CounterSpec::kRead; }
  static std::uint64_t key(const Request& /*m*/) { return 0; }
  static std::optional<Response> read_after_write(const Request& /*m*/,
                                                  Response r) {
    return r + 1;
  }
};

// Same classification, but the write's effect is declared underivable:
// the cache must invalidate without refilling — the shape the
// staleness-bound tests need (a stale entry stays stale).
struct NoRefillModel {
  static bool is_read(const Request& m) { return m.op == CounterSpec::kRead; }
  static std::uint64_t key(const Request& /*m*/) { return 0; }
  static std::optional<Response> read_after_write(const Request& /*m*/,
                                                  Response /*r*/) {
    return std::nullopt;
  }
};

Request read_req(std::uint64_t id, ProcessId p) {
  return Request{id, p, CounterSpec::kRead, 0};
}
Request inc_req(std::uint64_t id, ProcessId p) {
  return Request{id, p, CounterSpec::kFetchInc, 0};
}

using CachedCounter = Cached<Combining<CounterModule, 8, ByThread>,
                             CounterModel>;

// ---------------------------------------------------------------------------
// The unified Composable surface

struct ChainStub {
  struct Performed {
    Response response = 0;
  };

  template <class Ctx>
  Performed perform(Ctx& /*ctx*/, const Request& m) {
    return {m.arg * 2};
  }
};

static_assert(ModuleShaped<CounterModule, NativeContext>);
static_assert(!ChainShaped<CounterModule, NativeContext>);
static_assert(ChainShaped<ChainStub, NativeContext>);
static_assert(!ModuleShaped<ChainStub, NativeContext>);
static_assert(Composable<CounterModule, NativeContext>);
static_assert(Composable<ChainStub, NativeContext>);
static_assert(Composable<Combining<CounterModule, 8, ByThread>,
                         NativeContext>);
static_assert(Composable<CachedCounter, NativeContext>);

TEST(ComposableSurface, ApplyDispatchesModuleShaped) {
  CounterModule counter;
  NativeContext ctx(0);
  EXPECT_EQ(scm::apply(counter, ctx, inc_req(1, 0)).response, 0);
  EXPECT_EQ(scm::apply(counter, ctx, read_req(2, 0)).response, 1);
}

TEST(ComposableSurface, ApplyDispatchesChainShaped) {
  ChainStub chain;
  NativeContext ctx(0);
  const ModuleResult r =
      scm::apply(chain, ctx, Request{1, 0, 0, 21});
  EXPECT_TRUE(r.committed());
  EXPECT_EQ(r.response, 42);
}

TEST(ComposableSurface, ReadOnlyOpsClassifies) {
  using Reads = ReadOnlyOps<CounterSpec::kRead>;
  static_assert(ReadOnlyClassifier<Reads>);
  EXPECT_TRUE(Reads::is_read_only(CounterSpec::kRead));
  EXPECT_FALSE(Reads::is_read_only(CounterSpec::kFetchInc));
  EXPECT_TRUE(Reads::is_read_only(read_req(1, 0)));
  EXPECT_FALSE(Reads::is_read_only(inc_req(1, 0)));

  using Multi = ReadOnlyOps<3, 5>;
  EXPECT_TRUE(Multi::is_read_only(3));
  EXPECT_TRUE(Multi::is_read_only(5));
  EXPECT_FALSE(Multi::is_read_only(4));
}

// ---------------------------------------------------------------------------
// Solo equivalence: cached == bare, bit for bit, hit path included

TEST(Cached, SoloResultsMatchBareObjectIncludingHits) {
  CachedCounter cached;
  CounterModule bare;
  NativeContext ctx(0);

  for (std::uint64_t i = 0; i < 256; ++i) {
    // 3 reads per inc: the rereads are served from the table.
    const bool is_read = i % 4 != 0;
    const Request m = is_read ? read_req(i + 1, 0) : inc_req(i + 1, 0);
    const ModuleResult want = bare.invoke(ctx, m);
    const ModuleResult got = cached.invoke(ctx, m);
    ASSERT_EQ(got.outcome, want.outcome) << "op " << i;
    ASSERT_EQ(got.response, want.response) << "op " << i;
  }
  // The equivalence must have exercised the hit path to mean anything.
  EXPECT_GT(cached.hits(), 0u);
  // Every fetch_inc bumped the generation exactly once.
  EXPECT_EQ(cached.invalidations(), 64u);
}

// ---------------------------------------------------------------------------
// Staleness bound semantics

TEST(Cached, BoundZeroIsLinearizableBoundKServesStale) {
  Cached<Combining<CounterModule, 8, ByThread>, NoRefillModel> cached;
  NativeContext ctx(0);

  // Fill: the first read misses and installs 0 at generation 0.
  EXPECT_EQ(cached.invoke(ctx, read_req(1, 0)).response, 0);
  EXPECT_EQ(cached.fills(), 1u);
  // A write invalidates without refilling (NoRefillModel).
  EXPECT_EQ(cached.invoke(ctx, inc_req(2, 0)).response, 0);
  EXPECT_EQ(cached.invalidations(), 1u);

  // Bound 1: the entry is one generation stale — admissible, and the
  // cache serves the STALE value (the real counter is already 1).
  cached.set_staleness_bound(1);
  EXPECT_EQ(cached.invoke(ctx, read_req(3, 0)).response, 0);
  EXPECT_EQ(cached.object().object().peek(), 1u);

  // Bound 0 (linearizable): the same entry now misses; the read goes
  // through the object and returns the current value.
  cached.set_staleness_bound(0);
  EXPECT_EQ(cached.invoke(ctx, read_req(4, 0)).response, 1);
  // ... and the miss refilled at the current generation, so the next
  // read hits fresh.
  const std::uint64_t hits_before = cached.hits();
  EXPECT_EQ(cached.invoke(ctx, read_req(5, 0)).response, 1);
  EXPECT_EQ(cached.hits(), hits_before + 1);
}

// ---------------------------------------------------------------------------
// Ticket-consuming invalidation (the async surface)

TEST(Cached, TicketCompletionRefillsAndInvalidates) {
  CachedCounter cached;
  NativeContext ctx(0);

  // A miss's fill arrives through the ticket: by the time wait()
  // returns, the callback has installed the entry.
  auto t0 = cached.submit(ctx, read_req(1, 0));
  EXPECT_EQ(t0.wait().response, 0);
  EXPECT_EQ(cached.fills(), 1u);
  ASSERT_TRUE(cached.read_at(0, 0).has_value());
  EXPECT_EQ(*cached.read_at(0, 0), 0);

  // A write's completion bumps the generation and refills with the
  // model-derived post-write value (old + 1).
  auto t1 = cached.submit(ctx, inc_req(2, 0));
  EXPECT_EQ(t1.wait().response, 0);
  EXPECT_EQ(cached.invalidations(), 1u);
  ASSERT_TRUE(cached.read_at(0, 0).has_value());
  EXPECT_EQ(*cached.read_at(0, 0), 1);

  // The refill makes the next read a hit — and a ready ticket (a hit
  // costs no shared write; there is nothing to wait for).
  const std::uint64_t hits_before = cached.hits();
  auto t2 = cached.submit(ctx, read_req(3, 0));
  EXPECT_TRUE(t2.poll());
  EXPECT_EQ(t2.wait().response, 1);
  EXPECT_EQ(cached.hits(), hits_before + 1);
}

// ---------------------------------------------------------------------------
// Concurrent histories linearize at bound 0

TEST(Cached, ConcurrentMixedHistoriesLinearizeAgainstCounterSpec) {
  // 3 threads x 5 ops, reads and fetch_incs interleaved, timestamps
  // from a global atomic clock. At staleness bound 0 every response —
  // cache hits included — must admit a linearization against
  // CounterSpec. Trace sizes stay small: the checker is exponential
  // in overlap.
  constexpr int kThreads = 3;
  constexpr std::uint64_t kOps = 5;

  for (int round = 0; round < 10; ++round) {
    Replicated<Combining<CounterModule, 8, ByThread>, 2, CounterModel>
        cached;
    std::atomic<std::uint64_t> clock{0};
    struct Recorded {
      Response response = 0;
      std::uint64_t invoke = 0;
      std::uint64_t ret = 0;
      std::int64_t op = 0;
    };
    std::array<std::array<Recorded, kOps>, kThreads> rec{};

    (void)workload::run_threads(
        kThreads, kOps, [&](NativeContext& ctx, std::uint64_t i) {
          const auto tid = static_cast<std::size_t>(ctx.id());
          // Threads 1+ read mostly; thread 0 writes mostly — mixed
          // enough that hits, misses, and invalidations all occur.
          const bool is_read = tid == 0 ? (i % 2 == 1) : (i % 4 != 3);
          const Request m =
              is_read ? read_req((static_cast<std::uint64_t>(tid) << 40) |
                                     (i + 1),
                                 ctx.id())
                      : inc_req((static_cast<std::uint64_t>(tid) << 40) |
                                    (i + 1),
                                ctx.id());
          Recorded& r = rec[tid][i];
          r.op = m.op;
          r.invoke = clock.fetch_add(1, std::memory_order_acq_rel);
          r.response = cached.invoke(ctx, m).response;
          r.ret = clock.fetch_add(1, std::memory_order_acq_rel);
        });

    std::vector<ConcurrentOp> ops;
    for (int t = 0; t < kThreads; ++t) {
      for (std::uint64_t i = 0; i < kOps; ++i) {
        const auto& r =
            rec[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)];
        ConcurrentOp op;
        op.pid = static_cast<ProcessId>(t);
        op.request = Request{(static_cast<std::uint64_t>(t) << 40) | (i + 1),
                             static_cast<ProcessId>(t), r.op, 0};
        op.response = r.response;
        op.invoke = r.invoke;
        op.ret = r.ret;
        op.completed = true;
        ops.push_back(op);
      }
    }
    ASSERT_TRUE(linearizable<CounterSpec>(std::move(ops)))
        << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Invalidation storm

TEST(Replicated, InvalidationStormKeepsGenerationExactAndReadsMonotone) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kOps = 512;

  Replicated<Combining<CounterModule, 8, ByThread>, 2, CounterModel> cached;
  std::atomic<std::uint64_t> writes{0};
  std::atomic<std::uint64_t> monotonicity_violations{0};
  std::atomic<std::uint64_t> overshoots{0};

  (void)workload::run_threads(
      kThreads, kOps, [&](NativeContext& ctx, std::uint64_t i) {
        static thread_local Response last_read = -1;
        if (i == 0) last_read = -1;  // fresh per run
        const std::uint64_t id =
            (static_cast<std::uint64_t>(ctx.id()) << 40) | (i + 1);
        if (i % 2 == 0) {
          (void)cached.invoke(ctx, inc_req(id, ctx.id()));
          writes.fetch_add(1, std::memory_order_relaxed);
        } else {
          const Response r =
              cached.invoke(ctx, read_req(id, ctx.id())).response;
          // The counter never decreases: each thread's read stream
          // must be monotone even when served from replicas.
          if (r < last_read) {
            monotonicity_violations.fetch_add(1, std::memory_order_relaxed);
          }
          // A read can never exceed the number of writes ever issued.
          if (r > static_cast<Response>(kThreads * kOps)) {
            overshoots.fetch_add(1, std::memory_order_relaxed);
          }
          last_read = r;
        }
      });

  EXPECT_EQ(monotonicity_violations.load(), 0u);
  EXPECT_EQ(overshoots.load(), 0u);
  // Every write bumped the generation exactly once, even under storm.
  EXPECT_EQ(cached.invalidations(), writes.load());
  EXPECT_EQ(cached.object().object().peek(), writes.load());
  // A post-quiescence read agrees with the ground truth.
  NativeContext ctx(0);
  EXPECT_EQ(cached.invoke(ctx, read_req(1u << 20, 0)).response,
            static_cast<Response>(writes.load()));
}

// ---------------------------------------------------------------------------
// Replica isolation

TEST(Replicated, WritesInvalidateEveryReplica) {
  Replicated<Combining<CounterModule, 8, ByThread>, 4, CounterModel> cached;

  // Fill each replica's entry from a differently-bound context.
  for (ProcessId p = 0; p < 4; ++p) {
    NativeContext ctx(p);
    (void)cached.invoke(ctx, read_req(static_cast<std::uint64_t>(p) + 1, p));
  }
  for (std::size_t rep = 0; rep < 4; ++rep) {
    ASSERT_TRUE(cached.read_at(rep, 0).has_value()) << "replica " << rep;
    EXPECT_EQ(*cached.read_at(rep, 0), 0);
  }

  // One write: every replica's entry must stop serving the old value —
  // either invisible (stale generation) or refilled to the new one.
  NativeContext writer(1);
  EXPECT_EQ(cached.invoke(writer, inc_req(100, 1)).response, 0);
  for (std::size_t rep = 0; rep < 4; ++rep) {
    const auto v = cached.read_at(rep, 0);
    if (v.has_value()) EXPECT_EQ(*v, 1) << "replica " << rep;
  }
  // The writer's own replica was refilled by the completion callback.
  ASSERT_TRUE(cached.read_at(1, 0).has_value());
  EXPECT_EQ(*cached.read_at(1, 0), 1);
}

}  // namespace
}  // namespace scm
