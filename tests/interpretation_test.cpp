// Tests for the Definition-2 (safe composability) interpretation
// checker and the TAS constraint function of Definition 3, on
// hand-built traces with known verdicts.
#include <gtest/gtest.h>

#include "core/constraint.hpp"
#include "core/interpretation.hpp"
#include "history/specs.hpp"

namespace scm {
namespace {

Request req(std::uint64_t id, ProcessId p = 0) { return Request{id, p, 0, 0}; }

TraceEvent invoke(std::uint64_t seq, ProcessId pid, Request r) {
  TraceEvent e;
  e.seq = seq;
  e.kind = EventKind::kInvoke;
  e.pid = pid;
  e.request = r;
  return e;
}

TraceEvent commit(std::uint64_t seq, ProcessId pid, Request r, Response resp) {
  TraceEvent e;
  e.seq = seq;
  e.kind = EventKind::kCommit;
  e.pid = pid;
  e.request = r;
  e.response = resp;
  return e;
}

TraceEvent abort_ev(std::uint64_t seq, ProcessId pid, Request r,
                    SwitchValue v) {
  TraceEvent e;
  e.seq = seq;
  e.kind = EventKind::kAbort;
  e.pid = pid;
  e.request = r;
  e.switch_value = v;
  return e;
}

TraceEvent init_ev(std::uint64_t seq, ProcessId pid, Request r,
                   SwitchValue v) {
  TraceEvent e;
  e.seq = seq;
  e.kind = EventKind::kInit;
  e.pid = pid;
  e.request = r;
  e.switch_value = v;
  return e;
}

// ---------------------------------------------------------------------------
// TasConstraint (Definition 3)

TEST(TasConstraint, WithWTokenHeadMustBeAWAbortedRequest) {
  TasConstraint M;
  const Request r1 = req(1), r2 = req(2);
  std::vector<SwitchToken> tokens{{r1, TasConstraint::kW},
                                  {r2, TasConstraint::kL}};
  EXPECT_TRUE(M.contains(tokens, History{r1, r2}));
  EXPECT_FALSE(M.contains(tokens, History{r2, r1}));  // head is L-token
  EXPECT_FALSE(M.contains(tokens, History{r1}));      // missing r2
}

TEST(TasConstraint, WithoutWTokenHeadMustBeOutsideTokens) {
  TasConstraint M;
  const Request r1 = req(1), r2 = req(2), r3 = req(3);
  std::vector<SwitchToken> tokens{{r1, TasConstraint::kL}};
  EXPECT_FALSE(M.contains(tokens, History{r1}));
  EXPECT_FALSE(M.contains(tokens, History{r1, r2}));
  EXPECT_TRUE(M.contains(tokens, History{r2, r1}));
  EXPECT_TRUE(M.contains(tokens, History{r3, r1, r2}));
  EXPECT_FALSE(M.contains(tokens, History{}));
}

TEST(TasConstraint, EmptyTokenSetAllowsAnyNonEmptyHistory) {
  TasConstraint M;
  EXPECT_TRUE(M.contains({}, History{req(5)}));
  EXPECT_FALSE(M.contains({}, History{}));
}

TEST(TasConstraint, CandidatesEnumerateUniverse) {
  TasConstraint M;
  const Request r1 = req(1), r2 = req(2);
  std::vector<Request> universe{r1, r2};
  std::vector<SwitchToken> tokens{{r1, TasConstraint::kW}};
  const auto cands = M.candidates(tokens, universe);
  // Histories headed by r1 containing r1: [r1], [r1 r2].
  EXPECT_EQ(cands.size(), 2u);
  for (const History& h : cands) EXPECT_EQ(h.head().id, 1u);
}

TEST(EnumerateHistories, CountsMatchFactorialSums) {
  std::vector<Request> universe{req(1), req(2), req(3)};
  // 3 singletons + 6 pairs + 6 triples = 15.
  EXPECT_EQ(enumerate_histories(universe).size(), 15u);
}

// ---------------------------------------------------------------------------
// Definition-2 checking on hand-built traces

TEST(Composability, SoloWinnerTracePasses) {
  // One process invokes and commits winner: interpretation exists
  // ([r1] itself).
  const Request r1 = req(1, 0);
  Trace t({invoke(1, 0, r1), commit(2, 0, r1, TasSpec::kWinner)});
  TasConstraint M;
  EXPECT_TRUE(check_safely_composable<TasSpec>(t, M));
}

TEST(Composability, WinnerAndLoserTracePasses) {
  const Request r1 = req(1, 0), r2 = req(2, 1);
  Trace t({
      invoke(1, 0, r1),
      commit(2, 0, r1, TasSpec::kWinner),
      invoke(3, 1, r2),
      commit(4, 1, r2, TasSpec::kLoser),
  });
  TasConstraint M;
  EXPECT_TRUE(check_safely_composable<TasSpec>(t, M));
}

TEST(Composability, TwoWinnersFail) {
  // Two winner commits cannot be interpreted: no TAS history yields
  // winner twice.
  const Request r1 = req(1, 0), r2 = req(2, 1);
  Trace t({
      invoke(1, 0, r1),
      commit(2, 0, r1, TasSpec::kWinner),
      invoke(3, 1, r2),
      commit(4, 1, r2, TasSpec::kWinner),
  });
  TasConstraint M;
  EXPECT_FALSE(check_safely_composable<TasSpec>(t, M));
}

TEST(Composability, LoserBeforeAnyWinnerNeedsPendingRequest) {
  // A lone loser commit is interpretable only if some other request
  // can be placed before it — here p1's request is invoked (pending,
  // e.g. crashed) and can head the history.
  const Request r1 = req(1, 0), r2 = req(2, 1);
  Trace t({
      invoke(1, 1, r2),  // pending forever (crashed process)
      invoke(2, 0, r1),
      commit(3, 0, r1, TasSpec::kLoser),
  });
  TasConstraint M;
  ComposabilityCheckOptions opts;
  opts.crashed.insert(1);
  EXPECT_TRUE(check_safely_composable<TasSpec>(t, M, opts));
}

TEST(Composability, LoneLoserWithNoOtherRequestFails) {
  // Nothing can be placed before the loser: no valid interpretation.
  const Request r1 = req(1, 0);
  Trace t({invoke(1, 0, r1), commit(2, 0, r1, TasSpec::kLoser)});
  TasConstraint M;
  EXPECT_FALSE(check_safely_composable<TasSpec>(t, M));
}

TEST(Composability, WAbortTracePasses) {
  // p0 aborts with W: every equivalence class of M(aborts) is headed
  // by r1, and habort = [r1] interprets the trace.
  const Request r1 = req(1, 0);
  Trace t({invoke(1, 0, r1), abort_ev(2, 0, r1, TasConstraint::kW)});
  TasConstraint M;
  EXPECT_TRUE(check_safely_composable<TasSpec>(t, M));
}

TEST(Composability, TwoWAbortsBothClassesMustBeSatisfiable) {
  // Two W-aborts: eq(aborts) has one class per candidate head; both
  // must admit interpretations (they do: no commits constrain them).
  const Request r1 = req(1, 0), r2 = req(2, 1);
  Trace t({
      invoke(1, 0, r1),
      invoke(2, 1, r2),
      abort_ev(3, 0, r1, TasConstraint::kW),
      abort_ev(4, 1, r2, TasConstraint::kW),
  });
  TasConstraint M;
  EXPECT_TRUE(check_safely_composable<TasSpec>(t, M));
}

TEST(Composability, WinnerCommitPlusWAbortFails) {
  // If p0 commits winner and p1 aborts with W, the class of histories
  // headed by r2 cannot be interpreted (Invariant 2 of Lemma 4: a
  // winner commit excludes W-aborts). The module would be unsafe.
  const Request r1 = req(1, 0), r2 = req(2, 1);
  Trace t({
      invoke(1, 0, r1),
      invoke(2, 1, r2),
      commit(3, 0, r1, TasSpec::kWinner),
      abort_ev(4, 1, r2, TasConstraint::kW),
  });
  TasConstraint M;
  EXPECT_FALSE(check_safely_composable<TasSpec>(t, M));
}

TEST(Composability, LAbortAfterLoserCommitPasses) {
  const Request r1 = req(1, 0), r2 = req(2, 1), r3 = req(3, 2);
  Trace t({
      invoke(1, 0, r1),
      invoke(2, 1, r2),
      commit(3, 1, r2, TasSpec::kLoser),   // r1 must be the winner
      abort_ev(4, 0, r1, TasConstraint::kW),
      invoke(5, 2, r3),
      abort_ev(6, 2, r3, TasConstraint::kL),
  });
  TasConstraint M;
  EXPECT_TRUE(check_safely_composable<TasSpec>(t, M));
}

TEST(Composability, InitializedTracePasses) {
  // A module initialized with a W switch token for r1 (from a previous
  // module's abort); p1 then commits loser, consistent with r1 winning.
  const Request r1 = req(1, 0), r2 = req(2, 1);
  Trace t({
      init_ev(1, 0, r1, TasConstraint::kW),
      invoke(2, 1, r2),
      commit(3, 0, r1, TasSpec::kWinner),
      commit(4, 1, r2, TasSpec::kLoser),
  });
  TasConstraint M;
  EXPECT_TRUE(check_safely_composable<TasSpec>(t, M));
}

TEST(Composability, InitializedTraceContradictionFails) {
  // Initialized with W for r1 (meaning: if anyone won already it is
  // r1), but then r2 commits winner — inconsistent with every init
  // history, because init histories are headed by r1 and must prefix
  // every commit history.
  const Request r1 = req(1, 0), r2 = req(2, 1);
  Trace t({
      init_ev(1, 0, r1, TasConstraint::kW),
      invoke(2, 1, r2),
      commit(3, 1, r2, TasSpec::kWinner),
  });
  TasConstraint M;
  EXPECT_FALSE(check_safely_composable<TasSpec>(t, M));
}

TEST(Composability, EmptyTracePasses) {
  TasConstraint M;
  EXPECT_TRUE(check_safely_composable<TasSpec>(Trace{}, M));
}

}  // namespace
}  // namespace scm
