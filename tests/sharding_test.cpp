// Tests for the sharded composition layer (core/sharding.hpp) and the
// keyed operation streams (workload/keyed.hpp):
//
//  * routing policies are deterministic where promised (ByThread,
//    ByKeyHash) and cycle where promised (RoundRobin);
//  * a depth-2 A1∘A2 pipeline replicated across shards stays
//    linearizable per shard under random schedules (each shard is the
//    composed object the paper proves correct);
//  * merged statistics equal the sum of the per-shard snapshots, for
//    both pipeline stats and chain commit tallies;
//  * the runtime active-shard mask: set_active_shards remaps routing
//    and bumps the epoch, and shrinking drains retired shards'
//    in-flight operations before returning;
//  * Sharded composes: it is itself a ComposableModule, nests inside
//    pipelines and inside another Sharded, and wraps
//    StaticAbstractChain via per-shard constructor arguments;
//  * keyed streams are deterministic, in-bounds, and skewed exactly
//    when asked.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <thread>
#include <tuple>
#include <vector>

#include "consensus/cas_consensus.hpp"
#include "consensus/split_consensus.hpp"
#include "core/batch.hpp"
#include "core/module.hpp"
#include "core/pipeline.hpp"
#include "core/sharding.hpp"
#include "history/specs.hpp"
#include "lincheck/lincheck.hpp"
#include "runtime/context.hpp"
#include "sim/schedules.hpp"
#include "sim/sim_platform.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"
#include "tas/a1_module.hpp"
#include "tas/a2_module.hpp"
#include "universal/composable_universal.hpp"
#include "universal/static_chain.hpp"
#include "workload/keyed.hpp"

namespace scm {
namespace {

using sim::SimContext;
using sim::SimPlatform;
using sim::Simulator;

using A1 = ObstructionFreeTas<SimPlatform>;
using A2 = WaitFreeTas<SimPlatform>;

// Plumbing-only modules (no shared-memory steps), as in pipeline_test.
struct HopModule {
  static constexpr int kConsensusNumber = kConsensusNumberRegister;

  template <class Ctx>
  ModuleResult invoke(Ctx& /*ctx*/, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    return ModuleResult::abort_with(init.value_or(0) + 1);
  }
};

struct SinkModule {
  static constexpr int kConsensusNumber = kConsensusNumberRegister;

  template <class Ctx>
  ModuleResult invoke(Ctx& /*ctx*/, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    return ModuleResult::commit(init.value_or(0));
  }
};

Request keyed_req(std::uint64_t id, ProcessId p, std::uint64_t key) {
  return Request{id, p, TasSpec::kTestAndSet,
                 static_cast<std::int64_t>(key)};
}

// ---------------------------------------------------------------------------
// Static properties

TEST(Sharded, IsItselfAComposableModuleAndInheritsStaticTags) {
  using Pipe = Pipeline<HopModule, SinkModule>;
  using S = Sharded<Pipe, 4, ByKeyHash>;
  static_assert(S::kShardCount == 4);
  static_assert(S::kDepth == Pipe::kDepth);
  static_assert(S::kConsensusNumber == Pipe::kConsensusNumber,
                "replication cannot raise consensus power");
  static_assert(ComposableModule<S, NativeContext>);
  static_assert(!std::is_polymorphic_v<S>);

  // Nesting: a shard may itself be sharded, and the result is still a
  // module.
  using Nested = Sharded<S, 2, ByThread>;
  static_assert(Nested::kConsensusNumber == Pipe::kConsensusNumber);
  static_assert(ComposableModule<Nested, NativeContext>);
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Routing policies

TEST(Sharded, ByThreadRoutesEachProcessToItsResidueClass) {
  Sharded<Pipeline<SinkModule>, 4, ByThread> sharded;
  for (int pid = 0; pid < 12; ++pid) {
    NativeContext ctx(static_cast<ProcessId>(pid));
    const Request m = keyed_req(static_cast<std::uint64_t>(pid) + 1,
                                static_cast<ProcessId>(pid), 99);
    EXPECT_EQ(sharded.route(ctx, m), static_cast<std::size_t>(pid % 4));
    // Stable across repeated calls and independent of the key.
    EXPECT_EQ(sharded.route(ctx, m),
              sharded.route(ctx, keyed_req(500 + static_cast<std::uint64_t>(
                                                     pid),
                                           static_cast<ProcessId>(pid), 7)));
  }
}

TEST(Sharded, ByKeyHashIsDeterministicPerKeyAndIssuerIndependent) {
  Sharded<Pipeline<SinkModule>, 8, ByKeyHash> sharded;
  NativeContext c0(0), c5(5);
  std::array<bool, 8> hit{};
  for (std::uint64_t key = 0; key < 256; ++key) {
    const std::size_t via0 = sharded.route(c0, keyed_req(key + 1, 0, key));
    const std::size_t via5 =
        sharded.route(c5, keyed_req(key + 1000, 5, key));
    EXPECT_EQ(via0, via5) << "key " << key;
    EXPECT_LT(via0, 8u);
    hit[via0] = true;
  }
  // The mixer spreads 256 keys over all 8 shards.
  for (std::size_t s = 0; s < 8; ++s) EXPECT_TRUE(hit[s]) << "shard " << s;
}

TEST(Sharded, RoundRobinCyclesThroughAllShards) {
  Sharded<Pipeline<SinkModule>, 3, RoundRobin> sharded;
  NativeContext ctx(0);
  for (int lap = 0; lap < 4; ++lap) {
    for (std::size_t s = 0; s < 3; ++s) {
      EXPECT_EQ(sharded.route(ctx, keyed_req(1, 0, 0)), s);
    }
  }
}

TEST(Sharded, RoundRobinCursorOwnsItsCacheLine) {
  // Regression for false sharing: the round-robin cursor is written on
  // every routed operation, so it must start a cache line and claim the
  // whole of it — neighbors laid out after the policy (or after the
  // cursor, inside the policy) may never share its line.
  static_assert(alignof(RoundRobin) == kCacheLineSize,
                "cursor must start on a cache-line boundary");
  static_assert(sizeof(RoundRobin) >= kCacheLineSize,
                "cursor must claim its full cache line");
  SUCCEED();
}

TEST(Sharded, ByLeastLoadedTracksInFlightAndSpreadsAccordingly) {
  static_assert(ShardRoutingPolicy<ByLeastLoaded<8>, NativeContext>);
  ByLeastLoaded<8> policy;
  NativeContext ctx(0);
  const Request m = keyed_req(1, 0, 0);

  // Route WITHOUT completing: in-flight counts accumulate, so the
  // minimum scan cycles through the shards (ties break to the lowest
  // index).
  for (int lap = 0; lap < 3; ++lap) {
    for (std::size_t s = 0; s < 4; ++s) {
      EXPECT_EQ(policy(ctx, m, 4), s) << "lap " << lap;
    }
  }
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(policy.in_flight(s), 3) << "shard " << s;
  }
  // Completion drains the counters back down.
  for (int k = 0; k < 3; ++k) {
    for (std::size_t s = 0; s < 4; ++s) policy.on_complete(s);
  }
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(policy.in_flight(s), 0) << "shard " << s;
  }
}

TEST(Sharded, InvokeNotifiesALoadTrackingPolicyOnCompletion) {
  // Sharded::invoke routes, runs, then calls the policy's on_complete
  // hook, so sequential callers always see zero in-flight afterwards
  // (and, all counts equal, land on shard 0 — genuine spreading needs
  // overlapping operations).
  Sharded<Pipeline<HopModule, SinkModule>, 4, ByLeastLoaded<4>> sharded;
  NativeContext ctx(0);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(sharded.invoke(ctx, keyed_req(static_cast<std::uint64_t>(i) + 1,
                                            0, 0))
                  .response,
              1);
    for (std::size_t s = 0; s < 4; ++s) {
      EXPECT_EQ(sharded.policy().in_flight(s), 0) << "op " << i;
    }
  }
  EXPECT_EQ(sharded.shard(0).stats(1).commits, 6u);

  // The explicit attribution pattern: route() increments, the caller
  // completes by hand.
  const Request m = keyed_req(100, 0, 0);
  const std::size_t s = sharded.route(ctx, m);
  EXPECT_EQ(sharded.policy().in_flight(s), 1);
  (void)sharded.invoke_at(s, ctx, m);
  sharded.complete(s);
  EXPECT_EQ(sharded.policy().in_flight(s), 0);
}

TEST(Sharded, SetActiveShardsRemapsRoutingAndBumpsTheEpoch) {
  // The active-mask actuator with a stateless policy: the published
  // count IS the routing modulus, growing and shrinking both take
  // effect on the next route, and each reconfiguration bumps the
  // epoch exactly once.
  Sharded<Pipeline<SinkModule>, 4, ByThread> sharded;
  EXPECT_EQ(sharded.active_shards(), 4u);
  EXPECT_EQ(sharded.active_epoch(), 0u);

  NativeContext c6(6);
  EXPECT_EQ(sharded.route(c6, keyed_req(1, 6, 0)), 2u);  // 6 mod 4

  sharded.set_active_shards(2);
  EXPECT_EQ(sharded.active_shards(), 2u);
  EXPECT_EQ(sharded.active_epoch(), 1u);
  EXPECT_EQ(sharded.route(c6, keyed_req(2, 6, 0)), 0u);  // 6 mod 2
  // Routed operations keep running on the shrunken mask.
  EXPECT_TRUE(sharded.invoke(c6, keyed_req(3, 6, 0)).committed());

  sharded.set_active_shards(4);
  EXPECT_EQ(sharded.active_shards(), 4u);
  EXPECT_EQ(sharded.active_epoch(), 2u);
  EXPECT_EQ(sharded.route(c6, keyed_req(4, 6, 0)), 2u);
}

TEST(Sharded, ShrinkDrainsInFlightOpsOnRetiredShards) {
  // The drain regression: with a load-tracking policy,
  // set_active_shards(n) publishes the smaller mask immediately (new
  // arrivals stop routing to retired shards) but must NOT return
  // while an operation routed earlier is still attributed to a
  // retired shard — only complete() unblocks it.
  Sharded<Pipeline<HopModule, SinkModule>, 4, ByLeastLoaded<4>> sharded;
  NativeContext ctx(0);

  // The attribution pattern, left open: route() increments in-flight,
  // nobody completes. Least-loaded cycles through all four shards.
  for (std::uint64_t i = 0; i < 4; ++i) {
    (void)sharded.route(ctx, keyed_req(i + 1, 0, 0));
  }
  for (std::size_t s = 0; s < 4; ++s) {
    ASSERT_EQ(sharded.policy().in_flight(s), 1) << "shard " << s;
  }

  std::atomic<bool> returned{false};
  std::thread reconfig([&] {
    sharded.set_active_shards(2);
    returned.store(true, std::memory_order_release);
  });

  // The mask is published before the drain finishes...
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(sharded.active_shards(), 2u);
  // ... but the call is still parked on shards 2 and 3.
  EXPECT_FALSE(returned.load(std::memory_order_acquire));

  sharded.complete(3);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(returned.load(std::memory_order_acquire));  // 2 still open

  sharded.complete(2);
  reconfig.join();
  EXPECT_EQ(sharded.active_epoch(), 1u);

  // The drain touched only retired shards; the survivors' in-flight
  // attribution is intact.
  EXPECT_EQ(sharded.policy().in_flight(0), 1);
  EXPECT_EQ(sharded.policy().in_flight(1), 1);
  sharded.complete(0);
  sharded.complete(1);

  // Post-shrink routing never leaves the active range.
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::size_t s = sharded.route(ctx, keyed_req(100 + i, 0, 0));
    EXPECT_LT(s, 2u);
    sharded.complete(s);
  }
}

TEST(Sharded, InvokeAtRunsOnTheNamedShardWithoutConsultingThePolicy) {
  // The attribution pattern: route once, run on exactly that shard.
  // With a stateful policy a second consultation would advance the
  // cursor, so invoke_at must not route again.
  Sharded<Pipeline<HopModule, SinkModule>, 3, RoundRobin> sharded;
  NativeContext ctx(0);
  for (int i = 0; i < 6; ++i) {
    const Request m = keyed_req(static_cast<std::uint64_t>(i) + 1, 0, 0);
    const std::size_t s = sharded.route(ctx, m);
    EXPECT_EQ(s, static_cast<std::size_t>(i % 3));
    EXPECT_EQ(sharded.invoke_at(s, ctx, m).response, 1);
    EXPECT_EQ(sharded.shard(s).stats(1).commits,
              static_cast<std::uint64_t>(i / 3) + 1);
  }
}

// ---------------------------------------------------------------------------
// Per-shard isolation and linearizability

TEST(Sharded, ShardsAreIndependentInstances) {
  // Two ByThread shards of a hop->sink pipeline: operations on shard 0
  // never touch shard 1's counters.
  Sharded<Pipeline<HopModule, SinkModule>, 2, ByThread> sharded;
  NativeContext even(0), odd(1);

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sharded.invoke(even, keyed_req(static_cast<std::uint64_t>(i) +
                                                 1,
                                             0, 0))
                  .response,
              1);
  }
  EXPECT_EQ(sharded.invoke(odd, keyed_req(100, 1, 0)).response, 1);

  EXPECT_EQ(sharded.shard(0).stats(1).commits, 3u);
  EXPECT_EQ(sharded.shard(1).stats(1).commits, 1u);
}

TEST(Sharded, EachShardStaysLinearizableUnderRandomSchedules) {
  // Depth-2 A1∘A2 TAS per shard, ByKeyHash routing: every key's
  // operations land on one shard, so each shard's recorded history
  // must linearize against the TAS spec on its own (Theorem 4 shape,
  // replicated).
  constexpr std::size_t kShards = 2;
  constexpr int kN = 4;  // processes; keys chosen to cover both shards

  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Simulator s;
    Sharded<Pipeline<A1, A2>, kShards, ByKeyHash> sharded;

    // Map each process to a key such that both shards receive traffic.
    std::array<std::uint64_t, kN> key_of{};
    std::array<std::size_t, kN> shard_of{};
    {
      NativeContext probe(0);
      std::size_t want = 0;
      std::uint64_t next_key = 0;
      for (int p = 0; p < kN; ++p) {
        for (;; ++next_key) {
          const std::size_t sh = sharded.route(
              probe, keyed_req(1, 0, next_key));
          if (sh == want % kShards) {
            key_of[static_cast<std::size_t>(p)] = next_key++;
            shard_of[static_cast<std::size_t>(p)] = sh;
            ++want;
            break;
          }
        }
      }
    }

    std::vector<ModuleResult> rs(kN);
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        const Request m = keyed_req(static_cast<std::uint64_t>(p) + 1, p,
                                    key_of[static_cast<std::size_t>(p)]);
        ctx.begin_op();
        rs[static_cast<std::size_t>(p)] = sharded.invoke(ctx, m);
        ctx.end_op(rs[static_cast<std::size_t>(p)].response);
      });
    }
    sim::RandomSchedule sched(seed * 31 + 5);
    s.run(sched);

    // Exactly one winner per shard, and each shard's history
    // linearizes independently.
    for (std::size_t sh = 0; sh < kShards; ++sh) {
      int winners = 0;
      std::vector<ConcurrentOp> ops;
      for (const auto& rec : s.ops()) {
        const auto p = static_cast<std::size_t>(rec.pid);
        if (shard_of[p] != sh) continue;
        ASSERT_TRUE(rs[p].committed()) << "seed " << seed;
        if (rs[p].response == TasSpec::kWinner) ++winners;
        ConcurrentOp op;
        op.pid = rec.pid;
        op.request = keyed_req(static_cast<std::uint64_t>(rec.pid) + 1,
                               rec.pid, key_of[p]);
        op.response = rec.output;
        op.invoke = rec.invoke_event;
        op.ret = rec.response_event;
        op.completed = rec.complete;
        ops.push_back(op);
      }
      ASSERT_FALSE(ops.empty()) << "seed " << seed << " shard " << sh;
      EXPECT_EQ(winners, 1) << "seed " << seed << " shard " << sh;
      ASSERT_TRUE(linearizable<TasSpec>(std::move(ops)))
          << "seed " << seed << " shard " << sh;
    }
  }
}

// ---------------------------------------------------------------------------
// Merged statistics

TEST(Sharded, AggregateStatsEqualSumOfPerShardSnapshots) {
  constexpr std::size_t kShards = 4;
  Sharded<Pipeline<HopModule, SinkModule>, kShards, ByThread> sharded;

  // Uneven load: process p issues p+1 operations.
  constexpr int kN = 6;
  for (int p = 0; p < kN; ++p) {
    NativeContext ctx(static_cast<ProcessId>(p));
    for (int i = 0; i <= p; ++i) {
      const auto id = static_cast<std::uint64_t>(p) * 100 +
                      static_cast<std::uint64_t>(i) + 1;
      (void)sharded.invoke(ctx, keyed_req(id, static_cast<ProcessId>(p), 0));
    }
  }

  constexpr std::uint64_t kTotal = kN * (kN + 1) / 2;  // 21
  for (std::size_t stage = 0; stage < 2; ++stage) {
    PipelineStageStats sum;
    for (std::size_t sh = 0; sh < kShards; ++sh) {
      const PipelineStageStats one = sharded.shard(sh).stats(stage);
      sum.commits += one.commits;
      sum.aborts += one.aborts;
    }
    const PipelineStageStats agg = sharded.stats(stage);
    EXPECT_EQ(agg.commits, sum.commits) << "stage " << stage;
    EXPECT_EQ(agg.aborts, sum.aborts) << "stage " << stage;
  }
  EXPECT_EQ(sharded.stats(0).aborts, kTotal);   // every op hops once
  EXPECT_EQ(sharded.stats(1).commits, kTotal);  // and commits at the sink

  sharded.reset_stats();
  EXPECT_EQ(sharded.stats(0).invocations(), 0u);
  EXPECT_EQ(sharded.stats(1).invocations(), 0u);
}

// ---------------------------------------------------------------------------
// Composition with pipelines and chains

TEST(Sharded, NestsInsideAPipelineAsAStage) {
  // A sharded all-abort front tier in front of a shared sink: the
  // combinator composes like any module (Theorem 2 applied to the
  // sharded object).
  Sharded<Pipeline<HopModule, HopModule>, 2, ByThread> front;
  SinkModule sink;
  auto pipe = make_pipeline(front, sink);
  static_assert(decltype(pipe)::kDepth == 2);

  NativeContext ctx(1);
  const ModuleResult r = pipe.invoke(ctx, keyed_req(1, 1, 0));
  EXPECT_TRUE(r.committed());
  EXPECT_EQ(r.response, 2);  // both hops of shard 1 ran
  EXPECT_EQ(front.shard(1).stats(1).aborts, 1u);
  EXPECT_EQ(front.shard(0).stats(0).invocations(), 0u);
}

TEST(Sharded, WrapsStaticAbstractChainWithPerShardArguments) {
  using SplitStage = ComposableUniversal<SimPlatform, CounterSpec,
                                         SplitConsensus<SimPlatform>, 48>;
  using CasStage = ComposableUniversal<SimPlatform, CounterSpec,
                                       CasConsensus<SimPlatform>, 48>;
  using Chain = StaticAbstractChain<SplitStage, CasStage>;
  constexpr int kN = 2;

  SplitStage split0(kN, 48, "split0"), split1(kN, 48, "split1");
  CasStage cas0(kN, 48, "cas0"), cas1(kN, 48, "cas1");
  Sharded<Chain, 2, ByThread> sharded(
      std::in_place, [&](std::size_t shard) {
        return shard == 0 ? std::forward_as_tuple(kN, split0, cas0)
                          : std::forward_as_tuple(kN, split1, cas1);
      });
  EXPECT_EQ(sharded.consensus_number(), kConsensusNumberCas);

  // Each process drives its own shard's counter: two independent
  // fetch&inc sequences, each starting at zero.
  Simulator s;
  std::array<std::vector<Response>, kN> got;
  for (int p = 0; p < kN; ++p) {
    s.add_process([&, p](SimContext& ctx) {
      for (int i = 0; i < 3; ++i) {
        const auto id = static_cast<std::uint64_t>(p) * 100 +
                        static_cast<std::uint64_t>(i) + 1;
        got[static_cast<std::size_t>(p)].push_back(
            sharded
                .perform(ctx, Request{id, p, CounterSpec::kFetchInc, 0})
                .response);
      }
      // The explicit-shard chain surface continues the same shard's
      // sequence (ByThread maps process p to shard p here).
      got[static_cast<std::size_t>(p)].push_back(
          sharded
              .perform_at(static_cast<std::size_t>(p), ctx,
                          Request{static_cast<std::uint64_t>(p) * 100 + 99, p,
                                  CounterSpec::kFetchInc, 0})
              .response);
    });
  }
  sim::RandomSchedule sched(11);
  s.run(sched);

  for (int p = 0; p < kN; ++p) {
    EXPECT_EQ(got[static_cast<std::size_t>(p)],
              (std::vector<Response>{0, 1, 2, 3}))
        << "p" << p;
  }

  // Chain accounting merges across shards: all eight commits are
  // visible through the aggregate, and they sum over the per-shard
  // tallies.
  std::uint64_t agg = 0;
  for (std::size_t st = 0; st < 2; ++st) {
    for (int p = 0; p < kN; ++p) {
      std::uint64_t per_shard = 0;
      for (std::size_t sh = 0; sh < 2; ++sh) {
        per_shard += sharded.shard(sh).commits_by(p, st);
      }
      EXPECT_EQ(sharded.commits_by(p, st), per_shard);
      agg += per_shard;
    }
  }
  EXPECT_EQ(agg, 8u);
}

// Commits the inherited fold tagged with a per-instance ticket, so
// response streams expose both the routing and the execution order.
struct CountingSink {
  static constexpr int kConsensusNumber = kConsensusNumberRegister;
  std::int64_t next = 0;

  template <class Ctx>
  ModuleResult invoke(Ctx& /*ctx*/, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    return ModuleResult::commit(init.value_or(0) * 1000 + next++);
  }
};

TEST(Sharded, InvokeBatchMatchesPerOpRoutingExactly) {
  // The regression pinning the batch-grouping contract: every pending
  // slot is routed exactly once, in slot order, so a STATEFUL policy
  // (RoundRobin — the adversarial case) advances identically under the
  // batch path and the per-op loop, and the per-shard accounting (the
  // shard each op ran on, the order within each shard, the per-stage
  // stats) matches exactly.
  using Pipe = Pipeline<HopModule, CountingSink>;
  Sharded<Pipe, 4, RoundRobin> per_op;
  Sharded<Pipe, 4, RoundRobin> batched;
  NativeContext ctx(0);

  std::vector<OpSlot> slots;
  for (std::uint64_t i = 0; i < 13; ++i) {
    OpSlot s;
    s.request = keyed_req(i + 1, 0, i * 7);
    if (i % 3 == 0) s.init = static_cast<SwitchValue>(i);
    slots.push_back(s);
  }
  // Pre-finalized slots must be skipped — not routed, not executed
  // (routing one would advance the policy and desync every later op).
  slots[4].done = true;
  slots[4].result = ModuleResult::commit(-1);
  slots[9].done = true;
  slots[9].result = ModuleResult::commit(-2);

  std::vector<ModuleResult> want(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].done) {
      want[i] = slots[i].result;
      continue;
    }
    want[i] = per_op.invoke(ctx, slots[i].request, slots[i].init);
  }

  batched.invoke_batch(ctx, std::span<OpSlot>(slots));

  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_TRUE(slots[i].done) << i;
    EXPECT_EQ(slots[i].result.outcome, want[i].outcome) << i;
    EXPECT_EQ(slots[i].result.response, want[i].response) << i;
  }
  // Per-shard accounting: each replica saw the same invocation
  // subsequence under both paths.
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(batched.shard(s).stats(0).aborts, per_op.shard(s).stats(0).aborts)
        << "shard " << s;
    EXPECT_EQ(batched.shard(s).stats(1).commits,
              per_op.shard(s).stats(1).commits)
        << "shard " << s;
    EXPECT_EQ(batched.shard(s).template stage<1>().next,
              per_op.shard(s).template stage<1>().next)
        << "shard " << s;
  }
}

TEST(Sharded, InvokeBatchRoutesKeysLikePerOpInvoke) {
  // ByKeyHash grouping: per-key determinism survives the batch path —
  // the same key reaches the same shard either way.
  using Pipe = Pipeline<HopModule, CountingSink>;
  Sharded<Pipe, 4, ByKeyHash> per_op;
  Sharded<Pipe, 4, ByKeyHash> batched;
  NativeContext ctx(0);

  std::vector<OpSlot> slots;
  for (std::uint64_t i = 0; i < 16; ++i) {
    OpSlot s;
    s.request = keyed_req(i + 1, 0, i % 5);  // repeated keys
    slots.push_back(s);
  }
  std::vector<ModuleResult> want(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    want[i] = per_op.invoke(ctx, slots[i].request, slots[i].init);
  }
  batched.invoke_batch(ctx, std::span<OpSlot>(slots));
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i].result.response, want[i].response) << i;
  }
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(batched.shard(s).stats(1).commits,
              per_op.shard(s).stats(1).commits)
        << "shard " << s;
  }
}

TEST(Sharded, PerformBatchGroupsChainRequestsPerShard) {
  // Chain-shaped counterpart: group, one perform_batch per shard,
  // scatter the ChainPerformed results back to their original
  // positions. Solo under a sequential schedule, so the batch run is
  // deterministic and comparable against per-op perform on identical
  // replicas.
  using SplitStage = ComposableUniversal<SimPlatform, CounterSpec,
                                         SplitConsensus<SimPlatform>, 48>;
  using CasStage = ComposableUniversal<SimPlatform, CounterSpec,
                                       CasConsensus<SimPlatform>, 48>;
  using Chain = StaticAbstractChain<SplitStage, CasStage>;
  constexpr std::size_t kOps = 10;

  constexpr int kN = 1;  // named: forward_as_tuple holds references
  SplitStage split_a0(kN, 48, "a0"), split_a1(kN, 48, "a1");
  CasStage cas_a0(kN, 48, "ca0"), cas_a1(kN, 48, "ca1");
  Sharded<Chain, 2, ByKeyHash> per_op(std::in_place, [&](std::size_t shard) {
    return shard == 0 ? std::forward_as_tuple(kN, split_a0, cas_a0)
                      : std::forward_as_tuple(kN, split_a1, cas_a1);
  });
  SplitStage split_b0(kN, 48, "b0"), split_b1(kN, 48, "b1");
  CasStage cas_b0(kN, 48, "cb0"), cas_b1(kN, 48, "cb1");
  Sharded<Chain, 2, ByKeyHash> batched(std::in_place, [&](std::size_t shard) {
    return shard == 0 ? std::forward_as_tuple(kN, split_b0, cas_b0)
                      : std::forward_as_tuple(kN, split_b1, cas_b1);
  });

  std::array<Request, kOps> ms;
  for (std::size_t i = 0; i < kOps; ++i) {
    ms[i] = Request{static_cast<std::uint64_t>(i) + 1, 0,
                    CounterSpec::kFetchInc,
                    static_cast<std::int64_t>(i % 3)};  // repeated keys
  }

  std::array<ChainPerformed, kOps> want;
  std::array<ChainPerformed, kOps> got;
  {
    Simulator s;
    s.add_process([&](SimContext& ctx) {
      for (std::size_t i = 0; i < kOps; ++i) {
        want[i] = per_op.perform(ctx, ms[i]);
      }
    });
    sim::SequentialSchedule sched;
    s.run(sched);
  }
  {
    Simulator s;
    s.add_process([&](SimContext& ctx) {
      batched.perform_batch(ctx, std::span<const Request>(ms),
                            std::span<ChainPerformed>(got));
    });
    sim::SequentialSchedule sched;
    s.run(sched);
  }

  for (std::size_t i = 0; i < kOps; ++i) {
    EXPECT_EQ(got[i].response, want[i].response) << i;
    EXPECT_EQ(got[i].stage, want[i].stage) << i;
  }
  // Per-shard chain accounting matches per-op routing exactly.
  for (std::size_t sh = 0; sh < 2; ++sh) {
    for (std::size_t st = 0; st < 2; ++st) {
      EXPECT_EQ(batched.shard(sh).commits_by(0, st),
                per_op.shard(sh).commits_by(0, st))
          << "shard " << sh << " stage " << st;
    }
  }
}

// ---------------------------------------------------------------------------
// Keyed streams

TEST(KeyedStreams, UniformDrawsAreInBoundsAndDeterministic) {
  const workload::UniformKeys keys(37);
  Rng a(123), b(123), c(124);
  bool any_diff = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t ka = keys(a);
    EXPECT_LT(ka, 37u);
    EXPECT_EQ(ka, keys(b));  // same seed, same stream
    if (ka != keys(c)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);  // different seed, different stream
}

TEST(KeyedStreams, ZipfianSkewConcentratesOnHotKeys) {
  constexpr std::uint64_t kKeys = 64;
  constexpr int kDraws = 20000;

  const auto histogram = [&](double theta) {
    const workload::ZipfianKeys keys(kKeys, theta);
    std::array<int, kKeys> h{};
    Rng rng(7);
    for (int i = 0; i < kDraws; ++i) {
      const std::uint64_t k = keys(rng);
      EXPECT_LT(k, kKeys);
      ++h[k];
    }
    return h;
  };

  const auto uniform = histogram(0.0);
  const auto skewed = histogram(0.99);

  // theta = 0 degenerates to uniform: no key takes a large multiple of
  // its fair share.
  constexpr double kFair = static_cast<double>(kDraws) / kKeys;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_LT(uniform[k], 2.0 * kFair) << "key " << k;
  }
  // theta = 0.99: key 0 is hot (many times its fair share) and the
  // head dominates the tail.
  EXPECT_GT(skewed[0], 5.0 * kFair);
  // Zipf(0.99) over 64 keys gives the top four keys ~45% of the mass
  // (vs 6.25% uniform).
  const int head = skewed[0] + skewed[1] + skewed[2] + skewed[3];
  EXPECT_GT(head, kDraws / 3);
  EXPECT_GT(skewed[0], skewed[kKeys - 1]);
}

TEST(KeyedStreams, ZipfianIsDeterministicAndHandlesOneKey) {
  const workload::ZipfianKeys a(64, 0.99), b(64, 0.99);
  Rng ra(99), rb(99);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(a(ra), b(rb));

  const workload::ZipfianKeys one(1, 0.5);
  Rng r(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(one(r), 0u);
}

TEST(KeyedStreams, ZetaIsMemoizedAcrossIdenticalConstructions) {
  // Sweeps construct one generator per (threads x reps) cell with the
  // SAME (keys, theta); only the first construction may pay the O(keys)
  // harmonic sum. A distinctive parameter pair keeps this test
  // independent of whichever generators ran before it in the process.
  constexpr std::uint64_t kKeys = 977;  // prime, used nowhere else
  constexpr double kTheta = 0.123456789;

  const std::uint64_t before = workload::ZipfianKeys::zeta_computations();
  const workload::ZipfianKeys first(kKeys, kTheta);
  const std::uint64_t after_first = workload::ZipfianKeys::zeta_computations();
  // The first construction computes zeta(keys, theta) and zeta(2,
  // theta) — at most two evaluations, at least one.
  EXPECT_GE(after_first, before + 1);
  EXPECT_LE(after_first, before + 2);

  // Every later identical construction is a pure cache lookup.
  for (int i = 0; i < 16; ++i) {
    const workload::ZipfianKeys again(kKeys, kTheta);
    (void)again;
  }
  EXPECT_EQ(workload::ZipfianKeys::zeta_computations(), after_first);

  // The memo is keyed on the exact pair: a different theta computes.
  const workload::ZipfianKeys other(kKeys, 0.5);
  (void)other;
  EXPECT_GT(workload::ZipfianKeys::zeta_computations(), after_first);

  // Memoized and fresh generators draw identical streams.
  const workload::ZipfianKeys memoized(kKeys, kTheta);
  Rng ra(7), rb(7);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(first(ra), memoized(rb));
}

}  // namespace
}  // namespace scm