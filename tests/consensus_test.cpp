// Tests for the splitter and the three consensus implementations
// (Appendix A + the CAS baseline): safety under every schedule we can
// throw at them, progress exactly under their stated conditions.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "consensus/abortable_bakery.hpp"
#include "consensus/cas_consensus.hpp"
#include "consensus/consensus.hpp"
#include "consensus/split_consensus.hpp"
#include "consensus/splitter.hpp"
#include "sim/explorer.hpp"
#include "sim/schedules.hpp"
#include "sim/sim_platform.hpp"
#include "sim/simulator.hpp"

namespace scm {
namespace {

using sim::SimContext;
using sim::SimPlatform;
using sim::Simulator;

// ---------------------------------------------------------------------------
// Splitter

TEST(Splitter, SoloProcessStops) {
  Simulator s;
  Splitter<SimPlatform> splitter;
  SplitterVerdict verdict{};
  s.add_process([&](SimContext& ctx) { verdict = splitter.get(ctx); });
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_EQ(verdict, SplitterVerdict::kStop);
}

TEST(Splitter, AtMostOneStopUnderAllInterleavings) {
  auto verdicts = std::make_shared<std::vector<SplitterVerdict>>();
  auto stats = sim::explore_all_schedules(
      [&]() {
        auto s = std::make_unique<Simulator>();
        auto splitter = std::make_shared<Splitter<SimPlatform>>();
        verdicts->assign(3, SplitterVerdict::kDown);
        for (int p = 0; p < 3; ++p) {
          s->add_process([splitter, verdicts, p](SimContext& ctx) {
            (*verdicts)[p] = splitter->get(ctx);
          });
        }
        return s;
      },
      [&](Simulator&) {
        int stops = 0;
        for (auto v : *verdicts) {
          if (v == SplitterVerdict::kStop) ++stops;
        }
        EXPECT_LE(stops, 1);
      },
      // The 3x4-step interleaving tree has ~35k leaves; a capped DFS
      // prefix keeps suite time bounded (randomized sweeps cover the
      // rest of the space).
      /*max_runs=*/6'000);
  EXPECT_GT(stats.runs, 1'000u);
}

TEST(Splitter, ReusableAfterReset) {
  Simulator s;
  Splitter<SimPlatform> splitter;
  std::vector<SplitterVerdict> verdicts;
  s.add_process([&](SimContext& ctx) {
    for (int round = 0; round < 3; ++round) {
      const auto v = splitter.get(ctx);
      verdicts.push_back(v);
      if (v == SplitterVerdict::kStop) splitter.reset(ctx);
    }
  });
  sim::SequentialSchedule sched;
  s.run(sched);
  ASSERT_EQ(verdicts.size(), 3u);
  for (auto v : verdicts) EXPECT_EQ(v, SplitterVerdict::kStop);
}

// ---------------------------------------------------------------------------
// Shared driver: n processes each run cons.run(old=⊥, own value) and we
// collect the results.

template <class Cons>
struct RunOutcome {
  std::vector<std::optional<ConsensusResult>> results;
  Simulator sim;

  explicit RunOutcome(int n) : results(n) {}
};

// Validates abortable-consensus safety: all committed values equal, and
// every committed value was somebody's proposal (or inherited value).
template <class Cons>
void check_agreement_and_validity(
    const std::vector<std::optional<ConsensusResult>>& results,
    const std::vector<std::int64_t>& proposals) {
  std::set<std::int64_t> committed;
  for (const auto& r : results) {
    if (r && r->committed()) committed.insert(r->value);
  }
  EXPECT_LE(committed.size(), 1u) << "two different values committed";
  for (std::int64_t v : committed) {
    EXPECT_NE(v, kBottom);
    EXPECT_TRUE(std::find(proposals.begin(), proposals.end(), v) !=
                proposals.end())
        << "committed value " << v << " was never proposed";
  }
}

template <class Cons, class MakeSched>
void consensus_safety_sweep(int n, MakeSched make_sched, int sweeps) {
  for (int iter = 0; iter < sweeps; ++iter) {
    Simulator s;
    Cons cons = [&] {
      if constexpr (std::is_constructible_v<Cons, int>) {
        return Cons(n);
      } else {
        return Cons();
      }
    }();
    std::vector<std::optional<ConsensusResult>> results(n);
    std::vector<std::int64_t> proposals(n);
    for (int p = 0; p < n; ++p) {
      proposals[p] = 100 + p;
      s.add_process([&, p](SimContext& ctx) {
        results[p] = cons.run(ctx, kBottom, proposals[p]);
      });
    }
    auto sched = make_sched(iter);
    s.run(*sched);
    check_agreement_and_validity<Cons>(results, proposals);
  }
}

// gtest needs copyable fixtures; wrap non-movable consensus objects.
template <class Cons>
auto make_random_sched_factory() {
  return [](int iter) {
    return std::make_unique<sim::RandomSchedule>(
        static_cast<std::uint64_t>(iter) * 7919 + 1);
  };
}

// ---------------------------------------------------------------------------
// SplitConsensus

TEST(SplitConsensus, SoloCommitsOwnValue) {
  Simulator s;
  SplitConsensus<SimPlatform> cons;
  std::optional<ConsensusResult> result;
  s.add_process(
      [&](SimContext& ctx) { result = cons.run(ctx, kBottom, 42); });
  sim::SequentialSchedule sched;
  s.run(sched);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
  EXPECT_EQ(result->value, 42);
}

TEST(SplitConsensus, SequentialProcessesAgreeOnFirstValue) {
  // No interval contention: everyone must commit, and later processes
  // adopt the first decided value.
  Simulator s;
  SplitConsensus<SimPlatform> cons;
  constexpr int kN = 4;
  std::vector<std::optional<ConsensusResult>> results(kN);
  for (int p = 0; p < kN; ++p) {
    s.add_process([&, p](SimContext& ctx) {
      results[p] = cons.run(ctx, kBottom, 100 + p);
    });
  }
  sim::SequentialSchedule sched;
  s.run(sched);
  for (int p = 0; p < kN; ++p) {
    ASSERT_TRUE(results[p].has_value());
    EXPECT_TRUE(results[p]->committed())
        << "contention-free progress violated for p" << p;
    EXPECT_EQ(results[p]->value, 100);
  }
}

TEST(SplitConsensus, SoloStepComplexityIsConstant) {
  // The fast path must not depend on n: measure solo steps at two
  // different process counts.
  auto solo_steps = [](int bystanders) {
    Simulator s;
    SplitConsensus<SimPlatform> cons;
    s.add_process([&](SimContext& ctx) { (void)cons.run(ctx, kBottom, 7); });
    for (int p = 0; p < bystanders; ++p) {
      s.add_process([](SimContext&) {});
    }
    sim::SequentialSchedule sched;
    s.run(sched);
    return s.counters(0).total();
  };
  const auto steps_small = solo_steps(1);
  const auto steps_large = solo_steps(16);
  EXPECT_EQ(steps_small, steps_large);
  EXPECT_LE(steps_large, 16u);  // constant, and a small constant
}

TEST(SplitConsensus, SafetyUnderRandomSchedules) {
  consensus_safety_sweep<SplitConsensus<SimPlatform>>(
      4, make_random_sched_factory<SplitConsensus<SimPlatform>>(), 200);
}

TEST(SplitConsensus, SafetyUnderRoundRobin) {
  consensus_safety_sweep<SplitConsensus<SimPlatform>>(3, [](int iter) {
    return std::make_unique<sim::RoundRobinSchedule>(
        static_cast<std::uint64_t>(iter % 3 + 1));
  }, 3);
}

TEST(SplitConsensus, ExhaustiveTwoProcessSafety) {
  auto results =
      std::make_shared<std::vector<std::optional<ConsensusResult>>>();
  auto stats = sim::explore_all_schedules(
      [&]() {
        auto s = std::make_unique<Simulator>();
        auto cons = std::make_shared<SplitConsensus<SimPlatform>>();
        results->assign(2, std::nullopt);
        for (int p = 0; p < 2; ++p) {
          s->add_process([cons, results, p](SimContext& ctx) {
            (*results)[p] = cons->run(ctx, kBottom, 100 + p);
          });
        }
        return s;
      },
      [&](Simulator&) {
        check_agreement_and_validity<SplitConsensus<SimPlatform>>(
            *results, {100, 101});
      },
      // Bounded DFS prefix of the two-process interleaving tree; the
      // randomized sweeps cover the remainder.
      /*max_runs=*/6'000);
  EXPECT_GT(stats.runs, 1'000u);
}

TEST(SplitConsensus, InheritedValueWins) {
  // A process arriving with an inherited (init) value must impose it
  // when running solo: the init round proposes `old` first.
  Simulator s;
  SplitConsensus<SimPlatform> cons;
  std::optional<ConsensusResult> result;
  s.add_process([&](SimContext& ctx) { result = cons.run(ctx, 77, 42); });
  sim::SequentialSchedule sched;
  s.run(sched);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
  EXPECT_EQ(result->value, 77);
}

// ---------------------------------------------------------------------------
// AbortableBakery

TEST(AbortableBakery, SoloCommitsOwnValue) {
  Simulator s;
  AbortableBakery<SimPlatform> cons(1);
  std::optional<ConsensusResult> result;
  s.add_process(
      [&](SimContext& ctx) { result = cons.run(ctx, kBottom, 42); });
  sim::SequentialSchedule sched;
  s.run(sched);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed());
  EXPECT_EQ(result->value, 42);
}

TEST(AbortableBakery, SequentialProcessesAgree) {
  Simulator s;
  constexpr int kN = 4;
  AbortableBakery<SimPlatform> cons(kN);
  std::vector<std::optional<ConsensusResult>> results(kN);
  for (int p = 0; p < kN; ++p) {
    s.add_process([&, p](SimContext& ctx) {
      results[p] = cons.run(ctx, kBottom, 100 + p);
    });
  }
  sim::SequentialSchedule sched;
  s.run(sched);
  for (int p = 0; p < kN; ++p) {
    ASSERT_TRUE(results[p].has_value());
    EXPECT_TRUE(results[p]->committed());
    EXPECT_EQ(results[p]->value, 100);
  }
}

TEST(AbortableBakery, SoloStepComplexityIsLinearInN) {
  auto solo_steps = [](int n) {
    Simulator s;
    AbortableBakery<SimPlatform> cons(n);
    s.add_process([&](SimContext& ctx) { (void)cons.run(ctx, kBottom, 7); });
    for (int p = 1; p < n; ++p) s.add_process([](SimContext&) {});
    sim::SequentialSchedule sched;
    s.run(sched);
    return s.counters(0).total();
  };
  const auto steps4 = solo_steps(4);
  const auto steps16 = solo_steps(16);
  // Linear growth: collects dominate. Expect roughly 4x more steps at
  // 4x the processes, and strictly more in any case.
  EXPECT_GT(steps16, steps4);
  EXPECT_GE(steps16, 3 * steps4 / 2);
  EXPECT_LE(steps16, 16 * 8u + 32);  // sanity upper bound: O(n) collects
}

TEST(AbortableBakery, SafetyUnderRandomSchedules) {
  consensus_safety_sweep<AbortableBakery<SimPlatform>>(
      4, make_random_sched_factory<AbortableBakery<SimPlatform>>(), 200);
}

TEST(AbortableBakery, ExhaustiveTwoProcessSafety) {
  auto results =
      std::make_shared<std::vector<std::optional<ConsensusResult>>>();
  auto stats = sim::explore_all_schedules(
      [&]() {
        auto s = std::make_unique<Simulator>();
        auto cons = std::make_shared<AbortableBakery<SimPlatform>>(2);
        results->assign(2, std::nullopt);
        for (int p = 0; p < 2; ++p) {
          s->add_process([cons, results, p](SimContext& ctx) {
            (*results)[p] = cons->run(ctx, kBottom, 100 + p);
          });
        }
        return s;
      },
      [&](Simulator&) {
        check_agreement_and_validity<AbortableBakery<SimPlatform>>(
            *results, {100, 101});
      },
      /*max_runs=*/4'000);
  // The bakery's tree is larger; cap the exploration but require real
  // coverage.
  EXPECT_GT(stats.runs, 1'000u);
}

TEST(AbortableBakery, AbortsOnlyUnderStepContention) {
  // Under a stickiness-1.0 (sequential) schedule nobody aborts; under
  // heavy interleaving aborts may appear but never disagreement.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Simulator s;
    constexpr int kN = 3;
    AbortableBakery<SimPlatform> cons(kN);
    std::vector<std::optional<ConsensusResult>> results(kN);
    for (int p = 0; p < kN; ++p) {
      s.add_process([&, p](SimContext& ctx) {
        ctx.begin_op();
        results[p] = cons.run(ctx, kBottom, 100 + p);
        ctx.end_op(results[p]->committed() ? 1 : 0);
      });
    }
    sim::RandomSchedule sched(seed);
    s.run(sched);
    for (const auto& op : s.ops()) {
      if (!s.op_has_step_contention(op)) {
        // Progress: no step contention => committed.
        EXPECT_EQ(op.output, 1)
            << "aborted without step contention (seed " << seed << ")";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// CasConsensus

TEST(CasConsensus, AlwaysCommitsUnderAnySchedule) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Simulator s;
    CasConsensus<SimPlatform> cons;
    constexpr int kN = 5;
    std::vector<std::optional<ConsensusResult>> results(kN);
    std::vector<std::int64_t> proposals(kN);
    for (int p = 0; p < kN; ++p) {
      proposals[p] = 200 + p;
      s.add_process([&, p](SimContext& ctx) {
        results[p] = cons.run(ctx, kBottom, proposals[p]);
      });
    }
    sim::RandomSchedule sched(seed);
    s.run(sched);
    std::set<std::int64_t> committed;
    for (const auto& r : results) {
      ASSERT_TRUE(r.has_value());
      EXPECT_TRUE(r->committed());  // wait-free: no aborts, ever
      committed.insert(r->value);
    }
    EXPECT_EQ(committed.size(), 1u);
  }
}

TEST(CasConsensus, UsesExactlyOneRmwWhenUncontended) {
  Simulator s;
  CasConsensus<SimPlatform> cons;
  s.add_process([&](SimContext& ctx) { (void)cons.run(ctx, kBottom, 5); });
  sim::SequentialSchedule sched;
  s.run(sched);
  EXPECT_EQ(s.counters(0).rmws, 1u);
}

TEST(CasConsensus, InheritedValueProposedFirst) {
  Simulator s;
  CasConsensus<SimPlatform> cons;
  std::optional<ConsensusResult> result;
  s.add_process([&](SimContext& ctx) { result = cons.run(ctx, 88, 5); });
  sim::SequentialSchedule sched;
  s.run(sched);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->value, 88);
}

// ---------------------------------------------------------------------------
// Crash tolerance: all three implementations must stay safe when
// processes crash mid-operation (the model allows n-1 crash faults).

template <class Cons>
void crash_safety_sweep(int n) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Simulator s;
    Cons cons = [&] {
      if constexpr (std::is_constructible_v<Cons, int>) {
        return Cons(n);
      } else {
        return Cons();
      }
    }();
    std::vector<std::optional<ConsensusResult>> results(n);
    std::vector<std::int64_t> proposals(n);
    for (int p = 0; p < n; ++p) {
      proposals[p] = 300 + p;
      s.add_process([&, p](SimContext& ctx) {
        results[p] = cons.run(ctx, kBottom, proposals[p]);
      });
    }
    sim::RandomSchedule inner(seed);
    sim::RandomCrashSchedule sched(inner, seed ^ 0xabcdef, 0.05, 1);
    s.run(sched);
    check_agreement_and_validity<Cons>(results, proposals);
  }
}

TEST(SplitConsensus, SafeUnderCrashes) {
  crash_safety_sweep<SplitConsensus<SimPlatform>>(4);
}
TEST(AbortableBakery, SafeUnderCrashes) {
  crash_safety_sweep<AbortableBakery<SimPlatform>>(4);
}
TEST(CasConsensus, SafeUnderCrashes) {
  crash_safety_sweep<CasConsensus<SimPlatform>>(4);
}

}  // namespace
}  // namespace scm
