// Pins the Samples::percentile semantics (support/stats.hpp): linearly
// interpolated quantiles (NumPy's default "linear" method), NOT
// nearest-rank — the header used to claim nearest-rank while the code
// interpolated; these tests fix the contract on known vectors,
// including the 1- and 2-sample inputs that feed Summary for
// low-repetition benchmark runs.
#include <gtest/gtest.h>

#include "support/stats.hpp"

namespace scm {
namespace {

TEST(Samples, EmptyAnswersZeroEverywhere) {
  Samples s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(99.0), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(Samples, SingleSampleAnswersEveryQuantile) {
  Samples s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(99.0), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 7.0);

  const Summary sum = s.summary();
  EXPECT_DOUBLE_EQ(sum.min, 7.0);
  EXPECT_DOUBLE_EQ(sum.median, 7.0);
  EXPECT_DOUBLE_EQ(sum.p99, 7.0);
  EXPECT_DOUBLE_EQ(sum.mean, 7.0);
}

TEST(Samples, TwoSamplesInterpolateLinearly) {
  Samples s;
  s.add(20.0);
  s.add(10.0);  // unsorted on purpose
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 15.0);  // midpoint, not a jump
  EXPECT_DOUBLE_EQ(s.percentile(99.0), 19.9);  // nearest-rank would say 20
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 20.0);

  const Summary sum = s.summary();
  EXPECT_DOUBLE_EQ(sum.median, 15.0);
  EXPECT_DOUBLE_EQ(sum.p99, 19.9);
  EXPECT_DOUBLE_EQ(sum.mean, 15.0);
}

TEST(Samples, KnownVectorQuantiles) {
  // {10, 20, 30, 40, 50}: rank(q) = q/100 * 4.
  Samples s;
  for (double x : {30.0, 10.0, 50.0, 20.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 20.0);  // exact order statistic
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(62.5), 35.0);  // between ranks 2 and 3
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 50.0);
  EXPECT_DOUBLE_EQ(s.median(), 30.0);
}

TEST(Samples, P99InterpolatesBelowMaxOnHundredSamples) {
  // 1..100: rank(99) = 0.99 * 99 = 98.01, between the 99th and 100th
  // order statistics — 99 + 0.01 * (100 - 99).
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.percentile(99.0), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
}

TEST(Samples, AddAfterQueryResortsBeforeTheNextQuery) {
  Samples s;
  s.add(1.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(2.0);  // arrives unsorted after a sorted query
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 3.0);
}

}  // namespace
}  // namespace scm
