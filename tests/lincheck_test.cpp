// Tests for the Wing-Gong linearizability checker on hand-built
// concurrent histories with known verdicts.
#include <gtest/gtest.h>

#include "history/specs.hpp"
#include "lincheck/lincheck.hpp"

namespace scm {
namespace {

ConcurrentOp op(ProcessId pid, std::uint64_t id, std::int64_t opcode,
                std::int64_t arg, Response resp, std::uint64_t invoke,
                std::uint64_t ret, bool completed = true) {
  ConcurrentOp o;
  o.pid = pid;
  o.request = Request{id, pid, opcode, arg};
  o.response = resp;
  o.invoke = invoke;
  o.ret = ret;
  o.completed = completed;
  return o;
}

// ---------------------------------------------------------------------------
// TAS histories

TEST(Lincheck, SequentialTasWinnerThenLoser) {
  std::vector<ConcurrentOp> ops{
      op(0, 1, TasSpec::kTestAndSet, 0, TasSpec::kWinner, 1, 2),
      op(1, 2, TasSpec::kTestAndSet, 0, TasSpec::kLoser, 3, 4),
  };
  EXPECT_TRUE(linearizable<TasSpec>(ops));
}

TEST(Lincheck, SequentialTasLoserBeforeWinnerIsNotLinearizable) {
  // Loser returns before winner is invoked: impossible.
  std::vector<ConcurrentOp> ops{
      op(0, 1, TasSpec::kTestAndSet, 0, TasSpec::kLoser, 1, 2),
      op(1, 2, TasSpec::kTestAndSet, 0, TasSpec::kWinner, 3, 4),
  };
  EXPECT_FALSE(linearizable<TasSpec>(ops));
}

TEST(Lincheck, OverlappingTasEitherOrderAllowed) {
  std::vector<ConcurrentOp> ops{
      op(0, 1, TasSpec::kTestAndSet, 0, TasSpec::kLoser, 1, 10),
      op(1, 2, TasSpec::kTestAndSet, 0, TasSpec::kWinner, 2, 9),
  };
  EXPECT_TRUE(linearizable<TasSpec>(ops));
}

TEST(Lincheck, TwoWinnersNeverLinearizable) {
  std::vector<ConcurrentOp> ops{
      op(0, 1, TasSpec::kTestAndSet, 0, TasSpec::kWinner, 1, 10),
      op(1, 2, TasSpec::kTestAndSet, 0, TasSpec::kWinner, 2, 9),
  };
  EXPECT_FALSE(linearizable<TasSpec>(ops));
}

TEST(Lincheck, PendingOpMayBeTheWinner) {
  // p0 crashed mid-operation; p1 losing is explained by p0's pending
  // op linearizing first.
  std::vector<ConcurrentOp> ops{
      op(0, 1, TasSpec::kTestAndSet, 0, kNoResponse, 1, 0, false),
      op(1, 2, TasSpec::kTestAndSet, 0, TasSpec::kLoser, 5, 6),
  };
  EXPECT_TRUE(linearizable<TasSpec>(ops));
}

TEST(Lincheck, LoserWithNoPossibleWinnerFails) {
  std::vector<ConcurrentOp> ops{
      op(1, 2, TasSpec::kTestAndSet, 0, TasSpec::kLoser, 5, 6),
  };
  EXPECT_FALSE(linearizable<TasSpec>(ops));
}

// ---------------------------------------------------------------------------
// Counter histories

TEST(Lincheck, CounterSequential) {
  std::vector<ConcurrentOp> ops{
      op(0, 1, CounterSpec::kFetchInc, 0, 0, 1, 2),
      op(1, 2, CounterSpec::kFetchInc, 0, 1, 3, 4),
      op(0, 3, CounterSpec::kRead, 0, 2, 5, 6),
  };
  EXPECT_TRUE(linearizable<CounterSpec>(ops));
}

TEST(Lincheck, CounterSkippedValueNotLinearizable) {
  std::vector<ConcurrentOp> ops{
      op(0, 1, CounterSpec::kFetchInc, 0, 0, 1, 2),
      op(1, 2, CounterSpec::kFetchInc, 0, 2, 3, 4),  // skipped 1
  };
  EXPECT_FALSE(linearizable<CounterSpec>(ops));
}

TEST(Lincheck, CounterConcurrentIncsCommute) {
  std::vector<ConcurrentOp> ops{
      op(0, 1, CounterSpec::kFetchInc, 0, 1, 1, 10),
      op(1, 2, CounterSpec::kFetchInc, 0, 0, 2, 9),
  };
  EXPECT_TRUE(linearizable<CounterSpec>(ops));
}

TEST(Lincheck, RealTimeOrderRespectedForCounter) {
  // p0's inc returned before p1's started, so p0 must see the smaller
  // value.
  std::vector<ConcurrentOp> ops{
      op(0, 1, CounterSpec::kFetchInc, 0, 1, 1, 2),
      op(1, 2, CounterSpec::kFetchInc, 0, 0, 3, 4),
  };
  EXPECT_FALSE(linearizable<CounterSpec>(ops));
}

// ---------------------------------------------------------------------------
// Queue histories

TEST(Lincheck, QueueFifoRespected) {
  std::vector<ConcurrentOp> ops{
      op(0, 1, QueueSpec::kEnqueue, 10, QueueSpec::kAck, 1, 2),
      op(0, 2, QueueSpec::kEnqueue, 20, QueueSpec::kAck, 3, 4),
      op(1, 3, QueueSpec::kDequeue, 0, 10, 5, 6),
      op(1, 4, QueueSpec::kDequeue, 0, 20, 7, 8),
  };
  EXPECT_TRUE(linearizable<QueueSpec>(ops));
}

TEST(Lincheck, QueueLifoOrderRejected) {
  std::vector<ConcurrentOp> ops{
      op(0, 1, QueueSpec::kEnqueue, 10, QueueSpec::kAck, 1, 2),
      op(0, 2, QueueSpec::kEnqueue, 20, QueueSpec::kAck, 3, 4),
      op(1, 3, QueueSpec::kDequeue, 0, 20, 5, 6),  // out of order
      op(1, 4, QueueSpec::kDequeue, 0, 10, 7, 8),
  };
  EXPECT_FALSE(linearizable<QueueSpec>(ops));
}

TEST(Lincheck, QueueConcurrentEnqueuesEitherOrder) {
  std::vector<ConcurrentOp> ops{
      op(0, 1, QueueSpec::kEnqueue, 10, QueueSpec::kAck, 1, 10),
      op(1, 2, QueueSpec::kEnqueue, 20, QueueSpec::kAck, 2, 9),
      op(0, 3, QueueSpec::kDequeue, 0, 20, 11, 12),
      op(1, 4, QueueSpec::kDequeue, 0, 10, 13, 14),
  };
  EXPECT_TRUE(linearizable<QueueSpec>(ops));
}

// ---------------------------------------------------------------------------
// Register histories

TEST(Lincheck, RegisterReadsLastWrite) {
  std::vector<ConcurrentOp> ops{
      op(0, 1, RegisterSpec::kWrite, 5, RegisterSpec::kAck, 1, 2),
      op(1, 2, RegisterSpec::kRead, 0, 5, 3, 4),
  };
  EXPECT_TRUE(linearizable<RegisterSpec>(ops));
}

TEST(Lincheck, RegisterStaleReadRejected) {
  std::vector<ConcurrentOp> ops{
      op(0, 1, RegisterSpec::kWrite, 5, RegisterSpec::kAck, 1, 2),
      op(0, 2, RegisterSpec::kWrite, 9, RegisterSpec::kAck, 3, 4),
      op(1, 3, RegisterSpec::kRead, 0, 5, 5, 6),  // must read 9
  };
  EXPECT_FALSE(linearizable<RegisterSpec>(ops));
}

TEST(Lincheck, EmptyHistoryTriviallyLinearizable) {
  EXPECT_TRUE(linearizable<TasSpec>({}));
}

}  // namespace
}  // namespace scm
