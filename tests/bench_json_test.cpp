// Validates the scm-bench/v1 JSON emitter and its counterpart reader
// (bench/compare.hpp): well-formedness (via a small recursive-descent
// checker), escaping, the stable report schema every BENCH_*.json
// must satisfy, a full parse round trip of the writer's own output,
// and the --compare regression gate's exit-code contract (0 ok,
// 1 regressed, 2 unreadable).
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/compare.hpp"
#include "bench/json.hpp"
#include "bench/runner.hpp"

namespace scm::bench {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON well-formedness checker (no DOM, just grammar).

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

RunReport sample_report() {
  RunReport report;
  report.params = BenchParams{};
  ScenarioReport s;
  s.scenario = "tas.steps";
  s.experiment = "E1";
  s.backend = "sim";
  s.reps = 3;
  s.claim = "solo steps constant \"quoted\" and\nnewlined";
  s.claim_holds = true;
  s.ns_per_op = Summary{1.0, 2.0, 3.0, 2.5};
  s.steps_per_op = Summary{10.0, 11.0, 12.0, 11.0};
  s.rmws_per_op = Summary{0.0, 0.0, 1.0, 0.25};
  PhaseReport p;
  p.phase = "contended n=4";
  p.ops = 16;
  p.extra.emplace_back("solo_steps", 9.0);
  // Parking telemetry extras as the native combining scenarios emit
  // them — the schema test below pins their spelling.
  p.extra.emplace_back("parks", 3.0);
  p.extra.emplace_back("wakes", 2.0);
  p.extra.emplace_back("spurious_wakes", 0.0);
  p.extra.emplace_back("futex_syscalls", 5.0);
  s.phases.push_back(p);
  report.scenarios.push_back(std::move(s));
  return report;
}

TEST(JsonWriter, EscapesSpecialCharacters) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("k", std::string("a\"b\\c\nd\te") + '\x01');
  w.end_object();
  EXPECT_TRUE(w.done());
  EXPECT_EQ(os.str(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
  EXPECT_TRUE(JsonChecker(os.str()).valid());
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(1.5);
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null,1.5]");
  EXPECT_TRUE(JsonChecker(os.str()).valid());
}

TEST(JsonWriter, NestedStructuresBalance) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("a").begin_array();
  w.begin_object();
  w.kv("x", 1).kv("y", false);
  w.end_object();
  w.value(std::uint64_t{7});
  w.end_array();
  w.end_object();
  EXPECT_TRUE(w.done());
  EXPECT_EQ(os.str(), "{\"a\":[{\"x\":1,\"y\":false},7]}");
}

TEST(ReportSchema, EmitsWellFormedJson) {
  std::ostringstream os;
  write_json(sample_report(), os);
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

TEST(ReportSchema, ContainsRequiredKeys) {
  std::ostringstream os;
  write_json(sample_report(), os);
  const std::string json = os.str();

  // Top level. The environment keys (hardware_concurrency,
  // affinity_cpus, git_sha) are additive to scm-bench/v1 — consumers
  // keyed on the original fields are unaffected, and downloaded sweep
  // artifacts become interpretable (an 8-thread sweep on a 2-CPU
  // affinity mask is a different experiment than on 16).
  EXPECT_NE(json.find("\"schema\":\"scm-bench/v1\""), std::string::npos);
  for (const char* key :
       {"\"params\"", "\"threads\"", "\"ops\"", "\"reps\"", "\"warmup\"",
        "\"schedule\"", "\"seed\"", "\"scenarios\"",
        "\"hardware_concurrency\"", "\"affinity_cpus\"", "\"git_sha\"",
        // Cross-process (compose.shm) parameters — additive like the
        // environment keys above.
        "\"page_size\"", "\"shm_procs\"", "\"shm_segment_bytes\"",
        "\"shm_slot_count\"",
        // Placement + parking provenance (PR 9) — additive again:
        // which --topology policy ran, how many L3/NUMA domains the
        // host reported, and the compiled-in rung-3 wait mode.
        "\"topology\"", "\"topology_domains\"", "\"wait_mode\"",
        // Whether Adaptive-wrapped scenarios ran with live actuators
        // (--adaptive) — additive like everything above.
        "\"adaptive\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Per scenario.
  for (const char* key :
       {"\"scenario\":\"tas.steps\"", "\"experiment\":\"E1\"",
        "\"backend\":\"sim\"", "\"claim\"", "\"holds\":true",
        "\"ns_per_op\"", "\"steps_per_op\"", "\"rmws_per_op\"",
        "\"phases\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Per phase and per summary. The parking telemetry extras flow
  // through the generic extra map — this pins their key spelling so
  // downstream dashboards can rely on it.
  for (const char* key :
       {"\"phase\":\"contended n=4\"", "\"min\"", "\"median\"", "\"p99\"",
        "\"mean\"", "\"extra\"", "\"solo_steps\":9", "\"parks\":3",
        "\"wakes\":2", "\"spurious_wakes\":0", "\"futex_syscalls\":5"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(ReportSchema, AggregatesAcrossRepetitions) {
  // A deterministic fake scenario: rep k reports k+1 ns/op so the
  // aggregation is exactly checkable.
  int rep = 0;
  ScenarioDef def;
  def.name = "fake";
  def.experiment = "-";
  def.backend = Backend::kNative;
  def.run = [&rep](const BenchParams&) {
    ScenarioResult r;
    PhaseMetrics pm;
    pm.phase = "only";
    pm.ops = 1000;
    pm.seconds = 1e-6 * static_cast<double>(++rep);  // 1, 2, 3 ns/op
    pm.steps = 5000;
    pm.rmws = 1000;
    r.phases.push_back(pm);
    r.claim = "fake";
    r.claim_holds = true;
    return r;
  };

  BenchParams params;
  params.reps = 3;
  params.warmup = 0;
  const ScenarioReport report = run_scenario(def, params);
  ASSERT_EQ(report.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(report.ns_per_op.min, 1.0);
  EXPECT_DOUBLE_EQ(report.ns_per_op.median, 2.0);
  EXPECT_DOUBLE_EQ(report.ns_per_op.mean, 2.0);
  EXPECT_DOUBLE_EQ(report.steps_per_op.median, 5.0);
  EXPECT_DOUBLE_EQ(report.rmws_per_op.median, 1.0);
  EXPECT_TRUE(report.claim_holds);
}

// ---------------------------------------------------------------------------
// The reader (bench/compare.hpp): parse_json + run_compare

// A native-backend two-scenario report with controllable medians —
// native, because run_compare deliberately skips sim scenarios
// (steps, not nanoseconds, are their time).
RunReport native_report(double cached_median, double async_median) {
  RunReport r;
  r.params.threads = 8;

  ScenarioReport cached;
  cached.scenario = "compose.cached";
  cached.experiment = "E15";
  cached.backend = "native";
  cached.reps = 3;
  cached.claim = "reads \"scale\";\nwrites don't";  // escaping round trip
  cached.claim_holds = true;
  cached.ns_per_op = Summary{cached_median * 0.9, cached_median,
                             cached_median * 1.4, cached_median * 1.05};
  PhaseReport phase;
  phase.phase = "f=0.95 t=8";
  phase.ops = 4096;
  phase.ns_per_op = cached.ns_per_op;
  phase.extra.emplace_back("hit_rate", 0.875);
  cached.phases.push_back(phase);
  r.scenarios.push_back(std::move(cached));

  ScenarioReport async;
  async.scenario = "compose.async";
  async.experiment = "E14";
  async.backend = "native";
  async.reps = 3;
  async.claim_holds = true;
  async.ns_per_op = Summary{async_median * 0.9, async_median,
                            async_median * 1.2, async_median};
  r.scenarios.push_back(std::move(async));
  return r;
}

std::string to_json(const RunReport& r) {
  std::ostringstream os;
  write_json(r, os);
  return os.str();
}

std::string write_temp(const std::string& name, const std::string& text) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(BenchJsonReader, ParserRoundTripsTheWriterOutput) {
  const std::string text = to_json(native_report(120.5, 340.25));
  std::string error;
  const auto doc = parse_json(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;

  const JsonValue* schema = doc->find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, "scm-bench/v1");
  EXPECT_EQ(doc->number_at({"params", "threads"}), 8.0);

  const JsonValue* scenarios = doc->find("scenarios");
  ASSERT_NE(scenarios, nullptr);
  ASSERT_TRUE(scenarios->is_array());
  ASSERT_EQ(scenarios->items.size(), 2u);

  const JsonValue& cached = scenarios->items[0];
  EXPECT_EQ(cached.find("scenario")->string, "compose.cached");
  EXPECT_EQ(cached.number_at({"ns_per_op", "median"}), 120.5);
  // Escaped quotes and the newline survived the round trip (claim is
  // the nested {"text", "holds"} object).
  const JsonValue* claim = cached.find("claim");
  ASSERT_NE(claim, nullptr);
  ASSERT_NE(claim->find("text"), nullptr);
  EXPECT_EQ(claim->find("text")->string, "reads \"scale\";\nwrites don't");
  EXPECT_EQ(claim->find("holds")->kind, JsonValue::Kind::kBool);
  const JsonValue* phases = cached.find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->items.size(), 1u);
  EXPECT_EQ(phases->items[0].number_at({"extra", "hit_rate"}), 0.875);

  // Missing paths answer nullopt, not a crash; non-numbers too.
  EXPECT_FALSE(doc->number_at({"params", "no_such_key"}).has_value());
  EXPECT_FALSE(cached.number_at({"claim", "text"}).has_value());
}

TEST(BenchJsonReader, ParserRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1, 2", "{\"a\": }", "{\"a\": 1} trailing", "nul",
        "{\"s\": \"unterminated}", "{\"a\" 1}"}) {
    std::string error;
    EXPECT_FALSE(parse_json(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
  // Duplicate keys keep the first value (the writer never emits them;
  // the reader just has to be deterministic about it).
  const auto dup = parse_json(R"({"a": 1, "a": 2})");
  ASSERT_TRUE(dup.has_value());
  EXPECT_EQ(dup->number_at({"a"}), 1.0);
}

TEST(BenchCompare, FlatReportsPassAndRegressionsGate) {
  const std::string old_path =
      write_temp("old.json", to_json(native_report(100.0, 200.0)));

  // Within threshold (+10% < 25%): exit 0.
  {
    const std::string new_path =
        write_temp("new_ok.json", to_json(native_report(110.0, 210.0)));
    std::ostringstream os;
    EXPECT_EQ(run_compare(old_path, new_path, 0.25, os), 0);
    EXPECT_NE(os.str().find("2 compared, 0 regressed"), std::string::npos)
        << os.str();
  }

  // One scenario beyond threshold (+50%): exit 1, named REGRESSED.
  {
    const std::string new_path =
        write_temp("new_bad.json", to_json(native_report(150.0, 210.0)));
    std::ostringstream os;
    EXPECT_EQ(run_compare(old_path, new_path, 0.25, os), 1);
    EXPECT_NE(os.str().find("REGRESSED"), std::string::npos) << os.str();
    EXPECT_NE(os.str().find("1 regressed"), std::string::npos) << os.str();
  }

  // A tighter threshold turns the passing pair into a failing one.
  {
    const std::string new_path =
        write_temp("new_tight.json", to_json(native_report(110.0, 210.0)));
    std::ostringstream os;
    EXPECT_EQ(run_compare(old_path, new_path, 0.05, os), 1);
  }
}

TEST(BenchCompare, UnreadableAndUnmatchedInputs) {
  const std::string good =
      write_temp("good.json", to_json(native_report(100.0, 200.0)));

  // Missing file and non-report JSON: exit 2.
  {
    std::ostringstream os;
    EXPECT_EQ(run_compare(testing::TempDir() + "nope.json", good, 0.25, os),
              2);
  }
  {
    const std::string not_report =
        write_temp("not_report.json", R"({"schema": "something-else"})");
    std::ostringstream os;
    EXPECT_EQ(run_compare(not_report, good, 0.25, os), 2);
    EXPECT_NE(os.str().find("not an scm-bench/v1 report"), std::string::npos);
  }

  // Scenarios present on only one side are reported but never gate.
  {
    RunReport only_cached = native_report(100.0, 200.0);
    only_cached.scenarios.pop_back();  // drop compose.async
    const std::string old_path =
        write_temp("only_cached.json", to_json(only_cached));
    const std::string new_path =
        write_temp("both.json", to_json(native_report(100.0, 9999.0)));
    std::ostringstream os;
    // compose.async is "new" — its enormous median cannot regress.
    EXPECT_EQ(run_compare(old_path, new_path, 0.25, os), 0);
    EXPECT_NE(os.str().find("new"), std::string::npos);

    // In the other direction it is "missing" — still not a gate.
    std::ostringstream os2;
    EXPECT_EQ(run_compare(new_path, old_path, 0.25, os2), 0);
    EXPECT_NE(os2.str().find("missing"), std::string::npos);
  }
}

TEST(BenchCompare, OneSidedScenariosAreNamedInExplicitWarnings) {
  // Beyond the table rows, every one-sided scenario is called out in a
  // post-table warning line BY NAME — a renamed or accidentally
  // unregistered scenario must not vanish from the gate silently.
  RunReport only_cached = native_report(100.0, 200.0);
  only_cached.scenarios.pop_back();  // drop compose.async
  const std::string cached_only =
      write_temp("warn_cached_only.json", to_json(only_cached));
  const std::string both =
      write_temp("warn_both.json", to_json(native_report(100.0, 200.0)));

  // NEW side has the extra scenario.
  {
    std::ostringstream os;
    EXPECT_EQ(run_compare(cached_only, both, 0.25, os), 0);
    const std::string out = os.str();
    EXPECT_NE(out.find("warning: 1 scenario(s) only in NEW report"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("compose.async"), std::string::npos) << out;
  }
  // OLD side has the extra scenario.
  {
    std::ostringstream os;
    EXPECT_EQ(run_compare(both, cached_only, 0.25, os), 0);
    const std::string out = os.str();
    EXPECT_NE(out.find("warning: 1 scenario(s) only in OLD report"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("compose.async"), std::string::npos) << out;
  }
  // Two-sided reports emit no warning at all.
  {
    std::ostringstream os;
    EXPECT_EQ(run_compare(both, both, 0.25, os), 0);
    EXPECT_EQ(os.str().find("warning:"), std::string::npos) << os.str();
  }
}

}  // namespace
}  // namespace scm::bench
