// Validates the scm-bench/v1 JSON emitter: well-formedness (via a
// small recursive-descent parser), escaping, and the stable report
// schema every BENCH_results.json must satisfy.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>

#include "bench/json.hpp"
#include "bench/runner.hpp"

namespace scm::bench {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON well-formedness checker (no DOM, just grammar).

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

RunReport sample_report() {
  RunReport report;
  report.params = BenchParams{};
  ScenarioReport s;
  s.scenario = "tas.steps";
  s.experiment = "E1";
  s.backend = "sim";
  s.reps = 3;
  s.claim = "solo steps constant \"quoted\" and\nnewlined";
  s.claim_holds = true;
  s.ns_per_op = Summary{1.0, 2.0, 3.0, 2.5};
  s.steps_per_op = Summary{10.0, 11.0, 12.0, 11.0};
  s.rmws_per_op = Summary{0.0, 0.0, 1.0, 0.25};
  PhaseReport p;
  p.phase = "contended n=4";
  p.ops = 16;
  p.extra.emplace_back("solo_steps", 9.0);
  s.phases.push_back(p);
  report.scenarios.push_back(std::move(s));
  return report;
}

TEST(JsonWriter, EscapesSpecialCharacters) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("k", std::string("a\"b\\c\nd\te") + '\x01');
  w.end_object();
  EXPECT_TRUE(w.done());
  EXPECT_EQ(os.str(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\\u0001\"}");
  EXPECT_TRUE(JsonChecker(os.str()).valid());
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(1.5);
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null,1.5]");
  EXPECT_TRUE(JsonChecker(os.str()).valid());
}

TEST(JsonWriter, NestedStructuresBalance) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("a").begin_array();
  w.begin_object();
  w.kv("x", 1).kv("y", false);
  w.end_object();
  w.value(std::uint64_t{7});
  w.end_array();
  w.end_object();
  EXPECT_TRUE(w.done());
  EXPECT_EQ(os.str(), "{\"a\":[{\"x\":1,\"y\":false},7]}");
}

TEST(ReportSchema, EmitsWellFormedJson) {
  std::ostringstream os;
  write_json(sample_report(), os);
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

TEST(ReportSchema, ContainsRequiredKeys) {
  std::ostringstream os;
  write_json(sample_report(), os);
  const std::string json = os.str();

  // Top level. The environment keys (hardware_concurrency,
  // affinity_cpus, git_sha) are additive to scm-bench/v1 — consumers
  // keyed on the original fields are unaffected, and downloaded sweep
  // artifacts become interpretable (an 8-thread sweep on a 2-CPU
  // affinity mask is a different experiment than on 16).
  EXPECT_NE(json.find("\"schema\":\"scm-bench/v1\""), std::string::npos);
  for (const char* key :
       {"\"params\"", "\"threads\"", "\"ops\"", "\"reps\"", "\"warmup\"",
        "\"schedule\"", "\"seed\"", "\"scenarios\"",
        "\"hardware_concurrency\"", "\"affinity_cpus\"", "\"git_sha\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Per scenario.
  for (const char* key :
       {"\"scenario\":\"tas.steps\"", "\"experiment\":\"E1\"",
        "\"backend\":\"sim\"", "\"claim\"", "\"holds\":true",
        "\"ns_per_op\"", "\"steps_per_op\"", "\"rmws_per_op\"",
        "\"phases\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Per phase and per summary.
  for (const char* key :
       {"\"phase\":\"contended n=4\"", "\"min\"", "\"median\"", "\"p99\"",
        "\"mean\"", "\"extra\"", "\"solo_steps\":9"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(ReportSchema, AggregatesAcrossRepetitions) {
  // A deterministic fake scenario: rep k reports k+1 ns/op so the
  // aggregation is exactly checkable.
  int rep = 0;
  ScenarioDef def;
  def.name = "fake";
  def.experiment = "-";
  def.backend = Backend::kNative;
  def.run = [&rep](const BenchParams&) {
    ScenarioResult r;
    PhaseMetrics pm;
    pm.phase = "only";
    pm.ops = 1000;
    pm.seconds = 1e-6 * static_cast<double>(++rep);  // 1, 2, 3 ns/op
    pm.steps = 5000;
    pm.rmws = 1000;
    r.phases.push_back(pm);
    r.claim = "fake";
    r.claim_holds = true;
    return r;
  };

  BenchParams params;
  params.reps = 3;
  params.warmup = 0;
  const ScenarioReport report = run_scenario(def, params);
  ASSERT_EQ(report.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(report.ns_per_op.min, 1.0);
  EXPECT_DOUBLE_EQ(report.ns_per_op.median, 2.0);
  EXPECT_DOUBLE_EQ(report.ns_per_op.mean, 2.0);
  EXPECT_DOUBLE_EQ(report.steps_per_op.median, 5.0);
  EXPECT_DOUBLE_EQ(report.rmws_per_op.median, 1.0);
  EXPECT_TRUE(report.claim_holds);
}

}  // namespace
}  // namespace scm::bench
