// Tests that pin the exhaustive explorer's enumeration itself — not a
// property checked over the runs, but the SHAPE of the search:
//
//  * the run count on a known choice tree equals the closed-form
//    interleaving count (if the explorer ever under-counts, every
//    "verified over all interleavings" claim in this repo silently
//    weakens — this test is the canary);
//  * truncation by max_runs reports exhausted = false and exactly
//    max_runs runs, so a gating test can always distinguish "proved
//    over the full tree" from "gave up early";
//  * the await() conditional-wait primitive underneath it: parked
//    processes stay out of the runnable set while their predicate is
//    false (no spurious branching), wakes are scheduling events but
//    not shared-memory steps, and an unsatisfiable predicate aborts as
//    a simulated deadlock instead of hanging the exploration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/explorer.hpp"
#include "sim/schedules.hpp"
#include "sim/sim_platform.hpp"
#include "sim/simulator.hpp"

namespace scm::sim {
namespace {

// ---------------------------------------------------------------------------
// Exact enumeration counts

// Two processes, three counted writes each. Every process costs the
// scheduler one startup grant (processes park before their first
// instruction) plus one grant per shared-memory step: 4 grants each.
// The explorer's leaves are exactly the interleavings of the two
// 4-grant sequences: C(8,4) = 70.
TEST(Explorer, PinsExactLeafCountOnKnownTree) {
  std::uint64_t observed = 0;
  auto stats = explore_all_schedules(
      [] {
        auto sim = std::make_unique<Simulator>();
        auto reg = std::make_shared<SimRegister<int>>(0);
        for (int p = 0; p < 2; ++p) {
          sim->add_process([reg](SimContext& ctx) {
            for (int i = 0; i < 3; ++i) reg->write(ctx, i);
          });
        }
        return sim;
      },
      [&](Simulator& sim) {
        ++observed;
        EXPECT_EQ(sim.steps_taken(), 6u);
      });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(stats.runs, 70u);
  EXPECT_EQ(observed, stats.runs);
}

// Same shape, one process heavier: sequences of 4 and 5 grants give
// C(9,4) = 126 leaves. Pinning a second, asymmetric tree guards
// against an explorer bug that happens to preserve symmetric counts.
TEST(Explorer, PinsLeafCountOnAsymmetricTree) {
  auto stats = explore_all_schedules(
      [] {
        auto sim = std::make_unique<Simulator>();
        auto reg = std::make_shared<SimRegister<int>>(0);
        sim->add_process([reg](SimContext& ctx) {
          for (int i = 0; i < 3; ++i) reg->write(ctx, i);
        });
        sim->add_process([reg](SimContext& ctx) {
          for (int i = 0; i < 4; ++i) reg->write(ctx, i);
        });
        return sim;
      },
      [](Simulator&) {});
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(stats.runs, 126u);
}

// Truncation must be loud: exactly max_runs runs, exhausted = false.
TEST(Explorer, TruncationReportsNotExhausted) {
  auto stats = explore_all_schedules(
      [] {
        auto sim = std::make_unique<Simulator>();
        auto reg = std::make_shared<SimRegister<int>>(0);
        for (int p = 0; p < 2; ++p) {
          sim->add_process([reg](SimContext& ctx) {
            for (int i = 0; i < 3; ++i) reg->write(ctx, i);
          });
        }
        return sim;
      },
      [](Simulator&) {}, /*max_runs=*/10);
  EXPECT_FALSE(stats.exhausted);
  EXPECT_EQ(stats.runs, 10u);
}

// ---------------------------------------------------------------------------
// The await() primitive

// A process parked on a false predicate takes no turns: the writer runs
// unimpeded, the waiter resumes only once the predicate holds, and the
// wake shows up in the step log as a kWake event that bumps no
// StepCounters field (it is a scheduling event, not a shared-memory
// step in the paper's cost model).
TEST(Await, ParksUntilPredicateHoldsAndWakeIsNotAStep) {
  Simulator sim;
  SimRegister<int> reg(0);
  std::vector<int> order;
  sim.add_process([&](SimContext& ctx) {
    ctx.await([&] { return reg.peek() == 1; });
    order.push_back(0);
    reg.write(ctx, 2);
  });
  sim.add_process([&](SimContext& ctx) {
    order.push_back(1);
    reg.write(ctx, 1);
  });
  SequentialSchedule sched;  // favors pid 0 — which must yield while parked
  sim.run(sched);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // writer went first despite the schedule's bias
  EXPECT_EQ(order[1], 0);
  EXPECT_EQ(reg.peek(), 2);
  // The waiter's counted work is its one write; the wake added nothing.
  EXPECT_EQ(sim.counters(0).writes, 1u);
  EXPECT_EQ(sim.counters(0).reads, 0u);
  EXPECT_EQ(sim.counters(0).rmws, 0u);
  const auto& steps = sim.steps();
  const bool has_wake =
      std::any_of(steps.begin(), steps.end(),
                  [](const StepRecord& s) { return s.kind == Access::kWake; });
  EXPECT_TRUE(has_wake);
}

// A parked process contributes no interleavings while its predicate is
// false. The only branching left is where the waiter's STARTUP grant
// (taken before it reaches await) lands among the writer's 4 grants:
// 5 positions, so exactly 5 leaves. The await itself — wake plus the
// waiter's final write — adds none: if it branched, the count would be
// C(9,4)-ish, not 5.
TEST(Await, WaitingProcessAddsNoBranching) {
  auto stats = explore_all_schedules(
      [] {
        auto sim = std::make_unique<Simulator>();
        auto reg = std::make_shared<SimRegister<int>>(0);
        sim->add_process([reg](SimContext& ctx) {
          ctx.await([reg] { return reg->peek() == 3; });
          reg->write(ctx, 99);
        });
        sim->add_process([reg](SimContext& ctx) {
          for (int i = 1; i <= 3; ++i) reg->write(ctx, i);
        });
        return sim;
      },
      [](Simulator& sim) { EXPECT_EQ(sim.steps_taken(), 5u); });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(stats.runs, 5u);
}

// Every live process parked on a predicate that can never become true
// is a lost wakeup — the simulator must abort loudly, not hang.
TEST(AwaitDeathTest, UnsatisfiablePredicateAbortsAsDeadlock) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Simulator sim;
        SimRegister<int> reg(0);
        sim.add_process([&](SimContext& ctx) {
          ctx.await([&] { return reg.peek() == 42; });  // never written
        });
        SequentialSchedule sched;
        sim.run(sched);
      },
      "simulated deadlock");
}

}  // namespace
}  // namespace scm::sim
