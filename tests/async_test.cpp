// Tests for the async submission layer (core/async.hpp and the
// submit/complete surface threaded through every composition layer):
//
//  * Ticket<R> state machine: ready / pending / consumed, move-only
//    ownership, destructor settles abandoned operations;
//  * submit().wait() — and the submit()+poll()/try_result() path — is
//    bit-identical to invoke() for a single-threaded caller on every
//    layer: Pipeline, FastPipeline, StaticAbstractChain, Sharded,
//    Combining, and their nestings (the acceptance pin for this
//    surface);
//  * on the simulator (a non-blocking context) submit() completes
//    inline and the tickets are born ready;
//  * the publication path proper: with the combiner lock held
//    elsewhere, submit() publishes and returns pending tickets, the
//    eventual combiner serves the backlog in one pass and runs the
//    publishers' completion callbacks, and drain() executes every
//    fire-and-forget submission;
//  * concurrent submit/poll/wait histories (overlapping windows, mixed
//    collection strategies) linearize against CounterSpec — every
//    operation takes effect inside its submit→collect interval;
//  * ticket ownership stress: dropped tickets still execute, detached
//    submissions all run their callbacks, and at quiescence no
//    publication record is occupied;
//  * destroying a Combining with an outstanding publication dies on
//    the destructor assertion (death test);
//  * the open-loop workload driver accounts one completion-latency
//    sample per offered op.
//
// Runs under the "tsan" ctest label: the CI sanitizer job executes
// this suite under ThreadSanitizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "consensus/cas_consensus.hpp"
#include "consensus/split_consensus.hpp"
#include "core/async.hpp"
#include "core/batch.hpp"
#include "core/combining.hpp"
#include "core/module.hpp"
#include "core/pipeline.hpp"
#include "core/sharding.hpp"
#include "history/specs.hpp"
#include "lincheck/lincheck.hpp"
#include "runtime/context.hpp"
#include "runtime/platform.hpp"
#include "sim/schedules.hpp"
#include "sim/sim_platform.hpp"
#include "sim/simulator.hpp"
#include "universal/composable_universal.hpp"
#include "universal/static_chain.hpp"
#include "workload/driver.hpp"

namespace scm {
namespace {

using sim::SimContext;
using sim::SimPlatform;
using sim::Simulator;

struct HopModule {
  static constexpr int kConsensusNumber = kConsensusNumberRegister;

  template <class Ctx>
  ModuleResult invoke(Ctx& /*ctx*/, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    return ModuleResult::abort_with(init.value_or(0) + 1);
  }
};

struct SinkModule {
  static constexpr int kConsensusNumber = kConsensusNumberRegister;

  template <class Ctx>
  ModuleResult invoke(Ctx& /*ctx*/, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    return ModuleResult::commit(init.value_or(0));
  }
};

// Fetch&inc semantics (CounterSpec): commits a unique monotone ticket.
struct TicketModule {
  static constexpr int kConsensusNumber = kConsensusNumberFetchAdd;

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& /*m*/,
                      std::optional<SwitchValue> /*init*/ = std::nullopt) {
    return ModuleResult::commit(static_cast<Response>(count_.fetch_add(ctx)));
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_.peek(); }

 private:
  NativeCounter count_;
};

// Parks the calling thread inside the wrapped object for requests with
// op == 1 until the gate opens — the deterministic way to keep the
// combiner lock held (its holder is stuck in the module) while a test
// publishes. File-scope flags so the module stays default-constructible
// inside pipelines; each user resets them.
std::atomic<bool> g_gate_entered{false};
std::atomic<bool> g_gate_open{true};

struct GateModule {
  static constexpr int kConsensusNumber = kConsensusNumberRegister;

  template <class Ctx>
  ModuleResult invoke(Ctx& /*ctx*/, const Request& m,
                      std::optional<SwitchValue> init = std::nullopt) {
    if (m.op == 1) {
      g_gate_entered.store(true, std::memory_order_release);
      while (!g_gate_open.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
    return ModuleResult::commit(init.value_or(0) + m.arg);
  }
};

Request req(std::uint64_t id, ProcessId p, std::int64_t arg = 0,
            std::int64_t op = 0) {
  return Request{id, p, op, arg};
}

// ---------------------------------------------------------------------------
// Ticket state machine

TEST(Ticket, ReadyPendingAndConsumedStates) {
  Ticket<ModuleResult> empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.poll());
  EXPECT_FALSE(empty.try_result().has_value());

  auto ready = Ticket<ModuleResult>::ready(ModuleResult::commit(7));
  EXPECT_TRUE(ready.valid());
  EXPECT_TRUE(ready.poll());
  EXPECT_TRUE(ready.poll());  // poll is non-consuming
  const auto r = ready.try_result();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->response, 7);
  EXPECT_FALSE(ready.valid());  // consumed
  EXPECT_FALSE(ready.try_result().has_value());

  // Move transfers the operation; the source is left empty.
  auto a = Ticket<ModuleResult>::ready(ModuleResult::commit(3));
  Ticket<ModuleResult> b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.wait().response, 3);
  EXPECT_FALSE(b.valid());
}

// ---------------------------------------------------------------------------
// submit().wait() == invoke(), single-threaded, on every layer

template <class Layer>
void expect_solo_submit_equivalence(Layer& layer) {
  Pipeline<HopModule, TicketModule> reference;
  NativeContext ctx(0);
  for (std::uint64_t i = 0; i < 48; ++i) {
    const ModuleResult want = reference.invoke(ctx, req(i + 1, 0));
    ModuleResult got;
    if (i % 2 == 0) {
      got = layer.submit(ctx, req(i + 1, 0)).wait();
    } else {
      auto t = layer.submit(ctx, req(i + 1, 0));
      ASSERT_TRUE(t.poll());  // solo: every path completes inline
      const auto r = t.try_result();
      ASSERT_TRUE(r.has_value());
      got = *r;
    }
    ASSERT_EQ(got.outcome, want.outcome) << "op " << i;
    ASSERT_EQ(got.response, want.response) << "op " << i;
    ASSERT_EQ(got.switch_value, want.switch_value) << "op " << i;
  }
}

TEST(AsyncSubmit, SoloSubmitWaitMatchesInvokeOnEveryLayer) {
  using Pipe = Pipeline<HopModule, TicketModule>;
  {
    Pipe pipe;
    expect_solo_submit_equivalence(pipe);
  }
  {
    FastPipeline<HopModule, TicketModule> fast;
    expect_solo_submit_equivalence(fast);
  }
  {
    Sharded<Pipe, 4, ByThread> sharded;
    expect_solo_submit_equivalence(sharded);
  }
  {
    Combining<Pipe, 4, ByThread> combined;
    expect_solo_submit_equivalence(combined);
    // Solo, every submit took the uncontended inline fast path.
    EXPECT_EQ(combined.direct_ops(), 48u);
    EXPECT_EQ(combined.combine_rounds(), 0u);
  }
  {
    Sharded<Combining<Pipe, 4, ByThread>, 2, ByThread> nested;
    expect_solo_submit_equivalence(nested);
  }
}

TEST(AsyncSubmit, StaticChainSubmitMatchesPerformSolo) {
  using SplitStage = ComposableUniversal<SimPlatform, CounterSpec,
                                         SplitConsensus<SimPlatform>, 48>;
  using CasStage = ComposableUniversal<SimPlatform, CounterSpec,
                                       CasConsensus<SimPlatform>, 48>;
  SplitStage split_a(1, 48, "split_a"), split_b(1, 48, "split_b");
  CasStage cas_a(1, 48, "cas_a"), cas_b(1, 48, "cas_b");
  StaticAbstractChain ref(1, split_a, cas_a);
  StaticAbstractChain chain(1, split_b, cas_b);

  Simulator s;
  s.add_process([&](SimContext& ctx) {
    for (std::uint64_t i = 0; i < 5; ++i) {
      const Request m{i + 1, 0, CounterSpec::kFetchInc, 0};
      const auto want = ref.perform(ctx, m);
      auto ticket = chain.submit(ctx, m);
      ASSERT_TRUE(ticket.poll());  // chains complete inline
      const auto got = ticket.wait();
      EXPECT_EQ(got.response, want.response);
      EXPECT_EQ(got.stage, want.stage);
    }
  });
  sim::SequentialSchedule sched;
  s.run(sched);
}

TEST(AsyncSubmit, SimulatorContextCompletesInline) {
  static_assert(detail::context_can_block_v<NativeContext>);
  static_assert(!detail::context_can_block_v<SimContext>);

  // Under a sim context, Combining::submit must degenerate to
  // invoke() + ready ticket — a pending publication would park the
  // process against the step-granting scheduler.
  Combining<Pipeline<HopModule, SinkModule>, 4, ByThread> combined;
  Simulator s;
  s.add_process([&](SimContext& ctx) {
    std::uint64_t callbacks = 0;
    for (std::uint64_t i = 0; i < 4; ++i) {
      auto t = combined.submit(
          ctx, req(i + 1, 0), std::nullopt,
          [](void* user, const ModuleResult&) {
            ++*static_cast<std::uint64_t*>(user);
          },
          &callbacks);
      ASSERT_TRUE(t.poll());
      EXPECT_EQ(t.wait().response, 1);
    }
    combined.submit_detached(ctx, req(9, 0));
    combined.drain(ctx);  // no-op, nothing can be pending
    EXPECT_EQ(callbacks, 4u);
  });
  sim::SequentialSchedule sched;
  s.run(sched);
}

// ---------------------------------------------------------------------------
// The publication path proper (combiner lock held elsewhere)

TEST(AsyncSubmit, PublishedSubmissionsAreServedInOneCombinePass) {
  constexpr std::uint64_t kPublished = 6;
  g_gate_entered.store(false);
  g_gate_open.store(false);

  Combining<Pipeline<GateModule>, 16, ByThread> combined;
  std::thread holder([&] {
    NativeContext hctx(1);
    // op == 1 parks inside the module with the combiner lock held.
    EXPECT_EQ(combined.invoke(hctx, req(1000, 1, 777, 1)).response, 777);
  });
  while (!g_gate_entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  NativeContext ctx(0);
  std::uint64_t callbacks = 0;
  std::vector<Ticket<ModuleResult>> tickets;
  for (std::uint64_t i = 0; i < kPublished; ++i) {
    tickets.push_back(combined.submit(
        ctx, req(i + 1, 0, static_cast<std::int64_t>(i + 10)), std::nullopt,
        [](void* user, const ModuleResult&) {
          ++*static_cast<std::uint64_t*>(user);
        },
        &callbacks));
  }
  combined.submit_detached(
      ctx, req(500, 0, 0), std::nullopt,
      [](void* user, const ModuleResult&) {
        ++*static_cast<std::uint64_t*>(user);
      },
      &callbacks);

  // The lock is held and no combiner can run: nothing may complete.
  for (auto& t : tickets) EXPECT_FALSE(t.poll());
  EXPECT_EQ(callbacks, 0u);

  // Open the gate: the holder finishes, combines the whole backlog in
  // one pass (running the callbacks), and returns.
  g_gate_open.store(true, std::memory_order_release);
  holder.join();

  for (std::uint64_t i = 0; i < kPublished; ++i) {
    EXPECT_TRUE(tickets[i].poll());
    EXPECT_EQ(tickets[i].wait().response,
              static_cast<Response>(i + 10));
  }
  EXPECT_EQ(callbacks, kPublished + 1);
  EXPECT_EQ(combined.combine_rounds(), 1u);
  EXPECT_EQ(combined.combined_ops(), kPublished + 1);
  EXPECT_EQ(combined.direct_ops(), 1u);  // the holder's own op
}

TEST(AsyncSubmit, DrainExecutesEveryDetachedSubmissionPublishedBefore) {
  g_gate_entered.store(false);
  g_gate_open.store(false);

  Combining<Pipeline<GateModule>, 8, ByThread> combined;
  std::thread holder([&] {
    NativeContext hctx(1);
    (void)combined.invoke(hctx, req(1000, 1, 0, 1));
  });
  while (!g_gate_entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  NativeContext ctx(0);
  std::uint64_t callbacks = 0;
  for (std::uint64_t i = 0; i < 5; ++i) {
    combined.submit_detached(
        ctx, req(i + 1, 0, 0), std::nullopt,
        [](void* user, const ModuleResult&) {
          ++*static_cast<std::uint64_t*>(user);
        },
        &callbacks);
  }
  EXPECT_EQ(callbacks, 0u);

  g_gate_open.store(true, std::memory_order_release);
  // drain() helps combine until nothing is pending; whichever of the
  // holder and this thread serves the backlog, all five detached
  // submissions have executed when it returns.
  combined.drain(ctx);
  EXPECT_EQ(callbacks, 5u);
  holder.join();
}

TEST(AsyncSubmit, ExhaustedPublicationArrayFallsBackToInlineExecution) {
  // Liveness pin: when every publication record is held by an
  // uncollected ticket, a further submit must NOT wait for a record
  // (the owners may never poll from where they sit) — it executes
  // inline under the combiner lock and returns a ready ticket.
  constexpr std::size_t kSlots = 4;
  g_gate_entered.store(false);
  g_gate_open.store(false);

  Combining<Pipeline<GateModule>, kSlots, ByThread> combined;
  std::thread holder([&] {
    NativeContext hctx(1);
    (void)combined.invoke(hctx, req(1000, 1, 0, 1));
  });
  while (!g_gate_entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  // Fill the whole array with pending publications.
  NativeContext ctx(0);
  std::vector<Ticket<ModuleResult>> tickets;
  for (std::uint64_t i = 0; i < kSlots; ++i) {
    tickets.push_back(
        combined.submit(ctx, req(i + 1, 0, static_cast<std::int64_t>(i))));
  }

  // A further submitter finds no free record. Once the gate opens, the
  // holder combines (slots turn done but stay OCCUPIED — their tickets
  // are uncollected) and releases the lock; the submitter then runs
  // inline and its ticket is born ready.
  std::atomic<bool> extra_done{false};
  std::thread extra([&] {
    NativeContext ectx(2);
    auto t = combined.submit(ectx, req(99, 2, 777));
    EXPECT_TRUE(t.poll());
    EXPECT_EQ(t.wait().response, 777);
    extra_done.store(true, std::memory_order_release);
  });
  g_gate_open.store(true, std::memory_order_release);
  holder.join();
  extra.join();
  EXPECT_TRUE(extra_done.load());

  for (std::uint64_t i = 0; i < kSlots; ++i) {
    EXPECT_EQ(tickets[i].wait().response, static_cast<Response>(i));
  }
  // holder + extra ran direct; the kSlots publications were combined.
  EXPECT_EQ(combined.direct_ops(), 2u);
  EXPECT_EQ(combined.combined_ops(), static_cast<std::uint64_t>(kSlots));
}

TEST(AsyncSubmit, ShardedForwardsCallbacksAndDetachedSubmission) {
  // The README's async example shape: a Sharded of per-shard
  // Combinings exposes the FULL submit/complete surface —
  // callback-carrying submit, submit_detached, drain — not just the
  // plain ticket form.
  Sharded<Combining<Pipeline<HopModule, TicketModule>, 8, ByThread>, 2,
          ByThread>
      obj;
  NativeContext ctx(0);
  std::uint64_t callbacks = 0;
  const CompletionFn cb = [](void* user, const ModuleResult& r) {
    if (r.committed()) ++*static_cast<std::uint64_t*>(user);
  };

  for (std::uint64_t i = 0; i < 8; ++i) {
    auto t = obj.submit(ctx, req(i + 1, 0), std::nullopt, cb, &callbacks);
    EXPECT_TRUE(t.wait().committed());
  }
  for (std::uint64_t i = 0; i < 8; ++i) {
    obj.submit_detached(ctx, req(100 + i, 0), std::nullopt, cb, &callbacks);
  }
  obj.drain(ctx);

  EXPECT_EQ(callbacks, 16u);
  std::uint64_t sink = 0;
  for (std::size_t s = 0; s < 2; ++s) {
    sink += obj.shard(s).object().stage<1>().count();
  }
  EXPECT_EQ(sink, 16u);
}

TEST(AsyncSubmit, InlineFallbackBalancesLoadTrackingSlotPolicy) {
  // A load-tracking slot policy's counters increment when submit
  // routes; when the routed record is busy and the op completes via
  // the inline fallback instead, the increment must be balanced or
  // the counters drift up on every fallback. At quiescence all
  // in-flight counts return to zero.
  constexpr std::size_t kSlots = 2;
  g_gate_entered.store(false);
  g_gate_open.store(false);

  Combining<Pipeline<GateModule>, kSlots, ByLeastLoaded<kSlots>> combined;
  std::thread holder([&] {
    NativeContext hctx(1);
    (void)combined.invoke(hctx, req(1000, 1, 0, 1));
  });
  while (!g_gate_entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  NativeContext ctx(0);
  // Fill both records with pending publications...
  auto ta = combined.submit(ctx, req(1, 0, 10));
  auto tb = combined.submit(ctx, req(2, 0, 20));
  // ...then force the fallback: the third submit routes to a busy
  // record and must complete inline once the gate opens (its ticket
  // may be served either inline or, if the holder's combine wins the
  // race, through the slot — both balance).
  std::thread extra([&] {
    NativeContext ectx(2);
    EXPECT_EQ(combined.submit(ectx, req(3, 2, 30)).wait().response, 30);
  });
  g_gate_open.store(true, std::memory_order_release);
  holder.join();
  extra.join();
  EXPECT_EQ(ta.wait().response, 10);
  EXPECT_EQ(tb.wait().response, 20);

  for (std::size_t s = 0; s < kSlots; ++s) {
    EXPECT_EQ(combined.policy().in_flight(s), 0) << "slot " << s;
  }
}

// ---------------------------------------------------------------------------
// Concurrent histories linearize (overlapping submit windows)

TEST(AsyncSubmit, ConcurrentSubmitPollWaitHistoriesLinearize) {
  // Each thread keeps a window of TWO outstanding tickets, collecting
  // the older one after submitting the next — genuinely overlapping
  // submit→collect intervals, mixed wait()/poll() collection. A global
  // atomic clock stamps the intervals; the Wing&Gong checker searches
  // for a linearization against CounterSpec. Trace sizes stay small —
  // the checker is exponential in overlap.
  constexpr int kThreads = 3;
  constexpr std::uint64_t kOps = 4;

  for (int round = 0; round < 10; ++round) {
    Combining<Pipeline<HopModule, TicketModule>, 8, ByThread> combined;
    std::atomic<std::uint64_t> clock{0};
    struct Recorded {
      Response response = 0;
      std::uint64_t invoke = 0;
      std::uint64_t ret = 0;
    };
    std::array<std::array<Recorded, kOps>, kThreads> rec{};

    (void)workload::run_threads(
        kThreads, kOps, [&](NativeContext& ctx, std::uint64_t i) {
          const auto tid = static_cast<std::size_t>(ctx.id());
          // Thread-local window of one pending (ticket, op) pair.
          struct Outstanding {
            Ticket<ModuleResult> ticket;
            std::uint64_t op = 0;
          };
          static thread_local std::optional<Outstanding> window;
          if (i == 0) window.reset();  // fresh per round

          const Request m{(static_cast<std::uint64_t>(ctx.id()) << 40) |
                              (i + 1),
                          ctx.id(), CounterSpec::kFetchInc, 0};
          rec[tid][i].invoke = clock.fetch_add(1, std::memory_order_acq_rel);
          auto t = combined.submit(ctx, m);

          if (window.has_value()) {
            auto& o = *window;
            ModuleResult r;
            if (o.op % 2 == 0) {
              r = o.ticket.wait();
            } else {
              while (!o.ticket.poll()) {
              }
              r = *o.ticket.try_result();
            }
            rec[tid][o.op].ret =
                clock.fetch_add(1, std::memory_order_acq_rel);
            rec[tid][o.op].response = r.response;
            window.reset();
          }
          if (i + 1 == kOps) {
            // Last op: collect inline so the history is complete.
            const ModuleResult r = t.wait();
            rec[tid][i].ret = clock.fetch_add(1, std::memory_order_acq_rel);
            rec[tid][i].response = r.response;
          } else {
            window = Outstanding{std::move(t), i};
          }
        });

    std::vector<ConcurrentOp> ops;
    for (int t = 0; t < kThreads; ++t) {
      for (std::uint64_t i = 0; i < kOps; ++i) {
        const auto& r =
            rec[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)];
        ConcurrentOp op;
        op.pid = static_cast<ProcessId>(t);
        op.request = Request{(static_cast<std::uint64_t>(t) << 40) | (i + 1),
                             static_cast<ProcessId>(t),
                             CounterSpec::kFetchInc, 0};
        op.response = r.response;
        op.invoke = r.invoke;
        op.ret = r.ret;
        op.completed = true;
        ops.push_back(op);
      }
    }
    ASSERT_TRUE(linearizable<CounterSpec>(std::move(ops)))
        << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Ticket ownership / drain stress (the tsan label's main customer)

TEST(AsyncSubmit, OwnershipStressDropsPollsWaitsAndDrains) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kOps = 384;
  constexpr std::uint64_t kTotal = kThreads * kOps;

  Combining<Pipeline<HopModule, TicketModule>, 8, ByThread> combined;
  std::atomic<std::uint64_t> detached_callbacks{0};
  std::atomic<std::uint64_t> collected{0};

  (void)workload::run_threads(
      kThreads, kOps, [&](NativeContext& ctx, std::uint64_t i) {
        const Request m{(static_cast<std::uint64_t>(ctx.id()) << 40) |
                            (i + 1),
                        ctx.id(), CounterSpec::kFetchInc, 0};
        switch (i % 4) {
          case 0: {  // submit + wait
            if (combined.submit(ctx, m).wait().committed()) {
              collected.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          case 1: {  // submit + poll-spin + try_result
            auto t = combined.submit(ctx, m);
            while (!t.poll()) {
            }
            if (t.try_result()->committed()) {
              collected.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          case 2: {  // fire-and-forget with callback
            combined.submit_detached(
                ctx, m, std::nullopt,
                [](void* user, const ModuleResult& r) {
                  if (r.committed()) {
                    static_cast<std::atomic<std::uint64_t>*>(user)->fetch_add(
                        1, std::memory_order_relaxed);
                  }
                },
                &detached_callbacks);
            break;
          }
          default: {  // dropped ticket: the destructor settles it
            auto t = combined.submit(ctx, m);
            (void)t;
            break;
          }
        }
        if (i + 1 == kOps) combined.drain(ctx);
      });

  NativeContext main_ctx(99);
  combined.drain(main_ctx);
  // Every op executed exactly once (the sink counter is the ground
  // truth), every detached callback fired, every collected result
  // committed. Quiescence: the Combining destructor at scope exit
  // asserts all publication records are free.
  EXPECT_EQ(combined.object().stage<1>().count(), kTotal);
  EXPECT_EQ(detached_callbacks.load(), kTotal / 4);
  EXPECT_EQ(collected.load(), kTotal / 2);
  EXPECT_EQ(combined.combined_ops() + combined.direct_ops(), kTotal);
}

// ---------------------------------------------------------------------------
// Destructor assertion (death test)

// Death-test body: publish while the combiner lock is held elsewhere,
// then destroy the wrapper with the publication still pending. A named
// function because template-argument commas inside the EXPECT_DEATH
// macro would split its argument list.
void destroy_combining_with_outstanding_publication() {
  g_gate_entered.store(false);
  g_gate_open.store(false);
  auto* combined = new Combining<Pipeline<GateModule>, 4, ByThread>();
  std::thread holder([&] {
    NativeContext hctx(1);
    (void)combined->invoke(hctx, req(1000, 1, 0, 1));
  });
  while (!g_gate_entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  NativeContext ctx(0);
  auto t = combined->submit(ctx, req(1, 0, 5));
  // The publication is pending (the lock holder is parked, no combiner
  // can serve it): destroying the wrapper now must die on the
  // occupied-slot assertion.
  delete combined;
  holder.join();  // not reached
}

TEST(AsyncSubmit, DestroyingCombiningWithOutstandingPublicationDies) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(destroy_combining_with_outstanding_publication(),
               "occupied publication slot");
}

// ---------------------------------------------------------------------------
// Open-loop driver accounting

TEST(OpenLoop, DriverAccountsOneLatencySamplePerOp) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kOps = 256;
  Sharded<Combining<Pipeline<HopModule, TicketModule>, 8, ByThread>, 2,
          ByThread>
      cell;
  std::atomic<std::uint64_t> committed{0};

  const workload::OpenLoopResult r = workload::run_open_loop(
      kThreads, kOps, /*window=*/4,
      [&](NativeContext& ctx, std::uint64_t i) {
        return cell.submit(
            ctx, req((static_cast<std::uint64_t>(ctx.id()) << 40) | (i + 1),
                     ctx.id()));
      },
      [&](NativeContext&, const ModuleResult& res) {
        if (res.committed()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      });

  EXPECT_EQ(r.total_ops, static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(r.latency_ns.size(), r.total_ops);
  EXPECT_EQ(committed.load(), r.total_ops);
  for (const double lat : r.latency_ns) EXPECT_GE(lat, 0.0);
  std::uint64_t sink = 0;
  for (std::size_t s = 0; s < 2; ++s) {
    sink += cell.shard(s).object().stage<1>().count();
  }
  EXPECT_EQ(sink, r.total_ops);
}

TEST(OpenLoop, DegenerateParametersProduceEmptyResults) {
  Pipeline<HopModule, SinkModule> pipe;
  const auto submit = [&](NativeContext& ctx, std::uint64_t i) {
    return pipe.submit(ctx, req(i + 1, ctx.id()));
  };
  EXPECT_EQ(workload::run_open_loop(0, 10, 4, submit).total_ops, 0u);
  EXPECT_EQ(workload::run_open_loop(2, 0, 4, submit).total_ops, 0u);
  // window 0 is clamped to 1, not a crash.
  EXPECT_EQ(workload::run_open_loop(1, 3, 0, submit).total_ops, 3u);
}

// A window wider than a thread's whole op budget — the shape every
// short crash-injected multi-process run has (few ops, generous
// in-flight allowance). The driver must neither deadlock waiting to
// fill an unfillable window nor lose the tail: every op still
// completes, is accounted exactly once, and harvests one latency
// sample.
TEST(OpenLoop, WindowWiderThanPerThreadOpsCompletesAndAccountsEveryOp) {
  constexpr int kThreads = 3;
  constexpr std::uint64_t kOps = 5;        // per thread
  constexpr std::size_t kWindow = 64;      // >> kOps
  Combining<Pipeline<HopModule, TicketModule>, 8, ByThread> cell;
  std::atomic<std::uint64_t> committed{0};

  const workload::OpenLoopResult r = workload::run_open_loop(
      kThreads, kOps, kWindow,
      [&](NativeContext& ctx, std::uint64_t i) {
        return cell.submit(
            ctx, req((static_cast<std::uint64_t>(ctx.id()) << 40) | (i + 1),
                     ctx.id()));
      },
      [&](NativeContext&, const ModuleResult& res) {
        if (res.committed()) {
          committed.fetch_add(1, std::memory_order_relaxed);
        }
      });

  EXPECT_EQ(r.total_ops, static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(committed.load(), r.total_ops);
  EXPECT_EQ(r.latency_ns.size(), r.total_ops);
  EXPECT_EQ(cell.object().stage<1>().count(), r.total_ops);
  NativeContext ctx(0);
  cell.drain(ctx);  // nothing left pending after the run
}

// drain() on a Combining that has never seen a publication (and again
// after everything already completed) must return immediately — the
// multi-process driver drains defensively after short runs where
// nothing may be in flight.
TEST(OpenLoop, DrainOnEmptyCombiningReturnsImmediately) {
  Combining<TicketModule, 4, ByThread> cell;
  NativeContext ctx(0);
  cell.drain(ctx);  // fresh object: no publication has ever existed
  EXPECT_EQ(cell.object().count(), 0u);

  EXPECT_TRUE(cell.invoke(ctx, req(1, 0)).committed());
  cell.drain(ctx);  // quiescent again: the only op already collected
  cell.drain(ctx);  // idempotent
  EXPECT_EQ(cell.object().count(), 1u);
  EXPECT_EQ(cell.combine_rounds() + cell.direct_ops(), 1u);
}

}  // namespace
}  // namespace scm
