// Tests for the deterministic simulator: scheduling exclusivity,
// determinism, step accounting, contention verdicts, crash injection,
// and the exhaustive explorer.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>
#include <vector>

#include "sim/explorer.hpp"
#include "sim/schedules.hpp"
#include "sim/sim_platform.hpp"
#include "sim/simulator.hpp"

namespace scm::sim {
namespace {

TEST(Simulator, SingleProcessRunsToCompletion) {
  Simulator sim;
  SimRegister<int> reg(0);
  sim.add_process([&](SimContext& ctx) {
    ctx.begin_op(1);
    reg.write(ctx, 42);
    const int v = reg.read(ctx);
    ctx.end_op(v);
  });
  SequentialSchedule sched;
  const auto steps = sim.run(sched);
  EXPECT_EQ(steps, 2u);
  ASSERT_EQ(sim.ops().size(), 1u);
  EXPECT_EQ(sim.ops()[0].output, 42);
  EXPECT_TRUE(sim.ops()[0].complete);
  EXPECT_EQ(sim.counters(0).reads, 1u);
  EXPECT_EQ(sim.counters(0).writes, 1u);
}

TEST(Simulator, SequentialScheduleHasNoContention) {
  Simulator sim;
  SimRegister<int> reg(0);
  for (int p = 0; p < 4; ++p) {
    sim.add_process([&](SimContext& ctx) {
      ctx.begin_op();
      for (int i = 0; i < 3; ++i) {
        reg.write(ctx, ctx.id());
        (void)reg.read(ctx);
      }
      ctx.end_op();
    });
  }
  SequentialSchedule sched;
  sim.run(sched);
  ASSERT_EQ(sim.ops().size(), 4u);
  for (const auto& op : sim.ops()) {
    EXPECT_FALSE(sim.op_has_step_contention(op));
    EXPECT_EQ(sim.op_interval_contention(op), 0);
  }
}

TEST(Simulator, RoundRobinScheduleCreatesStepContention) {
  Simulator sim;
  SimRegister<int> reg(0);
  for (int p = 0; p < 2; ++p) {
    sim.add_process([&](SimContext& ctx) {
      ctx.begin_op();
      for (int i = 0; i < 4; ++i) reg.write(ctx, ctx.id());
      ctx.end_op();
    });
  }
  RoundRobinSchedule sched(1);
  sim.run(sched);
  for (const auto& op : sim.ops()) {
    EXPECT_TRUE(sim.op_has_step_contention(op));
    EXPECT_EQ(sim.op_interval_contention(op), 1);
  }
}

TEST(Simulator, StepsAreMutuallyExclusiveAndTotal) {
  // Increment a plain (non-atomic in the C++ sense) shared register from
  // many processes; under correct token passing read-modify-write done
  // as two *separate* steps may lose updates under round-robin, but the
  // total step count must be exact and no torn values can appear.
  Simulator sim;
  SimRegister<int> reg(0);
  constexpr int kProcs = 8;
  constexpr int kIters = 5;
  for (int p = 0; p < kProcs; ++p) {
    sim.add_process([&](SimContext& ctx) {
      for (int i = 0; i < kIters; ++i) {
        const int v = reg.read(ctx);
        reg.write(ctx, v + 1);
      }
    });
  }
  RandomSchedule sched(/*seed=*/7);
  const auto steps = sim.run(sched);
  EXPECT_EQ(steps, static_cast<std::uint64_t>(kProcs * kIters * 2));
  EXPECT_GE(reg.peek(), 1);
  EXPECT_LE(reg.peek(), kProcs * kIters);
}

TEST(Simulator, DeterministicUnderSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim;
    auto reg = std::make_unique<SimRegister<int>>(0);
    for (int p = 0; p < 4; ++p) {
      sim.add_process([&reg](SimContext& ctx) {
        for (int i = 0; i < 6; ++i) {
          const int v = reg->read(ctx);
          reg->write(ctx, v * 3 + ctx.id());
        }
      });
    }
    RandomSchedule sched(seed);
    sim.run(sched);
    return reg->peek();
  };
  EXPECT_EQ(run_once(123), run_once(123));
  EXPECT_EQ(run_once(9), run_once(9));
}

TEST(Simulator, CrashInjectionStopsProcessMidOperation) {
  Simulator sim;
  SimRegister<int> reg(0);
  sim.add_process([&](SimContext& ctx) {
    ctx.begin_op();
    reg.write(ctx, 1);
    reg.write(ctx, 2);
    reg.write(ctx, 3);
    ctx.end_op();
  });
  sim.add_process([&](SimContext& ctx) {
    ctx.begin_op();
    (void)reg.read(ctx);
    ctx.end_op();
  });
  SequentialSchedule inner;
  CrashSchedule sched(inner, {{0, 1}});  // crash pid 0 at its 2nd grant
  sim.run(sched);
  EXPECT_TRUE(sim.crashed(0));
  EXPECT_FALSE(sim.crashed(1));
  ASSERT_EQ(sim.ops().size(), 2u);
  EXPECT_FALSE(sim.ops()[0].complete);
  EXPECT_TRUE(sim.ops()[1].complete);
  EXPECT_EQ(reg.peek(), 1);  // exactly one write landed before the crash
}

TEST(Simulator, StepLimitTerminatesRun) {
  Simulator sim(/*max_steps=*/10);
  SimRegister<int> reg(0);
  sim.add_process([&](SimContext& ctx) {
    for (;;) reg.write(ctx, 1);  // unbounded loop, must be cut off
  });
  SequentialSchedule sched;
  sim.run(sched);
  EXPECT_TRUE(sim.hit_step_limit());
  EXPECT_TRUE(sim.crashed(0));
}

TEST(Simulator, SimCasSemantics) {
  Simulator sim;
  SimCas<int> cas(0);
  std::vector<int> won(2, 0);
  for (int p = 0; p < 2; ++p) {
    sim.add_process([&, p](SimContext& ctx) {
      int expected = 0;
      if (cas.compare_and_swap(ctx, expected, p + 1)) won[p] = 1;
    });
  }
  RoundRobinSchedule sched(1);
  sim.run(sched);
  EXPECT_EQ(won[0] + won[1], 1);  // exactly one CAS succeeds
  EXPECT_EQ(cas.peek(), won[0] == 1 ? 1 : 2);
}

TEST(Simulator, SimTasExactlyOneWinner) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Simulator sim;
    SimTas tas;
    std::vector<int> result(4, -1);
    for (int p = 0; p < 4; ++p) {
      sim.add_process(
          [&, p](SimContext& ctx) { result[p] = tas.test_and_set(ctx); });
    }
    RandomSchedule sched(seed);
    sim.run(sched);
    EXPECT_EQ(std::count(result.begin(), result.end(), 0), 1);
  }
}

TEST(Explorer, EnumeratesAllInterleavingsOfTwoWriters) {
  // Two processes, two writes each => choice tree with known leaf count.
  // Every leaf must leave the register holding the id of whoever wrote
  // last, and the explorer must visit multiple distinct outcomes.
  std::set<int> finals;
  std::uint64_t runs = 0;
  auto stats = explore_all_schedules(
      [&]() {
        auto sim = std::make_unique<Simulator>();
        auto reg = std::make_shared<SimRegister<int>>(-1);
        for (int p = 0; p < 2; ++p) {
          sim->add_process([reg, p](SimContext& ctx) {
            reg->write(ctx, p);
            reg->write(ctx, p + 10);
          });
        }
        // Keep the register alive beyond this scope via the check hook:
        // stash the final value in the op record stream instead.
        sim->add_process([reg](SimContext& ctx) {
          ctx.begin_op();
          ctx.end_op(reg->read(ctx));
        });
        return sim;
      },
      [&](Simulator& sim) {
        ++runs;
        ASSERT_EQ(sim.ops().size(), 1u);
        finals.insert(static_cast<int>(sim.ops()[0].output));
      });
  EXPECT_TRUE(stats.exhausted);
  EXPECT_EQ(stats.runs, runs);
  EXPECT_GT(runs, 10u);
  // The reader can observe -1 (before any write) through 10/11 (after
  // final writes); at minimum both "p0 last" and "p1 last" leaves exist.
  EXPECT_TRUE(finals.count(10) == 1 || finals.count(11) == 1);
  EXPECT_GE(finals.size(), 3u);
}

TEST(Explorer, RespectsRunLimit) {
  auto stats = explore_all_schedules(
      [&]() {
        auto sim = std::make_unique<Simulator>();
        auto reg = std::make_shared<SimRegister<int>>(0);
        for (int p = 0; p < 3; ++p) {
          sim->add_process([reg](SimContext& ctx) {
            for (int i = 0; i < 4; ++i) reg->write(ctx, i);
          });
        }
        return sim;
      },
      [](Simulator&) {}, /*max_runs=*/50);
  EXPECT_FALSE(stats.exhausted);
  EXPECT_EQ(stats.runs, 50u);
}

}  // namespace
}  // namespace scm::sim
