// Tests for the sysfs topology reader (support/topology.hpp):
//
//  * parse_cpu_list handles every kernel cpulist shape (singletons,
//    ranges, mixtures) and skips malformed chunks instead of throwing;
//  * detect() against a FABRICATED sysfs tree in a temp directory
//    groups CPUs into L3 domains from cache/index3/shared_cpu_list,
//    falls back to topology/package_id where index3 is absent, and
//    annotates domains with their NUMA node;
//  * detect() against an empty root degrades to exactly one domain
//    holding every CPU — the shape that makes every domain-aware
//    policy coincide with its domain-oblivious counterpart;
//  * domain_of() answers 0 for CPUs the detection never saw;
//  * current_domain() on the real machine is a valid index into the
//    real detection.
#include "support/topology.hpp"

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace scm {
namespace {

namespace fs = std::filesystem;

TEST(ParseCpuList, HandlesKernelShapes) {
  EXPECT_EQ(parse_cpu_list("0"), (std::vector<int>{0}));
  EXPECT_EQ(parse_cpu_list("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpu_list("0-2,8,10-11"),
            (std::vector<int>{0, 1, 2, 8, 10, 11}));
  EXPECT_TRUE(parse_cpu_list("").empty());
}

TEST(ParseCpuList, SkipsMalformedChunksInsteadOfThrowing) {
  // The well-formed chunks survive; garbage between them is dropped.
  EXPECT_EQ(parse_cpu_list("0-1,zap,3"), (std::vector<int>{0, 1, 3}));
  EXPECT_TRUE(parse_cpu_list("nonsense").empty());
}

// Builds a miniature /sys under a fresh temp directory. Layout is the
// real kernel layout; content is whatever the test dictates.
class FakeSysfs {
 public:
  FakeSysfs() {
#if defined(__unix__) || defined(__APPLE__)
    const long pid = static_cast<long>(::getpid());
#else
    const long pid = 0;
#endif
    root_ = fs::temp_directory_path() /
            ("scm-topo-" + std::to_string(pid) + "-" +
             std::to_string(counter_++));
    fs::create_directories(root_);
  }
  ~FakeSysfs() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void write(const std::string& rel, const std::string& content) {
    const fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream(p) << content << "\n";
  }

  [[nodiscard]] std::string path() const { return root_.string(); }

 private:
  static inline int counter_ = 0;
  fs::path root_;
};

// Two L3 complexes of two CPUs each, one NUMA node per complex — the
// canonical chiplet shape.
TEST(CpuTopology, GroupsByL3SharingAndAnnotatesNuma) {
  FakeSysfs sys;
  sys.write("devices/system/cpu/online", "0-3");
  for (int c = 0; c < 4; ++c) {
    const std::string base = "devices/system/cpu/cpu" + std::to_string(c);
    sys.write(base + "/cache/index3/shared_cpu_list", c < 2 ? "0-1" : "2-3");
  }
  sys.write("devices/system/node/node0/cpulist", "0-1");
  sys.write("devices/system/node/node1/cpulist", "2-3");

  const CpuTopology topo = CpuTopology::detect(sys.path());
  ASSERT_EQ(topo.domain_count(), 2);
  EXPECT_EQ(topo.domains[0].cpus, (std::vector<int>{0, 1}));
  EXPECT_EQ(topo.domains[1].cpus, (std::vector<int>{2, 3}));
  EXPECT_EQ(topo.domains[0].numa_node, 0);
  EXPECT_EQ(topo.domains[1].numa_node, 1);
  EXPECT_EQ(topo.domain_of(0), 0);
  EXPECT_EQ(topo.domain_of(3), 1);
}

// No index3 anywhere (VMs, old kernels): package_id decides.
TEST(CpuTopology, FallsBackToPackageId) {
  FakeSysfs sys;
  sys.write("devices/system/cpu/online", "0-3");
  for (int c = 0; c < 4; ++c) {
    sys.write("devices/system/cpu/cpu" + std::to_string(c) +
                  "/topology/package_id",
              c < 2 ? "0" : "1");
  }
  const CpuTopology topo = CpuTopology::detect(sys.path());
  ASSERT_EQ(topo.domain_count(), 2);
  EXPECT_EQ(topo.domains[0].cpus, (std::vector<int>{0, 1}));
  EXPECT_EQ(topo.domains[1].cpus, (std::vector<int>{2, 3}));
  // No node files fabricated: NUMA stays unknown, never invented.
  EXPECT_EQ(topo.domains[0].numa_node, -1);
}

// Nothing readable at all: one domain, every CPU, nothing crashes.
TEST(CpuTopology, EmptyRootDegradesToOneDomain) {
  FakeSysfs sys;  // exists but holds no files
  const CpuTopology topo = CpuTopology::detect(sys.path());
  ASSERT_EQ(topo.domain_count(), 1);
  EXPECT_FALSE(topo.domains[0].cpus.empty());
  // Unknown CPUs answer the always-present domain 0.
  EXPECT_EQ(topo.domain_of(9999), 0);
}

// Mixed detection: CPUs with an L3 key and CPUs with only a package id
// land in distinct domains (the keys never collide by construction).
TEST(CpuTopology, MixedKeysStayDistinct) {
  FakeSysfs sys;
  sys.write("devices/system/cpu/online", "0-2");
  sys.write("devices/system/cpu/cpu0/cache/index3/shared_cpu_list", "0");
  sys.write("devices/system/cpu/cpu1/topology/package_id", "7");
  sys.write("devices/system/cpu/cpu2/topology/package_id", "7");
  const CpuTopology topo = CpuTopology::detect(sys.path());
  ASSERT_EQ(topo.domain_count(), 2);
  EXPECT_EQ(topo.domain_of(0), 0);
  EXPECT_EQ(topo.domain_of(1), 1);
  EXPECT_EQ(topo.domain_of(2), 1);
}

// The real machine: whatever sysfs says, the answers must be
// internally consistent — current_domain() indexes into system().
TEST(CpuTopology, CurrentDomainIndexesTheSystemTopology) {
  const CpuTopology& topo = CpuTopology::system();
  ASSERT_GE(topo.domain_count(), 1);
  const int d = current_domain();
  EXPECT_GE(d, 0);
  EXPECT_LT(d, topo.domain_count());
}

}  // namespace
}  // namespace scm
