// Tests for the adaptive composition layer (core/adaptive.hpp):
//
//  * Adaptive<Obj> is a Composable module, inherits the wrapped
//    object's consensus number, and compiles its monitor tick out for
//    non-blocking (simulator) contexts;
//  * solo equivalence: every invoke/submit response through
//    Adaptive<Obj> is bit-identical to the bare Obj's, with adaptation
//    enabled AND disabled — decisions are hints to relaxed knobs,
//    never semantics;
//  * the disabled configuration is inert: windows of operations tick
//    nothing, decide nothing, move no knob;
//  * ContentionMonitor: first window seeds the EWMA directly, later
//    windows mix at alpha, zero-op windows are ignored entirely (idle
//    must not decay the signals);
//  * adapt_decide is pure and enumerable: grow/shrink with the
//    used-shards disambiguator, the non-overlapping hysteresis bands,
//    elect-spin publish/republish keyed on achieved batch size, and
//    the park-ratio wait rung;
//  * the closed loop end to end: a solo caller on a 4-shard stack is
//    observed uncontended and concentrated onto one shard within two
//    windows (the deterministic counterpart of compose.adaptive's
//    thread-ramp convergence);
//  * concurrent histories through Adaptive<Combining> linearize
//    against CounterSpec, and a window-crossing storm commits every
//    fetch&inc response exactly once while ticks and decisions fire
//    mid-run.
//
// Runs under the "tsan" ctest label: the monitor's tick lock, the
// relaxed knob publications, and the drain in set_active_shards are
// exactly the kind of protocol TSan arbitrates.
#include "core/adaptive.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/combining.hpp"
#include "core/module.hpp"
#include "core/sharding.hpp"
#include "history/specs.hpp"
#include "lincheck/lincheck.hpp"
#include "runtime/context.hpp"
#include "runtime/platform.hpp"
#include "sim/sim_platform.hpp"
#include "workload/driver.hpp"

namespace scm {
namespace {

// The counter module from caching_test: kFetchInc commits the OLD
// value (each response is a unique ticket), kRead the current one.
struct CounterModule {
  static constexpr int kConsensusNumber = kConsensusNumberFetchAdd;

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& m,
                      std::optional<SwitchValue> /*init*/ = std::nullopt) {
    if (m.op == CounterSpec::kRead) {
      return ModuleResult::commit(static_cast<Response>(count_.read(ctx)));
    }
    return ModuleResult::commit(static_cast<Response>(count_.fetch_add(ctx)));
  }

  [[nodiscard]] std::uint64_t peek() const noexcept { return count_.peek(); }

 private:
  NativeCounter count_;
};

Request read_req(std::uint64_t id, ProcessId p) {
  return Request{id, p, CounterSpec::kRead, 0};
}
Request inc_req(std::uint64_t id, ProcessId p) {
  return Request{id, p, CounterSpec::kFetchInc, 0};
}

using CombStack = Combining<CounterModule, 8, ByThread>;
using ShardStack = Sharded<CombStack, 4, ByThread>;

// ---------------------------------------------------------------------------
// Static properties

static_assert(Composable<Adaptive<CombStack>, NativeContext>);
static_assert(Composable<Adaptive<ShardStack>, NativeContext>);
static_assert(Adaptive<CombStack>::kConsensusNumber ==
                  kConsensusNumberFetchAdd,
              "the wrapper cannot change consensus power");
static_assert(!std::is_polymorphic_v<Adaptive<ShardStack>>);
// The tick is compiled out exactly where blocking is illegal: the
// deterministic simulator must never observe wall-clock-dependent
// reconfiguration.
static_assert(context_can_block_v<NativeContext>);
static_assert(!context_can_block_v<sim::SimContext>);

// ---------------------------------------------------------------------------
// Solo equivalence: Adaptive<Obj> == Obj, bit for bit

TEST(Adaptive, SoloInvokeMatchesBareObjectAcrossWindows) {
  // Enough operations to cross several monitor windows, so the
  // equivalence covers ticks and any decisions they apply — not just
  // the quiet stretch before the first boundary.
  constexpr std::uint64_t kOps = 3 * Adaptive<CombStack>::kWindowOps + 17;
  for (const bool enabled : {true, false}) {
    Adaptive<CombStack> adaptive;
    adaptive.set_enabled(enabled);
    CombStack bare;
    NativeContext ctx(0);
    for (std::uint64_t i = 0; i < kOps; ++i) {
      const bool is_read = i % 4 == 3;
      const Request m = is_read ? read_req(i + 1, 0) : inc_req(i + 1, 0);
      const ModuleResult want = bare.invoke(ctx, m);
      const ModuleResult got = adaptive.invoke(ctx, m);
      ASSERT_EQ(got.outcome, want.outcome) << "op " << i;
      ASSERT_EQ(got.response, want.response) << "op " << i;
    }
    EXPECT_EQ(adaptive.object().object().peek(), bare.object().peek());
  }
}

TEST(Adaptive, SoloSubmitMatchesBareObjectTicketForTicket) {
  Adaptive<CombStack> adaptive;
  CombStack bare;
  NativeContext ctx(0);
  for (std::uint64_t i = 0; i < 256; ++i) {
    auto want = bare.submit(ctx, inc_req(i + 1, 0));
    auto got = adaptive.submit(ctx, inc_req(i + 1, 0));
    ASSERT_EQ(got.wait().response, want.wait().response) << "op " << i;
  }
}

// ---------------------------------------------------------------------------
// The disabled configuration is inert

TEST(Adaptive, DisabledTicksNothingAndMovesNoKnob) {
  Adaptive<ShardStack> adaptive;
  adaptive.set_enabled(false);
  EXPECT_FALSE(adaptive.enabled());
  const AdaptiveTuning before = adaptive.tuning();
  EXPECT_EQ(before.active_shards, 4u);
  EXPECT_EQ(before.elect_spins, 1u);
  EXPECT_EQ(before.yields_before_park, kYieldsBeforePark);

  NativeContext ctx(0);
  constexpr std::uint64_t kOps = 4 * Adaptive<ShardStack>::kWindowOps;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    ASSERT_TRUE(adaptive.invoke(ctx, inc_req(i + 1, 0)).committed());
  }
  EXPECT_EQ(adaptive.windows(), 0u);
  EXPECT_EQ(adaptive.decisions(), 0u);
  EXPECT_EQ(adaptive.last_change_ops(), 0u);
  EXPECT_EQ(adaptive.tuning(), before);
}

// ---------------------------------------------------------------------------
// ContentionMonitor: differencing + EWMA + the zero-op window rule

TEST(ContentionMonitorTest, FirstWindowSeedsSignalsDirectly) {
  ContentionMonitor mon(0.5);
  EXPECT_EQ(mon.windows(), 0u);
  EXPECT_TRUE(mon.observe({80, 20, 10, 5, 5}));
  EXPECT_EQ(mon.windows(), 1u);
  EXPECT_DOUBLE_EQ(mon.signals().fastpath_share, 0.8);
  EXPECT_DOUBLE_EQ(mon.signals().ops_per_combine, 2.0);
  EXPECT_DOUBLE_EQ(mon.signals().park_ratio, 0.5);
}

TEST(ContentionMonitorTest, LaterWindowsMixAtAlpha) {
  ContentionMonitor mon(0.5);
  ASSERT_TRUE(mon.observe({80, 20, 10, 0, 0}));  // seeds fastpath 0.8
  // Second window delta: 0 direct, 100 combined, 25 rounds — raw
  // fastpath 0.0, opc 4.0. At alpha 0.5 the EWMA lands halfway.
  ASSERT_TRUE(mon.observe({80, 120, 35, 0, 0}));
  EXPECT_DOUBLE_EQ(mon.signals().fastpath_share, 0.4);
  EXPECT_DOUBLE_EQ(mon.signals().ops_per_combine, 3.0);
  EXPECT_EQ(mon.windows(), 2u);
}

TEST(ContentionMonitorTest, ZeroOpWindowsAreIgnoredNotDecayed) {
  ContentionMonitor mon(0.5);
  ASSERT_TRUE(mon.observe({0, 100, 20, 8, 2}));
  const ContentionSignals seeded = mon.signals();
  // An idle stretch: the cumulative counters do not move. No evidence
  // may not drag the signals toward "uncontended".
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(mon.observe({0, 100, 20, 8, 2}));
  }
  EXPECT_EQ(mon.windows(), 1u);
  EXPECT_DOUBLE_EQ(mon.signals().fastpath_share, seeded.fastpath_share);
  EXPECT_DOUBLE_EQ(mon.signals().ops_per_combine, seeded.ops_per_combine);
  EXPECT_DOUBLE_EQ(mon.signals().park_ratio, seeded.park_ratio);
  // Parks moving with zero ops is still not a window (waiters but no
  // completions — no denominator to attribute them to).
  EXPECT_FALSE(mon.observe({0, 100, 20, 50, 2}));
}

// ---------------------------------------------------------------------------
// adapt_decide: pure, enumerable

TEST(AdaptDecide, Pow2AtLeastRoundsUp) {
  EXPECT_EQ(pow2_at_least(1), 1u);
  EXPECT_EQ(pow2_at_least(2), 2u);
  EXPECT_EQ(pow2_at_least(3), 4u);
  EXPECT_EQ(pow2_at_least(5), 8u);
  EXPECT_EQ(pow2_at_least(8), 8u);
}

TEST(AdaptDecide, GrowsByDoublingUnderContentionAndCapsAtMax) {
  const AdaptivePolicy p;
  ContentionSignals s;
  s.fastpath_share = 0.4;  // contention 0.6 > grow threshold
  AdaptiveTuning cur;
  cur.active_shards = 2;
  EXPECT_EQ(adapt_decide(p, s, cur, 8, 2).active_shards, 4u);
  cur.active_shards = 8;
  EXPECT_EQ(adapt_decide(p, s, cur, 8, 8).active_shards, 8u);  // capped
}

TEST(AdaptDecide, ShrinksTowardUsedShardsOnlyWhenUncontended) {
  const AdaptivePolicy p;
  ContentionSignals s;
  s.fastpath_share = 0.95;  // contention 0.05 < shrink threshold
  AdaptiveTuning cur;
  cur.active_shards = 8;
  // 3 shards actually served work: shrink to the covering power of 2.
  EXPECT_EQ(adapt_decide(p, s, cur, 8, 3).active_shards, 4u);
  // Shrink never grows: fewer active than used-rounded stays put.
  cur.active_shards = 2;
  EXPECT_EQ(adapt_decide(p, s, cur, 8, 3).active_shards, 2u);
  // A zero-used window (reads served elsewhere) still keeps one shard.
  cur.active_shards = 8;
  EXPECT_EQ(adapt_decide(p, s, cur, 8, 0).active_shards, 1u);
}

TEST(AdaptDecide, HysteresisBandHoldsTheShardCount) {
  const AdaptivePolicy p;
  ContentionSignals s;
  s.fastpath_share = 0.7;  // contention 0.3: between shrink and grow
  AdaptiveTuning cur;
  cur.active_shards = 4;
  EXPECT_EQ(adapt_decide(p, s, cur, 8, 1).active_shards, 4u);
}

TEST(AdaptDecide, PublishesUnderContentionRepublishesOnThinBatches) {
  const AdaptivePolicy p;
  ContentionSignals s;
  AdaptiveTuning cur;

  // Sustained contention: stop fighting for the combiner lock.
  s.fastpath_share = 0.3;  // contention 0.7 > publish threshold
  cur.elect_spins = 1;
  EXPECT_EQ(adapt_decide(p, s, cur, 1, 1).elect_spins, 0u);

  // Recovery keys on achieved batch size (fastpath_share is 0 by
  // construction at spins == 0): thin batches restore the TAS path...
  cur.elect_spins = 0;
  s.fastpath_share = 0.0;
  s.ops_per_combine = 1.2;
  EXPECT_EQ(adapt_decide(p, s, cur, 1, 1).elect_spins, 1u);
  // ... while fat batches keep the publish-and-batch mode.
  s.ops_per_combine = 3.0;
  EXPECT_EQ(adapt_decide(p, s, cur, 1, 1).elect_spins, 0u);
}

TEST(AdaptDecide, ParkRatioSelectsTheWaitRung) {
  const AdaptivePolicy p;
  ContentionSignals s;
  AdaptiveTuning cur;

  s.park_ratio = 0.6;  // waiters lose the spin anyway: park early
  EXPECT_EQ(adapt_decide(p, s, cur, 1, 1).yields_before_park, 1);

  cur.yields_before_park = 1;
  s.park_ratio = 0.01;  // almost nobody parks: full ladder back
  EXPECT_EQ(adapt_decide(p, s, cur, 1, 1).yields_before_park,
            kYieldsBeforePark);

  s.park_ratio = 0.2;  // in the band: hold
  EXPECT_EQ(adapt_decide(p, s, cur, 1, 1).yields_before_park, 1);
}

// ---------------------------------------------------------------------------
// The closed loop, end to end (deterministic direction)

TEST(Adaptive, SoloCallerIsConcentratedOntoOneShard) {
  // One thread on a 4-shard stack: every window observes
  // fastpath_share == 1 with exactly one shard serving work, so the
  // first tick must shrink the active mask to 1 — and later ticks must
  // hold there (no oscillation). The mirror image of compose.adaptive's
  // thread-ramp growth, in the direction a unit test can pin exactly.
  Adaptive<ShardStack> adaptive;
  ASSERT_TRUE(adaptive.enabled());
  EXPECT_EQ(adaptive.tuning().active_shards, 4u);

  NativeContext ctx(0);
  constexpr std::uint64_t kOps = 3 * Adaptive<ShardStack>::kWindowOps;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    ASSERT_TRUE(adaptive.invoke(ctx, inc_req(i + 1, 0)).committed());
  }

  EXPECT_EQ(adaptive.tuning().active_shards, 1u);
  EXPECT_EQ(adaptive.decisions(), 1u);  // shrink once, then hold
  EXPECT_EQ(adaptive.last_change_ops(), Adaptive<ShardStack>::kWindowOps);
  EXPECT_GE(adaptive.windows(), 2u);
  EXPECT_DOUBLE_EQ(adaptive.signals().fastpath_share, 1.0);
  // The knobs the signals gave no reason to touch stayed put.
  EXPECT_EQ(adaptive.tuning().elect_spins, 1u);
  EXPECT_EQ(adaptive.tuning().yields_before_park, kYieldsBeforePark);
  // Every op committed on a live replica despite the mid-run remap.
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    total += adaptive.object().shard(s).object().peek();
  }
  EXPECT_EQ(total, kOps);
}

// ---------------------------------------------------------------------------
// Concurrent equivalence

TEST(Adaptive, ConcurrentHistoriesLinearizeAgainstCounterSpec) {
  // 3 threads x 5 ops of mixed reads and fetch&incs through
  // Adaptive<Combining>: every response must admit a linearization
  // against CounterSpec — the wrapper may tune, never reorder. Trace
  // sizes stay small: the checker is exponential in overlap.
  constexpr int kThreads = 3;
  constexpr std::uint64_t kOps = 5;

  for (int round = 0; round < 10; ++round) {
    Adaptive<CombStack> adaptive;
    std::atomic<std::uint64_t> clock{0};
    struct Recorded {
      Response response = 0;
      std::uint64_t invoke = 0;
      std::uint64_t ret = 0;
      std::int64_t op = 0;
    };
    std::array<std::array<Recorded, kOps>, kThreads> rec{};

    (void)workload::run_threads(
        kThreads, kOps, [&](NativeContext& ctx, std::uint64_t i) {
          const auto tid = static_cast<std::size_t>(ctx.id());
          const bool is_read = tid == 0 ? (i % 2 == 1) : (i % 4 != 3);
          const std::uint64_t id =
              (static_cast<std::uint64_t>(tid) << 40) | (i + 1);
          const Request m =
              is_read ? read_req(id, ctx.id()) : inc_req(id, ctx.id());
          Recorded& r = rec[tid][i];
          r.op = m.op;
          r.invoke = clock.fetch_add(1, std::memory_order_acq_rel);
          r.response = adaptive.invoke(ctx, m).response;
          r.ret = clock.fetch_add(1, std::memory_order_acq_rel);
        });

    std::vector<ConcurrentOp> ops;
    for (int t = 0; t < kThreads; ++t) {
      for (std::uint64_t i = 0; i < kOps; ++i) {
        const auto& r =
            rec[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)];
        ConcurrentOp op;
        op.pid = static_cast<ProcessId>(t);
        op.request = Request{(static_cast<std::uint64_t>(t) << 40) | (i + 1),
                             static_cast<ProcessId>(t), r.op, 0};
        op.response = r.response;
        op.invoke = r.invoke;
        op.ret = r.ret;
        op.completed = true;
        ops.push_back(op);
      }
    }
    ASSERT_TRUE(linearizable<CounterSpec>(std::move(ops)))
        << "round " << round;
  }
}

TEST(Adaptive, WindowCrossingStormCommitsEveryTicketExactlyOnce) {
  // 4 threads crossing many window boundaries: ticks, decisions, and
  // knob publications all fire mid-run, and still every fetch&inc
  // response (the OLD value — a unique ticket) is seen exactly once.
  constexpr int kThreads = 4;
  constexpr std::uint64_t kOps = 2048;
  constexpr std::uint64_t kTotal = kThreads * kOps;

  Adaptive<CombStack> adaptive;
  std::vector<std::atomic<std::uint32_t>> seen(kTotal);
  std::atomic<std::uint64_t> out_of_range{0};

  (void)workload::run_threads(
      kThreads, kOps, [&](NativeContext& ctx, std::uint64_t i) {
        const std::uint64_t id =
            (static_cast<std::uint64_t>(ctx.id()) << 40) | (i + 1);
        const ModuleResult r = adaptive.invoke(ctx, inc_req(id, ctx.id()));
        ASSERT_TRUE(r.committed());
        if (r.response < 0 ||
            r.response >= static_cast<Response>(kTotal)) {
          out_of_range.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        seen[static_cast<std::size_t>(r.response)].fetch_add(
            1, std::memory_order_relaxed);
      });

  EXPECT_EQ(out_of_range.load(), 0u);
  for (std::uint64_t v = 0; v < kTotal; ++v) {
    ASSERT_EQ(seen[static_cast<std::size_t>(v)].load(), 1u) << "ticket " << v;
  }
  EXPECT_EQ(adaptive.object().object().peek(), kTotal);
  // The storm crossed window boundaries, so the monitor demonstrably
  // ran while the equivalence above held.
  EXPECT_GE(adaptive.windows(), 1u);
}

}  // namespace
}  // namespace scm
