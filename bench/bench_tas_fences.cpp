// Scenario tas.fences (E4) — fence/RMW complexity of the TAS
// implementations (Section 1: "our implementation is optimal in terms
// of fence complexity [7]").
//
// "Laws of Order" [7] proves a linearizable TAS must use expensive
// synchronization (RMW or store-load fence) on some path; optimality
// means not paying MORE than the minimum and not paying it on the
// speculative path. Claims regenerated (exact counts from the
// simulator):
//  * uncontended operation: 0 RMWs for composed and solo-fast TAS,
//    1 for hardware;
//  * any operation, any schedule: at most 1 RMW for the composed TAS
//    (the single hardware fallback), exactly 1 for hardware.
#include <memory>

#include "bench/registry.hpp"
#include "bench/scenario.hpp"
#include "sim/schedules.hpp"
#include "sim/sim_platform.hpp"
#include "sim/simulator.hpp"
#include "tas/speculative_tas.hpp"

namespace {

using namespace scm;
using namespace scm::bench;
using sim::SimContext;
using sim::SimPlatform;
using sim::Simulator;

Request tas_req(std::uint64_t id, ProcessId p) {
  return Request{id, p, TasSpec::kTestAndSet, 0};
}

// Bare hardware TAS with the same outer interface.
struct HardwareOnly {
  template <class Ctx>
  TasOutcome test_and_set(Ctx& ctx, const Request&) {
    const int prev = cell.test_and_set(ctx);
    return TasOutcome{prev == 0 ? TasSpec::kWinner : TasSpec::kLoser,
                      TasPath::kHardware};
  }
  sim::SimTas cell;
};

struct RmwStats {
  std::uint64_t solo_rmws = 0;
  std::uint64_t max_rmws = 0;
  PhaseMetrics contended;
};

template <class Tas>
RmwStats measure(const char* name, int n, int sweeps,
                 const SchedulePolicy& policy) {
  RmwStats out;
  out.contended.phase = name;
  {
    Simulator s;
    Tas tas;
    s.add_process(
        [&](SimContext& ctx) { (void)tas.test_and_set(ctx, tas_req(1, 0)); });
    sim::SequentialSchedule sched;
    s.run(sched);
    out.solo_rmws = s.counters(0).rmws;
  }
  for (int i = 0; i < sweeps; ++i) {
    Simulator s;
    Tas tas;
    for (int p = 0; p < n; ++p) {
      s.add_process([&tas, p](SimContext& ctx) {
        (void)tas.test_and_set(ctx,
                               tas_req(static_cast<std::uint64_t>(p) + 1, p));
      });
    }
    auto sched = policy.make(static_cast<std::uint64_t>(i) * 977 + 3);
    s.run(*sched);
    for (int p = 0; p < n; ++p) {
      const StepCounters& c = s.counters(static_cast<ProcessId>(p));
      out.max_rmws = std::max(out.max_rmws, c.rmws);
      out.contended.steps += c.total();
      out.contended.rmws += c.rmws;
      ++out.contended.ops;
    }
  }
  out.contended.extra["solo_rmws"] = static_cast<double>(out.solo_rmws);
  out.contended.extra["max_rmws_per_op"] = static_cast<double>(out.max_rmws);
  return out;
}

ScenarioResult run(const BenchParams& params) {
  const SchedulePolicy policy =
      SchedulePolicy::parse(params.schedule, params.seed);
  const int n = params.threads;
  const int sweeps = params.sweeps(1, 8, 200);

  const auto spec =
      measure<SpeculativeTas<SimPlatform>>("speculative (A1;A2)", n, sweeps,
                                           policy);
  const auto solofast =
      measure<SoloFastTas<SimPlatform>>("solo-fast (App. B)", n, sweeps,
                                        policy);
  const auto hw = measure<HardwareOnly>("hardware TAS", n, sweeps, policy);

  ScenarioResult result;
  result.phases = {spec.contended, solofast.contended, hw.contended};
  result.claim = "speculative/solo-fast pay 0 RMWs uncontended and at most "
                 "1 ever; hardware always pays 1";
  result.claim_holds = spec.solo_rmws == 0 && solofast.solo_rmws == 0 &&
                       spec.max_rmws <= 1 && solofast.max_rmws <= 1 &&
                       hw.solo_rmws == 1;
  return result;
}

SCM_BENCH_REGISTER("tas.fences", "E4",
                   "RMW (fence) complexity per test-and-set operation",
                   Backend::kSim, run);

}  // namespace
