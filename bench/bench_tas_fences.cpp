// E4 — Fence/RMW complexity of the TAS implementations (Section 1:
// "our implementation is optimal in terms of fence complexity [7]").
//
// "Laws of Order" [7] proves a linearizable TAS must use expensive
// synchronization (RMW or store-load fence) on some path; optimality
// means not paying MORE than the minimum and not paying it on the
// speculative path. Claims regenerated (exact counts from the
// simulator):
//  * uncontended operation: 0 RMWs for composed and solo-fast TAS,
//    1 for hardware;
//  * any operation, any schedule: at most 1 RMW for the composed TAS
//    (the single hardware fallback), exactly 1 for hardware.
#include <cstdio>
#include <memory>

#include "support/table.hpp"
#include "sim/schedules.hpp"
#include "sim/sim_platform.hpp"
#include "sim/simulator.hpp"
#include "tas/speculative_tas.hpp"

namespace {

using namespace scm;
using sim::SimContext;
using sim::SimPlatform;
using sim::Simulator;

Request tas_req(std::uint64_t id, ProcessId p) {
  return Request{id, p, TasSpec::kTestAndSet, 0};
}

struct RmwStats {
  std::uint64_t solo_rmws = 0;
  std::uint64_t max_rmws = 0;
  double avg_rmws = 0.0;
};

template <class Tas>
RmwStats measure(int n, int sweeps) {
  RmwStats out;
  {
    Simulator s;
    Tas tas;
    s.add_process([&](SimContext& ctx) { (void)tas.test_and_set(ctx, tas_req(1, 0)); });
    sim::SequentialSchedule sched;
    s.run(sched);
    out.solo_rmws = s.counters(0).rmws;
  }
  std::uint64_t total = 0, ops = 0;
  for (int i = 0; i < sweeps; ++i) {
    Simulator s;
    Tas tas;
    for (int p = 0; p < n; ++p) {
      s.add_process([&tas, p](SimContext& ctx) {
        (void)tas.test_and_set(ctx,
                               tas_req(static_cast<std::uint64_t>(p) + 1, p));
      });
    }
    sim::RandomSchedule sched(static_cast<std::uint64_t>(i) * 977 + 3);
    s.run(sched);
    for (int p = 0; p < n; ++p) {
      const auto rmws = s.counters(static_cast<ProcessId>(p)).rmws;
      out.max_rmws = std::max(out.max_rmws, rmws);
      total += rmws;
      ++ops;
    }
  }
  out.avg_rmws = static_cast<double>(total) / static_cast<double>(ops);
  return out;
}

// Bare hardware TAS with the same outer interface.
struct HardwareOnly {
  template <class Ctx>
  TasOutcome test_and_set(Ctx& ctx, const Request&) {
    const int prev = cell.test_and_set(ctx);
    return TasOutcome{prev == 0 ? TasSpec::kWinner : TasSpec::kLoser,
                      TasPath::kHardware};
  }
  sim::SimTas cell;
};

}  // namespace

int main() {
  std::printf("\nE4 -- RMW (fence) complexity per test-and-set operation\n");
  std::printf("(exact counts; 200 random 4-process schedules per row)\n\n");

  Table t({"implementation", "solo RMWs/op", "avg RMWs/op (contended)",
           "max RMWs/op (any op, any schedule)"});
  const auto spec = measure<SpeculativeTas<SimPlatform>>(4, 200);
  t.row("speculative (A1;A2)", spec.solo_rmws, spec.avg_rmws, spec.max_rmws);
  const auto solofast = measure<SoloFastTas<SimPlatform>>(4, 200);
  t.row("solo-fast (App. B)", solofast.solo_rmws, solofast.avg_rmws,
        solofast.max_rmws);
  const auto hw = measure<HardwareOnly>(4, 200);
  t.row("hardware TAS", hw.solo_rmws, hw.avg_rmws, hw.max_rmws);
  t.print(std::cout, "fence complexity");

  const bool ok = spec.solo_rmws == 0 && solofast.solo_rmws == 0 &&
                  spec.max_rmws <= 1 && solofast.max_rmws <= 1 &&
                  hw.solo_rmws == 1;
  std::printf("\nClaim check: speculative/solo-fast pay 0 RMWs uncontended and\n"
              "at most 1 ever; hardware always pays 1. -> %s\n\n",
              ok ? "HOLDS" : "VIOLATED");
  return ok ? 0 : 1;
}
