// E6 — The composable universal construction under phased contention
// (Proposition 1): every sequential type has an Abstract implementation
// that uses only registers when uncontended and reverts to CAS
// otherwise.
//
// Workload: a shared fetch&increment counter behind the three-stage
// chain (contention-free SplitConsensus -> obstruction-free
// AbortableBakery -> wait-free CasConsensus). Phases alternate between
// sequential (no contention) and randomly interleaved (contention).
// We report, per phase style, which stage served the commits and how
// many RMW steps were spent.
#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "support/table.hpp"
#include "consensus/abortable_bakery.hpp"
#include "consensus/cas_consensus.hpp"
#include "consensus/split_consensus.hpp"
#include "history/specs.hpp"
#include "sim/schedules.hpp"
#include "sim/sim_platform.hpp"
#include "sim/simulator.hpp"
#include "universal/composable_universal.hpp"
#include "universal/universal_chain.hpp"

namespace {

using namespace scm;
using sim::SimContext;
using sim::SimPlatform;
using sim::Simulator;

using SplitStage =
    ComposableUniversal<SimPlatform, CounterSpec, SplitConsensus<SimPlatform>, 48>;
using BakeryStage =
    ComposableUniversal<SimPlatform, CounterSpec, AbortableBakery<SimPlatform>, 48>;
using CasStage =
    ComposableUniversal<SimPlatform, CounterSpec, CasConsensus<SimPlatform>, 48>;

std::unique_ptr<UniversalChain<SimPlatform, CounterSpec>> make_chain(int n) {
  std::vector<std::unique_ptr<AbstractStage<SimPlatform>>> stages;
  stages.push_back(std::make_unique<SplitStage>(n, 48, "split (registers)"));
  stages.push_back(std::make_unique<BakeryStage>(n, 48, "bakery (registers)"));
  stages.push_back(std::make_unique<CasStage>(n, 48, "cas (hardware)"));
  return std::make_unique<UniversalChain<SimPlatform, CounterSpec>>(
      n, std::move(stages));
}

struct PhaseResult {
  std::uint64_t commits_by_stage[3] = {0, 0, 0};
  std::uint64_t total_rmws = 0;
  std::uint64_t ops = 0;
  bool correct = true;  // fetch&inc responses unique and gap-free
};

PhaseResult run_phase(int n, int ops_per_proc, bool contended,
                      std::uint64_t seed) {
  auto chain = make_chain(n);
  Simulator s;
  std::vector<std::vector<Response>> responses(n);
  for (int p = 0; p < n; ++p) {
    s.add_process([&, p](SimContext& ctx) {
      for (int i = 0; i < ops_per_proc; ++i) {
        const auto id = static_cast<std::uint64_t>(p) * 1000 +
                        static_cast<std::uint64_t>(i) + 1;
        responses[p].push_back(
            chain
                ->perform(ctx, Request{id, p, CounterSpec::kFetchInc, 0})
                .response);
      }
    });
  }
  if (contended) {
    sim::RandomSchedule sched(seed);
    s.run(sched);
  } else {
    sim::SequentialSchedule sched;
    s.run(sched);
  }

  PhaseResult out;
  for (int p = 0; p < n; ++p) {
    out.total_rmws += s.counters(static_cast<ProcessId>(p)).rmws;
    for (std::size_t st = 0; st < 3; ++st) {
      out.commits_by_stage[st] += chain->commits_by(p, st);
    }
  }
  std::set<Response> all;
  for (const auto& rs : responses) {
    for (Response r : rs) all.insert(r);
  }
  out.ops = static_cast<std::uint64_t>(n) *
            static_cast<std::uint64_t>(ops_per_proc);
  out.correct = all.size() == out.ops && !all.empty() &&
                *all.begin() == 0 &&
                *all.rbegin() == static_cast<Response>(out.ops - 1);
  return out;
}

}  // namespace

int main() {
  std::printf("\nE6 -- composable universal construction (fetch&inc counter)\n");
  std::printf("three-stage chain: SplitConsensus -> AbortableBakery -> CAS\n\n");

  Table t({"phase", "n", "ops", "stage0 commits (reg)", "stage1 commits (reg)",
           "stage2 commits (CAS)", "RMWs total", "linearizable"});
  bool all_correct = true;
  std::uint64_t uncontended_stage12 = 0;
  std::uint64_t contended_stage12 = 0;
  for (int n : {2, 4}) {
    const auto solo = run_phase(n, 4, /*contended=*/false, 0);
    t.row("sequential", n, solo.ops, solo.commits_by_stage[0],
          solo.commits_by_stage[1], solo.commits_by_stage[2], solo.total_rmws,
          solo.correct ? "yes" : "NO");
    all_correct = all_correct && solo.correct;
    uncontended_stage12 += solo.commits_by_stage[1] + solo.commits_by_stage[2];

    PhaseResult contended{};
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const auto r = run_phase(n, 4, /*contended=*/true, seed * 101);
      for (int st = 0; st < 3; ++st) {
        contended.commits_by_stage[st] += r.commits_by_stage[st];
      }
      contended.total_rmws += r.total_rmws;
      contended.ops += r.ops;
      contended.correct = contended.correct && r.correct;
    }
    t.row("contended", n, contended.ops, contended.commits_by_stage[0],
          contended.commits_by_stage[1], contended.commits_by_stage[2],
          contended.total_rmws, contended.correct ? "yes" : "NO");
    all_correct = all_correct && contended.correct;
    contended_stage12 +=
        contended.commits_by_stage[1] + contended.commits_by_stage[2];
  }
  t.print(std::cout, "commits per stage under phased contention");

  std::printf(
      "\nClaim check (Prop 1): sequential phases commit entirely in the\n"
      "register-only stage 0 (later-stage commits: %llu, must be 0);\n"
      "contention pushes commits to later stages (%llu observed > 0);\n"
      "fetch&inc stays linearizable throughout -> %s.\n\n",
      static_cast<unsigned long long>(uncontended_stage12),
      static_cast<unsigned long long>(contended_stage12),
      all_correct ? "HOLDS" : "VIOLATED");
  return (all_correct && uncontended_stage12 == 0) ? 0 : 1;
}
