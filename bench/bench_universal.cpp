// Scenario universal.phased (E6) — the composable universal
// construction under phased contention (Proposition 1): every
// sequential type has an Abstract implementation that uses only
// registers when uncontended and reverts to CAS otherwise.
//
// Workload: a shared fetch&increment counter behind the three-stage
// chain (contention-free SplitConsensus -> obstruction-free
// AbortableBakery -> wait-free CasConsensus). Phases alternate between
// sequential (no contention) and randomly interleaved (contention).
// We report, per phase style, which stage served the commits and how
// many RMW steps were spent.
#include <memory>
#include <set>
#include <vector>

#include "bench/registry.hpp"
#include "bench/scenario.hpp"
#include "consensus/abortable_bakery.hpp"
#include "consensus/cas_consensus.hpp"
#include "consensus/split_consensus.hpp"
#include "history/specs.hpp"
#include "sim/schedules.hpp"
#include "sim/sim_platform.hpp"
#include "sim/simulator.hpp"
#include "universal/composable_universal.hpp"
#include "universal/universal_chain.hpp"

namespace {

using namespace scm;
using namespace scm::bench;
using sim::SimContext;
using sim::SimPlatform;
using sim::Simulator;

using SplitStage =
    ComposableUniversal<SimPlatform, CounterSpec, SplitConsensus<SimPlatform>,
                        48>;
using BakeryStage =
    ComposableUniversal<SimPlatform, CounterSpec, AbortableBakery<SimPlatform>,
                        48>;
using CasStage =
    ComposableUniversal<SimPlatform, CounterSpec, CasConsensus<SimPlatform>,
                        48>;

std::unique_ptr<UniversalChain<SimPlatform, CounterSpec>> make_chain(int n) {
  std::vector<std::unique_ptr<AbstractStage<SimPlatform>>> stages;
  stages.push_back(std::make_unique<SplitStage>(n, 48, "split (registers)"));
  stages.push_back(std::make_unique<BakeryStage>(n, 48, "bakery (registers)"));
  stages.push_back(std::make_unique<CasStage>(n, 48, "cas (hardware)"));
  return std::make_unique<UniversalChain<SimPlatform, CounterSpec>>(
      n, std::move(stages));
}

struct PhaseResult {
  std::uint64_t commits_by_stage[3] = {0, 0, 0};
  std::uint64_t steps = 0;
  std::uint64_t rmws = 0;
  std::uint64_t ops = 0;
  bool correct = true;  // fetch&inc responses unique and gap-free
};

PhaseResult run_phase(int n, int ops_per_proc, sim::Schedule& sched) {
  auto chain = make_chain(n);
  Simulator s;
  std::vector<std::vector<Response>> responses(n);
  for (int p = 0; p < n; ++p) {
    s.add_process([&, p](SimContext& ctx) {
      for (int i = 0; i < ops_per_proc; ++i) {
        const auto id = static_cast<std::uint64_t>(p) * 1000 +
                        static_cast<std::uint64_t>(i) + 1;
        responses[p].push_back(
            chain->perform(ctx, Request{id, p, CounterSpec::kFetchInc, 0})
                .response);
      }
    });
  }
  s.run(sched);

  PhaseResult out;
  for (int p = 0; p < n; ++p) {
    const StepCounters& c = s.counters(static_cast<ProcessId>(p));
    out.steps += c.total();
    out.rmws += c.rmws;
    for (std::size_t st = 0; st < 3; ++st) {
      out.commits_by_stage[st] += chain->commits_by(p, st);
    }
  }
  std::set<Response> all;
  for (const auto& rs : responses) {
    for (Response r : rs) all.insert(r);
  }
  out.ops = static_cast<std::uint64_t>(n) *
            static_cast<std::uint64_t>(ops_per_proc);
  out.correct = all.size() == out.ops && !all.empty() && *all.begin() == 0 &&
                *all.rbegin() == static_cast<Response>(out.ops - 1);
  return out;
}

PhaseMetrics to_metrics(const std::string& name, const PhaseResult& r) {
  PhaseMetrics pm;
  pm.phase = name;
  pm.ops = r.ops;
  pm.steps = r.steps;
  pm.rmws = r.rmws;
  pm.extra["stage0_commits"] = static_cast<double>(r.commits_by_stage[0]);
  pm.extra["stage1_commits"] = static_cast<double>(r.commits_by_stage[1]);
  pm.extra["stage2_commits"] = static_cast<double>(r.commits_by_stage[2]);
  pm.extra["linearizable"] = r.correct ? 1.0 : 0.0;
  return pm;
}

ScenarioResult run(const BenchParams& params) {
  const SchedulePolicy policy =
      SchedulePolicy::parse(params.schedule, params.seed);
  const int ops_per_proc =
      static_cast<int>(std::clamp<std::uint64_t>(params.ops / 16, 2, 8));
  const int contended_runs = params.sweeps(8, 2, 10);

  ScenarioResult result;
  bool all_correct = true;
  std::uint64_t uncontended_stage12 = 0;
  for (int n : {2, 4}) {
    if (n > std::max(2, params.threads)) break;
    sim::SequentialSchedule seq;
    const PhaseResult solo = run_phase(n, ops_per_proc, seq);
    all_correct = all_correct && solo.correct;
    uncontended_stage12 += solo.commits_by_stage[1] + solo.commits_by_stage[2];
    result.phases.push_back(
        to_metrics("sequential n=" + std::to_string(n), solo));

    PhaseResult contended{};
    for (int i = 0; i < contended_runs; ++i) {
      auto sched = policy.make(static_cast<std::uint64_t>(n) * 100 +
                               static_cast<std::uint64_t>(i) * 101);
      const PhaseResult r = run_phase(n, ops_per_proc, *sched);
      for (int st = 0; st < 3; ++st) {
        contended.commits_by_stage[st] += r.commits_by_stage[st];
      }
      contended.steps += r.steps;
      contended.rmws += r.rmws;
      contended.ops += r.ops;
      contended.correct = contended.correct && r.correct;
    }
    all_correct = all_correct && contended.correct;
    result.phases.push_back(
        to_metrics("contended n=" + std::to_string(n), contended));
  }

  result.claim = "sequential phases commit entirely in the register-only "
                 "stage 0 and fetch&inc stays linearizable (Prop. 1)";
  result.claim_holds = all_correct && uncontended_stage12 == 0;
  return result;
}

SCM_BENCH_REGISTER("universal.phased", "E6",
                   "composable universal construction (fetch&inc) under "
                   "phased contention",
                   Backend::kSim, run);

}  // namespace
