// Scenario compose.shm (E16) — cross-process composition over shared
// memory. Every other scenario funnels THREADS through a combiner;
// this one funnels PROCESSES: the scenario body acts as the server —
// it creates a ShmArena, places one ShmCombining<ShmCounter> plus
// per-client accounting cells and a start barrier inside it, publishes
// them in the discovery table, and forks/execs N copies of this same
// binary as `scm_bench --shm-role=client` workers that attach BY NAME
// and submit fetch&increment ops with may_combine = false while the
// server serves. This is the paper's cost-of-composition question in
// its production shape: the end-to-end cost of funneling independent
// address spaces through one serialization point.
//
// Two measured phases per repetition, each on a FRESH segment:
//
//   exact — N clients x ops; gated on exact-count equivalence
//     (final counter == N*ops == every cell's started == completed),
//     every client exiting 0, and an empty slot array afterwards.
//   crash — same, but the server SIGKILLs one client after observing
//     its first op. Gated on the reconciliation bound
//     sum(completed) <= counter <= sum(started), the surviving
//     clients' counts staying exact, the victim's death being the
//     injected signal, and reclaim_dead() leaving zero occupied slots
//     (the dead client's abandoned publication record is swept, the
//     run completes). On a tiny --ops the victim can win the race and
//     finish before the signal lands; the phase then degrades to a
//     second exact-equivalence check (recorded in extra.victim_killed)
//     rather than reporting a vacuous pass.
//   stall — one client, and the server sleeps ~100ms after releasing
//     the start barrier before serving. The client's first op outlives
//     the whole spin/yield ladder, so it must escalate to the shared
//     futex word (rung 3) instead of burning its core — gated on the
//     segment-resident park counter being nonzero (parks are counted
//     under the yield fallback too, so the gate holds in both build
//     modes), on top of the exact-equivalence gates.
//
// All phases surface the combiner's parking telemetry
// (parks/wakes/spurious_wakes/futex_syscalls) as extra columns; the
// counters live inside the shared segment, so they aggregate across
// every attached process.
//
// Wall-clock starts when the server releases the start barrier (all
// clients attached and parked) and stops when the last live client
// exits, so ns/op covers the full cross-process round trip including
// combiner scheduling. Every wait carries a deadline: a wedged run
// fails the claim instead of hanging CI.
#include <string>
#include <vector>

#include "bench/registry.hpp"
#include "bench/scenario.hpp"
#include "bench/shm_e16.hpp"
#include "bench/shm_role.hpp"
#include "shm/shm_arena.hpp"

#if SCM_HAS_POSIX_SHM
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <thread>

#include "runtime/context.hpp"
#include "support/parking.hpp"
#endif

namespace {

using namespace scm;
using namespace scm::bench;

#if SCM_HAS_POSIX_SHM

using clock_type = std::chrono::steady_clock;

struct Child {
  pid_t pid = -1;
  int status = 0;
  bool exited = false;
};

// Reaps any children that have exited since the last call (WNOHANG).
int reap(std::vector<Child>& children) {
  int live = 0;
  for (Child& c : children) {
    if (c.exited) continue;
    const pid_t r = ::waitpid(c.pid, &c.status, WNOHANG);
    if (r == c.pid) {
      c.exited = true;
    } else {
      ++live;
    }
  }
  return live;
}

pid_t spawn_client(const std::string& exe, const std::string& segment,
                   int client_id, std::uint64_t ops) {
  const std::string name_arg = "--shm-name=" + segment;
  const std::string id_arg = "--shm-id=" + std::to_string(client_id);
  const std::string ops_arg = "--ops=" + std::to_string(ops);
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  // Child: become a client of the same binary. execv only returns on
  // failure; _exit (not exit) so no parent-side atexit state runs
  // twice.
  char* argv[] = {const_cast<char*>(exe.c_str()),
                  const_cast<char*>("--shm-role=client"),
                  const_cast<char*>(name_arg.c_str()),
                  const_cast<char*>(id_arg.c_str()),
                  const_cast<char*>(ops_arg.c_str()), nullptr};
  ::execv(exe.c_str(), argv);
  ::_exit(127);
}

struct PhaseOutcome {
  bool ok = true;
  std::string why;  // first failed gate, for the claim text
  double seconds = 0.0;
  std::uint64_t executed = 0;  // final counter value
  std::uint64_t reclaimed = 0;
  bool victim_killed = false;
  ParkStats parking;  // segment-resident, so cross-process totals

  void fail(const std::string& gate) {
    if (ok) why = gate;
    ok = false;
  }
};

// One multi-process run on a fresh segment. `crash` injects the
// SIGKILL. Returns nullopt only when the segment itself could not be
// built (treated as a failed claim by the caller).
std::optional<PhaseOutcome> run_phase(const std::string& segment, int procs,
                                      std::uint64_t ops,
                                      std::uint64_t segment_bytes, bool crash,
                                      int stall_ms = 0) {
  // Defensive: a previous crashed run may have leaked the name.
  ShmArena::unlink(segment);
  std::string err;
  auto arena = ShmArena::create(segment, segment_bytes, &err);
  if (!arena) return std::nullopt;

  const std::uint64_t comb_off = arena->construct<E16Combining>();
  const std::uint64_t cells_off =
      arena->alloc(sizeof(E16ClientCell) * static_cast<std::size_t>(procs),
                   alignof(E16ClientCell));
  const std::uint64_t barrier_off = arena->construct<ShmSpinBarrier>(
      static_cast<std::uint32_t>(procs) + 1);  // clients + server
  if (comb_off == 0 || cells_off == 0 || barrier_off == 0) {
    ShmArena::unlink(segment);
    return std::nullopt;
  }
  auto* cells = new (arena->at<void>(cells_off))
      E16ClientCell[static_cast<std::size_t>(procs)];
  const bool published =
      arena->publish(kE16CombiningName, comb_off, sizeof(E16Combining),
                     E16Combining::kTypeTag) &&
      arena->publish(kE16CellsName, cells_off,
                     sizeof(E16ClientCell) * static_cast<std::size_t>(procs),
                     kE16CellsTag) &&
      arena->publish(kE16BarrierName, barrier_off, sizeof(ShmSpinBarrier),
                     kE16BarrierTag);
  if (!published) {
    ShmArena::unlink(segment);
    return std::nullopt;
  }
  E16Combining& comb = *arena->at<E16Combining>(comb_off);
  ShmSpinBarrier& start = *arena->at<ShmSpinBarrier>(barrier_off);

  PhaseOutcome out;
  const std::string exe = self_exe();
  std::vector<Child> children;
  children.reserve(static_cast<std::size_t>(procs));
  for (int k = 0; k < procs; ++k) {
    children.push_back({spawn_client(exe, segment, k, ops)});
  }

  NativeContext ctx(procs);  // the server's own context id
  const auto deadline = clock_type::now() + std::chrono::seconds(60);

  // Park until every client has attached, resolved, and arrived; a
  // client that failed setup exits nonzero instead of arriving, so
  // also watch for early deaths.
  while (start.arrived() < static_cast<std::uint32_t>(procs)) {
    if (clock_type::now() > deadline) {
      out.fail("clients failed to reach the start barrier");
      break;
    }
    if (reap(children) < procs) {
      out.fail("a client exited before the start barrier");
      break;
    }
  }
  const auto t0 = clock_type::now();
  if (out.ok) start.arrive_and_wait();  // release the run
  if (out.ok && stall_ms > 0) {
    // Stall injection: the clients are running, their first ops are
    // published, and nobody serves — long enough that their wait
    // escalates past the whole spin/yield ladder into a park.
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  }

  // Serve until every child has exited. The server is the only
  // combiner (clients publish with may_combine = false).
  const pid_t victim = children.empty() ? -1 : children.front().pid;
  auto t1 = t0;
  std::uint32_t tick = 0;
  while (out.ok) {
    comb.try_serve(ctx);
    // Bookkeeping (waitpid probes, the kill, reclaim sweeps) runs on a
    // coarse tick: these are syscalls, and paying them per serve pass
    // would pace every client round trip at syscall latency.
    if ((++tick & 0x3ff) != 0) continue;
    if (crash && !out.victim_killed &&
        cells[0].started.load(std::memory_order_acquire) >= 1 &&
        !children.front().exited) {
      // The victim has at least one op in flight or behind it: kill it
      // mid-run and keep serving.
      if (::kill(victim, SIGKILL) == 0) out.victim_killed = true;
    }
    if (out.victim_killed) out.reclaimed += comb.reclaim_dead();
    const int live = reap(children);
    if (live == 0) {
      t1 = clock_type::now();
      break;
    }
    if (clock_type::now() > deadline) {
      out.fail("run did not complete before the deadline");
      break;
    }
  }

  // Quiesce: execute anything still published, then sweep the dead.
  // drain() is safe here even when nothing is pending (satellite-test
  // covered for the in-process twin): it returns immediately.
  if (out.ok) {
    comb.drain(ctx);
    out.reclaimed += comb.reclaim_dead();
    if (comb.occupied() != 0) {
      out.fail("slots still occupied after drain + reclaim_dead");
    }
  }

  // Reconciliation gates.
  if (out.ok) {
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    out.executed = static_cast<std::uint64_t>(comb.object().value());
    std::uint64_t started_sum = 0, completed_sum = 0;
    for (int k = 0; k < procs; ++k) {
      const std::uint64_t s =
          cells[k].started.load(std::memory_order_acquire);
      const std::uint64_t c =
          cells[k].completed.load(std::memory_order_acquire);
      started_sum += s;
      completed_sum += c;
      const bool is_victim = out.victim_killed && k == 0;
      if (!is_victim && (s != ops || c != ops)) {
        out.fail("a surviving client's counts are not exact");
      }
    }
    for (int k = 0; k < procs; ++k) {
      const Child& c = children[static_cast<std::size_t>(k)];
      const bool is_victim = out.victim_killed && k == 0;
      if (is_victim) {
        if (!WIFSIGNALED(c.status) || WTERMSIG(c.status) != SIGKILL) {
          out.fail("victim did not die of the injected SIGKILL");
        }
      } else if (!WIFEXITED(c.status) || WEXITSTATUS(c.status) != 0) {
        out.fail("client exited nonzero (code " +
                 std::to_string(WIFEXITED(c.status) ? WEXITSTATUS(c.status)
                                                    : -1) +
                 ")");
      }
    }
    if (out.victim_killed) {
      // The kill leaves at most one op ambiguous; both bounds stay
      // exact for every survivor.
      if (!(completed_sum <= out.executed && out.executed <= started_sum)) {
        out.fail("crash counts do not reconcile");
      }
    } else if (out.executed != static_cast<std::uint64_t>(procs) * ops) {
      out.fail("final counter != procs * ops");
    }
  } else {
    // Failed mid-run: don't leave children behind.
    for (Child& c : children) {
      if (!c.exited) ::kill(c.pid, SIGKILL);
    }
    while (reap(children) > 0) {
    }
  }

  out.parking = comb.park_stats();
  ShmArena::unlink(segment);
  return out;
}

ScenarioResult run(const BenchParams& params) {
  ScenarioResult result;
  const int procs = params.shm_procs > 0 ? params.shm_procs : 2;

  // Unique per rep AND per process: a previous rep's segment is
  // unlinked by then, but crashed runs must not collide either.
  static int run_counter = 0;
  const std::string base = "/scm-e16-" + std::to_string(::getpid()) + "-" +
                           std::to_string(run_counter++);

  bool ok = true;
  std::string why;
  const auto record = [&](const char* name, int phase_procs,
                          std::uint64_t offered_ops,
                          const std::optional<PhaseOutcome>& out,
                          bool crash) {
    PhaseMetrics pm;
    pm.phase = std::string(name) + " procs=" + std::to_string(phase_procs);
    if (!out.has_value()) {
      ok = false;
      if (why.empty()) why = "segment setup failed";
      result.phases.push_back(std::move(pm));
      return;
    }
    pm.ops = out->executed;
    pm.seconds = out->seconds;
    pm.extra["procs"] = static_cast<double>(phase_procs);
    pm.extra["offered_ops"] = static_cast<double>(offered_ops);
    pm.extra["crash"] = crash ? 1.0 : 0.0;
    pm.extra["victim_killed"] = out->victim_killed ? 1.0 : 0.0;
    pm.extra["reclaimed_slots"] = static_cast<double>(out->reclaimed);
    pm.extra["parks"] = static_cast<double>(out->parking.parks);
    pm.extra["wakes"] = static_cast<double>(out->parking.wakes);
    pm.extra["spurious_wakes"] =
        static_cast<double>(out->parking.spurious_wakes);
    pm.extra["futex_syscalls"] =
        static_cast<double>(out->parking.futex_syscalls);
    result.phases.push_back(std::move(pm));
    if (!out->ok) {
      ok = false;
      if (why.empty()) why = out->why;
    }
  };

  const auto exact = run_phase(base + "-a", procs, params.ops,
                               params.shm_segment_bytes, /*crash=*/false);
  record("exact", procs, static_cast<std::uint64_t>(procs) * params.ops,
         exact, false);

  // Crash phase: more ops per client so the victim is still mid-run
  // when the signal lands even at smoke-test sizes.
  const std::uint64_t crash_ops = params.ops * 4;
  const auto crashed = run_phase(base + "-b", procs, crash_ops,
                                 params.shm_segment_bytes, /*crash=*/true);
  record("crash", procs, static_cast<std::uint64_t>(procs) * crash_ops,
         crashed, true);

  // Stall phase: one client against a server that sleeps 100ms before
  // serving. The client MUST park (spinning for 100ms would also pass
  // the counting gates — the park counter is what distinguishes a
  // waiter that yielded its core from one that burned it).
  const auto stalled = run_phase(base + "-c", /*procs=*/1, params.ops,
                                 params.shm_segment_bytes, /*crash=*/false,
                                 /*stall_ms=*/100);
  record("stall", 1, params.ops, stalled, false);
  if (stalled.has_value() && stalled->ok && stalled->parking.parks == 0) {
    ok = false;
    if (why.empty()) why = "stalled client never parked";
  }

  result.claim =
      "independent processes attach by name and funnel through one "
      "ShmCombining<ShmCounter>: exact-count equivalence (final counter == "
      "procs * ops, every client's started == completed == ops), and with "
      "one client SIGKILLed mid-run the counts still reconcile "
      "(sum completed <= counter <= sum started), the dead client's slots "
      "are reclaimed, and the run completes; a client facing a stalled "
      "server parks instead of spinning" +
      (why.empty() ? std::string() : " [failed: " + why + "]");
  result.claim_holds = ok;
  return result;
}

#else  // !SCM_HAS_POSIX_SHM

ScenarioResult run(const BenchParams& params) {
  (void)params;
  ScenarioResult result;
  PhaseMetrics pm;
  pm.phase = "skipped";
  pm.extra["skipped"] = 1.0;
  result.phases.push_back(std::move(pm));
  result.claim = "skipped: no POSIX shared memory on this platform";
  result.claim_holds = true;
  return result;
}

#endif

SCM_BENCH_REGISTER("compose.shm", "E16",
                   "cross-process composition: N forked scm_bench clients "
                   "submit into one shared-segment combiner; exact-count "
                   "equivalence + SIGKILL crash reconciliation",
                   Backend::kNative, run);

}  // namespace
