// Scenario compose.async (E14) — open-loop asynchronous submission
// over the composition stack. compose.batched (E13) amortizes the
// chain walk but still measures a CLOSED loop: every thread blocks
// until its operation commits, so latency and throughput are one
// number seen from two sides. This scenario detaches them with the
// submit/complete surface (core/async.hpp): each thread keeps a
// bounded window of in-flight tickets (workload::run_open_loop) and
// the report separates submission throughput (ns/op over the wall
// clock) from completion latency (per-op submit→completion samples,
// summarized as lat_{mean,p50,p99}_ns extra columns), sweeping
//
//   window in {1, 4, 16}  x  combining in {off, on}
//     x  shards in {1, 4}  x  threads in {1, --threads}
//
// at a fixed depth-4 pipeline (the depth axis is E11's). combining=off
// cells complete inline (ready tickets — the window axis degenerates,
// so only window=1 runs) and give the synchronous baseline;
// combining=on cells publish into per-shard Combining wrappers, whose
// slots already are one-op futures, so a wider window lets one
// combiner pass serve more of a single thread's operations.
//
// Self-checks (scale-robust, gating): submit().wait() is
// result-identical to invoke() for a solo caller on every layer —
// Pipeline, Sharded, Combining, Sharded<Combining> — and the
// poll/try_result path agrees too; detached submissions all execute
// and run their callbacks after drain(); every measured op commits its
// full-walk hop count (response == depth-1) on exactly one shard, the
// per-shard sink totals sum to the offered load, and the latency
// sample count equals the op count.
#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench/registry.hpp"
#include "bench/scenario.hpp"
#include "core/async.hpp"
#include "core/combining.hpp"
#include "core/pipeline.hpp"
#include "core/sharding.hpp"
#include "runtime/platform.hpp"
#include "support/parking.hpp"
#include "support/stats.hpp"

namespace {

using namespace scm;
using namespace scm::bench;

// Process CPU time (user + system, all threads) — the denominator of
// the cpu_ns_per_op extra. Wall-clock throughput can look fine while
// oversubscribed spin-waits burn whole cores; this is the number the
// CI oversubscription job puts a ceiling on, and the number futex
// parking is meant to shrink. 0 where the platform cannot say.
double cpu_seconds_now() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (::getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  const auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) +
           static_cast<double>(t.tv_usec) * 1e-6;
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
#else
  return 0.0;
#endif
}

constexpr std::size_t kCombineSlots = 16;
constexpr std::size_t kDepth = 4;

// Aborts after one counted register read, incrementing the hop count —
// the composition plumbing under test (same shape as E11/E12/E13).
class AsyncRelay {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberRegister;

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    (void)gate_.read(ctx);
    return ModuleResult::abort_with(init.value_or(0) + 1);
  }

 private:
  NativeRegister<int> gate_{0};
};

// Commits the inherited hop count after one fetch_add; the counter is
// the per-shard accounting the self-check sums.
class RmwSink {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberFetchAdd;

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    (void)count_.fetch_add(ctx);
    return ModuleResult::commit(init.value_or(0));
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_.peek(); }

 private:
  NativeCounter count_;
};

// Probe sink: commits the fetch_add ticket itself so response streams
// expose execution order — the equivalence probes compare them against
// a per-op reference instance.
class TicketSink {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberFetchAdd;

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    const auto t = count_.fetch_add(ctx);
    return ModuleResult::commit(static_cast<Response>(
        init.value_or(0) * 1000 + static_cast<SwitchValue>(t)));
  }

 private:
  NativeCounter count_;
};

template <class Sink>
using PipeOf = FastPipeline<AsyncRelay, AsyncRelay, AsyncRelay, Sink>;

Request req_of(ProcessId p, std::uint64_t i) {
  return Request{(static_cast<std::uint64_t>(p) << 40) | (i + 1), p, 0, 0};
}

// One open-loop sweep cell over `Cell` (any layer with submit()).
// `sink_total` reads the per-shard sink counters back for accounting.
template <class Cell, class SinkTotal>
void run_cell(std::string name, int threads, std::uint64_t ops,
              std::size_t window, Cell& cell, const SinkTotal& sink_total,
              ScenarioResult& result, std::uint64_t& mismatches,
              std::uint64_t& accounting_gaps) {
  std::atomic<std::uint64_t> bad{0};
  const double cpu0 = cpu_seconds_now();
  const workload::OpenLoopResult r = workload::run_open_loop(
      threads, ops, window,
      [&](NativeContext& ctx, std::uint64_t i) {
        return cell.submit(ctx, req_of(ctx.id(), i));
      },
      [&](NativeContext&, const ModuleResult& res) {
        if (!res.committed() ||
            res.response != static_cast<Response>(kDepth - 1)) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      });
  const double cpu1 = cpu_seconds_now();
  mismatches += bad.load(std::memory_order_relaxed);
  if (sink_total() != r.total_ops) ++accounting_gaps;
  // Completion accounting: the open-loop driver harvested exactly one
  // latency sample per offered op.
  if (r.latency_ns.size() != r.total_ops) ++accounting_gaps;

  PhaseMetrics pm;
  pm.phase = std::move(name);
  pm.ops = r.total_ops;
  pm.seconds = r.seconds;
  pm.steps = r.total_counters().total();
  pm.rmws = r.total_counters().rmws;
  Samples lat;
  for (const double v : r.latency_ns) lat.add(v);
  pm.extra["window"] = static_cast<double>(window);
  pm.extra["lat_mean_ns"] = lat.mean();
  pm.extra["lat_p50_ns"] = lat.percentile(50.0);
  pm.extra["lat_p99_ns"] = lat.percentile(99.0);
  pm.extra["cpu_ns_per_op"] =
      r.total_ops == 0 ? 0.0
                       : (cpu1 - cpu0) * 1e9 /
                             static_cast<double>(r.total_ops);
  result.phases.push_back(std::move(pm));
}

// Probe 1: submit().wait() — and the poll()/try_result() path — is
// result-identical to invoke() for a solo caller, on a bare pipeline,
// a sharded pipeline, a combining wrapper, and their nesting. Solo,
// Combining's submit takes the uncontended fast path, so the tickets
// are born ready and the comparison covers the fast path's inline
// completion (the publication path is pinned under real threads by
// async_test).
template <class Layer>
bool solo_submit_equivalence(Layer& layer) {
  PipeOf<TicketSink> reference;
  NativeContext ctx(0);
  for (std::uint64_t i = 0; i < 64; ++i) {
    const ModuleResult want = reference.invoke(ctx, req_of(0, i));
    ModuleResult got;
    if (i % 2 == 0) {
      got = layer.submit(ctx, req_of(0, i)).wait();
    } else {
      auto t = layer.submit(ctx, req_of(0, i));
      while (!t.poll()) {
      }
      const auto r = t.try_result();
      if (!r.has_value()) return false;
      got = *r;
    }
    if (!got.committed() || got.response != want.response) return false;
  }
  return true;
}

bool submit_equivalence_probes() {
  PipeOf<TicketSink> pipe;
  Sharded<PipeOf<TicketSink>, 4, ByThread> sharded;
  Combining<PipeOf<TicketSink>, 4, ByThread> combined;
  Sharded<Combining<PipeOf<TicketSink>, 4, ByThread>, 4, ByThread> nested;
  return solo_submit_equivalence(pipe) && solo_submit_equivalence(sharded) &&
         solo_submit_equivalence(combined) && solo_submit_equivalence(nested);
}

// Probe 2: fire-and-forget submission. Every detached op executes, its
// combiner-run (or inline) callback fires exactly once, and drain()
// leaves no publication behind.
bool detached_probe() {
  Combining<PipeOf<RmwSink>, 4, ByThread> combined;
  NativeContext ctx(0);
  constexpr std::uint64_t kOps = 96;
  std::uint64_t callbacks = 0;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    combined.submit_detached(
        ctx, req_of(0, i), std::nullopt,
        [](void* user, const ModuleResult& r) {
          if (r.committed()) ++*static_cast<std::uint64_t*>(user);
        },
        &callbacks);
  }
  combined.drain(ctx);
  return callbacks == kOps &&
         combined.object().stage<kDepth - 1>().count() == kOps;
}

ScenarioResult run(const BenchParams& params) {
  ScenarioResult result;
  std::uint64_t mismatches = 0;
  std::uint64_t accounting_gaps = 0;
  std::uint64_t fastpath_syscall_leaks = 0;

  std::vector<int> thread_points{1};
  if (params.threads > 1) thread_points.push_back(params.threads);

  const auto sweep_shards = [&]<std::size_t S>() {
    for (const int t : thread_points) {
      {
        // Synchronous baseline: inline completion, window degenerate.
        Sharded<PipeOf<RmwSink>, S, ByThread> cell;
        const auto sink_total = [&] {
          std::uint64_t total = 0;
          for (std::size_t s = 0; s < S; ++s) {
            total += cell.shard(s).template stage<kDepth - 1>().count();
          }
          return total;
        };
        run_cell("sync w=1 shards=" + std::to_string(S) +
                     " t=" + std::to_string(t),
                 t, params.ops, 1, cell, sink_total, result, mismatches,
                 accounting_gaps);
        result.phases.back().extra["combining"] = 0.0;
        result.phases.back().extra["shards"] = static_cast<double>(S);
      }
      for (const std::size_t window : {std::size_t{1}, std::size_t{4},
                                       std::size_t{16}}) {
        Sharded<Combining<PipeOf<RmwSink>, kCombineSlots, ByThread>, S,
                ByThread>
            cell;
        const auto sink_total = [&] {
          std::uint64_t total = 0;
          for (std::size_t s = 0; s < S; ++s) {
            total += cell.shard(s)
                         .object()
                         .template stage<kDepth - 1>()
                         .count();
          }
          return total;
        };
        run_cell("async w=" + std::to_string(window) +
                     " shards=" + std::to_string(S) +
                     " t=" + std::to_string(t),
                 t, params.ops, window, cell, sink_total, result, mismatches,
                 accounting_gaps);
        std::uint64_t rounds = 0, batched = 0, fastpath = 0;
        ParkStats parked;
        for (std::size_t s = 0; s < S; ++s) {
          rounds += cell.shard(s).combine_rounds();
          batched += cell.shard(s).combined_ops();
          fastpath += cell.shard(s).direct_ops();
          const ParkStats ps = cell.shard(s).park_stats();
          parked.parks += ps.parks;
          parked.wakes += ps.wakes;
          parked.spurious_wakes += ps.spurious_wakes;
          parked.futex_syscalls += ps.futex_syscalls;
        }
        PhaseMetrics& pm = result.phases.back();
        pm.extra["combining"] = 1.0;
        pm.extra["shards"] = static_cast<double>(S);
        pm.extra["ops_per_combine"] =
            rounds == 0
                ? 0.0
                : static_cast<double>(batched) / static_cast<double>(rounds);
        pm.extra["fastpath_share"] =
            pm.ops == 0 ? 0.0
                        : static_cast<double>(fastpath) /
                              static_cast<double>(pm.ops);
        // Parking telemetry (support/parking.hpp): rung-3 escalations
        // and the kernel traffic they cost, summed over shards.
        pm.extra["parks"] = static_cast<double>(parked.parks);
        pm.extra["wakes"] = static_cast<double>(parked.wakes);
        pm.extra["spurious_wakes"] =
            static_cast<double>(parked.spurious_wakes);
        pm.extra["futex_syscalls"] = static_cast<double>(parked.futex_syscalls);
        // Fast-path purity gate: a cell whose every op took the
        // uncontended direct path never published, never contended the
        // combiner lock, and so had nothing to park on — any futex
        // syscall here means the parking rung leaked into the fast
        // path. This is the scale-robust form of the "uncontended fast
        // path untouched" acceptance criterion.
        if (pm.ops != 0 && fastpath == pm.ops &&
            parked.futex_syscalls != 0) {
          ++fastpath_syscall_leaks;
        }
      }
    }
  };
  sweep_shards.template operator()<1>();
  sweep_shards.template operator()<4>();

  const bool probes_ok = submit_equivalence_probes() && detached_probe();

  result.claim =
      "submit().wait() and submit()+poll()/try_result() are "
      "result-identical to invoke() for a solo caller on every layer; "
      "detached submissions all execute and run their callbacks after "
      "drain(); every open-loop op commits its full-walk hop count on "
      "exactly one shard, per-shard sink totals sum to the offered "
      "load, completion-latency samples account for every op, and "
      "all-fast-path cells issue zero futex syscalls";
  result.claim_holds = mismatches == 0 && accounting_gaps == 0 &&
                       fastpath_syscall_leaks == 0 && probes_ok;
  return result;
}

SCM_BENCH_REGISTER("compose.async", "E14",
                   "open-loop async submission: window {1,4,16} x "
                   "combining on/off x shards {1,4} x threads, completion "
                   "latency vs submission throughput",
                   Backend::kNative, run);

}  // namespace
