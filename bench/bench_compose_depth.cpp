// Scenario compose.depth (E11) — the cost of composition at depth
// 1→8, on the variadic Pipeline<Ms...> combinator (Theorem 2: chains
// of any length are again modules; the paper's "negligible cost of
// composition" claim, measured as a curve instead of a point).
//
// Two pipeline families per depth d, both statically composed (zero
// virtual calls, zero std::function hops — the harness overhead is
// the plumbing being measured):
//  * commit d: (d-1) obstruction-free A1 modules in front of the
//    hardware A2, measured solo (one thread — the paper's uncontended
//    regime, and the only regime with deterministic step counts: under
//    contention A1's sticky aborted_ flags make steady-state costs
//    depend on which stages got poisoned during the initial race).
//    After the one-shot object is decided, every operation commits at
//    stage 0 in a constant number of register reads — the cost of the
//    operation does NOT grow with the number of modules stacked behind
//    it (composition is free until used).
//  * walk d: (d-1) switch-relay modules that each perform one register
//    read and abort, handing an incremented switch value to the next
//    stage, before a sink commits the inherited value. Runs on
//    --threads threads (the relays are stateless, so steps/op equals d
//    exactly at any contention level). Every operation traverses the
//    full chain: the composition's marginal cost is one module
//    invocation per stage, and the committed response equals the relay
//    count — an end-to-end check of the abort→init switch plumbing at
//    every depth.
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "bench/registry.hpp"
#include "bench/scenario.hpp"
#include "core/pipeline.hpp"
#include "history/specs.hpp"
#include "runtime/platform.hpp"
#include "tas/a1_module.hpp"
#include "tas/a2_module.hpp"

namespace {

using namespace scm;
using namespace scm::bench;

constexpr std::size_t kMaxDepth = 8;

Request tas_req(ProcessId p, std::uint64_t i) {
  return Request{(static_cast<std::uint64_t>(p) << 40) | (i + 1), p,
                 TasSpec::kTestAndSet, 0};
}

// Aborts every invocation after one counted register read, passing an
// incremented hop count downstream — the minimal module whose only job
// is to exercise the composition plumbing.
class SwitchRelay {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberRegister;

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    (void)gate_.read(ctx);  // the stage's one unit of work
    return ModuleResult::abort_with(init.value_or(0) + 1);
  }

 private:
  NativeRegister<int> gate_{0};
};

// Commits the inherited hop count after one counted register read.
class SwitchSink {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberRegister;

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    (void)gate_.read(ctx);
    return ModuleResult::commit(init.value_or(0));
  }

 private:
  NativeRegister<int> gate_{0};
};

template <std::size_t D>
void run_depth(const BenchParams& params, ScenarioResult& result,
               std::array<double, kMaxDepth + 1>& commit_steps,
               std::array<double, kMaxDepth + 1>& walk_steps,
               std::uint64_t& plumbing_mismatches) {
  static_assert(D >= 1 && D <= kMaxDepth);

  // The timed hot loops run on FastPipeline: the measured ns/op curve
  // must contain only the modules' own work, not per-stage stats
  // fetch_adds whose cross-thread contention would itself grow with
  // depth. Per-stage stats are reported from a short unmeasured probe
  // on a stats-enabled pipeline over fresh modules (the stats columns
  // are exact there — the behaviour is deterministic solo).
  constexpr std::uint64_t kProbeOps = 64;

  // ---- commit family: (D-1) x A1 + A2, steady-state stage-0 commits.
  {
    std::array<ObstructionFreeTas<NativePlatform>, D - 1> a1s;
    WaitFreeTas<NativePlatform> a2;
    auto pipe = [&]<std::size_t... I>(std::index_sequence<I...>) {
      return make_fast_pipeline(a1s[I]..., a2);
    }(std::make_index_sequence<D - 1>{});
    static_assert(decltype(pipe)::kDepth == D);
    static_assert(decltype(pipe)::kConsensusNumber == kConsensusNumberTas,
                  "the TAS stack folds to consensus number 2 at any depth");

    PhaseMetrics pm = measure_native(
        "commit d=" + std::to_string(D), /*threads=*/1, params.ops,
        [&](NativeContext& ctx, std::uint64_t i) {
          (void)pipe.invoke(ctx, tas_req(ctx.id(), i));
        });
    commit_steps[D] = pm.steps_per_op();
    pm.extra["depth"] = static_cast<double>(D);

    std::array<ObstructionFreeTas<NativePlatform>, D - 1> probe_a1s;
    WaitFreeTas<NativePlatform> probe_a2;
    auto probe = [&]<std::size_t... I>(std::index_sequence<I...>) {
      return make_pipeline(probe_a1s[I]..., probe_a2);
    }(std::make_index_sequence<D - 1>{});
    NativeContext probe_ctx(0);
    for (std::uint64_t i = 0; i < kProbeOps; ++i) {
      (void)probe.invoke(probe_ctx, tas_req(0, i));
    }
    pm.extra["stage0_commits_per_op"] =
        static_cast<double>(probe.stats(0).commits) /
        static_cast<double>(kProbeOps);
    result.phases.push_back(std::move(pm));
  }

  // ---- walk family: (D-1) x relay + sink, full-chain traversal.
  {
    std::array<SwitchRelay, D - 1> relays;
    SwitchSink sink;
    auto pipe = [&]<std::size_t... I>(std::index_sequence<I...>) {
      return make_fast_pipeline(relays[I]..., sink);
    }(std::make_index_sequence<D - 1>{});
    static_assert(decltype(pipe)::kConsensusNumber == kConsensusNumberRegister,
                  "the relay stack uses registers only");

    std::atomic<std::uint64_t> mismatches{0};
    PhaseMetrics pm = measure_native(
        "walk d=" + std::to_string(D), params.threads, params.ops,
        [&](NativeContext& ctx, std::uint64_t i) {
          const ModuleResult r = pipe.invoke(ctx, tas_req(ctx.id(), i));
          // The sink commits the hop count: D-1 relays aborted into it.
          if (!r.committed() ||
              r.response != static_cast<Response>(D - 1)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        });
    walk_steps[D] = pm.steps_per_op();
    plumbing_mismatches += mismatches.load(std::memory_order_relaxed);
    pm.extra["depth"] = static_cast<double>(D);

    if constexpr (D >= 2) {
      std::array<SwitchRelay, D - 1> probe_relays;
      SwitchSink probe_sink;
      auto probe = [&]<std::size_t... I>(std::index_sequence<I...>) {
        return make_pipeline(probe_relays[I]..., probe_sink);
      }(std::make_index_sequence<D - 1>{});
      NativeContext probe_ctx(0);
      for (std::uint64_t i = 0; i < kProbeOps; ++i) {
        (void)probe.invoke(probe_ctx, tas_req(0, i));
      }
      pm.extra["relay_aborts_per_op"] =
          static_cast<double>(probe.stats(0).aborts) /
          static_cast<double>(kProbeOps);
    }
    result.phases.push_back(std::move(pm));
  }
}

ScenarioResult run(const BenchParams& params) {
  ScenarioResult result;
  std::array<double, kMaxDepth + 1> commit_steps{};
  std::array<double, kMaxDepth + 1> walk_steps{};
  std::uint64_t plumbing_mismatches = 0;

  [&]<std::size_t... I>(std::index_sequence<I...>) {
    (run_depth<I + 1>(params, result, commit_steps, walk_steps,
                      plumbing_mismatches),
     ...);
  }(std::make_index_sequence<kMaxDepth>{});

  // Scale-robust checks: the walk family's step count is deterministic
  // (one read per stage, exactly), the commit family's steady state is
  // independent of depth up to the first-win transient, and every
  // traversal delivered the correct hop count end to end.
  bool walk_exact = true;
  for (std::size_t d = 1; d <= kMaxDepth; ++d) {
    if (std::abs(walk_steps[d] - static_cast<double>(d)) > 0.01) {
      walk_exact = false;
    }
  }
  const bool commit_flat =
      std::abs(commit_steps[kMaxDepth] - commit_steps[2]) < 0.5;

  result.claim =
      "uncontended stage-0 commits cost the same at every depth; a "
      "full traversal adds exactly one module invocation per stage; "
      "switch values plumb through all 8 stages";
  result.claim_holds = walk_exact && commit_flat && plumbing_mismatches == 0;
  return result;
}

SCM_BENCH_REGISTER("compose.depth", "E11",
                   "cost-of-composition curve: pipeline depth 1..8, "
                   "stage-0 commit vs full abort walk",
                   Backend::kNative, run);

}  // namespace
