// Scenario compose.adaptive (E17) — contention-driven runtime
// self-tuning of the composition stack. Every earlier scenario sweeps
// a STATIC grid (shards, combining on/off, window) and reports which
// cell won; this one hands the same stack to Adaptive<...>
// (core/adaptive.hpp) and checks the closed loop finds the winner by
// itself while the workload changes under it:
//
//   phase 1 (lo)  1 thread         — the uncontended regime, where the
//                                    best config is few shards + the
//                                    TAS fast path
//   phase 2 (hi)  2x --threads     — the contended regime, where the
//                                    best config spreads shards and
//                                    amortizes through batching
//
// both on ONE Adaptive object, so the monitor sees the ramp — then a
// static sweep over shards {1, kShards} x elect_spins {0, 1} at the
// hi thread count gives the best static configuration the adaptive
// run is judged against.
//
// Claims: the scale-robust self-checks always gate — solo
// Adaptive invoke/submit is result-identical to the bare stack
// (adaptation enabled AND disabled), a disabled wrapper makes zero
// decisions over thousands of window crossings, every measured op
// commits its full-walk hop count, and per-shard sink totals sum to
// the offered load. The convergence claim — adaptive hi-phase ns/op
// within 15% of the best static cell — additionally gates only on
// >= 8 hardware threads with a non-trivial ops budget (elsewhere the
// contended regime does not reproducibly exist; the columns are still
// recorded for tracking).
//
// Extra columns (adaptive phases): adaptive_decisions,
// adaptive_active_shards, adaptive_elect_spins,
// adaptive_yields_before_park, adaptive_convergence_ops (global op
// count at the last tuning change), adaptive_enabled — plus the
// combining/parking telemetry every batching scenario reports.
#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/registry.hpp"
#include "bench/scenario.hpp"
#include "core/adaptive.hpp"
#include "core/async.hpp"
#include "core/combining.hpp"
#include "core/pipeline.hpp"
#include "core/sharding.hpp"
#include "runtime/platform.hpp"
#include "support/parking.hpp"
#include "workload/driver.hpp"

namespace {

using namespace scm;
using namespace scm::bench;

constexpr std::size_t kShards = 8;
constexpr std::size_t kCombineSlots = 8;
constexpr std::size_t kDepth = 4;

// The E11..E14 composition plumbing: relays abort with an incremented
// hop count, the sink commits it after one counted fetch_add.
class Relay {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberRegister;

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    (void)gate_.read(ctx);
    return ModuleResult::abort_with(init.value_or(0) + 1);
  }

 private:
  NativeRegister<int> gate_{0};
};

class RmwSink {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberFetchAdd;

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    (void)count_.fetch_add(ctx);
    return ModuleResult::commit(init.value_or(0));
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_.peek(); }

 private:
  NativeCounter count_;
};

// Probe sink for the equivalence checks: commits the fetch_add ticket,
// so response streams expose execution order.
class TicketSink {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberFetchAdd;

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& /*m*/,
                      std::optional<SwitchValue> init = std::nullopt) {
    const auto t = count_.fetch_add(ctx);
    return ModuleResult::commit(static_cast<Response>(
        init.value_or(0) * 1000 + static_cast<SwitchValue>(t)));
  }

 private:
  NativeCounter count_;
};

template <class Sink>
using PipeOf = FastPipeline<Relay, Relay, Relay, Sink>;

// The full stack under adaptation: shards of combiners over pipelines.
template <class Sink>
using StackOf =
    Sharded<Combining<PipeOf<Sink>, kCombineSlots, ByThread>, kShards,
            ByThread>;

Request req_of(ProcessId p, std::uint64_t i) {
  return Request{(static_cast<std::uint64_t>(p) << 40) | (i + 1), p, 0, 0};
}

template <class Cell>
std::uint64_t sink_total(Cell& cell) {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    total += cell.shard(s).object().template stage<kDepth - 1>().count();
  }
  return total;
}

// One closed-loop measured phase: every thread invokes ops times,
// validating the full-walk hop count on each result.
template <class Cell>
void run_cell(std::string name, int threads, std::uint64_t ops, Cell& cell,
              ScenarioResult& result, std::uint64_t& mismatches) {
  std::atomic<std::uint64_t> bad{0};
  const workload::DriverResult r = workload::run_threads(
      threads, ops, [&](NativeContext& ctx, std::uint64_t i) {
        const ModuleResult res = cell.invoke(ctx, req_of(ctx.id(), i));
        if (!res.committed() ||
            res.response != static_cast<Response>(kDepth - 1)) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      });
  mismatches += bad.load(std::memory_order_relaxed);

  PhaseMetrics pm;
  pm.phase = std::move(name);
  pm.ops = r.total_ops;
  pm.seconds = r.seconds;
  pm.steps = r.total_counters().total();
  pm.rmws = r.total_counters().rmws;
  result.phases.push_back(std::move(pm));
}

// Appends the combining + parking telemetry columns every batching
// scenario reports, summed over shards (through whatever wrapper
// `combining` is — Adaptive forwards the aggregate surface).
template <class Combined>
void combining_extras(PhaseMetrics& pm, const Combined& combining) {
  const std::uint64_t rounds = combining.combine_rounds();
  const std::uint64_t batched = combining.combined_ops();
  const std::uint64_t fastpath = combining.direct_ops();
  const ParkStats ps = combining.park_stats();
  const std::uint64_t total = fastpath + batched;
  pm.extra["ops_per_combine"] =
      rounds == 0 ? 0.0
                  : static_cast<double>(batched) / static_cast<double>(rounds);
  pm.extra["fastpath_share"] =
      total == 0 ? 0.0
                 : static_cast<double>(fastpath) / static_cast<double>(total);
  pm.extra["parks"] = static_cast<double>(ps.parks);
  pm.extra["wakes"] = static_cast<double>(ps.wakes);
  pm.extra["spurious_wakes"] = static_cast<double>(ps.spurious_wakes);
  pm.extra["futex_syscalls"] = static_cast<double>(ps.futex_syscalls);
  pm.extra["park_ratio"] = ps.park_ratio();
}

// Probe 1: solo Adaptive<stack> is result-identical to the bare
// wrapped object on both the invoke and the submit/wait/poll paths —
// with adaptation enabled AND disabled (enabled solo, the monitor may
// tick and even shrink the mask; results must not move).
bool solo_equivalence(bool enabled) {
  Adaptive<StackOf<TicketSink>> layer;
  layer.set_enabled(enabled);
  PipeOf<TicketSink> reference;
  NativeContext ctx(0);
  for (std::uint64_t i = 0; i < 64; ++i) {
    const ModuleResult want = reference.invoke(ctx, req_of(0, i));
    ModuleResult got;
    if (i % 3 == 0) {
      got = layer.invoke(ctx, req_of(0, i));
    } else if (i % 3 == 1) {
      got = layer.submit(ctx, req_of(0, i)).wait();
    } else {
      auto t = layer.submit(ctx, req_of(0, i));
      while (!t.poll()) {
      }
      const auto r = t.try_result();
      if (!r.has_value()) return false;
      got = *r;
    }
    if (!got.committed() || got.response != want.response) return false;
  }
  return true;
}

// Probe 2: a disabled wrapper never decides — thousands of ops cross
// many window boundaries and the monitor must not have run once.
bool disabled_probe() {
  Adaptive<StackOf<RmwSink>> cell;
  cell.set_enabled(false);
  NativeContext ctx(0);
  const std::uint64_t n = Adaptive<StackOf<RmwSink>>::kWindowOps * 4;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!cell.invoke(ctx, req_of(0, i)).committed()) return false;
  }
  return cell.decisions() == 0 && cell.windows() == 0 &&
         cell.tuning() == AdaptiveTuning{kShards, 1, kYieldsBeforePark};
}

ScenarioResult run(const BenchParams& params) {
  ScenarioResult result;
  std::uint64_t mismatches = 0;
  std::uint64_t accounting_gaps = 0;

  const int hi_threads = params.threads * 2;

  // ---- the adaptive ramp: one object, two regimes.
  double adaptive_hi_ns = 0.0;
  {
    Adaptive<StackOf<RmwSink>> cell;
    cell.set_enabled(params.adaptive);

    run_cell("adaptive lo t=1", 1, params.ops, cell, result, mismatches);
    const std::uint64_t lo_ops = result.phases.back().ops;
    const auto record = [&](PhaseMetrics& pm) {
      combining_extras(pm, cell);
      const AdaptiveTuning t = cell.tuning();
      pm.extra["adaptive_enabled"] = cell.enabled() ? 1.0 : 0.0;
      pm.extra["adaptive_decisions"] = static_cast<double>(cell.decisions());
      pm.extra["adaptive_active_shards"] =
          static_cast<double>(t.active_shards);
      pm.extra["adaptive_elect_spins"] = static_cast<double>(t.elect_spins);
      pm.extra["adaptive_yields_before_park"] =
          static_cast<double>(t.yields_before_park);
      pm.extra["adaptive_convergence_ops"] =
          static_cast<double>(cell.last_change_ops());
    };
    record(result.phases.back());

    run_cell("adaptive hi t=" + std::to_string(hi_threads), hi_threads,
             params.ops, cell, result, mismatches);
    record(result.phases.back());
    adaptive_hi_ns = result.phases.back().ops == 0
                         ? 0.0
                         : result.phases.back().seconds * 1e9 /
                               static_cast<double>(result.phases.back().ops);

    if (sink_total(cell.object()) != lo_ops + result.phases.back().ops) {
      ++accounting_gaps;
    }
    // A disabled run must have decided nothing; an enabled run's
    // tuning must stay inside the actuators' ranges.
    const AdaptiveTuning t = cell.tuning();
    if (!params.adaptive && cell.decisions() != 0) ++accounting_gaps;
    if (t.active_shards < 1 || t.active_shards > kShards ||
        t.elect_spins > 1 || t.yields_before_park < 0) {
      ++accounting_gaps;
    }
  }

  // ---- the static sweep the adaptive run is judged against:
  // shards {1, kShards} x elect_spins {0, 1} at the hi thread count.
  double best_static_ns = 0.0;
  for (const std::size_t shards : {std::size_t{1}, kShards}) {
    for (const std::uint32_t spins : {std::uint32_t{0}, std::uint32_t{1}}) {
      StackOf<RmwSink> cell;
      cell.set_active_shards(shards);
      cell.set_elect_spins(spins);
      run_cell("static shards=" + std::to_string(shards) +
                   " spins=" + std::to_string(spins) +
                   " t=" + std::to_string(hi_threads),
               hi_threads, params.ops, cell, result, mismatches);
      if (sink_total(cell) != result.phases.back().ops) ++accounting_gaps;
      PhaseMetrics& pm = result.phases.back();
      combining_extras(pm, cell);
      pm.extra["shards"] = static_cast<double>(shards);
      pm.extra["elect_spins"] = static_cast<double>(spins);
      const double ns =
          pm.ops == 0
              ? 0.0
              : pm.seconds * 1e9 / static_cast<double>(pm.ops);
      if (ns > 0.0 && (best_static_ns == 0.0 || ns < best_static_ns)) {
        best_static_ns = ns;
      }
    }
  }

  const bool probes_ok =
      solo_equivalence(true) && solo_equivalence(false) && disabled_probe();

  // Convergence gate: adaptive within 15% of the best static cell.
  // Only meaningful where the contended regime exists (>= 8 hardware
  // threads) with a non-trivial budget (the monitor needs windows to
  // converge within); recorded always, gated conditionally.
  const bool convergence_gated =
      params.adaptive &&
      std::thread::hardware_concurrency() >= 8 &&
      params.ops >= 1024;
  const bool converged = best_static_ns == 0.0 || adaptive_hi_ns == 0.0 ||
                         adaptive_hi_ns <= best_static_ns * 1.15;

  result.claim =
      "solo Adaptive invoke/submit is result-identical to the bare "
      "stack (adaptation on and off); a disabled wrapper makes zero "
      "decisions; every op commits its full-walk hop count and "
      "per-shard sink totals sum to the offered load; on >= 8 hardware "
      "threads the adaptive config converges to within 15% of the best "
      "static configuration";
  result.claim_holds = mismatches == 0 && accounting_gaps == 0 &&
                       probes_ok && (!convergence_gated || converged);
  return result;
}

SCM_BENCH_REGISTER("compose.adaptive", "E17",
                   "adaptive composition: thread ramp 1 -> 2x--threads on "
                   "one Adaptive<Sharded<Combining>> vs the static "
                   "shards x elect_spins sweep, convergence + equivalence "
                   "gates",
                   Backend::kNative, run);

}  // namespace
