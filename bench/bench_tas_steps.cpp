// Scenario tas.steps (E1) — step complexity of the speculative TAS
// (Theorem 4, Section 6.1).
//
// Claims regenerated:
//  * A1 (and therefore the composed TAS's fast path) has *constant*
//    step complexity: solo executions cost the same handful of register
//    steps (and zero RMWs) at every process count;
//  * the composed TAS stays wait-free under contention at O(1) steps
//    per operation (one doorway pass + at most one hardware RMW).
//
// The step counts come from the deterministic simulator, so they are
// exact (not sampled): every shared-memory access is counted.
#include <memory>
#include <set>
#include <vector>

#include "bench/registry.hpp"
#include "bench/scenario.hpp"
#include "sim/schedules.hpp"
#include "sim/sim_platform.hpp"
#include "sim/simulator.hpp"
#include "tas/speculative_tas.hpp"
#include "workload/sim_metrics.hpp"

namespace {

using namespace scm;
using namespace scm::bench;
using sim::SimContext;
using sim::SimPlatform;
using sim::Simulator;

Request tas_req(std::uint64_t id, ProcessId p) {
  return Request{id, p, TasSpec::kTestAndSet, 0};
}

// Exact solo step count of one composed test-and-set at process count n.
StepCounters solo_steps(int n) {
  Simulator s;
  SpeculativeTas<SimPlatform> tas;
  s.add_process(
      [&](SimContext& ctx) { (void)tas.test_and_set(ctx, tas_req(1, 0)); });
  for (int p = 1; p < n; ++p) s.add_process([](SimContext&) {});
  sim::SequentialSchedule sched;
  s.run(sched);
  return s.counters(0);
}

ScenarioResult run(const BenchParams& params) {
  const SchedulePolicy policy =
      SchedulePolicy::parse(params.schedule, params.seed);
  const int sweeps = params.sweeps(4, 2, 20);

  std::set<int> ns{1, 2};
  ns.insert(params.threads);
  ns.insert(std::min(2 * params.threads, 32));

  ScenarioResult result;
  std::vector<std::uint64_t> solo_totals;
  bool zero_solo_rmws = true;
  for (int n : ns) {
    const StepCounters sc = solo_steps(n);
    solo_totals.push_back(sc.total());
    zero_solo_rmws = zero_solo_rmws && sc.rmws == 0;

    PhaseMetrics pm;
    pm.phase = "contended n=" + std::to_string(n);
    double max_steps_per_op = 0.0;
    for (int sweep = 0; sweep < sweeps; ++sweep) {
      Simulator s;
      auto tas = std::make_shared<SpeculativeTas<SimPlatform>>();
      for (int p = 0; p < n; ++p) {
        s.add_process([tas, p](SimContext& ctx) {
          (void)tas->test_and_set(
              ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
        });
      }
      auto sched = policy.make(static_cast<std::uint64_t>(n) * 1000 +
                               static_cast<std::uint64_t>(sweep));
      s.run(*sched);
      for (int p = 0; p < n; ++p) {
        const StepCounters& c = s.counters(static_cast<ProcessId>(p));
        pm.steps += c.total();
        pm.rmws += c.rmws;
        max_steps_per_op =
            std::max(max_steps_per_op, static_cast<double>(c.total()));
        ++pm.ops;
      }
    }
    pm.extra["solo_steps"] = static_cast<double>(sc.total());
    pm.extra["solo_rmws"] = static_cast<double>(sc.rmws);
    pm.extra["max_steps_per_op"] = max_steps_per_op;
    result.phases.push_back(std::move(pm));
  }

  const bool solo_constant =
      std::set<std::uint64_t>(solo_totals.begin(), solo_totals.end()).size() ==
      1;
  result.claim =
      "solo steps constant in n with 0 RMWs (register-only fast path)";
  result.claim_holds = solo_constant && zero_solo_rmws;
  return result;
}

SCM_BENCH_REGISTER("tas.steps", "E1",
                   "step complexity of the speculative TAS (Theorem 4)",
                   Backend::kSim, run);

}  // namespace
