// E1 — Step complexity of the speculative TAS (Theorem 4, Section 6.1).
//
// Claims regenerated:
//  * A1 (and therefore the composed TAS's fast path) has *constant*
//    step complexity: solo and obstruction-free executions cost the
//    same handful of register steps at every process count, while the
//    best-known obstruction-free *consensus* bound is linear [6];
//  * the composed TAS stays wait-free under contention at O(1) steps
//    per operation (one doorway pass + at most one hardware RMW).
//
// The step counts come from the deterministic simulator, so they are
// exact (not sampled): every shared-memory access is counted.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "runtime/platform.hpp"
#include "support/table.hpp"
#include "sim/schedules.hpp"
#include "sim/sim_platform.hpp"
#include "sim/simulator.hpp"
#include "tas/speculative_tas.hpp"
#include "workload/driver.hpp"
#include "workload/sim_metrics.hpp"

namespace {

using namespace scm;
using sim::SimContext;
using sim::SimPlatform;
using sim::Simulator;

Request tas_req(std::uint64_t id, ProcessId p) {
  return Request{id, p, TasSpec::kTestAndSet, 0};
}

// Exact solo step count of one composed test-and-set at process count n.
StepCounters solo_steps(int n) {
  Simulator s;
  SpeculativeTas<SimPlatform> tas;
  s.add_process([&](SimContext& ctx) { (void)tas.test_and_set(ctx, tas_req(1, 0)); });
  for (int p = 1; p < n; ++p) s.add_process([](SimContext&) {});
  sim::SequentialSchedule sched;
  s.run(sched);
  return s.counters(0);
}

// Average steps per op when all n processes run, under `schedule`.
workload::SimMetrics contended_metrics(int n, std::uint64_t seed) {
  auto tas = std::make_shared<SpeculativeTas<SimPlatform>>();
  sim::RandomSchedule sched(seed);
  return workload::run_sim(
      n,
      [&](Simulator& s) {
        for (int p = 0; p < n; ++p) {
          s.add_process([tas, p](SimContext& ctx) {
            ctx.begin_op();
            (void)tas->test_and_set(
                ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
            ctx.end_op(1);
          });
        }
      },
      sched);
}

void print_claim_tables() {
  std::printf("\nE1 -- step complexity of the speculative TAS "
              "(exact counts from the deterministic simulator)\n\n");

  Table solo({"n (processes)", "solo steps", "solo RMWs",
              "sequential steps/op", "max steps/op (contended)",
              "RMWs/op (contended)"});
  for (int n : {1, 2, 4, 8, 16, 32}) {
    const StepCounters sc = solo_steps(n);

    // Sequential: every process runs one op without overlap.
    auto tas = std::make_shared<SpeculativeTas<SimPlatform>>();
    sim::SequentialSchedule seq;
    const auto seq_metrics = workload::run_sim(
        n,
        [&](Simulator& s) {
          for (int p = 0; p < n; ++p) {
            s.add_process([tas, p](SimContext& ctx) {
              ctx.begin_op();
              (void)tas->test_and_set(
                  ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
              ctx.end_op(1);
            });
          }
        },
        seq);

    // Contended: average and max per-op steps over seeds.
    double max_steps_per_op = 0.0;
    double rmws_per_op = 0.0;
    int sweeps = 0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      Simulator s;
      auto tas2 = std::make_shared<SpeculativeTas<SimPlatform>>();
      for (int p = 0; p < n; ++p) {
        s.add_process([tas2, p](SimContext& ctx) {
          (void)tas2->test_and_set(
              ctx, tas_req(static_cast<std::uint64_t>(p) + 1, p));
        });
      }
      sim::RandomSchedule sched(seed);
      s.run(sched);
      for (int p = 0; p < n; ++p) {
        const auto& c = s.counters(static_cast<ProcessId>(p));
        max_steps_per_op =
            std::max(max_steps_per_op, static_cast<double>(c.total()));
        rmws_per_op += static_cast<double>(c.rmws);
        ++sweeps;
      }
    }
    solo.row(n, sc.total(), sc.rmws, seq_metrics.steps_per_op(),
             max_steps_per_op, rmws_per_op / sweeps);
  }
  solo.print(std::cout, "composed TAS: steps per operation");
  std::printf(
      "\nClaim check: solo/sequential step counts are CONSTANT in n and use\n"
      "0 RMWs; contended operations are bounded by the same doorway pass\n"
      "plus at most one hardware RMW (wait-free, Theorem 4).\n\n");
}

// --------------------------------------------------------------------------
// Wall-clock microbenchmarks (native platform): the same algorithm code
// on std::atomic registers.

void BM_SpeculativeTas_SoloNative(benchmark::State& state) {
  NativeContext ctx(0);
  std::uint64_t id = 0;
  for (auto _ : state) {
    SpeculativeTas<NativePlatform> tas;
    benchmark::DoNotOptimize(tas.test_and_set(ctx, tas_req(++id, 0)));
  }
  state.counters["rmws/op"] = benchmark::Counter(
      static_cast<double>(ctx.counters().rmws),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SpeculativeTas_SoloNative);

void BM_HardwareTas_SoloNative(benchmark::State& state) {
  NativeContext ctx(0);
  for (auto _ : state) {
    NativeTas t;
    benchmark::DoNotOptimize(t.test_and_set(ctx));
  }
  state.counters["rmws/op"] = benchmark::Counter(
      static_cast<double>(ctx.counters().rmws),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_HardwareTas_SoloNative);

}  // namespace

int main(int argc, char** argv) {
  print_claim_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
