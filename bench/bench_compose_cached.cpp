// Scenario compose.cached (E15) — read-mostly replication over the
// composition stack. Every prior scenario pays the paper's per-op
// composition price on READS too; Replicated<Obj, N, Model>
// (core/caching.hpp) serves read-only-classified operations from
// versioned per-replica snapshots — no shared write, no RMW — while
// writes still walk the wrapped Combining object and invalidate via
// one generation bump at their serialization point. This scenario
// measures what that buys and what it costs, sweeping
//
//   read fraction in {0.5, 0.95, 0.99}  x  zipf skew in {0, 0.99}
//     x  replicas in {1, 4}  x  threads in {1, --threads}
//
// over a Combining-wrapped keyed register file. Values encode their
// key ((key << 20) | payload), so every committed read self-checks
// against torn or cross-key values; reads and writes are latency-
// sampled separately (read_ns / write_ns extras) because the split is
// the scenario's whole point — the blended ns/op hides it.
//
// Self-checks (scale-robust, gating): a solo caller's cached results
// are bit-identical to the same op sequence against an uncached
// object (hits included — the probe rereads written keys); every
// write bumps the invalidation generation exactly once, and a written
// key is never visible on any replica with a pre-write value once the
// writer returned; no committed read ever returns a torn value (key
// decode mismatch). The read-scaling claim (read-slice ns flat within
// 2x from t=1 to t=max at read fraction 0.95) additionally gates only
// on hardware with >= 8 cores driven with >= 8 threads — below that
// the "scaling" cell measures oversubscription, not parallel reads.
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/registry.hpp"
#include "bench/scenario.hpp"
#include "core/caching.hpp"
#include "core/combining.hpp"
#include "runtime/platform.hpp"
#include "support/cacheline.hpp"
#include "support/rng.hpp"
#include "workload/keyed.hpp"

namespace {

using namespace scm;
using namespace scm::bench;

constexpr std::uint64_t kKeys = 64;
constexpr std::size_t kCombineSlots = 16;
constexpr std::size_t kMaxReplicas = 4;
constexpr std::int64_t kOpWrite = 0;
constexpr std::int64_t kOpRead = 1;
constexpr std::uint64_t kPayloadBits = 20;

// The composed object under the cache: a keyed register file. A write
// stores (key << 20) | payload and commits the stored value (so the
// replication model can refill from the response); a read commits the
// key's current value. Key-tagged values make torn or misrouted reads
// self-evident at the check site.
class KeyedStore {
 public:
  static constexpr int kConsensusNumber = kConsensusNumberRegister;

  template <class Ctx>
  ModuleResult invoke(Ctx& ctx, const Request& m,
                      std::optional<SwitchValue> /*init*/ = std::nullopt) {
    const auto key = static_cast<std::uint64_t>(m.arg) % kKeys;
    if (m.op == kOpWrite) {
      const auto v = static_cast<Response>(
          (key << kPayloadBits) | (m.id & ((1u << kPayloadBits) - 1)));
      cells_[key].write(ctx, v);
      return ModuleResult::commit(v);
    }
    return ModuleResult::commit(cells_[key].read(ctx));
  }

 private:
  std::array<NativeRegister<Response>, kKeys> cells_{};
};

// How the cache interprets KeyedStore requests: op 1 is read-only,
// the cache key is the request's key argument, and a committed write's
// response IS the post-write value — refills are exact.
struct StoreModel {
  static bool is_read(const Request& m) { return m.op == kOpRead; }
  static std::uint64_t key(const Request& m) {
    return static_cast<std::uint64_t>(m.arg) % kKeys;
  }
  static std::optional<Response> read_after_write(const Request& /*m*/,
                                                  Response r) {
    return r;
  }
};

template <std::size_t R>
using CachedStore =
    Replicated<Combining<KeyedStore, kCombineSlots, ByThread>, R, StoreModel>;

Request req_of(ProcessId p, std::uint64_t i, std::int64_t op,
               std::uint64_t key) {
  return Request{(static_cast<std::uint64_t>(p) << 40) | (i + 1), p, op,
                 static_cast<std::int64_t>(key)};
}

// A committed value must decode back to the key it was read or written
// under — the torn/cross-key detector.
bool value_ok(const ModuleResult& r, std::uint64_t key) {
  return r.committed() &&
         (static_cast<std::uint64_t>(r.response) >> kPayloadBits) == key;
}

// Per-thread latency accumulation: every 32nd op is clocked, reads and
// writes into separate buckets (padded — the counters are written from
// the measured loop).
struct alignas(kCacheLineSize) LatencySample {
  double read_ns = 0.0;
  std::uint64_t reads = 0;
  double write_ns = 0.0;
  std::uint64_t writes = 0;
};

template <std::size_t R>
void run_cell(const BenchParams& params, double read_frac, double theta,
              int threads, ScenarioResult& result, std::uint64_t& torn,
              std::uint64_t& invalidation_gaps) {
  CachedStore<R> cached;
  const workload::ZipfianKeys stream(kKeys, theta);
  std::vector<Padded<Rng>> rngs;
  std::vector<LatencySample> lat(static_cast<std::size_t>(threads));
  rngs.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    rngs.emplace_back(Rng(params.seed ^ (0x9e3779b9ULL *
                                         (static_cast<std::uint64_t>(t) + 1))));
  }

  // Pre-populate every key: an unwritten register reads 0, which
  // decodes to key 0 and would trip the torn-value check spuriously.
  {
    NativeContext setup(0);
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      (void)cached.invoke(setup, req_of(0, k, kOpWrite, k));
    }
  }

  std::atomic<std::uint64_t> bad{0};
  std::atomic<std::uint64_t> writes_issued{0};
  std::string name = "f=" + std::to_string(read_frac).substr(0, 4) +
                     " skew=" + std::to_string(theta).substr(0, 4) +
                     " r=" + std::to_string(R) + " t=" + std::to_string(threads);
  PhaseMetrics pm = measure_native(
      std::move(name), threads, params.ops,
      [&](NativeContext& ctx, std::uint64_t i) {
        const auto tid = static_cast<std::size_t>(ctx.id());
        Rng& rng = rngs[tid].value;
        const std::uint64_t key = stream(rng);
        const bool is_read = rng.uniform() < read_frac;
        const Request m =
            req_of(ctx.id(), i, is_read ? kOpRead : kOpWrite, key);
        if (!is_read) writes_issued.fetch_add(1, std::memory_order_relaxed);
        if (i % 32 == 0) {
          const auto t0 = std::chrono::steady_clock::now();
          const ModuleResult r = cached.invoke(ctx, m);
          const auto t1 = std::chrono::steady_clock::now();
          const double ns =
              std::chrono::duration<double, std::nano>(t1 - t0).count();
          LatencySample& s = lat[tid];
          if (is_read) {
            s.read_ns += ns;
            ++s.reads;
          } else {
            s.write_ns += ns;
            ++s.writes;
          }
          if (!value_ok(r, key)) bad.fetch_add(1, std::memory_order_relaxed);
        } else if (!value_ok(cached.invoke(ctx, m), key)) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      });
  torn += bad.load(std::memory_order_relaxed);

  // Every write — and nothing else — bumped the invalidation
  // generation exactly once at its serialization point (the kKeys
  // pre-population writes included).
  if (cached.invalidations() !=
      writes_issued.load(std::memory_order_relaxed) + kKeys) {
    ++invalidation_gaps;
  }

  double read_ns = 0.0, write_ns = 0.0;
  std::uint64_t reads = 0, writes = 0;
  for (const LatencySample& s : lat) {
    read_ns += s.read_ns;
    reads += s.reads;
    write_ns += s.write_ns;
    writes += s.writes;
  }
  const std::uint64_t lookups = cached.hits() + cached.misses();
  pm.extra["read_frac"] = read_frac;
  pm.extra["skew"] = theta;
  pm.extra["replicas"] = static_cast<double>(R);
  pm.extra["hit_rate"] =
      lookups == 0 ? 0.0
                   : static_cast<double>(cached.hits()) /
                         static_cast<double>(lookups);
  pm.extra["read_ns_per_op"] =
      reads == 0 ? 0.0 : read_ns / static_cast<double>(reads);
  pm.extra["write_ns_per_op"] =
      writes == 0 ? 0.0 : write_ns / static_cast<double>(writes);
  pm.extra["invalidations"] = static_cast<double>(cached.invalidations());
  result.phases.push_back(std::move(pm));
}

// Probe 1: a solo caller's cached results are bit-identical to the
// same deterministic op sequence against an uncached object — hits
// included (keys are written then reread, so the cache serves from
// its table on the rereads).
bool solo_equivalence_probe() {
  CachedStore<2> cached;
  Combining<KeyedStore, kCombineSlots, ByThread> bare;
  NativeContext ctx(0);
  Rng rng(11);
  const workload::ZipfianKeys stream(kKeys, 0.99);
  for (std::uint64_t i = 0; i < 512; ++i) {
    const std::uint64_t key = stream(rng);
    const auto op = rng.uniform() < 0.8 ? kOpRead : kOpWrite;
    const Request m = req_of(0, i, op, key);
    const ModuleResult want = bare.invoke(ctx, m);
    const ModuleResult got = cached.invoke(ctx, m);
    if (got.committed() != want.committed() ||
        got.response != want.response) {
      return false;
    }
  }
  // The probe must actually have exercised the hit path, or the
  // equivalence it certifies is vacuous.
  return cached.hits() > 0;
}

// Probe 2: once a writer returned, no replica serves the pre-write
// value — read_at either misses (invalidated) or returns the new
// value (the writer's replica was refilled).
bool invalidation_probe() {
  CachedStore<kMaxReplicas> cached;
  NativeContext ctx(0);
  std::uint64_t id = 0;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    // Fill every replica's entry for this key via the read path.
    for (std::size_t rep = 0; rep < kMaxReplicas; ++rep) {
      (void)cached.invoke(ctx, req_of(0, id++, kOpWrite, key));
      NativeContext other(static_cast<ProcessId>(rep));
      (void)cached.invoke(other, req_of(0, id++, kOpRead, key));
    }
    const ModuleResult w = cached.invoke(ctx, req_of(0, id++, kOpWrite, key));
    if (!w.committed()) return false;
    for (std::size_t rep = 0; rep < kMaxReplicas; ++rep) {
      const auto v = cached.read_at(rep, key);
      if (v.has_value() && *v != w.response) return false;
    }
  }
  return true;
}

// Probe 3: the async surface — a read hit is a ready ticket; a miss's
// fill arrives through the ticket and lands in the table.
bool ticket_probe() {
  CachedStore<1> cached;
  NativeContext ctx(0);
  const Request w = req_of(0, 1, kOpWrite, 7);
  const ModuleResult wr = cached.submit(ctx, w).wait();
  if (!value_ok(wr, 7)) return false;
  auto t1 = cached.submit(ctx, req_of(0, 2, kOpRead, 7));
  const ModuleResult r1 = t1.wait();
  if (!value_ok(r1, 7) || r1.response != wr.response) return false;
  // The write refilled (read_after_write is exact), so that read hit.
  return cached.hits() >= 1;
}

ScenarioResult run(const BenchParams& params) {
  ScenarioResult result;
  std::uint64_t torn = 0;
  std::uint64_t invalidation_gaps = 0;

  const std::array<double, 3> read_fracs{0.5, 0.95, 0.99};
  const std::array<double, 2> skews{0.0, 0.99};
  std::vector<int> thread_points{1};
  if (params.threads > 1) thread_points.push_back(params.threads);

  for (const double frac : read_fracs) {
    for (const double theta : skews) {
      for (const int t : thread_points) {
        run_cell<1>(params, frac, theta, t, result, torn, invalidation_gaps);
        run_cell<kMaxReplicas>(params, frac, theta, t, result, torn,
                               invalidation_gaps);
      }
    }
  }

  // Read-scaling gate: at read fraction 0.95, uniform keys, full
  // replication, the read slice's per-op ns must stay flat (within 2x)
  // from t=1 to t=max. Only meaningful when the threads actually run
  // in parallel — gate on >= 8 hardware cores and >= 8 driven threads;
  // elsewhere report, don't gate.
  bool read_scaling_ok = true;
  {
    double solo_read_ns = 0.0, loaded_read_ns = 0.0;
    for (const PhaseMetrics& pm : result.phases) {
      const auto frac = pm.extra.find("read_frac");
      const auto skew = pm.extra.find("skew");
      const auto reps = pm.extra.find("replicas");
      if (frac->second != 0.95 || skew->second != 0.0 ||
          reps->second != static_cast<double>(kMaxReplicas)) {
        continue;
      }
      const double rns = pm.extra.at("read_ns_per_op");
      if (pm.phase.ends_with("t=1")) solo_read_ns = rns;
      if (pm.phase.ends_with("t=" + std::to_string(params.threads))) {
        loaded_read_ns = rns;
      }
    }
    const bool gate = std::thread::hardware_concurrency() >= 8 &&
                      params.threads >= 8;
    if (gate && solo_read_ns > 0.0 && loaded_read_ns > 0.0) {
      read_scaling_ok = loaded_read_ns <= 2.0 * solo_read_ns;
    }
  }

  const bool probes_ok = solo_equivalence_probe() && invalidation_probe() &&
                         ticket_probe();

  result.claim =
      "cached results are bit-identical to uncached for a solo caller "
      "(hit path exercised); every write bumps the invalidation "
      "generation exactly once and no replica serves a pre-write value "
      "after the writer returned; no committed read is torn (every "
      "value decodes to its key); read hits complete as ready tickets; "
      "on >=8-core hardware at read fraction 0.95 the read slice stays "
      "within 2x from t=1 to t=max";
  result.claim_holds = torn == 0 && invalidation_gaps == 0 && probes_ok &&
                       read_scaling_ok;
  return result;
}

SCM_BENCH_REGISTER("compose.cached", "E15",
                   "read-mostly replication: read fraction {0.5,0.95,0.99} "
                   "x zipf skew {0,0.99} x replicas {1,4} x threads over "
                   "Replicated<Combining<KeyedStore>>",
                   Backend::kNative, run);

}  // namespace
